package tcp

import (
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
)

// ccProvider is the congestion-control seam between the TCP machinery and
// either the native (in-TCP) controller or the Congestion Manager client.
type ccProvider interface {
	name() string
	// window returns the effective congestion window in bytes (for
	// statistics and tests; the CM provider reports the macroflow window).
	window() int
	// trySend is invoked whenever transmission may have become possible:
	// new data queued, an ACK arrived, recovery state changed, a timer
	// fired. The provider decides when segments actually go out.
	trySend()
	// onEstablished runs when the handshake completes.
	onEstablished()
	// onClose runs when the connection is fully closed.
	onClose()
	// onAck reports acked bytes, an RTT sample (0 if none) and whether the
	// ACK carried an ECN congestion-experienced echo.
	onAck(acked int, rtt time.Duration, ecnCE bool)
	// onFastRetransmit runs when the third duplicate ACK arrives.
	onFastRetransmit()
	// onDupAckInRecovery runs for duplicate ACKs beyond the third.
	onDupAckInRecovery()
	// onRecoveryExit runs when a cumulative ACK covers the recovery point.
	onRecoveryExit()
	// onTimeout runs when the retransmission timer expires.
	onTimeout()
	// sharedRTT returns an RTT estimate shared across connections (only the
	// CM provider has one); ok is false otherwise.
	sharedRTT() (srtt, rttvar time.Duration, ok bool)
}

// ---------------------------------------------------------------------------
// Native congestion control: a Linux-2.2-like Reno controller. The two
// deliberate differences from the CM that the paper calls out are preserved:
// the initial window is 2 segments and window growth counts ACKs (each ACK is
// assumed to cover a full MSS) rather than bytes.
// ---------------------------------------------------------------------------

type nativeCC struct {
	e        *Endpoint
	cwnd     int
	ssthresh int
}

func newNativeCC(e *Endpoint) *nativeCC {
	return &nativeCC{e: e}
}

func (c *nativeCC) name() string { return "native" }
func (c *nativeCC) window() int  { return c.cwnd }

func (c *nativeCC) onEstablished() {
	c.cwnd = c.e.cfg.InitialWindowSegments * c.e.mss()
	c.ssthresh = 1 << 30
}

func (c *nativeCC) onClose() {}

func (c *nativeCC) sharedRTT() (time.Duration, time.Duration, bool) { return 0, 0, false }

func (c *nativeCC) trySend() {
	if c.cwnd == 0 {
		// Not yet established.
		return
	}
	for {
		// Retransmissions are always allowed; new data must fit in cwnd.
		if !c.e.rtxPending && c.e.inFlight() >= c.cwnd {
			return
		}
		if _, ok := c.e.sendOneSegment(); !ok {
			return
		}
	}
}

func (c *nativeCC) onAck(acked int, rtt time.Duration, ecnCE bool) {
	mss := c.e.mss()
	if ecnCE {
		c.halve()
		return
	}
	if c.cwnd < c.ssthresh {
		// Slow start, ACK counting: each ACK opens the window by one MSS.
		c.cwnd += mss
	} else {
		grow := mss * mss / c.cwnd
		if grow < 1 {
			grow = 1
		}
		c.cwnd += grow
	}
}

func (c *nativeCC) halve() {
	mss := c.e.mss()
	half := c.e.inFlight() / 2
	if half < 2*mss {
		half = 2 * mss
	}
	c.ssthresh = half
	c.cwnd = half
}

func (c *nativeCC) onFastRetransmit() {
	mss := c.e.mss()
	c.halve()
	// Fast recovery window inflation for the three duplicate ACKs already
	// received.
	c.cwnd = c.ssthresh + 3*mss
}

func (c *nativeCC) onDupAckInRecovery() {
	c.cwnd += c.e.mss()
}

func (c *nativeCC) onRecoveryExit() {
	c.cwnd = c.ssthresh
}

func (c *nativeCC) onTimeout() {
	mss := c.e.mss()
	half := c.e.inFlight() / 2
	if half < 2*mss {
		half = 2 * mss
	}
	c.ssthresh = half
	c.cwnd = mss
}

// ---------------------------------------------------------------------------
// CM congestion control: TCP as an in-kernel Congestion Manager client
// (paper §3.2). TCP retains connection management, loss recovery and protocol
// state; all congestion control decisions are the CM's. Data leaves only from
// cmapp_send callbacks; ACK arrivals, duplicate ACKs and timeouts are
// reported with cm_update; the IP output hook charges transmissions.
// ---------------------------------------------------------------------------

type cmCC struct {
	e  *Endpoint
	cm *cm.CM

	flow            cm.FlowID
	opened          bool
	pendingRequests int
	// epoch is the CM restart epoch the flow handle belongs to; a mismatch
	// means the CM lost the flow and it must be re-opened (paper §3.2's
	// in-kernel client, surviving the module being reloaded).
	epoch int64
}

func newCMCC(e *Endpoint, c *cm.CM) *cmCC {
	return &cmCC{e: e, cm: c}
}

func (c *cmCC) name() string { return "cm" }

func (c *cmCC) window() int {
	if !c.opened {
		return 0
	}
	c.ensureLive()
	st, ok := c.cm.Query(c.flow)
	if !ok {
		return 0
	}
	return st.CWND
}

// FlowID exposes the CM flow for tests.
func (c *cmCC) FlowID() cm.FlowID { return c.flow }

func (c *cmCC) onEstablished() {
	// cm_open is called when the connection is created (accept or connect).
	c.flow = c.cm.Open(netsim.ProtoTCP, c.e.local, c.e.remote)
	c.cm.RegisterSend(c.flow, c.cmappSend)
	c.opened = true
	c.epoch = c.cm.Epoch()
}

func (c *cmCC) onClose() {
	if c.opened {
		c.opened = false
		if c.cm.Epoch() != c.epoch {
			// The CM restarted since we opened; the handle is already dead.
			return
		}
		c.cm.Close(c.flow)
	}
}

// ensureLive re-opens the flow after a CM restart: the old handle is dead
// (calls on it count as StaleFlowCalls), grants and requests are forgotten,
// and congestion state restarts from the initial window. Recovery rides the
// normal loss path — with the window gone our in-flight data eventually
// times out, onTimeout reports persistent loss, and trySend re-requests.
func (c *cmCC) ensureLive() {
	if !c.opened {
		return
	}
	if e := c.cm.Epoch(); e != c.epoch {
		c.flow = c.cm.Open(netsim.ProtoTCP, c.e.local, c.e.remote)
		c.cm.RegisterSend(c.flow, c.cmappSend)
		c.pendingRequests = 0
		c.epoch = e
	}
}

func (c *cmCC) sharedRTT() (time.Duration, time.Duration, bool) {
	if !c.opened {
		return 0, 0, false
	}
	c.ensureLive()
	st, ok := c.cm.Query(c.flow)
	if !ok {
		return 0, 0, false
	}
	return st.SRTT, st.RTTVar, st.SRTT > 0
}

// trySend: whenever TCP has something to transmit it asks the CM for
// permission; the actual transmission happens in the cmapp_send callback.
func (c *cmCC) trySend() {
	if !c.opened {
		return
	}
	c.ensureLive()
	if c.e.pendingData() && c.pendingRequests == 0 {
		c.pendingRequests++
		c.cm.Request(c.flow)
	}
}

// cmappSend is the grant callback: permission to send up to one MTU.
func (c *cmCC) cmappSend(_ cm.FlowID) {
	c.pendingRequests--
	n, sent := c.e.sendOneSegment()
	if !sent || n == 0 {
		// Nothing (or only an un-charged control segment) was transmitted;
		// return the grant so other flows on the macroflow may proceed.
		c.cm.Notify(c.flow, 0)
	}
	// Ask again only if this grant made progress; if nothing could be sent
	// (for example the peer's receive window is full) a new request would be
	// granted and declined in a tight loop. The next ACK or application
	// write calls trySend and resumes requesting.
	if sent && n > 0 && c.e.pendingData() && c.pendingRequests == 0 {
		c.pendingRequests++
		c.cm.Request(c.flow)
	}
}

func (c *cmCC) onAck(acked int, rtt time.Duration, ecnCE bool) {
	if !c.opened {
		return
	}
	c.ensureLive()
	mode := cm.NoLoss
	if ecnCE {
		mode = cm.ECNLoss
	}
	c.cm.Update(c.flow, acked, acked, mode, rtt)
}

func (c *cmCC) onFastRetransmit() {
	if !c.opened {
		return
	}
	c.ensureLive()
	// Three duplicate ACKs: a single, congestion-caused packet loss.
	c.cm.Update(c.flow, c.e.mss(), 0, cm.TransientLoss, 0)
}

func (c *cmCC) onDupAckInRecovery() {
	if !c.opened {
		return
	}
	c.ensureLive()
	// A duplicate ACK beyond the third means another segment reached the
	// receiver (paper §3.2: "It therefore calls cm_update()").
	c.cm.Update(c.flow, c.e.mss(), c.e.mss(), cm.NoLoss, 0)
}

func (c *cmCC) onRecoveryExit() {}

func (c *cmCC) onTimeout() {
	if !c.opened {
		return
	}
	c.ensureLive()
	// The expiration of the retransmission timer signifies persistent
	// congestion (CM_LOST_FEEDBACK).
	c.cm.Update(c.flow, c.e.inFlight(), 0, cm.PersistentLoss, 0)
}

var (
	_ ccProvider = (*nativeCC)(nil)
	_ ccProvider = (*cmCC)(nil)
)
