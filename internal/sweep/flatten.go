package sweep

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/probe"
	"repro/internal/scenario"
)

// Flatten projects every numeric field of a scenario.Result into a flat
// key->float64 map, so the aggregation layer can summarise *any* result field
// across seed replicates without per-field plumbing. Keys mirror the result's
// JSON shape: struct fields use their json tag name (Go name when untagged,
// as with the embedded stats structs), slices index as name[i], and anonymous
// embedded structs inline, e.g.
//
//	flows[0].throughput_kbps   links[1].QueueDrops   cms[0].GrantsIssued
//
// Numeric conversion: integers and floats as-is, bools as 0/1,
// time.Duration as seconds. Strings are skipped.
//
// On top of the raw projection, Flatten adds derived whole-run totals under
// the reserved "total." prefix (the default campaign metrics):
//
//	total.delivered_bytes   total.goodput_kbps   total.completed
//	total.flows             total.retransmissions  total.timeouts
//	total.queue_drops       total.bernoulli_drops  total.burst_drops
//	total.down_drops        total.forwarded_packets
//
// Probe series are not walked point by point (a long run would explode the
// key space); each series instead contributes its summary under the reserved
// "probe." prefix:
//
//	probe.<name>.mean  probe.<name>.min  probe.<name>.max
//	probe.<name>.last  probe.<name>.samples
func Flatten(res *scenario.Result) map[string]float64 {
	out := make(map[string]float64)
	flattenValue(reflect.ValueOf(res).Elem(), "", out)
	for i := range res.Series {
		s := &res.Series[i]
		prefix := "probe." + s.Name
		out[prefix+".mean"] = s.Mean()
		out[prefix+".min"] = s.Min()
		out[prefix+".max"] = s.Max()
		if p, ok := s.Last(); ok {
			out[prefix+".last"] = p.V
		} else {
			out[prefix+".last"] = 0
		}
		out[prefix+".samples"] = float64(s.Len())
	}

	var delivered, rtx, timeouts int64
	var completed int
	for _, f := range res.Flows {
		delivered += f.Delivered
		rtx += f.Retransmissions
		timeouts += f.Timeouts
		if f.Completed {
			completed++
		}
	}
	var queueDrops, bernoulli, burst, down int
	for _, l := range res.Links {
		queueDrops += l.QueueDrops
		bernoulli += l.BernoulliDrops
		burst += l.BurstDrops
		down += l.DownDrops
	}
	var forwarded int64
	for _, h := range res.Hosts {
		forwarded += int64(h.ForwardedPackets)
	}
	out["total.delivered_bytes"] = float64(delivered)
	if secs := res.EndTime.Seconds(); secs > 0 {
		out["total.goodput_kbps"] = float64(delivered) / secs / 1024
	} else {
		out["total.goodput_kbps"] = 0
	}
	out["total.completed"] = float64(completed)
	out["total.flows"] = float64(len(res.Flows))
	out["total.retransmissions"] = float64(rtx)
	out["total.timeouts"] = float64(timeouts)
	out["total.queue_drops"] = float64(queueDrops)
	out["total.bernoulli_drops"] = float64(bernoulli)
	out["total.burst_drops"] = float64(burst)
	out["total.down_drops"] = float64(down)
	out["total.forwarded_packets"] = float64(forwarded)
	return out
}

var (
	durationType    = reflect.TypeOf(time.Duration(0))
	seriesSliceType = reflect.TypeOf([]probe.Series(nil))
)

func flattenValue(v reflect.Value, prefix string, out map[string]float64) {
	if v.Type() == seriesSliceType {
		return // summarised under "probe." by Flatten, never walked raw
	}
	switch v.Kind() {
	case reflect.Struct:
		t := v.Type()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if f.PkgPath != "" { // unexported
				continue
			}
			name := f.Name
			if tag, ok := f.Tag.Lookup("json"); ok {
				tagName, _, _ := strings.Cut(tag, ",")
				if tagName == "-" {
					continue
				}
				if tagName != "" {
					name = tagName
				}
			}
			child := prefix
			// An untagged anonymous struct inlines, exactly as encoding/json
			// would inline it.
			if !(f.Anonymous && f.Type.Kind() == reflect.Struct && f.Tag.Get("json") == "") {
				if child != "" {
					child += "."
				}
				child += name
			}
			flattenValue(v.Field(i), child, out)
		}
	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			flattenValue(v.Index(i), fmt.Sprintf("%s[%d]", prefix, i), out)
		}
	case reflect.Pointer:
		if !v.IsNil() {
			flattenValue(v.Elem(), prefix, out)
		}
	case reflect.Bool:
		if v.Bool() {
			out[prefix] = 1
		} else {
			out[prefix] = 0
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		if v.Type() == durationType {
			out[prefix] = time.Duration(v.Int()).Seconds()
		} else {
			out[prefix] = float64(v.Int())
		}
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		out[prefix] = float64(v.Uint())
	case reflect.Float32, reflect.Float64:
		out[prefix] = v.Float()
	}
}

// selectKeys returns, sorted, every key present in any of the flattened maps
// that matches at least one pattern. Patterns are literal keys with *
// wildcards matching any run of characters ("flows[*].delivered",
// "total.*").
func selectKeys(flats []map[string]float64, patterns []string) []string {
	seen := make(map[string]bool)
	var keys []string
	for _, f := range flats {
		for k := range f {
			if seen[k] {
				continue
			}
			seen[k] = true
			for _, p := range patterns {
				if globMatch(p, k) {
					keys = append(keys, k)
					break
				}
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// globMatch matches s against a pattern whose * wildcards span any run of
// characters (including none).
func globMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, parts[0]) {
		return false
	}
	s = s[len(parts[0]):]
	for _, mid := range parts[1 : len(parts)-1] {
		i := strings.Index(s, mid)
		if i < 0 {
			return false
		}
		s = s[i+len(mid):]
	}
	return strings.HasSuffix(s, parts[len(parts)-1])
}
