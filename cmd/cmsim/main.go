// Command cmsim runs simulation scenarios: a named scenario from the
// registry (multi-hop topologies with routed forwarding), a parameter-sweep
// campaign over one, or an ad-hoc point-to-point bulk transfer described by
// flags.
//
// Scenario mode:
//
//	cmsim -list                                  # print the catalogue
//	cmsim -scenario dumbbell                     # run one scenario
//	cmsim -scenario dumbbell,star -parallel 4    # run a batch across workers
//	cmsim -scenario dumbbell -runs 8 -parallel 8 # replicate for determinism checks
//	cmsim -scenario dumbbell -json               # machine-readable results
//	cmsim -scenario grid -shards 4               # shard one simulation across workers
//	cmsim -scenario fattree -param k=8           # parameterised builder scenarios
//	cmsim -scenario isp -param aggs=16 -param access=25 -param hosts=250 \
//	      -buildprofile isp100k                  # profile a 100k-host Build and exit
//
// Sweep mode (see docs/SWEEPS.md for the axis and campaign grammar):
//
//	cmsim -scenario p2p -sweep "link[0].loss=0,0.01,0.05" -replicates 3       # list axis
//	cmsim -scenario p2p -sweep "link[0].bandwidth=1e6:10e6:4" -csv            # linear axis
//	cmsim -scenario p2p -sweep "workload[0].flows=log:1:64:7"                 # log axis
//	cmsim -campaign examples/campaigns/fig3.json -csv                         # campaign file
//	cmsim -campaign examples/campaigns/churn-soak.json -check-invariants -csv # robustness soak
//
// Sweep results aggregate each selected metric across seed replicates
// (mean/stddev/min/max/p50/p99) and emit as an aligned table, -json, or
// deterministic -csv whose bytes are identical for any -parallel setting.
//
// Observability (see docs/OBSERVABILITY.md for the probe grammar):
//
//	cmsim -scenario dumbbell -probe "link[0].queue_depth" \
//	      -probe "cm[s0].cwnd@100ms" -probe-csv probes.csv    # mid-run time series
//	cmsim -scenario churn -trace-out trace.txt                # flight-recorder dump
//	cmsim -scenario grid -shards 4 -timeline-out timeline.json # Chrome trace_event
//	cmsim -scenario churn -snapshot-every 1s -check-invariants # first-violation time
//	cmsim -scenario grid -shards 4 -report report.json        # structured run report
//	cmsim -scenario grid -report-md report.md                 # same, as markdown
//	cmsim -campaign examples/campaigns/fig3.json -plot-dir plots # sweep SVG figures
//
// A run report bundles the spec summary, result counters, routing audit,
// faults verdict, per-event-kind cost attribution and probe summaries into
// one deterministic document; a non-clean faults verdict exits nonzero, like
// -check-invariants.
//
// Legacy point-to-point mode (no -scenario):
//
//	cmsim -bw 10e6 -rtt 60ms -loss 1 -cc cm -bytes 2000000
//
// Every simulation owns its scheduler and seeded random sources, so a batch
// produces byte-identical results whether -parallel is 1 or 8.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/probe"
	"repro/internal/report"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// sweepFlags collects repeated -sweep flags.
type sweepFlags []string

func (s *sweepFlags) String() string     { return strings.Join(*s, "; ") }
func (s *sweepFlags) Set(v string) error { *s = append(*s, v); return nil }

// probeFlags collects repeated -probe flags as parsed probe specs. Each flag
// is "target" or "target@interval" (e.g. "link[0].queue_depth@100ms"); the
// target grammar is validated here so a typo fails at flag-parse time.
type probeFlags []probe.Spec

func (p *probeFlags) String() string {
	var parts []string
	for _, ps := range *p {
		parts = append(parts, ps.Target)
	}
	return strings.Join(parts, "; ")
}

func (p *probeFlags) Set(v string) error {
	target, iv, hasInterval := strings.Cut(v, "@")
	ps := probe.Spec{Target: target}
	if hasInterval {
		d, err := time.ParseDuration(iv)
		if err != nil {
			return fmt.Errorf("probe %q: bad interval %q", v, iv)
		}
		ps.Interval = d
	}
	if _, err := probe.ParseTarget(ps.Target); err != nil {
		return err
	}
	*p = append(*p, ps)
	return nil
}

// paramFlags collects repeated -param name=value flags for parameterised
// scenario builders.
type paramFlags map[string]float64

func (p paramFlags) String() string {
	var parts []string
	for k, v := range p {
		parts = append(parts, fmt.Sprintf("%s=%v", k, v))
	}
	return strings.Join(parts, " ")
}

func (p paramFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("parameter %q: bad value %q", name, val)
	}
	p[name] = v
	return nil
}

func main() {
	var sweeps sweepFlags
	var probes probeFlags
	params := make(paramFlags)
	var (
		list     = flag.Bool("list", false, "print the registered scenarios and exit")
		names    = flag.String("scenario", "", "comma-separated scenario names to run (see -list)")
		parallel = flag.Int("parallel", 1, "worker goroutines for the batch (0 = GOMAXPROCS)")
		runs     = flag.Int("runs", 1, "replicas of each scenario (for determinism and sweep checks)")
		shards   = flag.Int("shards", 0, "shard one simulation across this many worker goroutines (0/1 = serial; results are byte-identical)")
		jsonOut  = flag.Bool("json", false, "emit results as JSON")

		campaign   = flag.String("campaign", "", "run a sweep campaign from this JSON file (see docs/SWEEPS.md)")
		replicates = flag.Int("replicates", 1, "sweep mode: seed replicates per sweep point")
		csvOut     = flag.Bool("csv", false, "sweep mode: emit the aggregated results as CSV")
		checkInv   = flag.Bool("check-invariants", false, "run the faults invariant checker over every result; violations go to stderr and exit nonzero (see docs/ROBUSTNESS.md); with -snapshot-every the checker also runs over every mid-run snapshot and reports the first-violation time")

		probeCSV    = flag.String("probe-csv", "", "write the first run's probe series as CSV to this file (\"-\" = stdout); declare probes with -probe (see docs/OBSERVABILITY.md)")
		traceDepth  = flag.Int("trace-depth", 0, "per-host flight-recorder ring depth in events (0 = tracing off)")
		traceOut    = flag.String("trace-out", "", "dump the flight-recorder rings to this file after the first run (\"-\" = stdout); implies -trace-depth 1024 when unset")
		timelineOut = flag.String("timeline-out", "", "write the first run's execution timeline as Chrome trace_event JSON to this file (load in chrome://tracing or Perfetto)")
		snapEvery   = flag.Duration("snapshot-every", 0, "capture a full mid-run result snapshot at this virtual-time interval")
		reportOut   = flag.String("report", "", "write the first run's structured run report as JSON to this file (\"-\" = stdout); arms per-event-kind cost attribution and exits nonzero on a non-clean faults verdict")
		reportMD    = flag.String("report-md", "", "write the first run's structured run report as markdown to this file (\"-\" = stdout)")
		plotDir     = flag.String("plot-dir", "", "sweep mode: render the campaign's plots (or derived defaults) as SVG files into this directory (see docs/SWEEPS.md)")

		bw       = flag.Float64("bw", 10e6, "legacy mode: bottleneck bandwidth in bits/second")
		rtt      = flag.Duration("rtt", 60*time.Millisecond, "legacy mode: round-trip propagation delay")
		lossPct  = flag.Float64("loss", 0, "legacy mode: random loss rate in percent")
		queue    = flag.Int("queue", 120, "legacy mode: bottleneck queue length in packets")
		ccName   = flag.String("cc", "cm", "legacy mode: congestion control (cm or native)")
		bytes    = flag.Int("bytes", 2_000_000, "legacy mode: transfer size in bytes")
		flows    = flag.Int("flows", 1, "legacy mode: concurrent connections to one receiver")
		seed     = flag.Int64("seed", 1, "legacy mode: random seed for the loss process")
		deadline = flag.Duration("deadline", time.Hour, "legacy mode: virtual-time deadline")
	)
	flag.Var(&sweeps, "sweep", "sweep mode: one axis as param=values (repeatable): v1,v2,... | min:max:steps | log:min:max:steps")
	flag.Var(&probes, "probe", "declarative sampling probe as target[@interval] (repeatable), e.g. link[0].queue_depth@100ms; series land in results and sweep aggregation (see docs/OBSERVABILITY.md)")
	flag.Var(params, "param", "builder parameter for a parameterised -scenario as name=value (repeatable), e.g. -scenario fattree -param k=8")
	buildProfile := flag.String("buildprofile", "", "build the -scenario topology under profiling, write <prefix>.cpu.pprof and <prefix>.heap.pprof, report build time, and exit without running")
	flag.Parse()

	if *list {
		for _, name := range scenario.List() {
			fmt.Printf("%-18s %s\n", name, scenario.Describe(name))
		}
		return
	}

	if *buildProfile != "" {
		if err := profileBuild(*buildProfile, *names, params, *shards); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *campaign != "" || len(sweeps) > 0 {
		set := make(map[string]bool)
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if err := runCampaign(*campaign, sweeps, probes, *names, params, *replicates, *shards, *parallel, *jsonOut, *csvOut, *checkInv, *plotDir, set); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}

	if *runs < 1 {
		*runs = 1
	}
	var specs []scenario.Spec
	if *names != "" {
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			spec, err := scenario.LookupParams(name, params)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			spec.Shards = *shards
			for r := 0; r < *runs; r++ {
				specs = append(specs, spec)
			}
		}
	} else {
		spec, err := legacySpec(*ccName, *bw, *rtt, *lossPct, *queue, *bytes, *flows, *seed, *deadline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for r := 0; r < *runs; r++ {
			specs = append(specs, spec)
		}
	}

	if *traceOut != "" && *traceDepth == 0 {
		*traceDepth = 1024
	}
	for i := range specs {
		specs[i].Probes = append(specs[i].Probes, probes...)
		if *traceDepth > 0 {
			specs[i].TraceDepth = *traceDepth
		}
		if *snapEvery > 0 {
			specs[i].SnapshotEvery = *snapEvery
		}
	}

	// Runs that need mid-run artifacts (a trace dump, an execution timeline,
	// snapshots for first-violation reporting, a run report) keep the built
	// Sim around, so they drive the pieces directly instead of going through
	// the batch runner; results are byte-identical either way.
	wantReport := *reportOut != "" || *reportMD != ""
	instrumented := *traceOut != "" || *timelineOut != "" || *snapEvery > 0 || wantReport
	// Cost attribution rides the run report and the execution timeline's
	// per-window breakdowns; profiling observes execution only, so arming it
	// never changes the Result.
	profile := wantReport || *timelineOut != ""
	var outcomes []scenario.RunOutcome
	var sims []*scenario.Sim
	if instrumented {
		for _, spec := range specs {
			sim, res, err := runInstrumentedSpec(spec, *timelineOut != "", profile)
			if err != nil {
				outcomes = append(outcomes, scenario.RunOutcome{Err: err.Error()})
				sims = append(sims, nil)
				continue
			}
			outcomes = append(outcomes, scenario.RunOutcome{Result: res})
			sims = append(sims, sim)
		}
	} else {
		outcomes = scenario.Runner{Parallel: *parallel}.RunAll(specs)
	}

	var firstSim *scenario.Sim
	firstRes := (*scenario.Result)(nil)
	for i, sim := range sims {
		if sim != nil {
			firstSim = sim
			firstRes = outcomes[i].Result
			break
		}
	}
	if *timelineOut != "" && firstSim != nil {
		if err := writeArtifact(*timelineOut, firstSim.ExecutionTimeline().WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *traceOut != "" && firstSim != nil {
		err := writeArtifact(*traceOut, func(w io.Writer) error {
			firstSim.DumpTrace(w)
			return nil
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	var runReport *report.Report
	if wantReport {
		if firstSim == nil || firstRes == nil {
			fmt.Fprintln(os.Stderr, "-report: no successful run to report")
			os.Exit(2)
		}
		runReport = report.Build(firstSim, firstRes)
		if *reportOut != "" {
			if err := writeArtifact(*reportOut, runReport.WriteJSON); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		if *reportMD != "" {
			if err := writeArtifact(*reportMD, runReport.WriteMarkdown); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
	}
	if *probeCSV != "" {
		err := writeArtifact(*probeCSV, func(w io.Writer) error {
			for _, o := range outcomes {
				if o.Result == nil {
					continue
				}
				series := make([]*probe.Series, len(o.Result.Series))
				for i := range o.Result.Series {
					series[i] = &o.Result.Series[i]
				}
				_, err := io.WriteString(w, probe.CSV(series...))
				return err
			}
			return fmt.Errorf("-probe-csv: no successful run to report")
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outcomes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		for i, o := range outcomes {
			if i > 0 {
				fmt.Println()
			}
			printResult(o)
		}
	}
	if *checkInv {
		var violations []faults.Violation
		firstAt := int64(-1)
		for i, o := range outcomes {
			if o.Result == nil {
				continue
			}
			if instrumented && sims[i] != nil && len(sims[i].Snapshots()) > 0 {
				vs, fa := faults.CheckSnapshots(sims[i].Snapshots(), o.Result)
				violations = append(violations, vs...)
				if fa >= 0 && (firstAt < 0 || fa < firstAt) {
					firstAt = fa
				}
			} else {
				violations = append(violations, faults.Check(o.Result)...)
			}
		}
		if firstAt >= 0 {
			fmt.Fprintf(os.Stderr, "first invariant violation at t=%v\n", time.Duration(firstAt))
		}
		if reportViolations(violations) {
			// A violation with the flight recorder armed but no -trace-out:
			// dump the rings to stderr so the evidence isn't lost.
			if *traceOut == "" && *traceDepth > 0 && firstSim != nil {
				firstSim.DumpTrace(os.Stderr)
			}
			os.Exit(1)
		}
	}
	// The run report's verdict carries the same weight as -check-invariants:
	// a non-clean report is a failed run.
	if runReport != nil && !runReport.Faults.Clean {
		reportViolations(runReport.Faults.Violations)
		os.Exit(1)
	}
	for _, o := range outcomes {
		if o.Err != "" {
			os.Exit(1)
		}
	}
}

// runInstrumentedSpec builds and runs one spec in-process, keeping the Sim
// so mid-run artifacts (flight-recorder rings, execution timeline, mid-run
// snapshots) survive the run for the caller to export.
func runInstrumentedSpec(spec scenario.Spec, timeline, profile bool) (*scenario.Sim, *scenario.Result, error) {
	sim, err := scenario.Build(spec)
	if err != nil {
		return nil, nil, err
	}
	if timeline {
		sim.EnableExecutionTimeline()
	}
	if profile {
		sim.EnableProfiling()
	}
	if err := sim.Start(); err != nil {
		return nil, nil, err
	}
	sim.RunToEnd()
	return sim, sim.Finish(), nil
}

// writeArtifact writes one output file ("-" = stdout) through fn.
func writeArtifact(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// reportViolations prints invariant violations to stderr, returning whether
// there were any.
func reportViolations(violations []faults.Violation) bool {
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "invariant violation: %s\n", v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "%d invariant violation(s)\n", len(violations))
		return true
	}
	return false
}

// runCampaign executes sweep mode: a campaign loaded from a JSON file, or
// one assembled from -scenario plus repeated -sweep axes. With -campaign,
// explicitly passed -replicates/-shards override the file's values; a
// -scenario alongside -campaign is rejected rather than silently ignored.
func runCampaign(file string, sweeps []string, probes []probe.Spec, names string, params map[string]float64, replicates, shards, parallel int, jsonOut, csvOut, checkInv bool, plotDir string, set map[string]bool) error {
	var camp sweep.Campaign
	switch {
	case file != "" && len(sweeps) > 0:
		return fmt.Errorf("-campaign and -sweep are mutually exclusive")
	case file != "":
		if set["scenario"] {
			return fmt.Errorf("-campaign and -scenario are mutually exclusive (the campaign file names its base)")
		}
		if len(params) > 0 {
			return fmt.Errorf("-campaign and -param are mutually exclusive (the campaign file carries its params)")
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &camp); err != nil {
			return fmt.Errorf("campaign %s: %w", file, err)
		}
		if set["replicates"] {
			camp.Replicates = replicates
		}
		if set["shards"] {
			camp.Shards = shards
		}
	default:
		if names == "" || strings.Contains(names, ",") {
			return fmt.Errorf("-sweep needs exactly one base -scenario")
		}
		camp = sweep.Campaign{Name: names, Scenario: names, Params: params, Replicates: replicates, Shards: shards}
		for _, s := range sweeps {
			axis, err := parseSweepAxis(s)
			if err != nil {
				return err
			}
			camp.Axes = append(camp.Axes, axis)
		}
	}
	// CLI probes stack on whatever the campaign file declares; each becomes a
	// probe.* metric column of the aggregated output.
	camp.Probes = append(camp.Probes, probes...)
	res, err := camp.Run(scenario.Runner{Parallel: parallel})
	if err != nil {
		return err
	}
	switch {
	case csvOut:
		fmt.Print(res.CSV())
	case jsonOut:
		data, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", data)
	default:
		fmt.Print(res.Table())
	}
	if plotDir != "" {
		if err := os.MkdirAll(plotDir, 0o755); err != nil {
			return err
		}
		files, err := camp.WritePlots(res, plotDir)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d plot(s) to %s: %s\n", len(files), plotDir, strings.Join(files, " "))
	}
	if checkInv && reportViolations(faults.CheckCampaign(res)) {
		return fmt.Errorf("campaign %s failed invariant checking", camp.Name)
	}
	return nil
}

// profileBuild builds one scenario's topology with CPU and heap profiling
// around scenario.Build only — no traffic runs — so the profiles isolate
// topology construction and route installation. It writes <prefix>.cpu.pprof
// and <prefix>.heap.pprof and reports wall-clock build time and heap use.
func profileBuild(prefix, name string, params map[string]float64, shards int) error {
	if name == "" || strings.Contains(name, ",") {
		return fmt.Errorf("-buildprofile needs exactly one -scenario")
	}
	spec, err := scenario.LookupParams(name, params)
	if err != nil {
		return err
	}
	spec.Shards = shards
	cpu, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cpu); err != nil {
		cpu.Close()
		return err
	}
	start := time.Now()
	sim, err := scenario.Build(spec)
	elapsed := time.Since(start)
	pprof.StopCPUProfile()
	if cerr := cpu.Close(); cerr != nil {
		return cerr
	}
	if err != nil {
		return err
	}
	heap, err := os.Create(prefix + ".heap.pprof")
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(heap); err != nil {
		heap.Close()
		return err
	}
	if err := heap.Close(); err != nil {
		return err
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("built %s: %d nodes, %d links in %v (heap in use %d MB)\n",
		spec.Name, len(sim.Nodes()), len(spec.Links), elapsed.Round(time.Millisecond), ms.HeapInuse>>20)
	fmt.Printf("profiles: %s.cpu.pprof %s.heap.pprof (go tool pprof <file>)\n", prefix, prefix)
	return nil
}

// parseSweepAxis parses one -sweep flag: "param=v1,v2,..." (a list, strings
// when any value is non-numeric), "param=min:max:steps" (linear) or
// "param=log:min:max:steps".
func parseSweepAxis(s string) (sweep.Axis, error) {
	param, spec, ok := strings.Cut(s, "=")
	if !ok || param == "" || spec == "" {
		return sweep.Axis{}, fmt.Errorf("-sweep %q: want param=values", s)
	}
	axis := sweep.Axis{Param: param}
	if colons := strings.Split(spec, ":"); len(colons) > 1 {
		if colons[0] == "log" {
			axis.Scale = sweep.ScaleLog
			colons = colons[1:]
		}
		if len(colons) != 3 {
			return sweep.Axis{}, fmt.Errorf("-sweep %q: range wants min:max:steps", s)
		}
		var err error
		if axis.Min, err = strconv.ParseFloat(colons[0], 64); err != nil {
			return sweep.Axis{}, fmt.Errorf("-sweep %q: bad min %q", s, colons[0])
		}
		if axis.Max, err = strconv.ParseFloat(colons[1], 64); err != nil {
			return sweep.Axis{}, fmt.Errorf("-sweep %q: bad max %q", s, colons[1])
		}
		if axis.Steps, err = strconv.Atoi(colons[2]); err != nil || axis.Steps < 1 {
			return sweep.Axis{}, fmt.Errorf("-sweep %q: bad steps %q", s, colons[2])
		}
		return axis, nil
	}
	parts := strings.Split(spec, ",")
	nums := make([]float64, 0, len(parts))
	numeric := true
	for _, p := range parts {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			numeric = false
			break
		}
		nums = append(nums, v)
	}
	if numeric {
		axis.Values = nums
	} else {
		axis.Strings = parts
	}
	return axis, nil
}

// legacySpec maps the original cmsim flags onto a point-to-point scenario.
func legacySpec(cc string, bw float64, rtt time.Duration, lossPct float64, queue, bytes, flows int, seed int64, deadline time.Duration) (scenario.Spec, error) {
	var ccMode string
	switch cc {
	case "cm":
		ccMode = scenario.CCCM
	case "native":
		ccMode = scenario.CCNative
	default:
		return scenario.Spec{}, fmt.Errorf("unknown -cc %q (want cm or native)", cc)
	}
	return scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    netsim.Bandwidth(bw),
			Delay:        rtt / 2,
			LossRate:     lossPct / 100,
			QueuePackets: queue,
			Seed:         seed,
		},
		Workloads: []scenario.Workload{{
			Kind:  scenario.KindBulk,
			From:  "sender",
			To:    "receiver",
			Flows: flows,
			Bytes: bytes,
			CC:    ccMode,
		}},
		Duration: deadline,
		Seed:     seed,
	}), nil
}

// printResult renders one outcome for the terminal.
func printResult(o scenario.RunOutcome) {
	if o.Err != "" {
		fmt.Printf("error: %s\n", o.Err)
		return
	}
	r := o.Result
	fmt.Printf("scenario %s: %d flow(s), virtual time %v\n", r.Scenario, len(r.Flows), r.EndTime.Round(time.Millisecond))
	if rr := r.Routing; rr != nil {
		converged := "converged"
		if !rr.Converged {
			converged = "NOT converged by end of run"
		}
		fmt.Printf("  routing [%s protocol]: %d agent(s), %d msgs (%d triggered, %d refreshes), %d table change(s), %s (deadline %v), post-convergence drops=%d\n",
			rr.Mode, rr.Agents, rr.MessagesSent, rr.TriggeredUpdates, rr.Refreshes,
			rr.TableChanges, converged, rr.ConvergenceDeadline.Round(time.Millisecond),
			rr.PostConvergenceRouteDrops)
		if rr.FaultDropped+rr.FaultDelayed+rr.FaultDuplicated > 0 {
			fmt.Printf("    control-faults: dropped=%d delayed=%d duplicated=%d holddown-suppressed=%d\n",
				rr.FaultDropped, rr.FaultDelayed, rr.FaultDuplicated, rr.HolddownSuppressed)
		}
		if rr.AuditedPairs > 0 {
			fmt.Printf("    audit: %d pair(s), loops=%d unreached=%d partitioned=%d pending-at-end=%d\n",
				rr.AuditedPairs, rr.LoopPairs, rr.UnreachedPairs, rr.PartitionedPairs, rr.PendingAtEnd)
		}
	}
	for _, ev := range r.Events {
		fired := "fired"
		if !ev.Fired {
			fired = "not fired"
			if ev.PastEnd {
				fired = "past end, not fired"
			}
		}
		dir := ev.Direction
		if dir == "" {
			dir = "both"
		}
		target := fmt.Sprintf("link=%d dir=%s", ev.Link, dir)
		if ev.HostEvent() {
			target = "host=" + ev.Host
		}
		extra := ""
		if ev.FlowsWiped > 0 {
			extra = fmt.Sprintf(" flows-wiped=%d", ev.FlowsWiped)
		}
		fmt.Printf("  event t=%v %s %s %s routes-changed=%d%s\n",
			ev.At, ev.Kind, target, fired, ev.RoutesChanged, extra)
	}
	for _, f := range r.Flows {
		status := "ok"
		if !f.Completed {
			status = "incomplete"
		}
		extra := ""
		if f.LayerSwitches > 0 {
			extra = fmt.Sprintf(" layer-switches=%d", f.LayerSwitches)
		}
		fmt.Printf("  flow %d.%d %s->%s:%d [%s] %s delivered=%d elapsed=%v throughput=%.0f KB/s rtx=%d timeouts=%d srtt=%v%s\n",
			f.Workload, f.Flow, f.From, f.To, f.Port, f.CC, status,
			f.Delivered, f.Elapsed.Round(time.Millisecond), f.ThroughputKBps,
			f.Retransmissions, f.Timeouts, f.SRTT.Round(time.Millisecond), extra)
	}
	for _, l := range r.Links {
		if l.SentPackets == 0 && l.DownDrops == 0 {
			continue
		}
		fmt.Printf("  link %s: sent=%d drops(queue/bernoulli/burst/down)=%d/%d/%d/%d delivered=%dB",
			l.Name, l.SentPackets, l.QueueDrops, l.BernoulliDrops, l.BurstDrops, l.DownDrops, l.DeliveredOctets)
		if l.GEGoodPackets+l.GEBadPackets > 0 {
			fmt.Printf(" ge(good/bad/transitions)=%d/%d/%d", l.GEGoodPackets, l.GEBadPackets, l.GETransitions)
		}
		fmt.Println()
	}
	for _, h := range r.Hosts {
		if !h.Router {
			continue
		}
		fmt.Printf("  router %s: forwarded=%d (%dB) forward-miss=%d route-miss=%d ttl-expired=%d\n",
			h.Name, h.ForwardedPackets, h.ForwardedBytes, h.ForwardMissDrops, h.RouteMissDrops, h.TTLExpiredDrops)
	}
	for _, c := range r.CMs {
		fmt.Printf("  cm %s: %d macroflow(s), %d flows, %d grants, %d updates, %d notifies, %d queries\n",
			c.Host, c.Macroflows, c.Flows, c.GrantsIssued, c.Updates, c.Notifies, c.Queries)
		if c.Restarts > 0 || c.StaleFlowCalls > 0 || c.MacroflowResets > 0 {
			fmt.Printf("    churn: restarts=%d stale-calls=%d macroflow-resets=%d stranded=%d\n",
				c.Restarts, c.StaleFlowCalls, c.MacroflowResets, c.StrandedFlows)
		}
		if c.DroppedSends+c.DelayedSends+c.DroppedUpdates+c.DelayedUpdates > 0 {
			fmt.Printf("    notify-faults: dropped-sends=%d delayed-sends=%d dropped-updates=%d delayed-updates=%d stale-updates-dropped=%d\n",
				c.DroppedSends, c.DelayedSends, c.DroppedUpdates, c.DelayedUpdates, c.StaleUpdatesDropped)
		}
	}
}
