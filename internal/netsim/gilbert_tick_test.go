package netsim

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

// tickGE is a time-driven model whose state flips are frequent enough to
// count: 10 ms ticks, symmetric 30% transition probability, hard-dropping
// Bad state.
func tickGE() *GilbertElliott {
	return &GilbertElliott{PGoodBad: 0.3, PBadGood: 0.3, LossBad: 1, Tick: 10 * time.Millisecond}
}

// TestGETickTransitionsWithoutTraffic: a time-driven model advances on the
// clock alone — the defining difference from the packet-driven mode, whose
// process is frozen while no packets are offered.
func TestGETickTransitionsWithoutTraffic(t *testing.T) {
	s := simtime.NewScheduler()
	l := NewLink(s, LinkConfig{Bandwidth: 10 * Mbps, Gilbert: tickGE(), Seed: 3, QueuePackets: 10}, &collector{})
	s.RunUntil(10 * time.Second)
	if got := l.Stats().GETransitions; got < 100 {
		t.Fatalf("time-driven model made %d transitions in 10 s of silence, want ~300", got)
	}

	// Packet-driven control: no arrivals, no transitions.
	s2 := simtime.NewScheduler()
	pd := &GilbertElliott{PGoodBad: 0.3, PBadGood: 0.3, LossBad: 1}
	l2 := NewLink(s2, LinkConfig{Bandwidth: 10 * Mbps, Gilbert: pd, Seed: 3, QueuePackets: 10}, &collector{})
	s2.RunUntil(10 * time.Second)
	if got := l2.Stats().GETransitions; got != 0 {
		t.Fatalf("packet-driven model transitioned %d times without traffic", got)
	}
}

// TestGETickBurstsDecoupleFromOfferedLoad: with a clock-driven process the
// number of state transitions over a fixed virtual time is set by the clock,
// not by how many packets the link carries — a low-rate flow sees the same
// fade timing as a heavy one. Under the packet-driven model the same two
// loads differ by the load ratio.
func TestGETickBurstsDecoupleFromOfferedLoad(t *testing.T) {
	run := func(g *GilbertElliott, interval time.Duration) LinkStats {
		s := simtime.NewScheduler()
		l := NewLink(s, LinkConfig{Bandwidth: 100 * Mbps, Gilbert: g, Seed: 17, QueuePackets: 1000}, &collector{})
		for at := interval; at <= 10*time.Second; at += interval {
			s.At(at, func() { l.Send(mkpkt(1000)) })
		}
		s.RunUntil(10 * time.Second)
		return l.Stats()
	}

	// Time-driven: 100 pkt/s vs 10 pkt/s. The tick chain draws from its own
	// RNG, so the fade schedule is not merely similar across loads — it is
	// the same schedule, transition for transition.
	heavy := run(tickGE(), 10*time.Millisecond)
	light := run(tickGE(), 100*time.Millisecond)
	if heavy.GETransitions == 0 {
		t.Fatal("time-driven model made no transitions")
	}
	if heavy.GETransitions != light.GETransitions {
		t.Fatalf("time-driven fade schedule depends on offered load: heavy=%d light=%d",
			heavy.GETransitions, light.GETransitions)
	}

	// Packet-driven control: the same comparison scales with offered load.
	pd := func() *GilbertElliott { return &GilbertElliott{PGoodBad: 0.3, PBadGood: 0.3, LossBad: 1} }
	heavyPD := run(pd(), 10*time.Millisecond)
	lightPD := run(pd(), 100*time.Millisecond)
	if heavyPD.GETransitions < 4*lightPD.GETransitions {
		t.Fatalf("packet-driven transitions should scale with load: heavy=%d light=%d",
			heavyPD.GETransitions, lightPD.GETransitions)
	}

	// The time-driven model still drops in the Bad state.
	if heavy.BurstDrops == 0 {
		t.Fatal("time-driven model produced no burst drops")
	}
	if heavy.RandomDrops != heavy.BurstDrops+heavy.BernoulliDrops {
		t.Fatalf("drop split inconsistent: %+v", heavy)
	}
}

// TestGETickStopsOnRemovalAndSurvivesReplacement: removing the model stops
// the transition clock; installing a replacement restarts it cleanly (no
// double-driving from the stale chain).
func TestGETickStopsOnRemovalAndSurvivesReplacement(t *testing.T) {
	s := simtime.NewScheduler()
	l := NewLink(s, LinkConfig{Bandwidth: 10 * Mbps, Gilbert: tickGE(), Seed: 3, QueuePackets: 10}, &collector{})
	s.RunUntil(2 * time.Second)
	mid := l.Stats().GETransitions
	if mid == 0 {
		t.Fatal("no transitions before removal")
	}
	l.SetGilbert(nil)
	s.RunUntil(4 * time.Second)
	if got := l.Stats().GETransitions; got != mid {
		t.Fatalf("transitions after removal: %d -> %d", mid, got)
	}
	// Replacement restarts the clock at the new cadence.
	g := tickGE()
	g.Tick = 5 * time.Millisecond
	l.SetGilbert(g)
	s.RunUntil(6 * time.Second)
	after := l.Stats().GETransitions
	if after <= mid {
		t.Fatal("replacement model did not transition")
	}
	// Installing over a live time-driven model must not leave two chains
	// running: transitions per second stay in line with one 5 ms clock at
	// 30% flip probability (~60/s), not two.
	l.SetGilbert(g)
	before := l.Stats().GETransitions
	s.RunUntil(16 * time.Second)
	perSec := float64(l.Stats().GETransitions-before) / 10
	if perSec > 90 {
		t.Fatalf("transition rate %v/s suggests a duplicated tick chain", perSec)
	}
}

// TestGETickConfigRoundTrip: the tick survives Config snapshots and the
// withDefaults normalisation.
func TestGETickConfigRoundTrip(t *testing.T) {
	s := simtime.NewScheduler()
	g := &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.2, Tick: 7 * time.Millisecond}
	l := NewLink(s, LinkConfig{Bandwidth: 10 * Mbps, Gilbert: g, QueuePackets: 10}, &collector{})
	cfg := l.Config()
	if cfg.Gilbert == nil || cfg.Gilbert.Tick != 7*time.Millisecond {
		t.Fatalf("config snapshot lost the tick: %+v", cfg.Gilbert)
	}
	if cfg.Gilbert.LossBad != 1 {
		t.Fatalf("withDefaults not applied: %+v", cfg.Gilbert)
	}
	bad := &GilbertElliott{PGoodBad: 0.1, PBadGood: 0.2, Tick: -time.Second}
	if err := bad.Validate(); err == nil {
		t.Fatal("negative tick must fail validation")
	}
}
