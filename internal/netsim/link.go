package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/simtime"
)

// Bandwidth expresses link capacity in bits per second.
type Bandwidth float64

// Convenience bandwidth units.
const (
	Kbps Bandwidth = 1e3
	Mbps Bandwidth = 1e6
	Gbps Bandwidth = 1e9
)

// BytesPerSecond converts the bandwidth to bytes per second.
func (b Bandwidth) BytesPerSecond() float64 { return float64(b) / 8 }

// String formats the bandwidth in a human-readable unit.
func (b Bandwidth) String() string {
	switch {
	case b >= Gbps:
		return fmt.Sprintf("%.3gGbps", float64(b)/float64(Gbps))
	case b >= Mbps:
		return fmt.Sprintf("%.3gMbps", float64(b)/float64(Mbps))
	case b >= Kbps:
		return fmt.Sprintf("%.3gKbps", float64(b)/float64(Kbps))
	default:
		return fmt.Sprintf("%.3gbps", float64(b))
	}
}

// TransmitTime returns the serialisation delay of n bytes at this bandwidth.
func (b Bandwidth) TransmitTime(n int) time.Duration {
	if b <= 0 {
		return 0
	}
	return simtime.FromSeconds(float64(n) * 8 / float64(b))
}

// LinkConfig describes one unidirectional shaped channel — the simulator's
// equivalent of a Dummynet pipe on the paper's testbed.
type LinkConfig struct {
	// Name is used in diagnostics and statistics.
	Name string `json:"name,omitempty"`
	// Bandwidth is the serialisation rate. Zero means infinitely fast.
	Bandwidth Bandwidth `json:"bandwidth,omitempty"`
	// Delay is the one-way propagation delay added after serialisation.
	Delay time.Duration `json:"delay,omitempty"`
	// QueuePackets / QueueBytes bound the drop-tail buffer in front of the
	// link. If both are zero a default of 100 packets is used.
	QueuePackets int `json:"queue_packets,omitempty"`
	QueueBytes   int `json:"queue_bytes,omitempty"`
	// LossRate is an independent Bernoulli drop probability applied to each
	// packet before queueing — the random loss knob used for Figure 3.
	LossRate float64 `json:"loss_rate,omitempty"`
	// ReorderRate is the probability that a packet is held back and
	// delivered after an extra ReorderDelay, arriving behind packets sent
	// after it. Best-effort IP may reorder; the transports must cope.
	ReorderRate float64 `json:"reorder_rate,omitempty"`
	// ReorderDelay is the extra delay applied to reordered packets
	// (default: four packet transmission times at the link rate).
	ReorderDelay time.Duration `json:"reorder_delay,omitempty"`
	// DuplicateRate is the probability that a delivered packet is delivered
	// twice, modelling duplication in the network.
	DuplicateRate float64 `json:"duplicate_rate,omitempty"`
	// ECNThresholdPackets enables CE marking of ECN-capable packets when the
	// queue depth reaches the threshold.
	ECNThresholdPackets int `json:"ecn_threshold_packets,omitempty"`
	// Gilbert enables the two-state bursty loss model alongside the Bernoulli
	// LossRate knob. It advances on every offered packet (it is sampled
	// before the Bernoulli draw). Nil disables it.
	Gilbert *GilbertElliott `json:"gilbert,omitempty"`
	// Seed seeds the link's private random source so loss patterns are
	// reproducible. A zero seed uses 1.
	Seed int64 `json:"seed,omitempty"`
}

// LinkStats are cumulative counters for a link.
type LinkStats struct {
	SentPackets int
	SentBytes   int64
	// RandomDrops is the sum of BernoulliDrops and BurstDrops, kept so the
	// JSON encoding of results predating the split still reads the same.
	RandomDrops int
	// BernoulliDrops counts independent LossRate drops; BurstDrops counts
	// drops by the Gilbert-Elliott model.
	BernoulliDrops int
	BurstDrops     int
	// DownDrops counts packets offered while the link was administratively
	// down (a scheduled outage).
	DownDrops  int
	QueueDrops int
	Reordered  int
	Duplicated int
	// GEGoodPackets / GEBadPackets count packet arrivals per Gilbert-Elliott
	// state (the model's state occupancy, measured in offered packets);
	// GETransitions counts state flips.
	GEGoodPackets   int
	GEBadPackets    int
	GETransitions   int
	DeliveredAt     time.Duration // virtual time of the most recent delivery
	BusyTime        time.Duration // cumulative serialisation time
	DeliveredOctets int64
}

// Link is a unidirectional channel with finite bandwidth, propagation delay, a
// drop-tail queue and optional random loss. Packets presented with Send are
// queued, serialised in FIFO order at the link rate, and delivered to the
// destination Receiver after the propagation delay.
//
// Links are mutable mid-run: the dynamics subsystem may take a link down,
// bring it back up, or swap bandwidth/delay/loss parameters while packets are
// in flight. Parameter changes apply to packets serialised after the change;
// packets already serialising or propagating complete under the old
// parameters (their delivery events are already scheduled). While a link is
// down, newly offered packets are dropped and queued packets are held; the
// queue resumes draining when the link comes back up.
type Link struct {
	cfg   LinkConfig
	sched *simtime.Scheduler
	dst   Receiver
	queue *Queue
	// key orders this link's delivery events against same-instant deliveries
	// from other links (see SortKey). Derived from the direction name at
	// construction so serial and sharded builds agree on it.
	key uint32
	// deliverSeq is the link-local delivery sequence: incremented once per
	// serialised packet and attached to the hand-up event as the scheduler's
	// sub-sequence tie-break, so multiple same-instant deliveries of one
	// direction order by an explicit, shard-independent number instead of
	// scheduler insertion order. uint32 wrap after ~4.3e9 deliveries on one
	// direction could misorder only a pair tied at the same instant across
	// the wrap — beyond any run this simulator performs.
	deliverSeq uint32
	// rng is the link's private random source for loss/reorder/duplicate
	// draws, created lazily by random(): a rand.Rand source is ~5 KB, and in
	// an internet-scale topology almost every link is lossless and never
	// draws. Laziness is invisible to determinism — the seed is fixed at
	// construction, so the stream is identical whenever it is first used.
	rng *rand.Rand

	// gilbert is the installed bursty-loss model (nil = disabled); geBad is
	// its current state. geTickGen numbers time-driven installations so a
	// replaced model's pending tick chain expires instead of double-driving
	// the state, and geTickRNG is the tick chain's private random source,
	// split from the packet RNG so traffic cannot shift the fade schedule
	// (see armGETick).
	gilbert   *GilbertElliott
	geBad     bool
	geTickGen uint64
	geTickRNG *rand.Rand

	busy bool
	down bool
	// txDelay is the propagation delay captured when the in-flight packet
	// started serialising, so a set-delay event applies only to packets
	// serialised after it.
	txDelay time.Duration
	stats   LinkStats

	// tap, when non-nil, observes every packet that is delivered (after
	// loss and queueing). Experiments use taps to trace rates.
	tap func(pkt *Packet)
	// dropTap observes dropped packets (random or queue drops).
	dropTap func(pkt *Packet, reason string)
	// sendTap observes every packet accepted into the transmit queue; the
	// flight recorder uses it for enqueue events. It runs on the sending
	// side, unlike tap which runs where the packet is handed up.
	sendTap func(pkt *Packet)

	// remote, when non-nil, replaces local delivery scheduling: instead of
	// putting the delivery event on this link's (sending-side) scheduler, the
	// serialised packet is handed to the hook with its arrival time and the
	// sender-side time it left the wire. Sharded execution installs it on
	// links whose destination lives on another shard; the receiving shard
	// later calls DeliverRemote. See docs/PERF.md, "Sharded execution".
	remote RemoteDeliver

	// txDone and handUpArg are built once so the per-packet transmit and
	// delivery events schedule with AfterArg instead of a fresh closure,
	// keeping the steady-state path allocation-free.
	txDone    func(any)
	handUpArg func(any)
}

// NewLink creates a link delivering to dst. The destination may be changed
// later with SetDestination (used while wiring up topologies).
func NewLink(sched *simtime.Scheduler, cfg LinkConfig, dst Receiver) *Link {
	if sched == nil {
		panic("netsim: NewLink requires a scheduler")
	}
	qp, qb := cfg.QueuePackets, cfg.QueueBytes
	if qp == 0 && qb == 0 {
		qp = 100
	}
	q := NewQueue(qp, qb, DropTail)
	if cfg.ECNThresholdPackets > 0 {
		q.SetECNThreshold(cfg.ECNThresholdPackets)
	}
	l := &Link{
		cfg:   cfg,
		sched: sched,
		dst:   dst,
		queue: q,
		key:   nameKey(cfg.Name),
	}
	if cfg.Gilbert != nil {
		g := cfg.Gilbert.withDefaults()
		l.gilbert = &g
		if g.Tick > 0 {
			l.armGETick()
		}
	}
	l.txDone = func(x any) {
		l.deliver(x.(*Packet))
		l.startTransmit()
	}
	l.handUpArg = func(x any) { l.handUp(x.(*Packet)) }
	return l
}

// nameKey hashes a link-direction name (FNV-32a) into a scheduler sort key.
// The key orders same-instant delivery events from different links
// identically in serial and sharded executions, where no shared insertion
// order exists — see simtime.AtArgKeyed. Zero is reserved to mean "unkeyed",
// so a hash of zero is bumped; distinct names colliding on one key merely
// falls back to the insertion-order tie-break for that pair.
func nameKey(name string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	if h == 0 {
		h = 1
	}
	return h
}

// SortKey returns the link's delivery sort key: the tie-break the scheduler
// uses to order this link's hand-up events against other links' deliveries
// scheduled at the same instant. Sharded execution passes it to InjectAt so
// cross-shard deliveries take the same position the serial run gives them.
func (l *Link) SortKey() uint32 { return l.key }

// random returns the link's private random source, creating it on first use
// from the construction-time seed.
func (l *Link) random() *rand.Rand {
	if l.rng == nil {
		seed := l.cfg.Seed
		if seed == 0 {
			seed = 1
		}
		l.rng = rand.New(rand.NewSource(seed))
	}
	return l.rng
}

// SetDestination points the link at a new receiver.
func (l *Link) SetDestination(dst Receiver) { l.dst = dst }

// SetTap installs an observer invoked for every delivered packet.
func (l *Link) SetTap(fn func(pkt *Packet)) { l.tap = fn }

// SetDropTap installs an observer invoked for every dropped packet with the
// reason ("loss" for Bernoulli loss, "burst" for Gilbert-Elliott loss, "down"
// for an out-of-service link, "queue" for buffer overflow).
func (l *Link) SetDropTap(fn func(pkt *Packet, reason string)) { l.dropTap = fn }

// SetSendTap installs an observer invoked for every packet accepted into the
// transmit queue (after the loss draws and any drop-tail eviction).
func (l *Link) SetSendTap(fn func(pkt *Packet)) { l.sendTap = fn }

// RemoteDeliver receives a serialised packet whose delivery belongs to
// another scheduler: the packet arrives at the destination at time arrive;
// sent is the sender-side virtual time serialisation completed (the insertion
// stamp for deterministic ordering) and seq the link-local delivery sequence
// (the sub-sequence tie-break; see Link.deliverSeq). dup is the
// duplication-impairment clone to hand up immediately after pkt, or nil.
type RemoteDeliver func(pkt, dup *Packet, arrive, sent time.Duration, seq uint32)

// SetRemoteDeliver diverts this link's deliveries to a cross-scheduler hook.
// Serialisation, queueing and the loss/reorder/duplicate draws still run on
// the sending side (they consume the link's private RNG in offered-packet
// order); only the final hand-up moves to the receiving side, which performs
// it by calling DeliverRemote at the packet's arrival time.
func (l *Link) SetRemoteDeliver(fn RemoteDeliver) { l.remote = fn }

// Config returns a snapshot of the link configuration. For a link whose
// parameters were changed mid-run, it reflects the current values; the
// Gilbert field is a defensive copy of the live model (with its defaults
// normalised), so mutating the snapshot never affects the running link.
func (l *Link) Config() LinkConfig {
	cfg := l.cfg
	if l.gilbert != nil {
		g := *l.gilbert
		cfg.Gilbert = &g
	} else {
		cfg.Gilbert = nil
	}
	return cfg
}

// SetBandwidth changes the serialisation rate. The packet currently being
// serialised (if any) completes at the old rate.
func (l *Link) SetBandwidth(bw Bandwidth) { l.cfg.Bandwidth = bw }

// SetDelay changes the propagation delay for packets delivered after the call.
func (l *Link) SetDelay(d time.Duration) { l.cfg.Delay = d }

// SetLossRate changes the independent Bernoulli drop probability.
func (l *Link) SetLossRate(p float64) { l.cfg.LossRate = p }

// SetGilbert installs (or, with nil, removes) the bursty loss model. The model
// starts in the Good state; replacing a model resets its state. A model with
// Tick > 0 is time-driven: its transition clock starts (or restarts) here.
func (l *Link) SetGilbert(g *GilbertElliott) {
	l.geBad = false
	l.geTickGen++
	if g == nil {
		l.gilbert = nil
		return
	}
	ng := g.withDefaults()
	l.gilbert = &ng
	if ng.Tick > 0 {
		l.armGETick()
	}
}

// SetDown takes the link down (true) or brings it back up (false). While down,
// offered packets are dropped (counted as DownDrops) and already-queued
// packets are held; bringing the link up resumes draining the queue. Packets
// already serialising or propagating when the link goes down complete
// normally, matching an outage that begins behind them.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if !down && !l.busy {
		l.startTransmit()
	}
}

// IsDown reports whether the link is administratively down.
func (l *Link) IsDown() bool { return l.down }

// Stats returns a copy of the link counters. The copy spans both writing
// sides of the ownership split, so under sharded execution it may only be
// taken at quiescence (a barrier, or after the run); mid-run samplers use
// the single-side accessors below instead.
func (l *Link) Stats() LinkStats { return l.stats }

// SentCounters returns the transmit-side packet and byte counters. Written
// only by the sending side's scheduler, so a sampler there may read mid-run.
func (l *Link) SentCounters() (packets int, bytes int64) {
	return l.stats.SentPackets, l.stats.SentBytes
}

// DropCount returns queue + loss-process + down drops, all written by the
// sending side's scheduler.
func (l *Link) DropCount() int {
	return l.stats.QueueDrops + l.stats.RandomDrops + l.stats.DownDrops
}

// DeliveredBytes returns the delivered-octet counter, written only by the
// receiving side's scheduler (DeliverRemote under sharding).
func (l *Link) DeliveredBytes() int64 { return l.stats.DeliveredOctets }

// QueueStats returns the counters of the link's buffer.
func (l *Link) QueueStats() QueueStats { return l.queue.Stats() }

// QueueLen returns the instantaneous queue depth in packets.
func (l *Link) QueueLen() int { return l.queue.Len() }

// Utilization returns the fraction of virtual time the link spent
// serialising packets, measured against the elapsed time on the scheduler.
func (l *Link) Utilization() float64 {
	now := l.sched.Now()
	if now <= 0 {
		return 0
	}
	return float64(l.stats.BusyTime) / float64(now)
}

// Send presents a packet to the link. It applies random loss, enqueues the
// packet and starts the transmitter if idle. It returns false if the packet
// was dropped immediately (random loss or queue overflow).
func (l *Link) Send(pkt *Packet) bool {
	if pkt == nil {
		panic("netsim: Send(nil)")
	}
	if l.down {
		l.stats.DownDrops++
		if l.dropTap != nil {
			l.dropTap(pkt, "down")
		}
		pkt.Release()
		return false
	}
	// The Gilbert-Elliott process advances for every offered packet (its
	// occupancy counters are defined over offered packets), so it is sampled
	// before the memoryless Bernoulli knob.
	if l.gilbert != nil && l.geStep() {
		l.stats.RandomDrops++
		l.stats.BurstDrops++
		if l.dropTap != nil {
			l.dropTap(pkt, "burst")
		}
		pkt.Release()
		return false
	}
	if l.cfg.LossRate > 0 && l.random().Float64() < l.cfg.LossRate {
		l.stats.RandomDrops++
		l.stats.BernoulliDrops++
		if l.dropTap != nil {
			l.dropTap(pkt, "loss")
		}
		pkt.Release()
		return false
	}
	pkt.Enqueued = l.sched.Now()
	if victim := l.queue.Enqueue(pkt); victim != nil {
		l.stats.QueueDrops++
		if l.dropTap != nil {
			l.dropTap(victim, "queue")
		}
		victim.Release()
		if victim == pkt {
			return false
		}
	}
	if l.sendTap != nil {
		l.sendTap(pkt)
	}
	if !l.busy {
		l.startTransmit()
	}
	return true
}

// startTransmit serialises the head-of-line packet and schedules its delivery
// and the next transmission. A down link does not serialise: queued packets
// wait for SetDown(false).
func (l *Link) startTransmit() {
	if l.down {
		l.busy = false
		return
	}
	pkt := l.queue.Dequeue()
	if pkt == nil {
		l.busy = false
		return
	}
	l.busy = true
	txTime := l.cfg.Bandwidth.TransmitTime(pkt.Size)
	l.stats.BusyTime += txTime
	l.txDelay = l.cfg.Delay
	// Delivery happens after serialisation plus propagation; the link is
	// free to serialise the next packet as soon as this one has left.
	l.sched.AfterArgKind(txTime, simtime.KindPktTransmit, l.txDone, pkt)
}

func (l *Link) deliver(pkt *Packet) {
	l.stats.SentPackets++
	l.stats.SentBytes += int64(pkt.Size)
	// The delay captured at serialisation start: a set-delay event never
	// retimes the packet that was already on the wire. (A delay reduction can
	// still deliver a later packet before an earlier one — two packets really
	// are in flight on different-length paths, as after a route change.)
	delay := l.txDelay
	if l.cfg.ReorderRate > 0 && l.random().Float64() < l.cfg.ReorderRate {
		extra := l.cfg.ReorderDelay
		if extra <= 0 {
			extra = 4 * l.cfg.Bandwidth.TransmitTime(pkt.Size)
		}
		if extra <= 0 {
			extra = time.Millisecond
		}
		delay += extra
		l.stats.Reordered++
	}
	var dup *Packet
	if l.cfg.DuplicateRate > 0 && l.random().Float64() < l.cfg.DuplicateRate {
		// The clone must be taken before the original is handed up: the
		// receiver may release the original back to the pool.
		dup = pkt.Clone()
	}
	// Every serialised packet takes the next link-local delivery sequence
	// number; it rides on the hand-up event (or the cross-shard injection) as
	// the sub-sequence tie-break. Assigned in serialisation-completion order,
	// which is exactly the insertion order a serial run would use.
	l.deliverSeq++
	sub := l.deliverSeq
	if l.remote != nil {
		// Cross-scheduler delivery: the destination's shard performs the
		// hand-up (DeliverRemote) at the arrival time.
		now := l.sched.Now()
		l.remote(pkt, dup, now+delay, now, sub)
		return
	}
	if dup != nil {
		// Duplication is rare; the closure here is off the steady-state path.
		// (d rebinds dup so the closure captures a never-reassigned local by
		// value — capturing dup itself would heap-allocate its cell on every
		// deliver call and break the zero-alloc gate.)
		d := dup
		l.sched.AfterArgKeyed(delay, l.key, sub, simtime.KindPktDeliver, func(any) {
			l.handUp(pkt)
			l.stats.Duplicated++
			l.handUp(d)
		}, nil)
		return
	}
	// Hand-ups are keyed by the link direction so same-instant deliveries
	// from different links order by link identity — the only tie-break that
	// serial and sharded executions can both compute (see SortKey) — and
	// sub-sequenced by the delivery number within the direction.
	l.sched.AfterArgKeyed(delay, l.key, sub, simtime.KindPktDeliver, l.handUpArg, pkt)
}

// DeliverRemote is the receiving-side half of a cross-scheduler delivery: the
// destination shard calls it when the injected delivery event fires, passing
// its own clock as now. Delivery-side statistics (DeliveredAt,
// DeliveredOctets, Duplicated) are therefore only ever written by the
// destination shard, while the sending shard writes the serialisation-side
// counters — the field-level ownership split that keeps a shared Link struct
// race-free without locks.
func (l *Link) DeliverRemote(pkt, dup *Packet, now time.Duration) {
	l.handUpAt(pkt, now)
	if dup != nil {
		l.stats.Duplicated++
		l.handUpAt(dup, now)
	}
}

func (l *Link) handUp(pkt *Packet) { l.handUpAt(pkt, l.sched.Now()) }

func (l *Link) handUpAt(pkt *Packet, now time.Duration) {
	l.stats.DeliveredAt = now
	l.stats.DeliveredOctets += int64(pkt.Size)
	if l.tap != nil {
		l.tap(pkt)
	}
	if l.dst != nil {
		l.dst.Receive(pkt)
	} else {
		pkt.Release()
	}
}

// Duplex is a pair of links forming a bidirectional channel between two
// receivers, the common case when wiring two hosts together.
type Duplex struct {
	Forward *Link
	Reverse *Link
}

// NewDuplex builds a bidirectional channel using the same configuration for
// both directions (destination receivers are set separately with Connect).
func NewDuplex(sched *simtime.Scheduler, cfg LinkConfig) *Duplex {
	return NewDuplexOn(sched, sched, cfg)
}

// NewDuplexOn builds a bidirectional channel whose two directions run on
// (possibly) different schedulers: each direction is owned by the shard of
// the host that transmits on it, so fwd is the A-side scheduler and rev the
// B-side one. NewDuplex is the single-scheduler special case.
func NewDuplexOn(fwd, rev *simtime.Scheduler, cfg LinkConfig) *Duplex {
	fcfg := cfg
	rcfg := cfg
	fcfg.Name = cfg.Name + "-fwd"
	rcfg.Name = cfg.Name + "-rev"
	if cfg.Seed != 0 {
		rcfg.Seed = cfg.Seed + 1
	}
	return &Duplex{
		Forward: NewLink(fwd, fcfg, nil),
		Reverse: NewLink(rev, rcfg, nil),
	}
}

// Connect points the forward link at b and the reverse link at a.
func (d *Duplex) Connect(a, b Receiver) {
	d.Forward.SetDestination(b)
	d.Reverse.SetDestination(a)
}
