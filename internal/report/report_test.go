package report

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/probe"
	"repro/internal/scenario"
)

// runReport builds and runs the named canned scenario with profiling armed and
// returns the sim and its finished result.
func runReport(t *testing.T, name string, shards int) (*scenario.Sim, *scenario.Result) {
	t.Helper()
	spec, err := scenario.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = 2 * time.Second
	spec.Shards = shards
	spec.SnapshotEvery = 500 * time.Millisecond
	spec.Probes = []probe.Spec{
		{Target: "link[0].queue_depth"},
		{Target: "link[0].delivered_bytes"},
	}
	sim, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	sim.EnableProfiling()
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	sim.RunToEnd()
	return sim, sim.Finish()
}

// The report is a pure function of the simulation outcome: two identical runs
// must render byte-identical JSON and markdown once the wall-clock Perf
// section is stripped — and Perf itself must be present on a profiled run.
func TestReportDeterministicBytes(t *testing.T) {
	var docs [2][]byte
	var mds [2][]byte
	for i := range docs {
		sim, res := runReport(t, "grid", 0)
		r := Build(sim, res)
		if r.Perf == nil || r.Perf.Events == 0 {
			t.Fatal("profiled run produced a report without cost attribution")
		}
		var j, m bytes.Buffer
		if err := r.StripPerf().WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := r.StripPerf().WriteMarkdown(&m); err != nil {
			t.Fatal(err)
		}
		docs[i] = j.Bytes()
		mds[i] = m.Bytes()
	}
	if !bytes.Equal(docs[0], docs[1]) {
		t.Error("two identical runs rendered different JSON reports")
	}
	if !bytes.Equal(mds[0], mds[1]) {
		t.Error("two identical runs rendered different markdown reports")
	}
}

// Serial and sharded executions of the same spec must agree on every
// deterministic section of the report — the run-report extension of the
// byte-identity guarantee, with profiling and reports armed on both sides.
func TestReportSerialVsShardedIdentical(t *testing.T) {
	serialSim, serialRes := runReport(t, "grid", 0)
	shardSim, shardRes := runReport(t, "grid", 4)
	if !shardSim.Sharded() {
		t.Fatal("4-shard grid build fell back to serial")
	}

	render := func(sim *scenario.Sim, res *scenario.Result) string {
		r := Build(sim, res)
		if r.Perf == nil {
			t.Fatal("report missing Perf on a profiled run")
		}
		r = r.StripPerf()
		// The shard plan legitimately differs between the two executions;
		// blank it so only simulation-derived content is compared.
		r.Spec.ShardsRequested = 0
		r.Spec.ShardCount = 0
		r.Spec.Lookahead = 0
		var b bytes.Buffer
		if err := r.WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	if s, k := render(serialSim, serialRes), render(shardSim, shardRes); s != k {
		t.Errorf("serial and sharded run reports differ:\nserial: %s\nsharded: %s", s, k)
	}
}

// The markdown rendering must carry every section and the clean verdict for a
// healthy run, with the snapshots the checker examined counted.
func TestReportMarkdownSections(t *testing.T) {
	sim, res := runReport(t, "grid", 0)
	r := Build(sim, res)
	if !r.Faults.Clean {
		t.Fatalf("grid run not clean: %+v", r.Faults.Violations)
	}
	if r.Faults.SnapshotsChecked == 0 {
		t.Error("SnapshotEvery was set but no snapshots were checked")
	}
	if len(r.Probes) != 2 {
		t.Fatalf("got %d probe summaries, want 2", len(r.Probes))
	}
	var b bytes.Buffer
	if err := r.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	md := b.String()
	for _, want := range []string{
		"# Run report: grid",
		"## Spec",
		"## Counters",
		"## Faults verdict",
		"**clean**",
		"## Cost attribution",
		"## Probe series",
		"link[0].queue_depth",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown report missing %q", want)
		}
	}
}

// A violating result must flip the verdict and surface the violation in both
// renderings — the non-clean exit path cmsim -report keys off.
func TestReportViolationVerdict(t *testing.T) {
	sim, res := runReport(t, "grid", 0)
	res.Hosts[0].NoRouteDrops = -1 // corrupt a counter: non-negativity must trip
	r := Build(sim, res)
	if r.Faults.Clean {
		t.Fatal("corrupted result still reported clean")
	}
	if len(r.Faults.Violations) == 0 {
		t.Fatal("non-clean verdict carries no violations")
	}
	var b bytes.Buffer
	if err := r.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "VIOLATIONS") {
		t.Error("markdown rendering of a violating run does not flag VIOLATIONS")
	}
}
