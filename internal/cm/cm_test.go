package cm

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func testAddrs(dstHost string, port int) (src, dst netsim.Addr) {
	return netsim.Addr{Host: "sender", Port: 4000 + port}, netsim.Addr{Host: dstHost, Port: port}
}

func newTestCM(t *testing.T, opts ...Option) (*simtime.Scheduler, *CM) {
	t.Helper()
	s := simtime.NewScheduler()
	c := New(s, s, opts...)
	return s, c
}

func TestNewRequiresClockAndTimers(t *testing.T) {
	s := simtime.NewScheduler()
	for _, fn := range []func(){
		func() { New(nil, s) },
		func() { New(s, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestDefaultsFilled(t *testing.T) {
	_, c := newTestCM(t)
	cfg := c.Config()
	if cfg.MTU != netsim.DefaultMTU {
		t.Fatalf("MTU default = %d", cfg.MTU)
	}
	if cfg.InitialWindowMTUs != 1 {
		t.Fatalf("InitialWindowMTUs default = %d", cfg.InitialWindowMTUs)
	}
	if cfg.GrantTimeout <= 0 || cfg.FeedbackStarvationTimeout <= 0 {
		t.Fatal("timeouts not defaulted")
	}
	if cfg.DefaultThreshDown <= 1 || cfg.DefaultThreshUp <= 1 {
		t.Fatal("thresholds not defaulted")
	}
}

func TestOpenAssignsFlowsToPerDestinationMacroflows(t *testing.T) {
	_, c := newTestCM(t)
	s1, d1 := testAddrs("utah", 80)
	s2, d2 := testAddrs("utah", 8080)
	s3, d3 := testAddrs("cmu", 80)

	f1 := c.Open(netsim.ProtoTCP, s1, d1)
	f2 := c.Open(netsim.ProtoTCP, s2, d2)
	f3 := c.Open(netsim.ProtoTCP, s3, d3)

	if f1 == f2 || f2 == f3 || f1 == f3 {
		t.Fatal("flow IDs must be distinct")
	}
	if c.MacroflowOf(f1) != c.MacroflowOf(f2) {
		t.Fatal("flows to the same destination host must share a macroflow")
	}
	if c.MacroflowOf(f1) == c.MacroflowOf(f3) {
		t.Fatal("flows to different hosts must not share a macroflow")
	}
	if c.FlowCount() != 3 || c.MacroflowCount() != 2 {
		t.Fatalf("counts = %d flows, %d macroflows", c.FlowCount(), c.MacroflowCount())
	}
	if c.MacroflowOf(f1).DstHost() != "utah" {
		t.Fatal("macroflow destination wrong")
	}
}

func TestOpenIsIdempotentForSameTuple(t *testing.T) {
	_, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	a := c.Open(netsim.ProtoTCP, src, dst)
	b := c.Open(netsim.ProtoTCP, src, dst)
	if a != b {
		t.Fatal("re-opening the same tuple should return the same flow ID")
	}
	if c.FlowCount() != 1 {
		t.Fatal("no duplicate flow state should be created")
	}
}

func TestLookupFindsFlowByKey(t *testing.T) {
	_, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	key := netsim.FlowKey{Proto: netsim.ProtoUDP, Src: src, Dst: dst}
	if got := c.Lookup(key); got != f {
		t.Fatalf("Lookup = %v, want %v", got, f)
	}
	if c.Lookup(key.Reverse()) != InvalidFlow {
		t.Fatal("reverse key should not resolve")
	}
	c.Close(f)
	if c.Lookup(key) != InvalidFlow {
		t.Fatal("closed flow should not resolve")
	}
}

func TestCloseRetainsMacroflowState(t *testing.T) {
	s, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoTCP, src, dst)
	mf := c.MacroflowOf(f)

	// Grow the window with some successful feedback.
	c.RegisterSend(f, func(FlowID) {})
	for i := 0; i < 10; i++ {
		c.Request(f)
		c.Notify(f, 1500)
		c.Update(f, 1500, 1500, NoLoss, 60*time.Millisecond)
	}
	s.Run()
	grown := mf.Window()
	if grown <= c.Config().MTU {
		t.Fatalf("window did not grow: %d", grown)
	}

	c.Close(f)
	if c.FlowCount() != 0 {
		t.Fatal("flow should be removed")
	}
	if c.MacroflowCount() != 1 {
		t.Fatal("macroflow state must persist after the flow closes (Figure 7 behaviour)")
	}

	// A new flow to the same destination inherits the learned window.
	f2 := c.Open(netsim.ProtoTCP, netsim.Addr{Host: "sender", Port: 5000}, dst)
	if c.MacroflowOf(f2).Window() != grown {
		t.Fatalf("new flow window = %d, want inherited %d", c.MacroflowOf(f2).Window(), grown)
	}
	if c.MacroflowOf(f2) != mf {
		t.Fatal("new flow should join the persisted macroflow")
	}
}

func TestMTUQuery(t *testing.T) {
	_, c := newTestCM(t, WithMTU(576))
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoTCP, src, dst)
	if c.MTU(f) != 576 {
		t.Fatalf("MTU = %d, want 576", c.MTU(f))
	}
	if c.MTU(FlowID(999)) != 576 {
		t.Fatal("MTU of unknown flow should fall back to the default")
	}
}

func TestRequestGrantsWithinInitialWindow(t *testing.T) {
	s, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoTCP, src, dst)

	var grants []FlowID
	c.RegisterSend(f, func(id FlowID) { grants = append(grants, id) })

	// With an initial window of 1 MTU, only the first request is granted
	// before any transmission is charged.
	c.Request(f)
	c.Request(f)
	s.RunFor(10 * time.Millisecond)
	if len(grants) != 1 || grants[0] != f {
		t.Fatalf("grants = %v, want exactly one for flow %v", grants, f)
	}

	// Charging a full MTU keeps the window closed; feedback reopens it.
	c.Notify(f, 1500)
	s.RunFor(10 * time.Millisecond)
	if len(grants) != 1 {
		t.Fatalf("window should stay closed after charging a full MTU, grants=%d", len(grants))
	}
	c.Update(f, 1500, 1500, NoLoss, 60*time.Millisecond)
	s.RunFor(10 * time.Millisecond)
	if len(grants) != 2 {
		t.Fatalf("feedback should release the second grant, grants=%d", len(grants))
	}
}

func TestRequestWithoutCallbackDoesNotWedgeMacroflow(t *testing.T) {
	s, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoTCP, src, dst) // no RegisterSend
	g := c.Open(netsim.ProtoTCP, netsim.Addr{Host: "sender", Port: 4100}, netsim.Addr{Host: "utah", Port: 81})
	var got int
	c.RegisterSend(g, func(FlowID) { got++ })

	c.Request(f) // grant cannot be delivered; must be reclaimed immediately
	c.Request(g)
	s.RunFor(10 * time.Millisecond)
	if got != 1 {
		t.Fatalf("flow with callback got %d grants, want 1", got)
	}
}

func TestNotifyZeroReleasesWindowToOtherFlows(t *testing.T) {
	s, c := newTestCM(t)
	srcA, dst := testAddrs("utah", 80)
	a := c.Open(netsim.ProtoTCP, srcA, dst)
	b := c.Open(netsim.ProtoTCP, netsim.Addr{Host: "sender", Port: 4200}, netsim.Addr{Host: "utah", Port: 81})

	var events []FlowID
	declined := false
	c.RegisterSend(a, func(id FlowID) {
		events = append(events, id)
		if !declined {
			declined = true
			// Decline the grant: the client must call cm_notify with 0.
			c.Notify(a, 0)
		}
	})
	c.RegisterSend(b, func(id FlowID) { events = append(events, id) })

	c.Request(a)
	c.Request(b)
	s.RunFor(10 * time.Millisecond)

	if len(events) != 2 || events[0] != a || events[1] != b {
		t.Fatalf("events = %v, want [a b]: declining a grant must let the next flow send", events)
	}
}

func TestGrantOrderIsRoundRobinAcrossFlows(t *testing.T) {
	s, c := newTestCM(t, WithInitialWindow(64), WithMTU(1000))
	dstHost := "utah"
	var order []FlowID
	var flows []FlowID
	for i := 0; i < 3; i++ {
		src := netsim.Addr{Host: "sender", Port: 4000 + i}
		dst := netsim.Addr{Host: dstHost, Port: 80 + i}
		f := c.Open(netsim.ProtoTCP, src, dst)
		flows = append(flows, f)
		c.RegisterSend(f, func(id FlowID) {
			order = append(order, id)
			c.Notify(id, 1000)
		})
	}
	// Queue 3 requests per flow up front; the window (64 MTUs) is large
	// enough to grant all of them immediately.
	for round := 0; round < 3; round++ {
		for _, f := range flows {
			c.Request(f)
		}
	}
	s.RunFor(10 * time.Millisecond)
	if len(order) != 9 {
		t.Fatalf("granted %d, want 9", len(order))
	}
	for i, id := range order {
		if id != flows[i%3] {
			t.Fatalf("grant order %v is not round-robin over %v", order, flows)
		}
	}
}

func TestWindowGrowthSlowStartAndCongestionAvoidance(t *testing.T) {
	_, c := newTestCM(t, WithMTU(1000))
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoTCP, src, dst)
	mf := c.MacroflowOf(f)

	if mf.Window() != 1000 {
		t.Fatalf("initial window = %d, want 1000", mf.Window())
	}
	if !mf.Controller().InSlowStart() {
		t.Fatal("controller should start in slow start")
	}

	// Slow start: acking W bytes roughly doubles the window each "round".
	c.Notify(f, 1000)
	c.Update(f, 1000, 1000, NoLoss, 10*time.Millisecond)
	if mf.Window() != 2000 {
		t.Fatalf("after acking 1 MTU in slow start window = %d, want 2000", mf.Window())
	}
	c.Notify(f, 2000)
	c.Update(f, 2000, 2000, NoLoss, 10*time.Millisecond)
	if mf.Window() != 4000 {
		t.Fatalf("window = %d, want 4000", mf.Window())
	}

	// Transient loss halves the window and leaves slow start.
	c.Update(f, 0, 0, TransientLoss, 0)
	if got := mf.Window(); got != 2000 {
		t.Fatalf("window after transient loss = %d, want 2000", got)
	}
	if mf.Controller().InSlowStart() {
		t.Fatal("transient loss should exit slow start")
	}

	// Congestion avoidance: acking one window grows the window by ~1 MTU.
	before := mf.Window()
	c.Notify(f, before)
	c.Update(f, before, before, NoLoss, 10*time.Millisecond)
	growth := mf.Window() - before
	if growth < 900 || growth > 1100 {
		t.Fatalf("congestion-avoidance growth = %d, want ~1 MTU", growth)
	}
}

func TestPersistentLossCollapsesToInitialWindow(t *testing.T) {
	_, c := newTestCM(t, WithMTU(1000))
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoTCP, src, dst)
	mf := c.MacroflowOf(f)

	for i := 0; i < 6; i++ {
		c.Notify(f, mf.Window())
		c.Update(f, mf.Window(), mf.Window(), NoLoss, 10*time.Millisecond)
	}
	if mf.Window() < 8000 {
		t.Fatalf("window should have grown, got %d", mf.Window())
	}
	c.Notify(f, 3000)
	c.Update(f, 0, 0, PersistentLoss, 0)
	if mf.Window() != 1000 {
		t.Fatalf("persistent loss should collapse window to 1 MTU, got %d", mf.Window())
	}
	if mf.Outstanding() != 0 {
		t.Fatalf("persistent loss should clear outstanding, got %d", mf.Outstanding())
	}
	if mf.Stats().PersistentSignals != 1 {
		t.Fatal("persistent signal not counted")
	}
}

func TestECNTreatedAsCongestionWithoutLoss(t *testing.T) {
	_, c := newTestCM(t, WithMTU(1000))
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoTCP, src, dst)
	mf := c.MacroflowOf(f)
	for i := 0; i < 4; i++ {
		c.Notify(f, mf.Window())
		c.Update(f, mf.Window(), mf.Window(), NoLoss, 10*time.Millisecond)
	}
	before := mf.Window()
	c.Update(f, 1000, 1000, ECNLoss, 10*time.Millisecond)
	after := mf.Window()
	if after >= before {
		t.Fatalf("ECN should reduce the window (%d -> %d)", before, after)
	}
	if mf.Stats().ECNSignals != 1 {
		t.Fatal("ECN signal not counted")
	}
	// ECN must not count as byte loss.
	if mf.LossRate() != 0 {
		t.Fatalf("ECN should not raise the loss estimate, got %v", mf.LossRate())
	}
}

func TestSharedRTTEstimation(t *testing.T) {
	_, c := newTestCM(t)
	src1, dst1 := testAddrs("utah", 80)
	f1 := c.Open(netsim.ProtoTCP, src1, dst1)
	f2 := c.Open(netsim.ProtoTCP, netsim.Addr{Host: "sender", Port: 4500}, netsim.Addr{Host: "utah", Port: 81})
	mf := c.MacroflowOf(f1)

	c.Update(f1, 1000, 1000, NoLoss, 100*time.Millisecond)
	if mf.SRTT() != 100*time.Millisecond {
		t.Fatalf("first sample should initialise srtt, got %v", mf.SRTT())
	}
	if mf.RTTVar() != 50*time.Millisecond {
		t.Fatalf("first sample should set rttvar to rtt/2, got %v", mf.RTTVar())
	}
	// A sample from the second flow of the same macroflow moves the shared
	// estimate (paper: the CM combines samples from different connections).
	c.Update(f2, 1000, 1000, NoLoss, 200*time.Millisecond)
	if mf.SRTT() <= 100*time.Millisecond {
		t.Fatal("sample from second flow should raise the shared srtt")
	}
	st, ok := c.Query(f2)
	if !ok || st.SRTT != mf.SRTT() {
		t.Fatal("Query should report the shared srtt")
	}
}

func TestLossRateEstimate(t *testing.T) {
	_, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	mf := c.MacroflowOf(f)
	// 50% loss reported repeatedly converges toward 0.5.
	for i := 0; i < 50; i++ {
		c.Update(f, 2000, 1000, TransientLoss, 50*time.Millisecond)
	}
	if lr := mf.LossRate(); lr < 0.4 || lr > 0.6 {
		t.Fatalf("loss estimate = %v, want ~0.5", lr)
	}
}

func TestQueryReportsRateFromWindowAndRTT(t *testing.T) {
	_, c := newTestCM(t, WithMTU(1000))
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	mf := c.MacroflowOf(f)

	// Window 4000 bytes, RTT 100ms -> 40 KB/s.
	for mf.Window() < 4000 {
		c.Notify(f, mf.Window())
		c.Update(f, mf.Window(), mf.Window(), NoLoss, 100*time.Millisecond)
	}
	st, ok := c.Query(f)
	if !ok {
		t.Fatal("Query failed")
	}
	wantRate := float64(mf.Window()) / 0.1
	if st.MacroflowRate < wantRate*0.9 || st.MacroflowRate > wantRate*1.1 {
		t.Fatalf("MacroflowRate = %v, want ~%v", st.MacroflowRate, wantRate)
	}
	if st.Rate != st.MacroflowRate {
		t.Fatal("single flow should receive the whole macroflow rate")
	}
	if st.CWND != mf.Window() || st.MTU != 1000 {
		t.Fatalf("Status = %+v", st)
	}
	if _, ok := c.Query(FlowID(404)); ok {
		t.Fatal("Query of unknown flow should fail")
	}
}

func TestRateApportionedAcrossFlows(t *testing.T) {
	_, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f1 := c.Open(netsim.ProtoUDP, src, dst)
	f2 := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "sender", Port: 4600}, netsim.Addr{Host: "utah", Port: 81})
	c.Update(f1, 1500, 1500, NoLoss, 100*time.Millisecond)
	st1, _ := c.Query(f1)
	st2, _ := c.Query(f2)
	if st1.MacroflowRate != st2.MacroflowRate {
		t.Fatal("flows of the same macroflow must see the same aggregate rate")
	}
	if st1.Rate != st1.MacroflowRate/2 || st2.Rate != st2.MacroflowRate/2 {
		t.Fatalf("per-flow rate should be half the aggregate, got %v and %v of %v",
			st1.Rate, st2.Rate, st1.MacroflowRate)
	}
}

func TestUnknownFlowCallsAreNoOps(t *testing.T) {
	_, c := newTestCM(t)
	// None of these should panic or create state.
	c.Request(42)
	c.Notify(42, 100)
	c.Update(42, 1, 1, NoLoss, time.Millisecond)
	c.Thresh(42, 2, 2)
	c.RegisterSend(42, func(FlowID) {})
	c.RegisterUpdate(42, func(FlowID, Status) {})
	c.SetWeight(42, 2)
	c.SetDispatcher(42, DirectDispatcher())
	c.Close(42)
	if c.FlowCount() != 0 || c.MacroflowCount() != 0 {
		t.Fatal("no state should be created for unknown flows")
	}
	if c.FlowInfo(42).ID != InvalidFlow {
		t.Fatal("FlowInfo of unknown flow should be invalid")
	}
}

func TestLossModeString(t *testing.T) {
	names := map[LossMode]string{NoLoss: "none", TransientLoss: "transient", PersistentLoss: "persistent", ECNLoss: "ecn"}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%v.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if LossMode(77).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestNotifyTransmitHookChargesCorrectFlow(t *testing.T) {
	_, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	key := netsim.FlowKey{Proto: netsim.ProtoUDP, Src: src, Dst: dst}
	c.NotifyTransmit(key, 700)
	if c.MacroflowOf(f).Outstanding() != 700 {
		t.Fatalf("outstanding = %d, want 700", c.MacroflowOf(f).Outstanding())
	}
	// Unmanaged flows are ignored.
	c.NotifyTransmit(netsim.FlowKey{Proto: netsim.ProtoUDP, Src: src, Dst: netsim.Addr{Host: "elsewhere", Port: 1}}, 700)
	if c.MacroflowOf(f).Outstanding() != 700 {
		t.Fatal("unmanaged transmissions must not be charged")
	}
	if c.FlowInfo(f).BytesCharged != 700 {
		t.Fatal("FlowInfo should reflect charged bytes")
	}
}

func TestAccountingCounters(t *testing.T) {
	s, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	c.RegisterSend(f, func(FlowID) {})
	c.Request(f)
	c.Notify(f, 100)
	c.Update(f, 100, 100, NoLoss, time.Millisecond)
	c.Query(f)
	c.BulkRequest([]FlowID{f})
	c.BulkUpdate([]UpdateArgs{{Flow: f, Sent: 10, Received: 10}})
	c.Close(f)
	s.Run()
	a := c.Accounting()
	if a.Opens != 1 || a.Closes != 1 || a.Requests != 1 || a.Notifies != 1 ||
		a.Updates != 1 || a.Queries != 1 || a.BulkRequests != 1 || a.BulkUpdates != 1 {
		t.Fatalf("accounting = %+v", a)
	}
	if a.GrantsIssued == 0 {
		t.Fatal("grants should be counted")
	}
	if a.Total() != 8 {
		t.Fatalf("Total = %d, want 8", a.Total())
	}
}
