// Quickstart: the smallest useful Congestion Manager program.
//
// It builds a two-host simulated network, installs a CM on the sender,
// transfers a file with TCP/CM (congestion control performed by the CM), and
// then sends a burst of datagrams over a congestion-controlled UDP socket
// that shares the same macroflow — showing the two flows learning from each
// other's congestion state.
//
// Run with:  go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/tcp"
	"repro/internal/udp"
)

func main() {
	// 1. A virtual clock and a two-host network: sender <-> receiver over a
	//    5 Mbps, 40 ms RTT bottleneck with a small router queue.
	sched := simtime.NewScheduler()
	network := node.NewNetwork(sched)
	network.ConnectDuplex("sender", "receiver", netsim.LinkConfig{
		Bandwidth:    5 * netsim.Mbps,
		Delay:        20 * time.Millisecond,
		QueuePackets: 60,
		Seed:         7,
	})

	// 2. The Congestion Manager lives on the sender; the IP output hook
	//    (cm_notify) is installed by SetTransmitNotifier.
	manager := cm.New(sched, sched)
	network.Host("sender").SetTransmitNotifier(manager)

	// 3. A TCP transfer whose congestion control is performed by the CM.
	const fileSize = 300 * 1024
	var delivered int
	_, err := tcp.Listen(network.Host("receiver"), 80, tcp.Config{DelayedAck: true}, func(ep *tcp.Endpoint) {
		ep.OnReceive(func(n int) { delivered += n })
	})
	if err != nil {
		panic(err)
	}
	conn, err := tcp.Dial(network.Host("sender"), netsim.Addr{Host: "receiver", Port: 80}, tcp.Config{
		CongestionControl: tcp.CCCM,
		CM:                manager,
		DelayedAck:        true,
	})
	if err != nil {
		panic(err)
	}
	conn.OnEstablished(func() {
		conn.Send(fileSize)
		conn.Close()
	})
	sched.RunFor(10 * time.Second)
	fmt.Printf("TCP/CM transfer: delivered %d of %d bytes, retransmissions=%d\n",
		delivered, fileSize, conn.Stats().Retransmissions)

	// 4. The macroflow to "receiver" now holds learned congestion state.
	probe := manager.Open(netsim.ProtoTCP, netsim.Addr{Host: "sender", Port: 1}, netsim.Addr{Host: "receiver", Port: 80})
	status, _ := manager.Query(probe)
	manager.Close(probe)
	fmt.Printf("macroflow state after the transfer: cwnd=%d bytes, srtt=%v, rate=%.0f KB/s\n",
		status.CWND, status.SRTT.Round(time.Millisecond), status.Rate/1024)

	// 5. A congestion-controlled UDP socket (the buffered send API) to the
	//    same receiver joins the same macroflow and is paced by the window the
	//    TCP transfer learned.
	sink, err := udp.NewSocket(network.Host("receiver"), 9000)
	if err != nil {
		panic(err)
	}
	var udpBytes int
	sink.OnReceive(func(_ netsim.Addr, d *udp.Datagram) { udpBytes += d.Size })

	sock, err := udp.NewCCSocket(network.Host("sender"), 0, netsim.Addr{Host: "receiver", Port: 9000}, manager, 128)
	if err != nil {
		panic(err)
	}
	// Queue a burst; the CM paces it out. The application remains responsible
	// for feedback, which in this quickstart we fake with perfect per-packet
	// acknowledgements after one RTT.
	const burst = 100
	for i := 0; i < burst; i++ {
		size := 1000
		sock.Send(&udp.Datagram{Seq: int64(i), Size: size})
	}
	// Perfect feedback loop: acknowledge everything the receiver has seen,
	// once per RTT.
	var acked int
	var ackLoop func()
	ackLoop = func() {
		newBytes := udpBytes - acked
		if newBytes > 0 {
			sock.Update(newBytes, newBytes, cm.NoLoss, 40*time.Millisecond)
			acked = udpBytes
		}
		if acked < burst*1000 {
			sched.After(40*time.Millisecond, ackLoop)
		}
	}
	sched.After(40*time.Millisecond, ackLoop)
	sched.RunFor(20 * time.Second)

	fmt.Printf("CM-UDP burst: delivered %d of %d bytes through the shared macroflow\n", udpBytes, burst*1000)
	fmt.Printf("CM accounting: %+v\n", manager.Accounting())
}
