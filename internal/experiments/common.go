// Package experiments contains one runner per table and figure of the
// paper's evaluation (§4), plus the microbenchmarks and ablations listed in
// DESIGN.md. Each runner builds its own deterministic topology, executes the
// workload under the simulator, and returns a result structure whose Table
// method prints the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/scenario"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// Path describes the network path used by an experiment.
type Path struct {
	Bandwidth    netsim.Bandwidth
	OneWayDelay  time.Duration
	LossRate     float64
	QueuePackets int
	Seed         int64
}

// testbedLAN reproduces the paper's 100 Mbps switched Ethernet testbed.
func testbedLAN() Path {
	return Path{Bandwidth: 100 * netsim.Mbps, OneWayDelay: 250 * time.Microsecond, QueuePackets: 300, Seed: 1}
}

// dummynetWAN reproduces the Dummynet-shaped 10 Mbps / 60 ms RTT channel of
// Figure 3.
func dummynetWAN(lossPct float64, seed int64) Path {
	return Path{
		Bandwidth:    10 * netsim.Mbps,
		OneWayDelay:  30 * time.Millisecond,
		LossRate:     lossPct / 100,
		QueuePackets: 120,
		Seed:         seed,
	}
}

// vbnsPath approximates the MIT-Utah vBNS path of Figures 7-10: a few Mbit/s
// of available bandwidth and roughly 70 ms of round-trip time.
func vbnsPath(seed int64) Path {
	return Path{Bandwidth: 20 * netsim.Mbps, OneWayDelay: 35 * time.Millisecond, QueuePackets: 150, Seed: seed}
}

// spec returns the declarative point-to-point scenario for the path: the
// sender<->receiver topology every experiment in the paper's evaluation
// (§4) runs on.
func (p Path) spec(withCM bool, cmOpts ...cm.Option) scenario.Spec {
	spec := scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    p.Bandwidth,
			Delay:        p.OneWayDelay,
			LossRate:     p.LossRate,
			QueuePackets: p.QueuePackets,
			Seed:         p.Seed,
		},
		WithCM: withCM,
		Seed:   p.Seed,
	})
	spec.CMOpts = cmOpts
	return spec
}

// testbed is an experiment's view of a built scenario: the two-host topology
// with an optional Congestion Manager on the sender. Every runner constructs
// its topology through the scenario engine and attaches its workload (bulk
// transfers, file servers, layered streams) programmatically.
type testbed struct {
	sim    *scenario.Sim
	sched  *simtime.Scheduler
	cm     *cm.CM
	sender *node.Host
	rcvr   *node.Host
}

// newTestbed builds sender<->receiver joined by the path through the
// scenario engine. withCM installs a Congestion Manager (and the IP notify
// hook) on the sender.
func newTestbed(p Path, withCM bool, cmOpts ...cm.Option) *testbed {
	sim := scenario.MustBuild(p.spec(withCM, cmOpts...))
	w := &testbed{
		sim:    sim,
		sched:  sim.Scheduler(),
		cm:     sim.CM("sender"),
		sender: sim.Host("sender"),
		rcvr:   sim.Host("receiver"),
	}
	return w
}

// senderTCPConfig returns the tcp.Config for the data sender under the given
// congestion-control variant.
func (w *testbed) senderTCPConfig(cc tcp.CongestionControl) tcp.Config {
	cfg := tcp.Config{CongestionControl: cc, DelayedAck: true, RecvWindow: 1 << 20}
	if cc == tcp.CCCM {
		cfg.CM = w.cm
	}
	return cfg
}

// formatTable renders rows of columns with a header, aligned for terminal
// output.
func formatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
