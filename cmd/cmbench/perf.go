package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/simtime"
)

// perfResult is one core-loop measurement in the perf snapshot.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	Iterations  int     `json:"iterations"`
}

// perfSnapshot is the schema of BENCH_N.json: a trajectory point future PRs
// benchmark themselves against.
type perfSnapshot struct {
	PR        int          `json:"pr"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	Results   []perfResult `json:"results"`
}

// runPerf measures the simulation core's hot loops with testing.Benchmark
// and writes the snapshot to path, stamped with the given PR number. A
// non-empty compare names an earlier snapshot (or "latest" for the
// highest-numbered committed BENCH_*.json next to path): shared benchmark
// names regressing more than 25% in ns/op fail the run — the bench-smoke
// gate CI runs on every PR.
func runPerf(path string, pr int, compare string) error {
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"simtime/schedule_fire", benchScheduleFire},
		{"simtime/event_churn_4k", benchEventChurn},
		{"netsim/link_transmit_deliver", benchLinkTransmitDeliver},
		{"cm/request_grant_notify", benchRequestGrantNotify},
		{"cm/charge_path_1k_flows", benchChargePath1k},
		{"cm/round_robin_1k_flows", benchRoundRobin1k},
		{"scenario/grid64_serial", benchGridSerial},
		{"scenario/grid64_shards4", benchGridShards4},
		{"scenario/fattree_k4_run", benchFatTreeRun},
		{"scenario/fattree_k4_protocol_run", benchFatTreeProtocolRun},
		{"scenario/fattree_k8_build", benchFatTreeBuildK8},
		{"scenario/fattree_k16_build", benchFatTreeBuildK16},
		{"scenario/isp_100k_build", benchISP100kBuild},
	}
	snap := perfSnapshot{PR: pr, GoVersion: runtime.Version(), GOARCH: runtime.GOARCH}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := perfResult{
			Name:        bench.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		snap.Results = append(snap.Results, res)
		fmt.Printf("%-32s %12.1f ns/op %8d allocs/op %8d B/op\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	if serial, sharded := findResult(snap, "scenario/grid64_serial"), findResult(snap, "scenario/grid64_shards4"); serial != nil && sharded != nil {
		fmt.Printf("%-32s %12.2fx (GOMAXPROCS=%d)\n", "grid64 speedup at 4 shards",
			serial.NsPerOp/sharded.NsPerOp, runtime.GOMAXPROCS(0))
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	if compare != "" {
		return compareSnapshots(snap, path, compare)
	}
	return nil
}

func findResult(snap perfSnapshot, name string) *perfResult {
	for i := range snap.Results {
		if snap.Results[i].Name == name {
			return &snap.Results[i]
		}
	}
	return nil
}

// latestSnapshot returns the BENCH_<n>.json with the highest n present in
// dir, excluding the file being written. In a clean checkout that is the
// newest committed snapshot; a stray uncommitted BENCH_*.json left in the
// tree would be picked instead, so keep the tree clean before bench-smoke.
func latestSnapshot(dir, exclude string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, m := range matches {
		if filepath.Clean(m) == filepath.Clean(exclude) {
			continue
		}
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		n, err := strconv.Atoi(base)
		if err != nil {
			continue
		}
		if n > bestN {
			best, bestN = m, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no committed BENCH_*.json to compare against in %q", dir)
	}
	return best, nil
}

// compareSnapshots diffs the fresh snapshot against an older one and fails
// on a >25% ns/op regression in any shared benchmark name. New benchmarks
// (present only in the fresh snapshot) establish their baseline silently.
func compareSnapshots(fresh perfSnapshot, freshPath, oldPath string) error {
	if oldPath == "latest" {
		dir := filepath.Dir(freshPath)
		p, err := latestSnapshot(dir, freshPath)
		if err != nil {
			return err
		}
		oldPath = p
	}
	data, err := os.ReadFile(oldPath)
	if err != nil {
		return err
	}
	var old perfSnapshot
	if err := json.Unmarshal(data, &old); err != nil {
		return fmt.Errorf("parse %s: %w", oldPath, err)
	}
	oldBy := make(map[string]perfResult, len(old.Results))
	for _, r := range old.Results {
		oldBy[r.Name] = r
	}
	var regressions []string
	fmt.Printf("\nvs %s (PR %d):\n", oldPath, old.PR)
	names := make([]string, 0, len(fresh.Results))
	for _, r := range fresh.Results {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := *findResult(fresh, name)
		o, ok := oldBy[name]
		if !ok || o.NsPerOp <= 0 {
			fmt.Printf("%-32s %12.1f ns/op (new baseline)\n", name, r.NsPerOp)
			continue
		}
		ratio := r.NsPerOp / o.NsPerOp
		fmt.Printf("%-32s %12.1f ns/op %+7.1f%%\n", name, r.NsPerOp, (ratio-1)*100)
		if ratio > 1.25 {
			regressions = append(regressions, fmt.Sprintf("%s: %.1f -> %.1f ns/op (%+.1f%%)",
				name, o.NsPerOp, r.NsPerOp, (ratio-1)*100))
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("ns/op regressed >25%% vs %s:\n  %s", oldPath, strings.Join(regressions, "\n  "))
	}
	return nil
}

func benchGridSerial(b *testing.B)  { benchGrid(b, 1) }
func benchGridShards4(b *testing.B) { benchGrid(b, 4) }

// benchGrid runs the 64-node cluster grid end to end — the workload the
// sharded execution mode exists for. One op is a whole simulation.
func benchGrid(b *testing.B, shards int) {
	spec := scenario.DumbbellGrid(scenario.GridParams{Duration: 2 * time.Second})
	spec.Shards = shards
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFatTreeRun runs a k=4 fat-tree end to end under hierarchical routing
// — cross-pod streams and cross-edge bulk transfers. One op is a whole
// simulation.
func benchFatTreeRun(b *testing.B) {
	spec, err := scenario.FatTree(scenario.FatTreeParams{K: 4, Duration: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFatTreeProtocolRun is benchFatTreeRun with the distance-vector
// control plane driving the tables instead of the oracle: the same fabric
// and workloads plus ~20 protocol agents exchanging periodic refreshes. The
// gap to fattree_k4_run is the protocol's whole-run overhead; the oracle
// benchmarks are the ones the 25% gate protects (protocol off costs zero).
func benchFatTreeProtocolRun(b *testing.B) {
	spec, err := scenario.FatTree(scenario.FatTreeParams{K: 4, Duration: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	spec.RouteSync = scenario.RouteSyncProtocol
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFatTreeBuildK8(b *testing.B)  { benchFatTreeBuild(b, 8) }
func benchFatTreeBuildK16(b *testing.B) { benchFatTreeBuild(b, 16) }

// benchFatTreeBuild measures topology construction and hierarchical route
// installation alone (no traffic): the Build path that must stay linear in
// the node count. B/op is the build's allocation footprint.
func benchFatTreeBuild(b *testing.B, k int) {
	spec, err := scenario.FatTree(scenario.FatTreeParams{K: k})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// benchISP100kBuild builds the 100k-host ISP access tree — the
// internet-scale configuration that exact routing's all-pairs BFS could not
// even allocate. One op is a full Build.
func benchISP100kBuild(b *testing.B) {
	spec, err := scenario.ISP(scenario.ISPParams{Aggs: 16, AccessPerAgg: 25, HostsPerAccess: 250})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Build(spec); err != nil {
			b.Fatal(err)
		}
	}
}

func benchScheduleFire(b *testing.B) {
	s := simtime.NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
}

func benchEventChurn(b *testing.B) {
	const population = 4096
	s := simtime.NewScheduler()
	fn := func() {}
	events := make([]*simtime.Event, population)
	for i := range events {
		events[i] = s.At(time.Hour+time.Duration(i)*time.Millisecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % population
		events[slot].Cancel()
		events[slot] = s.At(time.Hour, fn)
		s.After(0, fn)
		s.Step()
	}
}

func benchLinkTransmitDeliver(b *testing.B) {
	sched := simtime.NewScheduler()
	sink := netsim.ReceiverFunc(func(p *netsim.Packet) { p.Release() })
	l := netsim.NewLink(sched, netsim.LinkConfig{
		Bandwidth: 100 * netsim.Mbps, Delay: time.Millisecond, QueuePackets: 64,
	}, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netsim.NewPacket()
		p.Size = 1500
		l.Send(p)
		sched.Run()
	}
}

func newPerfCM(nflows int) (*cm.CM, []cm.FlowID) {
	sched := simtime.NewScheduler()
	c := cm.New(sched, sched)
	dst := netsim.Addr{Host: "server", Port: 80}
	ids := make([]cm.FlowID, nflows)
	for i := range ids {
		ids[i] = c.Open(netsim.ProtoTCP, netsim.Addr{Host: "client", Port: 1000 + i}, dst)
		c.RegisterSend(ids[i], func(f cm.FlowID) { c.Notify(f, 1500) })
	}
	c.Update(ids[0], 0, 1<<24, cm.NoLoss, time.Millisecond)
	return c, ids
}

func benchRequestGrantNotify(b *testing.B) {
	c, ids := newPerfCM(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(ids[0])
		c.Update(ids[0], 1500, 1500, cm.NoLoss, 0)
	}
}

func benchChargePath1k(b *testing.B) {
	c, ids := newPerfCM(1024)
	keys := make([]netsim.FlowKey, len(ids))
	for i, id := range ids {
		keys[i] = c.FlowInfo(id).Key
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NotifyTransmit(keys[i%len(keys)], 1500)
		if i%256 == 255 {
			c.Update(ids[0], 256*1500, 256*1500, cm.NoLoss, 0)
		}
	}
}

func benchRoundRobin1k(b *testing.B) {
	c, ids := newPerfCM(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(ids[i%len(ids)])
		if i%1024 == 1023 {
			c.Update(ids[0], 1024*1500, 1024*1500, cm.NoLoss, 0)
		}
	}
}
