// Command cmbench reproduces the paper's evaluation: every table and figure
// of §4 plus the microbenchmarks and ablations listed in DESIGN.md. Each
// experiment prints the rows/series the paper reports.
//
// Usage:
//
//	cmbench                      # run everything with the default (paper-sized) settings
//	cmbench -experiment fig3     # run a single experiment
//	cmbench -quick               # smaller sweeps, for a fast smoke run
//	cmbench -csv                 # emit adaptation traces (fig8-10, failure) as CSV instead of tables
//	cmbench -experiment failure  # adaptation under a scheduled bottleneck outage
//	cmbench -experiment perf     # benchmark the simulation core's hot loops
//	                             # and write a BENCH_<pr>.json perf snapshot
//	cmbench -trend               # per-benchmark trajectory across all
//	                             # committed BENCH_*.json snapshots
//	cmbench -trend -trend-csv TREND.csv  # same, plus the long-format CSV
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/apicost"
	"repro/internal/experiments"
)

func main() {
	os.Exit(run())
}

// run carries main's body so that deferred cleanup — stopping the CPU
// profile, writing the heap profile — still happens on failure exits; a
// bare os.Exit would truncate exactly the profile of the run being
// investigated.
func run() int {
	var (
		which = flag.String("experiment", "all",
			"experiment to run: all, fig3, fig4, fig5, fig6, table1, fig7, fig8, fig9, fig10, setup, fairness, ablations, failure, perf")
		quick   = flag.Bool("quick", false, "use reduced sweeps so the whole run finishes quickly")
		csv     = flag.Bool("csv", false, "print adaptation traces (fig8-10, failure) as CSV")
		perfOut = flag.String("perfout", "BENCH_1.json", "output path for the perf snapshot written by -experiment perf")
		perfPR  = flag.Int("pr", 1, "PR number stamped into the perf snapshot")
		compare = flag.String("compare", "", "older BENCH_*.json to diff the perf snapshot against (\"latest\" picks the highest-numbered committed one); >25% ns/op regressions fail")
		trend    = flag.Bool("trend", false, "print the per-benchmark trajectory across every committed BENCH_*.json and exit (no experiments run)")
		trendCSV = flag.String("trend-csv", "", "with -trend: also write the trajectory as long-format CSV (benchmark,pr,ns_op,allocs_op,bytes_op) to this file (\"-\" = stdout)")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
		memProf = flag.String("memprofile", "", "write a heap profile (taken after the experiments) to this file")
	)
	flag.Parse()

	if *trend {
		// Trajectory mode reads the committed snapshots next to -perfout; it
		// measures nothing itself, so it short-circuits the experiments.
		if err := runTrend(filepath.Dir(*perfOut), *trendCSV); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}()
	}

	runner := &benchRunner{quick: *quick, csv: *csv, perfOut: *perfOut, perfPR: *perfPR, compare: *compare}
	selected := strings.Split(strings.ToLower(*which), ",")
	ran := 0
	for _, name := range selected {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		ok, err := runner.run(name)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			flag.Usage()
			return 2
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		ran++
	}
	if ran == 0 {
		flag.Usage()
		return 2
	}
	return 0
}

type benchRunner struct {
	quick   bool
	csv     bool
	perfOut string
	perfPR  int
	compare string
}

// run executes one named experiment; ok is false for an unknown name.
func (b *benchRunner) run(name string) (ok bool, err error) {
	switch name {
	case "all":
		for _, n := range []string{"table1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "setup", "fairness", "ablations"} {
			if _, err := b.run(n); err != nil {
				return true, err
			}
		}
	case "fig3":
		cfg := experiments.Fig3Config{}
		if b.quick {
			cfg = experiments.Fig3Config{LossPercents: []float64{0, 1, 2, 5}, TransferBytes: 500_000, Trials: 1}
		}
		b.section(experiments.RunFig3(cfg).Table())
	case "fig4":
		cfg := experiments.Fig4Config{}
		if b.quick {
			cfg = experiments.Fig4Config{BufferCounts: []int{1_000, 10_000}}
		}
		b.section(experiments.RunFig4(cfg).Table())
	case "fig5":
		cfg := experiments.Fig5Config{}
		if b.quick {
			cfg.Fig4 = experiments.Fig4Config{BufferCounts: []int{1_000, 10_000}}
		}
		b.section(experiments.RunFig5(cfg).Table())
	case "fig6":
		b.section(experiments.RunFig6(experiments.Fig6Config{}).Table())
	case "table1":
		b.section(experiments.RunTable1(apicost.DefaultCosts()).Table())
	case "fig7":
		cfg := experiments.Fig7Config{}
		if b.quick {
			cfg = experiments.Fig7Config{Requests: 5}
		}
		b.section(experiments.RunFig7(cfg).Table())
	case "fig8":
		b.adaptation(experiments.Fig8Config())
	case "fig9":
		b.adaptation(experiments.Fig9Config())
	case "fig10":
		b.adaptation(experiments.Fig10Config())
	case "setup":
		b.section(experiments.RunConnSetup().Table())
	case "fairness":
		cfg := experiments.FairnessConfig{}
		if b.quick {
			cfg.Duration = 15 * time.Second
		}
		b.section(experiments.RunFairness(cfg).Table())
	case "ablations":
		b.section(experiments.RunAblationInitialWindow().Table())
		b.section(experiments.RunAblationBulkCalls(32).Table())
		b.section(experiments.RunAblationScheduler().Table())
	case "failure":
		// Beyond the paper (so not part of "all"): adaptation when the path
		// fails outright instead of merely congesting.
		cfg := experiments.FailureConfig{}
		if b.quick {
			cfg = experiments.FailureConfig{DownAt: 3 * time.Second, UpAt: 6 * time.Second, Duration: 15 * time.Second}
		}
		res, err := experiments.RunFailure(cfg)
		if err != nil {
			return true, fmt.Errorf("failure experiment: %w", err)
		}
		if b.csv {
			b.section(res.CSV())
		} else {
			b.section(res.Table())
		}
	case "perf":
		// Deliberately not part of "all": the perf snapshot is a tooling
		// artifact, not a paper experiment.
		if err := runPerf(b.perfOut, b.perfPR, b.compare); err != nil {
			return true, fmt.Errorf("perf snapshot failed: %w", err)
		}
	default:
		return false, nil
	}
	return true, nil
}

func (b *benchRunner) adaptation(cfg experiments.AdaptationConfig) {
	if b.quick {
		cfg.Duration = 15 * time.Second
	}
	res := experiments.RunAdaptation(cfg)
	if b.csv {
		b.section(res.CSV())
		return
	}
	b.section(res.Table())
}

func (b *benchRunner) section(body string) {
	fmt.Println(body)
	fmt.Println()
}
