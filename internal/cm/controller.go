package cm

import (
	"time"
)

// ControllerConfig parameterises a congestion controller instance.
type ControllerConfig struct {
	// MTU is the segment size used for window arithmetic.
	MTU int
	// InitialWindowMTUs is the window used at start-up and after persistent
	// congestion.
	InitialWindowMTUs int
	// MaxWindowBytes caps the window (0 = unlimited).
	MaxWindowBytes int
}

// Feedback summarises one Update call as seen by the controller.
type Feedback struct {
	// SentBytes is the number of bytes covered by this feedback (delivered
	// or lost); they are no longer outstanding.
	SentBytes int
	// ReceivedBytes is the number of those bytes that reached the receiver.
	ReceivedBytes int
	// Mode is the congestion signal.
	Mode LossMode
	// RTT is a round-trip time sample, or zero if none was available.
	RTT time.Duration
	// AppLimited reports that the macroflow was using less than half of its
	// window when the feedback arrived. Controllers should not grow the
	// window on application-limited feedback (RFC 2861-style congestion
	// window validation); otherwise a self-clocked sender such as the
	// rate-callback streaming application would inflate the window — and the
	// rate the CM advertises — far beyond anything the path has confirmed.
	AppLimited bool
}

// Controller is the per-macroflow congestion control algorithm. The CM ships
// a TCP-friendly AIMD window controller (the paper's default) and a smoothed
// rate-based controller to demonstrate the modularity the paper argues for
// (non-AIMD schemes better suited to audio/video).
type Controller interface {
	// Name identifies the algorithm.
	Name() string
	// Window returns the current congestion window in bytes. It is always
	// at least one MTU.
	Window() int
	// OnFeedback applies an Update's effects to the window.
	OnFeedback(fb Feedback)
	// OnIdleRestart is invoked by the background task when the macroflow
	// has been starved of feedback while data was outstanding; the
	// controller should fall back to a conservative state.
	OnIdleRestart()
	// InSlowStart reports whether the controller is probing exponentially.
	InSlowStart() bool
}

// aimdController is the window-based AIMD scheme with slow start and byte
// counting described in §2 and §4 of the paper. It mimics TCP's
// additive-increase / multiplicative-decrease behaviour so an ensemble of CM
// flows is no more aggressive than a single TCP connection.
type aimdController struct {
	cfg      ControllerConfig
	cwnd     int // bytes
	ssthresh int // bytes
}

// NewAIMDController returns the default CM congestion controller.
func NewAIMDController(cfg ControllerConfig) Controller {
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	if cfg.InitialWindowMTUs <= 0 {
		cfg.InitialWindowMTUs = 1
	}
	c := &aimdController{cfg: cfg}
	c.cwnd = cfg.InitialWindowMTUs * cfg.MTU
	c.ssthresh = 1 << 30
	if cfg.MaxWindowBytes > 0 && c.ssthresh > cfg.MaxWindowBytes {
		c.ssthresh = cfg.MaxWindowBytes
	}
	return c
}

func (c *aimdController) Name() string      { return "aimd" }
func (c *aimdController) Window() int       { return c.cwnd }
func (c *aimdController) InSlowStart() bool { return c.cwnd < c.ssthresh }

func (c *aimdController) clampWindow() {
	if c.cwnd < c.cfg.MTU {
		c.cwnd = c.cfg.MTU
	}
	if c.cfg.MaxWindowBytes > 0 && c.cwnd > c.cfg.MaxWindowBytes {
		c.cwnd = c.cfg.MaxWindowBytes
	}
}

func (c *aimdController) OnFeedback(fb Feedback) {
	switch fb.Mode {
	case NoLoss:
		if fb.AppLimited {
			break
		}
		c.grow(fb.ReceivedBytes)
	case TransientLoss, ECNLoss:
		// Multiplicative decrease: halve the window, as TCP's fast recovery
		// does. ECN marks are treated like transient loss per RFC 2481.
		c.ssthresh = max(c.cwnd/2, 2*c.cfg.MTU)
		c.cwnd = c.ssthresh
		// Any bytes that did get through still open the (new, smaller)
		// window slightly in congestion avoidance; this keeps successive
		// transient signals from collapsing the window to the floor when
		// most data is actually arriving.
		c.growCongestionAvoidance(fb.ReceivedBytes)
	case PersistentLoss:
		// Timeout-equivalent: collapse to the initial window and slow start
		// toward half the old window.
		c.ssthresh = max(c.cwnd/2, 2*c.cfg.MTU)
		c.cwnd = c.cfg.InitialWindowMTUs * c.cfg.MTU
	}
	c.clampWindow()
}

// grow opens the window for acked bytes using byte counting (the CM counts
// the actual bytes acknowledged rather than assuming one MTU per ACK, one of
// the two differences from the Linux baseline noted in §4).
func (c *aimdController) grow(ackedBytes int) {
	if ackedBytes <= 0 {
		return
	}
	if c.InSlowStart() {
		// Exponential growth: window grows by the number of bytes acked.
		c.cwnd += ackedBytes
		if c.cwnd > c.ssthresh {
			c.cwnd = c.ssthresh + (c.cwnd-c.ssthresh)/int(1+c.cwnd/c.cfg.MTU)
		}
		return
	}
	c.growCongestionAvoidance(ackedBytes)
}

// growCongestionAvoidance implements additive increase of roughly one MTU per
// window's worth of acknowledged bytes.
func (c *aimdController) growCongestionAvoidance(ackedBytes int) {
	if ackedBytes <= 0 || c.cwnd <= 0 {
		return
	}
	c.cwnd += int(int64(c.cfg.MTU) * int64(ackedBytes) / int64(c.cwnd))
}

func (c *aimdController) OnIdleRestart() {
	c.ssthresh = max(c.cwnd/2, 2*c.cfg.MTU)
	c.cwnd = c.cfg.InitialWindowMTUs * c.cfg.MTU
	c.clampWindow()
}

// rateController is a smoothed, equation-free rate-based controller intended
// for audio/video macroflows. It adjusts a target window gently (increase by
// at most half an MTU per RTT of acknowledged data, decrease by 1/8 on
// congestion) so the sending rate varies less abruptly than AIMD, at the cost
// of slower convergence. It exists to exercise the controller modularity the
// paper highlights; the ablation benchmark compares it against AIMD.
type rateController struct {
	cfg  ControllerConfig
	cwnd int
}

// NewRateController returns the smoothed non-AIMD controller.
func NewRateController(cfg ControllerConfig) Controller {
	if cfg.MTU <= 0 {
		cfg.MTU = 1500
	}
	if cfg.InitialWindowMTUs <= 0 {
		cfg.InitialWindowMTUs = 1
	}
	return &rateController{cfg: cfg, cwnd: cfg.InitialWindowMTUs * cfg.MTU}
}

func (c *rateController) Name() string      { return "smoothed-rate" }
func (c *rateController) Window() int       { return c.cwnd }
func (c *rateController) InSlowStart() bool { return false }

func (c *rateController) OnFeedback(fb Feedback) {
	switch fb.Mode {
	case NoLoss:
		if fb.ReceivedBytes > 0 && !fb.AppLimited {
			c.cwnd += int(int64(c.cfg.MTU/2) * int64(fb.ReceivedBytes) / int64(max(c.cwnd, 1)))
		}
	case TransientLoss, ECNLoss:
		c.cwnd -= c.cwnd / 8
	case PersistentLoss:
		c.cwnd /= 2
	}
	if c.cwnd < c.cfg.MTU {
		c.cwnd = c.cfg.MTU
	}
	if c.cfg.MaxWindowBytes > 0 && c.cwnd > c.cfg.MaxWindowBytes {
		c.cwnd = c.cfg.MaxWindowBytes
	}
}

func (c *rateController) OnIdleRestart() {
	c.cwnd = max(c.cwnd/2, c.cfg.MTU)
}

var (
	_ Controller = (*aimdController)(nil)
	_ Controller = (*rateController)(nil)
)
