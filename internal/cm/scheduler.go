package cm

// Scheduler apportions a macroflow's transmission opportunities among its
// constituent flows. The paper's implementation uses an unweighted
// round-robin scheduler; a weighted variant is provided as the extension the
// paper anticipates ("a standard unweighted round-robin scheduler...
// currently").
//
// A scheduler only decides *which* flow receives the next grant; whether a
// grant can be issued at all is the congestion controller's decision.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// Add registers a flow with the scheduler.
	Add(f *flowState)
	// Remove deregisters a flow.
	Remove(f *flowState)
	// MarkEligible tells the scheduler that f transitioned from zero to a
	// nonzero number of pending requests. The CM core calls it on every such
	// transition so schedulers can maintain an eligible-flow count instead of
	// rescanning all flows.
	MarkEligible(f *flowState)
	// MarkIneligible is the reverse transition (pending requests hit zero).
	MarkIneligible(f *flowState)
	// Next returns the next flow that has at least one pending request, or
	// nil if no flow is eligible. Successive calls rotate fairly among
	// eligible flows.
	Next() *flowState
	// Weight returns the scheduling weight of a flow (used to apportion the
	// advertised per-flow rate in Status). Unweighted schedulers return 1.
	Weight(f *flowState) float64
	// TotalWeight returns the sum of weights of all registered flows (at
	// least 1 to avoid division by zero).
	TotalWeight() float64
}

// roundRobinScheduler grants eligible flows in strict rotation.
//
// All registered flows sit on an intrusive circular doubly-linked list (the
// schedNext / schedPrev fields of flowState) in insertion order, and the
// flows with pending requests additionally sit on an *eligible-only* ring
// (eligNext / eligPrev), kept sorted by each flow's immutable insertion
// position (schedPos). The rotation cursor is the numeric position the next
// scan starts from, so Next is O(1) unconditionally: it returns the eligible
// flow closest to the cursor in circular insertion order — exactly the flow
// the previous implementation's scan over *all* flows would have found — and
// advances along the eligible ring. The scan cost moved to MarkEligible
// (a sorted insert, O(eligible flows)), which in the workload that motivated
// the change (a handful of eligible flows in a huge rotation,
// BenchmarkScaleSparseEligibility1kFlows) is O(1) in practice.
type roundRobinScheduler struct {
	head  *flowState // insertion-order anchor; nil when empty
	count int

	eligHead   *flowState // eligible ring anchor: smallest schedPos; nil when none
	eligCursor *flowState // next grant: eligible flow closest to cursorPos
	cursorPos  uint64     // position of the full-ring flow the rotation points at
	nextPos    uint64     // insertion-position generator
	eligible   int        // eligible-ring length (invariant checks, tests)
}

// NewRoundRobinScheduler returns the paper's default unweighted round-robin
// scheduler.
func NewRoundRobinScheduler() Scheduler { return &roundRobinScheduler{} }

func (s *roundRobinScheduler) Name() string { return "round-robin" }

// circRank orders insertion positions circularly starting at start: start
// itself first, larger positions ascending, then wrapped-around smaller
// positions ascending. Positions are a uint64 counter, so the high bit is
// never set and can mark the wrapped range.
//
// The cursor semantics replicate the previous identity-pointer cursor
// exactly: cursorPos is always the position of the flow the old code's
// cursor *pointed at* (captured eagerly as granted.schedNext at grant time,
// or the removed flow's successor), never "just past the grantee". The
// distinction matters when the tail flow is granted: the old cursor wrapped
// to the head immediately, so flows appended later join the *end* of the
// current lap — a position-only cursor would have put them first.
func circRank(start, pos uint64) uint64 {
	switch {
	case pos == start:
		return 0
	case pos > start:
		return pos - start
	default:
		return 1<<63 + pos
	}
}

func (s *roundRobinScheduler) Add(f *flowState) {
	f.schedPos = s.nextPos
	s.nextPos++
	if s.head == nil {
		f.schedNext, f.schedPrev = f, f
		s.head = f
		// An empty rotation's cursor parks at the first flow: the first
		// grant goes to the first-added flow.
		s.cursorPos = f.schedPos
	} else {
		// Insert at the tail (just before head), matching slice append order.
		tail := s.head.schedPrev
		tail.schedNext = f
		f.schedPrev = tail
		f.schedNext = s.head
		s.head.schedPrev = f
	}
	s.count++
	if f.pendingRequests > 0 {
		s.insertEligible(f)
	}
}

func (s *roundRobinScheduler) Remove(f *flowState) {
	if f.schedNext == nil {
		return // not registered
	}
	// The old identity cursor moved to f's successor when f was removed from
	// under it; re-anchor the positional cursor the same way.
	if s.cursorPos == f.schedPos && s.count > 1 {
		s.cursorPos = f.schedNext.schedPos
	}
	s.unlinkEligible(f)
	s.count--
	if s.count == 0 {
		s.head = nil
	} else {
		if s.head == f {
			s.head = f.schedNext
		}
		f.schedPrev.schedNext = f.schedNext
		f.schedNext.schedPrev = f.schedPrev
	}
	f.schedNext, f.schedPrev = nil, nil
}

// insertEligible links f into the eligible ring at its sorted position and
// repoints the cursor if f is now the closest eligible flow to it.
func (s *roundRobinScheduler) insertEligible(f *flowState) {
	if f.eligNext != nil {
		return // already eligible
	}
	s.eligible++
	if s.eligHead == nil {
		f.eligNext, f.eligPrev = f, f
		s.eligHead = f
		s.eligCursor = f
		return
	}
	// Walk to the first flow with a larger position and insert before it;
	// past the tail, insert before the head (largest position wraps there).
	at := s.eligHead
	for at.schedPos < f.schedPos {
		at = at.eligNext
		if at == s.eligHead {
			break
		}
	}
	prev := at.eligPrev
	prev.eligNext = f
	f.eligPrev = prev
	f.eligNext = at
	at.eligPrev = f
	if f.schedPos < s.eligHead.schedPos {
		s.eligHead = f
	}
	if circRank(s.cursorPos, f.schedPos) < circRank(s.cursorPos, s.eligCursor.schedPos) {
		s.eligCursor = f
	}
}

// unlinkEligible removes f from the eligible ring if it is on it.
func (s *roundRobinScheduler) unlinkEligible(f *flowState) {
	if f.eligNext == nil {
		return
	}
	s.eligible--
	if f.eligNext == f {
		s.eligHead, s.eligCursor = nil, nil
	} else {
		if s.eligCursor == f {
			s.eligCursor = f.eligNext
		}
		if s.eligHead == f {
			s.eligHead = f.eligNext
		}
		f.eligPrev.eligNext = f.eligNext
		f.eligNext.eligPrev = f.eligPrev
	}
	f.eligNext, f.eligPrev = nil, nil
}

func (s *roundRobinScheduler) MarkEligible(f *flowState)   { s.insertEligible(f) }
func (s *roundRobinScheduler) MarkIneligible(f *flowState) { s.unlinkEligible(f) }

func (s *roundRobinScheduler) Next() *flowState {
	f := s.eligCursor
	if f == nil {
		return nil
	}
	// The cursor parks at the grantee's full-ring successor (which may be
	// ineligible), exactly like the old cursor = granted.schedNext. The next
	// eligible flow in that order is the grantee's eligible-ring successor:
	// no eligible flow sits between them by construction, and the grantee
	// itself wraps to the end of the lap.
	s.cursorPos = f.schedNext.schedPos
	s.eligCursor = f.eligNext
	return f
}

func (s *roundRobinScheduler) Weight(f *flowState) float64 { return 1 }

func (s *roundRobinScheduler) TotalWeight() float64 {
	if s.count == 0 {
		return 1
	}
	return float64(s.count)
}

// weightedRoundRobinScheduler grants flows in proportion to their weights
// using a smooth deficit-style rotation. Flows carry a weight (default 1)
// set via CM.SetWeight; per-flow credit lives on the flowState itself so the
// scheduler does no map work on the grant path.
type weightedRoundRobinScheduler struct {
	flows []*flowState
}

// NewWeightedRoundRobinScheduler returns a weighted round-robin scheduler.
func NewWeightedRoundRobinScheduler() Scheduler {
	return &weightedRoundRobinScheduler{}
}

func (s *weightedRoundRobinScheduler) Name() string { return "weighted-round-robin" }

func (s *weightedRoundRobinScheduler) Add(f *flowState) {
	s.flows = append(s.flows, f)
	f.wrrCredit = 0
}

func (s *weightedRoundRobinScheduler) Remove(f *flowState) {
	// Order-preserving removal keeps the credit-tie scan order (and therefore
	// grant sequences) identical to the original slice implementation.
	for i, fl := range s.flows {
		if fl == f {
			s.flows = append(s.flows[:i], s.flows[i+1:]...)
			return
		}
	}
}

// The weighted scheduler scans all flows on every Next call anyway, so the
// eligibility transitions carry no extra state.
func (s *weightedRoundRobinScheduler) MarkEligible(f *flowState)   {}
func (s *weightedRoundRobinScheduler) MarkIneligible(f *flowState) {}

// Next picks the eligible flow with the highest accumulated credit, then
// charges it one unit. Credits accrue proportionally to weight every call, so
// over time grants are distributed in weight proportion among flows that stay
// eligible.
func (s *weightedRoundRobinScheduler) Next() *flowState {
	var best *flowState
	anyEligible := false
	for _, f := range s.flows {
		if f.pendingRequests <= 0 {
			continue
		}
		anyEligible = true
		f.wrrCredit += f.weight
		if best == nil || f.wrrCredit > best.wrrCredit {
			best = f
		}
	}
	if !anyEligible {
		return nil
	}
	best.wrrCredit -= s.totalEligibleWeight()
	return best
}

func (s *weightedRoundRobinScheduler) totalEligibleWeight() float64 {
	var t float64
	for _, f := range s.flows {
		if f.pendingRequests > 0 {
			t += f.weight
		}
	}
	if t <= 0 {
		return 1
	}
	return t
}

func (s *weightedRoundRobinScheduler) Weight(f *flowState) float64 {
	if f.weight <= 0 {
		return 1
	}
	return f.weight
}

func (s *weightedRoundRobinScheduler) TotalWeight() float64 {
	var t float64
	for _, f := range s.flows {
		t += s.Weight(f)
	}
	if t <= 0 {
		return 1
	}
	return t
}

var (
	_ Scheduler = (*roundRobinScheduler)(nil)
	_ Scheduler = (*weightedRoundRobinScheduler)(nil)
)
