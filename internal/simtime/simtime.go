// Package simtime provides a deterministic discrete-event scheduler used as
// the virtual clock for the Congestion Manager simulation substrate.
//
// The paper's evaluation ran on a physical testbed; this package replaces
// wall-clock time with a virtual clock so that every experiment in the
// reproduction is deterministic and runs in milliseconds of real time.
//
// The central type is Scheduler. Events are scheduled at absolute virtual
// times or after relative delays and are executed in timestamp order; ties are
// broken by scheduling order (FIFO), which keeps runs reproducible.
package simtime

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Clock exposes the current virtual time. The Congestion Manager core and the
// protocol implementations depend only on this interface (plus TimerFactory),
// so they can also run against wall-clock time in micro-benchmarks.
type Clock interface {
	// Now returns the current virtual time measured from the start of the
	// simulation.
	Now() time.Duration
}

// Timer is a cancellable, resettable one-shot timer bound to a Clock.
type Timer interface {
	// Reset (re)arms the timer to fire after d. A zero or negative d fires
	// the timer at the current time.
	Reset(d time.Duration)
	// Stop cancels the timer if it is pending. Stopping an already-fired or
	// already-stopped timer is a no-op.
	Stop()
	// Pending reports whether the timer is currently armed.
	Pending() bool
}

// TimerFactory creates timers that invoke fn when they fire.
type TimerFactory interface {
	NewTimer(fn func()) Timer
}

// Event is a handle to a scheduled callback.
type Event struct {
	at       time.Duration
	seq      uint64
	index    int // heap index, -1 when not queued
	fn       func()
	canceled bool
}

// Time returns the virtual time at which the event is scheduled to run.
func (e *Event) Time() time.Duration { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event from running. Cancelling an event that has
// already run is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// eventHeap is a min-heap ordered by (time, sequence).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated components run in virtual time on a single
// goroutine, which mirrors the paper's single-host kernel module and keeps the
// reproduction deterministic.
type Scheduler struct {
	now      time.Duration
	events   eventHeap
	seq      uint64
	executed uint64
	limit    uint64 // safety valve against runaway simulations; 0 = no limit
}

// NewScheduler returns a scheduler with the virtual clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of scheduled (possibly cancelled) events.
func (s *Scheduler) Len() int { return len(s.events) }

// Executed returns the total number of events that have run.
func (s *Scheduler) Executed() uint64 { return s.executed }

// SetEventLimit sets a safety limit on the number of events executed by Run
// and RunUntil; 0 disables the limit. Exceeding the limit causes a panic,
// which in practice indicates a livelocked simulation (for example a
// zero-delay event loop).
func (s *Scheduler) SetEventLimit(n uint64) { s.limit = n }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// runs the event at the current time (it is clamped to Now).
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simtime: At called with nil function")
	}
	if t < s.now {
		t = s.now
	}
	ev := &Event{at: t, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.events, ev)
	return ev
}

// After schedules fn to run after delay d from the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the earliest pending event, advancing the virtual clock to its
// timestamp. It returns false if no events remain.
func (s *Scheduler) Step() bool {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*Event)
		if ev.canceled {
			continue
		}
		if ev.at > s.now {
			s.now = ev.at
		}
		s.executed++
		if s.limit != 0 && s.executed > s.limit {
			panic(fmt.Sprintf("simtime: event limit %d exceeded at t=%v", s.limit, s.now))
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps at or before t, then advances the
// clock to exactly t. Events scheduled during execution are honoured if they
// fall within the horizon.
func (s *Scheduler) RunUntil(t time.Duration) {
	for {
		next, ok := s.peekTime()
		if !ok || next > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor executes events for a span d of virtual time starting at Now.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

func (s *Scheduler) peekTime() (time.Duration, bool) {
	for len(s.events) > 0 {
		if s.events[0].canceled {
			heap.Pop(&s.events)
			continue
		}
		return s.events[0].at, true
	}
	return 0, false
}

// NewTimer implements TimerFactory: the returned timer schedules fn on the
// scheduler when it fires.
func (s *Scheduler) NewTimer(fn func()) Timer {
	if fn == nil {
		panic("simtime: NewTimer called with nil function")
	}
	return &simTimer{s: s, fn: fn}
}

type simTimer struct {
	s  *Scheduler
	fn func()
	ev *Event
}

func (t *simTimer) Reset(d time.Duration) {
	t.Stop()
	t.ev = t.s.After(d, func() {
		t.ev = nil
		t.fn()
	})
}

func (t *simTimer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

func (t *simTimer) Pending() bool { return t.ev != nil && !t.ev.Canceled() }

// Seconds converts a duration to floating-point seconds. It is a convenience
// used throughout the experiment harness when reporting rates.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// FromSeconds converts floating-point seconds to a duration, saturating at the
// maximum representable duration.
func FromSeconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	f := s * float64(time.Second)
	if f > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(f)
}

// WallClock adapts the host's real clock to the Clock interface. It is used by
// the Go micro-benchmarks (bench_test.go) that measure the real cost of CM
// operations, mirroring the paper's CPU-overhead experiments.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a WallClock whose zero is the moment of the call.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the elapsed wall-clock time since the WallClock was created.
func (w *WallClock) Now() time.Duration { return time.Since(w.start) }

// NewTimer implements TimerFactory using real time.AfterFunc timers.
func (w *WallClock) NewTimer(fn func()) Timer {
	return &wallTimer{fn: fn}
}

type wallTimer struct {
	fn func()
	t  *time.Timer
}

func (t *wallTimer) Reset(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if t.t == nil {
		t.t = time.AfterFunc(d, t.fn)
		return
	}
	t.t.Reset(d)
}

func (t *wallTimer) Stop() {
	if t.t != nil {
		t.t.Stop()
	}
}

func (t *wallTimer) Pending() bool {
	// The standard library does not expose pending state; callers in the
	// wall-clock configuration do not rely on it.
	return false
}

var (
	_ Clock        = (*Scheduler)(nil)
	_ TimerFactory = (*Scheduler)(nil)
	_ Clock        = (*WallClock)(nil)
	_ TimerFactory = (*WallClock)(nil)
)
