package simtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerStartsAtZero(t *testing.T) {
	s := NewScheduler()
	if s.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", s.Now())
	}
	if s.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", s.Len())
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	s := NewScheduler()
	var got []time.Duration
	for _, d := range []time.Duration{30 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond} {
		d := d
		s.At(d, func() { got = append(got, d) })
	}
	s.Run()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran for time %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTiesBreakInSchedulingOrder(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Millisecond, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want FIFO", got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	s := NewScheduler()
	var at time.Duration
	s.At(42*time.Millisecond, func() { at = s.Now() })
	s.Run()
	if at != 42*time.Millisecond {
		t.Fatalf("clock at event time = %v, want 42ms", at)
	}
	if s.Now() != 42*time.Millisecond {
		t.Fatalf("final clock = %v, want 42ms", s.Now())
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := NewScheduler()
	var times []time.Duration
	s.At(10*time.Millisecond, func() {
		s.After(5*time.Millisecond, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if len(times) != 1 || times[0] != 15*time.Millisecond {
		t.Fatalf("After fired at %v, want [15ms]", times)
	}
}

func TestSchedulingInPastClampsToNow(t *testing.T) {
	s := NewScheduler()
	var fired time.Duration = -1
	s.At(10*time.Millisecond, func() {
		s.At(2*time.Millisecond, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 10*time.Millisecond {
		t.Fatalf("past event fired at %v, want clamp to 10ms", fired)
	}
}

func TestNegativeAfterClampsToZeroDelay(t *testing.T) {
	s := NewScheduler()
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event scheduled with negative delay never fired")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v for a clamped negative delay", s.Now())
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	s := NewScheduler()
	ran := false
	ev := s.At(time.Millisecond, func() { ran = true })
	ev.Cancel()
	s.Run()
	if ran {
		t.Fatal("cancelled event still ran")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	s := NewScheduler()
	if s.Step() {
		t.Fatal("Step() on empty scheduler returned true")
	}
	s.At(time.Millisecond, func() {})
	if !s.Step() {
		t.Fatal("Step() with pending event returned false")
	}
	if s.Step() {
		t.Fatal("Step() after draining returned true")
	}
}

func TestRunUntilStopsAtHorizon(t *testing.T) {
	s := NewScheduler()
	var ran []time.Duration
	for _, d := range []time.Duration{5, 10, 15, 20} {
		d := d * time.Millisecond
		s.At(d, func() { ran = append(ran, d) })
	}
	s.RunUntil(12 * time.Millisecond)
	if len(ran) != 2 {
		t.Fatalf("RunUntil executed %d events, want 2", len(ran))
	}
	if s.Now() != 12*time.Millisecond {
		t.Fatalf("clock after RunUntil = %v, want 12ms", s.Now())
	}
	// The remaining events should still run.
	s.Run()
	if len(ran) != 4 {
		t.Fatalf("after Run, executed %d events total, want 4", len(ran))
	}
}

func TestRunUntilIncludesEventsAtHorizon(t *testing.T) {
	s := NewScheduler()
	ran := false
	s.At(10*time.Millisecond, func() { ran = true })
	s.RunUntil(10 * time.Millisecond)
	if !ran {
		t.Fatal("event exactly at horizon did not run")
	}
}

func TestRunForAdvancesRelative(t *testing.T) {
	s := NewScheduler()
	s.At(3*time.Millisecond, func() {})
	s.RunFor(5 * time.Millisecond)
	if s.Now() != 5*time.Millisecond {
		t.Fatalf("clock = %v, want 5ms", s.Now())
	}
	s.RunFor(5 * time.Millisecond)
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock = %v, want 10ms", s.Now())
	}
}

func TestRunUntilHonoursEventsScheduledDuringRun(t *testing.T) {
	s := NewScheduler()
	var count int
	var reschedule func()
	reschedule = func() {
		count++
		if count < 5 {
			s.After(time.Millisecond, reschedule)
		}
	}
	s.After(time.Millisecond, reschedule)
	s.RunUntil(3 * time.Millisecond)
	if count != 3 {
		t.Fatalf("count = %d, want 3 (one per millisecond within horizon)", count)
	}
}

func TestEventLimitPanics(t *testing.T) {
	s := NewScheduler()
	s.SetEventLimit(10)
	var loop func()
	loop = func() { s.After(time.Microsecond, loop) }
	s.After(time.Microsecond, loop)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from event limit")
		}
	}()
	s.Run()
}

func TestNilFunctionPanics(t *testing.T) {
	s := NewScheduler()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for nil function")
		}
	}()
	s.At(time.Second, nil)
}

func TestTimerFiresOnce(t *testing.T) {
	s := NewScheduler()
	count := 0
	tm := s.NewTimer(func() { count++ })
	tm.Reset(10 * time.Millisecond)
	if !tm.Pending() {
		t.Fatal("timer not pending after Reset")
	}
	s.Run()
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1", count)
	}
	if tm.Pending() {
		t.Fatal("timer still pending after firing")
	}
}

func TestTimerResetReplacesPrevious(t *testing.T) {
	s := NewScheduler()
	var fired []time.Duration
	tm := s.NewTimer(func() { fired = append(fired, s.Now()) })
	tm.Reset(10 * time.Millisecond)
	tm.Reset(20 * time.Millisecond)
	s.Run()
	if len(fired) != 1 || fired[0] != 20*time.Millisecond {
		t.Fatalf("timer fired at %v, want single firing at 20ms", fired)
	}
}

func TestTimerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	tm := s.NewTimer(func() { count++ })
	tm.Reset(10 * time.Millisecond)
	tm.Stop()
	if tm.Pending() {
		t.Fatal("timer pending after Stop")
	}
	s.Run()
	if count != 0 {
		t.Fatalf("stopped timer fired %d times", count)
	}
	// Stopping again must be a no-op.
	tm.Stop()
}

func TestTimerRearmAfterFire(t *testing.T) {
	s := NewScheduler()
	count := 0
	var tm Timer
	tm = s.NewTimer(func() {
		count++
		if count < 3 {
			tm.Reset(5 * time.Millisecond)
		}
	})
	tm.Reset(5 * time.Millisecond)
	s.Run()
	if count != 3 {
		t.Fatalf("rearming timer fired %d times, want 3", count)
	}
	if s.Now() != 15*time.Millisecond {
		t.Fatalf("clock = %v, want 15ms", s.Now())
	}
}

func TestExecutedCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 7; i++ {
		s.After(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Executed() != 7 {
		t.Fatalf("Executed() = %d, want 7", s.Executed())
	}
}

func TestSecondsRoundTrip(t *testing.T) {
	cases := []time.Duration{0, time.Millisecond, time.Second, 90 * time.Minute}
	for _, d := range cases {
		if got := FromSeconds(Seconds(d)); got != d {
			t.Errorf("FromSeconds(Seconds(%v)) = %v", d, got)
		}
	}
	if FromSeconds(-1) != 0 {
		t.Error("FromSeconds(-1) should clamp to 0")
	}
	if FromSeconds(1e300) <= 0 {
		t.Error("FromSeconds(huge) should saturate to a positive duration")
	}
}

func TestWallClockMonotone(t *testing.T) {
	w := NewWallClock()
	a := w.Now()
	b := w.Now()
	if b < a {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

func TestWallTimerFires(t *testing.T) {
	w := NewWallClock()
	ch := make(chan struct{})
	tm := w.NewTimer(func() { close(ch) })
	tm.Reset(time.Millisecond)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("wall timer did not fire")
	}
	tm.Stop()
}

func TestWallTimerNegativeReset(t *testing.T) {
	w := NewWallClock()
	ch := make(chan struct{})
	tm := w.NewTimer(func() { close(ch) })
	tm.Reset(-time.Second)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("wall timer with negative delay did not fire")
	}
}

// Property: regardless of the order in which events are scheduled, they
// execute in non-decreasing timestamp order and the clock never moves
// backwards.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delaysMs []uint16) bool {
		if len(delaysMs) > 200 {
			delaysMs = delaysMs[:200]
		}
		s := NewScheduler()
		var ran []time.Duration
		for _, ms := range delaysMs {
			d := time.Duration(ms) * time.Millisecond
			s.At(d, func() { ran = append(ran, s.Now()) })
		}
		s.Run()
		if len(ran) != len(delaysMs) {
			return false
		}
		if !sort.SliceIsSorted(ran, func(i, j int) bool { return ran[i] < ran[j] }) {
			return false
		}
		// The set of execution times must equal the set of scheduled times.
		want := make([]time.Duration, len(delaysMs))
		for i, ms := range delaysMs {
			want[i] = time.Duration(ms) * time.Millisecond
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if ran[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of events runs exactly the others.
func TestPropertyCancellation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewScheduler()
		total := int(n%64) + 1
		type rec struct {
			ev     *Event
			cancel bool
			ran    bool
		}
		recs := make([]*rec, total)
		for i := 0; i < total; i++ {
			r := &rec{cancel: rng.Intn(2) == 0}
			r.ev = s.At(time.Duration(rng.Intn(100))*time.Millisecond, func() { r.ran = true })
			recs[i] = r
		}
		for _, r := range recs {
			if r.cancel {
				r.ev.Cancel()
			}
		}
		s.Run()
		for _, r := range recs {
			if r.cancel && r.ran {
				return false
			}
			if !r.cancel && !r.ran {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaving RunUntil calls with arbitrary horizons never loses
// events and never executes an event after a later-horizon event.
func TestPropertyRunUntilMonotone(t *testing.T) {
	f := func(delaysMs []uint8, horizonsMs []uint8) bool {
		s := NewScheduler()
		executed := 0
		for _, ms := range delaysMs {
			s.At(time.Duration(ms)*time.Millisecond, func() { executed++ })
		}
		prev := time.Duration(0)
		for _, h := range horizonsMs {
			horizon := time.Duration(h) * time.Millisecond
			if horizon < prev {
				horizon = prev
			}
			s.RunUntil(horizon)
			if s.Now() != horizon {
				return false
			}
			prev = horizon
		}
		s.Run()
		return executed == len(delaysMs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
