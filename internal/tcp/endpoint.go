package tcp

import (
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
)

// CongestionControl selects the congestion control provider of an endpoint.
type CongestionControl string

// Congestion control providers.
const (
	// CCNative keeps congestion control inside TCP, mimicking the Linux 2.2
	// baseline of the paper (initial window 2 segments, ACK counting).
	CCNative CongestionControl = "native"
	// CCCM offloads congestion control to the Congestion Manager; TCP
	// becomes an in-kernel CM client using the request/callback API.
	CCCM CongestionControl = "cm"
)

// Config parameterises an endpoint. The zero value gets sensible defaults
// from fillDefaults.
type Config struct {
	// MSS is the maximum segment size (payload bytes).
	MSS int
	// RecvWindow is the receive window advertised to the peer.
	RecvWindow int
	// DelayedAck enables RFC 1122 delayed acknowledgements (ack every second
	// full segment or after DelayedAckTimeout).
	DelayedAck bool
	// DelayedAckTimeout is the delayed-ACK timer (default 200 ms).
	DelayedAckTimeout time.Duration
	// CongestionControl selects CCNative or CCCM.
	CongestionControl CongestionControl
	// CM is the host's Congestion Manager; required when CongestionControl
	// is CCCM.
	CM *cm.CM
	// InitialWindowSegments is the initial congestion window of the native
	// controller in segments (Linux 2.2 used 2).
	InitialWindowSegments int
	// MinRTO, MaxRTO and InitialRTO bound the retransmission timer.
	MinRTO     time.Duration
	MaxRTO     time.Duration
	InitialRTO time.Duration
}

func (c *Config) fillDefaults() {
	if c.MSS <= 0 {
		c.MSS = netsim.DefaultMSS
	}
	if c.RecvWindow <= 0 {
		c.RecvWindow = 256 * 1024
	}
	if c.DelayedAckTimeout <= 0 {
		c.DelayedAckTimeout = 200 * time.Millisecond
	}
	if c.CongestionControl == "" {
		c.CongestionControl = CCNative
	}
	if c.InitialWindowSegments <= 0 {
		c.InitialWindowSegments = 2
	}
	if c.MinRTO <= 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 60 * time.Second
	}
	if c.InitialRTO <= 0 {
		c.InitialRTO = time.Second
	}
}

// Stats are cumulative counters for one endpoint.
type Stats struct {
	BytesQueued     int64
	BytesSent       int64 // payload bytes handed to IP (including retransmissions)
	BytesAcked      int64
	BytesDelivered  int64 // in-order payload bytes delivered to the application
	SegmentsSent    int64
	SegmentsRcvd    int64
	Retransmissions int64
	DupAcksRcvd     int64
	Timeouts        int64
	AcksSent        int64
	EstablishedAt   time.Duration
	ClosedAt        time.Duration
	SRTT            time.Duration
}

// interval is a half-open byte range [start, end) of out-of-order data held
// by the receiver.
type interval struct{ start, end int64 }

// Endpoint is one end of a TCP connection.
type Endpoint struct {
	host  *node.Host
	sched *simtime.Scheduler
	cfg   Config

	local, remote netsim.Addr
	state         State

	// Application callbacks.
	onEstablished func()
	onReceive     func(n int)
	onClosed      func()

	// Send sequence state.
	iss       int64
	sndUna    int64
	sndNxt    int64
	sndBufEnd int64 // sequence number just past the last byte the app queued
	finQueued bool
	finSent   bool
	peerWnd   int

	// Loss recovery.
	dupAcks    int
	inRecovery bool
	recover    int64
	rtxPending bool

	// Receive sequence state.
	rcvNxt      int64
	ooo         []interval
	finRcvd     bool
	finSeq      int64
	lastTSVal   time.Duration
	unackedSegs int
	dataSegs    int64 // data segments received (drives quick-ACK mode)

	// Timers.
	rtoTimer   simtime.Timer
	ackTimer   simtime.Timer
	rtoBackoff int

	// RTT estimation (endpoint-local; the CM provider also feeds the shared
	// macroflow estimator).
	srtt   time.Duration
	rttvar time.Duration
	hasRTT bool

	cc    ccProvider
	stats Stats

	closedFired bool
}

func newEndpoint(h *node.Host, local, remote netsim.Addr, cfg Config) *Endpoint {
	cfg.fillDefaults()
	if cfg.CongestionControl == CCCM && cfg.CM == nil {
		panic("tcp: CCCM requires a Congestion Manager instance")
	}
	e := &Endpoint{
		host:    h,
		sched:   h.Clock(),
		cfg:     cfg,
		local:   local,
		remote:  remote,
		state:   StateClosed,
		peerWnd: cfg.RecvWindow,
	}
	e.rtoTimer = e.sched.NewKindTimer(simtime.KindWorkloadApp, e.onRTO)
	e.ackTimer = e.sched.NewKindTimer(simtime.KindWorkloadApp, e.onDelayedAckTimer)
	switch cfg.CongestionControl {
	case CCCM:
		e.cc = newCMCC(e, cfg.CM)
	default:
		e.cc = newNativeCC(e)
	}
	return e
}

// Dial opens an active connection from host h to remote, allocating an
// ephemeral local port. The returned endpoint is in SYN-SENT; OnEstablished
// fires when the handshake completes.
func Dial(h *node.Host, remote netsim.Addr, cfg Config) (*Endpoint, error) {
	local := netsim.Addr{Host: h.Name(), Port: h.AllocPort()}
	e := newEndpoint(h, local, remote, cfg)
	if err := h.BindConn(netsim.ProtoTCP, local.Port, remote, e); err != nil {
		return nil, err
	}
	e.connect()
	return e, nil
}

// Local and Remote return the endpoint addresses.
func (e *Endpoint) Local() netsim.Addr  { return e.local }
func (e *Endpoint) Remote() netsim.Addr { return e.remote }

// State returns the connection state.
func (e *Endpoint) State() State { return e.state }

// Stats returns a copy of the endpoint counters.
func (e *Endpoint) Stats() Stats {
	s := e.stats
	s.SRTT = e.srtt
	return s
}

// CongestionWindow returns the current congestion window in bytes as seen by
// the active provider (for experiments and tests).
func (e *Endpoint) CongestionWindow() int { return e.cc.window() }

// OnEstablished registers a callback invoked when the handshake completes.
func (e *Endpoint) OnEstablished(fn func()) { e.onEstablished = fn }

// OnReceive registers a callback invoked with the number of new in-order
// payload bytes delivered to the application.
func (e *Endpoint) OnReceive(fn func(n int)) { e.onReceive = fn }

// OnClosed registers a callback invoked when the peer's FIN has been received
// and all data delivered.
func (e *Endpoint) OnClosed(fn func()) { e.onClosed = fn }

// connect starts the active-open handshake.
func (e *Endpoint) connect() {
	e.iss = 1
	e.sndUna = e.iss
	e.sndNxt = e.iss
	e.sndBufEnd = e.iss + 1 // the SYN occupies one sequence number
	e.rcvNxt = 0
	e.state = StateSynSent
	e.sendSYN(false)
}

// Send queues n bytes of application data for transmission.
func (e *Endpoint) Send(n int) {
	if n <= 0 {
		return
	}
	e.stats.BytesQueued += int64(n)
	e.sndBufEnd += int64(n)
	if e.state == StateEstablished || e.state == StateCloseWait {
		e.cc.trySend()
	}
}

// Close queues a FIN after any pending data (half-close of the send side).
func (e *Endpoint) Close() {
	if e.finQueued {
		return
	}
	e.finQueued = true
	if e.state == StateEstablished || e.state == StateCloseWait || e.state == StateSynSent || e.state == StateSynReceived {
		e.cc.trySend()
	}
}

// pendingData reports whether unsent application data or a queued FIN or a
// retransmission is waiting for transmission opportunities.
func (e *Endpoint) pendingData() bool {
	if e.rtxPending {
		return true
	}
	if e.sndNxt < e.sndBufEnd {
		return true
	}
	if e.finQueued && !e.finSent {
		return true
	}
	return false
}

// inFlight returns the number of unacknowledged sequence bytes.
func (e *Endpoint) inFlight() int { return int(e.sndNxt - e.sndUna) }

// mss returns the maximum segment size.
func (e *Endpoint) mss() int { return e.cfg.MSS }

// ---------- segment construction and transmission ----------

func (e *Endpoint) basePacket(seg *Segment, control bool) *netsim.Packet {
	pkt := netsim.NewPacket()
	pkt.Proto = netsim.ProtoTCP
	pkt.Src = e.local
	pkt.Dst = e.remote
	pkt.Size = wireSize(seg)
	pkt.Payload = seg
	pkt.Control = control
	// The CM is charged in payload bytes so that cm_notify matches the
	// payload-byte feedback TCP reports with cm_update.
	pkt.ChargeBytes = seg.Len
	return pkt
}

func (e *Endpoint) sendSYN(synAck bool) {
	seg := &Segment{
		Seq:   e.iss,
		SYN:   true,
		Wnd:   e.cfg.RecvWindow,
		TSVal: e.sched.Now(),
	}
	if synAck {
		seg.ACK = true
		seg.Ack = e.rcvNxt
		seg.TSEcr = e.lastTSVal
	}
	e.sndNxt = e.iss + 1
	e.stats.SegmentsSent++
	// Connection-setup segments are control traffic from the CM's point of
	// view: the congestion window governs data, not the handshake.
	e.host.Output(e.basePacket(seg, true))
	e.armRTO()
}

// sendAck transmits a pure acknowledgement.
func (e *Endpoint) sendAck() {
	e.ackTimer.Stop()
	e.unackedSegs = 0
	seg := &Segment{
		Seq:   e.sndNxt,
		ACK:   true,
		Ack:   e.rcvNxt,
		Wnd:   e.availableRecvWindow(),
		TSVal: e.sched.Now(),
		TSEcr: e.lastTSVal,
	}
	e.stats.AcksSent++
	e.host.Output(e.basePacket(seg, true))
}

func (e *Endpoint) availableRecvWindow() int {
	var buffered int64
	for _, iv := range e.ooo {
		buffered += iv.end - iv.start
	}
	w := e.cfg.RecvWindow - int(buffered)
	if w < 0 {
		w = 0
	}
	return w
}

// sendOneSegment transmits the next segment: a retransmission if one is
// pending, otherwise new data (respecting the peer's window), otherwise a FIN
// if queued. It returns the number of payload bytes transmitted and whether
// anything was sent. Congestion control providers call it; it does not
// consult the congestion window itself.
func (e *Endpoint) sendOneSegment() (int, bool) {
	if e.state != StateEstablished && e.state != StateCloseWait &&
		e.state != StateFinWait && e.state != StateClosing {
		return 0, false
	}
	now := e.sched.Now()

	if e.rtxPending {
		e.rtxPending = false
		length := e.mss()
		if rem := int(e.sndBufEnd - e.sndUna); rem < length {
			length = rem
		}
		fin := false
		if length < 0 {
			length = 0
		}
		if e.finSent && e.sndUna+int64(length) >= e.sndBufEnd {
			// The FIN itself needs retransmitting once data is exhausted.
			fin = true
			if length > int(e.sndBufEnd-e.sndUna-1) {
				length = int(e.sndBufEnd - e.sndUna - 1)
				if length < 0 {
					length = 0
				}
			}
		}
		seg := &Segment{
			Seq: e.sndUna, Len: length, ACK: true, Ack: e.rcvNxt,
			Wnd: e.availableRecvWindow(), TSVal: now, TSEcr: e.lastTSVal,
			FIN: fin, Retransmit: true,
		}
		e.stats.SegmentsSent++
		e.stats.Retransmissions++
		e.stats.BytesSent += int64(length)
		e.host.Output(e.basePacket(seg, false))
		e.armRTO()
		return length, true
	}

	// New data. sndBufEnd covers only application data until the FIN has
	// actually been sent (the FIN's sequence slot is appended then).
	available := int(e.sndBufEnd - e.sndNxt)
	if e.finSent {
		available = 0
	}
	wndRoom := e.peerWnd - e.inFlight()
	if available > 0 && wndRoom > 0 {
		length := e.mss()
		if length > available {
			length = available
		}
		if length > wndRoom {
			length = wndRoom
		}
		if length <= 0 {
			return 0, false
		}
		seg := &Segment{
			Seq: e.sndNxt, Len: length, ACK: true, Ack: e.rcvNxt,
			Wnd: e.availableRecvWindow(), TSVal: now, TSEcr: e.lastTSVal,
		}
		e.sndNxt += int64(length)
		e.stats.SegmentsSent++
		e.stats.BytesSent += int64(length)
		e.host.Output(e.basePacket(seg, false))
		e.armRTO()
		return length, true
	}

	// FIN, once all data has been transmitted at least once.
	if e.finQueued && !e.finSent && e.sndNxt == e.sndBufEndData() && wndRoom >= 0 {
		seg := &Segment{
			Seq: e.sndNxt, FIN: true, ACK: true, Ack: e.rcvNxt,
			Wnd: e.availableRecvWindow(), TSVal: now, TSEcr: e.lastTSVal,
		}
		e.finSent = true
		e.sndBufEnd = e.sndNxt + 1 // FIN occupies one sequence number
		e.sndNxt++
		e.stats.SegmentsSent++
		e.host.Output(e.basePacket(seg, true))
		switch e.state {
		case StateEstablished:
			e.state = StateFinWait
		case StateCloseWait:
			e.state = StateClosing
		}
		e.armRTO()
		return 0, true
	}
	return 0, false
}

// sndBufEndData returns the sequence number just past the last data byte
// (excluding any FIN sequence slot already appended).
func (e *Endpoint) sndBufEndData() int64 {
	if e.finSent {
		return e.sndBufEnd - 1
	}
	return e.sndBufEnd
}

// ---------- timers ----------

func (e *Endpoint) currentRTO() time.Duration {
	var rto time.Duration
	if e.hasRTT {
		rto = e.srtt + 4*e.rttvar
	} else if srtt, rttvar, ok := e.cc.sharedRTT(); ok && srtt > 0 {
		rto = srtt + 4*rttvar
	} else {
		rto = e.cfg.InitialRTO
	}
	for i := 0; i < e.rtoBackoff; i++ {
		rto *= 2
		if rto > e.cfg.MaxRTO {
			break
		}
	}
	if rto < e.cfg.MinRTO {
		rto = e.cfg.MinRTO
	}
	if rto > e.cfg.MaxRTO {
		rto = e.cfg.MaxRTO
	}
	return rto
}

func (e *Endpoint) armRTO() {
	if e.sndNxt > e.sndUna || e.state == StateSynSent || e.state == StateSynReceived {
		e.rtoTimer.Reset(e.currentRTO())
	} else {
		e.rtoTimer.Stop()
	}
}

func (e *Endpoint) onRTO() {
	if e.state == StateClosed || e.state == StateTimeWait {
		return
	}
	if e.state == StateSynSent || e.state == StateSynReceived {
		// Retransmit the handshake segment.
		e.rtoBackoff++
		e.stats.Timeouts++
		e.iss = e.sndUna
		e.sendSYN(e.state == StateSynReceived)
		return
	}
	if e.sndUna >= e.sndNxt {
		return // nothing outstanding
	}
	e.stats.Timeouts++
	e.rtoBackoff++
	e.dupAcks = 0
	// Stay in (or enter) recovery up to the current send frontier so that
	// partial ACKs after the timeout keep retransmitting the remaining holes.
	e.inRecovery = true
	e.recover = e.sndNxt
	e.rtxPending = true
	e.cc.onTimeout()
	e.cc.trySend()
	e.armRTO()
}

func (e *Endpoint) onDelayedAckTimer() {
	if e.unackedSegs > 0 {
		e.sendAck()
	}
}

// ---------- RTT ----------

func (e *Endpoint) addRTTSample(rtt time.Duration) {
	if rtt <= 0 {
		return
	}
	if !e.hasRTT {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.hasRTT = true
		return
	}
	diff := e.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	e.rttvar += (diff - e.rttvar) / 4
	e.srtt += (rtt - e.srtt) / 8
}

// ---------- receive path ----------

// Handle implements node.Handler: it processes one incoming segment.
func (e *Endpoint) Handle(pkt *netsim.Packet) {
	seg, ok := pkt.Payload.(*Segment)
	if !ok {
		return
	}
	e.stats.SegmentsRcvd++
	switch e.state {
	case StateSynSent:
		e.handleSynSent(seg)
	case StateSynReceived:
		e.handleSynReceived(seg)
	case StateEstablished, StateFinWait, StateCloseWait, StateClosing:
		e.handleEstablished(seg, pkt.CE)
	case StateTimeWait, StateClosed:
		// Late segments are acknowledged so the peer can finish cleanly.
		if seg.Len > 0 || seg.FIN {
			e.sendAck()
		}
	}
}

func (e *Endpoint) handleSynSent(seg *Segment) {
	if !seg.SYN {
		return
	}
	e.rcvNxt = seg.Seq + 1
	e.lastTSVal = seg.TSVal
	e.peerWnd = seg.Wnd
	if seg.ACK && seg.Ack == e.iss+1 {
		e.sndUna = seg.Ack
		e.becomeEstablished()
		e.sendAck()
	} else {
		// Simultaneous open is not modelled; treat as SYN-ACK anyway.
		e.becomeEstablished()
		e.sendAck()
	}
}

func (e *Endpoint) handleSynReceived(seg *Segment) {
	if seg.SYN && !seg.ACK {
		// Duplicate SYN: retransmit our SYN-ACK.
		e.sendSYN(true)
		return
	}
	if seg.ACK && seg.Ack >= e.iss+1 {
		e.sndUna = seg.Ack
		e.peerWnd = seg.Wnd
		e.becomeEstablished()
		// The ACK completing the handshake may carry data.
		if seg.Len > 0 || seg.FIN {
			e.handleEstablished(seg, false)
		}
	}
}

func (e *Endpoint) becomeEstablished() {
	if e.state == StateEstablished {
		return
	}
	e.state = StateEstablished
	e.rtoBackoff = 0
	e.stats.EstablishedAt = e.sched.Now()
	e.rtoTimer.Stop()
	e.cc.onEstablished()
	if e.onEstablished != nil {
		e.onEstablished()
	}
	if e.pendingData() {
		e.cc.trySend()
	}
}

func (e *Endpoint) handleEstablished(seg *Segment, ce bool) {
	if seg.SYN {
		// Duplicate handshake segment from the peer; re-acknowledge.
		e.sendAck()
		return
	}
	if seg.ACK {
		e.processAck(seg, ce)
	}
	if seg.Len > 0 || seg.FIN {
		e.processData(seg)
	}
}

func (e *Endpoint) processAck(seg *Segment, ce bool) {
	e.peerWnd = seg.Wnd
	switch {
	case seg.Ack > e.sndUna:
		acked := int(seg.Ack - e.sndUna)
		e.sndUna = seg.Ack
		e.stats.BytesAcked += int64(acked)
		e.dupAcks = 0
		e.rtoBackoff = 0

		var rtt time.Duration
		if seg.TSEcr > 0 {
			rtt = e.sched.Now() - seg.TSEcr
			e.addRTTSample(rtt)
		}

		if e.inRecovery {
			if seg.Ack >= e.recover {
				e.inRecovery = false
				e.cc.onRecoveryExit()
			} else {
				// NewReno partial ACK: the next hole is lost too; retransmit
				// it without waiting for another three duplicate ACKs.
				e.rtxPending = true
			}
		}
		e.cc.onAck(acked, rtt, ce)

		if e.sndUna >= e.sndNxt {
			e.rtoTimer.Stop()
			e.maybeFinishClose()
		} else {
			e.armRTO()
		}
		e.cc.trySend()

	case seg.Ack == e.sndUna && seg.Len == 0 && !seg.FIN && e.sndNxt > e.sndUna:
		// Duplicate ACK.
		e.dupAcks++
		e.stats.DupAcksRcvd++
		if e.dupAcks == 3 && !e.inRecovery {
			e.inRecovery = true
			e.recover = e.sndNxt
			e.rtxPending = true
			e.cc.onFastRetransmit()
		} else if e.dupAcks > 3 || (e.dupAcks >= 3 && e.inRecovery) {
			e.cc.onDupAckInRecovery()
		}
		e.cc.trySend()
	}
}

func (e *Endpoint) maybeFinishClose() {
	// All of our data (and FIN if sent) has been acknowledged.
	if e.finSent && e.sndUna == e.sndBufEnd {
		switch e.state {
		case StateFinWait:
			if e.finRcvd {
				e.enterTimeWait()
			}
		case StateClosing:
			e.enterTimeWait()
		}
	}
}

func (e *Endpoint) enterTimeWait() {
	if e.state == StateTimeWait {
		return
	}
	e.state = StateTimeWait
	e.stats.ClosedAt = e.sched.Now()
	e.rtoTimer.Stop()
	e.ackTimer.Stop()
	e.cc.onClose()
}

func (e *Endpoint) processData(seg *Segment) {
	e.lastTSVal = seg.TSVal
	start, end := seg.Seq, seg.Seq+int64(seg.Len)
	advanced := false

	if seg.Len > 0 {
		switch {
		case end <= e.rcvNxt:
			// Entirely old data: re-acknowledge immediately.
			e.sendAck()
			return
		case start <= e.rcvNxt:
			// Advances the left edge.
			newBytes := int(end - e.rcvNxt)
			e.rcvNxt = end
			e.deliver(newBytes)
			advanced = true
			e.mergeOOO()
		default:
			// Out of order: buffer the interval and send an immediate
			// duplicate ACK so the sender's fast retransmit can trigger.
			e.addOOO(interval{start, end})
			e.sendAck()
			return
		}
	}

	if seg.FIN {
		finSeq := end
		if seg.Len == 0 {
			finSeq = seg.Seq
		}
		if !e.finRcvd {
			e.finRcvd = true
			e.finSeq = finSeq
		}
	}
	if e.finRcvd && e.rcvNxt == e.finSeq {
		e.rcvNxt = e.finSeq + 1
		switch e.state {
		case StateEstablished:
			e.state = StateCloseWait
		case StateFinWait:
			if e.finSent && e.sndUna == e.sndBufEnd {
				e.enterTimeWait()
			} else {
				e.state = StateClosing
			}
		}
		e.fireClosed()
		e.sendAck()
		return
	}

	if advanced {
		e.acknowledgeData()
	} else if seg.FIN {
		e.sendAck()
	}
}

func (e *Endpoint) fireClosed() {
	if e.closedFired {
		return
	}
	e.closedFired = true
	if e.stats.ClosedAt == 0 {
		e.stats.ClosedAt = e.sched.Now()
	}
	if e.onClosed != nil {
		e.onClosed()
	}
}

func (e *Endpoint) deliver(n int) {
	if n <= 0 {
		return
	}
	e.stats.BytesDelivered += int64(n)
	if e.onReceive != nil {
		e.onReceive(n)
	}
}

func (e *Endpoint) acknowledgeData() {
	e.unackedSegs++
	e.dataSegs++
	// Quick-ACK mode: like Linux, the first few data segments of a
	// connection are acknowledged immediately so a sender starting with a
	// small initial window is not stalled by the delayed-ACK timer.
	quickAck := e.dataSegs <= 4
	if !e.cfg.DelayedAck || quickAck || e.unackedSegs >= 2 || len(e.ooo) > 0 {
		e.sendAck()
		return
	}
	if !e.ackTimer.Pending() {
		e.ackTimer.Reset(e.cfg.DelayedAckTimeout)
	}
}

func (e *Endpoint) addOOO(iv interval) {
	for _, existing := range e.ooo {
		if iv.start >= existing.start && iv.end <= existing.end {
			return // fully contained
		}
	}
	e.ooo = append(e.ooo, iv)
}

func (e *Endpoint) mergeOOO() {
	changed := true
	for changed {
		changed = false
		for i, iv := range e.ooo {
			if iv.start <= e.rcvNxt {
				if iv.end > e.rcvNxt {
					n := int(iv.end - e.rcvNxt)
					e.rcvNxt = iv.end
					e.deliver(n)
				}
				e.ooo = append(e.ooo[:i], e.ooo[i+1:]...)
				changed = true
				break
			}
		}
	}
}

// Listener accepts incoming connections on a port, creating one Endpoint per
// connection (the paper's accept path: cm_open is called when the connection
// is created).
type Listener struct {
	host   *node.Host
	port   int
	cfg    Config
	accept func(*Endpoint)
	conns  map[string]*Endpoint
}

// Listen binds a listener to (host, port). The accept callback runs when a
// SYN creates a new connection; the endpoint it receives is in SYN-RECEIVED
// and becomes established once the handshake completes.
func Listen(h *node.Host, port int, cfg Config, accept func(*Endpoint)) (*Listener, error) {
	l := &Listener{host: h, port: port, cfg: cfg, accept: accept, conns: make(map[string]*Endpoint)}
	if err := h.Bind(netsim.ProtoTCP, port, l); err != nil {
		return nil, err
	}
	return l, nil
}

// Handle implements node.Handler for the listening socket: only SYNs that do
// not match an existing connection arrive here.
func (l *Listener) Handle(pkt *netsim.Packet) {
	seg, ok := pkt.Payload.(*Segment)
	if !ok || !seg.SYN || seg.ACK {
		return
	}
	key := fmt.Sprintf("%s:%d", pkt.Src.Host, pkt.Src.Port)
	if ep, exists := l.conns[key]; exists {
		ep.Handle(pkt)
		return
	}
	local := netsim.Addr{Host: l.host.Name(), Port: l.port}
	e := newEndpoint(l.host, local, pkt.Src, l.cfg)
	if err := l.host.BindConn(netsim.ProtoTCP, l.port, pkt.Src, e); err != nil {
		return
	}
	l.conns[key] = e
	// Passive open: record the peer's SYN and answer with SYN-ACK.
	e.iss = 1
	e.sndUna = e.iss
	e.sndNxt = e.iss
	e.sndBufEnd = e.iss + 1
	e.rcvNxt = seg.Seq + 1
	e.lastTSVal = seg.TSVal
	e.peerWnd = seg.Wnd
	e.state = StateSynReceived
	if l.accept != nil {
		l.accept(e)
	}
	e.sendSYN(true)
}

// Close removes the listener binding; existing connections are unaffected.
func (l *Listener) Close() { l.host.Unbind(netsim.ProtoTCP, l.port) }

var (
	_ node.Handler = (*Endpoint)(nil)
	_ node.Handler = (*Listener)(nil)
)
