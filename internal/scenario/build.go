package scenario

import (
	"fmt"
	"sort"

	"repro/internal/cm"
	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
)

// Sim is a built scenario: the wired topology, its scheduler and the
// Congestion Managers, ready to run. Experiments that need programmatic
// workloads (custom applications, taps, ablations) use Build directly and
// drive the scheduler themselves; declarative workloads go through Run (or
// Start + Finish when the caller drives the clock).
type Sim struct {
	Spec  Spec
	sched *simtime.Scheduler
	net   *node.Network
	// nodeNames is every node in deterministic (first-mention) order.
	nodeNames []string
	// duplexes[i] realises Spec.Links[i].
	duplexes []*netsim.Duplex
	cms      map[string]*cm.CM
	cmHosts  []string // deterministic order of cms keys

	// linkFrom[a][b] is the directional link a->b; neighbors[a] lists a's
	// adjacent nodes in first-mention order. Both are retained after Build so
	// the dynamics timeline can recompute routes when links fail or recover.
	linkFrom  map[string]map[string]*netsim.Link
	neighbors map[string][]string
	timeline  *dynamics.Timeline

	// drivers track the declarative workloads once Start has run.
	drivers []*flowDriver
	started bool
}

// Build validates the spec, creates the hosts, routers and links, computes
// shortest-path routes between every pair of nodes, installs Congestion
// Managers on the CM hosts and schedules the spec's dynamics events.
func Build(spec Spec) (*Sim, error) {
	spec.fillDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sched := simtime.NewScheduler()
	nw := node.NewNetwork(sched)
	sim := &Sim{Spec: spec, sched: sched, net: nw, cms: make(map[string]*cm.CM)}

	seen := make(map[string]bool)
	addNode := func(name string) {
		if !seen[name] {
			seen[name] = true
			sim.nodeNames = append(sim.nodeNames, name)
		}
	}
	for _, r := range spec.Routers {
		nw.Router(r)
	}
	// The first link between a pair wins; parallel links would make next-hop
	// routing ambiguous.
	sim.linkFrom = make(map[string]map[string]*netsim.Link)
	sim.neighbors = make(map[string][]string)
	direction := func(from, to string, l *netsim.Link) error {
		if sim.linkFrom[from] == nil {
			sim.linkFrom[from] = make(map[string]*netsim.Link)
		}
		if _, dup := sim.linkFrom[from][to]; dup {
			return fmt.Errorf("scenario %q: duplicate link %s-%s", spec.Name, from, to)
		}
		sim.linkFrom[from][to] = l
		sim.neighbors[from] = append(sim.neighbors[from], to)
		return nil
	}
	// Links with Seed zero get derived seeds. Each duplex consumes two seeds
	// (NewDuplex uses Seed and Seed+1); derived pairs skip over any seed an
	// explicitly seeded link already claimed, so no two links ever share a
	// random stream.
	usedSeeds := make(map[int64]bool)
	for _, ls := range spec.Links {
		if ls.Seed != 0 {
			usedSeeds[ls.Seed] = true
			usedSeeds[ls.Seed+1] = true
		}
	}
	nextSeed := spec.Seed
	deriveSeed := func() int64 {
		for usedSeeds[nextSeed] || usedSeeds[nextSeed+1] {
			nextSeed++
		}
		s := nextSeed
		usedSeeds[s] = true
		usedSeeds[s+1] = true
		nextSeed += 2
		return s
	}
	for _, ls := range spec.Links {
		addNode(ls.A)
		addNode(ls.B)
		cfg := ls.LinkConfig
		if cfg.Name == "" {
			cfg.Name = ls.A + "<->" + ls.B
		}
		if cfg.Seed == 0 {
			cfg.Seed = deriveSeed()
		}
		d := nw.ConnectDuplex(ls.A, ls.B, cfg)
		sim.duplexes = append(sim.duplexes, d)
		if err := direction(ls.A, ls.B, d.Forward); err != nil {
			return nil, err
		}
		if err := direction(ls.B, ls.A, d.Reverse); err != nil {
			return nil, err
		}
	}

	sim.recomputeRoutes()

	cmHosts := append([]string(nil), spec.CMHosts...)
	for _, w := range spec.Workloads {
		if w.CC == CCCM {
			cmHosts = append(cmHosts, w.From)
		}
	}
	sort.Strings(cmHosts)
	for _, h := range cmHosts {
		if _, ok := sim.cms[h]; ok {
			continue
		}
		c := cm.New(sched, sched, spec.CMOpts...)
		sim.cms[h] = c
		sim.cmHosts = append(sim.cmHosts, h)
		nw.Host(h).SetTransmitNotifier(c)
	}

	// The dynamics timeline is installed last so its time-zero events (static
	// asymmetries and initial loss modes) see the fully wired topology.
	if len(spec.Events) > 0 {
		sim.timeline = dynamics.NewTimeline(sched, spec.Events, sim.resolveEventLinks,
			func(dynamics.Event) int { return sim.recomputeRoutes() })
		sim.timeline.Install()
	}
	return sim, nil
}

// resolveEventLinks maps an event's (link index, direction) onto the built
// duplexes — the dynamics.Resolver for this simulation.
func (s *Sim) resolveEventLinks(link int, direction string) []*netsim.Link {
	d := s.duplexes[link]
	switch direction {
	case dynamics.DirForward:
		return []*netsim.Link{d.Forward}
	case dynamics.DirReverse:
		return []*netsim.Link{d.Reverse}
	default:
		return []*netsim.Link{d.Forward, d.Reverse}
	}
}

// MustBuild is Build for specs known statically correct (canned builders).
func MustBuild(spec Spec) *Sim {
	sim, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return sim
}

// routesFrom runs a breadth-first search from src over the link adjacency,
// skipping links that are down, and returns the destination->next-hop-link
// table. Ties are broken by first-mention order, so tables are deterministic.
func (s *Sim) routesFrom(src string) map[string]*netsim.Link {
	// parent[v] is v's predecessor on the shortest path from src.
	parent := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range s.neighbors[u] {
			if s.linkFrom[u][v].IsDown() {
				continue
			}
			if _, ok := parent[v]; !ok {
				parent[v] = u
				queue = append(queue, v)
			}
		}
	}
	table := make(map[string]*netsim.Link)
	for _, dst := range s.nodeNames {
		if dst == src {
			continue
		}
		if _, ok := parent[dst]; !ok {
			continue // unreachable; Output will count a NoRouteDrop
		}
		// Walk back from dst to find src's next hop.
		hop := dst
		for parent[hop] != src {
			hop = parent[hop]
		}
		table[dst] = s.linkFrom[src][hop]
	}
	return table
}

// recomputeRoutes rebuilds every node's routing table around the current link
// up/down state and installs the new tables atomically, returning the total
// number of changed entries. Build uses it for the initial installation; the
// dynamics timeline calls it on link up/down, where packets already in flight
// toward a withdrawn route are dropped at the next hop and counted as
// route-miss (or no-route) drops.
func (s *Sim) recomputeRoutes() int {
	changed := 0
	for _, src := range s.nodeNames {
		changed += s.net.Host(src).InstallRoutes(s.routesFrom(src))
	}
	return changed
}

// Scheduler returns the simulation's private scheduler.
func (s *Sim) Scheduler() *simtime.Scheduler { return s.sched }

// Network returns the wired topology.
func (s *Sim) Network() *node.Network { return s.net }

// Host returns the named host.
func (s *Sim) Host(name string) *node.Host { return s.net.Host(name) }

// CM returns the Congestion Manager installed on the named host, or nil.
func (s *Sim) CM(host string) *cm.CM { return s.cms[host] }

// Duplex returns the duplex realising Spec.Links[i].
func (s *Sim) Duplex(i int) *netsim.Duplex { return s.duplexes[i] }

// Timeline returns the dynamics timeline, or nil when the spec has no events.
func (s *Sim) Timeline() *dynamics.Timeline { return s.timeline }

// Nodes returns every node name in deterministic order.
func (s *Sim) Nodes() []string { return append([]string(nil), s.nodeNames...) }
