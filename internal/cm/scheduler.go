package cm

// Scheduler apportions a macroflow's transmission opportunities among its
// constituent flows. The paper's implementation uses an unweighted
// round-robin scheduler; a weighted variant is provided as the extension the
// paper anticipates ("a standard unweighted round-robin scheduler...
// currently").
//
// A scheduler only decides *which* flow receives the next grant; whether a
// grant can be issued at all is the congestion controller's decision.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// Add registers a flow with the scheduler.
	Add(f *flowState)
	// Remove deregisters a flow.
	Remove(f *flowState)
	// MarkEligible tells the scheduler that f transitioned from zero to a
	// nonzero number of pending requests. The CM core calls it on every such
	// transition so schedulers can maintain an eligible-flow count instead of
	// rescanning all flows.
	MarkEligible(f *flowState)
	// MarkIneligible is the reverse transition (pending requests hit zero).
	MarkIneligible(f *flowState)
	// Next returns the next flow that has at least one pending request, or
	// nil if no flow is eligible. Successive calls rotate fairly among
	// eligible flows.
	Next() *flowState
	// Weight returns the scheduling weight of a flow (used to apportion the
	// advertised per-flow rate in Status). Unweighted schedulers return 1.
	Weight(f *flowState) float64
	// TotalWeight returns the sum of weights of all registered flows (at
	// least 1 to avoid division by zero).
	TotalWeight() float64
}

// roundRobinScheduler grants eligible flows in strict rotation.
//
// Flows are kept on an intrusive circular doubly-linked list (the schedNext /
// schedPrev fields of flowState) in insertion order, with a cursor marking
// the next rotation candidate. Add and Remove are O(1) with no allocation;
// Next is O(1) when no eligible flows exist (the common idle case for a
// closed window) thanks to the eligible count, and otherwise scans only until
// the first flow with a pending request.
type roundRobinScheduler struct {
	head     *flowState // insertion-order anchor; nil when empty
	cursor   *flowState // next candidate in the rotation
	count    int
	eligible int // flows with pendingRequests > 0
}

// NewRoundRobinScheduler returns the paper's default unweighted round-robin
// scheduler.
func NewRoundRobinScheduler() Scheduler { return &roundRobinScheduler{} }

func (s *roundRobinScheduler) Name() string { return "round-robin" }

func (s *roundRobinScheduler) Add(f *flowState) {
	if s.head == nil {
		f.schedNext, f.schedPrev = f, f
		s.head = f
		s.cursor = f
	} else {
		// Insert at the tail (just before head), matching slice append order.
		tail := s.head.schedPrev
		tail.schedNext = f
		f.schedPrev = tail
		f.schedNext = s.head
		s.head.schedPrev = f
	}
	s.count++
	if f.pendingRequests > 0 {
		s.eligible++
	}
}

func (s *roundRobinScheduler) Remove(f *flowState) {
	if f.schedNext == nil {
		return // not registered
	}
	if f.pendingRequests > 0 {
		s.eligible--
	}
	s.count--
	if s.count == 0 {
		s.head, s.cursor = nil, nil
	} else {
		if s.cursor == f {
			s.cursor = f.schedNext
		}
		if s.head == f {
			s.head = f.schedNext
		}
		f.schedPrev.schedNext = f.schedNext
		f.schedNext.schedPrev = f.schedPrev
	}
	f.schedNext, f.schedPrev = nil, nil
}

func (s *roundRobinScheduler) MarkEligible(f *flowState)   { s.eligible++ }
func (s *roundRobinScheduler) MarkIneligible(f *flowState) { s.eligible-- }

func (s *roundRobinScheduler) Next() *flowState {
	if s.eligible <= 0 || s.cursor == nil {
		return nil
	}
	f := s.cursor
	for i := 0; i < s.count; i++ {
		if f.pendingRequests > 0 {
			s.cursor = f.schedNext
			return f
		}
		f = f.schedNext
	}
	return nil
}

func (s *roundRobinScheduler) Weight(f *flowState) float64 { return 1 }

func (s *roundRobinScheduler) TotalWeight() float64 {
	if s.count == 0 {
		return 1
	}
	return float64(s.count)
}

// weightedRoundRobinScheduler grants flows in proportion to their weights
// using a smooth deficit-style rotation. Flows carry a weight (default 1)
// set via CM.SetWeight; per-flow credit lives on the flowState itself so the
// scheduler does no map work on the grant path.
type weightedRoundRobinScheduler struct {
	flows []*flowState
}

// NewWeightedRoundRobinScheduler returns a weighted round-robin scheduler.
func NewWeightedRoundRobinScheduler() Scheduler {
	return &weightedRoundRobinScheduler{}
}

func (s *weightedRoundRobinScheduler) Name() string { return "weighted-round-robin" }

func (s *weightedRoundRobinScheduler) Add(f *flowState) {
	s.flows = append(s.flows, f)
	f.wrrCredit = 0
}

func (s *weightedRoundRobinScheduler) Remove(f *flowState) {
	// Order-preserving removal keeps the credit-tie scan order (and therefore
	// grant sequences) identical to the original slice implementation.
	for i, fl := range s.flows {
		if fl == f {
			s.flows = append(s.flows[:i], s.flows[i+1:]...)
			return
		}
	}
}

// The weighted scheduler scans all flows on every Next call anyway, so the
// eligibility transitions carry no extra state.
func (s *weightedRoundRobinScheduler) MarkEligible(f *flowState)   {}
func (s *weightedRoundRobinScheduler) MarkIneligible(f *flowState) {}

// Next picks the eligible flow with the highest accumulated credit, then
// charges it one unit. Credits accrue proportionally to weight every call, so
// over time grants are distributed in weight proportion among flows that stay
// eligible.
func (s *weightedRoundRobinScheduler) Next() *flowState {
	var best *flowState
	anyEligible := false
	for _, f := range s.flows {
		if f.pendingRequests <= 0 {
			continue
		}
		anyEligible = true
		f.wrrCredit += f.weight
		if best == nil || f.wrrCredit > best.wrrCredit {
			best = f
		}
	}
	if !anyEligible {
		return nil
	}
	best.wrrCredit -= s.totalEligibleWeight()
	return best
}

func (s *weightedRoundRobinScheduler) totalEligibleWeight() float64 {
	var t float64
	for _, f := range s.flows {
		if f.pendingRequests > 0 {
			t += f.weight
		}
	}
	if t <= 0 {
		return 1
	}
	return t
}

func (s *weightedRoundRobinScheduler) Weight(f *flowState) float64 {
	if f.weight <= 0 {
		return 1
	}
	return f.weight
}

func (s *weightedRoundRobinScheduler) TotalWeight() float64 {
	var t float64
	for _, f := range s.flows {
		t += s.Weight(f)
	}
	if t <= 0 {
		return 1
	}
	return t
}

var (
	_ Scheduler = (*roundRobinScheduler)(nil)
	_ Scheduler = (*weightedRoundRobinScheduler)(nil)
)
