package scenario

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
)

func TestValidateRejectsBadSpecs(t *testing.T) {
	good := func() Spec {
		return Spec{
			Name:  "t",
			Links: []LinkSpec{{A: "a", B: "b"}},
			Workloads: []Workload{
				{From: "a", To: "b"},
			},
		}
	}
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no links", func(s *Spec) { s.Links = nil }},
		{"self link", func(s *Spec) { s.Links[0].B = "a" }},
		{"unknown router", func(s *Spec) { s.Routers = []string{"ghost"} }},
		{"unknown cm host", func(s *Spec) { s.CMHosts = []string{"ghost"} }},
		{"workload endpoint missing", func(s *Spec) { s.Workloads[0].To = "ghost" }},
		{"workload to itself", func(s *Spec) { s.Workloads[0].To = "a" }},
		{"workload at router", func(s *Spec) { s.Routers = []string{"b"} }},
		{"bad kind", func(s *Spec) { s.Workloads[0].Kind = "warp" }},
		{"bad cc", func(s *Spec) { s.Workloads[0].CC = "vegas" }},
	}
	for _, tc := range cases {
		spec := good()
		tc.mutate(&spec)
		spec.fillDefaults()
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a bad spec", tc.name)
		}
	}
	spec := good()
	spec.fillDefaults()
	if err := spec.Validate(); err != nil {
		t.Fatalf("good spec rejected: %v", err)
	}
}

func TestBuildRejectsDuplicateLinks(t *testing.T) {
	_, err := Build(Spec{
		Name: "dup",
		Links: []LinkSpec{
			{A: "a", B: "b"},
			{A: "b", B: "a"},
		},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate link") {
		t.Fatalf("expected duplicate-link error, got %v", err)
	}
}

func TestRegistryCatalogue(t *testing.T) {
	names := List()
	if len(names) == 0 {
		t.Fatal("registry empty")
	}
	for _, want := range []string{"dumbbell", "parkinglot", "star", "p2p"} {
		spec, err := Lookup(want)
		if err != nil {
			t.Fatalf("Lookup(%q): %v", want, err)
		}
		spec.fillDefaults()
		if err := spec.Validate(); err != nil {
			t.Fatalf("registered scenario %q invalid: %v", want, err)
		}
		if Describe(want) == "" {
			t.Fatalf("scenario %q has no description", want)
		}
	}
	if _, err := Lookup("no-such-scenario"); err == nil {
		t.Fatal("Lookup of unknown scenario should fail")
	}
}

// TestMultiHopRouting checks that the engine installs shortest-path routes
// and that packets actually traverse every router of a parking-lot chain.
func TestMultiHopRouting(t *testing.T) {
	spec := ParkingLot(ParkingLotParams{Hops: 3, Duration: 5 * time.Second})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	long := res.Flows[0]
	if long.From != "src" || long.To != "dst" {
		t.Fatalf("first flow should be the long flow, got %+v", long)
	}
	if long.Delivered == 0 {
		t.Fatal("long flow delivered nothing across 4 routers")
	}
	var routers int
	for _, h := range res.Hosts {
		if !h.Router {
			continue
		}
		routers++
		if h.ForwardedPackets == 0 {
			t.Errorf("router %s forwarded nothing", h.Name)
		}
		if h.RouteMissDrops != 0 || h.ForwardMissDrops != 0 || h.TTLExpiredDrops != 0 {
			t.Errorf("router %s dropped transit packets: %+v", h.Name, h.HostStats)
		}
	}
	if routers != 4 {
		t.Fatalf("parking lot with 3 hops should have 4 routers, got %d", routers)
	}
}

// TestDumbbellEnsembleSharingPerDestination is the acceptance scenario: two
// senders and two receivers behind one shared bottleneck, every flow managed
// by the sender's CM. Flows from one sender to the same destination must
// share a macroflow (the ensemble); flows to different destinations must
// not.
func TestDumbbellEnsembleSharingPerDestination(t *testing.T) {
	spec := Dumbbell(DumbbellParams{
		Senders: 2, Receivers: 2, FlowsPerPair: 2, CrossProduct: true,
		Bytes: 256 << 10, Duration: 10 * time.Second,
	})
	sim, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	drivers, err := sim.startWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	sim.Scheduler().RunUntil(spec.Duration)

	for _, sender := range []string{"s0", "s1"} {
		c := sim.CM(sender)
		if c == nil {
			t.Fatalf("no CM on %s", sender)
		}
		if c.FlowCount() != 4 {
			t.Fatalf("%s: FlowCount = %d, want 4 (2 flows x 2 destinations)", sender, c.FlowCount())
		}
		if c.MacroflowCount() != 2 {
			t.Fatalf("%s: MacroflowCount = %d, want 2 (one per destination)", sender, c.MacroflowCount())
		}
		// Group this sender's flows by destination via the CM's own lookup.
		byDst := map[string][]int{}
		for _, d := range drivers {
			if d.res.From != sender || d.ep == nil {
				continue
			}
			key := netsim.FlowKey{Proto: netsim.ProtoTCP, Src: d.ep.Local(), Dst: d.ep.Remote()}
			id := c.Lookup(key)
			if id < 0 {
				t.Fatalf("%s: CM does not know flow %v", sender, key)
			}
			byDst[d.res.To] = append(byDst[d.res.To], int(id))
		}
		if len(byDst) != 2 {
			t.Fatalf("%s: flows to %d destinations, want 2", sender, len(byDst))
		}
		mfOf := func(id int) any { return c.MacroflowOf(cm.FlowID(id)) }
		for dst, ids := range byDst {
			if len(ids) != 2 {
				t.Fatalf("%s->%s: %d flows, want 2", sender, dst, len(ids))
			}
			if mfOf(ids[0]) != mfOf(ids[1]) {
				t.Errorf("%s->%s: flows to the same destination must share a macroflow", sender, dst)
			}
		}
		if mfOf(byDst["d0"][0]) == mfOf(byDst["d1"][0]) {
			t.Errorf("%s: flows to different destinations must not share a macroflow", sender)
		}
	}

	// The shared state must actually carry traffic: every bulk flow
	// completes within the run.
	res := sim.collect(drivers)
	for _, f := range res.Flows {
		if !f.Completed {
			t.Errorf("flow %d.%d %s->%s incomplete: %+v", f.Workload, f.Flow, f.From, f.To, f)
		}
	}
}

func TestStreamWorkloadStaysBacklogged(t *testing.T) {
	spec := Star(StarParams{Leaves: 3, Duration: 5 * time.Second})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 3 {
		t.Fatalf("flows = %d", len(res.Flows))
	}
	for _, f := range res.Flows {
		if f.Completed {
			t.Errorf("stream flow %d marked completed", f.Flow)
		}
		if f.Delivered == 0 {
			t.Errorf("stream flow %d delivered nothing", f.Flow)
		}
	}
}

func TestWorkloadStartDelaysDial(t *testing.T) {
	spec := PointToPoint(PointToPointParams{
		Workloads: []Workload{
			{Kind: KindBulk, From: "sender", To: "receiver", Bytes: 100 << 10},
			{Kind: KindBulk, From: "sender", To: "receiver", Bytes: 100 << 10, Start: 2 * time.Second},
		},
		Duration: 10 * time.Second,
	})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Flows[0].Established >= time.Second {
		t.Fatalf("immediate flow established at %v", res.Flows[0].Established)
	}
	if res.Flows[1].Established < 2*time.Second {
		t.Fatalf("delayed flow established at %v, want >= 2s", res.Flows[1].Established)
	}
}

// TestAutoPortsAvoidExplicitRanges pins the fillDefaults contract: an
// auto-assigned range must dodge an explicit Port that appears later in the
// workload list, and normalisation must not write into a replicated spec's
// shared backing array.
func TestAutoPortsAvoidExplicitRanges(t *testing.T) {
	base := Spec{
		Name:  "ports",
		Links: []LinkSpec{{A: "a", B: "b"}},
		Workloads: []Workload{
			{From: "a", To: "b", Flows: 3},             // auto
			{From: "a", To: "b", Flows: 2, Port: 5001}, // explicit, overlapping the naive range
		},
	}
	replica := base // value copy shares the Workloads backing array
	spec := base
	spec.fillDefaults()
	w0, w1 := spec.Workloads[0], spec.Workloads[1]
	for p := w0.Port; p < w0.Port+w0.Flows; p++ {
		if p >= w1.Port && p < w1.Port+w1.Flows {
			t.Fatalf("auto range [%d,%d) collides with explicit [%d,%d)", w0.Port, w0.Port+w0.Flows, w1.Port, w1.Port+w1.Flows)
		}
	}
	if replica.Workloads[0].Port != 0 {
		t.Fatal("fillDefaults mutated the shared backing array of a replicated spec")
	}
	if _, err := Run(spec); err != nil {
		t.Fatalf("spec with mixed auto/explicit ports failed to run: %v", err)
	}
}

func TestRunNamedUnknownScenario(t *testing.T) {
	if _, err := (Runner{}).RunNamed([]string{"dumbbell", "nope"}); err == nil {
		t.Fatal("RunNamed should reject unknown names")
	}
}
