package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// The axis param grammar is a tiny path language into a scenario.Spec:
//
//	seed | shards | duration
//	param.<name>   (builder parameters of a parameterised scenario, e.g.
//	                param.k on a fattree campaign; resolved at expansion by
//	                re-invoking the builder, since they reshape the topology)
//	link[i].{loss | bandwidth | delay | queue | seed |
//	         ge.p_good_bad | ge.p_bad_good | ge.loss_good | ge.loss_bad | ge.tick}
//	workload[i].{flows | bytes | rate | start | recv_window | port | cc | kind}
//	event[i].{at | drop_rate | delay_rate | duplicate_rate | delay | outage}
//	generator[i].{seed | mean | mean_up | mean_down | start | end}
//
// i is a zero-based index or * for every element. Durations (duration, delay,
// start, end, outage, mean*, ge.tick) are numeric seconds; bandwidth is bits
// per second; loss and the notify-fault rates are rates in [0, 1]. cc and
// kind are the only string-valued params.

// Apply patches one parameter of the spec. The caller owns spec deep enough
// for in-place writes (see cloneSpec); Apply never aliases new state into
// shared structures.
func Apply(spec *scenario.Spec, param string, v Value) error {
	head, rest, _ := strings.Cut(param, ".")
	name, index, err := parseIndex(head)
	if err != nil {
		return err
	}
	switch name {
	case "param":
		// Builder parameters (param.k on a fattree campaign) change the
		// topology itself, so they cannot patch an existing spec; Expand
		// resolves them by re-invoking the scenario's parameterised factory.
		return fmt.Errorf("sweep: param %q must be resolved at expansion (internal error: Apply reached a param.* axis)", param)
	case "seed", "shards", "duration":
		if rest != "" || index != indexNone {
			return fmt.Errorf("sweep: param %q: %q takes no index or field", param, name)
		}
		n, err := v.numeric(param)
		if err != nil {
			return err
		}
		switch name {
		case "seed":
			spec.Seed = int64(n)
		case "shards":
			spec.Shards = int(math.Round(n))
		case "duration":
			spec.Duration = seconds(n)
		}
		return nil
	case "link":
		if index == indexNone {
			return fmt.Errorf("sweep: param %q: link needs an index ([0], [*])", param)
		}
		return eachIndex(index, len(spec.Links), param, func(i int) error {
			return applyLink(&spec.Links[i], param, rest, v)
		})
	case "workload":
		if index == indexNone {
			return fmt.Errorf("sweep: param %q: workload needs an index ([0], [*])", param)
		}
		return eachIndex(index, len(spec.Workloads), param, func(i int) error {
			return applyWorkload(&spec.Workloads[i], param, rest, v)
		})
	case "event":
		if index == indexNone {
			return fmt.Errorf("sweep: param %q: event needs an index ([0], [*])", param)
		}
		return eachIndex(index, len(spec.Events), param, func(i int) error {
			return applyEvent(&spec.Events[i], param, rest, v)
		})
	case "generator":
		if index == indexNone {
			return fmt.Errorf("sweep: param %q: generator needs an index ([0], [*])", param)
		}
		return eachIndex(index, len(spec.Generators), param, func(i int) error {
			return applyGenerator(&spec.Generators[i], param, rest, v)
		})
	}
	return fmt.Errorf("sweep: unknown param %q (want seed, shards, duration, link[i].*, workload[i].*, event[i].*, generator[i].*)", param)
}

const (
	indexNone = -1
	indexAll  = -2
)

// parseIndex splits "link[3]" into ("link", 3). A bare name returns
// indexNone; "[*]" returns indexAll.
func parseIndex(s string) (name string, index int, err error) {
	open := strings.IndexByte(s, '[')
	if open < 0 {
		return s, indexNone, nil
	}
	if !strings.HasSuffix(s, "]") {
		return "", 0, fmt.Errorf("sweep: malformed index in %q", s)
	}
	name = s[:open]
	idx := s[open+1 : len(s)-1]
	if idx == "*" {
		return name, indexAll, nil
	}
	n, err := strconv.Atoi(idx)
	if err != nil || n < 0 {
		return "", 0, fmt.Errorf("sweep: malformed index in %q", s)
	}
	return name, n, nil
}

func eachIndex(index, n int, param string, fn func(int) error) error {
	if index == indexAll {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if index >= n {
		return fmt.Errorf("sweep: param %q: index %d out of range [0,%d)", param, index, n)
	}
	return fn(index)
}

func applyLink(l *scenario.LinkSpec, param, field string, v Value) error {
	if geField, ok := strings.CutPrefix(field, "ge."); ok {
		n, err := v.numeric(param)
		if err != nil {
			return err
		}
		if l.Gilbert == nil {
			l.Gilbert = &netsim.GilbertElliott{}
		} else {
			// The base spec may share one model pointer across clones;
			// patching always writes to a private copy.
			g := *l.Gilbert
			l.Gilbert = &g
		}
		switch geField {
		case "p_good_bad":
			l.Gilbert.PGoodBad = n
		case "p_bad_good":
			l.Gilbert.PBadGood = n
		case "loss_good":
			l.Gilbert.LossGood = n
		case "loss_bad":
			l.Gilbert.LossBad = n
		case "tick":
			l.Gilbert.Tick = seconds(n)
		default:
			return fmt.Errorf("sweep: unknown link param %q", param)
		}
		return nil
	}
	n, err := v.numeric(param)
	if err != nil {
		return err
	}
	switch field {
	case "loss":
		l.LossRate = n
	case "bandwidth":
		l.Bandwidth = netsim.Bandwidth(n)
	case "delay":
		l.Delay = seconds(n)
	case "queue":
		l.QueuePackets = int(math.Round(n))
	case "seed":
		l.Seed = int64(n)
	default:
		return fmt.Errorf("sweep: unknown link param %q", param)
	}
	return nil
}

func applyWorkload(w *scenario.Workload, param, field string, v Value) error {
	switch field {
	case "cc":
		s, err := v.str(param)
		if err != nil {
			return err
		}
		w.CC = s
		return nil
	case "kind":
		s, err := v.str(param)
		if err != nil {
			return err
		}
		w.Kind = s
		return nil
	}
	n, err := v.numeric(param)
	if err != nil {
		return err
	}
	switch field {
	case "flows":
		w.Flows = int(math.Round(n))
	case "bytes":
		w.Bytes = int(math.Round(n))
	case "rate":
		w.Rate = n
	case "start":
		w.Start = seconds(n)
	case "recv_window":
		w.RecvWindow = int(math.Round(n))
	case "port":
		w.Port = int(math.Round(n))
	default:
		return fmt.Errorf("sweep: unknown workload param %q", param)
	}
	return nil
}

func applyEvent(e *dynamics.Event, param, field string, v Value) error {
	n, err := v.numeric(param)
	if err != nil {
		return err
	}
	switch field {
	case "at":
		e.At = seconds(n)
	case "drop_rate":
		e.DropRate = n
	case "delay_rate":
		e.DelayRate = n
	case "duplicate_rate":
		e.DuplicateRate = n
	case "delay":
		e.Delay = seconds(n)
	case "outage":
		e.Outage = seconds(n)
	default:
		return fmt.Errorf("sweep: unknown event param %q", param)
	}
	return nil
}

func applyGenerator(g *dynamics.Generator, param, field string, v Value) error {
	n, err := v.numeric(param)
	if err != nil {
		return err
	}
	switch field {
	case "seed":
		g.Seed = int64(n)
	case "mean":
		g.Mean = seconds(n)
	case "mean_up":
		g.MeanUp = seconds(n)
	case "mean_down":
		g.MeanDown = seconds(n)
	case "start":
		g.Start = seconds(n)
	case "end":
		g.End = seconds(n)
	default:
		return fmt.Errorf("sweep: unknown generator param %q", param)
	}
	return nil
}

func seconds(v float64) time.Duration {
	return time.Duration(v * float64(time.Second))
}
