package scenario

import (
	"math"
	"sort"
	"time"

	"repro/internal/dynamics"
)

// shardPlan is the output of partitioning a spec's topology for sharded
// execution: a shard index per node, the shard count actually used, and the
// lookahead — the smallest effective propagation delay of any link whose two
// endpoints landed on different shards. The lookahead is the conservative
// synchronization window: a shard that has run to virtual time T cannot be
// affected by any other shard before T + lookahead, because every cross-shard
// interaction is a packet that spends at least that long propagating.
type shardPlan struct {
	shardOf   map[string]int
	nshards   int
	lookahead time.Duration
}

// effectiveLinkDelays returns, per Spec.Links index, the minimum propagation
// delay the link can ever have over the whole run: the configured delay or
// any set-delay event targeting the link, whichever is smaller. Conservative
// sync fixes the lookahead before the run starts, so it must hold across the
// entire dynamics timeline, not just the initial configuration.
func effectiveLinkDelays(spec *Spec) []time.Duration {
	eff := make([]time.Duration, len(spec.Links))
	for i, ls := range spec.Links {
		eff[i] = ls.Delay
	}
	for _, ev := range spec.Events {
		if ev.Kind == dynamics.SetDelay && ev.Delay < eff[ev.Link] {
			eff[ev.Link] = ev.Delay
		}
	}
	return eff
}

// planShards partitions the spec's nodes into at most spec.Shards shards so
// that the smallest cross-shard link delay — the lookahead — is as large as
// possible: low-delay links are contracted first (single-linkage clustering,
// Kruskal-style), so only the highest-delay links survive in the cut. A
// size cap keeps the shards roughly balanced on the first pass; if the cap
// (or a disconnected topology) leaves more components than shards, a second
// uncapped pass keeps contracting cheapest edges first, which can only raise
// the surviving cut's minimum delay.
//
// Components are tracked with a union-find structure using path halving and
// union by size — the sequential core of the concurrent disjoint-set-union
// structures surveyed by Jayanti & Tarjan, which is all the coordinator
// needs since partitioning happens before any worker starts.
func planShards(spec *Spec, nodeNames []string) shardPlan {
	n := len(nodeNames)
	k := spec.Shards
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	idx := make(map[string]int, n)
	for i, name := range nodeNames {
		idx[name] = i
	}

	parent := make([]int, n)
	size := make([]int, n)
	for i := range parent {
		parent[i] = i
		size[i] = 1
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	comps := n
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
		comps--
	}

	eff := effectiveLinkDelays(spec)
	type edge struct {
		a, b int
		d    time.Duration
	}
	edges := make([]edge, len(spec.Links))
	for i, ls := range spec.Links {
		edges[i] = edge{a: idx[ls.A], b: idx[ls.B], d: eff[i]}
	}
	// Stable sort: equal-delay edges contract in declaration order, keeping
	// the partition a pure function of the spec.
	sort.SliceStable(edges, func(i, j int) bool { return edges[i].d < edges[j].d })

	// Pass 1: contract cheapest edges while respecting a balance cap.
	capSize := (n + k - 1) / k
	for _, e := range edges {
		if comps <= k {
			break
		}
		if ra, rb := find(e.a), find(e.b); ra != rb && size[ra]+size[rb] <= capSize {
			union(e.a, e.b)
		}
	}
	// Pass 2: the cap (or disconnection) left too many components; contract
	// cheapest edges regardless of balance.
	for _, e := range edges {
		if comps <= k {
			break
		}
		union(e.a, e.b)
	}
	// Disconnected leftovers have no edges between them: merging is free
	// (it removes nothing from the cut).
	for i := 1; i < n && comps > k; i++ {
		union(0, i)
	}

	// Number shards in first-mention order of their first node.
	shardOf := make(map[string]int, n)
	rootShard := make(map[int]int, comps)
	for i, name := range nodeNames {
		r := find(i)
		s, ok := rootShard[r]
		if !ok {
			s = len(rootShard)
			rootShard[r] = s
		}
		shardOf[name] = s
	}

	lookahead := time.Duration(math.MaxInt64)
	for i, ls := range spec.Links {
		if shardOf[ls.A] != shardOf[ls.B] && eff[i] < lookahead {
			lookahead = eff[i]
		}
	}
	return shardPlan{shardOf: shardOf, nshards: len(rootShard), lookahead: lookahead}
}
