package cm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func TestThreshControlsUpdateCallbacks(t *testing.T) {
	_, c := newTestCM(t, WithMTU(1000))
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)

	var reports []Status
	c.RegisterUpdate(f, func(id FlowID, st Status) { reports = append(reports, st) })
	c.Thresh(f, 2.0, 2.0) // only report rate changes of 2x down or 2x up

	// feed simulates a sender that transmits n bytes (charged through the IP
	// hook) and then receives feedback covering them.
	feed := func(n int) {
		c.Notify(f, n)
		c.Update(f, n, n, NoLoss, 100*time.Millisecond)
	}

	// First feedback establishes the baseline (always reported).
	feed(1000)
	if len(reports) != 1 {
		t.Fatalf("first report missing, got %d", len(reports))
	}
	base := reports[0].Rate

	// Small change (window 2000 -> 3000 is 1.5x) stays silent.
	feed(1000)
	if len(reports) != 1 {
		t.Fatalf("sub-threshold change should not be reported, got %d reports", len(reports))
	}

	// Keep growing until the rate at least doubles; a report must arrive.
	for i := 0; i < 10 && len(reports) == 1; i++ {
		feed(2000)
	}
	if len(reports) < 2 {
		t.Fatal("2x rate increase should have triggered a callback")
	}
	if reports[1].Rate < base*2 {
		t.Fatalf("reported rate %v is not >= 2x baseline %v", reports[1].Rate, base)
	}

	// A persistent loss collapses the rate by far more than 2x down.
	n := len(reports)
	c.Update(f, 0, 0, PersistentLoss, 0)
	if len(reports) != n+1 {
		t.Fatal("rate collapse should trigger a callback")
	}
	if reports[n].Rate >= reports[n-1].Rate {
		t.Fatal("collapsed rate should be lower than previous report")
	}
}

func TestThreshRejectsInvalidFactors(t *testing.T) {
	_, c := newTestCM(t)
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	c.Thresh(f, 0.5, -1) // invalid, keep defaults
	fl := c.flows[f]
	if fl.threshDown != c.Config().DefaultThreshDown || fl.threshUp != c.Config().DefaultThreshUp {
		t.Fatal("invalid thresholds should be ignored")
	}
	c.Thresh(f, 3, 1.5)
	if fl.threshDown != 3 || fl.threshUp != 1.5 {
		t.Fatal("valid thresholds should be stored")
	}
}

func TestSplitFlowIsolatesCongestionState(t *testing.T) {
	_, c := newTestCM(t, WithMTU(1000))
	src, dst := testAddrs("utah", 80)
	a := c.Open(netsim.ProtoTCP, src, dst)
	b := c.Open(netsim.ProtoTCP, netsim.Addr{Host: "sender", Port: 4700}, netsim.Addr{Host: "utah", Port: 81})
	if c.MacroflowOf(a) != c.MacroflowOf(b) {
		t.Fatal("precondition: same macroflow")
	}
	c.SplitFlow(b)
	if c.MacroflowOf(a) == c.MacroflowOf(b) {
		t.Fatal("SplitFlow should move the flow to its own macroflow")
	}
	if c.MacroflowCount() != 2 {
		t.Fatalf("macroflow count = %d, want 2", c.MacroflowCount())
	}
	// Feedback on b no longer affects a's window.
	wa := c.MacroflowOf(a).Window()
	c.Update(b, 5000, 5000, NoLoss, 10*time.Millisecond)
	if c.MacroflowOf(a).Window() != wa {
		t.Fatal("split flows must not share window state")
	}
	// Splitting a flow that is already alone is a no-op.
	before := c.MacroflowCount()
	c.SplitFlow(b)
	if c.MacroflowCount() != before {
		t.Fatal("splitting a singleton flow should not create macroflows")
	}
}

func TestMergeFlowsSharesCongestionState(t *testing.T) {
	_, c := newTestCM(t, WithMTU(1000))
	src1, dst1 := testAddrs("utah", 80)
	src2, dst2 := testAddrs("cmu", 80)
	a := c.Open(netsim.ProtoTCP, src1, dst1)
	b := c.Open(netsim.ProtoTCP, src2, dst2)
	if c.MacroflowOf(a) == c.MacroflowOf(b) {
		t.Fatal("precondition: different macroflows")
	}
	// The paper motivates merging for hosts behind a shared bottleneck.
	c.MergeFlows(a, b)
	if c.MacroflowOf(a) != c.MacroflowOf(b) {
		t.Fatal("MergeFlows should place both flows in one macroflow")
	}
	wa := c.MacroflowOf(a).Window()
	c.Notify(b, 2000)
	c.Update(b, 2000, 2000, NoLoss, 10*time.Millisecond)
	if c.MacroflowOf(a).Window() <= wa {
		t.Fatal("after merging, feedback on either flow grows the shared window")
	}
	// Merging twice or merging unknown flows is harmless.
	c.MergeFlows(a, b)
	c.MergeFlows(a, FlowID(999))
}

func TestGrantExpiresWhenClientNeverTransmits(t *testing.T) {
	s, c := newTestCM(t, WithGrantTimeout(200*time.Millisecond))
	src, dst := testAddrs("utah", 80)
	a := c.Open(netsim.ProtoTCP, src, dst)
	b := c.Open(netsim.ProtoTCP, netsim.Addr{Host: "sender", Port: 4800}, netsim.Addr{Host: "utah", Port: 81})

	var bGrants int
	c.RegisterSend(a, func(FlowID) { /* misbehaving client: never notifies */ })
	c.RegisterSend(b, func(FlowID) { bGrants++ })

	c.Request(a)
	c.Request(b)
	s.RunFor(50 * time.Millisecond)
	if bGrants != 0 {
		t.Fatal("window should be blocked by a's unclaimed grant at first")
	}
	s.RunFor(500 * time.Millisecond)
	if bGrants != 1 {
		t.Fatalf("after the grant timeout, b should receive a grant; got %d", bGrants)
	}
	if c.MacroflowOf(a).Stats().GrantsReclaimed == 0 {
		t.Fatal("reclaimed grant should be counted")
	}
}

func TestFeedbackStarvationTriggersConservativeRestart(t *testing.T) {
	s, c := newTestCM(t,
		WithMTU(1000),
		WithFeedbackStarvationTimeout(1*time.Second),
		WithGrantTimeout(200*time.Millisecond))
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	mf := c.MacroflowOf(f)

	// Grow the window, then send data whose feedback never arrives.
	for i := 0; i < 5; i++ {
		c.Notify(f, mf.Window())
		c.Update(f, mf.Window(), mf.Window(), NoLoss, 50*time.Millisecond)
	}
	grown := mf.Window()
	if grown <= 2000 {
		t.Fatalf("window should have grown, got %d", grown)
	}
	c.Notify(f, 4000)
	if mf.Outstanding() != 4000 {
		t.Fatal("outstanding not charged")
	}
	s.RunFor(3 * time.Second)
	if mf.Outstanding() != 0 {
		t.Fatal("starvation handler should clear outstanding bytes")
	}
	if mf.Window() >= grown {
		t.Fatalf("starvation handler should shrink the window (%d -> %d)", grown, mf.Window())
	}
	if mf.Stats().IdleRestarts == 0 {
		t.Fatal("idle restart should be counted")
	}
}

func TestWeightedSchedulerApportionsGrants(t *testing.T) {
	s, c := newTestCM(t,
		WithMTU(1000),
		WithInitialWindow(4),
		WithMaxWindow(20_000),
		WithScheduler(NewWeightedRoundRobinScheduler))
	dst := netsim.Addr{Host: "utah", Port: 80}
	heavy := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: 1}, dst)
	light := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: 2}, netsim.Addr{Host: "utah", Port: 81})
	c.SetWeight(heavy, 3)
	c.SetWeight(light, 1)

	counts := map[FlowID]int{}
	// The callback transmits immediately; feedback for the transmission comes
	// back one simulated RTT later, as it would from a real receiver.
	onSend := func(id FlowID) {
		counts[id]++
		c.Notify(id, 1000)
		s.After(10*time.Millisecond, func() {
			c.Update(id, 1000, 1000, NoLoss, 10*time.Millisecond)
		})
	}
	c.RegisterSend(heavy, onSend)
	c.RegisterSend(light, onSend)
	// Keep both flows permanently backlogged so the scheduler's weighting,
	// not request availability, decides who is granted.
	for i := 0; i < 5000; i++ {
		c.Request(heavy)
		c.Request(light)
	}
	s.RunFor(500 * time.Millisecond)
	if counts[heavy] < 60 || counts[light] < 10 {
		t.Fatalf("not enough grants to evaluate fairness: %v", counts)
	}
	ratio := float64(counts[heavy]) / float64(counts[light])
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("weighted scheduler ratio = %.2f, want ~3", ratio)
	}
	// Per-flow advertised rate should also respect weights.
	sh, _ := c.Query(heavy)
	sl, _ := c.Query(light)
	if sh.Rate <= sl.Rate {
		t.Fatal("heavier flow should be advertised a larger share")
	}
}

func TestRoundRobinSchedulerFairnessUnderBacklog(t *testing.T) {
	s, c := newTestCM(t, WithMTU(1000), WithInitialWindow(2))
	counts := map[FlowID]int{}
	var flows []FlowID
	for i := 0; i < 4; i++ {
		f := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: 100 + i}, netsim.Addr{Host: "utah", Port: 80 + i})
		flows = append(flows, f)
		c.RegisterSend(f, func(id FlowID) {
			counts[id]++
			c.Notify(id, 1000)
			s.After(10*time.Millisecond, func() {
				c.Update(id, 1000, 1000, NoLoss, 10*time.Millisecond)
				c.Request(id)
			})
		})
	}
	for _, f := range flows {
		c.Request(f)
	}
	s.RunFor(time.Second)
	min, max := 1<<30, 0
	for _, f := range flows {
		if counts[f] < min {
			min = counts[f]
		}
		if counts[f] > max {
			max = counts[f]
		}
	}
	if min == 0 {
		t.Fatalf("some flow was starved: %v", counts)
	}
	if float64(max-min) > 0.1*float64(max) {
		t.Fatalf("round-robin shares too uneven: %v", counts)
	}
}

func TestClosePendingFlowDoesNotBlockOthers(t *testing.T) {
	s, c := newTestCM(t, WithMTU(1000))
	dst := netsim.Addr{Host: "utah", Port: 80}
	a := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: 1}, dst)
	b := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: 2}, netsim.Addr{Host: "utah", Port: 81})
	var bGrants int
	c.RegisterSend(a, func(FlowID) { /* holds its grant */ })
	c.RegisterSend(b, func(FlowID) { bGrants++ })
	c.Request(a)
	c.Request(b)
	s.RunFor(10 * time.Millisecond)
	if bGrants != 0 {
		t.Fatal("precondition: b blocked behind a's grant")
	}
	c.Close(a) // closing must reclaim a's unclaimed grant
	s.RunFor(10 * time.Millisecond)
	if bGrants != 1 {
		t.Fatalf("closing a flow with an unclaimed grant should unblock others, got %d", bGrants)
	}
}

func TestControllerFactoriesDirectly(t *testing.T) {
	cfg := ControllerConfig{MTU: 1000, InitialWindowMTUs: 2, MaxWindowBytes: 8000}
	aimd := NewAIMDController(cfg)
	if aimd.Name() != "aimd" || aimd.Window() != 2000 {
		t.Fatalf("aimd initial state wrong: %s %d", aimd.Name(), aimd.Window())
	}
	for i := 0; i < 20; i++ {
		aimd.OnFeedback(Feedback{SentBytes: 8000, ReceivedBytes: 8000, Mode: NoLoss, RTT: time.Millisecond})
	}
	if aimd.Window() != 8000 {
		t.Fatalf("window should be capped at MaxWindowBytes, got %d", aimd.Window())
	}
	aimd.OnIdleRestart()
	if aimd.Window() != 2000 {
		t.Fatalf("idle restart should return to initial window, got %d", aimd.Window())
	}

	rate := NewRateController(ControllerConfig{MTU: 1000})
	if rate.Name() != "smoothed-rate" || rate.InSlowStart() {
		t.Fatal("rate controller metadata wrong")
	}
	w0 := rate.Window()
	rate.OnFeedback(Feedback{SentBytes: 1000, ReceivedBytes: 1000, Mode: NoLoss})
	if rate.Window() <= w0 {
		t.Fatal("rate controller should grow on success")
	}
	grown := rate.Window()
	rate.OnFeedback(Feedback{Mode: TransientLoss})
	if rate.Window() >= grown {
		t.Fatal("rate controller should shrink on congestion")
	}
	rate.OnFeedback(Feedback{Mode: PersistentLoss})
	if rate.Window() < 1000 {
		t.Fatal("rate controller window must stay >= 1 MTU")
	}
	rate.OnIdleRestart()
	if rate.Window() < 1000 {
		t.Fatal("rate controller idle restart must stay >= 1 MTU")
	}

	// Zero-value configs get sane defaults.
	if NewAIMDController(ControllerConfig{}).Window() <= 0 {
		t.Fatal("default AIMD window must be positive")
	}
	if NewRateController(ControllerConfig{}).Window() <= 0 {
		t.Fatal("default rate-controller window must be positive")
	}
}

func TestCMWithAlternateControllerFactory(t *testing.T) {
	_, c := newTestCM(t, WithController(NewRateController))
	src, dst := testAddrs("utah", 80)
	f := c.Open(netsim.ProtoUDP, src, dst)
	if c.MacroflowOf(f).Controller().Name() != "smoothed-rate" {
		t.Fatal("controller factory option not honoured")
	}
	if c.MacroflowOf(f).SchedulerName() != "round-robin" {
		t.Fatal("default scheduler should be round-robin")
	}
}

func TestSchedulersDirectly(t *testing.T) {
	mk := func(id FlowID, pending int, w float64) *flowState {
		return &flowState{id: id, pendingRequests: pending, weight: w}
	}
	rr := NewRoundRobinScheduler()
	if rr.Next() != nil {
		t.Fatal("empty scheduler should return nil")
	}
	a, b, cf := mk(1, 1, 1), mk(2, 1, 1), mk(3, 0, 1)
	rr.Add(a)
	rr.Add(b)
	rr.Add(cf)
	if rr.TotalWeight() != 3 || rr.Weight(a) != 1 {
		t.Fatal("round-robin weights should be unweighted")
	}
	first, second := rr.Next(), rr.Next()
	if first == second || first == cf || second == cf {
		t.Fatalf("rotation wrong: %v %v", first.id, second.id)
	}
	rr.Remove(b)
	rr.Remove(mk(99, 0, 1)) // removing an unknown flow is a no-op
	a.pendingRequests = 1
	if rr.Next() != a {
		t.Fatal("after removal only a is eligible")
	}

	w := NewWeightedRoundRobinScheduler()
	if w.Next() != nil || w.TotalWeight() != 1 {
		t.Fatal("empty weighted scheduler defaults wrong")
	}
	h, l := mk(10, 1, 3), mk(11, 1, 1)
	w.Add(h)
	w.Add(l)
	counts := map[FlowID]int{}
	for i := 0; i < 400; i++ {
		f := w.Next()
		counts[f.id]++
		f.pendingRequests = 1 // keep backlogged
	}
	ratio := float64(counts[10]) / float64(counts[11])
	if ratio < 2.5 || ratio > 3.5 {
		t.Fatalf("weighted rotation ratio = %.2f, want ~3", ratio)
	}
	if w.Weight(&flowState{weight: 0}) != 1 {
		t.Fatal("zero weight should be treated as 1")
	}
	w.Remove(h)
	w.Remove(l)
	if w.Next() != nil {
		t.Fatal("emptied scheduler should return nil")
	}
}

// Property: the congestion window is always at least one MTU and never
// exceeds the configured cap, no matter what feedback sequence arrives.
func TestPropertyWindowBounds(t *testing.T) {
	f := func(ops []uint16) bool {
		cfg := ControllerConfig{MTU: 1000, InitialWindowMTUs: 1, MaxWindowBytes: 1 << 20}
		for _, mk := range []func(ControllerConfig) Controller{NewAIMDController, NewRateController} {
			ctrl := mk(cfg)
			for _, op := range ops {
				mode := LossMode(op % 4)
				n := int(op%3000) * 10
				ctrl.OnFeedback(Feedback{SentBytes: n, ReceivedBytes: n, Mode: mode, RTT: time.Millisecond})
				if ctrl.Window() < cfg.MTU || ctrl.Window() > cfg.MaxWindowBytes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: outstanding bytes never go negative and grants never exceed the
// window by more than one MTU, under random interleavings of the API.
func TestPropertyMacroflowAccounting(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := simtime.NewScheduler()
		c := New(s, s, WithMTU(1000))
		dst := netsim.Addr{Host: "utah", Port: 80}
		var flows []FlowID
		for i := 0; i < 3; i++ {
			f := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: i}, dst)
			c.RegisterSend(f, func(FlowID) {})
			flows = append(flows, f)
		}
		mf := c.MacroflowOf(flows[0])
		ok := true
		check := func() {
			if mf.Outstanding() < 0 {
				ok = false
			}
			if mf.Window() < 1000 {
				ok = false
			}
		}
		ops := int(nOps)
		for i := 0; i < ops; i++ {
			fl := flows[rng.Intn(len(flows))]
			switch rng.Intn(5) {
			case 0:
				c.Request(fl)
			case 1:
				c.Notify(fl, rng.Intn(3000))
			case 2:
				n := rng.Intn(3000)
				c.Update(fl, n, rng.Intn(n+1), LossMode(rng.Intn(4)), time.Duration(rng.Intn(100))*time.Millisecond)
			case 3:
				c.Query(fl)
			case 4:
				s.RunFor(time.Duration(rng.Intn(50)) * time.Millisecond)
			}
			check()
			if !ok {
				return false
			}
		}
		s.RunFor(5 * time.Second)
		check()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: for flows that always have data, long-run grant counts under the
// round-robin scheduler differ by at most a small factor (fairness).
func TestPropertyRoundRobinFairness(t *testing.T) {
	f := func(nFlows uint8) bool {
		n := int(nFlows%4) + 2
		s := simtime.NewScheduler()
		c := New(s, s, WithMTU(1000), WithInitialWindow(2))
		counts := make(map[FlowID]int)
		for i := 0; i < n; i++ {
			fl := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: i}, netsim.Addr{Host: "utah", Port: 80 + i})
			c.RegisterSend(fl, func(id FlowID) {
				counts[id]++
				c.Notify(id, 1000)
				s.After(10*time.Millisecond, func() {
					c.Update(id, 1000, 1000, NoLoss, 10*time.Millisecond)
					c.Request(id)
				})
			})
			c.Request(fl)
		}
		s.RunFor(500 * time.Millisecond)
		min, max := 1<<30, 0
		for _, v := range counts {
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		return len(counts) == n && min > 0 && max-min <= 1+max/10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
