// Package report assembles the structured run report: one self-describing
// document per scenario run — spec summary, result counters, routing audit,
// faults-checker verdict, per-event-kind cost attribution and probe-series
// summaries — emitted as JSON (cmsim -report) or markdown (-report-md).
//
// Everything in a report except the Perf section is a pure function of the
// Spec and its Result, so the emitted bytes are deterministic per run
// configuration (the byte-identity test compares serial and sharded reports
// after stripping Perf, which measures wall-clock execution and legitimately
// differs per run).
package report

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/scenario"
)

// SpecSummary condenses the run's configuration.
type SpecSummary struct {
	Name     string        `json:"name"`
	Seed     int64         `json:"seed"`
	Duration time.Duration `json:"duration"`
	Nodes    int           `json:"nodes"`
	Links    int           `json:"links"`
	Routers  int           `json:"routers"`
	CMHosts  int           `json:"cm_hosts"`
	// Workloads is the number of workload declarations; Flows the number of
	// realised flow instances.
	Workloads int    `json:"workloads"`
	Flows     int    `json:"flows"`
	Events    int    `json:"events"`
	Probes    int    `json:"probes"`
	Routing   string `json:"routing,omitempty"`
	RouteSync string `json:"route_sync,omitempty"`
	// Sharded execution plan: ShardCount is the realised shard count (1 when
	// the build fell back to serial), Lookahead the conservative window.
	ShardsRequested int           `json:"shards_requested,omitempty"`
	ShardCount      int           `json:"shard_count"`
	Lookahead       time.Duration `json:"lookahead,omitempty"`
	SnapshotEvery   time.Duration `json:"snapshot_every,omitempty"`
	TraceDepth      int           `json:"trace_depth,omitempty"`
}

// Counters aggregates the Result's counters across flows, links, hosts and
// CMs.
type Counters struct {
	EndTime            time.Duration `json:"end_time"`
	CompletedFlows     int           `json:"completed_flows"`
	DeliveredBytes     int64         `json:"delivered_bytes"`
	MeanThroughputKBps float64       `json:"mean_throughput_kbps"`
	Retransmissions    int64         `json:"retransmissions"`
	Timeouts           int64         `json:"timeouts"`

	SentPackets     int   `json:"sent_packets"`
	SentBytes       int64 `json:"sent_bytes"`
	DeliveredOctets int64 `json:"delivered_octets"`
	QueueDrops      int   `json:"queue_drops"`
	BernoulliDrops  int   `json:"bernoulli_drops"`
	BurstDrops      int   `json:"burst_drops"`
	DownDrops       int   `json:"down_drops"`

	ForwardedPackets int `json:"forwarded_packets"`
	// RouteDrops sums no-route, route-miss and forward-miss drops across
	// hosts — the routing-failure signal the blackhole-window invariant
	// watches.
	RouteDrops int `json:"route_drops"`

	DynamicsEvents int `json:"dynamics_events"`

	GrantsIssued    int64 `json:"grants_issued,omitempty"`
	GrantsReclaimed int64 `json:"grants_reclaimed,omitempty"`
	Notifies        int64 `json:"notifies,omitempty"`
	CMRestarts      int64 `json:"cm_restarts,omitempty"`
	StaleFlowCalls  int64 `json:"stale_flow_calls,omitempty"`
}

// Verdict is the faults-checker outcome over the end state and any mid-run
// snapshots.
type Verdict struct {
	Clean bool `json:"clean"`
	// SnapshotsChecked counts the mid-run snapshots examined alongside the
	// end state.
	SnapshotsChecked int                `json:"snapshots_checked"`
	Violations       []faults.Violation `json:"violations,omitempty"`
	// FirstViolationAt is the virtual time of the first violating snapshot,
	// -1 when only the end state (or nothing) is in violation.
	FirstViolationAt int64 `json:"first_violation_at_ns"`
}

// ProbeSummary condenses one probe series.
type ProbeSummary struct {
	Name    string  `json:"name"`
	Samples int     `json:"samples"`
	Mean    float64 `json:"mean"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Last    float64 `json:"last"`
}

// Report is the structured run report.
type Report struct {
	Scenario string                  `json:"scenario"`
	Spec     SpecSummary             `json:"spec"`
	Counters Counters                `json:"counters"`
	Routing  *scenario.RoutingResult `json:"routing,omitempty"`
	Faults   Verdict                 `json:"faults"`
	// Perf is the per-event-kind cost attribution (nil when profiling was
	// not armed) — the one non-deterministic section; see the package
	// comment.
	Perf   *scenario.Perf `json:"perf,omitempty"`
	Probes []ProbeSummary `json:"probes,omitempty"`
}

// Build assembles the report for a finished run. sim must be the Sim that
// produced res (it supplies the spec, the shard plan and any mid-run
// snapshots).
func Build(sim *scenario.Sim, res *scenario.Result) *Report {
	spec := sim.Spec
	r := &Report{
		Scenario: res.Scenario,
		Spec: SpecSummary{
			Name:            spec.Name,
			Seed:            spec.Seed,
			Duration:        spec.Duration,
			Nodes:           len(res.Hosts),
			Links:           len(spec.Links),
			Routers:         len(spec.Routers),
			CMHosts:         len(res.CMs),
			Workloads:       len(spec.Workloads),
			Flows:           len(res.Flows),
			Events:          len(spec.Events),
			Probes:          len(spec.Probes),
			Routing:         spec.Routing,
			RouteSync:       spec.RouteSync,
			ShardsRequested: spec.Shards,
			ShardCount:      sim.ShardCount(),
			SnapshotEvery:   spec.SnapshotEvery,
			TraceDepth:      spec.TraceDepth,
		},
		Routing: res.Routing,
		Perf:    res.Perf,
	}
	if sim.Sharded() {
		r.Spec.Lookahead = sim.Lookahead()
	}

	c := &r.Counters
	c.EndTime = res.EndTime
	c.DynamicsEvents = len(res.Events)
	for i := range res.Flows {
		f := &res.Flows[i]
		if f.Completed {
			c.CompletedFlows++
		}
		c.DeliveredBytes += f.Delivered
		c.MeanThroughputKBps += f.ThroughputKBps
		c.Retransmissions += f.Retransmissions
		c.Timeouts += f.Timeouts
	}
	if n := len(res.Flows); n > 0 {
		c.MeanThroughputKBps /= float64(n)
	}
	for i := range res.Links {
		l := &res.Links[i]
		c.SentPackets += l.SentPackets
		c.SentBytes += l.SentBytes
		c.DeliveredOctets += l.DeliveredOctets
		c.QueueDrops += l.QueueDrops
		c.BernoulliDrops += l.BernoulliDrops
		c.BurstDrops += l.BurstDrops
		c.DownDrops += l.DownDrops
	}
	for i := range res.Hosts {
		h := &res.Hosts[i]
		c.ForwardedPackets += h.ForwardedPackets
		c.RouteDrops += h.NoRouteDrops + h.RouteMissDrops + h.ForwardMissDrops
	}
	for i := range res.CMs {
		cm := &res.CMs[i]
		c.GrantsIssued += cm.GrantsIssued
		c.GrantsReclaimed += cm.GrantsReclaimed
		c.Notifies += cm.Notifies
		c.CMRestarts += cm.Restarts
		c.StaleFlowCalls += cm.StaleFlowCalls
	}

	snaps := sim.Snapshots()
	violations, firstAt := faults.CheckSnapshots(snaps, res)
	r.Faults = Verdict{
		Clean:            len(violations) == 0,
		SnapshotsChecked: len(snaps),
		Violations:       violations,
		FirstViolationAt: firstAt,
	}

	for i := range res.Series {
		s := &res.Series[i]
		ps := ProbeSummary{Name: s.Name, Samples: s.Len(), Mean: s.Mean(), Min: s.Min(), Max: s.Max()}
		if last, ok := s.Last(); ok {
			ps.Last = last.V
		}
		r.Probes = append(r.Probes, ps)
	}
	return r
}

// StripPerf returns a shallow copy of the report without its wall-clock
// sections, leaving only the deterministic simulation-derived content — what
// the byte-identity tests compare across serial and sharded executions.
func (r *Report) StripPerf() *Report {
	c := *r
	c.Perf = nil
	return &c
}

// WriteJSON emits the report as indented JSON. Field order is fixed by the
// struct definitions, so the bytes are stable.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteMarkdown renders the report as a human-readable markdown document with
// the same sections as the JSON form.
func (r *Report) WriteMarkdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# Run report: %s\n\n", r.Scenario)

	b.WriteString("## Spec\n\n")
	sp := r.Spec
	fmt.Fprintf(&b, "| field | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| duration | %v |\n", sp.Duration)
	fmt.Fprintf(&b, "| seed | %d |\n", sp.Seed)
	fmt.Fprintf(&b, "| nodes / links / routers | %d / %d / %d |\n", sp.Nodes, sp.Links, sp.Routers)
	fmt.Fprintf(&b, "| cm hosts | %d |\n", sp.CMHosts)
	fmt.Fprintf(&b, "| workloads / flows | %d / %d |\n", sp.Workloads, sp.Flows)
	fmt.Fprintf(&b, "| dynamics events | %d |\n", sp.Events)
	fmt.Fprintf(&b, "| probes | %d |\n", sp.Probes)
	if sp.Routing != "" {
		fmt.Fprintf(&b, "| routing | %s |\n", sp.Routing)
	}
	if sp.RouteSync != "" {
		fmt.Fprintf(&b, "| route sync | %s |\n", sp.RouteSync)
	}
	if sp.ShardCount > 1 {
		fmt.Fprintf(&b, "| shards | %d (lookahead %v) |\n", sp.ShardCount, sp.Lookahead)
	} else {
		fmt.Fprintf(&b, "| shards | serial |\n")
	}

	b.WriteString("\n## Counters\n\n")
	c := r.Counters
	fmt.Fprintf(&b, "| counter | value |\n|---|---|\n")
	fmt.Fprintf(&b, "| end time | %v |\n", c.EndTime)
	fmt.Fprintf(&b, "| completed flows | %d / %d |\n", c.CompletedFlows, sp.Flows)
	fmt.Fprintf(&b, "| delivered bytes | %d |\n", c.DeliveredBytes)
	fmt.Fprintf(&b, "| mean throughput | %.2f KB/s |\n", c.MeanThroughputKBps)
	fmt.Fprintf(&b, "| retransmissions / timeouts | %d / %d |\n", c.Retransmissions, c.Timeouts)
	fmt.Fprintf(&b, "| sent packets / bytes | %d / %d |\n", c.SentPackets, c.SentBytes)
	fmt.Fprintf(&b, "| drops (queue / bernoulli / burst / down) | %d / %d / %d / %d |\n",
		c.QueueDrops, c.BernoulliDrops, c.BurstDrops, c.DownDrops)
	fmt.Fprintf(&b, "| forwarded packets | %d |\n", c.ForwardedPackets)
	fmt.Fprintf(&b, "| route drops | %d |\n", c.RouteDrops)
	fmt.Fprintf(&b, "| dynamics events fired | %d |\n", c.DynamicsEvents)
	if sp.CMHosts > 0 {
		fmt.Fprintf(&b, "| CM grants issued / reclaimed | %d / %d |\n", c.GrantsIssued, c.GrantsReclaimed)
		fmt.Fprintf(&b, "| CM notifies | %d |\n", c.Notifies)
		if c.CMRestarts > 0 || c.StaleFlowCalls > 0 {
			fmt.Fprintf(&b, "| CM restarts / stale calls | %d / %d |\n", c.CMRestarts, c.StaleFlowCalls)
		}
	}

	if rt := r.Routing; rt != nil {
		b.WriteString("\n## Routing audit\n\n")
		fmt.Fprintf(&b, "| field | value |\n|---|---|\n")
		fmt.Fprintf(&b, "| mode | %s (%d agents) |\n", rt.Mode, rt.Agents)
		fmt.Fprintf(&b, "| table changes | %d |\n", rt.TableChanges)
		fmt.Fprintf(&b, "| converged | %v (deadline %v) |\n", rt.Converged, rt.ConvergenceDeadline)
		fmt.Fprintf(&b, "| post-convergence route drops | %d |\n", rt.PostConvergenceRouteDrops)
		fmt.Fprintf(&b, "| pending at end | %d |\n", rt.PendingAtEnd)
		fmt.Fprintf(&b, "| audited pairs (loops / unreached / partitioned) | %d (%d / %d / %d) |\n",
			rt.AuditedPairs, rt.LoopPairs, rt.UnreachedPairs, rt.PartitionedPairs)
	}

	b.WriteString("\n## Faults verdict\n\n")
	if r.Faults.Clean {
		fmt.Fprintf(&b, "**clean** — no invariant violations (%d mid-run snapshots + end state checked).\n",
			r.Faults.SnapshotsChecked)
	} else {
		fmt.Fprintf(&b, "**VIOLATIONS: %d** (%d mid-run snapshots + end state checked", len(r.Faults.Violations),
			r.Faults.SnapshotsChecked)
		if r.Faults.FirstViolationAt >= 0 {
			fmt.Fprintf(&b, "; first violating snapshot at %v", time.Duration(r.Faults.FirstViolationAt))
		}
		b.WriteString(")\n\n")
		for _, v := range r.Faults.Violations {
			fmt.Fprintf(&b, "- `%s`: %s\n", v.Rule, v.Detail)
		}
	}

	if r.Perf != nil {
		b.WriteString("\n## Cost attribution\n\n")
		fmt.Fprintf(&b, "%d events, %.3f ms attributed wall-clock.\n\n",
			r.Perf.Events, float64(r.Perf.TotalNs)/1e6)
		fmt.Fprintf(&b, "| kind | events | total ms | share | max µs |\n|---|---|---|---|---|\n")
		for _, k := range r.Perf.Kinds {
			share := 0.0
			if r.Perf.TotalNs > 0 {
				share = float64(k.TotalNs) / float64(r.Perf.TotalNs) * 100
			}
			fmt.Fprintf(&b, "| %s | %d | %.3f | %.1f%% | %.1f |\n",
				k.Kind, k.Count, float64(k.TotalNs)/1e6, share, float64(k.MaxNs)/1e3)
		}
	}

	if len(r.Probes) > 0 {
		b.WriteString("\n## Probe series\n\n")
		fmt.Fprintf(&b, "| probe | samples | mean | min | max | last |\n|---|---|---|---|---|---|\n")
		for _, p := range r.Probes {
			fmt.Fprintf(&b, "| %s | %d | %g | %g | %g | %g |\n", p.Name, p.Samples, p.Mean, p.Min, p.Max, p.Last)
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}
