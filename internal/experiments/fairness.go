package experiments

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/tcp"
)

// FairnessConfig parameterises the ensemble-aggressiveness experiment behind
// the paper's correctness claim in §4: "by integrating flow information
// between both kernel protocols and user applications, we ensure that an
// ensemble of concurrent flows is not an overly aggressive user of the
// network." An ensemble of N web-like connections from one host competes
// with a single independent TCP for a shared bottleneck; with the CM the
// ensemble shares one macroflow and should claim roughly half the link, while
// N independent TCP connections claim roughly N/(N+1) of it.
type FairnessConfig struct {
	// EnsembleFlows is the number of concurrent connections in the ensemble.
	EnsembleFlows int
	// Duration is how long the competition runs.
	Duration time.Duration
	// Path describes the shared bottleneck.
	Path Path
}

func (c *FairnessConfig) fillDefaults() {
	if c.EnsembleFlows <= 0 {
		c.EnsembleFlows = 4
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Path.Bandwidth == 0 {
		c.Path = Path{Bandwidth: 10 * netsim.Mbps, OneWayDelay: 30 * time.Millisecond, QueuePackets: 120, Seed: 71}
	}
}

// FairnessResult reports the bandwidth shares of the ensemble under both
// configurations.
type FairnessResult struct {
	Config FairnessConfig
	// CMEnsembleShare is the ensemble's fraction of the total goodput when
	// its connections share one CM macroflow.
	CMEnsembleShare float64
	// IndependentEnsembleShare is the same fraction when the ensemble's
	// connections each run their own native congestion control.
	IndependentEnsembleShare float64
	// FairShare is the share one aggregate competing with one other flow
	// would get (0.5).
	FairShare float64
}

// RunFairness runs the competition in both configurations.
func RunFairness(cfg FairnessConfig) FairnessResult {
	cfg.fillDefaults()
	return FairnessResult{
		Config:                   cfg,
		CMEnsembleShare:          fairnessRun(cfg, true),
		IndependentEnsembleShare: fairnessRun(cfg, false),
		FairShare:                0.5,
	}
}

// fairnessRun starts the ensemble (CM-managed or independent) plus one
// independent competitor, lets them run for the configured duration and
// returns the ensemble's share of the delivered bytes.
func fairnessRun(cfg FairnessConfig, ensembleUsesCM bool) float64 {
	w := newTestbed(cfg.Path, ensembleUsesCM)

	startFlow := func(port int, cc tcp.CongestionControl) *int64 {
		delivered := new(int64)
		_, err := tcp.Listen(w.rcvr, port, tcp.Config{DelayedAck: true, RecvWindow: 1 << 20}, func(ep *tcp.Endpoint) {
			ep.OnReceive(func(n int) { *delivered += int64(n) })
		})
		if err != nil {
			return delivered
		}
		senderCfg := w.senderTCPConfig(cc)
		ep, err := tcp.Dial(w.sender, netsim.Addr{Host: "receiver", Port: port}, senderCfg)
		if err != nil {
			return delivered
		}
		ep.OnEstablished(func() {
			// Effectively unbounded data: the flow stays backlogged for the
			// whole experiment.
			ep.Send(1 << 30)
		})
		return delivered
	}

	ensembleCC := tcp.CCNative
	if ensembleUsesCM {
		ensembleCC = tcp.CCCM
	}
	ensemble := make([]*int64, cfg.EnsembleFlows)
	for i := range ensemble {
		ensemble[i] = startFlow(6000+i, ensembleCC)
	}
	competitor := startFlow(7000, tcp.CCNative)

	w.sched.RunUntil(cfg.Duration)

	var ensembleBytes int64
	for _, d := range ensemble {
		ensembleBytes += *d
	}
	total := ensembleBytes + *competitor
	if total == 0 {
		return 0
	}
	return float64(ensembleBytes) / float64(total)
}

// Table renders the fairness comparison.
func (r FairnessResult) Table() string {
	n := r.Config.EnsembleFlows
	rows := [][]string{
		{fmt.Sprintf("%d TCP/CM connections (one macroflow)", n), fmt.Sprintf("%.2f", r.CMEnsembleShare)},
		{fmt.Sprintf("%d independent TCP connections", n), fmt.Sprintf("%.2f", r.IndependentEnsembleShare)},
		{"fair share for one aggregate", fmt.Sprintf("%.2f", r.FairShare)},
		{fmt.Sprintf("aggressive share (%d/%d)", n, n+1), fmt.Sprintf("%.2f", float64(n)/float64(n+1))},
	}
	return "Ensemble aggressiveness: share of a shared bottleneck taken from one competing TCP\n" +
		formatTable([]string{"ensemble configuration", "bandwidth share"}, rows)
}
