package cm

import (
	"time"

	"repro/internal/probe"
)

// RegisterSend registers the cmapp_send callback for a flow and optionally a
// dispatcher (nil keeps the current one). The paper added
// cm_register_send() during implementation to give clients flexibility over
// which function receives the grant.
func (cm *CM) RegisterSend(f FlowID, cb SendCallback) {
	if fl, ok := cm.flows[f]; ok {
		fl.sendCB = cb
	} else {
		cm.acct.StaleFlowCalls++
	}
}

// RegisterUpdate registers the cmapp_update callback used by the rate-callback
// API (cm_register_update in the paper).
func (cm *CM) RegisterUpdate(f FlowID, cb UpdateCallback) {
	if fl, ok := cm.flows[f]; ok {
		fl.updateCB = cb
	} else {
		cm.acct.StaleFlowCalls++
	}
}

// SetDispatcher installs the callback dispatcher for a flow. In-kernel
// clients keep the default direct dispatcher; libcm installs its own to model
// the kernel-to-user notification path.
func (cm *CM) SetDispatcher(f FlowID, d Dispatcher) {
	if fl, ok := cm.flows[f]; ok {
		if d != nil {
			fl.dispatcher = d
		}
	} else {
		cm.acct.StaleFlowCalls++
	}
}

// SetWeight sets a flow's scheduling weight (used by the weighted scheduler
// and for apportioning the advertised per-flow rate). Weights must be
// positive; invalid weights are ignored.
func (cm *CM) SetWeight(f FlowID, w float64) {
	if fl, ok := cm.flows[f]; ok {
		if w > 0 {
			fl.weight = w
		}
	} else {
		cm.acct.StaleFlowCalls++
	}
}

// Request asks for permission to send up to one MTU on the flow
// (cm_request). Permission arrives later through the cmapp_send callback;
// each call is an implicit request for one MTU-sized grant.
func (cm *CM) Request(f FlowID) {
	fl, ok := cm.flows[f]
	if !ok {
		cm.acct.StaleFlowCalls++
		return
	}
	cm.acct.Requests++
	if cm.rec != nil {
		cm.rec.Append(probe.Event{At: cm.clock.Now(), Kind: probe.EvRequest, Flow: int64(f)})
	}
	fl.pendingRequests++
	if fl.pendingRequests == 1 {
		fl.mf.sched.MarkEligible(fl)
	}
	fl.mf.pump()
}

// BulkRequest queues requests for several flows with a single call,
// corresponding to cm_bulk_request (§5, Optimizations): servers with many
// concurrent clients batch control operations to reduce boundary crossings.
func (cm *CM) BulkRequest(flows []FlowID) {
	cm.acct.BulkRequests++
	touched := make(map[*Macroflow]bool)
	for _, f := range flows {
		fl, ok := cm.flows[f]
		if !ok {
			cm.acct.StaleFlowCalls++
			continue
		}
		fl.pendingRequests++
		if fl.pendingRequests == 1 {
			fl.mf.sched.MarkEligible(fl)
		}
		touched[fl.mf] = true
	}
	for mf := range touched {
		mf.pump()
	}
}

// Notify charges nsent bytes of an actual transmission to the flow's
// macroflow (cm_notify). The IP output hook calls it for every packet; a
// client that declines a grant calls it with zero so other flows on the
// macroflow can transmit.
func (cm *CM) Notify(f FlowID, nsent int) {
	fl, ok := cm.flows[f]
	if !ok {
		cm.acct.StaleFlowCalls++
		return
	}
	cm.notifyFlow(fl, nsent)
}

// notifyFlow is the shared cm_notify body for callers that have already
// resolved the flow state (Notify by ID, NotifyTransmit by key).
func (cm *CM) notifyFlow(fl *flowState, nsent int) {
	cm.acct.Notifies++
	if nsent < 0 {
		nsent = 0
	}
	if cm.rec != nil {
		cm.rec.Append(probe.Event{At: cm.clock.Now(), Kind: probe.EvNotify, Flow: int64(fl.id), Size: int64(nsent)})
	}
	fl.mf.notify(fl, nsent)
}

// UpdateArgs bundles the arguments of one Update for the bulk variant.
type UpdateArgs struct {
	Flow     FlowID
	Sent     int
	Received int
	Mode     LossMode
	RTT      time.Duration
}

// Update reports feedback from the receiver for a flow: how many bytes the
// feedback covers, how many arrived, the kind of congestion observed, and a
// round-trip time sample (cm_update).
func (cm *CM) Update(f FlowID, nsent, nrecd int, mode LossMode, rtt time.Duration) {
	fl, ok := cm.flows[f]
	if !ok {
		cm.acct.StaleFlowCalls++
		return
	}
	cm.acct.Updates++
	if nsent < 0 {
		nsent = 0
	}
	if nrecd < 0 {
		nrecd = 0
	}
	fl.mf.update(fl, nsent, nrecd, mode, rtt)
}

// BulkUpdate applies several Update calls at once (cm_bulk_update).
func (cm *CM) BulkUpdate(updates []UpdateArgs) {
	cm.acct.BulkUpdates++
	for _, u := range updates {
		fl, ok := cm.flows[u.Flow]
		if !ok {
			cm.acct.StaleFlowCalls++
			continue
		}
		nsent, nrecd := u.Sent, u.Received
		if nsent < 0 {
			nsent = 0
		}
		if nrecd < 0 {
			nrecd = 0
		}
		fl.mf.update(fl, nsent, nrecd, u.Mode, u.RTT)
	}
}

// Thresh sets the rate-change factors that trigger cmapp_update callbacks
// for the flow: a callback is delivered when the rate drops by a factor of
// down or rises by a factor of up since the last report (cm_thresh).
// Factors at or below 1 are rejected and leave the previous setting.
func (cm *CM) Thresh(f FlowID, down, up float64) {
	fl, ok := cm.flows[f]
	if !ok {
		cm.acct.StaleFlowCalls++
		return
	}
	if down > 1 {
		fl.threshDown = down
	}
	if up > 1 {
		fl.threshUp = up
	}
}

// Query returns the CM's current estimate of the flow's available rate,
// round-trip time and loss rate (cm_query). Applications use it at stream
// start to pick an encoding and inside cmapp_send callbacks to adapt content.
func (cm *CM) Query(f FlowID) (Status, bool) {
	fl, ok := cm.flows[f]
	if !ok {
		cm.acct.StaleFlowCalls++
		return Status{}, false
	}
	cm.acct.Queries++
	return fl.mf.status(fl), true
}

// SplitFlow moves a flow out of its per-destination macroflow into a fresh,
// private macroflow. The paper provides macroflow construction/splitting for
// cases where the default per-destination aggregation is unsuitable (for
// example differentiated-services paths).
func (cm *CM) SplitFlow(f FlowID) {
	fl, ok := cm.flows[f]
	if !ok {
		cm.acct.StaleFlowCalls++
		return
	}
	if fl.mf.FlowCount() == 1 {
		return // already alone
	}
	fl.mf.removeFlow(fl)
	cm.nextMFTag++
	mf := cm.macroflowFor(macroflowKey{dstHost: fl.key.Dst.Host, tag: cm.nextMFTag})
	fl.mf = mf
	mf.addFlow(fl)
}

// MergeFlows moves flow b into flow a's macroflow so they share congestion
// state, overriding the default aggregation.
func (cm *CM) MergeFlows(a, b FlowID) {
	fa, okA := cm.flows[a]
	fb, okB := cm.flows[b]
	if !okA {
		cm.acct.StaleFlowCalls++
	}
	if !okB {
		cm.acct.StaleFlowCalls++
	}
	if !okA || !okB || fa.mf == fb.mf {
		return
	}
	fb.mf.removeFlow(fb)
	fb.mf = fa.mf
	fa.mf.addFlow(fb)
}

// Accounting counts API invocations and callback deliveries. The API-cost
// model uses these counters to reproduce the paper's overhead accounting
// (Table 1, Figures 5 and 6).
type Accounting struct {
	Opens           int64
	Closes          int64
	Requests        int64
	BulkRequests    int64
	Updates         int64
	BulkUpdates     int64
	Notifies        int64
	Queries         int64
	GrantsIssued    int64
	UpdateCallbacks int64
	// GrantsReclaimed counts grants taken back by any path — claim via
	// cm_notify, departing-flow cleanup, grant timeout, or a state wipe — so
	// GrantsIssued == GrantsReclaimed + outstanding grants holds at all times
	// (the grant-conservation invariant the fault-injection soak checks).
	GrantsReclaimed int64
	// StaleFlowCalls counts API calls naming a dead or unknown FlowID. They
	// no-op (the kernel module returns EINVAL), but after a CM restart a
	// client that fails to re-sync shows up here instead of being invisible.
	StaleFlowCalls int64
	// Restarts counts Restart invocations (process-death fault injection);
	// it equals the current epoch.
	Restarts int64
	// MacroflowResets counts macroflows whose congestion state was discarded
	// by a host-move event.
	MacroflowResets int64
}

// Total returns the total number of client-initiated API calls (excluding
// callbacks the CM itself delivers).
func (a Accounting) Total() int64 {
	return a.Opens + a.Closes + a.Requests + a.BulkRequests + a.Updates +
		a.BulkUpdates + a.Notifies + a.Queries
}
