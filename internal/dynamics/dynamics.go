// Package dynamics is the network-dynamics subsystem of the reproduction: a
// deterministic timeline of scheduled events that change the network while a
// simulation is running. The Congestion Manager's value proposition is
// adaptation, so scenarios must be able to declare the churn the CM adapts
// to — links failing and recovering, bandwidth and delay renegotiating,
// loss turning bursty — instead of freezing every parameter at Build time.
//
// An Event names a link of the scenario's topology (by index into
// Spec.Links), a virtual time and a change to apply. The Timeline schedules
// every event on the simulation's scheduler; events with At <= 0 are applied
// during installation, before any packet is sent, so static asymmetries can
// be declared as time-zero events. Link up/down events additionally trigger
// the owner's route-recomputation hook, and each event's outcome (fired,
// routes changed) is recorded so results can report the timeline that
// actually executed.
//
// Everything is deterministic: events fire at declared virtual times in
// declaration order, loss models draw from per-link seeded sources, and the
// records are value types — a scenario with a timeline still produces
// byte-identical results whether it runs serially or in a parallel batch.
package dynamics

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Event kinds.
const (
	// LinkDown takes the target link out of service: arriving packets are
	// dropped (DownDrops), queued packets are held, and routes are
	// recomputed around the outage.
	LinkDown = "link-down"
	// LinkUp returns the link to service and recomputes routes.
	LinkUp = "link-up"
	// SetBandwidth changes the link's serialisation rate to Bandwidth.
	SetBandwidth = "set-bandwidth"
	// SetDelay changes the link's propagation delay to Delay.
	SetDelay = "set-delay"
	// SetLoss changes the link's independent Bernoulli drop rate to LossRate.
	SetLoss = "set-loss"
	// SetGilbert installs (or with a nil Gilbert field, removes) the
	// two-state bursty loss model.
	SetGilbert = "set-gilbert"
)

// Directions select which half of a duplex link an event applies to.
const (
	// DirBoth (the default) applies the event to both directions.
	DirBoth = "both"
	// DirForward applies the event to the A->B direction of the link.
	DirForward = "fwd"
	// DirReverse applies the event to the B->A direction.
	DirReverse = "rev"
)

// Event is one scheduled change to the network. Exactly the parameter named
// by Kind is consulted; the others are ignored.
type Event struct {
	// At is the virtual time the event fires. At <= 0 fires during Timeline
	// installation, before any traffic.
	At time.Duration `json:"at"`
	// Kind is one of the event-kind constants.
	Kind string `json:"kind"`
	// Link indexes the scenario's Links slice.
	Link int `json:"link"`
	// Direction is DirBoth (default), DirForward or DirReverse.
	Direction string `json:"direction,omitempty"`

	Bandwidth netsim.Bandwidth       `json:"bandwidth,omitempty"`
	Delay     time.Duration          `json:"delay,omitempty"`
	LossRate  float64                `json:"loss_rate,omitempty"`
	Gilbert   *netsim.GilbertElliott `json:"gilbert,omitempty"`
}

// Validate checks the event against a topology with nlinks links.
func (e Event) Validate(nlinks int) error {
	if e.At < 0 {
		return fmt.Errorf("dynamics: event at %v in the past", e.At)
	}
	if e.Link < 0 || e.Link >= nlinks {
		return fmt.Errorf("dynamics: event link %d out of range [0,%d)", e.Link, nlinks)
	}
	switch e.Direction {
	case "", DirBoth, DirForward, DirReverse:
	default:
		return fmt.Errorf("dynamics: event direction %q unknown", e.Direction)
	}
	switch e.Kind {
	case LinkDown, LinkUp:
	case SetBandwidth:
		if e.Bandwidth <= 0 {
			return fmt.Errorf("dynamics: %s event needs bandwidth > 0", e.Kind)
		}
	case SetDelay:
		if e.Delay < 0 {
			return fmt.Errorf("dynamics: %s event needs delay >= 0", e.Kind)
		}
	case SetLoss:
		if e.LossRate < 0 || e.LossRate > 1 {
			return fmt.Errorf("dynamics: %s event loss rate %v out of [0,1]", e.Kind, e.LossRate)
		}
	case SetGilbert:
		if e.Gilbert != nil {
			if err := e.Gilbert.Validate(); err != nil {
				return fmt.Errorf("dynamics: %s event: %w", e.Kind, err)
			}
		}
	default:
		return fmt.Errorf("dynamics: event kind %q unknown", e.Kind)
	}
	return nil
}

// topologyEvent reports whether the event changes link reachability and so
// requires a route recomputation.
func (e Event) topologyEvent() bool { return e.Kind == LinkDown || e.Kind == LinkUp }

// Record is the executed outcome of one event, reported in scenario results.
// It contains only value types and serialises deterministically.
type Record struct {
	Event
	// Fired is false for events scheduled past the end of the run.
	Fired bool `json:"fired"`
	// RoutesChanged counts routing-table entries that changed across all
	// hosts when the event triggered a route recomputation.
	RoutesChanged int `json:"routes_changed,omitempty"`
}

// Resolver maps an event's (link index, direction) to the directional links
// it applies to. The scenario layer supplies one backed by its duplexes.
type Resolver func(link int, direction string) []*netsim.Link

// TopologyHook is invoked after a link up/down event has been applied; it
// recomputes and installs routes, returning the number of changed entries.
type TopologyHook func(ev Event) int

// Timeline owns a scenario's scheduled events and their execution records.
type Timeline struct {
	sched    *simtime.Scheduler
	resolve  Resolver
	onChange TopologyHook
	recs     []Record
}

// NewTimeline builds a timeline over the given events. resolve is required;
// onChange may be nil when the owner has no routing to maintain. A nil sched
// selects the externally-driven mode: Install applies only time-zero events
// and the owner fires the rest by calling Advance at the right virtual times
// (sharded execution does this at its synchronization barriers).
func NewTimeline(sched *simtime.Scheduler, events []Event, resolve Resolver, onChange TopologyHook) *Timeline {
	if resolve == nil {
		panic("dynamics: NewTimeline requires a resolver")
	}
	t := &Timeline{sched: sched, resolve: resolve, onChange: onChange}
	t.recs = make([]Record, len(events))
	for i, ev := range events {
		t.recs[i] = Record{Event: ev}
	}
	return t
}

// Install schedules every event. Events with At <= 0 are applied immediately
// (before the scheduler runs), so time-zero events configure the network
// before the first packet. Install must be called exactly once. On an
// externally-driven timeline (nil scheduler) the positive-time events are
// left for Advance.
func (t *Timeline) Install() {
	for i := range t.recs {
		if t.recs[i].At <= 0 {
			t.fire(i)
			continue
		}
		if t.sched == nil {
			continue
		}
		idx := i
		t.sched.At(t.recs[i].At, func() { t.fire(idx) })
	}
}

// Advance fires every not-yet-fired event with At <= now, in declaration
// order — the same order the scheduler mode produces, since Install inserts
// the events in declaration order before any traffic is scheduled. It is the
// drive for externally-clocked owners; calling it on a scheduler-backed
// timeline would double-fire events, so don't.
func (t *Timeline) Advance(now time.Duration) {
	for i := range t.recs {
		if !t.recs[i].Fired && t.recs[i].At <= now {
			t.fire(i)
		}
	}
}

// fire applies event i to its resolved links and records the outcome.
func (t *Timeline) fire(i int) {
	rec := &t.recs[i]
	rec.Fired = true
	dir := rec.Direction
	if dir == "" {
		dir = DirBoth
	}
	for _, l := range t.resolve(rec.Link, dir) {
		applyToLink(rec.Event, l)
	}
	if rec.topologyEvent() && t.onChange != nil {
		rec.RoutesChanged = t.onChange(rec.Event)
	}
}

// applyToLink performs the event's change on one directional link.
func applyToLink(ev Event, l *netsim.Link) {
	switch ev.Kind {
	case LinkDown:
		l.SetDown(true)
	case LinkUp:
		l.SetDown(false)
	case SetBandwidth:
		l.SetBandwidth(ev.Bandwidth)
	case SetDelay:
		l.SetDelay(ev.Delay)
	case SetLoss:
		l.SetLossRate(ev.LossRate)
	case SetGilbert:
		l.SetGilbert(ev.Gilbert)
	}
}

// Records returns a copy of the per-event execution records, in declaration
// order.
func (t *Timeline) Records() []Record {
	return append([]Record(nil), t.recs...)
}
