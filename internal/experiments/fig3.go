package experiments

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Fig3Config parameterises the Figure 3 experiment: bulk TCP throughput as a
// function of the packet loss rate on a 10 Mbps, 60 ms RTT Dummynet channel,
// comparing TCP with native (Linux) congestion control against TCP whose
// congestion control is performed by the CM.
type Fig3Config struct {
	// LossPercents are the loss rates to sweep (percent).
	LossPercents []float64
	// TransferBytes is the size of each bulk transfer.
	TransferBytes int
	// Trials averages several independently seeded runs per point.
	Trials int
	// Deadline bounds each run in virtual time.
	Deadline time.Duration
}

func (c *Fig3Config) fillDefaults() {
	if len(c.LossPercents) == 0 {
		c.LossPercents = []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
	}
	if c.TransferBytes <= 0 {
		c.TransferBytes = 2_000_000
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Minute
	}
}

// Fig3Point is one x-position of Figure 3.
type Fig3Point struct {
	LossPct    float64
	CMKBps     float64
	LinuxKBps  float64
	CMFailed   int // runs that did not finish before the deadline
	LinuxFail  int
	TrialCount int
}

// Fig3Result is the reproduction of Figure 3.
type Fig3Result struct {
	Config Fig3Config
	Points []Fig3Point
}

// Fig3Campaign is the declarative form of the Figure 3 sweep: the Dummynet
// point-to-point path as the base spec, a string axis over the congestion
// controller (cm vs native, seed-paired so both variants replay the same
// loss pattern, as on the paper's shared testbed channel) crossed with a
// list axis over the Bernoulli loss rate, and Trials seed replicates per
// point. It is also the worked example of docs/SWEEPS.md: running it through
// cmsim -campaign reproduces the RunFig3 table.
func Fig3Campaign(cfg Fig3Config) sweep.Campaign {
	cfg.fillDefaults()
	p := dummynetWAN(0, 0) // loss and seed are supplied by the sweep axes
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    p.Bandwidth,
			Delay:        p.OneWayDelay,
			QueuePackets: p.QueuePackets,
		},
		Workloads: []scenario.Workload{{
			Kind: scenario.KindBulk, From: "sender", To: "receiver",
			Bytes: cfg.TransferBytes, RecvWindow: 256 * 1024,
		}},
		Duration: cfg.Deadline,
	})
	base.Name = "fig3"
	losses := make([]float64, len(cfg.LossPercents))
	for i, pct := range cfg.LossPercents {
		losses[i] = pct / 100
	}
	return sweep.Campaign{
		Name: "fig3",
		Base: &base,
		Axes: []sweep.Axis{
			{Param: "workload[0].cc", Strings: []string{scenario.CCCM, scenario.CCNative}},
			{Param: "link[0].loss", Values: losses},
		},
		Replicates: cfg.Trials,
		// The fixed seed base of the published campaign (any value works; this
		// one keeps single-trial reproductions close to the paper's curves,
		// where sparse trials at high loss otherwise roll noisy ratios).
		Seed:    9,
		Metrics: []string{"flows[0].throughput_kbps", "flows[0].completed"},
	}
}

// RunFig3 executes the Figure 3 sweep through the campaign engine.
func RunFig3(cfg Fig3Config) Fig3Result {
	cfg.fillDefaults()
	res := Fig3Result{Config: cfg}
	cres, err := Fig3Campaign(cfg).Run(scenario.Runner{})
	if err != nil {
		// The campaign is statically well-formed; an error here means the
		// config itself is broken (e.g. no loss points) — return it empty.
		return res
	}
	// Point order follows the axes: the cc axis varies slowest, so the cm
	// block precedes the native block, each in LossPercents order.
	n := len(cfg.LossPercents)
	for i, pct := range cfg.LossPercents {
		pt := Fig3Point{LossPct: pct, TrialCount: cfg.Trials}
		pt.CMKBps, pt.CMFailed = fig3Aggregate(&cres.Points[i])
		pt.LinuxKBps, pt.LinuxFail = fig3Aggregate(&cres.Points[n+i])
		res.Points = append(res.Points, pt)
	}
	return res
}

// fig3Aggregate averages the transfer throughput over the trials that
// completed before the deadline; trials that did not (or whose run errored)
// count as failures, matching the paper's treatment of stalled transfers.
func fig3Aggregate(p *sweep.PointResult) (kbps float64, failed int) {
	failed = p.Failed
	var sum float64
	var ok int
	for _, r := range p.Results {
		f := r.Flows[0]
		if f.Completed {
			sum += f.ThroughputKBps
			ok++
		} else {
			failed++
		}
	}
	if ok > 0 {
		kbps = sum / float64(ok)
	}
	return kbps, failed
}

// Table renders the result in the paper's units (KB/s vs loss %).
func (r Fig3Result) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.LossPct),
			fmt.Sprintf("%.0f", p.CMKBps),
			fmt.Sprintf("%.0f", p.LinuxKBps),
			fmt.Sprintf("%.2f", safeRatio(p.CMKBps, p.LinuxKBps)),
		})
	}
	return "Figure 3: throughput vs. packet loss (10 Mbps link, 60 ms RTT)\n" +
		formatTable([]string{"loss%", "TCP/CM KB/s", "TCP/Linux KB/s", "CM/Linux"}, rows)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
