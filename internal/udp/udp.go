// Package udp provides UDP sockets for the simulation: plain datagram sockets
// and the congestion-controlled UDP socket (CM_BUF) described in §3.3 of the
// paper, whose transmissions are paced by Congestion Manager callbacks
// instead of being sent immediately.
package udp

import (
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
)

// Datagram is the payload carried in a UDP packet. Payload bytes are
// synthetic (only the length travels); applications attach their own
// application-layer data in App.
type Datagram struct {
	// Seq is an application-assigned sequence number.
	Seq int64
	// SentAt is the sender's timestamp, echoed in feedback for RTT
	// measurement.
	SentAt time.Duration
	// Size is the application payload length in bytes.
	Size int
	// App carries application-defined content (for example feedback
	// reports).
	App any
}

// wireSize returns the on-the-wire size of a datagram.
func wireSize(d *Datagram) int {
	return netsim.IPHeaderSize + netsim.UDPHeaderSize + d.Size
}

// ReceiveFunc is invoked for every datagram delivered to a socket.
type ReceiveFunc func(from netsim.Addr, d *Datagram)

// Socket is a plain (unreliable, unordered, uncontrolled) UDP socket.
type Socket struct {
	host    *node.Host
	local   netsim.Addr
	onRecv  ReceiveFunc
	control bool

	sentPackets int64
	sentBytes   int64
	rcvdPackets int64
	rcvdBytes   int64
}

// NewSocket binds a UDP socket to the given port on the host (a port of 0
// allocates an ephemeral port).
func NewSocket(h *node.Host, port int) (*Socket, error) {
	if h == nil {
		return nil, fmt.Errorf("udp: nil host")
	}
	if port == 0 {
		port = h.AllocPort()
	}
	s := &Socket{host: h, local: netsim.Addr{Host: h.Name(), Port: port}}
	if err := h.Bind(netsim.ProtoUDP, port, s); err != nil {
		return nil, err
	}
	return s, nil
}

// Local returns the socket's bound address.
func (s *Socket) Local() netsim.Addr { return s.local }

// OnReceive registers the receive callback.
func (s *Socket) OnReceive(fn ReceiveFunc) { s.onRecv = fn }

// MarkControl makes all datagrams sent from this socket transport control
// traffic (application-level acknowledgements) that the CM does not charge.
func (s *Socket) MarkControl() { s.control = true }

// SendTo transmits a datagram to dst. It returns false if the packet could
// not be sent (no route) or was dropped at the first hop.
func (s *Socket) SendTo(dst netsim.Addr, d *Datagram) bool {
	if d == nil {
		panic("udp: SendTo(nil)")
	}
	d.SentAt = s.host.Clock().Now()
	pkt := netsim.NewPacket()
	pkt.Proto = netsim.ProtoUDP
	pkt.Src = s.local
	pkt.Dst = dst
	pkt.Size = wireSize(d)
	pkt.Payload = d
	pkt.Control = s.control
	pkt.ChargeBytes = d.Size
	s.sentPackets++
	s.sentBytes += int64(d.Size)
	return s.host.Output(pkt)
}

// Handle implements node.Handler.
func (s *Socket) Handle(pkt *netsim.Packet) {
	d, ok := pkt.Payload.(*Datagram)
	if !ok {
		return
	}
	s.rcvdPackets++
	s.rcvdBytes += int64(d.Size)
	if s.onRecv != nil {
		s.onRecv(pkt.Src, d)
	}
}

// Close unbinds the socket.
func (s *Socket) Close() { s.host.Unbind(netsim.ProtoUDP, s.local.Port) }

// SocketStats summarises a socket's traffic counters.
type SocketStats struct {
	SentPackets, RcvdPackets int64
	SentBytes, RcvdBytes     int64
}

// Stats returns the socket counters.
func (s *Socket) Stats() SocketStats {
	return SocketStats{SentPackets: s.sentPackets, RcvdPackets: s.rcvdPackets, SentBytes: s.sentBytes, RcvdBytes: s.rcvdBytes}
}

var _ node.Handler = (*Socket)(nil)

// CCStats are counters for a congestion-controlled UDP socket.
type CCStats struct {
	Enqueued      int64
	QueueDrops    int64
	Sent          int64
	SentBytes     int64
	MaxQueueDepth int
}

// CCSocket is the congestion-controlled UDP socket of §3.3: writes go into a
// bounded kernel packet queue and leave only when the CM schedules the flow
// (the udp_ccappsend path). It provides the "buffered send" API: conventional
// sends, paced by the Congestion Manager, with no content adaptation.
//
// The socket is connected to a single destination, so the IP output hook can
// attribute transmissions to the flow without an explicit cm_notify.
type CCSocket struct {
	sock    *Socket
	cmgr    *cm.CM
	flow    cm.FlowID
	dst     netsim.Addr
	queue   []*Datagram
	limit   int
	pending bool
	onSpace func()
	stats   CCStats
	closed  bool
}

// NewCCSocket creates a congestion-controlled UDP socket on host h bound to
// port (0 = ephemeral), connected to dst, with a kernel queue of queueLimit
// datagrams. Setting the CM_BUF socket option in the paper corresponds to
// constructing this type.
func NewCCSocket(h *node.Host, port int, dst netsim.Addr, cmgr *cm.CM, queueLimit int) (*CCSocket, error) {
	if cmgr == nil {
		return nil, fmt.Errorf("udp: CCSocket requires a Congestion Manager")
	}
	if queueLimit <= 0 {
		queueLimit = 64
	}
	sock, err := NewSocket(h, port)
	if err != nil {
		return nil, err
	}
	s := &CCSocket{sock: sock, cmgr: cmgr, dst: dst, limit: queueLimit}
	s.flow = cmgr.Open(netsim.ProtoUDP, sock.Local(), dst)
	cmgr.RegisterSend(s.flow, s.ccappSend)
	return s, nil
}

// Flow returns the CM flow identifier of the socket.
func (s *CCSocket) Flow() cm.FlowID { return s.flow }

// Local returns the socket's bound address.
func (s *CCSocket) Local() netsim.Addr { return s.sock.Local() }

// Inner returns the underlying plain socket (for receiving feedback).
func (s *CCSocket) Inner() *Socket { return s.sock }

// QueueLen returns the number of queued datagrams awaiting transmission.
func (s *CCSocket) QueueLen() int { return len(s.queue) }

// Stats returns the socket's counters.
func (s *CCSocket) Stats() CCStats { return s.stats }

// OnSpace registers a callback invoked whenever a datagram leaves the queue,
// so self-clocked applications (the vat architecture of §3.6) can refill the
// kernel buffer on demand.
func (s *CCSocket) OnSpace(fn func()) { s.onSpace = fn }

// Send queues a datagram for congestion-controlled transmission. If the
// kernel queue is full the datagram is dropped (drop-tail, as a kernel socket
// buffer behaves) and false is returned.
func (s *CCSocket) Send(d *Datagram) bool {
	if s.closed {
		return false
	}
	if len(s.queue) >= s.limit {
		s.stats.QueueDrops++
		return false
	}
	s.queue = append(s.queue, d)
	s.stats.Enqueued++
	if len(s.queue) > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = len(s.queue)
	}
	// "When data enters the packet queue, the kernel calls cm_request() on
	// the flow associated with the socket."
	if !s.pending {
		s.pending = true
		s.cmgr.Request(s.flow)
	}
	return true
}

// ccappSend is the CM grant callback (udp_ccappsend in the paper): transmit
// one datagram from the packet queue and request another callback if packets
// remain.
func (s *CCSocket) ccappSend(_ cm.FlowID) {
	s.pending = false
	if s.closed || len(s.queue) == 0 {
		s.cmgr.Notify(s.flow, 0)
		return
	}
	d := s.queue[0]
	s.queue = s.queue[1:]
	if !s.sock.SendTo(s.dst, d) {
		// Dropped at the first hop; the IP hook never charged it, so release
		// the grant explicitly.
		s.cmgr.Notify(s.flow, 0)
	}
	s.stats.Sent++
	s.stats.SentBytes += int64(d.Size)
	if s.onSpace != nil {
		s.onSpace()
	}
	if len(s.queue) > 0 && !s.pending {
		s.pending = true
		s.cmgr.Request(s.flow)
	}
}

// Update reports receiver feedback for the socket's flow; applications of the
// buffered API remain responsible for feedback (§3.3's example client loop).
func (s *CCSocket) Update(nsent, nrecd int, mode cm.LossMode, rtt time.Duration) {
	s.cmgr.Update(s.flow, nsent, nrecd, mode, rtt)
}

// Query returns the CM's estimate of the flow's network state.
func (s *CCSocket) Query() (cm.Status, bool) { return s.cmgr.Query(s.flow) }

// Close releases the flow and the underlying socket. Queued datagrams are
// discarded.
func (s *CCSocket) Close() {
	if s.closed {
		return
	}
	s.closed = true
	s.queue = nil
	s.cmgr.Close(s.flow)
	s.sock.Close()
}
