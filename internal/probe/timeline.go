package probe

import (
	"encoding/json"
	"io"
	"time"
)

// Span is one wall-clock execution interval on a timeline lane: a shard
// worker's synchronization window, a coordinator barrier, or a whole serial
// run.
type Span struct {
	// Name labels the span ("window", "barrier", "run").
	Name string
	// Lane is the worker the span belongs to (shard index; the coordinator
	// gets its own lane).
	Lane int
	// Start is the wall-clock offset from the timeline's epoch; Dur the
	// wall-clock length.
	Start, Dur time.Duration
	// VirtStart and VirtEnd are the virtual-time bounds the span covered.
	VirtStart, VirtEnd time.Duration
	// Count is span-specific: cross-shard deliveries injected at a barrier,
	// dynamics events fired, zero otherwise.
	Count int
	// Kinds, when profiling is armed, is the per-event-kind cost breakdown of
	// the work executed inside the span (a window's worth of scheduler
	// events), already ordered for emission by the producer.
	Kinds []KindCost
}

// KindCost is one event kind's contribution to a span: how many events of the
// kind fired inside it and their total wall-clock cost. The kind names come
// from simtime.Kind (probe stays independent of simtime, so they arrive as
// strings).
type KindCost struct {
	Kind  string
	Count uint64
	Ns    int64
}

// Timeline collects execution Spans per lane. Lanes are written
// independently: each shard worker appends only to its own lane and the
// coordinator to its own, and the run's start/stop barriers order those
// writes against Spans()/WriteJSON — no locking needed.
//
// A Timeline records wall-clock time; it is an execution artifact, never part
// of a Result, so enabling it cannot perturb simulation determinism.
type Timeline struct {
	epoch time.Time
	names []string
	lanes [][]Span
}

// NewTimeline returns a timeline with one lane per name, with the epoch (the
// zero point of every Span.Start) taken now.
func NewTimeline(laneNames ...string) *Timeline {
	return &Timeline{
		epoch: time.Now(),
		names: laneNames,
		lanes: make([][]Span, len(laneNames)),
	}
}

// Since returns the wall-clock offset of "now" from the timeline epoch;
// workers bracket their spans with it.
func (t *Timeline) Since() time.Duration { return time.Since(t.epoch) }

// Add appends a span to its lane. Only the lane's owning worker may call it.
func (t *Timeline) Add(lane int, s Span) {
	s.Lane = lane
	t.lanes[lane] = append(t.lanes[lane], s)
}

// SpanCount returns the total number of recorded spans.
func (t *Timeline) SpanCount() int {
	n := 0
	for _, l := range t.lanes {
		n += len(l)
	}
	return n
}

// Spans returns every recorded span, lane by lane.
func (t *Timeline) Spans() []Span {
	out := make([]Span, 0, t.SpanCount())
	for _, l := range t.lanes {
		out = append(out, l...)
	}
	return out
}

// traceEvent is one entry of the Chrome trace_event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" is a complete (duration) event, ph "M" a metadata record naming a
// lane; ts and dur are microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON exports the timeline in Chrome trace_event format, loadable in
// chrome://tracing or Perfetto. Each lane becomes a named thread; each span a
// duration event carrying its virtual-time window in args.
func (t *Timeline) WriteJSON(w io.Writer) error {
	events := make([]traceEvent, 0, t.SpanCount()+len(t.names))
	for lane, name := range t.names {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", Tid: lane,
			Args: map[string]any{"name": name},
		})
	}
	for _, s := range t.Spans() {
		args := map[string]any{
			"virt_start_ms": float64(s.VirtStart) / float64(time.Millisecond),
			"virt_end_ms":   float64(s.VirtEnd) / float64(time.Millisecond),
		}
		if s.Count != 0 {
			args["count"] = s.Count
		}
		if len(s.Kinds) > 0 {
			// One {"count", "ms"} object per kind; encoding/json sorts the
			// map keys, so the output is deterministic for a fixed breakdown.
			kinds := make(map[string]any, len(s.Kinds))
			for _, kc := range s.Kinds {
				kinds[kc.Kind] = map[string]any{
					"count": kc.Count,
					"ms":    float64(kc.Ns) / float64(time.Millisecond),
				}
			}
			args["kinds"] = kinds
		}
		events = append(events, traceEvent{
			Name: s.Name, Ph: "X",
			Ts:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			Tid:  s.Lane,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"displayTimeUnit": "ms",
		"traceEvents":     events,
	})
}
