package scenario

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cm"
	"repro/internal/dynamics"
	"repro/internal/libcm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/probe"
	"repro/internal/simtime"
)

// Sim is a built scenario: the wired topology, its scheduler and the
// Congestion Managers, ready to run. Experiments that need programmatic
// workloads (custom applications, taps, ablations) use Build directly and
// drive the scheduler themselves; declarative workloads go through Run (or
// Start + Finish when the caller drives the clock).
type Sim struct {
	Spec  Spec
	sched *simtime.Scheduler
	net   *node.Network
	// nodeNames is every node in deterministic (first-mention) order.
	nodeNames []string
	// duplexes[i] realises Spec.Links[i].
	duplexes []*netsim.Duplex
	cms      map[string]*cm.CM
	cmHosts  []string // deterministic order of cms keys
	// injectors holds one notification fault injector per CM host (shared by
	// every libcm instance of that host), driven by set-notify-faults events.
	injectors map[string]*libcm.Injector

	// routing is the interned-topology route engine, retained after Build so
	// the dynamics timeline can recompute routes when links fail or recover.
	routing *routeEngine
	// proto is the distance-vector control plane layered on the engine when
	// Spec.RouteSync == RouteSyncProtocol, nil in (default) oracle mode.
	proto    *protoPlane
	timeline *dynamics.Timeline

	// shard is the sharded-execution coordinator, nil for a serial build
	// (Spec.Shards <= 1, a degenerate partition, or zero lookahead). When
	// set, sched is nil: every component is bound to its shard's scheduler.
	shard *shardRun

	// drivers track the declarative workloads once Start has run.
	drivers []*flowDriver
	started bool

	// samplers are the compiled Spec.Probes sampling chains (installed by
	// Start); recorders the per-host flight-recorder rings (nil unless
	// Spec.TraceDepth > 0); snaps the mid-run snapshots accumulated when
	// Spec.SnapshotEvery > 0; execTL the wall-clock execution timeline
	// attached by EnableExecutionTimeline. See probes.go.
	samplers  []*probeSampler
	recorders map[string]*probe.Recorder
	snaps     []Snapshot
	execTL    *probe.Timeline
	// profiled records that EnableProfiling armed the per-event-kind
	// profiler(s); Finish then attaches the Result.Perf block.
	profiled bool

	// obsTimes/obsFns are the barrier observation schedule (see observers.go):
	// instants where RunToEnd pauses the whole simulation — between all events
	// strictly before and any event at the instant — and runs the registered
	// observers. Aggregate probes and the protocol convergence baseline use
	// it; empty for runs without either.
	obsTimes []time.Duration
	obsFns   []func(time.Duration)
}

// Build validates the spec, creates the hosts, routers and links, computes
// shortest-path routes between every pair of nodes, installs Congestion
// Managers on the CM hosts and schedules the spec's dynamics events.
func Build(spec Spec) (*Sim, error) {
	spec.fillDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Stochastic generators expand into ordinary deterministic events before
	// anything looks at the timeline: the shard planner's lifetime-minimum
	// delays, the sharded runner's barrier schedule and the Timeline all see
	// one merged, time-sorted event list.
	if len(spec.Generators) > 0 {
		evs, err := expandGenerators(&spec)
		if err != nil {
			return nil, err
		}
		spec.Events = evs
	}
	// Every host-move implies a later re-attach; splitting the pair out here
	// makes both halves visible to the shard planner's barrier schedule and
	// the execution record, like any other event.
	spec.Events = expandHostMoves(spec.Events)
	sim := &Sim{Spec: spec, cms: make(map[string]*cm.CM)}

	// Node order is the first mention in Links; it is needed up front because
	// a sharded build must know every host's shard before creating it.
	seen := make(map[string]bool)
	addNode := func(name string) {
		if !seen[name] {
			seen[name] = true
			sim.nodeNames = append(sim.nodeNames, name)
		}
	}
	for _, ls := range spec.Links {
		addNode(ls.A)
		addNode(ls.B)
	}

	// Sharded execution needs at least two shards after partitioning and a
	// positive lookahead (a zero-delay cross-shard link admits no safe
	// concurrent window); anything else degrades to the serial path.
	var nw *node.Network
	if spec.Shards > 1 {
		plan := planShards(&spec, sim.nodeNames)
		if plan.nshards > 1 && plan.lookahead > 0 {
			sim.shard = newShardRun(plan)
			nw = node.NewShardedNetwork(func(host string) *simtime.Scheduler {
				return sim.shard.states[plan.shardOf[host]].sched
			})
		}
	}
	if nw == nil {
		sim.sched = simtime.NewScheduler()
		nw = node.NewNetwork(sim.sched)
	}
	sim.net = nw
	for _, r := range spec.Routers {
		nw.Router(r)
	}
	// Directional edges accumulate in insertion order for the route engine's
	// interned adjacency. Parallel links between a pair would make next-hop
	// routing ambiguous, so duplicates are rejected.
	id := make(map[string]int, len(sim.nodeNames))
	for i, name := range sim.nodeNames {
		id[name] = i
	}
	edges := make([]dirEdge, 0, 2*len(spec.Links))
	wired := make(map[[2]int32]bool, 2*len(spec.Links))
	direction := func(from, to string, l *netsim.Link) error {
		f, t := int32(id[from]), int32(id[to])
		if wired[[2]int32{f, t}] {
			return fmt.Errorf("scenario %q: duplicate link %s-%s", spec.Name, from, to)
		}
		wired[[2]int32{f, t}] = true
		edges = append(edges, dirEdge{from: f, to: t, link: l})
		return nil
	}
	// Links with Seed zero get derived seeds. Each duplex consumes two seeds
	// (NewDuplex uses Seed and Seed+1); derived pairs skip over any seed an
	// explicitly seeded link already claimed, so no two links ever share a
	// random stream.
	usedSeeds := make(map[int64]bool)
	for _, ls := range spec.Links {
		if ls.Seed != 0 {
			usedSeeds[ls.Seed] = true
			usedSeeds[ls.Seed+1] = true
		}
	}
	nextSeed := spec.Seed
	deriveSeed := func() int64 {
		for usedSeeds[nextSeed] || usedSeeds[nextSeed+1] {
			nextSeed++
		}
		s := nextSeed
		usedSeeds[s] = true
		usedSeeds[s+1] = true
		nextSeed += 2
		return s
	}
	for _, ls := range spec.Links {
		cfg := ls.LinkConfig
		if cfg.Name == "" {
			cfg.Name = ls.A + "<->" + ls.B
		}
		if cfg.Seed == 0 {
			cfg.Seed = deriveSeed()
		}
		d := nw.ConnectDuplex(ls.A, ls.B, cfg)
		sim.duplexes = append(sim.duplexes, d)
		if err := direction(ls.A, ls.B, d.Forward); err != nil {
			return nil, err
		}
		if err := direction(ls.B, ls.A, d.Reverse); err != nil {
			return nil, err
		}
		if sim.shard != nil {
			sa, sb := sim.shard.plan.shardOf[ls.A], sim.shard.plan.shardOf[ls.B]
			if sa != sb {
				sim.shard.connectRemote(d.Forward, sa, sb)
				sim.shard.connectRemote(d.Reverse, sb, sa)
			}
		}
	}
	if sim.shard != nil {
		for _, name := range sim.nodeNames {
			nw.Host(name).SetOwnershipCheck(sim.shard.ownerCheck(sim.shard.plan.shardOf[name]))
		}
	}

	hosts := make([]*node.Host, len(sim.nodeNames))
	for i, name := range sim.nodeNames {
		hosts[i] = nw.Host(name)
	}
	eng, err := newRouteEngine(&sim.Spec, sim.nodeNames, hosts, edges)
	if err != nil {
		return nil, err
	}
	sim.routing = eng
	if spec.routeProtocol() {
		sim.proto = newProtoPlane(sim)
	}
	sim.recomputeRoutes()

	cmHosts := append([]string(nil), spec.CMHosts...)
	for _, w := range spec.Workloads {
		if w.CC == CCCM {
			cmHosts = append(cmHosts, w.From)
		}
	}
	sort.Strings(cmHosts)
	for _, h := range cmHosts {
		if _, ok := sim.cms[h]; ok {
			continue
		}
		hostSched := sim.clockFor(h)
		c := cm.New(hostSched, hostSched, spec.CMOpts...)
		sim.cms[h] = c
		sim.cmHosts = append(sim.cmHosts, h)
		nw.Host(h).SetTransmitNotifier(c)
		if sim.shard != nil {
			c.SetOwnershipCheck(sim.shard.ownerCheck(sim.shard.plan.shardOf[h]))
		}
	}
	// One fault injector per CM host, seeded from the spec seed and the
	// host's position in the sorted CM-host list (the 0x5eed offset keeps the
	// stream disjoint from the generator and web-mix sub-streams).
	sim.injectors = make(map[string]*libcm.Injector)
	for i, h := range sim.cmHosts {
		sim.injectors[h] = libcm.NewInjector(spec.Seed + int64(i+1)*subSeedStride + 0x5eed)
	}

	// The flight recorder attaches before the dynamics timeline so even
	// time-zero events are captured.
	sim.installTrace()

	// The dynamics timeline is installed last so its time-zero events (static
	// asymmetries and initial loss modes) see the fully wired topology. A
	// sharded build uses the externally-driven mode: positive-time events
	// fire at synchronization barriers instead of on a scheduler.
	if len(spec.Events) > 0 {
		sim.timeline = dynamics.NewTimeline(sim.sched, spec.Events, sim.resolveEventLinks,
			func(ev dynamics.Event) int {
				changed := sim.recomputeRoutes()
				sim.recordRouteEvent(ev, changed)
				return changed
			})
		sim.timeline.SetHostHook(sim.applyHostEvent)
		if sim.proto != nil {
			sim.timeline.SetRouteFaultHook(sim.proto.applyRouteFaults)
		}
		sim.timeline.SetHorizon(spec.Duration)
		sim.timeline.Install()
	}
	return sim, nil
}

// expandHostMoves splits every host-move into its two observable halves: the
// detach at At (links down, routes withdrawn, macroflow state handled per
// policy) and a host-attach at At+Outage when the host reappears at its new
// address. Both are ordinary timeline events, so the sharded runner's barrier
// schedule and the execution record see them like any other. The input slice
// is returned untouched when there is nothing to expand.
func expandHostMoves(events []dynamics.Event) []dynamics.Event {
	hasMove := false
	for _, ev := range events {
		if ev.Kind == dynamics.HostMove {
			hasMove = true
			break
		}
	}
	if !hasMove {
		return events
	}
	out := append([]dynamics.Event(nil), events...)
	var attaches []dynamics.Event
	for i := range out {
		ev := &out[i]
		if ev.Kind != dynamics.HostMove {
			continue
		}
		if ev.Outage <= 0 {
			ev.Outage = 200 * time.Millisecond
		}
		attaches = append(attaches, dynamics.Event{
			At:      ev.At + ev.Outage,
			Kind:    dynamics.HostAttach,
			Host:    ev.Host,
			Policy:  ev.Policy,
			NewName: ev.NewName,
		})
	}
	out = append(out, attaches...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// recordRouteEvent notes a fired link-dynamics event — and the routing churn
// it caused — in the flight recorders of the affected link's endpoints. The
// hook runs in single-threaded phases (build, serial scheduler, barriers),
// so writing both rings here is race-free.
func (s *Sim) recordRouteEvent(ev dynamics.Event, changed int) {
	if s.recorders == nil || ev.Link < 0 || ev.Link >= len(s.Spec.Links) {
		return
	}
	ls := s.Spec.Links[ev.Link]
	e := probe.Event{At: s.now(), Kind: probe.EvRoute, Size: int64(changed), Note: ev.Kind}
	s.recordHostEvent(ls.A, e)
	s.recordHostEvent(ls.B, e)
}

// applyHostEvent is the dynamics.HostHook of this simulation: it realises
// host-level fault events against the built topology and CMs.
func (s *Sim) applyHostEvent(ev dynamics.Event) dynamics.HostOutcome {
	s.recordHostEvent(ev.Host, probe.Event{At: s.now(), Kind: probe.EvFault, Note: ev.Kind})
	var out dynamics.HostOutcome
	switch ev.Kind {
	case dynamics.CMRestart:
		if c := s.cms[ev.Host]; c != nil {
			out.FlowsWiped = c.Restart()
		}
	case dynamics.SetNotifyFaults:
		if inj := s.injectors[ev.Host]; inj != nil {
			inj.SetRates(ev.DropRate, ev.DelayRate, ev.Delay)
		}
	case dynamics.HostMove:
		// The host leaves its attachment point: every adjacent link goes
		// down, routes recompute, and in-flight packets toward it die as
		// route misses. Unless the policy migrates state, congestion state
		// about the old address is discarded — on the moving host's own CM
		// (its path knowledge is stale) and on every peer CM aggregating
		// flows toward it.
		s.setHostLinks(ev.Host, true)
		out.RoutesChanged = s.recomputeRoutes()
		if ev.Policy != dynamics.PolicyMigrate {
			if c := s.cms[ev.Host]; c != nil {
				out.FlowsWiped += c.ResetAllMacroflows()
			}
			for _, h := range s.cmHosts {
				if h == ev.Host {
					continue
				}
				out.FlowsWiped += s.cms[h].ResetMacroflows(ev.Host)
			}
		}
	case dynamics.HostAttach:
		s.setHostLinks(ev.Host, false)
		if ev.NewName != "" {
			s.renameHost(ev.Host, ev.NewName)
		}
		out.RoutesChanged = s.recomputeRoutes()
	}
	return out
}

// renameHost re-keys a renumbering host (host-move with the "renumber"
// policy) under its new name: the network's host registry, the interned node
// order, the route engine and the control plane. Spec-level structures
// (Links, Workloads, CM maps) keep the old name — a renumbered host's old
// address is exactly what stale peers keep talking to until the protocol
// ages it out, and setHostLinks matches links by the unchanged spec names.
func (s *Sim) renameHost(old, newName string) {
	s.net.Rename(old, newName)
	for i, n := range s.nodeNames {
		if n != old {
			continue
		}
		s.nodeNames[i] = newName
		if s.proto != nil {
			s.proto.rename(int32(i), old, newName)
		}
		s.routing.rename(int32(i), newName)
		break
	}
	if s.shard != nil {
		s.shard.plan.shardOf[newName] = s.shard.plan.shardOf[old]
	}
	if s.recorders != nil {
		s.recorders[newName] = s.recorders[old]
	}
}

// setHostLinks takes every link adjacent to host down (or back up).
func (s *Sim) setHostLinks(host string, down bool) {
	for i, ls := range s.Spec.Links {
		if ls.A == host || ls.B == host {
			s.duplexes[i].Forward.SetDown(down)
			s.duplexes[i].Reverse.SetDown(down)
		}
	}
}

// expandGenerators merges the spec's declared events with the expansion of
// every generator, filling owner-level defaults first: a zero generator seed
// derives from the spec seed and the generator's position, End defaults to
// the run duration, and a bandwidth walk starting rate defaults to the target
// link's configured bandwidth. The merged list is stably sorted by time so
// declaration order equals firing order — the property the sharded runner's
// Advance relies on — and re-validated, since expansion happens after
// Spec.Validate.
func expandGenerators(spec *Spec) ([]dynamics.Event, error) {
	combined := append([]dynamics.Event(nil), spec.Events...)
	for i, g := range spec.Generators {
		if g.Seed == 0 {
			g.Seed = spec.Seed + int64(i+1)*subSeedStride
		}
		if g.End <= 0 || g.End > spec.Duration {
			g.End = spec.Duration
		}
		if g.Kind == dynamics.GenBandwidthWalk && g.Initial == 0 {
			g.Initial = spec.Links[g.Link].Bandwidth
			if g.Initial <= 0 {
				// An unset link bandwidth means "infinitely fast"; a walk on
				// it has no starting rate and would silently expand to no
				// events — reject rather than run a churnless scenario.
				return nil, fmt.Errorf("scenario %q: generator %d: bandwidth walk on link %d needs an initial rate (the link has none)",
					spec.Name, i, g.Link)
			}
		}
		combined = append(combined, g.Expand()...)
	}
	sort.SliceStable(combined, func(i, j int) bool { return combined[i].At < combined[j].At })
	for i, ev := range combined {
		if err := ev.Validate(len(spec.Links)); err != nil {
			return nil, fmt.Errorf("scenario %q: expanded event %d: %w", spec.Name, i, err)
		}
	}
	return combined, nil
}

// subSeedStride spaces the derived sub-seeds of a spec's stochastic
// consumers (generators, web-mix plans) along the seed line. It is chosen
// coprime to — and far larger than — the sweep engine's per-point stride
// (1e6-ish), so sub-stream k of sweep point p can never alias sub-stream
// k-1 of point p+1: adjacent sweep points draw fully independent churn.
const subSeedStride = 2_654_435_761 // 2^32 / golden ratio, odd

// clockFor returns the scheduler owning the named host: the single scheduler
// of a serial build, or the host's shard scheduler of a sharded one.
func (s *Sim) clockFor(host string) *simtime.Scheduler {
	if s.shard != nil {
		return s.shard.states[s.shard.plan.shardOf[host]].sched
	}
	return s.sched
}

// now returns the current virtual time. All shard clocks agree outside
// windows (the coordinator advances them in lockstep), so the first shard
// speaks for a sharded run.
func (s *Sim) now() time.Duration {
	if s.shard != nil {
		return s.shard.states[0].sched.Now()
	}
	return s.sched.Now()
}

// Sharded reports whether the build runs on shard workers; ShardCount and
// Lookahead describe the partition (1 and 0 for a serial build), and ShardOf
// returns the shard owning a host (0 for a serial build).
func (s *Sim) Sharded() bool { return s.shard != nil }

// ShardCount returns the number of shards executing the simulation.
func (s *Sim) ShardCount() int {
	if s.shard == nil {
		return 1
	}
	return s.shard.plan.nshards
}

// Lookahead returns the conservative synchronization window of a sharded
// build, zero for a serial one.
func (s *Sim) Lookahead() time.Duration {
	if s.shard == nil {
		return 0
	}
	return s.shard.plan.lookahead
}

// ShardOf returns the shard index owning the named host.
func (s *Sim) ShardOf(host string) int {
	if s.shard == nil {
		return 0
	}
	return s.shard.plan.shardOf[host]
}

// resolveEventLinks maps an event's (link index, direction) onto the built
// duplexes — the dynamics.Resolver for this simulation.
func (s *Sim) resolveEventLinks(link int, direction string) []*netsim.Link {
	d := s.duplexes[link]
	switch direction {
	case dynamics.DirForward:
		return []*netsim.Link{d.Forward}
	case dynamics.DirReverse:
		return []*netsim.Link{d.Reverse}
	default:
		return []*netsim.Link{d.Forward, d.Reverse}
	}
}

// MustBuild is Build for specs known statically correct (canned builders).
func MustBuild(spec Spec) *Sim {
	sim, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return sim
}

// recomputeRoutes rebuilds routing around the current link up/down state and
// installs the new tables atomically, returning the total number of changed
// entries. Build uses it for the initial installation; the dynamics timeline
// calls it on link up/down, where packets already in flight toward a
// withdrawn route are dropped at the next hop and counted as route-miss (or
// no-route) drops. After the initial installation the route engine works
// incrementally — it touches only the state a flipped link can affect while
// reporting exactly the changed-entry count a full recompute would.
//
// In protocol mode the global oracle is replaced by local failure handling:
// only the flipped links' endpoints react synchronously, and the rest of the
// repair propagates through the simulated network as routing messages.
func (s *Sim) recomputeRoutes() int {
	if s.proto != nil {
		return s.proto.topologyChanged()
	}
	return s.routing.recompute()
}

// Scheduler returns the simulation's private scheduler, or nil for a sharded
// build (each shard owns one; see clockFor). Experiments that drive the
// clock themselves run serial builds.
func (s *Sim) Scheduler() *simtime.Scheduler { return s.sched }

// Network returns the wired topology.
func (s *Sim) Network() *node.Network { return s.net }

// Host returns the named host.
func (s *Sim) Host(name string) *node.Host { return s.net.Host(name) }

// CM returns the Congestion Manager installed on the named host, or nil.
func (s *Sim) CM(host string) *cm.CM { return s.cms[host] }

// Duplex returns the duplex realising Spec.Links[i].
func (s *Sim) Duplex(i int) *netsim.Duplex { return s.duplexes[i] }

// Timeline returns the dynamics timeline, or nil when the spec has no events.
func (s *Sim) Timeline() *dynamics.Timeline { return s.timeline }

// Nodes returns every node name in deterministic order.
func (s *Sim) Nodes() []string { return append([]string(nil), s.nodeNames...) }
