// Command cmsim runs simulation scenarios: either a named scenario from the
// registry (multi-hop topologies with routed forwarding) or an ad-hoc
// point-to-point bulk transfer described by flags.
//
// Scenario mode:
//
//	cmsim -list                                  # print the catalogue
//	cmsim -scenario dumbbell                     # run one scenario
//	cmsim -scenario dumbbell,star -parallel 4    # run a batch across workers
//	cmsim -scenario dumbbell -runs 8 -parallel 8 # replicate for determinism checks
//	cmsim -scenario dumbbell -json               # machine-readable results
//	cmsim -scenario grid -shards 4               # shard one simulation across workers
//
// Legacy point-to-point mode (no -scenario):
//
//	cmsim -bw 10e6 -rtt 60ms -loss 1 -cc cm -bytes 2000000
//
// Every simulation owns its scheduler and seeded random sources, so a batch
// produces byte-identical results whether -parallel is 1 or 8.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/scenario"
)

func main() {
	var (
		list     = flag.Bool("list", false, "print the registered scenarios and exit")
		names    = flag.String("scenario", "", "comma-separated scenario names to run (see -list)")
		parallel = flag.Int("parallel", 1, "worker goroutines for the batch (0 = GOMAXPROCS)")
		runs     = flag.Int("runs", 1, "replicas of each scenario (for determinism and sweep checks)")
		shards   = flag.Int("shards", 0, "shard one simulation across this many worker goroutines (0/1 = serial; results are byte-identical)")
		jsonOut  = flag.Bool("json", false, "emit results as JSON")

		bw       = flag.Float64("bw", 10e6, "legacy mode: bottleneck bandwidth in bits/second")
		rtt      = flag.Duration("rtt", 60*time.Millisecond, "legacy mode: round-trip propagation delay")
		lossPct  = flag.Float64("loss", 0, "legacy mode: random loss rate in percent")
		queue    = flag.Int("queue", 120, "legacy mode: bottleneck queue length in packets")
		ccName   = flag.String("cc", "cm", "legacy mode: congestion control (cm or native)")
		bytes    = flag.Int("bytes", 2_000_000, "legacy mode: transfer size in bytes")
		flows    = flag.Int("flows", 1, "legacy mode: concurrent connections to one receiver")
		seed     = flag.Int64("seed", 1, "legacy mode: random seed for the loss process")
		deadline = flag.Duration("deadline", time.Hour, "legacy mode: virtual-time deadline")
	)
	flag.Parse()

	if *list {
		for _, name := range scenario.List() {
			fmt.Printf("%-18s %s\n", name, scenario.Describe(name))
		}
		return
	}

	if *runs < 1 {
		*runs = 1
	}
	var specs []scenario.Spec
	if *names != "" {
		for _, name := range strings.Split(*names, ",") {
			name = strings.TrimSpace(name)
			spec, err := scenario.Lookup(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			spec.Shards = *shards
			for r := 0; r < *runs; r++ {
				specs = append(specs, spec)
			}
		}
	} else {
		spec, err := legacySpec(*ccName, *bw, *rtt, *lossPct, *queue, *bytes, *flows, *seed, *deadline)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for r := 0; r < *runs; r++ {
			specs = append(specs, spec)
		}
	}

	outcomes := scenario.Runner{Parallel: *parallel}.RunAll(specs)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(outcomes); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		for i, o := range outcomes {
			if i > 0 {
				fmt.Println()
			}
			printResult(o)
		}
	}
	for _, o := range outcomes {
		if o.Err != "" {
			os.Exit(1)
		}
	}
}

// legacySpec maps the original cmsim flags onto a point-to-point scenario.
func legacySpec(cc string, bw float64, rtt time.Duration, lossPct float64, queue, bytes, flows int, seed int64, deadline time.Duration) (scenario.Spec, error) {
	var ccMode string
	switch cc {
	case "cm":
		ccMode = scenario.CCCM
	case "native":
		ccMode = scenario.CCNative
	default:
		return scenario.Spec{}, fmt.Errorf("unknown -cc %q (want cm or native)", cc)
	}
	return scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    netsim.Bandwidth(bw),
			Delay:        rtt / 2,
			LossRate:     lossPct / 100,
			QueuePackets: queue,
			Seed:         seed,
		},
		Workloads: []scenario.Workload{{
			Kind:  scenario.KindBulk,
			From:  "sender",
			To:    "receiver",
			Flows: flows,
			Bytes: bytes,
			CC:    ccMode,
		}},
		Duration: deadline,
		Seed:     seed,
	}), nil
}

// printResult renders one outcome for the terminal.
func printResult(o scenario.RunOutcome) {
	if o.Err != "" {
		fmt.Printf("error: %s\n", o.Err)
		return
	}
	r := o.Result
	fmt.Printf("scenario %s: %d flow(s), virtual time %v\n", r.Scenario, len(r.Flows), r.EndTime.Round(time.Millisecond))
	for _, ev := range r.Events {
		fired := "fired"
		if !ev.Fired {
			fired = "not fired"
		}
		dir := ev.Direction
		if dir == "" {
			dir = "both"
		}
		fmt.Printf("  event t=%v %s link=%d dir=%s %s routes-changed=%d\n",
			ev.At, ev.Kind, ev.Link, dir, fired, ev.RoutesChanged)
	}
	for _, f := range r.Flows {
		status := "ok"
		if !f.Completed {
			status = "incomplete"
		}
		extra := ""
		if f.LayerSwitches > 0 {
			extra = fmt.Sprintf(" layer-switches=%d", f.LayerSwitches)
		}
		fmt.Printf("  flow %d.%d %s->%s:%d [%s] %s delivered=%d elapsed=%v throughput=%.0f KB/s rtx=%d timeouts=%d srtt=%v%s\n",
			f.Workload, f.Flow, f.From, f.To, f.Port, f.CC, status,
			f.Delivered, f.Elapsed.Round(time.Millisecond), f.ThroughputKBps,
			f.Retransmissions, f.Timeouts, f.SRTT.Round(time.Millisecond), extra)
	}
	for _, l := range r.Links {
		if l.SentPackets == 0 && l.DownDrops == 0 {
			continue
		}
		fmt.Printf("  link %s: sent=%d drops(queue/bernoulli/burst/down)=%d/%d/%d/%d delivered=%dB",
			l.Name, l.SentPackets, l.QueueDrops, l.BernoulliDrops, l.BurstDrops, l.DownDrops, l.DeliveredOctets)
		if l.GEGoodPackets+l.GEBadPackets > 0 {
			fmt.Printf(" ge(good/bad/transitions)=%d/%d/%d", l.GEGoodPackets, l.GEBadPackets, l.GETransitions)
		}
		fmt.Println()
	}
	for _, h := range r.Hosts {
		if !h.Router {
			continue
		}
		fmt.Printf("  router %s: forwarded=%d (%dB) route-miss=%d ttl-expired=%d\n",
			h.Name, h.ForwardedPackets, h.ForwardedBytes, h.RouteMissDrops, h.TTLExpiredDrops)
	}
	for _, c := range r.CMs {
		fmt.Printf("  cm %s: %d macroflow(s), %d flows, %d grants, %d updates, %d notifies, %d queries\n",
			c.Host, c.Macroflows, c.Flows, c.GrantsIssued, c.Updates, c.Notifies, c.Queries)
	}
}
