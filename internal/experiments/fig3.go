package experiments

import (
	"fmt"
	"time"

	"repro/internal/tcp"
)

// Fig3Config parameterises the Figure 3 experiment: bulk TCP throughput as a
// function of the packet loss rate on a 10 Mbps, 60 ms RTT Dummynet channel,
// comparing TCP with native (Linux) congestion control against TCP whose
// congestion control is performed by the CM.
type Fig3Config struct {
	// LossPercents are the loss rates to sweep (percent).
	LossPercents []float64
	// TransferBytes is the size of each bulk transfer.
	TransferBytes int
	// Trials averages several independently seeded runs per point.
	Trials int
	// Deadline bounds each run in virtual time.
	Deadline time.Duration
}

func (c *Fig3Config) fillDefaults() {
	if len(c.LossPercents) == 0 {
		c.LossPercents = []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4, 4.5, 5}
	}
	if c.TransferBytes <= 0 {
		c.TransferBytes = 2_000_000
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Minute
	}
}

// Fig3Point is one x-position of Figure 3.
type Fig3Point struct {
	LossPct    float64
	CMKBps     float64
	LinuxKBps  float64
	CMFailed   int // runs that did not finish before the deadline
	LinuxFail  int
	TrialCount int
}

// Fig3Result is the reproduction of Figure 3.
type Fig3Result struct {
	Config Fig3Config
	Points []Fig3Point
}

// RunFig3 executes the Figure 3 sweep.
func RunFig3(cfg Fig3Config) Fig3Result {
	cfg.fillDefaults()
	res := Fig3Result{Config: cfg}
	for _, loss := range cfg.LossPercents {
		pt := Fig3Point{LossPct: loss, TrialCount: cfg.Trials}
		var cmSum, nativeSum float64
		var cmRuns, nativeRuns int
		for trial := 0; trial < cfg.Trials; trial++ {
			seed := int64(1000*loss) + int64(trial)*7919 + 1
			if kbps, ok := fig3Run(tcp.CCCM, loss, seed, cfg); ok {
				cmSum += kbps
				cmRuns++
			} else {
				pt.CMFailed++
			}
			if kbps, ok := fig3Run(tcp.CCNative, loss, seed, cfg); ok {
				nativeSum += kbps
				nativeRuns++
			} else {
				pt.LinuxFail++
			}
		}
		if cmRuns > 0 {
			pt.CMKBps = cmSum / float64(cmRuns)
		}
		if nativeRuns > 0 {
			pt.LinuxKBps = nativeSum / float64(nativeRuns)
		}
		res.Points = append(res.Points, pt)
	}
	return res
}

func fig3Run(cc tcp.CongestionControl, lossPct float64, seed int64, cfg Fig3Config) (float64, bool) {
	w := newTestbed(dummynetWAN(lossPct, seed), cc == tcp.CCCM)
	elapsed, _, err := w.bulkTransfer(cc, cfg.TransferBytes, 5001, cfg.Deadline, 256*1024)
	if err != nil || elapsed <= 0 {
		return 0, false
	}
	kbps := float64(cfg.TransferBytes) / elapsed.Seconds() / 1024
	return kbps, true
}

// Table renders the result in the paper's units (KB/s vs loss %).
func (r Fig3Result) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", p.LossPct),
			fmt.Sprintf("%.0f", p.CMKBps),
			fmt.Sprintf("%.0f", p.LinuxKBps),
			fmt.Sprintf("%.2f", safeRatio(p.CMKBps, p.LinuxKBps)),
		})
	}
	return "Figure 3: throughput vs. packet loss (10 Mbps link, 60 ms RTT)\n" +
		formatTable([]string{"loss%", "TCP/CM KB/s", "TCP/Linux KB/s", "CM/Linux"}, rows)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
