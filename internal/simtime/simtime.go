// Package simtime provides a deterministic discrete-event scheduler used as
// the virtual clock for the Congestion Manager simulation substrate.
//
// The paper's evaluation ran on a physical testbed; this package replaces
// wall-clock time with a virtual clock so that every experiment in the
// reproduction is deterministic and runs in milliseconds of real time.
//
// The central type is Scheduler. Events are scheduled at absolute virtual
// times or after relative delays and are executed in timestamp order; ties are
// broken by scheduling order (FIFO), which keeps runs reproducible. Each event
// additionally records the virtual time it was *inserted* (its stamp) and an
// optional caller-chosen sort key and sub-sequence, and the full heap order is
// (time, stamp, key, sub, seq). For ordinary scheduling the extra keys are
// redundant — stamps are nondecreasing in seq — but they are what lets a
// sharded simulation inject events from another scheduler (InjectAt) into
// exactly the position a single-scheduler run would have given them: the
// stamp recovers the insertion instant, and the sort key breaks the residual
// tie between events inserted at the same instant on different shards, where
// no insertion order exists that both runs could observe.
//
// The scheduler is built for the inner loop of large experiments: the event
// queue is a specialized 4-ary min-heap (no container/heap interface
// dispatch), fired and cancelled events are recycled through a freelist so
// steady-state scheduling allocates nothing, and Cancel removes the event
// from the heap immediately instead of leaking it until its timestamp.
package simtime

import (
	"fmt"
	"math"
	"time"
)

// Clock exposes the current virtual time. The Congestion Manager core and the
// protocol implementations depend only on this interface (plus TimerFactory),
// so they can also run against wall-clock time in micro-benchmarks.
type Clock interface {
	// Now returns the current virtual time measured from the start of the
	// simulation.
	Now() time.Duration
}

// Timer is a cancellable, resettable one-shot timer bound to a Clock.
type Timer interface {
	// Reset (re)arms the timer to fire after d. A zero or negative d fires
	// the timer at the current time.
	Reset(d time.Duration)
	// Stop cancels the timer if it is pending. Stopping an already-fired or
	// already-stopped timer is a no-op.
	Stop()
	// Pending reports whether the timer is currently armed.
	Pending() bool
}

// TimerFactory creates timers that invoke fn when they fire.
type TimerFactory interface {
	NewTimer(fn func()) Timer
}

// KindTimerFactory is optionally implemented by timer factories whose timers
// can be tagged with an event Kind for the profiler (Scheduler implements
// it). Use the package-level NewKindTimer helper to fall back to plain,
// untagged timers for factories that do not.
type KindTimerFactory interface {
	NewKindTimer(kind Kind, fn func()) Timer
}

// NewKindTimer creates a timer from tf tagged with kind when tf supports
// tagging (KindTimerFactory), and an ordinary untagged timer otherwise. The
// tag only feeds the profiler; timer semantics are identical either way.
func NewKindTimer(tf TimerFactory, kind Kind, fn func()) Timer {
	if ktf, ok := tf.(KindTimerFactory); ok {
		return ktf.NewKindTimer(kind, fn)
	}
	return tf.NewTimer(fn)
}

// Event is a handle to a scheduled callback.
//
// Lifetime: a handle is valid from the At/After call until the event fires or
// is cancelled. Once either has happened the Event may be recycled for a
// later scheduling, so callers must not retain or Cancel a handle past that
// point (the Timer type wraps this protocol for the common rearm pattern).
type Event struct {
	at time.Duration
	// stamp is the virtual time the event was inserted: Now for local
	// scheduling, the remote sender's insertion time for InjectAt. It is the
	// second heap key, before key and seq, so injected events sort exactly
	// where a single-scheduler run would have placed them.
	stamp time.Duration
	seq   uint64
	// key is a caller-chosen sort key breaking ties among events scheduled at
	// the same (at, stamp); zero for ordinary scheduling. Keyed events exist
	// for sharded determinism: two same-instant insertions on different
	// schedulers have no common insertion order, so the key (derived from
	// stable content — in practice the delivering link's identity) supplies
	// one that serial and sharded runs agree on.
	key uint32
	// sub is a second caller-chosen tie-break after key: a per-key sequence
	// number breaking ties among same-(at, stamp, key) events. In practice it
	// is the link-local delivery sequence netsim assigns per link direction,
	// which makes the serial/sharded agreement on hand-up order explicit
	// instead of leaning on scheduler insertion order (seq); zero for
	// ordinary scheduling.
	sub uint32
	// index is the heap position while queued, notQueued after firing or
	// recycling, and canceledIdx once Cancel has run (folding the canceled
	// flag into the index saves a separate bool). Adding the sub and kind
	// fields grew the Event from 72 to 80 bytes — a measurable but small cost
	// on the tie-heavy churn benchmark, accepted in exchange for the explicit
	// delivery sequence and per-kind cost attribution.
	index int32
	// kind classifies the event for the optional profiler (KindOther when
	// untagged); it packs into padding next to index.
	kind  Kind
	s     *Scheduler
	fn    func()
	argFn func(any)
	arg   any
}

const (
	notQueued   = -1
	canceledIdx = -2
)

// Time returns the virtual time at which the event is scheduled to run.
func (e *Event) Time() time.Duration { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.index == canceledIdx }

// Cancel prevents the event from running and removes it from the scheduler's
// queue immediately, so cancelled events cost nothing until their timestamp.
// Cancelling an event that has already run or been cancelled is a no-op.
func (e *Event) Cancel() {
	if e.index == canceledIdx {
		return
	}
	if e.index >= 0 && e.s != nil {
		e.s.removeEvent(int(e.index))
		e.s.recycle(e)
	}
	e.index = canceledIdx
}

// fire invokes the event's callback.
func (e *Event) fire() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.argFn(e.arg)
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; all simulated components run in virtual time on a single
// goroutine, which mirrors the paper's single-host kernel module and keeps the
// reproduction deterministic.
type Scheduler struct {
	now      time.Duration
	events   []*Event // 4-ary min-heap ordered by (at, seq) / (at, stamp, key, sub, seq)
	free     []*Event // recycled events; bounds steady-state allocation at zero
	seq      uint64
	executed uint64
	limit    uint64 // safety valve against runaway simulations; 0 = no limit
	// prof, when non-nil, receives per-kind wall-clock aggregates for every
	// fired event (see EnableProfile). Disarmed cost: one nil check in Step.
	prof *Profile
	// stamped selects the multi-key comparator that orders same-timestamp
	// events by insertion stamp, then sort key and sub-sequence, before seq.
	// It flips on the
	// first InjectAt or AtArgKeyed and never back: until then stamps are
	// nondecreasing in seq and every key is zero, so both comparators
	// produce the same order (which also makes the mid-run flip safe — the
	// heap is valid under either), and simulations that use neither keyed
	// scheduling nor injection never pay for the extra comparisons.
	stamped bool
}

// NewScheduler returns a scheduler with the virtual clock at zero.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() time.Duration { return s.now }

// Len returns the number of pending events. Cancelled events are removed
// eagerly and do not count.
func (s *Scheduler) Len() int { return len(s.events) }

// Executed returns the total number of events that have run.
func (s *Scheduler) Executed() uint64 { return s.executed }

// SetEventLimit sets a safety limit on the number of events executed by Run
// and RunUntil; 0 disables the limit. Exceeding the limit causes a panic,
// which in practice indicates a livelocked simulation (for example a
// zero-delay event loop).
func (s *Scheduler) SetEventLimit(n uint64) { s.limit = n }

// ---------------------------------------------------------------------------
// 4-ary min-heap keyed by (at, seq), with all comparisons inlined.
//
// A 4-ary heap halves the tree depth of a binary heap, trading slightly more
// comparisons per level for far fewer cache-missing levels — the standard
// choice for timer wheels backing discrete-event simulators.
// ---------------------------------------------------------------------------

func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func eventLessStamped(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.stamp != b.stamp {
		return a.stamp < b.stamp
	}
	if a.key != b.key {
		return a.key < b.key
	}
	if a.sub != b.sub {
		return a.sub < b.sub
	}
	return a.seq < b.seq
}

func (s *Scheduler) heapPush(ev *Event) {
	ev.index = int32(len(s.events))
	s.events = append(s.events, ev)
	s.siftUp(int(ev.index))
}

// heapPop removes and returns the minimum event. The caller guarantees the
// heap is non-empty.
func (s *Scheduler) heapPop() *Event {
	h := s.events
	ev := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	s.events = h[:n]
	ev.index = notQueued
	if n > 0 {
		last.index = 0
		s.events[0] = last
		s.siftDown(0)
	}
	return ev
}

// removeEvent deletes the event at heap index i (used by Cancel).
func (s *Scheduler) removeEvent(i int) {
	h := s.events
	n := len(h) - 1
	removed := h[i]
	last := h[n]
	h[n] = nil
	s.events = h[:n]
	removed.index = notQueued
	if i != n {
		last.index = int32(i)
		s.events[i] = last
		// The moved element may need to go either direction.
		s.siftDown(i)
		s.siftUp(int(last.index))
	}
}

// The sift loops exist twice — once per comparator — because the comparison
// sits in the innermost loop of the whole simulator: dispatching through a
// function value (or loading the unused stamp field on every compare) costs
// ~20% on tie-heavy workloads, measured by BenchmarkScaleEventChurn. The
// bodies must stay textually identical apart from the eventLess call.

func (s *Scheduler) siftUp(i int) {
	if s.stamped {
		s.siftUpStamped(i)
		return
	}
	h := s.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h[parent]
		if !eventLess(ev, p) {
			break
		}
		h[i] = p
		p.index = int32(i)
		i = parent
	}
	h[i] = ev
	ev.index = int32(i)
}

func (s *Scheduler) siftDown(i int) {
	if s.stamped {
		s.siftDownStamped(i)
		return
	}
	h := s.events
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		// Find the smallest of up to four children.
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(h[c], h[min]) {
				min = c
			}
		}
		child := h[min]
		if !eventLess(child, ev) {
			break
		}
		h[i] = child
		child.index = int32(i)
		i = min
	}
	h[i] = ev
	ev.index = int32(i)
}

func (s *Scheduler) siftUpStamped(i int) {
	h := s.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := h[parent]
		if !eventLessStamped(ev, p) {
			break
		}
		h[i] = p
		p.index = int32(i)
		i = parent
	}
	h[i] = ev
	ev.index = int32(i)
}

func (s *Scheduler) siftDownStamped(i int) {
	h := s.events
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLessStamped(h[c], h[min]) {
				min = c
			}
		}
		child := h[min]
		if !eventLessStamped(child, ev) {
			break
		}
		h[i] = child
		child.index = int32(i)
		i = min
	}
	h[i] = ev
	ev.index = int32(i)
}

// newEvent takes an event from the freelist (or allocates one) and resets it.
func (s *Scheduler) newEvent(t time.Duration) *Event {
	var ev *Event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &Event{}
	}
	ev.at = t
	ev.stamp = s.now
	ev.key = 0
	ev.sub = 0
	ev.kind = KindOther
	ev.seq = s.seq
	ev.index = notQueued
	ev.s = s
	s.seq++
	return ev
}

// recycle returns a fired or cancelled event to the freelist. Callback and
// argument references are dropped so recycled events retain nothing.
func (s *Scheduler) recycle(ev *Event) {
	ev.fn = nil
	ev.argFn = nil
	ev.arg = nil
	s.free = append(s.free, ev)
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// runs the event at the current time (it is clamped to Now).
func (s *Scheduler) At(t time.Duration, fn func()) *Event {
	if fn == nil {
		panic("simtime: At called with nil function")
	}
	if t < s.now {
		t = s.now
	}
	ev := s.newEvent(t)
	ev.fn = fn
	s.heapPush(ev)
	return ev
}

// After schedules fn to run after delay d from the current virtual time.
func (s *Scheduler) After(d time.Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// AtArg schedules fn(arg) at absolute virtual time t. Passing the argument
// through the event instead of a closure lets hot paths (one event per
// packet) schedule without allocating: a pointer-shaped arg boxes into the
// interface for free.
func (s *Scheduler) AtArg(t time.Duration, fn func(any), arg any) *Event {
	if fn == nil {
		panic("simtime: AtArg called with nil function")
	}
	if t < s.now {
		t = s.now
	}
	ev := s.newEvent(t)
	ev.argFn = fn
	ev.arg = arg
	s.heapPush(ev)
	return ev
}

// AfterArg schedules fn(arg) after delay d from the current virtual time.
func (s *Scheduler) AfterArg(d time.Duration, fn func(any), arg any) *Event {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now+d, fn, arg)
}

// AtKind schedules fn at absolute virtual time t, tagged with an event kind
// for the profiler (see Kind). Ordering is identical to At.
func (s *Scheduler) AtKind(t time.Duration, kind Kind, fn func()) *Event {
	ev := s.At(t, fn)
	ev.kind = kind
	return ev
}

// AfterKind schedules fn after delay d, tagged with an event kind.
func (s *Scheduler) AfterKind(d time.Duration, kind Kind, fn func()) *Event {
	ev := s.After(d, fn)
	ev.kind = kind
	return ev
}

// AtArgKind schedules fn(arg) at absolute virtual time t, tagged with an
// event kind.
func (s *Scheduler) AtArgKind(t time.Duration, kind Kind, fn func(any), arg any) *Event {
	ev := s.AtArg(t, fn, arg)
	ev.kind = kind
	return ev
}

// AfterArgKind schedules fn(arg) after delay d, tagged with an event kind.
func (s *Scheduler) AfterArgKind(d time.Duration, kind Kind, fn func(any), arg any) *Event {
	ev := s.AfterArg(d, fn, arg)
	ev.kind = kind
	return ev
}

// AtArgKeyed schedules fn(arg) at absolute virtual time t with a sort key and
// sub-sequence: among events sharing both timestamp and insertion stamp,
// lower keys run first, then lower subs, before any seq (insertion-order)
// consideration. It exists for events that must order identically in serial
// and sharded executions — two events inserted at the same instant on
// different shards have no common insertion order, so a key derived from
// stable content (the delivering link) supplies the order both runs agree on,
// and the sub-sequence (the link-local delivery number) orders multiple
// same-instant hand-ups of the same link direction. netsim keys every
// packet-delivery hand-up with the link direction's identity and delivery
// sequence; see Link.SortKey. The event is tagged with kind for the profiler.
func (s *Scheduler) AtArgKeyed(t time.Duration, key, sub uint32, kind Kind, fn func(any), arg any) *Event {
	if fn == nil {
		panic("simtime: AtArgKeyed called with nil function")
	}
	if t < s.now {
		t = s.now
	}
	// Keys carry information only under the multi-key comparator; switch to
	// it permanently, exactly as InjectAt does (see Scheduler.stamped — the
	// flip is safe because every already-queued event has key zero and local
	// stamps are nondecreasing in seq, so the heap is valid under both
	// comparators at the moment of the flip).
	s.stamped = true
	ev := s.newEvent(t)
	ev.key = key
	ev.sub = sub
	ev.kind = kind
	ev.argFn = fn
	ev.arg = arg
	s.heapPush(ev)
	return ev
}

// AfterArgKeyed schedules fn(arg) after delay d with a sort key and
// sub-sequence (AtArgKeyed).
func (s *Scheduler) AfterArgKeyed(d time.Duration, key, sub uint32, kind Kind, fn func(any), arg any) *Event {
	if d < 0 {
		d = 0
	}
	return s.AtArgKeyed(s.now+d, key, sub, kind, fn, arg)
}

// InjectAt schedules fn(arg) at absolute time t with an explicit insertion
// stamp, sort key and sub-sequence. It is the cross-scheduler handoff used by sharded
// execution: the sending shard computed the event (a packet delivery) at
// virtual time stamp, and the receiving shard schedules it during a
// synchronization barrier. The stamp slots the event among same-timestamp
// local events exactly where a single-scheduler run would have placed it —
// local events inserted earlier than stamp sort first, later ones after — and
// the key breaks the remaining tie against events inserted at *exactly* the
// stamp instant, provided those were scheduled with the same key discipline
// (AtArgKeyed): a serial run orders such double-ties by key too, so both
// executions agree without either observing the other's insertion order.
// (Unkeyed local events at the double-tie instant sort by key zero, i.e.
// before any keyed injection, in both runs alike.) The sub-sequence orders
// multiple same-instant deliveries carrying the same key — the sender
// assigns it from the link direction's own delivery counter, so serial and
// sharded runs read off the same value.
//
// Injecting into the past (t < Now) panics: it means the conservative
// synchronization invariant (arrival >= sender clock + lookahead >= receiver
// clock) was violated, and executing the event would silently diverge from
// the serial run instead.
func (s *Scheduler) InjectAt(t, stamp time.Duration, key, sub uint32, kind Kind, fn func(any), arg any) *Event {
	if fn == nil {
		panic("simtime: InjectAt called with nil function")
	}
	if t < s.now {
		panic(fmt.Sprintf("simtime: InjectAt(%v) into the past at t=%v (conservative sync violated)", t, s.now))
	}
	if stamp > t {
		stamp = t
	}
	// Injection is what makes stamps carry information; switch to the
	// stamp-aware comparator from here on (see Scheduler.stamped).
	s.stamped = true
	ev := s.newEvent(t)
	ev.stamp = stamp
	ev.key = key
	ev.sub = sub
	ev.kind = kind
	ev.argFn = fn
	ev.arg = arg
	s.heapPush(ev)
	return ev
}

// Step executes the earliest pending event, advancing the virtual clock to its
// timestamp. It returns false if no events remain.
func (s *Scheduler) Step() bool {
	if len(s.events) == 0 {
		return false
	}
	ev := s.heapPop()
	if ev.at > s.now {
		s.now = ev.at
	}
	s.executed++
	if s.limit != 0 && s.executed > s.limit {
		panic(fmt.Sprintf("simtime: event limit %d exceeded at t=%v", s.limit, s.now))
	}
	if s.prof == nil {
		ev.fire()
	} else {
		s.fireProfiled(ev)
	}
	// Recycle only after the callback: an executing event is never in the
	// freelist, so a callback that schedules new work cannot be handed its
	// own still-running event.
	if ev.index != canceledIdx {
		s.recycle(ev)
	}
	return true
}

// Run executes events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with timestamps at or before t, then advances the
// clock to exactly t. Events scheduled during execution are honoured if they
// fall within the horizon.
func (s *Scheduler) RunUntil(t time.Duration) {
	for len(s.events) > 0 && s.events[0].at <= t {
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor executes events for a span d of virtual time starting at Now.
func (s *Scheduler) RunFor(d time.Duration) {
	s.RunUntil(s.now + d)
}

// RunUntilBefore executes events with timestamps strictly before t and leaves
// the clock at the last executed event. It is the window-execution primitive
// of sharded runs: events at exactly t belong to the next window (a barrier at
// t may fire network dynamics that must order before them), so the clock is
// advanced to t separately with AdvanceTo once the barrier completes.
func (s *Scheduler) RunUntilBefore(t time.Duration) {
	for len(s.events) > 0 && s.events[0].at < t {
		s.Step()
	}
}

// AdvanceTo moves the clock forward to t without executing anything. It
// panics if an event earlier than t is still pending — advancing over it
// would skip it — so it doubles as the end-of-window assertion that
// RunUntilBefore really drained the window.
func (s *Scheduler) AdvanceTo(t time.Duration) {
	if len(s.events) > 0 && s.events[0].at < t {
		panic(fmt.Sprintf("simtime: AdvanceTo(%v) over pending event at %v", t, s.events[0].at))
	}
	if t > s.now {
		s.now = t
	}
}

// NewTimer implements TimerFactory: the returned timer schedules fn on the
// scheduler when it fires. Timer events are untagged (KindOther); use
// NewKindTimer to classify them for the profiler.
func (s *Scheduler) NewTimer(fn func()) Timer {
	return s.NewKindTimer(KindOther, fn)
}

// NewKindTimer implements KindTimerFactory: like NewTimer, but every firing
// of the returned timer is tagged with kind for the profiler.
func (s *Scheduler) NewKindTimer(kind Kind, fn func()) Timer {
	if fn == nil {
		panic("simtime: NewTimer called with nil function")
	}
	t := &simTimer{s: s, kind: kind, fn: fn}
	// One wrapper closure per timer, built up front so Reset never allocates.
	t.fire = func() {
		t.ev = nil
		t.fn()
	}
	return t
}

type simTimer struct {
	s    *Scheduler
	kind Kind
	fn   func()
	fire func()
	ev   *Event
}

func (t *simTimer) Reset(d time.Duration) {
	t.Stop()
	t.ev = t.s.AfterKind(d, t.kind, t.fire)
}

func (t *simTimer) Stop() {
	if t.ev != nil {
		t.ev.Cancel()
		t.ev = nil
	}
}

func (t *simTimer) Pending() bool { return t.ev != nil && !t.ev.Canceled() }

// Seconds converts a duration to floating-point seconds. It is a convenience
// used throughout the experiment harness when reporting rates.
func Seconds(d time.Duration) float64 { return d.Seconds() }

// FromSeconds converts floating-point seconds to a duration, saturating at the
// maximum representable duration.
func FromSeconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	f := s * float64(time.Second)
	if f > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(f)
}

// WallClock adapts the host's real clock to the Clock interface. It is used by
// the Go micro-benchmarks (bench_test.go) that measure the real cost of CM
// operations, mirroring the paper's CPU-overhead experiments.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a WallClock whose zero is the moment of the call.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the elapsed wall-clock time since the WallClock was created.
func (w *WallClock) Now() time.Duration { return time.Since(w.start) }

// NewTimer implements TimerFactory using real time.AfterFunc timers.
func (w *WallClock) NewTimer(fn func()) Timer {
	return &wallTimer{fn: fn}
}

type wallTimer struct {
	fn func()
	t  *time.Timer
}

func (t *wallTimer) Reset(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if t.t == nil {
		t.t = time.AfterFunc(d, t.fn)
		return
	}
	t.t.Reset(d)
}

func (t *wallTimer) Stop() {
	if t.t != nil {
		t.t.Stop()
	}
}

func (t *wallTimer) Pending() bool {
	// The standard library does not expose pending state; callers in the
	// wall-clock configuration do not rely on it.
	return false
}

var (
	_ Clock            = (*Scheduler)(nil)
	_ TimerFactory     = (*Scheduler)(nil)
	_ KindTimerFactory = (*Scheduler)(nil)
	_ Clock            = (*WallClock)(nil)
	_ TimerFactory     = (*WallClock)(nil)
)
