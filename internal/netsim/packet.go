// Package netsim is the packet-level network substrate for the Congestion
// Manager reproduction. It models what the paper's testbed provided in
// hardware: hosts connected by links with configurable bandwidth, propagation
// delay, drop-tail router queues, random (Dummynet-style) loss, and optional
// ECN marking.
//
// All components are driven by a simtime.Scheduler; nothing in this package
// uses wall-clock time, so experiments are deterministic.
package netsim

import (
	"fmt"
	"sync"
	"time"
)

// Protocol identifies the transport protocol of a packet, mirroring the IP
// protocol field that the paper's IP-output hook uses to locate the CM flow.
type Protocol uint8

// Transport protocols used by the reproduction.
const (
	ProtoTCP Protocol = 6
	ProtoUDP Protocol = 17
	// ProtoRoute carries routing-protocol messages (internal/routeproto).
	// Routing traffic rides the same links and queues as data traffic, so it
	// shares fate with it; the number is OSPF's IP protocol number, reused
	// here for any control-plane exchange.
	ProtoRoute Protocol = 89
)

// String returns the conventional protocol name.
func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoRoute:
		return "route"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// Addr is a transport endpoint address: a host name stands in for an IP
// address, plus a transport port. The CM groups flows into macroflows by
// destination host, exactly as the paper's default per-destination
// aggregation does.
type Addr struct {
	Host string
	Port int
}

// String formats the address as host:port.
func (a Addr) String() string { return fmt.Sprintf("%s:%d", a.Host, a.Port) }

// FlowKey identifies a unidirectional transport flow by its 5-tuple minus the
// addresses' order: protocol, source and destination. It is the key the IP
// output routine hands to the CM to find the flow to charge (paper §2.1.3).
type FlowKey struct {
	Proto Protocol
	Src   Addr
	Dst   Addr
}

// String formats the flow key for diagnostics.
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s->%s", k.Proto, k.Src, k.Dst)
}

// Reverse returns the key of the reverse-direction flow.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src}
}

// Packet is a network-layer datagram. Size is the on-the-wire size in bytes
// (headers plus payload) and is what links serialise and queues count.
// Payload carries the transport-layer unit (a TCP segment, a UDP datagram)
// and is opaque to the network.
//
// Hot paths obtain packets from a pool with NewPacket and hand them back with
// Release once consumed (see docs/PERF.md for the ownership rules). Packets
// built with a literal are never pooled; Release on them is a no-op, so test
// code may treat packets as ordinary garbage-collected values.
type Packet struct {
	Proto Protocol
	Src   Addr
	Dst   Addr
	// Size is the total wire size in bytes, including transport and IP
	// headers. Links use it for serialisation delay and queues for
	// occupancy accounting.
	Size int
	// Payload is the transport-layer content (e.g. *tcp.Segment).
	Payload any

	// ECT marks the packet as ECN-capable transport (the sender supports
	// RFC 2481-style marking, which the paper's cm_update can report).
	ECT bool
	// CE is the congestion-experienced mark set by a router queue instead
	// of dropping when ECN is enabled.
	CE bool

	// Control marks transport control packets (pure TCP ACKs, application
	// feedback packets) that are not data transmissions of a CM flow; the IP
	// output hook does not charge them to a macroflow.
	Control bool

	// TTL is the remaining hop budget. The originating host's IP output
	// routine sets it to DefaultTTL when zero; every forwarding hop decrements
	// it and discards the packet when it reaches zero, so routing loops
	// cannot circulate packets forever.
	TTL int

	// ChargeBytes is the number of bytes the Congestion Manager should
	// charge for this transmission (the transport payload). Zero means
	// "charge the full wire size". Keeping CM charging in payload bytes
	// makes cm_notify consistent with the payload-byte feedback clients
	// report through cm_update.
	ChargeBytes int

	// Enqueued records when the packet entered the first queue; used for
	// queueing-delay statistics.
	Enqueued time.Duration

	// pooled marks packets obtained from the pool; only those are returned
	// to it by Release, and the flag doubles as a double-release guard.
	pooled bool
}

// packetPool recycles Packet objects across transmit/deliver cycles so the
// per-packet hot path allocates nothing in steady state. sync.Pool keeps the
// freelist safe for the package-parallel test runner; within one simulation
// everything is single-threaded.
var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// NewPacket returns a zeroed packet from the pool. The caller owns it until
// it is handed to Host.Output / Link.Send, after which the network owns it:
// the link releases packets it drops, and the final receiver (the host demux)
// releases packets after delivery.
func NewPacket() *Packet {
	p := packetPool.Get().(*Packet)
	*p = Packet{pooled: true}
	return p
}

// Release returns a pooled packet to the pool. It is a no-op for packets not
// obtained from NewPacket and for packets already released, so callers at
// end-of-life points can release unconditionally. The packet must not be used
// after Release.
func (p *Packet) Release() {
	if p == nil || !p.pooled {
		return
	}
	p.pooled = false
	p.Payload = nil
	packetPool.Put(p)
}

// Key returns the packet's flow key.
func (p *Packet) Key() FlowKey {
	return FlowKey{Proto: p.Proto, Src: p.Src, Dst: p.Dst}
}

// Clone returns a shallow copy of the packet drawn from the pool. Links never
// modify payloads, so a shallow copy is sufficient for duplication scenarios.
// The copy has an independent lifetime: both it and the original must be
// released separately. A clone of an unpooled packet is itself unpooled, so
// clones compare equal to their source.
func (p *Packet) Clone() *Packet {
	q := packetPool.Get().(*Packet)
	*q = *p
	return q
}

// String formats a short description of the packet.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s->%s %dB", p.Proto, p.Src, p.Dst, p.Size)
}

// Receiver consumes packets delivered by a link. Hosts and protocol demuxers
// implement it.
type Receiver interface {
	Receive(pkt *Packet)
}

// ReceiverFunc adapts a function to the Receiver interface.
type ReceiverFunc func(pkt *Packet)

// Receive implements Receiver.
func (f ReceiverFunc) Receive(pkt *Packet) { f(pkt) }

// Sizes of protocol headers used when computing wire sizes. These follow the
// conventional IPv4 sizes the paper's testbed would have used.
const (
	IPHeaderSize  = 20
	TCPHeaderSize = 20
	UDPHeaderSize = 8
	// TCPTimestampOption is the extra header cost of RFC 1323 timestamps,
	// which the paper's TCP uses for RTT sampling.
	TCPTimestampOption = 12
	// DefaultMTU is the Ethernet MTU of the paper's testbed.
	DefaultMTU = 1500
	// DefaultMSS is the TCP maximum segment size on an Ethernet path with
	// timestamps enabled.
	DefaultMSS = DefaultMTU - IPHeaderSize - TCPHeaderSize - TCPTimestampOption
	// DefaultTTL is the initial hop budget stamped on packets whose sender
	// left TTL zero, matching the conventional IPv4 default.
	DefaultTTL = 64
)
