// Package app contains the network-adaptive applications used to evaluate the
// Congestion Manager, following §3 of the paper:
//
//   - an application-level feedback protocol (UDP receivers acknowledge data
//     so senders can call cm_update without any receiver-side system changes),
//   - a streaming layered audio/video server in both the ALF
//     (request/callback) and rate-callback modes (§3.4, §3.5),
//   - the adaptive vat interactive-audio architecture with a policer and a
//     drop-from-head application buffer (§3.6),
//   - a web-like file server and sequential-fetch client used for the shared
//     congestion state experiment (Figure 7),
//   - an on/off constant-bit-rate cross-traffic source used to vary the
//     available bandwidth in the adaptation experiments (Figures 8-10).
package app

import (
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/probe"
	"repro/internal/simtime"
	"repro/internal/udp"
)

// Report is the application-level acknowledgement a receiver returns to the
// sender. All UDP-based CM clients must provide such feedback (§3.1: "all
// UDP-based clients must implement application level data acknowledgements").
type Report struct {
	// TotalPackets and TotalBytes are cumulative receive counters.
	TotalPackets int64
	TotalBytes   int64
	// HighestSeq is the highest sequence number seen so far.
	HighestSeq int64
	// EchoSentAt echoes the SentAt timestamp of the most recently received
	// datagram, giving the sender an RTT sample.
	EchoSentAt time.Duration
}

// reportSize is the wire payload size of a feedback report.
const reportSize = 40

// FeedbackPolicy controls how often a receiver reports. The zero value
// acknowledges every packet immediately; Figure 10 uses delayed feedback
// (min(500 packets, 2000 ms)).
type FeedbackPolicy struct {
	// EveryPackets sends a report after this many unreported packets
	// (minimum 1).
	EveryPackets int
	// MaxDelay sends a report this long after the first unreported packet
	// even if EveryPackets has not been reached (0 disables the timer).
	MaxDelay time.Duration
}

func (p *FeedbackPolicy) fillDefaults() {
	if p.EveryPackets <= 0 {
		p.EveryPackets = 1
	}
}

// Receiver is the receiving half of a UDP-based adaptive application: it
// counts arriving data, maintains a received-rate trace, and returns Reports
// to the data's source according to the feedback policy. No kernel or CM
// support is needed on the receiving host, matching the paper's
// no-receiver-changes deployment story.
type Receiver struct {
	sock   *udp.Socket
	sched  *simtime.Scheduler
	policy FeedbackPolicy

	totalPackets int64
	totalBytes   int64
	highestSeq   int64
	lastEcho     time.Duration
	unreported   int
	reportTimer  simtime.Timer
	dataSource   netsim.Addr
	haveSource   bool

	rate    *probe.RateEstimator
	onData  func(d *udp.Datagram)
	reports int64
}

// NewReceiver binds a feedback-generating receiver to (host, port).
func NewReceiver(h *node.Host, port int, policy FeedbackPolicy, rateWindow time.Duration) (*Receiver, error) {
	policy.fillDefaults()
	sock, err := udp.NewSocket(h, port)
	if err != nil {
		return nil, err
	}
	if rateWindow <= 0 {
		rateWindow = time.Second
	}
	r := &Receiver{
		sock:   sock,
		sched:  h.Clock(),
		policy: policy,
		rate:   probe.NewRateEstimator("received-rate", rateWindow),
	}
	// Reports are transport control traffic; they are never charged to a CM
	// macroflow on the receiving host (which typically has no CM at all).
	sock.MarkControl()
	sock.OnReceive(r.onDatagram)
	r.reportTimer = h.Clock().NewKindTimer(simtime.KindWorkloadApp, r.flushReport)
	return r, nil
}

// OnData registers an optional observer for every received datagram.
func (r *Receiver) OnData(fn func(d *udp.Datagram)) { r.onData = fn }

// Addr returns the receiver's bound address (where senders direct data).
func (r *Receiver) Addr() netsim.Addr { return r.sock.Local() }

// TotalBytes returns the cumulative bytes received.
func (r *Receiver) TotalBytes() int64 { return r.totalBytes }

// TotalPackets returns the cumulative packets received.
func (r *Receiver) TotalPackets() int64 { return r.totalPackets }

// ReportsSent returns the number of feedback reports transmitted.
func (r *Receiver) ReportsSent() int64 { return r.reports }

// RateSeries returns the received-rate trace (bytes/second samples).
func (r *Receiver) RateSeries() *probe.Series { return r.rate.Series() }

func (r *Receiver) onDatagram(from netsim.Addr, d *udp.Datagram) {
	if _, isReport := d.App.(Report); isReport {
		return // a sender should not loop reports back, but be safe
	}
	r.totalPackets++
	r.totalBytes += int64(d.Size)
	if d.Seq > r.highestSeq {
		r.highestSeq = d.Seq
	}
	r.lastEcho = d.SentAt
	r.dataSource = from
	r.haveSource = true
	r.unreported++
	r.rate.Record(r.sched.Now(), d.Size)
	if r.onData != nil {
		r.onData(d)
	}
	if r.unreported >= r.policy.EveryPackets {
		r.flushReport()
		return
	}
	if r.policy.MaxDelay > 0 && !r.reportTimer.Pending() {
		r.reportTimer.Reset(r.policy.MaxDelay)
	}
}

func (r *Receiver) flushReport() {
	if r.unreported == 0 || !r.haveSource {
		return
	}
	r.reportTimer.Stop()
	r.unreported = 0
	r.reports++
	rep := Report{
		TotalPackets: r.totalPackets,
		TotalBytes:   r.totalBytes,
		HighestSeq:   r.highestSeq,
		EchoSentAt:   r.lastEcho,
	}
	r.sock.SendTo(r.dataSource, &udp.Datagram{Size: reportSize, App: rep})
}

// Close unbinds the receiver's socket.
func (r *Receiver) Close() {
	r.reportTimer.Stop()
	r.sock.Close()
}

// UpdateFunc is how SenderFeedback reports converted feedback; it matches the
// signature of cm.CM.Update / libcm.Lib.Update / udp.CCSocket.Update with the
// flow bound in.
type UpdateFunc func(nsent, nrecd int, mode cm.LossMode, rtt time.Duration)

// SenderFeedback converts the receiver's cumulative Reports into the
// incremental (nsent, nrecd, lossmode, rtt) arguments of cm_update. The
// sender records every transmission with OnSend and feeds arriving reports to
// OnReport.
type SenderFeedback struct {
	update UpdateFunc
	clock  simtime.Clock

	// log of (seq, cumulative bytes sent including that seq), in send order.
	log          []sentRecord
	cumSent      int64
	coveredSent  int64
	reportedRecv int64

	// Statistics.
	updates    int64
	lossEvents int64
}

type sentRecord struct {
	seq int64
	cum int64
}

// NewSenderFeedback builds a feedback converter that calls update for every
// report.
func NewSenderFeedback(clock simtime.Clock, update UpdateFunc) *SenderFeedback {
	if clock == nil || update == nil {
		panic("app: NewSenderFeedback requires a clock and an update function")
	}
	return &SenderFeedback{update: update, clock: clock}
}

// OnSend records a transmission of size bytes with the given sequence number.
func (f *SenderFeedback) OnSend(seq int64, size int) {
	f.cumSent += int64(size)
	f.log = append(f.log, sentRecord{seq: seq, cum: f.cumSent})
}

// Updates returns the number of cm_update calls issued.
func (f *SenderFeedback) Updates() int64 { return f.updates }

// LossEvents returns the number of reports that indicated loss.
func (f *SenderFeedback) LossEvents() int64 { return f.lossEvents }

// OnReport converts one receiver report into a cm_update call.
func (f *SenderFeedback) OnReport(rep Report) {
	// Bytes covered by this report: everything sent up to HighestSeq.
	covered := f.coveredSent
	for len(f.log) > 0 && f.log[0].seq <= rep.HighestSeq {
		covered = f.log[0].cum
		f.log = f.log[1:]
	}
	nsent := covered - f.coveredSent
	nrecd := rep.TotalBytes - f.reportedRecv
	if nrecd < 0 {
		nrecd = 0
	}
	if nsent < nrecd {
		// Reordering can make the receiver's counter run ahead of the
		// highest-sequence bookkeeping; never report more received than
		// sent.
		nsent = nrecd
	}
	f.coveredSent = f.coveredSent + nsent
	f.reportedRecv += nrecd

	mode := cm.NoLoss
	if nsent > nrecd {
		mode = cm.TransientLoss
		f.lossEvents++
	}
	var rtt time.Duration
	if rep.EchoSentAt > 0 {
		rtt = f.clock.Now() - rep.EchoSentAt
		if rtt < 0 {
			rtt = 0
		}
	}
	if nsent == 0 && nrecd == 0 {
		// Nothing new; still useful as an RTT sample if present.
		if rtt > 0 {
			f.update(0, 0, cm.NoLoss, rtt)
			f.updates++
		}
		return
	}
	f.updates++
	f.update(int(nsent), int(nrecd), mode, rtt)
}

// HandleDatagram is a convenience for senders: if the datagram carries a
// Report it is consumed and true is returned.
func (f *SenderFeedback) HandleDatagram(d *udp.Datagram) bool {
	rep, ok := d.App.(Report)
	if !ok {
		return false
	}
	f.OnReport(rep)
	return true
}
