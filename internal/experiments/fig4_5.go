package experiments

import (
	"fmt"
	"time"

	"repro/internal/apicost"
	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Fig4Config parameterises the long-transfer throughput comparison of
// Figure 4: ttcp-style transfers of N buffers of 8 KB over the 100 Mbps
// testbed LAN, TCP/Linux vs TCP/CM.
type Fig4Config struct {
	// BufferCounts is the x axis (number of 8 KB buffers transmitted). The
	// paper sweeps 1e3 to 1e6; the default stops at 1e5 to keep the bench
	// quick — pass 1e6 explicitly for the full sweep.
	BufferCounts []int
	// BufferSize is the ttcp buffer size (8 KB in the paper).
	BufferSize int
	Deadline   time.Duration
}

func (c *Fig4Config) fillDefaults() {
	if len(c.BufferCounts) == 0 {
		c.BufferCounts = []int{1_000, 3_000, 10_000, 30_000, 100_000}
	}
	if c.BufferSize <= 0 {
		c.BufferSize = 8192
	}
	if c.Deadline <= 0 {
		c.Deadline = 4 * time.Hour
	}
}

// Fig4Point is one x-position of Figure 4 (and the input to Figure 5).
type Fig4Point struct {
	Buffers     int
	CMKBps      float64
	LinuxKBps   float64
	DiffPercent float64
}

// Fig4Result is the reproduction of Figure 4.
type Fig4Result struct {
	Config Fig4Config
	Points []Fig4Point
}

// Fig4Campaign is the declarative form of the Figure 4 sweep: the 100 Mbps
// testbed LAN as the base spec, a seed-paired string axis over the
// congestion controller and a list axis over the transfer size. The paper's
// ttcp runs used the era's default socket buffers (64 KB); the flow is
// receiver-window-limited on the LAN, which is what lets both stacks
// saturate the link with no queue-overflow losses.
func Fig4Campaign(cfg Fig4Config) sweep.Campaign {
	cfg.fillDefaults()
	lan := testbedLAN()
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    lan.Bandwidth,
			Delay:        lan.OneWayDelay,
			QueuePackets: lan.QueuePackets,
			Seed:         lan.Seed,
		},
		Workloads: []scenario.Workload{{
			Kind: scenario.KindBulk, From: "sender", To: "receiver",
			RecvWindow: 64 * 1024,
		}},
		Duration: cfg.Deadline,
		Seed:     lan.Seed,
	})
	base.Name = "fig4"
	sizes := make([]float64, len(cfg.BufferCounts))
	for i, buffers := range cfg.BufferCounts {
		sizes[i] = float64(buffers * cfg.BufferSize)
	}
	return sweep.Campaign{
		Name: "fig4",
		Base: &base,
		Axes: []sweep.Axis{
			{Param: "workload[0].cc", Strings: []string{scenario.CCCM, scenario.CCNative}},
			{Param: "workload[0].bytes", Values: sizes},
		},
		Metrics: []string{"flows[0].throughput_kbps", "flows[0].completed"},
	}
}

// RunFig4 executes the Figure 4 sweep through the campaign engine.
func RunFig4(cfg Fig4Config) Fig4Result {
	cfg.fillDefaults()
	res := Fig4Result{Config: cfg}
	cres, err := Fig4Campaign(cfg).Run(scenario.Runner{})
	if err != nil {
		return res
	}
	n := len(cfg.BufferCounts)
	for i, buffers := range cfg.BufferCounts {
		cmKBps := fig4Throughput(&cres.Points[i])
		linuxKBps := fig4Throughput(&cres.Points[n+i])
		diff := 0.0
		if linuxKBps > 0 {
			diff = 100 * (linuxKBps - cmKBps) / linuxKBps
		}
		res.Points = append(res.Points, Fig4Point{
			Buffers: buffers, CMKBps: cmKBps, LinuxKBps: linuxKBps, DiffPercent: diff,
		})
	}
	return res
}

// fig4Throughput reads the completed transfer's throughput from a point's
// raw result; a transfer that missed the deadline reports 0, as the original
// runner did.
func fig4Throughput(p *sweep.PointResult) float64 {
	if len(p.Results) == 0 {
		return 0
	}
	f := p.Results[0].Flows[0]
	if !f.Completed {
		return 0
	}
	return f.ThroughputKBps
}

// Table renders Figure 4.
func (r Fig4Result) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Buffers),
			fmt.Sprintf("%.0f", p.CMKBps),
			fmt.Sprintf("%.0f", p.LinuxKBps),
			fmt.Sprintf("%.2f%%", p.DiffPercent),
		})
	}
	return "Figure 4: 100 Mbps TCP throughput vs transfer length (8 KB buffers)\n" +
		formatTable([]string{"buffers", "TCP/CM KB/s", "TCP/Linux KB/s", "Linux advantage"}, rows)
}

// Fig5Config parameterises the CPU-utilisation comparison of Figure 5. The
// network side reuses the Figure 4 measurements; the end-system cost comes
// from the apicost model plus a one-time per-connection CM setup cost that is
// amortised over the run (the paper's microbenchmark found connection setup
// indistinguishable, so the constant is small).
type Fig5Config struct {
	Fig4 Fig4Config
	// Costs is the per-operation cost model (DefaultCosts if zero).
	Costs apicost.CostModel
	// CMSetupCost is the one-time extra cost of creating the CM flow and
	// macroflow state for a connection.
	CMSetupCost time.Duration
}

// Fig5Point is one x-position of Figure 5.
type Fig5Point struct {
	Buffers      int
	CMUtil       float64
	LinuxUtil    float64
	DiffPercentU float64 // percentage points of CPU
}

// Fig5Result is the reproduction of Figure 5.
type Fig5Result struct {
	Points []Fig5Point
}

// RunFig5 executes the Figure 5 comparison.
func RunFig5(cfg Fig5Config) Fig5Result {
	cfg.Fig4.fillDefaults()
	if cfg.Costs == (apicost.CostModel{}) {
		cfg.Costs = apicost.DefaultCosts()
	}
	if cfg.CMSetupCost <= 0 {
		cfg.CMSetupCost = 50 * time.Microsecond
	}
	fig4 := RunFig4(cfg.Fig4)
	res := Fig5Result{}
	payload := netsim.DefaultMSS
	for _, p := range fig4.Points {
		bytes := float64(p.Buffers * cfg.Fig4.BufferSize)
		linuxRate := p.LinuxKBps * 1024
		cmRate := p.CMKBps * 1024
		linuxUtil := apicost.CPUUtilization(apicost.TCPLinux, payload, linuxRate, cfg.Costs)
		cmUtil := apicost.CPUUtilization(apicost.TCPCM, payload, cmRate, cfg.Costs)
		if cmRate > 0 {
			duration := bytes / cmRate
			cmUtil += cfg.CMSetupCost.Seconds() / duration
		}
		if cmUtil > 1 {
			cmUtil = 1
		}
		res.Points = append(res.Points, Fig5Point{
			Buffers:      p.Buffers,
			CMUtil:       cmUtil,
			LinuxUtil:    linuxUtil,
			DiffPercentU: 100 * (cmUtil - linuxUtil),
		})
	}
	return res
}

// Table renders Figure 5.
func (r Fig5Result) Table() string {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Buffers),
			fmt.Sprintf("%.1f%%", 100*p.CMUtil),
			fmt.Sprintf("%.1f%%", 100*p.LinuxUtil),
			fmt.Sprintf("%.2f pp", p.DiffPercentU),
		})
	}
	return "Figure 5: CPU utilisation, TCP/CM vs TCP/Linux (100 Mbps saturation)\n" +
		formatTable([]string{"buffers", "TCP/CM CPU", "TCP/Linux CPU", "CM overhead"}, rows)
}
