package scenario

import (
	"fmt"
	"time"

	"repro/internal/netsim"
)

// This file holds the internet-scale hierarchical builders: the k-ary
// fat-tree datacenter fabric and the access/aggregation/core ISP tree. Both
// use RoutingHier, so per-node route tables stay O(children) and a 100k-host
// spec builds without the all-pairs BFS that exact routing needs.
//
// Node names encode the hierarchy as dotted suffixes, which is what the
// hierarchical router matches on: a fat-tree host "h0.e1.p2" lives under
// edge switch "e1.p2" in pod "p2", and an ISP host "h0.x1.a2" lives under
// access router "x1.a2" behind aggregation router "a2".

// FatTreeParams parameterises the k-ary fat-tree fabric.
type FatTreeParams struct {
	// K is the fat-tree arity (even, default 4): K pods of K/2 edge and K/2
	// aggregation switches, (K/2)² core switches, and HostsPerEdge hosts per
	// edge switch.
	K int
	// HostsPerEdge is the host count under each edge switch (default K/2,
	// the canonical fully-provisioned fat-tree).
	HostsPerEdge int
	// CC selects the congestion controller of all workloads (default CM).
	CC       string
	Duration time.Duration
	Seed     int64
}

func (p *FatTreeParams) fillDefaults() error {
	if p.K == 0 {
		p.K = 4
	}
	if p.K < 2 || p.K%2 != 0 {
		return fmt.Errorf("fat-tree arity k must be even and >= 2, got %d", p.K)
	}
	if p.HostsPerEdge == 0 {
		p.HostsPerEdge = p.K / 2
	}
	if p.HostsPerEdge < 1 {
		return fmt.Errorf("fat-tree hosts-per-edge must be >= 1, got %d", p.HostsPerEdge)
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	if p.Duration <= 0 {
		p.Duration = 10 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return nil
}

// FatTree builds the k-ary fat-tree: cores "c<i>" at the top, per pod p the
// aggregation switches "a<j>.p<p>" and edge switches "e<j>.p<p>", and hosts
// "h<m>.e<j>.p<p>" at the leaves. Aggregation switch j of every pod uplinks
// to cores [j·k/2, (j+1)·k/2), so each core reaches every pod through
// exactly one aggregation switch and pod-domain routing is unambiguous.
// Routing is hierarchical: aggregation switches cover their pod's name
// suffix (Domains["a<j>.p<p>"] = "p<p>"), edge switches cover their own
// name, and hosts hold nothing but a default route.
//
// The workload exercises every layer: each pod's first host streams to the
// same host one pod over (crossing the core), and, when the pod has a second
// edge switch, its first host sends a staggered bulk transfer across the
// aggregation layer to the pod's first host.
func FatTree(p FatTreeParams) (Spec, error) {
	if err := p.fillDefaults(); err != nil {
		return Spec{}, err
	}
	k := p.K
	half := k / 2
	hosts := k * half * p.HostsPerEdge
	spec := Spec{
		Name: "fattree",
		Description: fmt.Sprintf("k=%d fat-tree (%d hosts, %d switches): hierarchical routing, cross-pod and cross-edge traffic",
			k, hosts, k*k+half*half),
		Routing:  RoutingHier,
		Domains:  make(map[string]string, k*half),
		Duration: p.Duration,
		Seed:     p.Seed,
	}
	core := func(i int) string { return fmt.Sprintf("c%d", i) }
	agg := func(j, pod int) string { return fmt.Sprintf("a%d.p%d", j, pod) }
	edge := func(j, pod int) string { return fmt.Sprintf("e%d.p%d", j, pod) }
	host := func(m, j, pod int) string { return fmt.Sprintf("h%d.e%d.p%d", m, j, pod) }
	hostLink := netsim.LinkConfig{Bandwidth: 100 * netsim.Mbps, Delay: 20 * time.Microsecond, QueuePackets: 100}
	fabricLink := netsim.LinkConfig{Bandwidth: 100 * netsim.Mbps, Delay: 50 * time.Microsecond, QueuePackets: 120}

	for i := 0; i < half*half; i++ {
		spec.Routers = append(spec.Routers, core(i))
		spec.HierRoots = append(spec.HierRoots, core(i))
	}
	for pod := 0; pod < k; pod++ {
		for j := 0; j < half; j++ {
			a := agg(j, pod)
			spec.Routers = append(spec.Routers, a)
			spec.Domains[a] = fmt.Sprintf("p%d", pod)
			for c := 0; c < half; c++ {
				spec.Links = append(spec.Links, LinkSpec{A: core(j*half + c), B: a, LinkConfig: fabricLink})
			}
		}
		for j := 0; j < half; j++ {
			e := edge(j, pod)
			spec.Routers = append(spec.Routers, e)
			for a := 0; a < half; a++ {
				spec.Links = append(spec.Links, LinkSpec{A: agg(a, pod), B: e, LinkConfig: fabricLink})
			}
			for m := 0; m < p.HostsPerEdge; m++ {
				spec.Links = append(spec.Links, LinkSpec{A: e, B: host(m, j, pod), LinkConfig: hostLink})
			}
		}
	}
	for pod := 0; pod < k; pod++ {
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: KindStream, From: host(0, 0, pod), To: host(0, 0, (pod+1)%k), CC: p.CC,
		})
		if half > 1 {
			spec.Workloads = append(spec.Workloads, Workload{
				Kind: KindBulk, From: host(0, 1, pod), To: host(0, 0, pod),
				Bytes: 1 << 20, CC: p.CC,
				Start: time.Duration(pod+1) * 50 * time.Millisecond,
			})
		}
	}
	return spec, nil
}

// ISPParams parameterises the access/aggregation/core ISP tree.
type ISPParams struct {
	// Aggs is the number of aggregation routers under the core (default 4).
	Aggs int
	// AccessPerAgg is the number of access routers per aggregation router
	// (default 4).
	AccessPerAgg int
	// HostsPerAccess is the number of subscriber hosts per access router
	// (default 8). Aggs=16, AccessPerAgg=25, HostsPerAccess=250 is the
	// 100k-host configuration.
	HostsPerAccess int
	// Servers is the number of server hosts attached at the core (default 2).
	Servers int
	// Clients is the number of subscriber hosts that actually run a web-mix
	// workload toward the servers (default 16, capped at the host count);
	// the rest are passive topology.
	Clients int
	// RatePerSec is each client's mean request arrival rate (default 10).
	RatePerSec float64
	// Requests is each client's total request count (default 32).
	Requests int
	// MeanBytes is the mean response size (default 12 KB).
	MeanBytes int
	Duration  time.Duration
	Seed      int64
}

func (p *ISPParams) fillDefaults() error {
	if p.Aggs == 0 {
		p.Aggs = 4
	}
	if p.AccessPerAgg == 0 {
		p.AccessPerAgg = 4
	}
	if p.HostsPerAccess == 0 {
		p.HostsPerAccess = 8
	}
	if p.Servers == 0 {
		p.Servers = 2
	}
	if p.Aggs < 1 || p.AccessPerAgg < 1 || p.HostsPerAccess < 1 || p.Servers < 1 {
		return fmt.Errorf("isp tree needs positive aggs/access/hosts/servers, got %d/%d/%d/%d",
			p.Aggs, p.AccessPerAgg, p.HostsPerAccess, p.Servers)
	}
	if p.Clients == 0 {
		p.Clients = 16
	}
	if p.Clients < 0 {
		return fmt.Errorf("isp tree needs a non-negative client count, got %d", p.Clients)
	}
	if total := p.Aggs * p.AccessPerAgg * p.HostsPerAccess; p.Clients > total {
		p.Clients = total
	}
	if p.RatePerSec == 0 {
		p.RatePerSec = 10
	}
	if p.Requests <= 0 {
		p.Requests = 32
	}
	if p.MeanBytes <= 0 {
		p.MeanBytes = 12 << 10
	}
	if p.Duration <= 0 {
		p.Duration = 10 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return nil
}

// ISP builds the access tree: one core router ("core", the hierarchy root),
// aggregation routers "a<i>", access routers "x<j>.a<i>", subscriber hosts
// "h<m>.x<j>.a<i>", and servers "srv<s>" attached directly at the core. The
// dotted names make every router cover its own suffix, so no Domains map is
// needed: the core routes "h0.x1.a2" by its "a2" suffix, "a2" routes it by
// "x1.a2", and the access router holds the exact host entry. Clients spread
// across the access tree run web-mix request workloads against the servers —
// the CM's ensemble story at access-network scale.
func ISP(p ISPParams) (Spec, error) {
	if err := p.fillDefaults(); err != nil {
		return Spec{}, err
	}
	hosts := p.Aggs * p.AccessPerAgg * p.HostsPerAccess
	spec := Spec{
		Name: "isp",
		Description: fmt.Sprintf("ISP access tree (%d hosts, %d routers, %d servers): hierarchical routing, web-mix clients",
			hosts, 1+p.Aggs+p.Aggs*p.AccessPerAgg, p.Servers),
		Routing:   RoutingHier,
		HierRoots: []string{"core"},
		Duration:  p.Duration,
		Seed:      p.Seed,
	}
	aggName := func(i int) string { return fmt.Sprintf("a%d", i) }
	accName := func(j, i int) string { return fmt.Sprintf("x%d.a%d", j, i) }
	hostName := func(m, j, i int) string { return fmt.Sprintf("h%d.x%d.a%d", m, j, i) }
	backbone := netsim.LinkConfig{Bandwidth: 1000 * netsim.Mbps, Delay: 2 * time.Millisecond, QueuePackets: 200}
	feeder := netsim.LinkConfig{Bandwidth: 200 * netsim.Mbps, Delay: 1 * time.Millisecond, QueuePackets: 150}
	lastMile := netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: 5 * time.Millisecond, QueuePackets: 60}

	spec.Routers = append(spec.Routers, "core")
	for s := 0; s < p.Servers; s++ {
		spec.Links = append(spec.Links, LinkSpec{A: "core", B: fmt.Sprintf("srv%d", s), LinkConfig: backbone})
	}
	for i := 0; i < p.Aggs; i++ {
		spec.Routers = append(spec.Routers, aggName(i))
		spec.Links = append(spec.Links, LinkSpec{A: "core", B: aggName(i), LinkConfig: backbone})
		for j := 0; j < p.AccessPerAgg; j++ {
			spec.Routers = append(spec.Routers, accName(j, i))
			spec.Links = append(spec.Links, LinkSpec{A: aggName(i), B: accName(j, i), LinkConfig: feeder})
			for m := 0; m < p.HostsPerAccess; m++ {
				spec.Links = append(spec.Links, LinkSpec{A: accName(j, i), B: hostName(m, j, i), LinkConfig: lastMile})
			}
		}
	}
	// Clients stripe across aggregation routers first, then access routers,
	// then host slots, so even a handful of clients exercises distinct paths.
	for c := 0; c < p.Clients; c++ {
		i := c % p.Aggs
		j := (c / p.Aggs) % p.AccessPerAgg
		m := c / (p.Aggs * p.AccessPerAgg)
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: KindWebMix, From: hostName(m, j, i), To: fmt.Sprintf("srv%d", c%p.Servers),
			Flows: p.Requests, Rate: p.RatePerSec, Bytes: p.MeanBytes, CC: CCCM,
			Start: time.Duration(c) * 20 * time.Millisecond,
		})
	}
	return spec, nil
}

// intParam converts a float-valued scenario parameter to an integer,
// rejecting fractional values (a sweep axis like param.k=4.5 is a spec
// error, not something to round silently).
func intParam(name string, v float64) (int, error) {
	if v != float64(int(v)) {
		return 0, fmt.Errorf("parameter %q must be an integer, got %v", name, v)
	}
	return int(v), nil
}

// fatTreeFromParams adapts the generic name=value parameter map of the
// registry/CLI/sweep layer onto FatTreeParams.
func fatTreeFromParams(params map[string]float64) (Spec, error) {
	var p FatTreeParams
	for name, v := range params {
		var err error
		switch name {
		case "k":
			p.K, err = intParam(name, v)
		case "hosts":
			p.HostsPerEdge, err = intParam(name, v)
		case "duration":
			p.Duration = time.Duration(v * float64(time.Second))
		case "seed":
			var s int
			s, err = intParam(name, v)
			p.Seed = int64(s)
		default:
			return Spec{}, fmt.Errorf("unknown parameter %q (fattree takes k, hosts, duration, seed)", name)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	return FatTree(p)
}

// ispFromParams adapts the generic parameter map onto ISPParams.
func ispFromParams(params map[string]float64) (Spec, error) {
	var p ISPParams
	for name, v := range params {
		var err error
		switch name {
		case "aggs":
			p.Aggs, err = intParam(name, v)
		case "access":
			p.AccessPerAgg, err = intParam(name, v)
		case "hosts":
			p.HostsPerAccess, err = intParam(name, v)
		case "servers":
			p.Servers, err = intParam(name, v)
		case "clients":
			p.Clients, err = intParam(name, v)
		case "rate":
			p.RatePerSec = v
		case "requests":
			p.Requests, err = intParam(name, v)
		case "bytes":
			p.MeanBytes, err = intParam(name, v)
		case "duration":
			p.Duration = time.Duration(v * float64(time.Second))
		case "seed":
			var s int
			s, err = intParam(name, v)
			p.Seed = int64(s)
		default:
			return Spec{}, fmt.Errorf("unknown parameter %q (isp takes aggs, access, hosts, servers, clients, rate, requests, bytes, duration, seed)", name)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	return ISP(p)
}
