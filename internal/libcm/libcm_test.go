package libcm

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

func setup(t *testing.T, mode Mode) (*simtime.Scheduler, *cm.CM, *Lib) {
	t.Helper()
	s := simtime.NewScheduler()
	c := cm.New(s, s, cm.WithMTU(1000))
	l := New(c, s, mode)
	return s, c, l
}

func addrs(port int) (netsim.Addr, netsim.Addr) {
	return netsim.Addr{Host: "client", Port: 10000 + port}, netsim.Addr{Host: "server", Port: port}
}

func TestNewValidation(t *testing.T) {
	s := simtime.NewScheduler()
	c := cm.New(s, s)
	for _, fn := range []func(){
		func() { New(nil, s, ModeAuto) },
		func() { New(c, nil, ModeAuto) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAutoModeDeliversSendCallbacksAsync(t *testing.T) {
	s, c, l := setup(t, ModeAuto)
	src, dst := addrs(80)
	f := l.Open(netsim.ProtoUDP, src, dst)
	if l.CM() != c {
		t.Fatal("CM accessor wrong")
	}
	if l.MTU(f) != 1000 {
		t.Fatalf("MTU = %d", l.MTU(f))
	}

	var calls []cm.FlowID
	l.RegisterSend(f, func(id cm.FlowID) { calls = append(calls, id) })
	l.Request(f)
	// The grant is queued on the control socket; it must NOT have been
	// delivered synchronously inside Request (that is the point of the
	// user/kernel boundary).
	if len(calls) != 0 {
		t.Fatal("callback delivered synchronously; should wait for dispatch")
	}
	s.RunFor(time.Millisecond)
	if len(calls) != 1 || calls[0] != f {
		t.Fatalf("callback not delivered by auto dispatch: %v", calls)
	}
	st := l.Stats()
	if st.Selects != 1 || st.SendCallbacks != 1 || st.Dispatches != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestManualModeRequiresExplicitDispatch(t *testing.T) {
	s, _, l := setup(t, ModeManual)
	src, dst := addrs(81)
	f := l.Open(netsim.ProtoUDP, src, dst)
	var calls int
	l.RegisterSend(f, func(cm.FlowID) { calls++ })
	l.Request(f)
	s.RunFor(10 * time.Millisecond)
	if calls != 0 {
		t.Fatal("manual mode must not auto-dispatch")
	}
	if !l.Ready() {
		t.Fatal("control socket should be readable")
	}
	if n := l.Dispatch(); n != 1 || calls != 1 {
		t.Fatalf("Dispatch delivered %d callbacks, calls=%d", n, calls)
	}
	if l.Ready() {
		t.Fatal("socket should be drained")
	}
	if l.Dispatch() != 0 {
		t.Fatal("dispatch with nothing pending should deliver nothing")
	}
}

func TestSignalModeInvokesHandlerOnce(t *testing.T) {
	s, _, l := setup(t, ModeSignal)
	src, dst := addrs(82)
	f := l.Open(netsim.ProtoUDP, src, dst)
	var signals int
	var calls int
	l.SetSignalHandler(func() { signals++ })
	l.RegisterSend(f, func(cm.FlowID) { calls++ })
	c := l.CM()

	l.Request(f)
	// Another notification while the first signal is still pending must not
	// raise a second signal (the application has not drained yet).
	c.Update(f, 1000, 1000, cm.NoLoss, 50*time.Millisecond)
	s.RunFor(time.Millisecond)
	if signals != 1 {
		t.Fatalf("signals = %d, want 1", signals)
	}
	if calls != 0 {
		t.Fatal("signal mode should not deliver callbacks until Dispatch")
	}
	l.Dispatch()
	if calls != 1 {
		t.Fatalf("calls after dispatch = %d", calls)
	}
	if l.Stats().Signals != 1 {
		t.Fatalf("stats.Signals = %d", l.Stats().Signals)
	}
}

func TestBatchedSendDrain(t *testing.T) {
	// Several flows become ready before the application drains; a single
	// ioctl must return all of them (reducing system calls, §2.2.2).
	s, c, l := setup(t, ModeManual)
	var order []cm.FlowID
	var flows []cm.FlowID
	for i := 0; i < 4; i++ {
		// Separate destination hosts so each flow has its own macroflow and
		// its own 1-MTU initial window; all four grants arrive at once.
		src := netsim.Addr{Host: "client", Port: 10100 + i}
		dst := netsim.Addr{Host: "server" + string(rune('a'+i)), Port: 100 + i}
		f := l.Open(netsim.ProtoUDP, src, dst)
		l.RegisterSend(f, func(id cm.FlowID) { order = append(order, id) })
		flows = append(flows, f)
	}
	_ = c
	l.BulkRequest(flows)
	s.RunFor(time.Millisecond)
	ioctlsBefore := l.Stats().Ioctls
	n := l.Dispatch()
	if n != 4 || len(order) != 4 {
		t.Fatalf("dispatch delivered %d callbacks, want 4", n)
	}
	st := l.Stats()
	if st.Ioctls-ioctlsBefore != 1 {
		t.Fatalf("draining 4 send grants should cost exactly 1 ioctl, cost %d", st.Ioctls-ioctlsBefore)
	}
	if st.MaxSendBatch != 4 {
		t.Fatalf("MaxSendBatch = %d, want 4", st.MaxSendBatch)
	}
	if st.Selects != 1 {
		t.Fatalf("Selects = %d, want 1", st.Selects)
	}
}

func TestStatusCoalescingKeepsOnlyLatest(t *testing.T) {
	s, c, l := setup(t, ModeManual)
	src, dst := addrs(90)
	f := l.Open(netsim.ProtoUDP, src, dst)
	var got []cm.Status
	l.RegisterUpdate(f, func(_ cm.FlowID, st cm.Status) { got = append(got, st) })
	l.Thresh(f, 1.0001, 1.0001) // effectively report every change

	// Two rate changes arrive before the application drains; only the
	// current status matters.
	c.Update(f, 1000, 1000, cm.NoLoss, 100*time.Millisecond)
	c.Update(f, 2000, 2000, cm.NoLoss, 100*time.Millisecond)
	s.RunFor(time.Millisecond)
	l.Dispatch()
	if len(got) != 1 {
		t.Fatalf("coalescing should deliver exactly one status, got %d", len(got))
	}
	latest, _ := c.Query(f)
	if got[0].CWND != latest.CWND {
		t.Fatalf("delivered stale status: %+v vs %+v", got[0], latest)
	}
	if l.Stats().UpdateCallbacks != 1 {
		t.Fatalf("UpdateCallbacks = %d", l.Stats().UpdateCallbacks)
	}
}

func TestThreshSuppressesSmallChangesThroughLib(t *testing.T) {
	s, c, l := setup(t, ModeAuto)
	src, dst := addrs(91)
	f := l.Open(netsim.ProtoUDP, src, dst)
	var updates int
	l.RegisterUpdate(f, func(cm.FlowID, cm.Status) { updates++ })
	l.Thresh(f, 4.0, 4.0)
	c.Update(f, 1000, 1000, cm.NoLoss, 100*time.Millisecond)
	s.RunFor(time.Millisecond)
	first := updates
	if first != 1 {
		t.Fatalf("baseline report missing, updates=%d", first)
	}
	// A modest window change does not cross the 4x threshold.
	c.Update(f, 1000, 1000, cm.NoLoss, 100*time.Millisecond)
	s.RunFor(time.Millisecond)
	if updates != first {
		t.Fatal("sub-threshold change should not reach the application")
	}
}

func TestLibUpdateNotifyQueryCountIoctls(t *testing.T) {
	s, c, l := setup(t, ModeManual)
	src, dst := addrs(92)
	f := l.Open(netsim.ProtoUDP, src, dst)
	l.Notify(f, 500)
	l.Update(f, 500, 500, cm.NoLoss, 10*time.Millisecond)
	if _, ok := l.Query(f); !ok {
		t.Fatal("Query failed")
	}
	l.SetWeight(f, 2)
	l.BulkUpdate([]cm.UpdateArgs{{Flow: f, Sent: 100, Received: 100}})
	st := l.Stats()
	if st.Ioctls != 5 {
		t.Fatalf("Ioctls = %d, want 5 (notify, update, query, setweight, bulkupdate)", st.Ioctls)
	}
	if c.MacroflowOf(f).Outstanding() != 0 {
		t.Fatal("feedback should have cleared outstanding bytes")
	}
	_ = s
}

func TestCloseCleansUpState(t *testing.T) {
	s, c, l := setup(t, ModeManual)
	src, dst := addrs(93)
	f := l.Open(netsim.ProtoUDP, src, dst)
	l.RegisterSend(f, func(cm.FlowID) {})
	l.Request(f)
	s.RunFor(time.Millisecond)
	l.Close(f)
	if c.FlowCount() != 0 {
		t.Fatal("flow should be closed in the CM")
	}
	// Draining after close must not call back into a dead flow.
	if l.Dispatch() != 0 {
		t.Fatal("no callbacks should be delivered for closed flows")
	}
}

func TestAutoDispatchHandlesCallbackGeneratedWork(t *testing.T) {
	// A send callback that immediately requests again (and is granted
	// because the window is open) must trigger another dispatch rather than
	// being lost or recursing.
	s, c, l := setup(t, ModeAuto)
	src, dst := addrs(94)
	f := l.Open(netsim.ProtoUDP, src, dst)
	sends := 0
	l.RegisterSend(f, func(id cm.FlowID) {
		sends++
		if sends < 3 {
			// Decline the grant (so the window stays open) and ask again.
			l.Notify(id, 0)
			l.Request(id)
		}
	})
	l.Request(f)
	s.RunFor(10 * time.Millisecond)
	if sends != 3 {
		t.Fatalf("sends = %d, want 3", sends)
	}
	if l.Stats().Dispatches < 2 {
		t.Fatalf("follow-up work should be handled by additional dispatches, got %d", l.Stats().Dispatches)
	}
	_ = c
}

func TestOpenCostsAccounting(t *testing.T) {
	_, _, l := setup(t, ModeManual)
	src, dst := addrs(95)
	f := l.Open(netsim.ProtoUDP, src, dst)
	l.Close(f)
	st := l.Stats()
	// One syscall for the control socket at New, one per open, one per close.
	if st.Syscalls != 3 {
		t.Fatalf("Syscalls = %d, want 3", st.Syscalls)
	}
}
