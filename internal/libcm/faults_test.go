package libcm

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
)

// TestDroppedSendGrantDoesNotStrandFlow: a cmapp_send notification lost on
// the kernel/user crossing kills that grant, but the flow must stay usable —
// a fresh cm_request gets a fresh grant through.
func TestDroppedSendGrantDoesNotStrandFlow(t *testing.T) {
	s, c, l := setup(t, ModeAuto)
	in := NewInjector(42)
	l.SetInjector(in)
	src, dst := addrs(70)
	f := l.Open(netsim.ProtoUDP, src, dst)
	var sends int
	l.RegisterSend(f, func(cm.FlowID) { sends++ })

	in.SetRates(1, 0, 0) // drop everything
	l.Request(f)
	s.RunFor(10 * time.Millisecond)
	if sends != 0 {
		t.Fatal("dropped notification still delivered a callback")
	}
	if in.Stats().DroppedSends != 1 {
		t.Fatalf("DroppedSends = %d", in.Stats().DroppedSends)
	}

	// The application's recovery move is simply to ask again. The dead grant
	// still occupies the 1-MTU initial window, so the re-request is granted
	// once the CM's grant timeout (500ms) reclaims it.
	in.SetRates(0, 0, 0)
	l.Request(f)
	s.RunFor(2 * time.Second)
	if sends != 1 {
		t.Fatalf("re-request after a dropped grant delivered %d callbacks, want 1", sends)
	}
	if audit := c.Audit(); audit.NegativePending != 0 {
		t.Fatalf("pending-request accounting corrupted: %+v", audit)
	}
}

// TestDelayedSendIsDeliveredLate: a delayed cmapp_send arrives after the
// injected latency instead of being lost.
func TestDelayedSendIsDeliveredLate(t *testing.T) {
	s, _, l := setup(t, ModeAuto)
	in := NewInjector(42)
	l.SetInjector(in)
	src, dst := addrs(71)
	f := l.Open(netsim.ProtoUDP, src, dst)
	var sends int
	l.RegisterSend(f, func(cm.FlowID) { sends++ })

	in.SetRates(0, 1, 5*time.Millisecond)
	l.Request(f)
	s.RunFor(2 * time.Millisecond)
	if sends != 0 {
		t.Fatal("delayed notification arrived early")
	}
	s.RunFor(10 * time.Millisecond)
	if sends != 1 || in.Stats().DelayedSends != 1 {
		t.Fatalf("sends = %d, DelayedSends = %d", sends, in.Stats().DelayedSends)
	}
}

// TestDelayedUpdateNeverOverwritesNewerStatus: a cmapp_update delayed across
// a newer delivery must be discarded on arrival, not applied over the newer
// rate (the paper's rate callbacks promise the *current* sending rate).
func TestDelayedUpdateNeverOverwritesNewerStatus(t *testing.T) {
	s, c, l := setup(t, ModeManual)
	in := NewInjector(42)
	l.SetInjector(in)
	src, dst := addrs(72)
	f := l.Open(netsim.ProtoUDP, src, dst)
	var got []cm.Status
	l.RegisterUpdate(f, func(_ cm.FlowID, st cm.Status) { got = append(got, st) })
	l.Thresh(f, 1.0001, 1.0001) // report every change

	// First status change is delayed in flight...
	in.SetRates(0, 1, 5*time.Millisecond)
	c.Update(f, 1000, 1000, cm.NoLoss, 100*time.Millisecond)
	// ...and a second, newer one — a large RTT change, so it certainly
	// crosses the report threshold — overtakes it.
	in.SetRates(0, 0, 0)
	c.Update(f, 1000, 1000, cm.NoLoss, 10*time.Millisecond)
	s.RunFor(time.Millisecond)
	l.Dispatch()
	if len(got) != 1 {
		t.Fatalf("got %d statuses before the delayed arrival, want 1", len(got))
	}
	newest, _ := c.Query(f)
	if got[0].SRTT != newest.SRTT {
		t.Fatalf("delivered status is not the newest: %+v vs %+v", got[0], newest)
	}

	// The stale delivery lands now; it must be dropped, not dispatched.
	s.RunFor(10 * time.Millisecond)
	if l.Dispatch() != 0 {
		t.Fatal("stale delayed update was dispatched")
	}
	if in.Stats().StaleUpdatesDropped != 1 {
		t.Fatalf("StaleUpdatesDropped = %d, want 1", in.Stats().StaleUpdatesDropped)
	}
	if len(got) != 1 {
		t.Fatalf("stale status reached the application: %+v", got)
	}
}

// TestLibResyncsAfterCMRestart: any libcm call after a CM restart first
// re-syncs the library (dead callbacks and queued notifications cleared, the
// restart handler told to re-open), instead of operating on dead handles.
func TestLibResyncsAfterCMRestart(t *testing.T) {
	s, c, l := setup(t, ModeAuto)
	src, dst := addrs(73)
	f := l.Open(netsim.ProtoUDP, src, dst)
	var restarts int
	var reopened cm.FlowID
	l.SetRestartHandler(func() {
		restarts++
		reopened = l.Open(netsim.ProtoUDP, src, dst)
		l.RegisterSend(reopened, func(cm.FlowID) {})
	})
	l.RegisterSend(f, func(cm.FlowID) { t.Error("callback for a pre-restart flow") })
	l.Request(f)

	c.Restart()
	// The queued pre-restart grant must not be dispatched after the resync.
	l.Request(f) // triggers checkEpoch; f is stale and the call is a miss
	s.RunFor(10 * time.Millisecond)

	if restarts != 1 || l.Stats().Resyncs != 1 {
		t.Fatalf("restarts = %d, Resyncs = %d", restarts, l.Stats().Resyncs)
	}
	if reopened == f || reopened == 0 {
		t.Fatalf("restart handler reopened %v (old %v)", reopened, f)
	}
	if _, ok := l.Query(reopened); !ok {
		t.Fatal("reopened flow unusable")
	}
	if c.Accounting().StaleFlowCalls == 0 {
		t.Fatal("the stale Request should have been counted")
	}
	_ = s
}
