// Web fetch example: the shared-congestion-state scenario of Figure 7.
//
// An unmodified web client fetches the same 128 KB object nine times over
// fresh TCP connections. With the Congestion Manager on the server, every
// connection to the client shares one macroflow, so later requests skip slow
// start and complete much faster; the unmodified server pays the slow-start
// cost every time.
//
// Run with:  go run ./examples/webfetch
package main

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

func run(useCM bool) []app.FetchResult {
	sched := simtime.NewScheduler()
	network := node.NewNetwork(sched)
	network.ConnectDuplex("server", "client", netsim.LinkConfig{
		Bandwidth:    20 * netsim.Mbps,
		Delay:        35 * time.Millisecond, // ~70 ms RTT, like the MIT-Utah path
		QueuePackets: 150,
		Seed:         41,
	})

	serverCfg := tcp.Config{CongestionControl: tcp.CCNative, DelayedAck: true}
	if useCM {
		manager := cm.New(sched, sched)
		network.Host("server").SetTransmitNotifier(manager)
		serverCfg = tcp.Config{CongestionControl: tcp.CCCM, CM: manager, DelayedAck: true}
	}
	if _, err := app.NewFileServer(network.Host("server"), 80, 128*1024, serverCfg); err != nil {
		panic(err)
	}

	client := app.NewFetchClient(network.Host("client"), netsim.Addr{Host: "server", Port: 80}, 200, tcp.Config{DelayedAck: true})
	var results []app.FetchResult
	client.RunSequential(9, 500*time.Millisecond, func(rs []app.FetchResult) { results = rs })
	sched.RunFor(2 * time.Minute)
	return results
}

func main() {
	withCM := run(true)
	without := run(false)

	fmt.Println("Sequential 128 KB fetches, 500 ms apart (times in ms):")
	fmt.Printf("%-10s %12s %12s\n", "request", "TCP/CM", "TCP/Linux")
	for i := 0; i < len(withCM) && i < len(without); i++ {
		fmt.Printf("%-10d %12.0f %12.0f\n", i+1,
			float64(withCM[i].Elapsed)/float64(time.Millisecond),
			float64(without[i].Elapsed)/float64(time.Millisecond))
	}
	if len(withCM) > 1 {
		first := withCM[0].Elapsed
		last := withCM[len(withCM)-1].Elapsed
		fmt.Printf("\nCM improvement from first to last request: %.0f%%\n",
			100*float64(first-last)/float64(first))
	}
}
