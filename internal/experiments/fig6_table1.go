package experiments

import (
	"fmt"
	"time"

	"repro/internal/apicost"
)

// Table1Result reproduces Table 1: cumulative sources of per-packet overhead
// for the different CM APIs relative to sending data with TCP.
type Table1Result struct {
	Rows []apicost.Table1Row
}

// RunTable1 builds Table 1 from the API cost model.
func RunTable1(costs apicost.CostModel) Table1Result {
	if costs == (apicost.CostModel{}) {
		costs = apicost.DefaultCosts()
	}
	return Table1Result{Rows: apicost.Table1(costs)}
}

// Table renders Table 1.
func (r Table1Result) Table() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		delta := "-"
		if row.DeltaAtMTU > 0 {
			delta = fmt.Sprintf("+%.1fus", float64(row.DeltaAtMTU)/float64(time.Microsecond))
		}
		rows = append(rows, []string{row.Variant.String(), row.AddedOps, delta})
	}
	return "Table 1: cumulative sources of overhead for the CM APIs (relative to TCP)\n" +
		formatTable([]string{"API", "added operations", "added cost/pkt"}, rows)
}

// Fig6Config parameterises the API-overhead comparison of Figure 6: modelled
// wall-clock microseconds per packet as a function of packet size for the six
// transmission APIs, on a loss-free 100 Mbps path.
type Fig6Config struct {
	// PacketSizes is the x axis in bytes.
	PacketSizes []int
	// Costs is the operation cost model.
	Costs apicost.CostModel
}

func (c *Fig6Config) fillDefaults() {
	if len(c.PacketSizes) == 0 {
		c.PacketSizes = []int{64, 168, 256, 400, 552, 700, 900, 1100, 1300, 1400}
	}
	if c.Costs == (apicost.CostModel{}) {
		c.Costs = apicost.DefaultCosts()
	}
}

// Fig6Point is one (variant, size) cell of Figure 6.
type Fig6Point struct {
	Size    int
	Variant apicost.Variant
	PerPkt  time.Duration
}

// Fig6Result is the reproduction of Figure 6.
type Fig6Result struct {
	Config Fig6Config
	Points []Fig6Point
	// WorstCaseReduction is the throughput reduction of ALF/noconnect
	// relative to TCP/CM-nodelay at the smallest measured size (the paper
	// reports ~25 % at 168-byte packets).
	WorstCaseReduction float64
}

// RunFig6 evaluates the cost model across packet sizes and variants.
func RunFig6(cfg Fig6Config) Fig6Result {
	cfg.fillDefaults()
	res := Fig6Result{Config: cfg}
	for _, size := range cfg.PacketSizes {
		for _, v := range apicost.Variants() {
			res.Points = append(res.Points, Fig6Point{
				Size:    size,
				Variant: v,
				PerPkt:  apicost.PerPacketCost(v, size, cfg.Costs),
			})
		}
	}
	base := apicost.Throughput(apicost.TCPCMNoDelay, 168, cfg.Costs)
	worst := apicost.Throughput(apicost.ALFNoConnect, 168, cfg.Costs)
	if base > 0 {
		res.WorstCaseReduction = 1 - worst/base
	}
	return res
}

// Table renders Figure 6 as one row per packet size with one column per API.
func (r Fig6Result) Table() string {
	variants := apicost.Variants()
	header := []string{"size(B)"}
	for _, v := range variants {
		header = append(header, v.String()+" us/pkt")
	}
	bySize := map[int]map[apicost.Variant]time.Duration{}
	var sizes []int
	for _, p := range r.Points {
		if _, ok := bySize[p.Size]; !ok {
			bySize[p.Size] = map[apicost.Variant]time.Duration{}
			sizes = append(sizes, p.Size)
		}
		bySize[p.Size][p.Variant] = p.PerPkt
	}
	rows := make([][]string, 0, len(sizes))
	for _, size := range sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, v := range variants {
			row = append(row, fmt.Sprintf("%.1f", float64(bySize[size][v])/float64(time.Microsecond)))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Figure 6: per-packet cost by API and packet size (worst-case throughput reduction %.0f%%)\n",
		100*r.WorstCaseReduction) + formatTable(header, rows)
}
