package faults

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/sweep"
)

// TestChurnSoakCampaignFileMatchesDefinition pins
// examples/campaigns/churn-soak.json to the canonical Go definition: `make
// soak-smoke` must run exactly the sweep ChurnSoakCampaign defines.
// Regenerate the file with `go run ./tools/gencampaign` after changing it.
func TestChurnSoakCampaignFileMatchesDefinition(t *testing.T) {
	data, err := os.ReadFile("../../examples/campaigns/churn-soak.json")
	if err != nil {
		t.Fatal(err)
	}
	var fromFile sweep.Campaign
	if err := json.Unmarshal(data, &fromFile); err != nil {
		t.Fatal(err)
	}
	want := ChurnSoakCampaign()
	if !reflect.DeepEqual(fromFile, want) {
		t.Fatalf("examples/campaigns/churn-soak.json drifted from ChurnSoakCampaign:\nfile: %+v\ncode: %+v", fromFile, want)
	}
	filePoints, err := fromFile.Expand()
	if err != nil {
		t.Fatal(err)
	}
	codePoints, err := want.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(filePoints, codePoints) {
		t.Fatal("campaign file expands differently from the Go definition")
	}
}
