package scenario

import (
	"fmt"
	"sort"
)

// registry maps scenario names to spec factories. Factories (not specs) are
// registered so each lookup returns a fresh, unshared Spec.
var registry = map[string]func() Spec{}

// paramRegistry maps the names of parameterised scenarios to their
// name=value factories. Every parameterised scenario also appears in
// registry (with defaults), so List/Describe/Lookup see one catalogue.
var paramRegistry = map[string]func(map[string]float64) (Spec, error){}

// Register adds a named scenario factory. It panics on duplicate names so
// registration mistakes surface at init time.
func Register(name string, factory func() Spec) {
	if name == "" || factory == nil {
		panic("scenario: Register requires a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: %q registered twice", name))
	}
	registry[name] = factory
}

// RegisterParams adds a named parameterised scenario: the factory receives a
// name=value map (from cmsim -param flags or sweep param.* axes) and builds
// the spec, erroring on unknown names or invalid values. The scenario also
// registers plainly with its defaults (a nil map), so it lists and looks up
// like any other.
func RegisterParams(name string, factory func(map[string]float64) (Spec, error)) {
	if factory == nil {
		panic("scenario: RegisterParams requires a factory")
	}
	Register(name, func() Spec {
		spec, err := factory(nil)
		if err != nil {
			panic(fmt.Sprintf("scenario: %q defaults invalid: %v", name, err))
		}
		return spec
	})
	paramRegistry[name] = factory
}

// Lookup returns a fresh spec for the named scenario.
func Lookup(name string) (Spec, error) {
	f, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (use List for the catalogue)", name)
	}
	spec := f()
	spec.Name = name
	return spec, nil
}

// LookupParams returns a fresh spec for the named scenario built with the
// given parameters. A nil or empty map yields the defaults; parameters on a
// scenario that takes none are an error.
func LookupParams(name string, params map[string]float64) (Spec, error) {
	if f, ok := paramRegistry[name]; ok {
		spec, err := f(params)
		if err != nil {
			return Spec{}, fmt.Errorf("scenario %q: %w", name, err)
		}
		spec.Name = name
		return spec, nil
	}
	if len(params) > 0 {
		return Spec{}, fmt.Errorf("scenario %q takes no parameters", name)
	}
	return Lookup(name)
}

// List returns the registered scenario names in sorted order.
func List() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Describe returns the one-line description of a registered scenario.
func Describe(name string) string {
	f, ok := registry[name]
	if !ok {
		return ""
	}
	return f().Description
}

func init() {
	Register("dumbbell", func() Spec {
		return Dumbbell(DumbbellParams{Senders: 2, Receivers: 2, FlowsPerPair: 2, CrossProduct: true, Bytes: 2 << 20})
	})
	Register("dumbbell-native", func() Spec {
		return Dumbbell(DumbbellParams{Senders: 2, Receivers: 2, FlowsPerPair: 2, CrossProduct: true, Bytes: 2 << 20, CC: CCNative})
	})
	Register("parkinglot", func() Spec {
		return ParkingLot(ParkingLotParams{Hops: 3})
	})
	Register("star", func() Spec {
		return Star(StarParams{Leaves: 4})
	})
	Register("p2p", func() Spec {
		return PointToPoint(PointToPointParams{
			Workloads: []Workload{{Kind: KindBulk, From: "sender", To: "receiver", Bytes: 2 << 20, CC: CCCM}},
		})
	})
	Register("wireless", func() Spec {
		return Wireless(WirelessParams{})
	})
	Register("asymmetric", func() Spec {
		return Asymmetric(AsymmetricParams{})
	})
	Register("flaky-dumbbell", func() Spec {
		return FlakyDumbbell(FlakyDumbbellParams{})
	})
	Register("grid", func() Spec {
		return DumbbellGrid(GridParams{})
	})
	Register("webmix", func() Spec {
		return WebMix(WebMixParams{})
	})
	Register("churn", func() Spec {
		return Churn(ChurnParams{})
	})
	RegisterParams("fattree", fatTreeFromParams)
	RegisterParams("isp", ispFromParams)
	RegisterParams("routeflap", routeFlapFromParams)
}
