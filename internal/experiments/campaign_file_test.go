package experiments

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"

	"repro/internal/sweep"
)

// TestFig3CampaignFileMatchesDefinition pins examples/campaigns/fig3.json to
// the canonical Go definition: `cmsim -campaign examples/campaigns/fig3.json`
// must run exactly the sweep RunFig3 runs. Regenerate the file with
// `go run ./tools/gencampaign` after changing Fig3Campaign.
func TestFig3CampaignFileMatchesDefinition(t *testing.T) {
	data, err := os.ReadFile("../../examples/campaigns/fig3.json")
	if err != nil {
		t.Fatal(err)
	}
	var fromFile sweep.Campaign
	if err := json.Unmarshal(data, &fromFile); err != nil {
		t.Fatal(err)
	}
	want := Fig3Campaign(Fig3Config{})
	if !reflect.DeepEqual(fromFile, want) {
		t.Fatalf("examples/campaigns/fig3.json drifted from Fig3Campaign:\nfile: %+v\ncode: %+v", fromFile, want)
	}
	// And the expansions — what actually runs — agree too.
	filePoints, err := fromFile.Expand()
	if err != nil {
		t.Fatal(err)
	}
	codePoints, err := want.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(filePoints, codePoints) {
		t.Fatal("campaign file expands differently from the Go definition")
	}
}
