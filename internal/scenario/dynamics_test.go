package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
)

// TestFlakyDumbbellMacroflowCollapseAndReprobe is the acceptance check for
// the dynamics subsystem: when the shared bottleneck goes down mid-run, the
// sender's CM macroflow window collapses (timeouts report persistent
// congestion); after the link comes back up the macroflow probes its window
// back open and traffic resumes.
func TestFlakyDumbbellMacroflowCollapseAndReprobe(t *testing.T) {
	spec := FlakyDumbbell(FlakyDumbbellParams{
		DownAt:   6 * time.Second,
		UpAt:     10 * time.Second,
		Dumbbell: DumbbellParams{Duration: 30 * time.Second},
	})
	sim, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	sched := sim.Scheduler()

	// Just before the outage the stream has opened its window well beyond
	// the initial one.
	sched.RunUntil(5900 * time.Millisecond)
	mf := sim.CM("s0").MacroflowTo("d0")
	if mf == nil {
		t.Fatal("no macroflow s0->d0")
	}
	wBefore := mf.Window()

	// Late in the outage the window has collapsed.
	sched.RunUntil(9900 * time.Millisecond)
	wDuring := mf.Window()
	if wDuring >= wBefore {
		t.Fatalf("window did not collapse on link-down: before=%d during=%d", wBefore, wDuring)
	}
	if wDuring > wBefore/2 {
		t.Fatalf("window only fell to %d of %d during a total outage", wDuring, wBefore)
	}
	deliveredDuring := sim.Host("d0").Stats().ReceivedBytes

	// Well after recovery the window has been probed back open and data
	// flows again.
	sched.RunUntil(spec.Duration)
	wAfter := mf.Window()
	if wAfter <= wDuring {
		t.Fatalf("window did not re-probe after link-up: during=%d after=%d", wDuring, wAfter)
	}
	deliveredAfter := sim.Host("d0").Stats().ReceivedBytes
	if deliveredAfter <= deliveredDuring {
		t.Fatal("no data delivered after the link recovered")
	}

	res := sim.Finish()
	if len(res.Events) != 2 || !res.Events[0].Fired || !res.Events[1].Fired {
		t.Fatalf("event records wrong: %+v", res.Events)
	}
	for _, ev := range res.Events {
		if ev.RoutesChanged == 0 {
			t.Fatalf("link event changed no routes: %+v", ev)
		}
	}
	// The outage must be visible in the IP accounting: routes are withdrawn
	// the instant the link fails, so packets in flight toward the dead
	// bottleneck die as route-miss drops at the routers and retransmissions
	// die as no-route drops at the senders.
	var missDrops int
	for _, h := range res.Hosts {
		missDrops += h.RouteMissDrops + h.ForwardMissDrops + h.NoRouteDrops
	}
	if missDrops == 0 {
		t.Fatal("no route-miss/no-route drops recorded across the outage")
	}
}

// TestDynamicsDeterminismSerialVsParallel pins byte-identical results with an
// event timeline active: the dynamics scenarios (outage, bursty loss with a
// scheduled fade, time-zero asymmetry) run twice each, fanned across 8
// workers, and must equal the serial run on the JSON wire encoding.
func TestDynamicsDeterminismSerialVsParallel(t *testing.T) {
	var specs []Spec
	for _, name := range []string{"flaky-dumbbell", "wireless", "asymmetric"} {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(spec.Events) == 0 {
			t.Fatalf("%s: dynamics scenario has no events", name)
		}
		specs = append(specs, spec, spec)
	}
	serial := Runner{Parallel: 1}.RunAll(specs)
	parallel := Runner{Parallel: 8}.RunAll(specs)
	for i := range serial {
		if serial[i].Err != "" || parallel[i].Err != "" {
			t.Fatalf("outcome %d errored: serial=%q parallel=%q", i, serial[i].Err, parallel[i].Err)
		}
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("serial and parallel result structs differ under dynamics")
	}
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if string(sj) != string(pj) {
		t.Fatal("serial and parallel JSON encodings differ under dynamics")
	}
}

// TestTimeZeroEventAppliesAtBuild checks that the asymmetric scenario's
// time-zero reverse-bandwidth event reconfigures the link before any packet
// is sent.
func TestTimeZeroEventAppliesAtBuild(t *testing.T) {
	sim := MustBuild(Asymmetric(AsymmetricParams{}))
	if got := sim.Duplex(0).Reverse.Config().Bandwidth; got != 128*netsim.Kbps {
		t.Fatalf("reverse bandwidth %v at build, want 128Kbps", got)
	}
	if got := sim.Duplex(0).Forward.Config().Bandwidth; got != 10*netsim.Mbps {
		t.Fatalf("forward bandwidth %v at build, want 10Mbps", got)
	}
}

// TestGilbertOccupancyReachesResults checks that a wireless run reports
// Gilbert-Elliott state occupancy and the burst/Bernoulli drop split with
// RandomDrops as their sum.
func TestGilbertOccupancyReachesResults(t *testing.T) {
	spec := Wireless(WirelessParams{Duration: 10 * time.Second})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	var fwd *LinkResult
	for i := range res.Links {
		if res.Links[i].Name == "sender<->receiver-fwd" {
			fwd = &res.Links[i]
		}
	}
	if fwd == nil {
		t.Fatal("forward link missing from results")
	}
	if fwd.GEGoodPackets == 0 || fwd.GETransitions == 0 {
		t.Fatalf("Gilbert-Elliott counters empty: %+v", fwd.LinkStats)
	}
	if fwd.BurstDrops == 0 {
		t.Fatalf("no burst drops over a 10s bursty channel: %+v", fwd.LinkStats)
	}
	if fwd.RandomDrops != fwd.BernoulliDrops+fwd.BurstDrops {
		t.Fatalf("RandomDrops %d != Bernoulli %d + Burst %d",
			fwd.RandomDrops, fwd.BernoulliDrops, fwd.BurstDrops)
	}
}

// TestUDPWorkloadKinds runs both layered UDP kinds declaratively and checks
// they stream, adapt and surface application counters, with the CM installed
// automatically on the sending host.
func TestUDPWorkloadKinds(t *testing.T) {
	spec := PointToPoint(PointToPointParams{
		Workloads: []Workload{
			{Kind: KindUDPALF, From: "sender", To: "receiver"},
			{Kind: KindUDPRate, From: "sender", To: "receiver", Start: time.Second},
		},
		Duration: 10 * time.Second,
	})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 2 {
		t.Fatalf("flows = %d, want 2", len(res.Flows))
	}
	for _, f := range res.Flows {
		if f.CC != CCCM {
			t.Errorf("flow %d.%d cc = %q, want cm (UDP kinds are CM clients)", f.Workload, f.Flow, f.CC)
		}
		if f.Delivered == 0 {
			t.Errorf("flow %d.%d delivered nothing", f.Workload, f.Flow)
		}
		if f.Completed {
			t.Errorf("flow %d.%d marked completed; layered streams never complete", f.Workload, f.Flow)
		}
		if f.ThroughputKBps <= 0 {
			t.Errorf("flow %d.%d has no throughput", f.Workload, f.Flow)
		}
	}
	if res.Flows[1].Established < time.Second {
		t.Fatalf("delayed UDP flow established at %v, want >= 1s", res.Flows[1].Established)
	}
	if len(res.CMs) != 1 || res.CMs[0].Flows != 2 {
		t.Fatalf("CM summary wrong: %+v", res.CMs)
	}
	// Both servers interacted with the CM through libcm.
	if res.CMs[0].Queries == 0 || res.CMs[0].Updates == 0 {
		t.Fatalf("CM accounting shows no libcm activity: %+v", res.CMs[0].Accounting)
	}
}

// TestUDPKindRejectsNativeCC pins the validation rule: the layered UDP
// applications are CM clients and cannot run under the native controller.
func TestUDPKindRejectsNativeCC(t *testing.T) {
	spec := Spec{
		Name:      "bad",
		Links:     []LinkSpec{{A: "a", B: "b"}},
		Workloads: []Workload{{Kind: KindUDPRate, From: "a", To: "b", CC: CCNative}},
	}
	spec.fillDefaults()
	if err := spec.Validate(); err == nil {
		t.Fatal("udp-rate with native cc accepted")
	}
}

// TestEventValidationInSpec checks that event errors surface through
// Spec.Validate with scenario context.
func TestEventValidationInSpec(t *testing.T) {
	spec := Spec{
		Name:      "bad-events",
		Links:     []LinkSpec{{A: "a", B: "b"}},
		Workloads: []Workload{{From: "a", To: "b"}},
		Events:    []dynamics.Event{{Kind: dynamics.LinkDown, Link: 5}},
	}
	spec.fillDefaults()
	if err := spec.Validate(); err == nil {
		t.Fatal("out-of-range event link accepted")
	}
	spec.Events = []dynamics.Event{{Kind: "warp", Link: 0}}
	if err := spec.Validate(); err == nil {
		t.Fatal("unknown event kind accepted")
	}
}
