package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// perfResult is one core-loop measurement in the perf snapshot.
type perfResult struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	Iterations  int     `json:"iterations"`
}

// perfSnapshot is the schema of BENCH_N.json: a trajectory point future PRs
// benchmark themselves against.
type perfSnapshot struct {
	PR        int          `json:"pr"`
	GoVersion string       `json:"go_version"`
	GOARCH    string       `json:"goarch"`
	Results   []perfResult `json:"results"`
}

// runPerf measures the simulation core's hot loops with testing.Benchmark and
// writes the snapshot to path, stamped with the given PR number.
func runPerf(path string, pr int) error {
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"simtime/schedule_fire", benchScheduleFire},
		{"simtime/event_churn_4k", benchEventChurn},
		{"netsim/link_transmit_deliver", benchLinkTransmitDeliver},
		{"cm/request_grant_notify", benchRequestGrantNotify},
		{"cm/charge_path_1k_flows", benchChargePath1k},
		{"cm/round_robin_1k_flows", benchRoundRobin1k},
	}
	snap := perfSnapshot{PR: pr, GoVersion: runtime.Version(), GOARCH: runtime.GOARCH}
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		res := perfResult{
			Name:        bench.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
		}
		snap.Results = append(snap.Results, res)
		fmt.Printf("%-32s %12.1f ns/op %8d allocs/op %8d B/op\n",
			res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp)
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

func benchScheduleFire(b *testing.B) {
	s := simtime.NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
}

func benchEventChurn(b *testing.B) {
	const population = 4096
	s := simtime.NewScheduler()
	fn := func() {}
	events := make([]*simtime.Event, population)
	for i := range events {
		events[i] = s.At(time.Hour+time.Duration(i)*time.Millisecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % population
		events[slot].Cancel()
		events[slot] = s.At(time.Hour, fn)
		s.After(0, fn)
		s.Step()
	}
}

func benchLinkTransmitDeliver(b *testing.B) {
	sched := simtime.NewScheduler()
	sink := netsim.ReceiverFunc(func(p *netsim.Packet) { p.Release() })
	l := netsim.NewLink(sched, netsim.LinkConfig{
		Bandwidth: 100 * netsim.Mbps, Delay: time.Millisecond, QueuePackets: 64,
	}, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := netsim.NewPacket()
		p.Size = 1500
		l.Send(p)
		sched.Run()
	}
}

func newPerfCM(nflows int) (*cm.CM, []cm.FlowID) {
	sched := simtime.NewScheduler()
	c := cm.New(sched, sched)
	dst := netsim.Addr{Host: "server", Port: 80}
	ids := make([]cm.FlowID, nflows)
	for i := range ids {
		ids[i] = c.Open(netsim.ProtoTCP, netsim.Addr{Host: "client", Port: 1000 + i}, dst)
		c.RegisterSend(ids[i], func(f cm.FlowID) { c.Notify(f, 1500) })
	}
	c.Update(ids[0], 0, 1<<24, cm.NoLoss, time.Millisecond)
	return c, ids
}

func benchRequestGrantNotify(b *testing.B) {
	c, ids := newPerfCM(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(ids[0])
		c.Update(ids[0], 1500, 1500, cm.NoLoss, 0)
	}
}

func benchChargePath1k(b *testing.B) {
	c, ids := newPerfCM(1024)
	keys := make([]netsim.FlowKey, len(ids))
	for i, id := range ids {
		keys[i] = c.FlowInfo(id).Key
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NotifyTransmit(keys[i%len(keys)], 1500)
		if i%256 == 255 {
			c.Update(ids[0], 256*1500, 256*1500, cm.NoLoss, 0)
		}
	}
}

func benchRoundRobin1k(b *testing.B) {
	c, ids := newPerfCM(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(ids[i%len(ids)])
		if i%1024 == 1023 {
			c.Update(ids[0], 1024*1500, 1024*1500, cm.NoLoss, 0)
		}
	}
}
