package sweep

import (
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/scenario"
)

func TestApplyEventAndGeneratorParams(t *testing.T) {
	spec := scenario.Spec{
		Events: []dynamics.Event{
			{At: time.Second, Kind: dynamics.SetNotifyFaults, Host: "a"},
			{At: 2 * time.Second, Kind: dynamics.HostMove, Host: "b"},
		},
		Generators: []dynamics.Generator{
			{Kind: dynamics.GenPoissonFlaps, Link: 0},
			{Kind: dynamics.GenCMRestarts, Host: "a"},
		},
	}
	apply := func(param string, n float64) {
		t.Helper()
		if err := Apply(&spec, param, Value{Param: param, Num: n}); err != nil {
			t.Fatalf("Apply(%s): %v", param, err)
		}
	}
	apply("event[0].drop_rate", 0.25)
	apply("event[0].delay_rate", 0.5)
	apply("event[0].delay", 0.02)
	apply("event[1].at", 3)
	apply("event[1].outage", 0.4)
	apply("generator[0].mean_up", 5)
	apply("generator[0].mean_down", 0.5)
	apply("generator[1].mean", 2)
	apply("generator[1].seed", 99)
	apply("generator[*].start", 1)
	apply("generator[1].end", 10)

	ev0, ev1 := spec.Events[0], spec.Events[1]
	if ev0.DropRate != 0.25 || ev0.DelayRate != 0.5 || ev0.Delay != 20*time.Millisecond {
		t.Fatalf("event[0] = %+v", ev0)
	}
	if ev1.At != 3*time.Second || ev1.Outage != 400*time.Millisecond {
		t.Fatalf("event[1] = %+v", ev1)
	}
	g0, g1 := spec.Generators[0], spec.Generators[1]
	if g0.MeanUp != 5*time.Second || g0.MeanDown != 500*time.Millisecond || g0.Start != time.Second {
		t.Fatalf("generator[0] = %+v", g0)
	}
	if g1.Mean != 2*time.Second || g1.Seed != 99 || g1.Start != time.Second || g1.End != 10*time.Second {
		t.Fatalf("generator[1] = %+v", g1)
	}

	for _, bad := range []string{
		"event[0].bandwidth",  // not a swept event field
		"event.at",            // missing index
		"event[2].at",         // out of range
		"generator[0].factor", // not a swept generator field
		"generator.mean",      // missing index
	} {
		if err := Apply(&spec, bad, Value{Param: bad, Num: 1}); err == nil {
			t.Errorf("Apply(%s) accepted", bad)
		}
	}
}
