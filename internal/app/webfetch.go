package app

import (
	"time"

	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// FileServer is a web-server-like TCP service: on every accepted connection
// it waits for a request and responds with a fixed-size object, then closes
// its side — the workload of the paper's Figure 7 experiment. Whether its
// transmissions use native TCP congestion control or the CM is decided by the
// tcp.Config it is given.
type FileServer struct {
	host     *node.Host
	fileSize int
	cfg      tcp.Config
	listener *tcp.Listener

	requestsServed int64
	bytesServed    int64
}

// NewFileServer starts a file server on (host, port) serving objects of
// fileSize bytes.
func NewFileServer(h *node.Host, port, fileSize int, cfg tcp.Config) (*FileServer, error) {
	fs := &FileServer{host: h, fileSize: fileSize, cfg: cfg}
	l, err := tcp.Listen(h, port, cfg, fs.accept)
	if err != nil {
		return nil, err
	}
	fs.listener = l
	return fs, nil
}

func (fs *FileServer) accept(ep *tcp.Endpoint) {
	responded := false
	ep.OnReceive(func(n int) {
		if responded || n <= 0 {
			return
		}
		responded = true
		ep.Send(fs.fileSize)
		ep.Close()
		fs.requestsServed++
		fs.bytesServed += int64(fs.fileSize)
	})
}

// RequestsServed returns the number of requests answered.
func (fs *FileServer) RequestsServed() int64 { return fs.requestsServed }

// BytesServed returns the total bytes of file data queued for transmission.
func (fs *FileServer) BytesServed() int64 { return fs.bytesServed }

// Close stops accepting new connections.
func (fs *FileServer) Close() { fs.listener.Close() }

// FetchResult records one retrieval by the sequential fetch client.
type FetchResult struct {
	Index   int
	Start   time.Duration
	End     time.Duration
	Elapsed time.Duration
	Bytes   int64
}

// FetchClient performs sequential retrievals of the same object over fresh
// TCP connections — the unmodified (non-CM) web client of Figure 7. Each
// retrieval opens a new connection, sends a small request, reads the response
// until the server's FIN, and records the elapsed time.
type FetchClient struct {
	host        *node.Host
	server      netsim.Addr
	requestSize int
	clientCfg   tcp.Config

	results []FetchResult
	done    func([]FetchResult)
}

// NewFetchClient creates a client on host h fetching from server.
func NewFetchClient(h *node.Host, server netsim.Addr, requestSize int, clientCfg tcp.Config) *FetchClient {
	if requestSize <= 0 {
		requestSize = 200
	}
	return &FetchClient{host: h, server: server, requestSize: requestSize, clientCfg: clientCfg}
}

// Results returns the retrievals completed so far.
func (c *FetchClient) Results() []FetchResult {
	out := make([]FetchResult, len(c.results))
	copy(out, c.results)
	return out
}

// RunSequential performs count retrievals, waiting spacing between the end of
// one retrieval and the initiation of the next (the paper uses 9 retrievals
// of a 128 KB file with a 500 ms delay). The optional done callback runs when
// all retrievals have completed.
func (c *FetchClient) RunSequential(count int, spacing time.Duration, done func([]FetchResult)) {
	c.done = done
	c.fetch(0, count, spacing)
}

func (c *FetchClient) fetch(index, count int, spacing time.Duration) {
	if index >= count {
		if c.done != nil {
			c.done(c.Results())
		}
		return
	}
	sched := c.host.Clock()
	start := sched.Now()
	ep, err := tcp.Dial(c.host, c.server, c.clientCfg)
	if err != nil {
		// The port space is exhausted or misconfigured; report what we have.
		if c.done != nil {
			c.done(c.Results())
		}
		return
	}
	var received int64
	ep.OnEstablished(func() {
		ep.Send(c.requestSize)
	})
	ep.OnReceive(func(n int) { received += int64(n) })
	ep.OnClosed(func() {
		end := sched.Now()
		c.results = append(c.results, FetchResult{
			Index:   index,
			Start:   start,
			End:     end,
			Elapsed: end - start,
			Bytes:   received,
		})
		// Finish our side of the connection, then schedule the next fetch.
		ep.Close()
		sched.AfterKind(spacing, simtime.KindWorkloadApp, func() { c.fetch(index+1, count, spacing) })
	})
}

// OnOffSource is a constant-bit-rate UDP traffic generator that alternates
// between on and off periods. The adaptation experiments use it as competing
// traffic so the bandwidth available to the adaptive application changes over
// time, as the cross-traffic on the paper's vBNS path did. It is deliberately
// not congestion controlled — it stands in for the uncooperative traffic the
// paper worries about.
type OnOffSource struct {
	sock       *udp.Socket
	sched      *simtime.Scheduler
	dst        netsim.Addr
	rate       float64 // bytes/second while on
	packetSize int
	onPeriod   time.Duration
	offPeriod  time.Duration

	on       bool
	running  bool
	phaseEnd time.Duration
	timer    simtime.Timer
	seq      int64
	sent     int64
}

// NewOnOffSource creates a cross-traffic source on host h sending to dst at
// rate bytes/second during on-periods.
func NewOnOffSource(h *node.Host, dst netsim.Addr, rate float64, packetSize int, onPeriod, offPeriod time.Duration) (*OnOffSource, error) {
	sock, err := udp.NewSocket(h, 0)
	if err != nil {
		return nil, err
	}
	if packetSize <= 0 {
		packetSize = 1000
	}
	s := &OnOffSource{
		sock:       sock,
		sched:      h.Clock(),
		dst:        dst,
		rate:       rate,
		packetSize: packetSize,
		onPeriod:   onPeriod,
		offPeriod:  offPeriod,
	}
	s.timer = h.Clock().NewKindTimer(simtime.KindWorkloadApp, s.tick)
	return s, nil
}

// Start begins generating traffic (starting with an on-period).
func (s *OnOffSource) Start() {
	if s.running {
		return
	}
	s.running = true
	s.on = true
	s.phaseEnd = s.sched.Now() + s.onPeriod
	s.tick()
}

// Stop halts traffic generation.
func (s *OnOffSource) Stop() {
	s.running = false
	s.timer.Stop()
}

// PacketsSent returns the number of cross-traffic packets generated.
func (s *OnOffSource) PacketsSent() int64 { return s.sent }

func (s *OnOffSource) tick() {
	if !s.running {
		return
	}
	now := s.sched.Now()
	if now >= s.phaseEnd {
		s.on = !s.on
		if s.on {
			s.phaseEnd = now + s.onPeriod
		} else {
			s.phaseEnd = now + s.offPeriod
		}
	}
	if s.on && s.rate > 0 {
		s.seq++
		s.sock.SendTo(s.dst, &udp.Datagram{Seq: s.seq, Size: s.packetSize})
		s.sent++
		s.timer.Reset(simtime.FromSeconds(float64(s.packetSize) / s.rate))
		return
	}
	// Off period: wake up when it ends.
	sleep := s.phaseEnd - now
	if sleep <= 0 {
		sleep = time.Millisecond
	}
	s.timer.Reset(sleep)
}
