// Command cmsim runs a single configurable bulk-transfer simulation and
// prints throughput and protocol statistics. It is the "one-off experiment"
// tool: pick a bandwidth, delay, loss rate and congestion-control variant and
// see how the transfer behaves.
//
// Example:
//
//	cmsim -bw 10e6 -rtt 60ms -loss 1 -cc cm -bytes 2000000
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

func main() {
	var (
		bw       = flag.Float64("bw", 10e6, "bottleneck bandwidth in bits/second")
		rtt      = flag.Duration("rtt", 60*time.Millisecond, "round-trip propagation delay")
		lossPct  = flag.Float64("loss", 0, "random loss rate in percent")
		queue    = flag.Int("queue", 120, "bottleneck queue length in packets")
		ccName   = flag.String("cc", "cm", "congestion control: cm or native")
		bytes    = flag.Int("bytes", 2_000_000, "transfer size in bytes")
		flows    = flag.Int("flows", 1, "number of concurrent connections (all to the same receiver)")
		seed     = flag.Int64("seed", 1, "random seed for the loss process")
		deadline = flag.Duration("deadline", time.Hour, "virtual-time deadline")
	)
	flag.Parse()

	var ccMode tcp.CongestionControl
	switch *ccName {
	case "cm":
		ccMode = tcp.CCCM
	case "native":
		ccMode = tcp.CCNative
	default:
		fmt.Fprintf(os.Stderr, "unknown -cc %q (want cm or native)\n", *ccName)
		os.Exit(2)
	}

	sched := simtime.NewScheduler()
	net := node.NewNetwork(sched)
	net.ConnectDuplex("sender", "receiver", netsim.LinkConfig{
		Bandwidth:    netsim.Bandwidth(*bw),
		Delay:        *rtt / 2,
		LossRate:     *lossPct / 100,
		QueuePackets: *queue,
		Seed:         *seed,
	})
	var cmgr *cm.CM
	if ccMode == tcp.CCCM {
		cmgr = cm.New(sched, sched)
		net.Host("sender").SetTransmitNotifier(cmgr)
	}

	type conn struct {
		ep        *tcp.Endpoint
		delivered int64
		started   time.Duration
		finished  time.Duration
	}
	conns := make([]*conn, *flows)
	for i := 0; i < *flows; i++ {
		i := i
		port := 5000 + i
		c := &conn{}
		conns[i] = c
		_, err := tcp.Listen(net.Host("receiver"), port, tcp.Config{DelayedAck: true, RecvWindow: 1 << 20}, func(ep *tcp.Endpoint) {
			ep.OnReceive(func(n int) { c.delivered += int64(n) })
			ep.OnClosed(func() { c.finished = sched.Now() })
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg := tcp.Config{CongestionControl: ccMode, CM: cmgr, DelayedAck: true, RecvWindow: 1 << 20}
		ep, err := tcp.Dial(net.Host("sender"), netsim.Addr{Host: "receiver", Port: port}, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		c.ep = ep
		ep.OnEstablished(func() {
			c.started = sched.Now()
			ep.Send(*bytes)
			ep.Close()
		})
	}

	sched.RunUntil(*deadline)

	fmt.Printf("configuration: %s, %.0f bps, RTT %v, loss %.2f%%, %d flow(s), %d bytes each\n",
		ccMode, *bw, *rtt, *lossPct, *flows, *bytes)
	var totalBytes int64
	var lastFinish time.Duration
	for i, c := range conns {
		st := c.ep.Stats()
		elapsed := c.finished - c.started
		status := "ok"
		if c.finished == 0 || c.delivered < int64(*bytes) {
			status = "INCOMPLETE"
			elapsed = sched.Now() - c.started
		}
		throughput := float64(c.delivered) / elapsed.Seconds() / 1024
		fmt.Printf("flow %d: %s delivered=%d elapsed=%v throughput=%.0f KB/s rtx=%d timeouts=%d srtt=%v\n",
			i, status, c.delivered, elapsed.Round(time.Millisecond), throughput,
			st.Retransmissions, st.Timeouts, st.SRTT.Round(time.Millisecond))
		totalBytes += c.delivered
		if c.finished > lastFinish {
			lastFinish = c.finished
		}
	}
	if lastFinish > 0 {
		fmt.Printf("aggregate: %d bytes in %v (%.0f KB/s)\n",
			totalBytes, lastFinish.Round(time.Millisecond), float64(totalBytes)/lastFinish.Seconds()/1024)
	}
	if cmgr != nil {
		acct := cmgr.Accounting()
		fmt.Printf("cm: %d macroflow(s), %d grants, %d updates, %d notifies, %d queries\n",
			cmgr.MacroflowCount(), acct.GrantsIssued, acct.Updates, acct.Notifies, acct.Queries)
	}
}
