package scenario

import (
	"fmt"
	"time"

	"repro/internal/netsim"
)

// DumbbellParams parameterises the canonical shared-bottleneck topology.
type DumbbellParams struct {
	// Senders and Receivers are the leaf counts on each side.
	Senders   int
	Receivers int
	// FlowsPerPair is the number of concurrent connections from each sender
	// to each of its destinations.
	FlowsPerPair int
	// CrossProduct sends from every sender to every receiver; otherwise
	// sender i sends only to receiver i mod Receivers.
	CrossProduct bool
	// CC selects the congestion controller of all workloads.
	CC string
	// Bottleneck configures the shared link; zero fields get the defaults of
	// a 10 Mbps / 20 ms / 120-packet pipe.
	Bottleneck netsim.LinkConfig
	// AccessBandwidth is the edge-link rate (default 100 Mbps, fast enough
	// that the shared link is the bottleneck).
	AccessBandwidth netsim.Bandwidth
	// Bytes per flow (0 = stream for the whole run).
	Bytes    int
	Duration time.Duration
	Seed     int64
}

func (p *DumbbellParams) fillDefaults() {
	if p.Senders <= 0 {
		p.Senders = 2
	}
	if p.Receivers <= 0 {
		p.Receivers = 2
	}
	if p.FlowsPerPair <= 0 {
		p.FlowsPerPair = 1
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	if p.Bottleneck.Bandwidth == 0 {
		p.Bottleneck.Bandwidth = 10 * netsim.Mbps
	}
	if p.Bottleneck.Delay == 0 {
		p.Bottleneck.Delay = 20 * time.Millisecond
	}
	if p.Bottleneck.QueuePackets == 0 && p.Bottleneck.QueueBytes == 0 {
		p.Bottleneck.QueuePackets = 120
	}
	if p.AccessBandwidth == 0 {
		p.AccessBandwidth = 100 * netsim.Mbps
	}
	if p.Duration <= 0 {
		p.Duration = 20 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// Dumbbell builds N senders and M receivers joined through two routers and
// one shared bottleneck link:
//
//	s0..sN-1 -- left -- bottleneck -- right -- d0..dM-1
//
// It is the topology behind the paper's ensemble-sharing argument: all flows
// crossing the bottleneck share its queue, and each sender's CM aggregates
// its flows per destination.
func Dumbbell(p DumbbellParams) Spec {
	p.fillDefaults()
	access := netsim.LinkConfig{
		Bandwidth:    p.AccessBandwidth,
		Delay:        250 * time.Microsecond,
		QueuePackets: 300,
	}
	spec := Spec{
		Name: "dumbbell",
		Description: fmt.Sprintf("%d senders and %d receivers behind one shared %s bottleneck",
			p.Senders, p.Receivers, p.Bottleneck.Bandwidth),
		Routers:  []string{"left", "right"},
		Duration: p.Duration,
		Seed:     p.Seed,
	}
	bn := p.Bottleneck
	bn.Name = "bottleneck"
	spec.Links = append(spec.Links, LinkSpec{A: "left", B: "right", LinkConfig: bn})
	for i := 0; i < p.Senders; i++ {
		spec.Links = append(spec.Links, LinkSpec{A: sname(i), B: "left", LinkConfig: access})
	}
	for j := 0; j < p.Receivers; j++ {
		spec.Links = append(spec.Links, LinkSpec{A: "right", B: dname(j), LinkConfig: access})
	}
	kind := KindStream
	if p.Bytes > 0 {
		kind = KindBulk
	}
	for i := 0; i < p.Senders; i++ {
		if p.CrossProduct {
			for j := 0; j < p.Receivers; j++ {
				spec.Workloads = append(spec.Workloads, Workload{
					Kind: kind, From: sname(i), To: dname(j),
					Flows: p.FlowsPerPair, Bytes: p.Bytes, CC: p.CC,
				})
			}
		} else {
			spec.Workloads = append(spec.Workloads, Workload{
				Kind: kind, From: sname(i), To: dname(i % p.Receivers),
				Flows: p.FlowsPerPair, Bytes: p.Bytes, CC: p.CC,
			})
		}
	}
	return spec
}

func sname(i int) string { return fmt.Sprintf("s%d", i) }
func dname(j int) string { return fmt.Sprintf("d%d", j) }

// ParkingLotParams parameterises the multi-bottleneck chain.
type ParkingLotParams struct {
	// Hops is the number of router-to-router links in the chain (>= 2).
	Hops int
	// CC selects the congestion controller of all workloads.
	CC string
	// HopBandwidth is the rate of each chain link (default 10 Mbps).
	HopBandwidth netsim.Bandwidth
	Duration     time.Duration
	Seed         int64
}

// ParkingLot builds the classic chain of H hops with one long flow crossing
// every hop and one short cross-flow per hop:
//
//	long:  src -- r0 -- r1 -- ... -- rH -- dst
//	short: xi  -- ri -- r(i+1) -- yi      (one per hop)
//
// The long flow competes with fresh traffic at every router queue, the
// standard stress test for multi-hop congestion control.
func ParkingLot(p ParkingLotParams) Spec {
	if p.Hops < 2 {
		p.Hops = 3
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	if p.HopBandwidth == 0 {
		p.HopBandwidth = 10 * netsim.Mbps
	}
	if p.Duration <= 0 {
		p.Duration = 20 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	hop := netsim.LinkConfig{
		Bandwidth:    p.HopBandwidth,
		Delay:        5 * time.Millisecond,
		QueuePackets: 100,
	}
	access := netsim.LinkConfig{
		Bandwidth:    100 * netsim.Mbps,
		Delay:        250 * time.Microsecond,
		QueuePackets: 300,
	}
	spec := Spec{
		Name:        "parkinglot",
		Description: fmt.Sprintf("parking lot: one long flow over %d hops vs per-hop cross traffic", p.Hops),
		Duration:    p.Duration,
		Seed:        p.Seed,
	}
	rname := func(i int) string { return fmt.Sprintf("r%d", i) }
	for i := 0; i <= p.Hops; i++ {
		spec.Routers = append(spec.Routers, rname(i))
	}
	for i := 0; i < p.Hops; i++ {
		spec.Links = append(spec.Links, LinkSpec{A: rname(i), B: rname(i + 1), LinkConfig: hop})
	}
	spec.Links = append(spec.Links,
		LinkSpec{A: "src", B: rname(0), LinkConfig: access},
		LinkSpec{A: rname(p.Hops), B: "dst", LinkConfig: access},
	)
	spec.Workloads = append(spec.Workloads, Workload{
		Kind: KindStream, From: "src", To: "dst", CC: p.CC,
	})
	for i := 0; i < p.Hops; i++ {
		x, y := fmt.Sprintf("x%d", i), fmt.Sprintf("y%d", i)
		spec.Links = append(spec.Links,
			LinkSpec{A: x, B: rname(i), LinkConfig: access},
			LinkSpec{A: rname(i + 1), B: y, LinkConfig: access},
		)
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: KindStream, From: x, To: y, CC: p.CC,
		})
	}
	return spec
}

// StarParams parameterises the hub-and-spoke topology.
type StarParams struct {
	// Leaves is the number of spoke hosts (>= 3).
	Leaves int
	// CC selects the congestion controller of all workloads.
	CC string
	// SpokeBandwidth is the per-spoke rate (default 10 Mbps).
	SpokeBandwidth netsim.Bandwidth
	// Bytes per flow (0 = stream).
	Bytes    int
	Duration time.Duration
	Seed     int64
}

// Star builds N leaf hosts around one hub router, with each leaf sending to
// the next (li -> l(i+1) mod N), so every flow crosses two spoke links and
// contends at the hub. A server-like concentration pattern appears at each
// leaf's uplink.
func Star(p StarParams) Spec {
	if p.Leaves < 3 {
		p.Leaves = 4
	}
	if p.CC == "" {
		p.CC = CCCM
	}
	if p.SpokeBandwidth == 0 {
		p.SpokeBandwidth = 10 * netsim.Mbps
	}
	if p.Duration <= 0 {
		p.Duration = 20 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	spoke := netsim.LinkConfig{
		Bandwidth:    p.SpokeBandwidth,
		Delay:        5 * time.Millisecond,
		QueuePackets: 100,
	}
	spec := Spec{
		Name:        "star",
		Description: fmt.Sprintf("%d leaves around one hub router, each streaming to its neighbour", p.Leaves),
		Routers:     []string{"hub"},
		Duration:    p.Duration,
		Seed:        p.Seed,
	}
	lname := func(i int) string { return fmt.Sprintf("l%d", i) }
	kind := KindStream
	if p.Bytes > 0 {
		kind = KindBulk
	}
	for i := 0; i < p.Leaves; i++ {
		spec.Links = append(spec.Links, LinkSpec{A: lname(i), B: "hub", LinkConfig: spoke})
	}
	for i := 0; i < p.Leaves; i++ {
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: kind, From: lname(i), To: lname((i + 1) % p.Leaves),
			Bytes: p.Bytes, CC: p.CC,
		})
	}
	return spec
}

// PointToPointParams parameterises the two-host topology every experiment in
// the paper's evaluation uses.
type PointToPointParams struct {
	Sender, Receiver string
	Link             netsim.LinkConfig
	// Workloads is optional; Build-only users (the experiment runners)
	// attach their own traffic programmatically.
	Workloads []Workload
	Duration  time.Duration
	// WithCM installs a Congestion Manager on the sender even when no
	// declarative workload asks for one.
	WithCM bool
	Seed   int64
}

// PointToPoint builds sender<->receiver joined by one duplex link.
func PointToPoint(p PointToPointParams) Spec {
	if p.Sender == "" {
		p.Sender = "sender"
	}
	if p.Receiver == "" {
		p.Receiver = "receiver"
	}
	if p.Link.Bandwidth == 0 {
		p.Link.Bandwidth = 10 * netsim.Mbps
	}
	if p.Link.QueuePackets == 0 && p.Link.QueueBytes == 0 {
		p.Link.QueuePackets = 120
	}
	if p.Duration <= 0 {
		p.Duration = 30 * time.Second
	}
	spec := Spec{
		Name:        "p2p",
		Description: fmt.Sprintf("point-to-point %s path", p.Link.Bandwidth),
		Links:       []LinkSpec{{A: p.Sender, B: p.Receiver, LinkConfig: p.Link}},
		Workloads:   p.Workloads,
		Duration:    p.Duration,
		Seed:        p.Seed,
	}
	if p.WithCM {
		spec.CMHosts = []string{p.Sender}
	}
	return spec
}
