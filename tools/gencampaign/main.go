// Command gencampaign regenerates the checked-in campaign files under
// examples/campaigns from their canonical Go definitions (fig3.json from
// internal/experiments, churn-soak.json from internal/faults), so the files
// can never drift from the code that defines them.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/sweep"
)

func main() {
	files := map[string]sweep.Campaign{
		"examples/campaigns/fig3.json":       experiments.Fig3Campaign(experiments.Fig3Config{}),
		"examples/campaigns/churn-soak.json": faults.ChurnSoakCampaign(),
	}
	for path, camp := range files {
		data, err := json.MarshalIndent(camp, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
