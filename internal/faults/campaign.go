package faults

import "repro/internal/sweep"

// ChurnSoakCampaign is the canned robustness soak: the churn scenario (CM
// restarts, notify faults, a mid-run host move and Poisson link flaps all at
// once) swept across restart frequency and notification-drop rate, two seed
// replicates per point. Axis params index into the churn spec's documented
// stable positions: generator[1] is s0's cm-restarts process and event[0] is
// s1's set-notify-faults (see scenario.Churn).
//
// The campaign is meant to run under invariant checking (`cmsim -campaign
// examples/campaigns/churn-soak.json -check-invariants` or `make
// soak-smoke`): every replicate's end state must pass faults.Check, whatever
// the fault mix. The file in examples/campaigns is pinned to this definition
// by TestChurnSoakCampaignFileMatchesDefinition; regenerate it with `go run
// ./tools/gencampaign` after changing this.
func ChurnSoakCampaign() sweep.Campaign {
	return sweep.Campaign{
		Name:       "churn-soak",
		Scenario:   "churn",
		Replicates: 2,
		Axes: []sweep.Axis{
			// Mean seconds between s0's CM restarts: roughly every 2s down to
			// roughly every 6s over the 12s run.
			{Param: "generator[1].mean", Values: []float64{2, 6}},
			// s1's probability of dropping each libcm notification delivery.
			{Param: "event[0].drop_rate", Values: []float64{0, 0.05, 0.15}},
		},
		Metrics: []string{
			"total.*",
			"cms[*].Restarts",
			"cms[*].StaleFlowCalls",
			"cms[*].MacroflowResets",
			"cms[*].DroppedSends",
			"cms[*].DroppedUpdates",
			"cms[*].StaleUpdatesDropped",
			"cms[*].stranded_flows",
			"cms[*].outstanding_grants",
		},
	}
}
