package routeproto

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
)

// rig is a hand-wired topology of protocol agents for white-box tests:
// exact-mode installation straight into the host tables.
type rig struct {
	sched  *simtime.Scheduler
	net    *node.Network
	agents map[string]*Agent
	// nbIdx[a][b] is a's neighbor index for the adjacency toward b.
	nbIdx map[string]map[string]int
	links map[[2]string]*netsim.Link
}

func newRig(t *testing.T, cfg Config, edges [][2]string) *rig {
	t.Helper()
	r := &rig{
		sched:  simtime.NewScheduler(),
		agents: make(map[string]*Agent),
		nbIdx:  make(map[string]map[string]int),
		links:  make(map[[2]string]*netsim.Link),
	}
	r.net = node.NewNetwork(r.sched)
	lcfg := netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: time.Millisecond, QueuePackets: 64}
	// Names are collected and iterated in sorted order: seeds, origination
	// and Start order must not depend on map iteration, or two runs of one
	// rig draw different jitter and the determinism tests rightly fail.
	seen := map[string]bool{}
	var names []string
	for _, e := range edges {
		for _, n := range e {
			if !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)
	seed := int64(1)
	for _, n := range names {
		host := r.net.Router(n)
		h := host
		ag := NewAgent(host, r.sched, cfg, seed, func(dest string, l *netsim.Link, metric int) {
			if l == nil {
				h.RemoveRoute(dest)
			} else {
				h.SetRoute(dest, l)
			}
		})
		r.agents[n] = ag
		r.nbIdx[n] = make(map[string]int)
		seed++
	}
	for _, e := range edges {
		d := r.net.ConnectDuplex(e[0], e[1], lcfg)
		r.links[[2]string{e[0], e[1]}] = d.Forward
		r.links[[2]string{e[1], e[0]}] = d.Reverse
		r.nbIdx[e[0]][e[1]] = r.agents[e[0]].AddNeighbor(e[1], d.Forward)
		r.nbIdx[e[1]][e[0]] = r.agents[e[1]].AddNeighbor(e[0], d.Reverse)
	}
	// Warm start: every agent originates its own name and seeds the true
	// shortest-path metrics (BFS over the edge list).
	for _, n := range names {
		ag := r.agents[n]
		ag.Originate(n)
		for nb, idx := range r.nbIdx[n] {
			for dest, d := range bfsDist(nb, edges) {
				if dest == n {
					continue
				}
				ag.SeedRoute(dest, idx, d+1)
			}
		}
	}
	for _, n := range names {
		if err := r.agents[n].Start(); err != nil {
			t.Fatalf("start %s: %v", n, err)
		}
	}
	return r
}

func bfsDist(src string, edges [][2]string) map[string]int {
	adj := map[string][]string{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	dist := map[string]int{src: 0}
	queue := []string{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if _, ok := dist[v]; !ok {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// flip fails or restores the duplex between a and b: both directional links
// and both agents' local detectors.
func (r *rig) flip(a, b string, down bool) {
	r.links[[2]string{a, b}].SetDown(down)
	r.links[[2]string{b, a}].SetDown(down)
	r.agents[a].LinkState(r.nbIdx[a][b], !down)
	r.agents[b].LinkState(r.nbIdx[b][a], !down)
}

func TestLineFailureAndRecovery(t *testing.T) {
	cfg := Config{}.WithDefaults()
	r := newRig(t, cfg, [][2]string{{"a", "b"}, {"b", "c"}})

	ha, hc := r.net.Host("a"), r.net.Host("c")
	if got := ha.RouteTo("c"); got != r.links[[2]string{"a", "b"}] {
		t.Fatalf("warm start: a routes to c over %v, want the a->b link", got)
	}

	r.sched.At(100*time.Millisecond, func() { r.flip("b", "c", true) })
	r.sched.RunUntil(1 * time.Second)
	if l := ha.RouteTo("c"); l != nil {
		t.Fatalf("after b-c failure, a still routes to c over %v", l)
	}
	if l := hc.RouteTo("a"); l != nil {
		t.Fatalf("after b-c failure, c still routes to a over %v", l)
	}

	r.sched.At(2*time.Second, func() { r.flip("b", "c", false) })
	r.sched.RunUntil(5 * time.Second)
	if got := ha.RouteTo("c"); got != r.links[[2]string{"a", "b"}] {
		t.Fatalf("after recovery, a routes to c over %v, want the a->b link", got)
	}
	if got := hc.RouteTo("a"); got != r.links[[2]string{"c", "b"}] {
		t.Fatalf("after recovery, c routes to a over %v, want the c->b link", got)
	}
	for n, ag := range r.agents {
		if ag.Pending() {
			t.Errorf("agent %s still has a pending triggered update at end", n)
		}
	}
}

// TestNoCountToInfinity drops the stub link off a triangle: every router
// must conclude "unreachable" in a bounded number of route changes instead
// of counting the metric up to Infinity around the cycle.
func TestNoCountToInfinity(t *testing.T) {
	cfg := Config{}.WithDefaults()
	r := newRig(t, cfg, [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}, {"c", "d"}})

	r.sched.At(100*time.Millisecond, func() { r.flip("c", "d", true) })
	r.sched.RunUntil(6 * time.Second)

	total := 0
	for n, ag := range r.agents {
		if n == "d" {
			continue
		}
		if l := r.net.Host(n).RouteTo("d"); l != nil {
			t.Errorf("%s still routes to d over %v after the stub failed", n, l)
		}
		total += ag.Stats().RouteChanges
	}
	// A count-to-infinity episode would touch the metric Infinity times per
	// router; a clean withdraw changes each RIB a handful of times.
	if total > 4*cfg.Infinity {
		t.Errorf("%d route changes across the fleet, suspicious of count-to-infinity", total)
	}
}

// TestFaultInjectionDeterministic runs one lossy-control-plane scenario
// twice and requires identical protocol statistics and tables.
func TestFaultInjectionDeterministic(t *testing.T) {
	run := func() (map[string]Stats, map[string]string) {
		cfg := Config{}.WithDefaults()
		r := newRig(t, cfg, [][2]string{{"a", "b"}, {"b", "c"}, {"a", "c"}})
		for n, ag := range r.agents {
			for _, idx := range r.nbIdx[n] {
				ag.SetFaults(idx, 0.3, 0.2, 5*time.Millisecond, 0.1)
			}
		}
		r.sched.At(200*time.Millisecond, func() { r.flip("b", "c", true) })
		r.sched.At(2*time.Second, func() { r.flip("b", "c", false) })
		r.sched.RunUntil(8 * time.Second)
		stats := make(map[string]Stats)
		routes := make(map[string]string)
		for n, ag := range r.agents {
			stats[n] = ag.Stats()
			for _, dest := range []string{"a", "b", "c"} {
				m, via, ok := ag.Route(dest)
				routes[n+"->"+dest] = via
				if n != dest && !ok {
					t.Errorf("%s lost its route to %s despite message loss (metric %d)", n, dest, m)
				}
			}
		}
		return stats, routes
	}
	s1, r1 := run()
	s2, r2 := run()
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("two identical runs produced different stats:\n%v\n%v", s1, s2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("two identical runs produced different tables:\n%v\n%v", r1, r2)
	}
}

// TestHolddownSuppressesEcho pins the holddown accept rule directly: after
// a loss, a fresh advertisement no better than the lost route is rejected
// until the timer expires, while a strictly better one is accepted.
func TestHolddownSuppressesEcho(t *testing.T) {
	cfg := Config{}.WithDefaults()
	sched := simtime.NewScheduler()
	net := node.NewNetwork(sched)
	host := net.Router("r")
	ag := NewAgent(host, sched, cfg, 7, nil)
	lcfg := netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: time.Millisecond}
	d1 := net.ConnectDuplex("r", "n1", lcfg)
	d2 := net.ConnectDuplex("r", "n2", lcfg)
	j1 := ag.AddNeighbor("n1", d1.Forward)
	j2 := ag.AddNeighbor("n2", d2.Forward)
	ag.Originate("r")
	ag.SeedRoute("x", j1, 2)
	if err := ag.Start(); err != nil {
		t.Fatal(err)
	}
	sched.RunUntil(10 * time.Millisecond)

	// n1's path to x dies.
	ag.learn(j1, "x", cfg.Infinity, sched.Now())
	if _, _, ok := ag.Route("x"); ok {
		t.Fatal("x should be unreachable after the withdraw")
	}
	// n2 echoes a same-cost claim during holddown: must be suppressed.
	ag.learn(j2, "x", 2, sched.Now())
	if _, _, ok := ag.Route("x"); ok {
		t.Fatal("holddown failed: same-cost echo accepted immediately after loss")
	}
	if ag.Stats().HolddownSuppressed == 0 {
		t.Fatal("holddown suppression not counted")
	}
	// A strictly better route is accepted even during holddown.
	ag.learn(j2, "x", 0, sched.Now())
	if m, via, ok := ag.Route("x"); !ok || via != "n2" || m != 1 {
		t.Fatalf("better route during holddown rejected: metric=%d via=%q ok=%v", m, via, ok)
	}
}
