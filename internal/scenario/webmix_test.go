package scenario

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
)

// TestWebMixWorkload checks the web-mix kind end to end: staggered Poisson
// arrivals (not a thundering herd at t=0), per-request sampled sizes, and
// most requests completing on an uncongested path.
func TestWebMixWorkload(t *testing.T) {
	spec := PointToPoint(PointToPointParams{
		Link: netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: 5 * time.Millisecond, QueuePackets: 120},
		Workloads: []Workload{{
			Kind: KindWebMix, From: "sender", To: "receiver",
			Flows: 20, Rate: 10, Bytes: 8 << 10, CC: CCCM,
		}},
		Duration: 20 * time.Second,
	})
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Flows) != 20 {
		t.Fatalf("flows = %d, want 20", len(res.Flows))
	}
	established := make(map[time.Duration]bool)
	completed := 0
	var sizes []int64
	for _, f := range res.Flows {
		if f.Established > 0 {
			established[f.Established] = true
		}
		if f.Completed {
			completed++
			sizes = append(sizes, f.Delivered)
		}
	}
	// Arrivals are a Poisson process: essentially every establishment time
	// is distinct, and at 10 req/s over 20 s nearly all 20 requests both
	// arrive and complete on a 10 Mbps path.
	if len(established) < 15 {
		t.Fatalf("only %d distinct establishment times — arrivals not staggered", len(established))
	}
	if completed < 15 {
		t.Fatalf("only %d/20 requests completed", completed)
	}
	// Sizes are sampled per request, not constant.
	distinct := make(map[int64]bool)
	for _, s := range sizes {
		distinct[s] = true
	}
	if len(distinct) < 5 {
		t.Fatalf("request sizes not sampled: %v", sizes)
	}
	// The whole thing is deterministic.
	res2, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(res)
	j2, _ := json.Marshal(res2)
	if string(j1) != string(j2) {
		t.Fatal("web-mix runs are not deterministic")
	}
}

// TestWebMixSharesMacroflow: a CM-managed web mix aggregates all its short
// requests into the sender's macroflow to the destination — the ensemble
// story the workload exists to tell.
func TestWebMixSharesMacroflow(t *testing.T) {
	spec, err := Lookup("webmix")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = 8 * time.Second
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CMs) != 1 {
		t.Fatalf("cm hosts = %d, want 1 (the web-mix sender)", len(res.CMs))
	}
	// All requests target one destination host, so the CM holds exactly one
	// macroflow however many requests have come and gone.
	if res.CMs[0].Macroflows != 1 {
		t.Fatalf("macroflows = %d, want 1", res.CMs[0].Macroflows)
	}
	var webDelivered int64
	for _, f := range res.Flows {
		if f.Workload == 0 {
			webDelivered += f.Delivered
		}
	}
	if webDelivered == 0 {
		t.Fatal("web mix delivered nothing")
	}
}

// TestWebMixValidation: webmix defaults fill in, and a negative rate is
// rejected.
func TestWebMixValidation(t *testing.T) {
	spec := PointToPoint(PointToPointParams{
		Workloads: []Workload{{Kind: KindWebMix, From: "sender", To: "receiver"}},
	})
	spec.fillDefaults()
	w := spec.Workloads[0]
	if w.Flows != 32 || w.Rate != 10 || w.Bytes != 12<<10 {
		t.Fatalf("webmix defaults wrong: %+v", w)
	}
	bad := PointToPoint(PointToPointParams{
		Workloads: []Workload{{Kind: KindWebMix, From: "sender", To: "receiver", Rate: -1}},
	})
	bad.fillDefaults()
	if err := bad.Validate(); err == nil {
		t.Fatal("negative rate must fail validation")
	}
}

// TestGeneratorsExpandIntoTimeline: a spec with generators runs with the
// generated events visible (and firing) in the result records, merged in
// time order with declared events.
func TestGeneratorsExpandIntoTimeline(t *testing.T) {
	spec := PointToPoint(PointToPointParams{
		Link: netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: 5 * time.Millisecond, QueuePackets: 120},
		Workloads: []Workload{{
			Kind: KindStream, From: "sender", To: "receiver", CC: CCCM,
		}},
		Duration: 10 * time.Second,
	})
	spec.Events = []dynamics.Event{
		{At: 4 * time.Second, Kind: dynamics.SetLoss, Link: 0, LossRate: 0.01},
	}
	spec.Generators = []dynamics.Generator{
		{Kind: dynamics.GenPoissonFlaps, Link: 0, MeanUp: 2 * time.Second, MeanDown: 300 * time.Millisecond},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) < 3 {
		t.Fatalf("expected the declared event plus generated flap pairs, got %d records", len(res.Events))
	}
	downs, ups, declared := 0, 0, 0
	var prev time.Duration
	for i, ev := range res.Events {
		if ev.At < prev {
			t.Fatalf("record %d out of time order: %v after %v", i, ev.At, prev)
		}
		prev = ev.At
		switch ev.Kind {
		case dynamics.LinkDown:
			downs++
		case dynamics.LinkUp:
			ups++
		case dynamics.SetLoss:
			declared++
		}
		if ev.At < spec.Duration && !ev.Fired {
			t.Fatalf("record %d (%s at %v) did not fire", i, ev.Kind, ev.At)
		}
	}
	if downs == 0 || downs != ups || declared != 1 {
		t.Fatalf("record mix wrong: downs=%d ups=%d declared=%d", downs, ups, declared)
	}
	// The outages must have been real. A down link triggers route
	// recomputation, so traffic offered during an outage dies at the sending
	// host as no-route drops (or on the link as down drops if it was already
	// in the queue path).
	drops := 0
	for _, l := range res.Links {
		drops += l.DownDrops
	}
	for _, h := range res.Hosts {
		drops += h.NoRouteDrops + h.RouteMissDrops + h.ForwardMissDrops
	}
	if drops == 0 {
		t.Fatal("generated outages dropped nothing — flaps did not reach the network")
	}
}

// TestBandwidthWalkNeedsARate: a walk on a link with unset (infinite)
// bandwidth has no starting rate; Build must reject it rather than silently
// run a churnless scenario.
func TestBandwidthWalkNeedsARate(t *testing.T) {
	spec := PointToPoint(PointToPointParams{})
	spec.Links[0].Bandwidth = 0
	spec.Generators = []dynamics.Generator{{Kind: dynamics.GenBandwidthWalk, Link: 0}}
	if _, err := Build(spec); err == nil {
		t.Fatal("bandwidth walk on an infinite link must fail Build")
	}
	// An explicit Initial rescues it.
	spec.Generators[0].Initial = 5 * netsim.Mbps
	if _, err := Build(spec); err != nil {
		t.Fatal(err)
	}
}

// TestGeneratedEventsShardedByteIdentical extends the PR 4 determinism gate
// to generated churn: a sharded run of a spec whose timeline comes from
// generators is byte-identical to the serial run.
func TestGeneratedEventsShardedByteIdentical(t *testing.T) {
	mk := func(shards int) Spec {
		spec := Dumbbell(DumbbellParams{Senders: 2, Receivers: 2, Bytes: 256 << 10, Duration: 8 * time.Second})
		spec.Name = "gen-sharded"
		spec.Generators = []dynamics.Generator{
			{Kind: dynamics.GenPoissonFlaps, Link: 0, MeanUp: 2 * time.Second, MeanDown: 250 * time.Millisecond},
			{Kind: dynamics.GenBandwidthWalk, Link: 0, Step: time.Second},
		}
		spec.Shards = shards
		return spec
	}
	serial, err := Run(mk(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4} {
		sharded, err := Run(mk(shards))
		if err != nil {
			t.Fatal(err)
		}
		sj, _ := json.Marshal(serial)
		kj, _ := json.Marshal(sharded)
		if string(sj) != string(kj) {
			t.Fatalf("sharded (%d) run with generated events differs from serial", shards)
		}
	}
}
