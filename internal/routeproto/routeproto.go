// Package routeproto is a deterministic distance-vector routing protocol
// layered on the simulator's packet substrate. It replaces the route engine's
// instant-global-BFS "oracle" with honest hop-by-hop convergence: link
// endpoints detect down/up locally, originate withdraw/advertise messages
// that travel as ordinary simulated packets (they queue, drop and cross shard
// barriers like data traffic), and peers update their tables incrementally
// per received message.
//
// The protocol is RIP-shaped: hop-count metrics with a small Infinity,
// split horizon with poisoned reverse, a holddown timer to suppress
// count-to-infinity races, triggered updates with seeded jittered backoff,
// and a periodic full-table refresh as the safety net that also ages out
// routes whose advertiser fell silent (see docs/ROUTING.md).
//
// Everything is driven by a simtime.Scheduler and a seeded rand.Rand, so two
// runs of one spec — serial, parallel or sharded — exchange byte-identical
// message sequences.
package routeproto

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
)

// Config holds the protocol timers and constants. The zero value means "use
// the default" for every field; call WithDefaults to resolve them.
type Config struct {
	// RefreshInterval is the period of the full-table refresh each agent
	// sends to every live neighbor (with a seeded per-agent phase offset so
	// the fleet does not tick in lockstep).
	RefreshInterval time.Duration `json:"refresh_interval,omitempty"`
	// ExpireAfter ages out a route whose advertising neighbor has not
	// refreshed it. It must be at least twice RefreshInterval so one lost
	// refresh does not flap the table.
	ExpireAfter time.Duration `json:"expire_after,omitempty"`
	// Holddown is how long, after losing a destination entirely, an agent
	// defers selecting newly appearing routes to it that are no better than
	// the one it lost — the standard suppression of count-to-infinity echoes
	// that split horizon alone cannot catch on loops of three or more
	// routers. Deferred claims are recorded (and re-evaluated when the
	// holddown expires), never discarded: discarding would leave the agent
	// waiting for the claimant's next periodic refresh, turning every
	// holddown into a refresh-length outage and breaking the convergence
	// bound.
	Holddown time.Duration `json:"holddown,omitempty"`
	// TriggerDelayMin/Max bound the seeded jittered backoff between a table
	// change and the triggered update announcing it; the jitter
	// desynchronises update storms after a shared failure.
	TriggerDelayMin time.Duration `json:"trigger_delay_min,omitempty"`
	TriggerDelayMax time.Duration `json:"trigger_delay_max,omitempty"`
	// Infinity is the unreachable metric (RIP uses 16). Paths of
	// Infinity-1 hops or longer are unroutable.
	Infinity int `json:"infinity,omitempty"`
	// Port is the UDP-style port routing messages are bound to.
	Port int `json:"port,omitempty"`
}

// Protocol defaults: timers tuned so a fat-tree heals in well under a second
// while the refresh safety net still exercises within short scenario runs.
const (
	DefaultRefreshInterval = time.Second
	DefaultExpireAfter     = 2500 * time.Millisecond
	DefaultHolddown        = 500 * time.Millisecond
	DefaultTriggerDelayMin = 20 * time.Millisecond
	DefaultTriggerDelayMax = 80 * time.Millisecond
	DefaultInfinity        = 16
	DefaultPort            = 520
)

// WithDefaults returns the config with every zero field resolved.
func (c Config) WithDefaults() Config {
	if c.RefreshInterval == 0 {
		c.RefreshInterval = DefaultRefreshInterval
	}
	if c.ExpireAfter == 0 {
		c.ExpireAfter = DefaultExpireAfter
	}
	if c.Holddown == 0 {
		c.Holddown = DefaultHolddown
	}
	if c.TriggerDelayMin == 0 {
		c.TriggerDelayMin = DefaultTriggerDelayMin
	}
	if c.TriggerDelayMax == 0 {
		c.TriggerDelayMax = DefaultTriggerDelayMax
	}
	if c.Infinity == 0 {
		c.Infinity = DefaultInfinity
	}
	if c.Port == 0 {
		c.Port = DefaultPort
	}
	return c
}

// Validate rejects unusable timer combinations. It expects a config already
// resolved by WithDefaults.
func (c Config) Validate() error {
	if c.RefreshInterval <= 0 {
		return fmt.Errorf("routeproto: refresh_interval must be positive, got %v", c.RefreshInterval)
	}
	if c.ExpireAfter < 2*c.RefreshInterval {
		return fmt.Errorf("routeproto: expire_after (%v) must be at least twice refresh_interval (%v)", c.ExpireAfter, c.RefreshInterval)
	}
	if c.Holddown < 0 {
		return fmt.Errorf("routeproto: holddown must be non-negative, got %v", c.Holddown)
	}
	if c.TriggerDelayMin <= 0 || c.TriggerDelayMax < c.TriggerDelayMin {
		return fmt.Errorf("routeproto: trigger delay window [%v, %v] invalid", c.TriggerDelayMin, c.TriggerDelayMax)
	}
	if c.Infinity < 2 || c.Infinity > 255 {
		return fmt.Errorf("routeproto: infinity must be in [2, 255], got %d", c.Infinity)
	}
	if c.Port <= 0 || c.Port > 65535 {
		return fmt.Errorf("routeproto: port %d out of range", c.Port)
	}
	return nil
}

// Entry advertises one destination at a metric. Metric == Infinity is a
// withdraw.
type Entry struct {
	Dest   string
	Metric int
}

// Message is the payload of one routing packet: the sender's current view of
// a set of destinations. Entries are sorted by destination.
type Message struct {
	From    string
	Entries []Entry
}

// messageOverhead approximates the IP header plus a RIP-style fixed header.
const messageOverhead = 28

// entryOverhead is the per-entry wire cost beyond the destination name:
// metric byte plus framing.
const entryOverhead = 5

// WireSize is the simulated on-the-wire size of the message in bytes, which
// is what link serialisation and queue occupancy charge for it.
func (m *Message) WireSize() int {
	n := messageOverhead
	for i := range m.Entries {
		n += len(m.Entries[i].Dest) + entryOverhead
	}
	return n
}

// Stats are an agent's cumulative protocol counters.
type Stats struct {
	MessagesSent       int
	MessagesReceived   int
	EntriesSent        int
	EntriesReceived    int
	TriggeredUpdates   int
	Refreshes          int
	RouteChanges       int
	HolddownSuppressed int
	FaultDropped       int
	FaultDelayed       int
	FaultDuplicated    int
	UnknownNeighbor    int
}

// Add accumulates other into s (used for fleet-wide reporting).
func (s *Stats) Add(o Stats) {
	s.MessagesSent += o.MessagesSent
	s.MessagesReceived += o.MessagesReceived
	s.EntriesSent += o.EntriesSent
	s.EntriesReceived += o.EntriesReceived
	s.TriggeredUpdates += o.TriggeredUpdates
	s.Refreshes += o.Refreshes
	s.RouteChanges += o.RouteChanges
	s.HolddownSuppressed += o.HolddownSuppressed
	s.FaultDropped += o.FaultDropped
	s.FaultDelayed += o.FaultDelayed
	s.FaultDuplicated += o.FaultDuplicated
	s.UnknownNeighbor += o.UnknownNeighbor
}

// neighbor is one adjacency: the directional link toward the peer and the
// agent's local view of its state, plus the control-plane fault injector
// settings for messages sent on it.
type neighbor struct {
	name string
	out  *netsim.Link
	up   bool
	// full marks the neighbor as owed a full-table update (set when the
	// link comes back up), flushed with the next triggered update.
	full bool

	dropRate  float64
	delayRate float64
	delay     time.Duration
	dupRate   float64
}

// ribEntry is the per-destination routing information base: the last metric
// heard from each neighbor (-1 = none), when it was heard, and the currently
// installed best route.
type ribEntry struct {
	adv     []int32
	heard   []time.Duration
	best    int32
	bestVia int32 // neighbor index, or -1 for self/unreachable
	origin  bool
	// holddown state: until holdUntil, claims with metric >= holdMetric are
	// recorded but not selected; holdArmed marks the pending re-selection
	// timer that fires at holdUntil.
	holdUntil  time.Duration
	holdMetric int32
	holdArmed  bool
}

// InstallFunc applies one converged route decision to the forwarding plane:
// dest is reachable over link at metric, or unreachable when link is nil
// (metric == Infinity). The scenario layer maps it onto exact host routes or
// hierarchical domain routes.
type InstallFunc func(dest string, link *netsim.Link, metric int)

// Agent runs the protocol on one host. Construction order is fixed:
// NewAgent, AddNeighbor for every adjacency, Originate/SeedRoute to warm the
// RIB, then Start. After Start the agent is message-driven.
type Agent struct {
	host    *node.Host
	sched   *simtime.Scheduler
	cfg     Config
	rng     *rand.Rand
	install InstallFunc

	neighbors []*neighbor
	nbIndex   map[string]int

	rib          map[string]*ribEntry
	dirty        map[string]bool
	pendingFlush bool
	started      bool
	inf          int32

	stats Stats
}

// NewAgent creates an idle agent on host. cfg must already be resolved with
// WithDefaults and validated; seed derives the agent's private jitter and
// fault-injection stream; install receives every converged route change (nil
// disables installation, for tests).
func NewAgent(host *node.Host, sched *simtime.Scheduler, cfg Config, seed int64, install InstallFunc) *Agent {
	if host == nil || sched == nil {
		panic("routeproto: NewAgent requires a host and scheduler")
	}
	return &Agent{
		host:    host,
		sched:   sched,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(seed)),
		install: install,
		nbIndex: make(map[string]int),
		rib:     make(map[string]*ribEntry),
		dirty:   make(map[string]bool),
		inf:     int32(cfg.Infinity),
	}
}

// Name returns the agent's current host name (it follows host renames).
func (a *Agent) Name() string { return a.host.Name() }

// Stats returns a copy of the agent's counters.
func (a *Agent) Stats() Stats { return a.stats }

// Pending reports whether the agent has a triggered update scheduled but not
// yet sent — the protocol-quiescence probe. Periodic refreshes do not count.
func (a *Agent) Pending() bool { return a.pendingFlush || len(a.dirty) > 0 }

// AddNeighbor registers the adjacency toward name over the directional link
// out, returning the neighbor index used by LinkState/SetFaults. All
// neighbors must be added before any route is seeded.
func (a *Agent) AddNeighbor(name string, out *netsim.Link) int {
	if len(a.rib) > 0 || a.started {
		panic("routeproto: AddNeighbor after routes were seeded")
	}
	if out == nil {
		panic("routeproto: AddNeighbor with nil link")
	}
	if _, ok := a.nbIndex[name]; ok {
		panic(fmt.Sprintf("routeproto: duplicate neighbor %q on %s", name, a.host.Name()))
	}
	j := len(a.neighbors)
	a.neighbors = append(a.neighbors, &neighbor{name: name, out: out, up: true})
	a.nbIndex[name] = j
	return j
}

// RenameNeighbor updates the peer name of adjacency j (the interface itself
// is unchanged); messages from the new name demultiplex to the same RIB
// column. Used when the peer host is renumbered.
func (a *Agent) RenameNeighbor(j int, newName string) {
	nb := a.neighbors[j]
	delete(a.nbIndex, nb.name)
	nb.name = newName
	a.nbIndex[newName] = j
}

// SetFaults configures the control-plane fault injector for messages sent to
// neighbor j: each message is independently dropped with probability drop,
// delayed by delay with probability delayRate, and duplicated with
// probability dup. Draws come from the agent's seeded stream.
func (a *Agent) SetFaults(j int, drop, delayRate float64, delay time.Duration, dup float64) {
	nb := a.neighbors[j]
	nb.dropRate, nb.delayRate, nb.delay, nb.dupRate = drop, delayRate, delay, dup
}

func (a *Agent) entry(dest string) *ribEntry {
	e := a.rib[dest]
	if e == nil {
		e = &ribEntry{
			adv:     make([]int32, len(a.neighbors)),
			heard:   make([]time.Duration, len(a.neighbors)),
			best:    a.inf,
			bestVia: -1,
		}
		for j := range e.adv {
			e.adv[j] = -1
		}
		a.rib[dest] = e
	}
	return e
}

// Originate declares dest as locally attached at metric 0 (a host's own
// name, or a router's covering domain). After Start it also triggers an
// advertisement.
func (a *Agent) Originate(dest string) {
	e := a.entry(dest)
	e.origin = true
	e.best, e.bestVia = 0, -1
	if a.started {
		a.markDirty(dest)
	}
}

// Unoriginate silently stops originating dest (a renumbered host's old
// name). No withdraw is sent: peers age the route out via ExpireAfter and
// propagate the withdraw themselves — the protocol, not an oracle, retires
// the old address.
func (a *Agent) Unoriginate(dest string) {
	e := a.rib[dest]
	if e == nil || !e.origin {
		return
	}
	delete(a.rib, dest)
	delete(a.dirty, dest)
}

// SeedRoute warm-starts the RIB before Start: neighbor via advertises dest
// at metric (already including the hop to that neighbor). Metrics at or
// above Infinity are ignored.
func (a *Agent) SeedRoute(dest string, via int, metric int) {
	if metric >= int(a.inf) {
		return
	}
	e := a.entry(dest)
	if e.origin {
		return
	}
	e.adv[via] = int32(metric)
}

// Start binds the routing port, installs the warm-started table and arms the
// periodic refresh. Installation is silent: a consistently seeded fleet
// starts converged, with nothing to advertise.
func (a *Agent) Start() error {
	if a.started {
		return fmt.Errorf("routeproto: %s already started", a.host.Name())
	}
	if err := a.host.Bind(netsim.ProtoRoute, a.cfg.Port, node.HandlerFunc(a.handle)); err != nil {
		return err
	}
	for _, dest := range a.sortedRib() {
		e := a.rib[dest]
		if e.origin {
			continue
		}
		bm, bv := a.bestOf(e)
		e.best, e.bestVia = bm, bv
		if bv >= 0 && a.install != nil {
			a.install(dest, a.neighbors[bv].out, int(bm))
		}
	}
	a.started = true
	// Seeded phase offset: agents refresh at the same period but different
	// phases, so the fleet's refresh traffic is spread out.
	phase := time.Duration(a.rng.Int63n(int64(a.cfg.RefreshInterval)/4 + 1))
	a.sched.AfterKind(a.cfg.RefreshInterval+phase, simtime.KindRouteUpdate, a.refreshTick)
	return nil
}

// LinkState tells the agent its adjacency j flipped: the local failure
// detector (the dynamics timeline) saw the attached link go down or come up.
// Down forgets everything learned via j and re-evaluates; up schedules a
// full-table exchange.
func (a *Agent) LinkState(j int, up bool) {
	nb := a.neighbors[j]
	if nb.up == up {
		return
	}
	nb.up = up
	if up {
		nb.full = true
		a.scheduleFlush()
		return
	}
	now := a.sched.Now()
	for dest, e := range a.rib {
		if e.adv[j] < 0 {
			continue
		}
		e.adv[j] = -1
		a.evaluate(dest, e, now)
	}
}

// bestOf scans the RIB entry for the minimum metric over live neighbors;
// ties break to the lowest adjacency index, which every run resolves
// identically.
func (a *Agent) bestOf(e *ribEntry) (int32, int32) {
	if e.origin {
		return 0, -1
	}
	bm, bv := a.inf, int32(-1)
	for i, nb := range a.neighbors {
		if !nb.up {
			continue
		}
		if c := e.adv[i]; c >= 0 && c < bm {
			bm, bv = c, int32(i)
		}
	}
	return bm, bv
}

// evaluate recomputes the best route for dest, installs a change into the
// forwarding plane and marks it for a triggered update. A transition to
// unreachable arms the holddown timer.
func (a *Agent) evaluate(dest string, e *ribEntry, now time.Duration) {
	bm, bv := a.bestOf(e)
	if bm == e.best && bv == e.bestVia {
		return
	}
	if e.best < a.inf && bm >= a.inf {
		e.holdUntil = now + a.cfg.Holddown
		e.holdMetric = e.best
	}
	e.best, e.bestVia = bm, bv
	a.stats.RouteChanges++
	if a.install != nil {
		var l *netsim.Link
		if bv >= 0 {
			l = a.neighbors[bv].out
		}
		a.install(dest, l, int(bm))
	}
	a.markDirty(dest)
}

// handle is the bound receiver for routing packets.
func (a *Agent) handle(pkt *netsim.Packet) {
	msg, ok := pkt.Payload.(*Message)
	if !ok {
		return
	}
	j, ok := a.nbIndex[msg.From]
	if !ok {
		a.stats.UnknownNeighbor++
		return
	}
	a.stats.MessagesReceived++
	a.stats.EntriesReceived += len(msg.Entries)
	if !a.neighbors[j].up {
		// Our local detector says the link is down; ignore the stale or
		// asymmetric delivery rather than learning over a dead adjacency.
		return
	}
	now := a.sched.Now()
	for i := range msg.Entries {
		a.learn(j, msg.Entries[i].Dest, msg.Entries[i].Metric, now)
	}
}

// learn processes one advertised (dest, metric) from neighbor j.
func (a *Agent) learn(j int, dest string, metric int, now time.Duration) {
	if metric < 0 {
		return
	}
	cost := int32(metric) + 1
	if cost > a.inf {
		cost = a.inf
	}
	e := a.rib[dest]
	if e == nil {
		if cost >= a.inf {
			return // a withdraw for something we never knew
		}
		e = a.entry(dest)
	}
	if e.origin {
		return
	}
	if cost < a.inf && now < e.holdUntil && cost >= e.holdMetric {
		// Holddown: a claim no better than the route we just lost — likely
		// our own reachability echoing back around a loop. Record it but
		// defer the selection to the holddown's expiry: the information is
		// kept, so recovery costs at most the holddown itself, never a wait
		// for the claimant's next periodic refresh.
		if e.adv[j] != cost {
			a.stats.HolddownSuppressed++
		}
		e.adv[j] = cost
		e.heard[j] = now
		a.armHold(dest, e, now)
		return
	}
	if cost >= a.inf {
		if e.adv[j] < 0 {
			return
		}
		e.adv[j] = -1
	} else {
		e.adv[j] = cost
		e.heard[j] = now
	}
	a.evaluate(dest, e, now)
}

// armHold schedules the deferred re-selection at the entry's holddown
// expiry. One timer per entry at a time; if the holddown re-arms while the
// timer is in flight, holdExpired reschedules for the remainder.
func (a *Agent) armHold(dest string, e *ribEntry, now time.Duration) {
	if e.holdArmed {
		return
	}
	e.holdArmed = true
	a.sched.AfterKind(e.holdUntil-now, simtime.KindRouteUpdate, func() { a.holdExpired(dest) })
}

// holdExpired re-evaluates a destination whose holddown window closed, so
// claims recorded during the window take effect without waiting for the next
// message to arrive.
func (a *Agent) holdExpired(dest string) {
	e := a.rib[dest]
	if e == nil {
		return
	}
	e.holdArmed = false
	now := a.sched.Now()
	if now < e.holdUntil {
		a.armHold(dest, e, now)
		return
	}
	a.evaluate(dest, e, now)
}

// markDirty queues dest for the next triggered update.
func (a *Agent) markDirty(dest string) {
	if !a.started {
		return
	}
	a.dirty[dest] = true
	a.scheduleFlush()
}

// scheduleFlush arms one triggered update after the seeded jittered backoff.
// Changes arriving while the flush is pending batch into it.
func (a *Agent) scheduleFlush() {
	if !a.started || a.pendingFlush {
		return
	}
	a.pendingFlush = true
	d := a.cfg.TriggerDelayMin
	if span := a.cfg.TriggerDelayMax - a.cfg.TriggerDelayMin; span > 0 {
		d += time.Duration(a.rng.Int63n(int64(span) + 1))
	}
	a.sched.AfterKind(d, simtime.KindRouteUpdate, a.flush)
}

// flush sends the pending triggered update: changed destinations to every
// live neighbor, or the full table to neighbors owed one after a link-up.
func (a *Agent) flush() {
	a.pendingFlush = false
	var dests []string
	if len(a.dirty) > 0 {
		dests = make([]string, 0, len(a.dirty))
		for d := range a.dirty {
			dests = append(dests, d)
		}
		sort.Strings(dests)
	}
	var full []string
	sent := false
	for j, nb := range a.neighbors {
		if !nb.up {
			continue
		}
		if nb.full {
			nb.full = false
			if full == nil {
				full = a.sortedRib()
			}
			sent = a.sendTo(j, full) || sent
		} else if len(dests) > 0 {
			sent = a.sendTo(j, dests) || sent
		}
	}
	clear(a.dirty)
	if sent {
		a.stats.TriggeredUpdates++
	}
}

// refreshTick is the periodic safety net: age out silent routes,
// garbage-collect fully dead entries, and re-advertise the whole table to
// every live neighbor.
func (a *Agent) refreshTick() {
	now := a.sched.Now()
	a.stats.Refreshes++
	for dest, e := range a.rib {
		if e.origin {
			continue
		}
		changed := false
		for j := range e.adv {
			if e.adv[j] >= 0 && now-e.heard[j] > a.cfg.ExpireAfter {
				e.adv[j] = -1
				changed = true
			}
		}
		if changed {
			a.evaluate(dest, e, now)
		}
		if e.best >= a.inf && !a.dirty[dest] && now >= e.holdUntil && allUnheard(e.adv) {
			delete(a.rib, dest)
		}
	}
	full := a.sortedRib()
	for j, nb := range a.neighbors {
		if nb.up {
			a.sendTo(j, full)
		}
	}
	a.sched.AfterKind(a.cfg.RefreshInterval, simtime.KindRouteUpdate, a.refreshTick)
}

func allUnheard(adv []int32) bool {
	for _, c := range adv {
		if c >= 0 {
			return false
		}
	}
	return true
}

// sendTo builds and transmits one message for the given destinations to
// neighbor j, applying split horizon with poisoned reverse and the
// per-neighbor fault injector. It reports whether a message was composed
// (even if the injector then dropped it — the work was triggered).
func (a *Agent) sendTo(j int, dests []string) bool {
	nb := a.neighbors[j]
	entries := make([]Entry, 0, len(dests))
	for _, d := range dests {
		e := a.rib[d]
		if e == nil {
			continue
		}
		m := int(e.best)
		if e.bestVia == int32(j) {
			// Poisoned reverse: routes via this neighbor advertise as
			// unreachable to it, killing two-node loops outright.
			m = int(a.inf)
		}
		entries = append(entries, Entry{Dest: d, Metric: m})
	}
	if len(entries) == 0 {
		return false
	}
	a.stats.MessagesSent++
	a.stats.EntriesSent += len(entries)
	if nb.dropRate > 0 && a.rng.Float64() < nb.dropRate {
		a.stats.FaultDropped++
		return true
	}
	var delay time.Duration
	if nb.delayRate > 0 && a.rng.Float64() < nb.delayRate {
		delay = nb.delay
		a.stats.FaultDelayed++
	}
	copies := 1
	if nb.dupRate > 0 && a.rng.Float64() < nb.dupRate {
		copies = 2
		a.stats.FaultDuplicated++
	}
	msg := &Message{From: a.host.Name(), Entries: entries}
	size := msg.WireSize()
	src := netsim.Addr{Host: msg.From, Port: a.cfg.Port}
	dst := netsim.Addr{Host: nb.name, Port: a.cfg.Port}
	send := func() {
		for c := 0; c < copies; c++ {
			pkt := netsim.NewPacket()
			pkt.Proto = netsim.ProtoRoute
			pkt.Src = src
			pkt.Dst = dst
			pkt.Size = size
			pkt.Payload = msg
			pkt.Control = true
			pkt.TTL = 2
			nb.out.Send(pkt)
		}
	}
	if delay > 0 {
		a.sched.AfterKind(delay, simtime.KindRouteUpdate, send)
	} else {
		send()
	}
	return true
}

// Route reports the agent's converged metric for dest (for tests and
// audits): ok is false when dest is unknown or unreachable.
func (a *Agent) Route(dest string) (metric int, via string, ok bool) {
	e := a.rib[dest]
	if e == nil || e.best >= a.inf {
		return 0, "", false
	}
	if e.bestVia >= 0 {
		via = a.neighbors[e.bestVia].name
	}
	return int(e.best), via, true
}

func (a *Agent) sortedRib() []string {
	keys := make([]string, 0, len(a.rib))
	for d := range a.rib {
		keys = append(keys, d)
	}
	sort.Strings(keys)
	return keys
}
