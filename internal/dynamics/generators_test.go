package dynamics

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestGeneratorValidate(t *testing.T) {
	good := []Generator{
		{Kind: GenPoissonFlaps, Link: 0},
		{Kind: GenPoissonFlaps, Link: 1, Direction: DirForward, Start: time.Second, End: 2 * time.Second},
		{Kind: GenBandwidthWalk, Link: 0, Factor: 2, Min: netsim.Mbps, Max: 10 * netsim.Mbps},
	}
	for i, g := range good {
		if err := g.Validate(2); err != nil {
			t.Fatalf("generator %d should validate: %v", i, err)
		}
	}
	bad := []Generator{
		{Kind: "nope", Link: 0},
		{Kind: GenPoissonFlaps, Link: 2},
		{Kind: GenPoissonFlaps, Link: -1},
		{Kind: GenPoissonFlaps, Link: 0, Direction: "sideways"},
		{Kind: GenPoissonFlaps, Link: 0, Start: 2 * time.Second, End: time.Second},
		{Kind: GenBandwidthWalk, Link: 0, Factor: 0.5},
		{Kind: GenBandwidthWalk, Link: 0, Min: 10 * netsim.Mbps, Max: netsim.Mbps},
	}
	for i, g := range bad {
		if err := g.Validate(2); err == nil {
			t.Fatalf("generator %d should fail validation: %+v", i, g)
		}
	}
}

// TestPoissonFlapsExpand checks the structural invariants of the flap
// process: alternating down/up pairs, monotone times inside [Start, End],
// and deterministic re-expansion.
func TestPoissonFlapsExpand(t *testing.T) {
	g := Generator{
		Kind: GenPoissonFlaps, Link: 3, Seed: 7,
		Start: time.Second, End: 60 * time.Second,
		MeanUp: 2 * time.Second, MeanDown: 500 * time.Millisecond,
	}
	evs := g.Expand()
	if len(evs) == 0 || len(evs)%2 != 0 {
		t.Fatalf("expected down/up pairs, got %d events", len(evs))
	}
	prev := g.Start
	for i := 0; i < len(evs); i += 2 {
		down, up := evs[i], evs[i+1]
		if down.Kind != LinkDown || up.Kind != LinkUp {
			t.Fatalf("pair %d kinds = %s/%s", i/2, down.Kind, up.Kind)
		}
		if down.Link != 3 || up.Link != 3 {
			t.Fatalf("pair %d wrong link", i/2)
		}
		if down.At <= prev || up.At <= down.At || up.At > g.End {
			t.Fatalf("pair %d times out of order: prev=%v down=%v up=%v", i/2, prev, down.At, up.At)
		}
		prev = up.At
	}
	if !reflect.DeepEqual(evs, g.Expand()) {
		t.Fatal("expansion not deterministic")
	}
	g2 := g
	g2.Seed = 8
	if reflect.DeepEqual(evs, g2.Expand()) {
		t.Fatal("different seeds should produce different traces")
	}
	for _, ev := range evs {
		if err := ev.Validate(4); err != nil {
			t.Fatalf("expanded event invalid: %v", err)
		}
	}
}

// TestBandwidthWalkExpand checks the walk stays clamped, steps on the step
// grid and only ever moves by Factor.
func TestBandwidthWalkExpand(t *testing.T) {
	g := Generator{
		Kind: GenBandwidthWalk, Link: 1, Seed: 11,
		End: 30 * time.Second, Step: time.Second, Factor: 2,
		Initial: 8 * netsim.Mbps, Min: 2 * netsim.Mbps, Max: 32 * netsim.Mbps,
	}
	evs := g.Expand()
	if len(evs) != 29 { // steps at 1s..29s, End exclusive
		t.Fatalf("events = %d, want 29", len(evs))
	}
	prev := g.Initial
	for i, ev := range evs {
		if ev.Kind != SetBandwidth || ev.Link != 1 {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if want := g.Start + time.Duration(i+1)*g.Step; ev.At != want {
			t.Fatalf("event %d at %v, want %v", i, ev.At, want)
		}
		if ev.Bandwidth < g.Min || ev.Bandwidth > g.Max {
			t.Fatalf("event %d bandwidth %v outside clamp", i, ev.Bandwidth)
		}
		ratio := float64(ev.Bandwidth) / float64(prev)
		if ratio > 2.000001 || ratio < 0.4999999 {
			t.Fatalf("event %d moved by %v, want a factor-2 step (or clamp)", i, ratio)
		}
		prev = ev.Bandwidth
	}
	if !reflect.DeepEqual(evs, g.Expand()) {
		t.Fatal("expansion not deterministic")
	}
}

// TestGeneratorZeroWindow: a generator whose window is empty expands to
// nothing rather than panicking.
func TestGeneratorZeroWindow(t *testing.T) {
	g := Generator{Kind: GenPoissonFlaps, Link: 0, Start: time.Second, End: time.Second}
	if evs := g.Expand(); len(evs) != 0 {
		t.Fatalf("empty window expanded to %d events", len(evs))
	}
}
