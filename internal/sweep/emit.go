package sweep

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// The emitters are deterministic by construction: points in expansion order,
// metric keys sorted, floats formatted with strconv's shortest round-trip
// representation. Byte-comparing two emissions is therefore a valid check
// that two executions (serial vs parallel, local vs CI) ran identically.

// sortedMetricKeys returns the point's metric keys in sorted order.
func (p *PointResult) sortedMetricKeys() []string {
	keys := make([]string, 0, len(p.Metrics))
	for k := range p.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// CSV renders the campaign in long format, one row per (point, metric):
//
//	point,<param per axis...>,metric,n,mean,stddev,min,max,p50,p99
//
// Failed points contribute no metric rows (their errors appear in the JSON
// emission).
func (r *CampaignResult) CSV() string {
	var b strings.Builder
	b.WriteString("point")
	for _, p := range r.Params {
		b.WriteByte(',')
		b.WriteString(p)
	}
	b.WriteString(",metric,n,mean,stddev,min,max,p50,p99\n")
	for i := range r.Points {
		pt := &r.Points[i]
		var prefix strings.Builder
		fmt.Fprintf(&prefix, "%d", pt.Index)
		for _, v := range pt.Values {
			prefix.WriteByte(',')
			prefix.WriteString(v.String())
		}
		for _, key := range pt.sortedMetricKeys() {
			s := pt.Metrics[key]
			fmt.Fprintf(&b, "%s,%s,%d,%s,%s,%s,%s,%s,%s\n",
				prefix.String(), key, s.N,
				formatFloat(s.Mean), formatFloat(s.Stddev),
				formatFloat(s.Min), formatFloat(s.Max),
				formatFloat(s.P50), formatFloat(s.P99))
		}
	}
	return b.String()
}

// JSON renders the campaign result as indented JSON (map keys sorted by
// encoding/json, so the bytes are deterministic too).
func (r *CampaignResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Table renders an aligned long-format table for terminals.
func (r *CampaignResult) Table() string {
	header := append([]string{"point"}, r.Params...)
	header = append(header, "metric", "n", "mean", "stddev", "min", "max", "p50", "p99")
	var rows [][]string
	for i := range r.Points {
		pt := &r.Points[i]
		base := []string{fmt.Sprintf("%d", pt.Index)}
		for _, v := range pt.Values {
			base = append(base, v.String())
		}
		if pt.Failed > 0 && len(pt.Metrics) == 0 {
			row := append(append([]string(nil), base...), fmt.Sprintf("(all %d replicate(s) failed)", pt.Failed))
			for len(row) < len(header) {
				row = append(row, "")
			}
			rows = append(rows, row)
			continue
		}
		for _, key := range pt.sortedMetricKeys() {
			s := pt.Metrics[key]
			row := append(append([]string(nil), base...), key,
				fmt.Sprintf("%d", s.N),
				fmt.Sprintf("%.4g", s.Mean), fmt.Sprintf("%.4g", s.Stddev),
				fmt.Sprintf("%.4g", s.Min), fmt.Sprintf("%.4g", s.Max),
				fmt.Sprintf("%.4g", s.P50), fmt.Sprintf("%.4g", s.P99))
			rows = append(rows, row)
		}
	}
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
