package cm

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// newScaleCM builds a CM with nflows flows aggregated into one macroflow
// (same destination host), each with a send callback that charges its grant —
// the shape of a busy server scheduling a large ensemble.
func newScaleCM(nflows int) (*simtime.Scheduler, *CM, []FlowID) {
	sched := simtime.NewScheduler()
	c := New(sched, sched)
	dst := netsim.Addr{Host: "server", Port: 80}
	ids := make([]FlowID, nflows)
	for i := range ids {
		ids[i] = c.Open(netsim.ProtoTCP, netsim.Addr{Host: "client", Port: 1000 + i}, dst)
		c.RegisterSend(ids[i], func(f FlowID) { c.Notify(f, 1500) })
	}
	// Open the shared window wide so scheduling, not congestion control, is
	// what the benchmark measures.
	c.Update(ids[0], 0, 1<<24, NoLoss, time.Millisecond)
	return sched, c, ids
}

// BenchmarkScaleRoundRobin1kFlows rotates grants across 1k flows sharing one
// macroflow: each op is one request + grant + notify for one flow.
func BenchmarkScaleRoundRobin1kFlows(b *testing.B) {
	_, c, ids := newScaleCM(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(ids[i%len(ids)])
		if i%1024 == 1023 {
			// Cover the charged bytes so the window stays open.
			c.Update(ids[0], 1024*1500, 1024*1500, NoLoss, 0)
		}
	}
}

// BenchmarkScaleChargePath1kFlows measures the IP-output charge path
// (NotifyTransmit) with 1k managed flows: one FlowKey map lookup plus the
// macroflow charge.
func BenchmarkScaleChargePath1kFlows(b *testing.B) {
	_, c, ids := newScaleCM(1024)
	keys := make([]netsim.FlowKey, len(ids))
	for i, id := range ids {
		keys[i] = c.FlowInfo(id).Key
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NotifyTransmit(keys[i%len(keys)], 1500)
		if i%256 == 255 {
			c.Update(ids[0], 256*1500, 256*1500, NoLoss, 0)
		}
	}
}

// BenchmarkScaleOpenClose1kFlows measures flow churn against an existing
// 1k-flow macroflow: the O(1) scheduler Add/Remove is the dominant cost
// beyond the map inserts.
func BenchmarkScaleOpenClose1kFlows(b *testing.B) {
	_, c, _ := newScaleCM(1024)
	dst := netsim.Addr{Host: "server", Port: 80}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := c.Open(netsim.ProtoTCP, netsim.Addr{Host: "churn", Port: 1 + i%4096}, dst)
		c.Close(f)
	}
}

// BenchmarkScaleSparseEligibility1kFlows is the worst case the eligible-flow
// count guards: 1k registered flows of which only one ever has requests.
// Without the count every closed-window pump would scan the full rotation.
func BenchmarkScaleSparseEligibility1kFlows(b *testing.B) {
	_, c, ids := newScaleCM(1024)
	hot := ids[512]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(hot)
		if i%64 == 63 {
			c.Update(hot, 64*1500, 64*1500, NoLoss, 0)
		}
	}
}
