package udp

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
)

type udpEnv struct {
	sched *simtime.Scheduler
	net   *node.Network
	cm    *cm.CM
}

func newUDPEnv(t *testing.T, link netsim.LinkConfig) *udpEnv {
	t.Helper()
	s := simtime.NewScheduler()
	nw := node.NewNetwork(s)
	nw.ConnectDuplex("sender", "receiver", link)
	c := cm.New(s, s, cm.WithMTU(1500))
	nw.Host("sender").SetTransmitNotifier(c)
	return &udpEnv{sched: s, net: nw, cm: c}
}

func fastLink() netsim.LinkConfig {
	return netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: 5 * time.Millisecond, QueuePackets: 100, Seed: 3}
}

func TestPlainSocketSendReceive(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	rx, err := NewSocket(e.net.Host("receiver"), 5000)
	if err != nil {
		t.Fatal(err)
	}
	var got []*Datagram
	var from netsim.Addr
	rx.OnReceive(func(src netsim.Addr, d *Datagram) { got = append(got, d); from = src })

	tx, err := NewSocket(e.net.Host("sender"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if tx.Local().Port == 0 {
		t.Fatal("ephemeral port not allocated")
	}
	for i := 0; i < 5; i++ {
		if !tx.SendTo(netsim.Addr{Host: "receiver", Port: 5000}, &Datagram{Seq: int64(i), Size: 500}) {
			t.Fatal("send failed")
		}
	}
	e.sched.Run()
	if len(got) != 5 {
		t.Fatalf("received %d datagrams, want 5", len(got))
	}
	if got[0].Seq != 0 || got[4].Seq != 4 {
		t.Fatal("datagrams out of order on a FIFO link")
	}
	if from != tx.Local() {
		t.Fatalf("source address = %v, want %v", from, tx.Local())
	}
	if got[0].SentAt != 0 && got[0].SentAt > e.sched.Now() {
		t.Fatal("SentAt timestamp not stamped correctly")
	}
	st := tx.Stats()
	if st.SentPackets != 5 || st.SentBytes != 2500 {
		t.Fatalf("tx stats %+v", st)
	}
	if rx.Stats().RcvdPackets != 5 {
		t.Fatalf("rx stats %+v", rx.Stats())
	}
}

func TestSocketValidation(t *testing.T) {
	if _, err := NewSocket(nil, 1); err == nil {
		t.Fatal("nil host should fail")
	}
	e := newUDPEnv(t, fastLink())
	if _, err := NewSocket(e.net.Host("sender"), 53); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSocket(e.net.Host("sender"), 53); err == nil {
		t.Fatal("duplicate bind should fail")
	}
	s, _ := NewSocket(e.net.Host("sender"), 54)
	defer func() {
		if recover() == nil {
			t.Fatal("SendTo(nil) should panic")
		}
	}()
	s.SendTo(netsim.Addr{Host: "receiver", Port: 1}, nil)
}

func TestSocketCloseUnbinds(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	s, err := NewSocket(e.net.Host("sender"), 60)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := NewSocket(e.net.Host("sender"), 60); err != nil {
		t.Fatal("port should be reusable after Close")
	}
}

func TestControlSocketNotChargedToCM(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	// Open a CM flow matching the socket's 5-tuple so charging would happen
	// if the control flag were ignored.
	tx, _ := NewSocket(e.net.Host("sender"), 7000)
	dst := netsim.Addr{Host: "receiver", Port: 7001}
	f := e.cm.Open(netsim.ProtoUDP, tx.Local(), dst)
	tx.MarkControl()
	tx.SendTo(dst, &Datagram{Size: 100})
	e.sched.Run()
	if e.cm.MacroflowOf(f).Outstanding() != 0 {
		t.Fatal("control datagrams must not be charged to the macroflow")
	}
}

func TestPlainSocketChargedToCMWhenFlowRegistered(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	tx, _ := NewSocket(e.net.Host("sender"), 7100)
	dst := netsim.Addr{Host: "receiver", Port: 7101}
	f := e.cm.Open(netsim.ProtoUDP, tx.Local(), dst)
	tx.SendTo(dst, &Datagram{Size: 300})
	// Run only briefly: the CM's feedback-starvation background task would
	// legitimately clear the un-acked charge after a few seconds.
	e.sched.RunFor(100 * time.Millisecond)
	if got := e.cm.MacroflowOf(f).Outstanding(); got != 300 {
		t.Fatalf("outstanding = %d, want 300 (payload bytes)", got)
	}
}

func newCCPair(t *testing.T, e *udpEnv, queueLimit int) (*CCSocket, *Socket) {
	t.Helper()
	rx, err := NewSocket(e.net.Host("receiver"), 9000)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := NewCCSocket(e.net.Host("sender"), 0, netsim.Addr{Host: "receiver", Port: 9000}, e.cm, queueLimit)
	if err != nil {
		t.Fatal(err)
	}
	return cc, rx
}

func TestCCSocketRequiresCM(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	if _, err := NewCCSocket(e.net.Host("sender"), 0, netsim.Addr{Host: "receiver", Port: 1}, nil, 10); err == nil {
		t.Fatal("CCSocket without a CM should fail")
	}
}

func TestCCSocketPacesTransmissionsByWindow(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	cc, rx := newCCPair(t, e, 100)
	var received int
	rx.OnReceive(func(_ netsim.Addr, d *Datagram) { received++ })

	// Queue 20 datagrams of one MTU each: with the initial window of 1 MTU
	// and no feedback, only the first can leave.
	for i := 0; i < 20; i++ {
		if !cc.Send(&Datagram{Seq: int64(i), Size: 1472}) {
			t.Fatal("queue drop before limit")
		}
	}
	e.sched.RunFor(100 * time.Millisecond)
	if received != 1 {
		t.Fatalf("received %d datagrams before any feedback, want 1 (initial window)", received)
	}
	if cc.QueueLen() != 19 {
		t.Fatalf("queue length = %d, want 19", cc.QueueLen())
	}

	// Feedback opens the window; more datagrams flow.
	cc.Update(1472, 1472, cm.NoLoss, 10*time.Millisecond)
	e.sched.RunFor(200 * time.Millisecond)
	if received < 2 {
		t.Fatalf("received %d datagrams after feedback, want >= 2", received)
	}
}

func TestCCSocketDeliversAllWithContinuousFeedback(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	cc, rx := newCCPair(t, e, 200)
	var receivedBytes int
	// The receiver acks every datagram immediately (ideal feedback loop).
	rx.OnReceive(func(_ netsim.Addr, d *Datagram) {
		receivedBytes += d.Size
		size := d.Size
		e.sched.After(10*time.Millisecond, func() {
			cc.Update(size, size, cm.NoLoss, 10*time.Millisecond)
		})
	})
	const n = 150
	for i := 0; i < n; i++ {
		cc.Send(&Datagram{Seq: int64(i), Size: 1000})
	}
	e.sched.RunFor(30 * time.Second)
	if receivedBytes != n*1000 {
		t.Fatalf("received %d bytes, want %d", receivedBytes, n*1000)
	}
	st := cc.Stats()
	if st.Sent != n || st.Enqueued != n || st.QueueDrops != 0 {
		t.Fatalf("cc stats %+v", st)
	}
	if cc.QueueLen() != 0 {
		t.Fatal("queue should drain completely")
	}
}

func TestCCSocketQueueOverflowDropsTail(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	cc, _ := newCCPair(t, e, 5)
	accepted := 0
	for i := 0; i < 10; i++ {
		if cc.Send(&Datagram{Seq: int64(i), Size: 1000}) {
			accepted++
		}
	}
	// One datagram leaves immediately on the initial window grant, so six are
	// accepted in total (5 queued + 1 in flight) and four are dropped.
	if accepted < 5 || accepted > 6 {
		t.Fatalf("accepted %d datagrams with a 5-deep queue, want 5-6", accepted)
	}
	if cc.Stats().QueueDrops != int64(10-accepted) {
		t.Fatalf("QueueDrops = %d", cc.Stats().QueueDrops)
	}
}

func TestCCSocketOnSpaceCallback(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	cc, _ := newCCPair(t, e, 10)
	var spaces int
	cc.OnSpace(func() { spaces++ })
	cc.Send(&Datagram{Size: 500})
	e.sched.RunFor(50 * time.Millisecond)
	if spaces != 1 {
		t.Fatalf("OnSpace callbacks = %d, want 1", spaces)
	}
}

func TestCCSocketQueryAndFlow(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	cc, _ := newCCPair(t, e, 10)
	if cc.Flow() == cm.InvalidFlow {
		t.Fatal("flow not allocated")
	}
	st, ok := cc.Query()
	if !ok || st.MTU != 1500 {
		t.Fatalf("Query = %+v, %v", st, ok)
	}
	if cc.Local().Host != "sender" {
		t.Fatal("local address wrong")
	}
	if cc.Inner() == nil {
		t.Fatal("inner socket accessor wrong")
	}
}

func TestCCSocketCloseReleasesFlow(t *testing.T) {
	e := newUDPEnv(t, fastLink())
	cc, _ := newCCPair(t, e, 10)
	cc.Send(&Datagram{Size: 100})
	cc.Close()
	if e.cm.FlowCount() != 0 {
		t.Fatal("flow should be closed")
	}
	if cc.Send(&Datagram{Size: 100}) {
		t.Fatal("send after close should fail")
	}
	cc.Close() // double close is a no-op
	e.sched.RunFor(time.Second)
}

func TestCCSocketSharesMacroflowWithTCPFlows(t *testing.T) {
	// The point of the CM: a UDP flow and any other flow to the same
	// destination host share one macroflow.
	e := newUDPEnv(t, fastLink())
	cc, _ := newCCPair(t, e, 10)
	other := e.cm.Open(netsim.ProtoTCP, netsim.Addr{Host: "sender", Port: 1234}, netsim.Addr{Host: "receiver", Port: 80})
	if e.cm.MacroflowOf(cc.Flow()) != e.cm.MacroflowOf(other) {
		t.Fatal("UDP and TCP flows to the same host must share a macroflow")
	}
}
