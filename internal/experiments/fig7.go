package experiments

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/netsim"
	"repro/internal/tcp"
)

// Fig7Config parameterises the shared-congestion-state experiment of
// Figure 7: an unmodified web client sequentially fetches the same file from
// a server over fresh TCP connections; with the CM on the server the later
// requests reuse the macroflow's learned congestion window instead of slow
// starting from scratch.
type Fig7Config struct {
	// FileSize is the object size (128 KB in the paper).
	FileSize int
	// Requests is the number of sequential retrievals (9 in the paper).
	Requests int
	// Spacing is the delay between the end of one retrieval and the
	// initiation of the next (500 ms in the paper).
	Spacing time.Duration
	// Deadline bounds the run.
	Deadline time.Duration
}

func (c *Fig7Config) fillDefaults() {
	if c.FileSize <= 0 {
		c.FileSize = 128 * 1024
	}
	if c.Requests <= 0 {
		c.Requests = 9
	}
	if c.Spacing <= 0 {
		c.Spacing = 500 * time.Millisecond
	}
	if c.Deadline <= 0 {
		c.Deadline = 10 * time.Minute
	}
}

// Fig7Result is the reproduction of Figure 7: per-request completion times in
// milliseconds for the CM server and the unmodified (Linux) server.
type Fig7Result struct {
	Config  Fig7Config
	CMms    []float64
	Linuxms []float64
	// ImprovementPct is the reduction in completion time of the last request
	// relative to the first for the CM server (the paper reports ~40 %).
	ImprovementPct float64
	// FirstRequestPenaltyMs is the extra time the CM's first transfer takes
	// compared with Linux (the CM starts with a 1 MTU window, Linux with 2).
	FirstRequestPenaltyMs float64
}

// RunFig7 executes both server configurations.
func RunFig7(cfg Fig7Config) Fig7Result {
	cfg.fillDefaults()
	res := Fig7Result{Config: cfg}
	res.CMms = fig7Run(tcp.CCCM, cfg)
	res.Linuxms = fig7Run(tcp.CCNative, cfg)
	if len(res.CMms) > 1 && res.CMms[0] > 0 {
		last := res.CMms[len(res.CMms)-1]
		res.ImprovementPct = 100 * (res.CMms[0] - last) / res.CMms[0]
	}
	if len(res.CMms) > 0 && len(res.Linuxms) > 0 {
		res.FirstRequestPenaltyMs = res.CMms[0] - res.Linuxms[0]
	}
	return res
}

func fig7Run(cc tcp.CongestionControl, cfg Fig7Config) []float64 {
	w := newTestbed(vbnsPath(41), cc == tcp.CCCM)
	return fig7RunInTestbed(w, cc, cfg)
}

// newFileServer starts the Figure 7 file server on the testbed's sender host.
func newFileServer(w *testbed, serverCfg tcp.Config, fileSize int) (*app.FileServer, error) {
	return app.NewFileServer(w.sender, 80, fileSize, serverCfg)
}

// runFetches performs the sequential retrievals from the testbed's receiver
// host and returns the per-request completion times in milliseconds.
func runFetches(w *testbed, cfg Fig7Config) []float64 {
	client := app.NewFetchClient(w.rcvr, netsim.Addr{Host: "sender", Port: 80}, 200,
		tcp.Config{DelayedAck: true, RecvWindow: 1 << 20})
	var results []app.FetchResult
	client.RunSequential(cfg.Requests, cfg.Spacing, func(rs []app.FetchResult) { results = rs })
	w.sched.RunUntil(cfg.Deadline)
	if results == nil {
		results = client.Results()
	}
	out := make([]float64, 0, len(results))
	for _, r := range results {
		out = append(out, float64(r.Elapsed)/float64(time.Millisecond))
	}
	return out
}

// Table renders Figure 7.
func (r Fig7Result) Table() string {
	n := len(r.CMms)
	if len(r.Linuxms) > n {
		n = len(r.Linuxms)
	}
	rows := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		cmv, lxv := "-", "-"
		if i < len(r.CMms) {
			cmv = fmt.Sprintf("%.0f", r.CMms[i])
		}
		if i < len(r.Linuxms) {
			lxv = fmt.Sprintf("%.0f", r.Linuxms[i])
		}
		rows = append(rows, []string{fmt.Sprintf("%d", i+1), cmv, lxv})
	}
	return fmt.Sprintf("Figure 7: sequential %d KB fetches (CM improvement first->last: %.0f%%, CM first-request penalty: %.0f ms)\n",
		r.Config.FileSize/1024, r.ImprovementPct, r.FirstRequestPenaltyMs) +
		formatTable([]string{"request#", "TCP/CM ms", "TCP/Linux ms"}, rows)
}
