package node

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// The transit-relay hot path (Receive -> forward -> next link) carries every
// packet of every multi-hop scenario through each router, so it must not
// allocate in steady state: the packet comes from the pool, the TTL
// decrement and route lookup are in-place, and the next link's transmit
// events come from the scheduler freelist. PR 2 added the router path
// without a gate; this is it.
func TestForwardingHotPathZeroAlloc(t *testing.T) {
	sched := simtime.NewScheduler()
	nw := NewNetwork(sched)
	cfg := netsim.LinkConfig{Bandwidth: 100 * netsim.Mbps, Delay: time.Millisecond, QueuePackets: 64}
	nw.ConnectDuplex("src", "r", cfg)
	d2 := nw.ConnectDuplex("r", "dst", cfg)
	router := nw.Router("r")
	router.AddRoute("dst", d2.Forward)
	// The destination host terminates the packet: no listener, so it is
	// counted as a no-listener drop and released — still the full relay path.
	relay := func() {
		p := netsim.NewPacket()
		p.Proto = netsim.ProtoUDP
		p.Src = netsim.Addr{Host: "src", Port: 1}
		p.Dst = netsim.Addr{Host: "dst", Port: 2}
		p.Size = 1500
		p.TTL = netsim.DefaultTTL
		router.Receive(p)
		sched.Run()
	}
	for i := 0; i < 64; i++ {
		relay()
	}
	allocs := testing.AllocsPerRun(500, relay)
	if allocs != 0 {
		t.Fatalf("transit relay allocated %.1f objects per op, want 0", allocs)
	}
	if st := router.Stats(); st.ForwardedPackets == 0 {
		t.Fatal("relay path did not forward")
	}
}

// A host pinned to a shard must refuse to run outside it.
func TestOwnershipCheckEnforced(t *testing.T) {
	sched := simtime.NewScheduler()
	h := NewHost("a", sched)
	allowed := true
	h.SetOwnershipCheck(func() bool { return allowed })
	p := &netsim.Packet{Dst: netsim.Addr{Host: "a", Port: 1}}
	h.Receive(p) // allowed: no panic
	allowed = false
	defer func() {
		if recover() == nil {
			t.Fatal("Receive outside the owning shard must panic")
		}
	}()
	h.Receive(&netsim.Packet{Dst: netsim.Addr{Host: "a", Port: 1}})
}
