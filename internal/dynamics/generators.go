package dynamics

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/netsim"
)

// Generator kinds.
const (
	// GenPoissonFlaps alternates a link between up and down with
	// exponentially distributed sojourn times (a Poisson flap process): the
	// link stays up for Exp(MeanUp), fails, stays down for Exp(MeanDown),
	// recovers, and so on until End.
	GenPoissonFlaps = "poisson-flaps"
	// GenBandwidthWalk performs a multiplicative Markov random walk on the
	// link bandwidth: every Step the rate is multiplied or divided by Factor
	// with equal probability, clamped to [Min, Max].
	GenBandwidthWalk = "bandwidth-walk"
	// GenCMRestarts is a Poisson process of CMRestart events on Host: the
	// Congestion Manager crashes and restarts with exponentially distributed
	// inter-failure times of mean Mean (a host-level churn source for the
	// fault-injection soak harness).
	GenCMRestarts = "cm-restarts"
)

// Generator is a seeded stochastic event source. It is declarative sugar over
// the Timeline: Expand samples the whole process up front with a private
// seeded RNG and returns ordinary deterministic Events, so a long churn trace
// does not have to be declared event by event and every execution property of
// declared timelines — serial/parallel byte-identity, sharded barrier firing,
// per-event records — is inherited for free.
type Generator struct {
	// Kind is GenPoissonFlaps, GenBandwidthWalk or GenCMRestarts.
	Kind string `json:"kind"`
	// Link indexes the scenario's Links slice (link generators only).
	Link int `json:"link"`
	// Direction is DirBoth (default), DirForward or DirReverse.
	Direction string `json:"direction,omitempty"`
	// Host names the target of a host-level generator (GenCMRestarts); Link
	// is ignored for these.
	Host string `json:"host,omitempty"`
	// Seed drives the generator's private RNG. Zero derives a deterministic
	// seed from the owning scenario's seed and the generator's position.
	Seed int64 `json:"seed,omitempty"`
	// Start and End bracket the generated process. End <= 0 means "the whole
	// run" (the owner substitutes the scenario duration before Expand).
	Start time.Duration `json:"start,omitempty"`
	End   time.Duration `json:"end,omitempty"`

	// MeanUp and MeanDown are the expected up/down sojourn times of
	// GenPoissonFlaps (defaults 10s and 1s).
	MeanUp   time.Duration `json:"mean_up,omitempty"`
	MeanDown time.Duration `json:"mean_down,omitempty"`

	// Step is the walk interval of GenBandwidthWalk (default 1s); Factor is
	// the multiplicative step (default 1.25). Initial is the walk's starting
	// rate (zero: the owner substitutes the link's configured bandwidth);
	// Min/Max clamp the walk (defaults Initial/8 and Initial*8).
	Step    time.Duration    `json:"step,omitempty"`
	Factor  float64          `json:"factor,omitempty"`
	Initial netsim.Bandwidth `json:"initial,omitempty"`
	Min     netsim.Bandwidth `json:"min,omitempty"`
	Max     netsim.Bandwidth `json:"max,omitempty"`

	// Mean is the expected inter-restart time of GenCMRestarts (default 10s).
	Mean time.Duration `json:"mean,omitempty"`
}

// HostGenerator reports whether the generator targets a host rather than a
// link.
func (g Generator) HostGenerator() bool { return g.Kind == GenCMRestarts }

// Validate checks the generator against a topology with nlinks links. Fields
// with defaults (seed, means, step, factor, clamps, End) may be zero.
func (g Generator) Validate(nlinks int) error {
	if !g.HostGenerator() {
		if g.Link < 0 || g.Link >= nlinks {
			return fmt.Errorf("dynamics: generator link %d out of range [0,%d)", g.Link, nlinks)
		}
	}
	switch g.Direction {
	case "", DirBoth, DirForward, DirReverse:
	default:
		return fmt.Errorf("dynamics: generator direction %q unknown", g.Direction)
	}
	if g.Start < 0 {
		return fmt.Errorf("dynamics: generator start %v negative", g.Start)
	}
	if g.End != 0 && g.End <= g.Start {
		return fmt.Errorf("dynamics: generator end %v not after start %v", g.End, g.Start)
	}
	switch g.Kind {
	case GenPoissonFlaps:
		if g.MeanUp < 0 || g.MeanDown < 0 {
			return fmt.Errorf("dynamics: %s generator needs non-negative means", g.Kind)
		}
	case GenBandwidthWalk:
		if g.Factor != 0 && g.Factor <= 1 {
			return fmt.Errorf("dynamics: %s generator factor %v must be > 1", g.Kind, g.Factor)
		}
		if g.Min < 0 || g.Max < 0 || (g.Min > 0 && g.Max > 0 && g.Min > g.Max) {
			return fmt.Errorf("dynamics: %s generator clamp [%v, %v] invalid", g.Kind, g.Min, g.Max)
		}
	case GenCMRestarts:
		if g.Host == "" {
			return fmt.Errorf("dynamics: %s generator needs a host", g.Kind)
		}
		if g.Mean < 0 {
			return fmt.Errorf("dynamics: %s generator mean %v negative", g.Kind, g.Mean)
		}
	default:
		return fmt.Errorf("dynamics: generator kind %q unknown", g.Kind)
	}
	return nil
}

// Expand samples the process and returns its events in time order. The caller
// is expected to have substituted owner-level defaults (Seed, End, Initial);
// Expand applies the remaining per-kind ones. Expansion is a pure function of
// the generator value: the same Generator always yields the same events.
func (g Generator) Expand() []Event {
	if g.Seed == 0 {
		g.Seed = 1
	}
	if g.End <= g.Start {
		return nil
	}
	rng := rand.New(rand.NewSource(g.Seed))
	switch g.Kind {
	case GenPoissonFlaps:
		return g.expandFlaps(rng)
	case GenBandwidthWalk:
		return g.expandWalk(rng)
	case GenCMRestarts:
		return g.expandRestarts(rng)
	}
	return nil
}

// expDuration samples Exp(mean), floored at 1ms so degenerate draws cannot
// produce zero-length sojourns (which would stack down/up pairs on one
// instant).
func expDuration(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

func (g Generator) expandFlaps(rng *rand.Rand) []Event {
	if g.MeanUp == 0 {
		g.MeanUp = 10 * time.Second
	}
	if g.MeanDown == 0 {
		g.MeanDown = time.Second
	}
	var evs []Event
	t := g.Start
	for {
		t += expDuration(rng, g.MeanUp)
		if t >= g.End {
			break
		}
		recover := t + expDuration(rng, g.MeanDown)
		if recover > g.End {
			recover = g.End
		}
		evs = append(evs,
			Event{At: t, Kind: LinkDown, Link: g.Link, Direction: g.Direction},
			Event{At: recover, Kind: LinkUp, Link: g.Link, Direction: g.Direction},
		)
		t = recover
	}
	return evs
}

func (g Generator) expandRestarts(rng *rand.Rand) []Event {
	if g.Mean == 0 {
		g.Mean = 10 * time.Second
	}
	var evs []Event
	t := g.Start
	for {
		t += expDuration(rng, g.Mean)
		if t >= g.End {
			break
		}
		evs = append(evs, Event{At: t, Kind: CMRestart, Host: g.Host})
	}
	return evs
}

func (g Generator) expandWalk(rng *rand.Rand) []Event {
	if g.Step == 0 {
		g.Step = time.Second
	}
	if g.Factor == 0 {
		g.Factor = 1.25
	}
	if g.Initial <= 0 {
		return nil
	}
	if g.Min == 0 {
		g.Min = g.Initial / 8
	}
	if g.Max == 0 {
		g.Max = g.Initial * 8
	}
	var evs []Event
	bw := g.Initial
	for t := g.Start + g.Step; t < g.End; t += g.Step {
		if rng.Float64() < 0.5 {
			bw = netsim.Bandwidth(float64(bw) * g.Factor)
		} else {
			bw = netsim.Bandwidth(float64(bw) / g.Factor)
		}
		if bw < g.Min {
			bw = g.Min
		}
		if bw > g.Max {
			bw = g.Max
		}
		evs = append(evs, Event{At: t, Kind: SetBandwidth, Link: g.Link, Direction: g.Direction, Bandwidth: bw})
	}
	return evs
}
