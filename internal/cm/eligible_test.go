package cm

import (
	"math/rand"
	"testing"
)

// refRoundRobin replicates the previous round-robin implementation (scan the
// full insertion-order rotation from the cursor for the first flow with a
// pending request) as a straightforward slice model. It is the fairness
// oracle: the eligible-only list is an index, not a policy change, so grant
// order over any workload must match this scan exactly.
type refRoundRobin struct {
	flows  []*flowState
	cursor int
}

func (r *refRoundRobin) Add(f *flowState) {
	r.flows = append(r.flows, f)
	if len(r.flows) == 1 {
		r.cursor = 0
	}
}

func (r *refRoundRobin) Remove(f *flowState) {
	for i, fl := range r.flows {
		if fl == f {
			r.flows = append(r.flows[:i], r.flows[i+1:]...)
			if i < r.cursor {
				r.cursor--
			}
			if len(r.flows) > 0 {
				r.cursor %= len(r.flows)
			} else {
				r.cursor = 0
			}
			return
		}
	}
}

func (r *refRoundRobin) Next() *flowState {
	n := len(r.flows)
	for i := 0; i < n; i++ {
		f := r.flows[(r.cursor+i)%n]
		if f.pendingRequests > 0 {
			r.cursor = (r.cursor + i + 1) % n
			return f
		}
	}
	return nil
}

// TestEligibleListGrantOrderMatchesScan drives the intrusive eligible-only
// scheduler and the reference scan through a long randomized mixed workload —
// flows joining and leaving, requests arriving in bursts, grants draining —
// and requires the two grant sequences to be identical at every step. This
// is the fairness revalidation that allowed replacing the O(all flows) Next
// scan with the O(1) eligible-ring cursor.
func TestEligibleListGrantOrderMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	real := NewRoundRobinScheduler().(*roundRobinScheduler)
	ref := &refRoundRobin{}

	var flows []*flowState
	nextID := FlowID(1)
	addFlow := func(pending int) {
		f := &flowState{id: nextID, pendingRequests: pending}
		nextID++
		flows = append(flows, f)
		real.Add(f)
		ref.Add(f)
	}
	removeFlow := func(i int) {
		f := flows[i]
		flows = append(flows[:i], flows[i+1:]...)
		real.Remove(f)
		ref.Remove(f)
	}
	request := func(f *flowState) {
		f.pendingRequests++
		if f.pendingRequests == 1 {
			real.MarkEligible(f)
		}
	}
	grant := func() {
		got, want := real.Next(), ref.Next()
		if got != want {
			gid, wid := FlowID(-1), FlowID(-1)
			if got != nil {
				gid = got.id
			}
			if want != nil {
				wid = want.id
			}
			t.Fatalf("grant order diverged: eligible-list granted flow %d, scan granted flow %d", gid, wid)
		}
		if got != nil {
			got.pendingRequests--
			if got.pendingRequests == 0 {
				real.MarkIneligible(got)
			}
		}
	}

	for i := 0; i < 8; i++ {
		addFlow(rng.Intn(3))
	}
	for op := 0; op < 50_000; op++ {
		switch r := rng.Intn(100); {
		case r < 8 && len(flows) < 300:
			// Join mid-rotation, sometimes already backlogged (Add must seed
			// the eligible ring like the old pending>0 registration did).
			addFlow(rng.Intn(2) * (1 + rng.Intn(3)))
		case r < 14 && len(flows) > 1:
			removeFlow(rng.Intn(len(flows)))
		case r < 55 && len(flows) > 0:
			// Request bursts concentrate on a few flows: the sparse-eligibility
			// shape the eligible list exists for.
			f := flows[rng.Intn(len(flows))]
			for n := 1 + rng.Intn(4); n > 0; n-- {
				request(f)
			}
		default:
			grant()
		}
	}
	// Drain everything so the tail of the rotation is compared too.
	for i := 0; i < 10_000; i++ {
		grant()
	}
	if real.eligible != 0 {
		// Some flows may still hold requests if the drain loop granted them
		// all; eligible must agree with the ground truth either way.
		n := 0
		for _, f := range flows {
			if f.pendingRequests > 0 {
				n++
			}
		}
		if n != real.eligible {
			t.Fatalf("eligible count %d, ground truth %d", real.eligible, n)
		}
	}
}
