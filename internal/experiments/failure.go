package experiments

import (
	"fmt"
	"time"

	"repro/internal/scenario"
	"repro/internal/trace"
)

// FailureConfig parameterises the adaptation-under-failure experiment: a
// dumbbell whose shared bottleneck fails and recovers on a schedule while the
// senders' CM macroflows are observed. The paper's evaluation varies
// available bandwidth with cross traffic (Figures 8-10); this runner goes
// further and removes the path entirely, the churn the dynamics subsystem
// exists to model.
type FailureConfig struct {
	// DownAt / UpAt bracket the bottleneck outage (defaults 6 s / 10 s).
	DownAt, UpAt time.Duration
	// Duration is the trace length (default 30 s).
	Duration time.Duration
	// SampleEvery is the observation interval (default 250 ms).
	SampleEvery time.Duration
	Seed        int64
}

func (c *FailureConfig) fillDefaults() {
	if c.DownAt <= 0 {
		c.DownAt = 6 * time.Second
	}
	if c.UpAt <= c.DownAt {
		c.UpAt = c.DownAt + 4*time.Second
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// FailureResult holds the observed traces of one adaptation-under-failure
// run.
type FailureResult struct {
	Config FailureConfig
	// Window is the s0->d0 macroflow congestion window in bytes, sampled
	// every SampleEvery.
	Window *trace.Series
	// Rate is the macroflow's sustainable-rate estimate (bytes/second).
	Rate *trace.Series
	// WindowBefore/WindowDuring/WindowAfter summarise the back-off story:
	// the window just before the outage, at the end of the outage, and at
	// the end of the run.
	WindowBefore, WindowDuring, WindowAfter int
	// Result is the scenario outcome, including the executed event records.
	Result *scenario.Result
}

// RunFailure executes the adaptation-under-failure experiment.
func RunFailure(cfg FailureConfig) (FailureResult, error) {
	cfg.fillDefaults()
	spec := scenario.FlakyDumbbell(scenario.FlakyDumbbellParams{
		DownAt: cfg.DownAt,
		UpAt:   cfg.UpAt,
		Dumbbell: scenario.DumbbellParams{
			Duration: cfg.Duration,
			Seed:     cfg.Seed,
		},
	})
	sim, err := scenario.Build(spec)
	if err != nil {
		return FailureResult{Config: cfg}, err
	}
	if err := sim.Start(); err != nil {
		return FailureResult{Config: cfg}, err
	}
	sched := sim.Scheduler()
	res := FailureResult{
		Config: cfg,
		Window: trace.NewSeries("macroflow-cwnd"),
		Rate:   trace.NewSeries("macroflow-rate"),
	}
	for t := cfg.SampleEvery; t <= cfg.Duration; t += cfg.SampleEvery {
		sched.RunUntil(t)
		mf := sim.CM("s0").MacroflowTo("d0")
		if mf == nil {
			continue
		}
		res.Window.Add(t, float64(mf.Window()))
		res.Rate.Add(t, mf.Rate())
		switch {
		case t <= cfg.DownAt:
			res.WindowBefore = mf.Window()
		case t <= cfg.UpAt:
			res.WindowDuring = mf.Window()
		default:
			res.WindowAfter = mf.Window()
		}
	}
	sched.RunUntil(cfg.Duration)
	res.Result = sim.Finish()
	return res, nil
}

// Table renders the trace and the back-off/recovery summary.
func (r FailureResult) Table() string {
	rows := make([][]string, 0, r.Window.Len())
	for i := 0; i < r.Window.Len(); i++ {
		w := r.Window.At(i)
		rate := 0.0
		if i < r.Rate.Len() {
			rate = r.Rate.At(i).V
		}
		phase := "up"
		if w.T > r.Config.DownAt && w.T <= r.Config.UpAt {
			phase = "DOWN"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", w.T.Seconds()),
			phase,
			fmt.Sprintf("%.0f", w.V/1024),
			fmt.Sprintf("%.0f", rate/1024),
		})
	}
	title := fmt.Sprintf(
		"Adaptation under failure (bottleneck down %v-%v): s0->d0 macroflow cwnd %dKB before, %dKB during outage, %dKB after recovery\n",
		r.Config.DownAt, r.Config.UpAt,
		r.WindowBefore/1024, r.WindowDuring/1024, r.WindowAfter/1024)
	if r.Result != nil {
		for _, ev := range r.Result.Events {
			title += fmt.Sprintf("event t=%v %s link=%d fired=%v routes-changed=%d\n",
				ev.At, ev.Kind, ev.Link, ev.Fired, ev.RoutesChanged)
		}
	}
	return title + formatTable([]string{"t(s)", "link", "cwnd KB", "rate KB/s"}, rows)
}

// CSV renders the failure traces for plotting.
func (r FailureResult) CSV() string {
	return trace.CSV(r.Window, r.Rate)
}
