package apicost

import (
	"testing"
	"testing/quick"
	"time"
)

func TestVariantNames(t *testing.T) {
	want := map[Variant]string{
		TCPLinux:     "TCP/Linux",
		TCPCM:        "TCP/CM",
		TCPCMNoDelay: "TCP/CM nodelay",
		Buffered:     "Buffered",
		ALF:          "ALF",
		ALFNoConnect: "ALF/noconnect",
	}
	for v, name := range want {
		if v.String() != name {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), name)
		}
	}
	if Variant(99).String() == "" {
		t.Error("unknown variant should still format")
	}
	if len(Variants()) != 6 {
		t.Error("Variants() should list all six APIs")
	}
}

func TestCostOrderingMatchesPaper(t *testing.T) {
	m := DefaultCosts()
	for _, size := range []int{64, 168, 512, 1024, 1400} {
		costs := map[Variant]time.Duration{}
		for _, v := range Variants() {
			costs[v] = PerPacketCost(v, size, m)
		}
		// Figure 6 ordering: ALF/noconnect > ALF > Buffered > TCP/CM nodelay
		// >= TCP/CM >= TCP/Linux.
		if !(costs[ALFNoConnect] > costs[ALF] &&
			costs[ALF] > costs[Buffered] &&
			costs[Buffered] > costs[TCPCMNoDelay] &&
			costs[TCPCMNoDelay] > costs[TCPCM] &&
			costs[TCPCM] >= costs[TCPLinux]) {
			t.Fatalf("cost ordering violated at %dB: %v", size, costs)
		}
	}
}

func TestTCPCMCloseToTCPLinux(t *testing.T) {
	// The paper reports 0-3 % CPU overhead for TCP/CM vs TCP/Linux.
	m := DefaultCosts()
	for _, size := range []int{168, 536, 1460} {
		linux := PerPacketCost(TCPLinux, size, m)
		cm := PerPacketCost(TCPCM, size, m)
		overhead := float64(cm-linux) / float64(linux)
		if overhead < 0 || overhead > 0.03 {
			t.Fatalf("TCP/CM overhead at %dB = %.3f, want within [0, 0.03]", size, overhead)
		}
	}
}

func TestWorstCaseThroughputReductionAbout25Percent(t *testing.T) {
	// Paper §4.2: for 168-byte packets, ALF/noconnect reduces throughput by
	// ~25 % relative to TCP/CM without delayed ACKs. Allow a generous band
	// since the absolute constants are calibration, not measurement.
	m := DefaultCosts()
	base := Throughput(TCPCMNoDelay, 168, m)
	worst := Throughput(ALFNoConnect, 168, m)
	reduction := 1 - worst/base
	if reduction < 0.15 || reduction > 0.35 {
		t.Fatalf("worst-case throughput reduction = %.2f, want ~0.25", reduction)
	}
}

func TestCPUUtilization(t *testing.T) {
	m := DefaultCosts()
	// At 100 Mbps with MTU-sized packets neither stack should saturate a CPU,
	// and the CM difference should be small (Figure 5: < ~1 %).
	rate := 100e6 / 8.0
	uLinux := CPUUtilization(TCPLinux, 1460, rate, m)
	uCM := CPUUtilization(TCPCM, 1460, rate, m)
	if uLinux <= 0 || uLinux >= 1 {
		t.Fatalf("TCP/Linux utilisation = %v, want (0,1)", uLinux)
	}
	if diff := uCM - uLinux; diff < 0 || diff > 0.01 {
		t.Fatalf("CM utilisation difference = %v, want within [0, 0.01]", diff)
	}
	// Tiny packets at high rates saturate and clamp at 1.
	if u := CPUUtilization(ALFNoConnect, 64, 1e9, m); u != 1 {
		t.Fatalf("saturated utilisation = %v, want 1", u)
	}
	if CPUUtilization(TCPLinux, 0, rate, m) != 0 || CPUUtilization(TCPLinux, 100, 0, m) != 0 {
		t.Fatal("degenerate inputs should give zero utilisation")
	}
}

func TestOperationsMatchTable1Deltas(t *testing.T) {
	// The deltas between adjacent variants must be exactly the operations the
	// paper's Table 1 lists.
	bufOps := OperationsFor(Buffered)
	tcpOps := OperationsFor(TCPCMNoDelay)
	if bufOps.RecvSyscalls-tcpOps.RecvSyscalls != 1 || bufOps.Gettimeofdays-tcpOps.Gettimeofdays != 2 {
		t.Fatal("Buffered should add 1 recv and 2 gettimeofday over TCP/CM")
	}
	alfOps := OperationsFor(ALF)
	if alfOps.Ioctls-bufOps.Ioctls != 1 || alfOps.ExtraSelectDescriptors-bufOps.ExtraSelectDescriptors != 1 {
		t.Fatal("ALF should add 1 ioctl and 1 extra socket over Buffered")
	}
	ncOps := OperationsFor(ALFNoConnect)
	if ncOps.Ioctls-alfOps.Ioctls != 1 {
		t.Fatal("ALF/noconnect should add 1 ioctl over ALF")
	}
	if OperationsFor(TCPLinux).UsesCM || !OperationsFor(TCPCM).UsesCM {
		t.Fatal("CM accounting flags wrong")
	}
	if OperationsFor(Variant(99)) != (Operations{}) {
		t.Fatal("unknown variant should have zero operations")
	}
}

func TestTable1Structure(t *testing.T) {
	rows := Table1(DefaultCosts())
	if len(rows) != 4 {
		t.Fatalf("Table1 rows = %d, want 4", len(rows))
	}
	if rows[0].Variant != ALFNoConnect || rows[3].Variant != TCPCM {
		t.Fatal("Table1 should go from most expensive to the TCP/CM baseline")
	}
	if rows[3].AddedOps != "-baseline-" || rows[3].DeltaAtMTU != 0 {
		t.Fatalf("baseline row wrong: %+v", rows[3])
	}
	for _, r := range rows[:3] {
		if r.DeltaAtMTU <= 0 {
			t.Fatalf("row %v should add positive cost, got %v", r.Variant, r.DeltaAtMTU)
		}
		if r.AddedOps == "" {
			t.Fatal("added-operations description missing")
		}
	}
}

func TestPerPacketCostNegativeSizeClamped(t *testing.T) {
	m := DefaultCosts()
	if PerPacketCost(TCPLinux, -5, m) != PerPacketCost(TCPLinux, 0, m) {
		t.Fatal("negative payload should be treated as zero")
	}
	if Throughput(TCPLinux, 0, m) != 0 {
		t.Fatal("zero payload has zero throughput")
	}
}

// Property: per-packet cost is monotonically non-decreasing in payload size
// for every variant (copies only add cost).
func TestPropertyCostMonotoneInSize(t *testing.T) {
	m := DefaultCosts()
	f := func(a, b uint16) bool {
		small, large := int(a%1500), int(b%1500)
		if small > large {
			small, large = large, small
		}
		for _, v := range Variants() {
			if PerPacketCost(v, small, m) > PerPacketCost(v, large, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: across all packet sizes, the cost ordering of the variants never
// inverts.
func TestPropertyOrderingStable(t *testing.T) {
	m := DefaultCosts()
	f := func(sz uint16) bool {
		size := int(sz % 1500)
		order := Variants()
		for i := 1; i < len(order); i++ {
			if PerPacketCost(order[i], size, m) < PerPacketCost(order[i-1], size, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
