package faults

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func churnResult(t *testing.T) *scenario.Result {
	t.Helper()
	spec, err := scenario.Lookup("churn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChurnRunPassesAllInvariants is the core robustness claim: a run with
// every fault class active at once (CM restarts, notify drop/delay, a host
// move, link flaps) ends in a consistent state.
func TestChurnRunPassesAllInvariants(t *testing.T) {
	res := churnResult(t)
	if vs := Check(res); len(vs) != 0 {
		t.Fatalf("churn run violated invariants: %v", vs)
	}
	// The run must actually have exercised the fault machinery, or the clean
	// bill of health is vacuous.
	var restarts, dropped int64
	var wiped int
	for _, c := range res.CMs {
		restarts += c.Restarts
		dropped += c.DroppedSends + c.DroppedUpdates
	}
	for _, ev := range res.Events {
		wiped += ev.FlowsWiped
	}
	if restarts == 0 || dropped == 0 || wiped == 0 {
		t.Fatalf("fault machinery idle: restarts=%d dropped=%d wiped=%d", restarts, dropped, wiped)
	}
}

// TestCheckFlagsEachViolation corrupts a healthy result one invariant at a
// time and expects exactly that rule to fire.
func TestCheckFlagsEachViolation(t *testing.T) {
	base := churnResult(t)
	tamper := []struct {
		rule    string
		corrupt func(r *scenario.Result)
	}{
		{RuleGrantConservation, func(r *scenario.Result) { r.CMs[0].GrantsIssued += 5 }},
		{RuleStrandedFlow, func(r *scenario.Result) { r.CMs[0].StrandedFlows = 2 }},
		{RuleNegativePending, func(r *scenario.Result) { r.CMs[0].NegativePending = 1 }},
		{RuleEpochMismatch, func(r *scenario.Result) { r.CMs[0].Epoch += 3 }},
		{RuleNegativeCounter, func(r *scenario.Result) { r.Flows[0].Delivered = -1 }},
		{RuleUnfiredEvent, func(r *scenario.Result) { r.Events[0].Fired = false }},
		{RuleUnfiredEvent, func(r *scenario.Result) {
			r.Events = append(r.Events, dynamics.Record{
				Event:   dynamics.Event{At: time.Hour, Kind: dynamics.CMRestart, Host: "s0"},
				Fired:   true,
				PastEnd: true,
			})
		}},
	}
	for _, tc := range tamper {
		res, err := scenario.Run(mustLookup(t, "churn"))
		if err != nil {
			t.Fatal(err)
		}
		tc.corrupt(res)
		vs := Check(res)
		found := false
		for _, v := range vs {
			if v.Rule == tc.rule {
				found = true
			}
		}
		if !found {
			t.Errorf("corrupting for %s produced %v", tc.rule, vs)
		}
	}
	_ = base
}

func mustLookup(t *testing.T, name string) scenario.Spec {
	t.Helper()
	spec, err := scenario.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestChurnSoakCampaign runs the canned soak serially and in parallel: zero
// violations either way, and byte-identical CSV output.
func TestChurnSoakCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak campaign in -short mode")
	}
	camp := ChurnSoakCampaign()
	serial, err := camp.Run(scenario.Runner{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckCampaign(serial); len(vs) != 0 {
		t.Fatalf("soak violated invariants: %v", vs)
	}
	parallel, err := camp.Run(scenario.Runner{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != parallel.CSV() {
		t.Fatal("serial and parallel soak CSVs differ")
	}
	// Sharded execution of every point must agree too.
	shardedCamp := camp
	shardedCamp.Shards = 4
	sharded, err := shardedCamp.Run(scenario.Runner{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckCampaign(sharded); len(vs) != 0 {
		t.Fatalf("sharded soak violated invariants: %v", vs)
	}
	if serial.CSV() != sharded.CSV() {
		t.Fatal("serial and sharded soak CSVs differ")
	}
}

// TestCheckCampaignLabelsViolations: a corrupted replicate is reported with
// its point and seed coordinates.
func TestCheckCampaignLabelsViolations(t *testing.T) {
	res, err := scenario.Run(mustLookup(t, "churn"))
	if err != nil {
		t.Fatal(err)
	}
	res.CMs[0].Epoch++
	cr := &sweep.CampaignResult{Points: []sweep.PointResult{{
		Index:   3,
		Seeds:   []int64{11, 12},
		Results: []*scenario.Result{nil, res},
	}}}
	vs := CheckCampaign(cr)
	if len(vs) == 0 {
		t.Fatal("corruption not reported")
	}
	want := "point=3 rep=1 seed=12"
	for _, v := range vs {
		if v.Rule == RuleEpochMismatch {
			if !strings.Contains(v.Scenario, want) {
				t.Fatalf("violation label %q missing %q", v.Scenario, want)
			}
			return
		}
	}
	t.Fatalf("epoch-mismatch not among %v", vs)
}
