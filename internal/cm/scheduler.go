package cm

// Scheduler apportions a macroflow's transmission opportunities among its
// constituent flows. The paper's implementation uses an unweighted
// round-robin scheduler; a weighted variant is provided as the extension the
// paper anticipates ("a standard unweighted round-robin scheduler...
// currently").
//
// A scheduler only decides *which* flow receives the next grant; whether a
// grant can be issued at all is the congestion controller's decision.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// Add registers a flow with the scheduler.
	Add(f *flowState)
	// Remove deregisters a flow.
	Remove(f *flowState)
	// Next returns the next flow that has at least one pending request, or
	// nil if no flow is eligible. Successive calls rotate fairly among
	// eligible flows.
	Next() *flowState
	// Weight returns the scheduling weight of a flow (used to apportion the
	// advertised per-flow rate in Status). Unweighted schedulers return 1.
	Weight(f *flowState) float64
	// TotalWeight returns the sum of weights of all registered flows (at
	// least 1 to avoid division by zero).
	TotalWeight() float64
}

// roundRobinScheduler grants eligible flows in strict rotation.
type roundRobinScheduler struct {
	flows []*flowState
	next  int
}

// NewRoundRobinScheduler returns the paper's default unweighted round-robin
// scheduler.
func NewRoundRobinScheduler() Scheduler { return &roundRobinScheduler{} }

func (s *roundRobinScheduler) Name() string { return "round-robin" }

func (s *roundRobinScheduler) Add(f *flowState) { s.flows = append(s.flows, f) }

func (s *roundRobinScheduler) Remove(f *flowState) {
	for i, fl := range s.flows {
		if fl == f {
			s.flows = append(s.flows[:i], s.flows[i+1:]...)
			if s.next > i {
				s.next--
			}
			if len(s.flows) > 0 {
				s.next %= len(s.flows)
			} else {
				s.next = 0
			}
			return
		}
	}
}

func (s *roundRobinScheduler) Next() *flowState {
	n := len(s.flows)
	for i := 0; i < n; i++ {
		idx := (s.next + i) % n
		f := s.flows[idx]
		if f.pendingRequests > 0 {
			s.next = (idx + 1) % n
			return f
		}
	}
	return nil
}

func (s *roundRobinScheduler) Weight(f *flowState) float64 { return 1 }

func (s *roundRobinScheduler) TotalWeight() float64 {
	if len(s.flows) == 0 {
		return 1
	}
	return float64(len(s.flows))
}

// weightedRoundRobinScheduler grants flows in proportion to their weights
// using a smooth deficit-style rotation. Flows carry a weight (default 1)
// set via CM.SetWeight.
type weightedRoundRobinScheduler struct {
	flows   []*flowState
	credits map[*flowState]float64
}

// NewWeightedRoundRobinScheduler returns a weighted round-robin scheduler.
func NewWeightedRoundRobinScheduler() Scheduler {
	return &weightedRoundRobinScheduler{credits: make(map[*flowState]float64)}
}

func (s *weightedRoundRobinScheduler) Name() string { return "weighted-round-robin" }

func (s *weightedRoundRobinScheduler) Add(f *flowState) {
	s.flows = append(s.flows, f)
	s.credits[f] = 0
}

func (s *weightedRoundRobinScheduler) Remove(f *flowState) {
	for i, fl := range s.flows {
		if fl == f {
			s.flows = append(s.flows[:i], s.flows[i+1:]...)
			delete(s.credits, f)
			return
		}
	}
}

// Next picks the eligible flow with the highest accumulated credit, then
// charges it one unit. Credits accrue proportionally to weight every call, so
// over time grants are distributed in weight proportion among flows that stay
// eligible.
func (s *weightedRoundRobinScheduler) Next() *flowState {
	var best *flowState
	anyEligible := false
	for _, f := range s.flows {
		if f.pendingRequests <= 0 {
			continue
		}
		anyEligible = true
		s.credits[f] += f.weight
		if best == nil || s.credits[f] > s.credits[best] {
			best = f
		}
	}
	if !anyEligible {
		return nil
	}
	s.credits[best] -= s.totalEligibleWeight()
	return best
}

func (s *weightedRoundRobinScheduler) totalEligibleWeight() float64 {
	var t float64
	for _, f := range s.flows {
		if f.pendingRequests > 0 {
			t += f.weight
		}
	}
	if t <= 0 {
		return 1
	}
	return t
}

func (s *weightedRoundRobinScheduler) Weight(f *flowState) float64 {
	if f.weight <= 0 {
		return 1
	}
	return f.weight
}

func (s *weightedRoundRobinScheduler) TotalWeight() float64 {
	var t float64
	for _, f := range s.flows {
		t += s.Weight(f)
	}
	if t <= 0 {
		return 1
	}
	return t
}

var (
	_ Scheduler = (*roundRobinScheduler)(nil)
	_ Scheduler = (*weightedRoundRobinScheduler)(nil)
)
