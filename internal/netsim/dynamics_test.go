package netsim

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func sendN(l *Link, n, size int) {
	for i := 0; i < n; i++ {
		p := NewPacket()
		p.Size = size
		l.Send(p)
	}
}

// TestGilbertElliottBurstiness pins the defining property of the two-state
// model: at equal average loss, drops cluster into runs instead of arriving
// independently, and the occupancy/transition counters account for every
// offered packet.
func TestGilbertElliottBurstiness(t *testing.T) {
	sched := simtime.NewScheduler()
	delivered := 0
	sink := ReceiverFunc(func(p *Packet) { delivered++; p.Release() })
	l := NewLink(sched, LinkConfig{
		Bandwidth:    100 * Mbps,
		QueuePackets: 1 << 16,
		Gilbert:      &GilbertElliott{PGoodBad: 0.02, PBadGood: 0.25},
		Seed:         7,
	}, sink)

	const offered = 20000
	sendN(l, offered, 1000)
	sched.Run()

	st := l.Stats()
	if st.GEGoodPackets+st.GEBadPackets != offered {
		t.Fatalf("occupancy %d+%d != offered %d", st.GEGoodPackets, st.GEBadPackets, offered)
	}
	if st.BurstDrops == 0 || st.GETransitions == 0 {
		t.Fatalf("model never engaged: %+v", st)
	}
	if st.BernoulliDrops != 0 {
		t.Fatalf("Bernoulli drops with LossRate 0: %+v", st)
	}
	if st.RandomDrops != st.BernoulliDrops+st.BurstDrops {
		t.Fatalf("RandomDrops %d != Bernoulli %d + Burst %d", st.RandomDrops, st.BernoulliDrops, st.BurstDrops)
	}
	if delivered+st.BurstDrops != offered {
		t.Fatalf("delivered %d + dropped %d != offered %d", delivered, st.BurstDrops, offered)
	}
	// LossBad defaulted to 1, so every bad-state packet drops.
	if st.BurstDrops != st.GEBadPackets {
		t.Fatalf("with LossBad=1 every bad-state packet drops: %d != %d", st.BurstDrops, st.GEBadPackets)
	}
	// Burstiness: the number of distinct loss runs is the number of
	// Good->Bad transitions, far below the drop count for a bursty model.
	runs := (st.GETransitions + 1) / 2
	if runs*2 > st.BurstDrops {
		t.Fatalf("losses not bursty: %d drops in %d runs", st.BurstDrops, runs)
	}
}

// TestLinkDownHoldsQueueAndDropsArrivals checks the outage semantics: packets
// offered while down are dropped and counted, queued packets are held and
// drain after the link comes back up, and in-flight packets complete.
func TestLinkDownHoldsQueueAndDropsArrivals(t *testing.T) {
	sched := simtime.NewScheduler()
	delivered := 0
	sink := ReceiverFunc(func(p *Packet) { delivered++; p.Release() })
	// 1000-byte packets at 8 Kbps serialise in exactly 1 s.
	l := NewLink(sched, LinkConfig{Bandwidth: 8 * Kbps, QueuePackets: 10}, sink)

	// Queue three packets; the first starts serialising immediately.
	sendN(l, 3, 1000)
	if l.QueueLen() != 2 {
		t.Fatalf("queue len %d, want 2", l.QueueLen())
	}
	l.SetDown(true)
	if !l.IsDown() {
		t.Fatal("IsDown false after SetDown(true)")
	}
	// Offered while down: dropped.
	sendN(l, 2, 1000)
	if got := l.Stats().DownDrops; got != 2 {
		t.Fatalf("DownDrops %d, want 2", got)
	}
	// The in-flight packet completes; the two queued packets are held.
	sched.RunFor(10 * time.Second)
	if delivered != 1 {
		t.Fatalf("delivered %d during outage, want 1 (the in-flight packet)", delivered)
	}
	if l.QueueLen() != 2 {
		t.Fatalf("queue len %d during outage, want 2", l.QueueLen())
	}
	l.SetDown(false)
	sched.Run()
	if delivered != 3 {
		t.Fatalf("delivered %d after recovery, want 3", delivered)
	}
}

// TestLinkParameterSwapMidRun checks that bandwidth and delay changes apply to
// packets serialised after the change while the in-flight packet completes
// under the old parameters.
func TestLinkParameterSwapMidRun(t *testing.T) {
	sched := simtime.NewScheduler()
	var deliveredAt []time.Duration
	sink := ReceiverFunc(func(p *Packet) { deliveredAt = append(deliveredAt, sched.Now()); p.Release() })
	// 1000-byte packets at 8 Kbps serialise in exactly 1 s, plus 50 ms of
	// propagation.
	l := NewLink(sched, LinkConfig{Bandwidth: 8 * Kbps, Delay: 50 * time.Millisecond, QueuePackets: 10}, sink)
	sendN(l, 2, 1000)
	// Mid-serialisation of packet 1, make the link 10x faster with zero
	// delay: packet 1 completes under the old rate AND the old delay
	// (arriving at t=1.05s); packet 2 serialises in 100 ms under the new
	// parameters and arrives at t=1.1s.
	sched.RunUntil(500 * time.Millisecond)
	l.SetBandwidth(80 * Kbps)
	l.SetDelay(0)
	sched.Run()
	if len(deliveredAt) != 2 {
		t.Fatalf("delivered %d, want 2", len(deliveredAt))
	}
	if want := 1050 * time.Millisecond; deliveredAt[0] != want {
		t.Fatalf("in-flight packet delivered at %v, want %v (old rate and delay)", deliveredAt[0], want)
	}
	if want := 1100 * time.Millisecond; deliveredAt[1] != want {
		t.Fatalf("second packet delivered at %v, want %v (new rate and delay)", deliveredAt[1], want)
	}
}

// TestSetGilbertMidRunAndDisable checks that installing the model mid-run
// starts it in the Good state and that nil removes it.
func TestSetGilbertMidRunAndDisable(t *testing.T) {
	sched := simtime.NewScheduler()
	sink := ReceiverFunc(func(p *Packet) { p.Release() })
	l := NewLink(sched, LinkConfig{Bandwidth: 100 * Mbps, QueuePackets: 1 << 16, Seed: 3}, sink)

	sendN(l, 1000, 1000)
	sched.Run()
	if st := l.Stats(); st.GEGoodPackets+st.GEBadPackets != 0 {
		t.Fatalf("occupancy counted with no model: %+v", st)
	}

	l.SetGilbert(&GilbertElliott{PGoodBad: 1, PBadGood: 0}) // immediately absorbs into Bad
	sendN(l, 100, 1000)
	sched.Run()
	st := l.Stats()
	if st.GEGoodPackets != 1 || st.GEBadPackets != 99 {
		t.Fatalf("absorbing model occupancy: %+v", st)
	}
	if st.BurstDrops != 99 {
		t.Fatalf("absorbing model should drop every bad-state packet: %+v", st)
	}

	// Config exposes a defensive copy: mutating it must not change the link.
	cfg := l.Config()
	cfg.Gilbert.LossBad = 0
	if got := l.Config().Gilbert.LossBad; got != 1 {
		t.Fatalf("mutating the Config snapshot changed the live model: LossBad=%v", got)
	}

	l.SetGilbert(nil)
	sendN(l, 1000, 1000)
	sched.Run()
	if got := l.Stats().BurstDrops; got != 99 {
		t.Fatalf("drops continued after disable: %d", got)
	}
	if l.Config().Gilbert != nil {
		t.Fatal("Config still reports a model after SetGilbert(nil)")
	}
}

func TestGilbertElliottValidate(t *testing.T) {
	good := GilbertElliott{PGoodBad: 0.1, PBadGood: 0.5, LossBad: 0.8}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	for _, bad := range []GilbertElliott{
		{PGoodBad: -0.1, PBadGood: 0.5},
		{PGoodBad: 0.1, PBadGood: 1.5},
		{PGoodBad: 0.1, PBadGood: 0.5, LossGood: 2},
		{PGoodBad: 0.1, PBadGood: 0.5, LossBad: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid model accepted: %+v", bad)
		}
	}
}
