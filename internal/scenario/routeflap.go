package scenario

import (
	"fmt"
	"time"

	"repro/internal/dynamics"
	"repro/internal/probe"
)

// RouteFlapParams parameterises the route-flap convergence scenario: a k-ary
// fat-tree running the distance-vector control plane, with one core uplink
// flapping mid-run while the surviving core uplinks of the same pod drop,
// delay and duplicate routing messages. The protocol must re-converge after
// the final topology event despite the control-plane faults; the faults are
// cleared before the last flap so the convergence bound (see
// docs/ROUTING.md) applies and the faults invariants can enforce a closed
// blackhole window.
type RouteFlapParams struct {
	// K is the fat-tree arity (even, default 4).
	K int
	// HostsPerEdge is the host count under each edge switch (default K/2).
	HostsPerEdge int
	// DropRate is the probability of losing one routing message on each
	// faulted core uplink (default 0.3).
	DropRate float64
	// DelayRate and Delay add latency to routing messages (defaults 0.2 and
	// 10 ms).
	DelayRate float64
	Delay     time.Duration
	// DuplicateRate delivers a routing message twice (default 0.1).
	DuplicateRate float64
	// DownAt and UpAt flap aggregation switch a0.p0's core uplinks (defaults
	// 1 s and 3 s). FaultAt and FaultClear bound the control-fault window
	// (defaults 500 ms and 2.5 s); FaultClear must precede UpAt or the
	// convergence bound does not hold.
	DownAt, UpAt        time.Duration
	FaultAt, FaultClear time.Duration
	Duration            time.Duration
	Seed                int64
}

func (p *RouteFlapParams) fillDefaults() error {
	if p.K == 0 {
		p.K = 4
	}
	if p.DropRate == 0 {
		p.DropRate = 0.3
	}
	if p.DelayRate == 0 {
		p.DelayRate = 0.2
	}
	if p.Delay == 0 {
		p.Delay = 10 * time.Millisecond
	}
	if p.DuplicateRate == 0 {
		p.DuplicateRate = 0.1
	}
	if p.DownAt == 0 {
		p.DownAt = time.Second
	}
	if p.UpAt == 0 {
		p.UpAt = 3 * time.Second
	}
	if p.FaultAt == 0 {
		p.FaultAt = 500 * time.Millisecond
	}
	if p.FaultClear == 0 {
		p.FaultClear = 2500 * time.Millisecond
	}
	if p.Duration == 0 {
		p.Duration = 10 * time.Second
	}
	if p.DownAt <= 0 || p.UpAt <= p.DownAt {
		return fmt.Errorf("route flap needs 0 < down-at (%v) < up-at (%v)", p.DownAt, p.UpAt)
	}
	if p.FaultClear >= p.UpAt {
		return fmt.Errorf("route flap needs fault-clear (%v) before the final flap at %v", p.FaultClear, p.UpAt)
	}
	return nil
}

// RouteFlap builds the fat-tree route-flap scenario. Every core uplink of
// aggregation switch a0.p0 goes down at once — the "agg switch lost its core
// card" failure. A single-uplink failure is repaired instantly by local state
// (the default rotates, the core falls back to its seeded alternate), but
// severing a0.p0 entirely forces the distance-vector exchange to do real
// work: the stranded switch must learn to reach remote pods *down* through
// its edges and back up through a1.p0, the cores must abandon their direct
// pod-0 routes, and until the waves settle, cross-pod traffic bounces
// (TTL drops) or dies at the cut switch (forward-miss) — the blackhole
// window. The control-plane faults land on a1.p0's surviving uplinks, the
// very links those waves must cross. Aggregate probes track the pod-wide
// blackhole symptoms summed over every host, so a sweep CSV shows the window
// opening and closing.
func RouteFlap(p RouteFlapParams) (Spec, error) {
	if err := p.fillDefaults(); err != nil {
		return Spec{}, err
	}
	spec, err := FatTree(FatTreeParams{
		K: p.K, HostsPerEdge: p.HostsPerEdge,
		Duration: p.Duration, Seed: p.Seed,
	})
	if err != nil {
		return Spec{}, err
	}
	half := p.K / 2
	spec.Name = "routeflap"
	spec.Description = fmt.Sprintf(
		"k=%d fat-tree under the DV control plane: core uplink flaps %v-%v, %.0f%% routing-message loss on pod 0's surviving uplinks",
		p.K, p.DownAt, p.UpAt, p.DropRate*100)
	spec.RouteSync = RouteSyncProtocol

	// The fat-tree builder emits pod 0's core uplinks first: links
	// [0, half) belong to a0.p0, links [half, 2*half) to a1.p0. The first
	// group flaps; the second carries the fault injection.
	for l := 0; l < half; l++ {
		spec.Events = append(spec.Events,
			dynamics.Event{At: p.DownAt, Kind: dynamics.LinkDown, Link: l},
			dynamics.Event{At: p.UpAt, Kind: dynamics.LinkUp, Link: l},
		)
	}
	for l := half; l < 2*half; l++ {
		spec.Events = append(spec.Events,
			dynamics.Event{At: p.FaultAt, Kind: dynamics.SetRouteFaults, Link: l,
				DropRate: p.DropRate, DelayRate: p.DelayRate, Delay: p.Delay,
				DuplicateRate: p.DuplicateRate},
			dynamics.Event{At: p.FaultClear, Kind: dynamics.SetRouteFaults, Link: l},
		)
	}
	// The blackhole drops land on the fabric switches (the cut switch
	// forward-misses, loops die by TTL at the cores), not on the leaf hosts,
	// so the aggregate probes span every node: the series rise while the
	// window is open and go flat once the protocol heals the tables.
	spec.Probes = append(spec.Probes,
		probe.Spec{Target: "hosts.*.route_miss_drops", Name: "route_miss"},
		probe.Spec{Target: "hosts.*.ttl_expired_drops", Name: "ttl_drops"},
		probe.Spec{Target: "hosts.*.no_route_drops", Name: "no_route"},
	)
	return spec, nil
}

// routeFlapFromParams adapts the generic parameter map onto RouteFlapParams.
func routeFlapFromParams(params map[string]float64) (Spec, error) {
	var p RouteFlapParams
	for name, v := range params {
		var err error
		switch name {
		case "k":
			p.K, err = intParam(name, v)
		case "hosts":
			p.HostsPerEdge, err = intParam(name, v)
		case "droprate":
			p.DropRate = v
		case "delayrate":
			p.DelayRate = v
		case "delay":
			p.Delay = time.Duration(v * float64(time.Second))
		case "duprate":
			p.DuplicateRate = v
		case "downat":
			p.DownAt = time.Duration(v * float64(time.Second))
		case "upat":
			p.UpAt = time.Duration(v * float64(time.Second))
		case "faultat":
			p.FaultAt = time.Duration(v * float64(time.Second))
		case "faultclear":
			p.FaultClear = time.Duration(v * float64(time.Second))
		case "duration":
			p.Duration = time.Duration(v * float64(time.Second))
		case "seed":
			var s int
			s, err = intParam(name, v)
			p.Seed = int64(s)
		default:
			return Spec{}, fmt.Errorf("unknown parameter %q (routeflap takes k, hosts, droprate, delayrate, delay, duprate, downat, upat, faultat, faultclear, duration, seed)", name)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	return RouteFlap(p)
}
