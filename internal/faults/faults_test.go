package faults

import (
	"strings"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

func churnResult(t *testing.T) *scenario.Result {
	t.Helper()
	spec, err := scenario.Lookup("churn")
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChurnRunPassesAllInvariants is the core robustness claim: a run with
// every fault class active at once (CM restarts, notify drop/delay, a host
// move, link flaps) ends in a consistent state.
func TestChurnRunPassesAllInvariants(t *testing.T) {
	res := churnResult(t)
	if vs := Check(res); len(vs) != 0 {
		t.Fatalf("churn run violated invariants: %v", vs)
	}
	// The run must actually have exercised the fault machinery, or the clean
	// bill of health is vacuous.
	var restarts, dropped int64
	var wiped int
	for _, c := range res.CMs {
		restarts += c.Restarts
		dropped += c.DroppedSends + c.DroppedUpdates
	}
	for _, ev := range res.Events {
		wiped += ev.FlowsWiped
	}
	if restarts == 0 || dropped == 0 || wiped == 0 {
		t.Fatalf("fault machinery idle: restarts=%d dropped=%d wiped=%d", restarts, dropped, wiped)
	}
}

// TestCheckFlagsEachViolation corrupts a healthy result one invariant at a
// time and expects exactly that rule to fire.
func TestCheckFlagsEachViolation(t *testing.T) {
	base := churnResult(t)
	tamper := []struct {
		rule    string
		corrupt func(r *scenario.Result)
	}{
		{RuleGrantConservation, func(r *scenario.Result) { r.CMs[0].GrantsIssued += 5 }},
		{RuleStrandedFlow, func(r *scenario.Result) { r.CMs[0].StrandedFlows = 2 }},
		{RuleNegativePending, func(r *scenario.Result) { r.CMs[0].NegativePending = 1 }},
		{RuleEpochMismatch, func(r *scenario.Result) { r.CMs[0].Epoch += 3 }},
		{RuleNegativeCounter, func(r *scenario.Result) { r.Flows[0].Delivered = -1 }},
		{RuleUnfiredEvent, func(r *scenario.Result) { r.Events[0].Fired = false }},
		{RuleUnfiredEvent, func(r *scenario.Result) {
			r.Events = append(r.Events, dynamics.Record{
				Event:   dynamics.Event{At: time.Hour, Kind: dynamics.CMRestart, Host: "s0"},
				Fired:   true,
				PastEnd: true,
			})
		}},
	}
	for _, tc := range tamper {
		res, err := scenario.Run(mustLookup(t, "churn"))
		if err != nil {
			t.Fatal(err)
		}
		tc.corrupt(res)
		vs := Check(res)
		found := false
		for _, v := range vs {
			if v.Rule == tc.rule {
				found = true
			}
		}
		if !found {
			t.Errorf("corrupting for %s produced %v", tc.rule, vs)
		}
	}
	_ = base
}

func mustLookup(t *testing.T, name string) scenario.Spec {
	t.Helper()
	spec, err := scenario.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// TestChurnSoakCampaign runs the canned soak serially and in parallel: zero
// violations either way, and byte-identical CSV output.
func TestChurnSoakCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("soak campaign in -short mode")
	}
	camp := ChurnSoakCampaign()
	serial, err := camp.Run(scenario.Runner{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckCampaign(serial); len(vs) != 0 {
		t.Fatalf("soak violated invariants: %v", vs)
	}
	parallel, err := camp.Run(scenario.Runner{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if serial.CSV() != parallel.CSV() {
		t.Fatal("serial and parallel soak CSVs differ")
	}
	// Sharded execution of every point must agree too.
	shardedCamp := camp
	shardedCamp.Shards = 4
	sharded, err := shardedCamp.Run(scenario.Runner{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if vs := CheckCampaign(sharded); len(vs) != 0 {
		t.Fatalf("sharded soak violated invariants: %v", vs)
	}
	if serial.CSV() != sharded.CSV() {
		t.Fatal("serial and sharded soak CSVs differ")
	}
}

// TestCheckCampaignLabelsViolations: a corrupted replicate is reported with
// its point and seed coordinates.
func TestCheckCampaignLabelsViolations(t *testing.T) {
	res, err := scenario.Run(mustLookup(t, "churn"))
	if err != nil {
		t.Fatal(err)
	}
	res.CMs[0].Epoch++
	cr := &sweep.CampaignResult{Points: []sweep.PointResult{{
		Index:   3,
		Seeds:   []int64{11, 12},
		Results: []*scenario.Result{nil, res},
	}}}
	vs := CheckCampaign(cr)
	if len(vs) == 0 {
		t.Fatal("corruption not reported")
	}
	want := "point=3 rep=1 seed=12"
	for _, v := range vs {
		if v.Rule == RuleEpochMismatch {
			if !strings.Contains(v.Scenario, want) {
				t.Fatalf("violation label %q missing %q", v.Scenario, want)
			}
			return
		}
	}
	t.Fatalf("epoch-mismatch not among %v", vs)
}

// churnSnapshots runs the churn scenario with mid-run snapshots every second
// and returns the snapshot sequence plus the end state.
func churnSnapshots(t *testing.T) ([]scenario.Snapshot, *scenario.Result) {
	t.Helper()
	spec := mustLookup(t, "churn")
	spec.SnapshotEvery = time.Second
	sim, err := scenario.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	sim.RunToEnd()
	snaps := sim.Snapshots()
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	return snaps, sim.Finish()
}

// TestCheckSnapshotsCleanOnChurn extends the core robustness claim into the
// run: the all-faults-active churn scenario holds every always-true
// invariant at each mid-run snapshot, not just at the end.
func TestCheckSnapshotsCleanOnChurn(t *testing.T) {
	snaps, end := churnSnapshots(t)
	vs, firstAt := CheckSnapshots(snaps, end)
	if len(vs) != 0 {
		t.Fatalf("mid-run violations: %v", vs)
	}
	if firstAt != -1 {
		t.Fatalf("firstAt = %d, want -1 for a clean run", firstAt)
	}
}

// TestCheckSnapshotSkipsQuiescenceRules: a mid-run snapshot may legitimately
// hold a pending request (stranded only if the run ends that way) and has
// rightly not fired later events, but the always-true invariants still bite.
func TestCheckSnapshotSkipsQuiescenceRules(t *testing.T) {
	snaps, _ := churnSnapshots(t)
	sn := snaps[1]

	sn.Result.CMs[0].StrandedFlows = 3
	if vs := CheckSnapshot(&sn); len(vs) != 0 {
		t.Fatalf("stranded-flow flagged mid-run: %v", vs)
	}
	sn.Result.CMs[0].StrandedFlows = 0

	sn.Result.CMs[0].GrantsIssued += 7
	vs := CheckSnapshot(&sn)
	if len(vs) != 1 || vs[0].Rule != RuleGrantConservation {
		t.Fatalf("grant corruption yielded %v, want one %s", vs, RuleGrantConservation)
	}
	if !strings.Contains(vs[0].Scenario, "t=") {
		t.Fatalf("snapshot violation %q is missing its capture time", vs[0].Scenario)
	}
	sn.Result.CMs[0].GrantsIssued -= 7

	// An event scheduled after the snapshot that has not fired is fine; one
	// scheduled before it that never fired is a violation.
	sn.Result.Events = append(sn.Result.Events, dynamics.Record{
		Event: dynamics.Event{At: sn.At + time.Second, Kind: dynamics.LinkDown},
	})
	if vs := CheckSnapshot(&sn); len(vs) != 0 {
		t.Fatalf("future unfired event flagged: %v", vs)
	}
	sn.Result.Events[len(sn.Result.Events)-1].Event.At = sn.At - time.Second
	vs = CheckSnapshot(&sn)
	if len(vs) != 1 || vs[0].Rule != RuleUnfiredEvent {
		t.Fatalf("past unfired event yielded %v, want one %s", vs, RuleUnfiredEvent)
	}
}

// TestCheckSnapshotsFirstViolationTime: the reported first-violation time is
// the capture time of the earliest violating snapshot.
func TestCheckSnapshotsFirstViolationTime(t *testing.T) {
	snaps, end := churnSnapshots(t)
	snaps[2].Result.CMs[0].Epoch += 9
	snaps[4].Result.CMs[0].Epoch += 9
	vs, firstAt := CheckSnapshots(snaps, end)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %v", len(vs), vs)
	}
	if want := int64(snaps[2].At); firstAt != want {
		t.Fatalf("firstAt = %d, want %d (t=%v)", firstAt, want, snaps[2].At)
	}
}
