// Package node models end hosts and their IP layer. A Host demultiplexes
// received packets to bound transport endpoints and, on the send side,
// implements the paper's modified IP output routine: every transmitted packet
// is reported to the Congestion Manager through a TransmitNotifier so the CM
// can charge the bytes to the right macroflow (cm_notify, paper §2.1.3).
package node

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// TransmitNotifier is the hook the IP output routine calls on every
// transmission. The Congestion Manager implements it; hosts without a CM run
// with a nil notifier (the baseline TCP/Linux configuration).
type TransmitNotifier interface {
	NotifyTransmit(key netsim.FlowKey, nbytes int)
}

// Handler consumes packets demultiplexed to a bound endpoint.
type Handler interface {
	Handle(pkt *netsim.Packet)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(pkt *netsim.Packet)

// Handle implements Handler.
func (f HandlerFunc) Handle(pkt *netsim.Packet) { f(pkt) }

type bindingKey struct {
	proto      netsim.Protocol
	localPort  int
	remoteHost string
	remotePort int
}

// HostStats are cumulative counters for a host's IP layer.
type HostStats struct {
	SentPackets     int
	SentBytes       int64
	ReceivedPackets int
	ReceivedBytes   int64
	// ForwardedPackets / ForwardedBytes count transit packets relayed by a
	// forwarding-enabled host (a router). Forwarded traffic is not included
	// in the Sent/Received counters, which cover locally terminated flows.
	ForwardedPackets int
	ForwardedBytes   int64
	NoRouteDrops     int
	// RouteMissDrops counts transit packets that arrived at a host that does
	// not forward at all — a leaf that received traffic addressed elsewhere
	// (stale routes after a topology change, or a moved host's old address).
	RouteMissDrops int
	// ForwardMissDrops counts transit packets discarded by a forwarding
	// router whose table had no entry (and no default route) for the
	// destination. Interior-router misses point at the routing computation;
	// leaf drops (RouteMissDrops) point at stale senders — the two failure
	// modes are diagnosed differently, so they are counted apart.
	ForwardMissDrops int
	// TTLExpiredDrops counts transit packets discarded because their hop
	// budget reached zero, the symptom of a routing loop.
	TTLExpiredDrops  int
	NoListenerDrops  int
	LastReceived     time.Duration
	NotifierUpcalled int
}

// Host is a simulated end system with an IP layer, a routing table keyed by
// destination host, and transport-endpoint demultiplexing. A Host with
// forwarding enabled doubles as a router: packets arriving for other
// destinations are relayed hop-by-hop through the routing table.
type Host struct {
	name   string
	sched  *simtime.Scheduler
	routes map[string]*netsim.Link
	// domains routes whole name-suffix subtrees: a packet for "h3.e1.p2"
	// with no exact route matches the longest dotted suffix present
	// ("e1.p2", then "p2"). Hierarchical routing uses it to give interior
	// routers O(children) tables instead of O(V); nil for exact-routed hosts.
	domains    map[string]*netsim.Link
	def        *netsim.Link
	bindings   map[bindingKey]Handler
	notifier   TransmitNotifier
	stats      HostStats
	nextPort   int
	forwarding bool
	// owned, when non-nil, must report true whenever host code runs. Sharded
	// execution installs a check tied to the host's shard's execution phase
	// so that a packet delivered outside the shard protocol (while the
	// owning shard is quiescent and no coordinator phase is active) panics
	// instead of corrupting state; serial runs leave it nil (one branch).
	owned func() bool
}

// NewHost creates a host with the given name attached to the scheduler.
func NewHost(name string, sched *simtime.Scheduler) *Host {
	if sched == nil {
		panic("node: NewHost requires a scheduler")
	}
	if name == "" {
		panic("node: NewHost requires a name")
	}
	return &Host{
		name:     name,
		sched:    sched,
		routes:   make(map[string]*netsim.Link),
		bindings: make(map[bindingKey]Handler),
		nextPort: 10000,
	}
}

// Name returns the host name (its "IP address" in the simulation).
func (h *Host) Name() string { return h.name }

// Clock returns the host's scheduler, which also serves as its clock and
// timer factory.
func (h *Host) Clock() *simtime.Scheduler { return h.sched }

// Stats returns a copy of the host's IP-layer counters.
func (h *Host) Stats() HostStats { return h.stats }

// SetTransmitNotifier installs the CM hook called from the IP output routine.
func (h *Host) SetTransmitNotifier(n TransmitNotifier) { h.notifier = n }

// SetOwnershipCheck installs a predicate asserting that the calling goroutine
// may run this host's code (true = allowed). Sharded execution uses it to pin
// each host to its shard; nil (the default) disables the check.
func (h *Host) SetOwnershipCheck(fn func() bool) { h.owned = fn }

// assertOwned panics if the host is being driven outside its owning shard.
func (h *Host) assertOwned() {
	if h.owned != nil && !h.owned() {
		panic(fmt.Sprintf("node: host %q driven outside its owning shard", h.name))
	}
}

// EnableForwarding turns the host into a router: packets received for other
// destinations are relayed through the routing table instead of dropped.
func (h *Host) EnableForwarding() { h.forwarding = true }

// Forwarding reports whether the host relays transit packets.
func (h *Host) Forwarding() bool { return h.forwarding }

// AddRoute routes packets destined to dstHost over link.
func (h *Host) AddRoute(dstHost string, link *netsim.Link) {
	if link == nil {
		panic("node: AddRoute with nil link")
	}
	h.routes[dstHost] = link
}

// SetDefaultRoute sets the link used for destinations with no explicit route.
func (h *Host) SetDefaultRoute(link *netsim.Link) { h.def = link }

// InstallRoutes atomically replaces the host's routing table with the given
// destination->link map (the default route is untouched). Packets forwarded
// after the call use only the new table — there is no partially updated state,
// which is what lets the dynamics subsystem recompute routes mid-run while
// packets are in flight. It returns the number of table entries that changed
// (added, removed or repointed), the per-host measure of a routing event's
// blast radius. The caller must not retain the map.
func (h *Host) InstallRoutes(routes map[string]*netsim.Link) int {
	if routes == nil {
		routes = make(map[string]*netsim.Link)
	}
	changed := 0
	for dst, l := range routes {
		if old, ok := h.routes[dst]; !ok || old != l {
			changed++
		}
	}
	for dst := range h.routes {
		if _, ok := routes[dst]; !ok {
			changed++
		}
	}
	h.routes = routes
	return changed
}

// DeleteRoute removes the explicit route to dstHost (the default route is
// untouched). It exists for tests that need to carve a hole in a wired
// topology; the simulation proper replaces tables wholesale with
// InstallRoutes / InstallHierRoutes.
func (h *Host) DeleteRoute(dstHost string) { delete(h.routes, dstHost) }

// SetRoute points the route to dstHost at link, reporting whether the table
// changed. Unlike AddRoute, a nil link is legal and installs a reject entry:
// the exact match wins the RouteTo lookup and returns nil, so packets for
// dstHost are dropped instead of falling through to a domain or default
// route. The routing control plane (internal/routeproto) uses SetRoute for
// its incremental per-message table updates.
func (h *Host) SetRoute(dstHost string, link *netsim.Link) bool {
	if old, ok := h.routes[dstHost]; ok && old == link {
		return false
	}
	h.routes[dstHost] = link
	return true
}

// RemoveRoute deletes the explicit route (or reject entry) for dstHost,
// reporting whether an entry was removed. Lookups for dstHost fall through to
// the domain table and default route again.
func (h *Host) RemoveRoute(dstHost string) bool {
	if _, ok := h.routes[dstHost]; !ok {
		return false
	}
	delete(h.routes, dstHost)
	return true
}

// SetDomainRoute points the name-suffix route for domain at link, reporting
// whether the table changed. A nil link installs a reject entry: packets
// matching the suffix (and nothing more specific) are dropped rather than
// following a shorter suffix or the default route — hierarchical routers use
// it to blackhole their own subtree's dead destinations instead of bouncing
// them back up.
func (h *Host) SetDomainRoute(domain string, link *netsim.Link) bool {
	if old, ok := h.domains[domain]; ok && old == link {
		return false
	}
	if h.domains == nil {
		h.domains = make(map[string]*netsim.Link)
	}
	h.domains[domain] = link
	return true
}

// RemoveDomainRoute deletes the name-suffix route (or reject entry) for
// domain, reporting whether an entry was removed.
func (h *Host) RemoveDomainRoute(domain string) bool {
	if _, ok := h.domains[domain]; !ok {
		return false
	}
	delete(h.domains, domain)
	return true
}

// InstallHierRoutes atomically replaces the host's entire routing state —
// exact table, domain (name-suffix) table and default route — with the given
// maps, returning the number of entries that changed (a default-route change
// counts as one). It is the hierarchical-routing counterpart of
// InstallRoutes; either map may be nil for empty. The caller must not retain
// the maps.
func (h *Host) InstallHierRoutes(routes, domains map[string]*netsim.Link, def *netsim.Link) int {
	changed := h.InstallRoutes(routes)
	if domains == nil {
		domains = make(map[string]*netsim.Link)
	}
	for d, l := range domains {
		if old, ok := h.domains[d]; !ok || old != l {
			changed++
		}
	}
	for d := range h.domains {
		if _, ok := domains[d]; !ok {
			changed++
		}
	}
	h.domains = domains
	if h.def != def {
		h.def = def
		changed++
	}
	return changed
}

// RouteTo returns the link used to reach dstHost, or nil if unroutable. The
// lookup tries an exact match, then the longest dotted name-suffix in the
// domain table, then the default route.
func (h *Host) RouteTo(dstHost string) *netsim.Link {
	if l, ok := h.routes[dstHost]; ok {
		return l
	}
	if len(h.domains) > 0 {
		rest := dstHost
		for {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				break
			}
			rest = rest[dot+1:]
			if l, ok := h.domains[rest]; ok {
				return l
			}
		}
	}
	return h.def
}

// AllocPort returns a fresh ephemeral port number.
func (h *Host) AllocPort() int {
	h.nextPort++
	return h.nextPort
}

// Bind registers a listener handler for (proto, localPort) accepting packets
// from any remote endpoint. It returns an error if the port is taken.
func (h *Host) Bind(proto netsim.Protocol, localPort int, handler Handler) error {
	return h.bind(bindingKey{proto: proto, localPort: localPort}, handler)
}

// BindConn registers a connected handler for (proto, localPort, remote). A
// connected binding takes precedence over a wildcard Bind on the same port,
// which is how multiple TCP connections share a server port.
func (h *Host) BindConn(proto netsim.Protocol, localPort int, remote netsim.Addr, handler Handler) error {
	return h.bind(bindingKey{proto: proto, localPort: localPort, remoteHost: remote.Host, remotePort: remote.Port}, handler)
}

func (h *Host) bind(k bindingKey, handler Handler) error {
	if handler == nil {
		return fmt.Errorf("node: nil handler for %v", k)
	}
	if _, ok := h.bindings[k]; ok {
		return fmt.Errorf("node: %s port %d already bound on %s", k.proto, k.localPort, h.name)
	}
	h.bindings[k] = handler
	return nil
}

// Unbind removes a wildcard binding.
func (h *Host) Unbind(proto netsim.Protocol, localPort int) {
	delete(h.bindings, bindingKey{proto: proto, localPort: localPort})
}

// UnbindConn removes a connected binding.
func (h *Host) UnbindConn(proto netsim.Protocol, localPort int, remote netsim.Addr) {
	delete(h.bindings, bindingKey{proto: proto, localPort: localPort, remoteHost: remote.Host, remotePort: remote.Port})
}

// Output is the IP output routine. It invokes the CM transmit notifier (if
// installed), looks up the route to the packet's destination and hands the
// packet to the link. It returns false if the packet could not be sent
// (no route) or was dropped by the link on ingress.
func (h *Host) Output(pkt *netsim.Packet) bool {
	if pkt == nil {
		panic("node: Output(nil)")
	}
	if pkt.Src.Host == "" {
		pkt.Src.Host = h.name
	}
	if pkt.TTL == 0 {
		pkt.TTL = netsim.DefaultTTL
	}
	link := h.RouteTo(pkt.Dst.Host)
	if link == nil {
		h.stats.NoRouteDrops++
		pkt.Release()
		return false
	}
	// The paper modifies ip_output to call cm_notify(flowid, nsent) on each
	// transmission; the notifier performs the flow lookup from the packet's
	// flow parameters. Transport control packets (pure ACKs, feedback) are
	// not data transmissions and are not charged.
	if h.notifier != nil && !pkt.Control {
		h.stats.NotifierUpcalled++
		charge := pkt.ChargeBytes
		if charge == 0 {
			charge = pkt.Size
		}
		h.notifier.NotifyTransmit(pkt.Key(), charge)
	}
	h.stats.SentPackets++
	h.stats.SentBytes += int64(pkt.Size)
	return link.Send(pkt)
}

// Receive implements netsim.Receiver: packets addressed to this host are
// demultiplexed to the most specific binding (connected first, then wildcard
// listener); packets in transit are forwarded when the host is a router and
// dropped (with accounting) otherwise. For locally terminated packets the
// host is the end of the packet's life: once the handler returns (handlers
// keep the payload, never the packet) the packet is released back to the
// pool.
func (h *Host) Receive(pkt *netsim.Packet) {
	h.assertOwned()
	if pkt.Dst.Host != h.name {
		h.forward(pkt)
		return
	}
	h.stats.ReceivedPackets++
	h.stats.ReceivedBytes += int64(pkt.Size)
	h.stats.LastReceived = h.sched.Now()
	k := bindingKey{proto: pkt.Proto, localPort: pkt.Dst.Port, remoteHost: pkt.Src.Host, remotePort: pkt.Src.Port}
	hd, ok := h.bindings[k]
	if !ok {
		k = bindingKey{proto: pkt.Proto, localPort: pkt.Dst.Port}
		hd, ok = h.bindings[k]
	}
	if !ok {
		h.stats.NoListenerDrops++
		pkt.Release()
		return
	}
	hd.Handle(pkt)
	pkt.Release()
}

// forward relays a transit packet toward its destination. The hop decrements
// the TTL (dropping expired packets), consults the routing table (falling
// back to the default route) and hands the packet to the next link. Both
// failure modes are counted in HostStats rather than silently discarded.
// Forwarding deliberately bypasses Output: transit traffic is not a local
// transmission, so it is never charged to the Congestion Manager.
func (h *Host) forward(pkt *netsim.Packet) {
	if !h.forwarding {
		h.stats.RouteMissDrops++
		pkt.Release()
		return
	}
	pkt.TTL--
	if pkt.TTL <= 0 {
		h.stats.TTLExpiredDrops++
		pkt.Release()
		return
	}
	link := h.RouteTo(pkt.Dst.Host)
	if link == nil {
		h.stats.ForwardMissDrops++
		pkt.Release()
		return
	}
	h.stats.ForwardedPackets++
	h.stats.ForwardedBytes += int64(pkt.Size)
	link.Send(pkt)
}

var _ netsim.Receiver = (*Host)(nil)

// Network is a convenience container that creates hosts and wires them
// together with duplex links, maintaining routing tables.
type Network struct {
	sched    *simtime.Scheduler
	schedFor func(host string) *simtime.Scheduler
	hosts    map[string]*Host
}

// NewNetwork returns an empty topology bound to the scheduler.
func NewNetwork(sched *simtime.Scheduler) *Network {
	if sched == nil {
		panic("node: NewNetwork requires a scheduler")
	}
	return &Network{sched: sched, hosts: make(map[string]*Host)}
}

// NewShardedNetwork returns an empty topology whose hosts are bound to
// per-host schedulers: schedFor maps a host name to the scheduler of the
// shard that owns it. Links created by ConnectDuplex run each direction on
// the transmitting host's scheduler.
func NewShardedNetwork(schedFor func(host string) *simtime.Scheduler) *Network {
	if schedFor == nil {
		panic("node: NewShardedNetwork requires a scheduler map")
	}
	return &Network{schedFor: schedFor, hosts: make(map[string]*Host)}
}

// Scheduler returns the shared scheduler, or nil for a sharded network.
func (n *Network) Scheduler() *simtime.Scheduler { return n.sched }

// schedOf resolves the scheduler owning the named host.
func (n *Network) schedOf(name string) *simtime.Scheduler {
	if n.schedFor != nil {
		return n.schedFor(name)
	}
	return n.sched
}

// Host returns the named host, creating it on first use.
func (n *Network) Host(name string) *Host {
	if h, ok := n.hosts[name]; ok {
		return h
	}
	h := NewHost(name, n.schedOf(name))
	n.hosts[name] = h
	return h
}

// Router returns the named host with forwarding enabled, creating it on
// first use. Calling Router on an existing host upgrades it in place.
func (n *Network) Router(name string) *Host {
	h := n.Host(name)
	h.EnableForwarding()
	return h
}

// Hosts returns the number of hosts created so far.
func (n *Network) Hosts() int { return len(n.hosts) }

// Rename gives an existing host a new name (a new "IP address"): the host is
// re-keyed in the network and packets must now address it by the new name —
// packets still carrying the old address no longer terminate at it. Routing
// state at other hosts is deliberately untouched; with a routing protocol
// active, stale routes to the old name age out on their own. It returns the
// renamed host, or panics if old does not exist or newName is taken.
func (n *Network) Rename(old, newName string) *Host {
	h, ok := n.hosts[old]
	if !ok {
		panic(fmt.Sprintf("node: Rename(%q): no such host", old))
	}
	if newName == "" || newName == old {
		panic(fmt.Sprintf("node: Rename(%q, %q): bad new name", old, newName))
	}
	if _, ok := n.hosts[newName]; ok {
		panic(fmt.Sprintf("node: Rename(%q, %q): name taken", old, newName))
	}
	delete(n.hosts, old)
	n.hosts[newName] = h
	h.name = newName
	return h
}

// ConnectDuplex joins hosts a and b with a duplex link built from cfg and
// installs routes in both directions. It returns the duplex so experiments
// can inspect per-direction statistics or install taps.
func (n *Network) ConnectDuplex(a, b string, cfg netsim.LinkConfig) *netsim.Duplex {
	ha, hb := n.Host(a), n.Host(b)
	if cfg.Name == "" {
		cfg.Name = a + "<->" + b
	}
	d := netsim.NewDuplexOn(ha.Clock(), hb.Clock(), cfg)
	d.Connect(ha, hb)
	ha.AddRoute(b, d.Forward)
	hb.AddRoute(a, d.Reverse)
	return d
}
