package app

import (
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/probe"
	"repro/internal/simtime"
	"repro/internal/udp"
)

// VatConfig parameterises the adaptive vat architecture of §3.6 / Figure 2:
// a constant-bit-rate interactive audio source whose only adaptation knob is
// preemptively dropping packets to match the available bandwidth.
type VatConfig struct {
	// BitRate is the source rate in bits per second (vat's 64 kbps PCM).
	BitRate float64
	// FrameInterval is the audio framing interval (20 ms frames by default).
	FrameInterval time.Duration
	// AppBufferFrames bounds the application-level buffer between the
	// policer and the kernel.
	AppBufferFrames int
	// DropPolicy selects drop-from-head (vat's choice, to bound delay) or
	// drop-tail for the application buffer.
	DropPolicy netsim.DropPolicy
	// KernelQueueFrames bounds the congestion-controlled socket's queue.
	KernelQueueFrames int
	// TraceWindow is the bucketing interval for rate traces.
	TraceWindow time.Duration
}

func (c *VatConfig) fillDefaults() {
	if c.BitRate <= 0 {
		c.BitRate = 64_000
	}
	if c.FrameInterval <= 0 {
		c.FrameInterval = 20 * time.Millisecond
	}
	if c.AppBufferFrames <= 0 {
		c.AppBufferFrames = 16
	}
	if c.KernelQueueFrames <= 0 {
		c.KernelQueueFrames = 4
	}
	if c.TraceWindow <= 0 {
		c.TraceWindow = time.Second
	}
}

// FrameSize returns the audio frame payload size in bytes.
func (c *VatConfig) FrameSize() int {
	return int(c.BitRate * c.FrameInterval.Seconds() / 8)
}

// VatStats count what happened to every generated audio frame.
type VatStats struct {
	FramesGenerated int64
	PolicerDrops    int64 // long-term adaptation: preemptively dropped
	BufferDrops     int64 // drop-from-head (or tail) in the application buffer
	KernelDrops     int64 // kernel socket queue overflow (should stay 0)
	FramesSent      int64
	BytesSent       int64
	RateCallbacks   int64
}

// VatSource implements the adaptive vat sender: audio frames flow through a
// policer (long-term adaptation via preemptive dropping driven by CM rate
// callbacks), then an application-level buffer with configurable size and
// drop policy (short-term smoothing), and finally into the
// congestion-controlled UDP socket (the kernel buffer), which they enter only
// on demand.
type VatSource struct {
	cfg   VatConfig
	sched *simtime.Scheduler
	cmgr  *cm.CM
	cc    *udp.CCSocket
	fb    *SenderFeedback

	// Policer token bucket.
	policerRate   float64
	tokens        float64
	lastTokenFill time.Duration

	appBuf  []*udp.Datagram
	seq     int64
	running bool
	frameTk simtime.Timer

	sentRate *probe.RateEstimator
	stats    VatStats
}

// NewVatSource creates the adaptive vat sender on host h, streaming to dst
// under the given Congestion Manager.
func NewVatSource(h *node.Host, cmgr *cm.CM, dst netsim.Addr, cfg VatConfig) (*VatSource, error) {
	cfg.fillDefaults()
	cc, err := udp.NewCCSocket(h, 0, dst, cmgr, cfg.KernelQueueFrames)
	if err != nil {
		return nil, err
	}
	v := &VatSource{
		cfg:      cfg,
		sched:    h.Clock(),
		cmgr:     cmgr,
		cc:       cc,
		sentRate: probe.NewRateEstimator("vat-sent-rate", cfg.TraceWindow),
	}
	v.fb = NewSenderFeedback(h.Clock(), func(nsent, nrecd int, mode cm.LossMode, rtt time.Duration) {
		cc.Update(nsent, nrecd, mode, rtt)
	})
	// Feedback reports arrive on the data socket.
	cc.Inner().OnReceive(func(_ netsim.Addr, d *udp.Datagram) { v.fb.HandleDatagram(d) })
	// Long-term adaptation: rate callbacks move the policer's admission rate.
	cmgr.Thresh(cc.Flow(), 1.1, 1.1)
	cmgr.RegisterUpdate(cc.Flow(), func(_ cm.FlowID, st cm.Status) {
		v.stats.RateCallbacks++
		v.setPolicerRate(st.Rate)
	})
	// The kernel buffer pulls from the application buffer on demand.
	cc.OnSpace(func() { v.fillKernel() })
	v.frameTk = h.Clock().NewKindTimer(simtime.KindWorkloadApp, v.onFrame)
	// Start with whatever the CM currently estimates.
	if st, ok := cmgr.Query(cc.Flow()); ok {
		v.policerRate = st.Rate
	}
	v.lastTokenFill = h.Clock().Now()
	return v, nil
}

// Flow returns the CM flow of the underlying congestion-controlled socket.
func (v *VatSource) Flow() cm.FlowID { return v.cc.Flow() }

// Stats returns a copy of the frame accounting counters.
func (v *VatSource) Stats() VatStats { return v.stats }

// SentRateSeries returns the transmitted-rate trace.
func (v *VatSource) SentRateSeries() *probe.Series { return v.sentRate.Series() }

// PolicerRate returns the current admission rate in bytes/second.
func (v *VatSource) PolicerRate() float64 { return v.policerRate }

// AppBufferDepth returns the current application buffer occupancy in frames.
func (v *VatSource) AppBufferDepth() int { return len(v.appBuf) }

// Start begins generating audio frames.
func (v *VatSource) Start() {
	if v.running {
		return
	}
	v.running = true
	v.frameTk.Reset(v.cfg.FrameInterval)
}

// Stop halts frame generation.
func (v *VatSource) Stop() {
	v.running = false
	v.frameTk.Stop()
}

// Close stops the source and releases the socket and flow.
func (v *VatSource) Close() {
	v.Stop()
	v.cc.Close()
}

func (v *VatSource) setPolicerRate(rate float64) {
	v.refillTokens()
	v.policerRate = rate
}

func (v *VatSource) refillTokens() {
	now := v.sched.Now()
	dt := (now - v.lastTokenFill).Seconds()
	if dt > 0 {
		v.tokens += v.policerRate * dt
		// Bound the bucket at two frame intervals' worth so idle periods do
		// not build an unbounded burst allowance.
		bucketCap := v.policerRate * v.cfg.FrameInterval.Seconds() * 2
		if bucketCap < float64(v.cfg.FrameSize()) {
			bucketCap = float64(v.cfg.FrameSize())
		}
		if v.tokens > bucketCap {
			v.tokens = bucketCap
		}
		v.lastTokenFill = now
	}
}

// onFrame generates one CBR audio frame and pushes it through the policer and
// buffers.
func (v *VatSource) onFrame() {
	if !v.running {
		return
	}
	defer v.frameTk.Reset(v.cfg.FrameInterval)

	size := v.cfg.FrameSize()
	v.stats.FramesGenerated++
	v.seq++
	frame := &udp.Datagram{Seq: v.seq, Size: size}

	// Policer: admit only if the token bucket (filled at the CM-reported
	// rate) has room; otherwise drop preemptively.
	v.refillTokens()
	if v.tokens < float64(size) {
		v.stats.PolicerDrops++
		return
	}
	v.tokens -= float64(size)

	// Application buffer with configurable drop policy.
	if len(v.appBuf) >= v.cfg.AppBufferFrames {
		if v.cfg.DropPolicy == netsim.DropHead {
			v.appBuf = v.appBuf[1:]
		} else {
			v.stats.BufferDrops++
			return
		}
		v.stats.BufferDrops++
	}
	v.appBuf = append(v.appBuf, frame)
	v.fillKernel()
}

// fillKernel moves frames from the application buffer into the kernel socket
// queue while there is room ("this buffer feeds into the kernel buffer
// on-demand as packets are available for transmission").
func (v *VatSource) fillKernel() {
	for len(v.appBuf) > 0 && v.cc.QueueLen() < v.cfg.KernelQueueFrames {
		frame := v.appBuf[0]
		v.appBuf = v.appBuf[1:]
		if !v.cc.Send(frame) {
			v.stats.KernelDrops++
			continue
		}
		v.fb.OnSend(frame.Seq, frame.Size)
		v.stats.FramesSent++
		v.stats.BytesSent += int64(frame.Size)
		v.sentRate.Record(v.sched.Now(), frame.Size)
	}
}
