package cm

import (
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

func newFlows(n int) []*flowState {
	fls := make([]*flowState, n)
	for i := range fls {
		fls[i] = &flowState{id: FlowID(i), weight: 1}
	}
	return fls
}

// markAll gives every flow one pending request, informing the scheduler of
// the eligibility transition exactly as the CM core does.
func markAll(s Scheduler, fls []*flowState) {
	for _, f := range fls {
		f.pendingRequests++
		if f.pendingRequests == 1 {
			s.MarkEligible(f)
		}
	}
}

// grantNext mimics the pump: take the scheduler's pick and consume one
// request from it.
func grantNext(t *testing.T, s Scheduler) *flowState {
	t.Helper()
	f := s.Next()
	if f == nil {
		t.Fatal("Next() = nil with eligible flows")
	}
	f.pendingRequests--
	if f.pendingRequests == 0 {
		s.MarkIneligible(f)
	}
	return f
}

func TestRoundRobinRotatesFairly(t *testing.T) {
	s := NewRoundRobinScheduler()
	fls := newFlows(3)
	for _, f := range fls {
		s.Add(f)
	}
	for _, f := range fls {
		f.pendingRequests = 2
		s.MarkEligible(f)
	}
	var order []FlowID
	for i := 0; i < 6; i++ {
		order = append(order, grantNext(t, s).id)
	}
	want := []FlowID{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("rotation = %v, want %v", order, want)
		}
	}
	if s.Next() != nil {
		t.Fatal("Next() should be nil when no requests remain")
	}
}

// Removing a flow positioned before the cursor must not skip or repeat flows.
func TestRoundRobinRemoveBeforeCursor(t *testing.T) {
	s := NewRoundRobinScheduler()
	fls := newFlows(4)
	for _, f := range fls {
		s.Add(f)
	}
	markAll(s, fls)
	markAll(s, fls) // two requests each
	// Advance the rotation past flows 0 and 1.
	if got := grantNext(t, s); got.id != 0 {
		t.Fatalf("first grant to %d, want 0", got.id)
	}
	if got := grantNext(t, s); got.id != 1 {
		t.Fatalf("second grant to %d, want 1", got.id)
	}
	// Remove flow 0, which sits before the cursor (cursor is at flow 2).
	fls[0].pendingRequests = 0
	s.Remove(fls[0])
	var order []FlowID
	for i := 0; i < 5; i++ {
		order = append(order, grantNext(t, s).id)
	}
	want := []FlowID{2, 3, 1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("after remove-before-cursor, order = %v, want %v", order, want)
		}
	}
}

// Removing the flow the cursor points at must advance the cursor to its
// successor, wrapping at the end of the rotation.
func TestRoundRobinRemoveAtCursorAndLast(t *testing.T) {
	s := NewRoundRobinScheduler()
	fls := newFlows(3)
	for _, f := range fls {
		s.Add(f)
	}
	markAll(s, fls)
	markAll(s, fls)
	// Cursor starts at flow 0: removing it should hand the next grant to 1.
	fls[0].pendingRequests = 0
	s.Remove(fls[0])
	if got := grantNext(t, s); got.id != 1 {
		t.Fatalf("grant after remove-at-cursor went to %d, want 1", got.id)
	}
	// Cursor now at flow 2 (the last); removing it must wrap the cursor to 1.
	fls[2].pendingRequests = 0
	s.Remove(fls[2])
	if got := grantNext(t, s); got.id != 1 {
		t.Fatalf("grant after remove-last went to %d, want 1 (wrapped)", got.id)
	}
	// Removing the final flow empties the scheduler.
	fls[1].pendingRequests = 0
	s.Remove(fls[1])
	if s.Next() != nil {
		t.Fatal("Next() on empty scheduler should be nil")
	}
	if s.TotalWeight() != 1 {
		t.Fatalf("TotalWeight() on empty = %v, want 1", s.TotalWeight())
	}
}

// Removing flows while the rotation is in flight (the remove-while-rotating
// case: close a flow between grants) must keep a coherent rotation among the
// survivors.
func TestRoundRobinRemoveWhileRotating(t *testing.T) {
	s := NewRoundRobinScheduler()
	fls := newFlows(5)
	for _, f := range fls {
		s.Add(f)
	}
	for _, f := range fls {
		f.pendingRequests = 100
		s.MarkEligible(f)
	}
	seen := make(map[FlowID]int)
	for i := 0; i < 3; i++ {
		seen[grantNext(t, s).id]++
	}
	// Remove flow 3 mid-rotation (cursor is at 3 right now).
	fls[3].pendingRequests = 0
	s.Remove(fls[3])
	for i := 0; i < 8; i++ {
		f := grantNext(t, s)
		if f.id == 3 {
			t.Fatal("removed flow still granted")
		}
		seen[f.id]++
	}
	// The four survivors must each have been granted 2 or 3 times in 11
	// grants — strict rotation tolerates at most a difference of one.
	for _, id := range []FlowID{0, 1, 2, 4} {
		if seen[id] < 2 || seen[id] > 3 {
			t.Fatalf("unfair rotation after removal: counts %v", seen)
		}
	}
}

// Remove on a flow that was never added must be a no-op.
func TestRoundRobinRemoveUnknownFlow(t *testing.T) {
	s := NewRoundRobinScheduler()
	f := &flowState{id: 9}
	s.Remove(f) // must not panic
	fls := newFlows(2)
	s.Add(fls[0])
	s.Add(fls[1])
	s.Remove(f) // still a no-op
	if s.TotalWeight() != 2 {
		t.Fatalf("TotalWeight() = %v, want 2", s.TotalWeight())
	}
}

// The eligible count must short-circuit Next when no flow has requests, and
// recover exactly when requests appear — exercised through the CM API so the
// MarkEligible/MarkIneligible transitions run for real.
func TestRoundRobinEligibleCountViaCM(t *testing.T) {
	sched := simtime.NewScheduler()
	c := New(sched, sched)
	dst := netsim.Addr{Host: "server", Port: 80}
	var ids []FlowID
	for i := 0; i < 10; i++ {
		ids = append(ids, c.Open(netsim.ProtoTCP, netsim.Addr{Host: "client", Port: 1000 + i}, dst))
	}
	mf := c.MacroflowOf(ids[0])
	rr := mf.sched.(*roundRobinScheduler)
	if rr.eligible != 0 {
		t.Fatalf("eligible = %d after open, want 0", rr.eligible)
	}
	granted := 0
	for _, id := range ids {
		c.RegisterSend(id, func(f FlowID) { granted++; c.Notify(f, 0) })
	}
	c.Request(ids[3])
	c.Request(ids[7])
	sched.Run()
	if granted != 2 {
		t.Fatalf("granted = %d, want 2", granted)
	}
	if rr.eligible != 0 {
		t.Fatalf("eligible = %d after grants consumed, want 0", rr.eligible)
	}
	// Close the congestion window so a request stays pending: the eligible
	// count must hold at 1 until the flow is closed, then drop with it.
	c.Notify(ids[0], 1<<20)
	c.Request(ids[5])
	if rr.eligible != 1 {
		t.Fatalf("eligible = %d with one request pending, want 1", rr.eligible)
	}
	c.Close(ids[5])
	if rr.eligible != 0 {
		t.Fatalf("eligible = %d after closing the requesting flow, want 0", rr.eligible)
	}
}

// The weighted scheduler must still apportion grants by weight after the
// credit bookkeeping moved onto flowState.
func TestWeightedSchedulerProportions(t *testing.T) {
	s := NewWeightedRoundRobinScheduler()
	fls := newFlows(2)
	fls[0].weight = 3
	fls[1].weight = 1
	s.Add(fls[0])
	s.Add(fls[1])
	fls[0].pendingRequests = 1000
	fls[1].pendingRequests = 1000
	counts := map[FlowID]int{}
	for i := 0; i < 400; i++ {
		f := s.Next()
		if f == nil {
			t.Fatal("Next() = nil")
		}
		f.pendingRequests--
		counts[f.id]++
	}
	if counts[0] < 290 || counts[0] > 310 {
		t.Fatalf("weight-3 flow got %d of 400 grants, want ~300", counts[0])
	}
	if s.TotalWeight() != 4 {
		t.Fatalf("TotalWeight() = %v, want 4", s.TotalWeight())
	}
	if w := s.Weight(fls[0]); w != 3 {
		t.Fatalf("Weight = %v, want 3", w)
	}
}

// Grant issue must stay allocation-free in steady state: request, grant
// delivery, notify and the window bookkeeping all run on recycled storage.
func TestRequestGrantNotifySteadyStateAllocs(t *testing.T) {
	sched := simtime.NewScheduler()
	c := New(sched, sched)
	f := c.Open(netsim.ProtoTCP, netsim.Addr{Host: "a", Port: 1}, netsim.Addr{Host: "b", Port: 80})
	c.RegisterSend(f, func(id FlowID) { c.Notify(id, 1500) })
	c.Update(f, 0, 1<<20, NoLoss, time.Millisecond)
	for i := 0; i < 64; i++ {
		c.Request(f)
		c.Update(f, 1500, 1500, NoLoss, 0)
	}
	allocs := testing.AllocsPerRun(500, func() {
		c.Request(f)
		c.Update(f, 1500, 1500, NoLoss, 0)
	})
	// The grant path itself is allocation-free; the only tolerated source is
	// the background timer's first arm after idle, which the warmup removes.
	if allocs != 0 {
		t.Fatalf("request/grant/notify/update allocated %.2f objects per op, want 0", allocs)
	}
}
