package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/probe"
)

// TestShardedRunsAreByteIdentical is the sharded-execution acceptance check:
// a K-shard run must produce exactly the serial run's Result — same structs,
// same JSON bytes — for K in {2,4,8}, on scenarios covering symmetric
// dumbbells (same-instant tie-breaks), multi-hop chains, bursty loss with
// layered UDP workloads, an active dynamics timeline with an outage and live
// route recomputation, and the 64-node cluster grid. Every run executes with
// the per-event-kind profiler armed, proving wall-clock attribution never
// perturbs simulation state; the Perf block (execution telemetry, by design
// different per run) is asserted populated and then stripped before the
// comparison.
func TestShardedRunsAreByteIdentical(t *testing.T) {
	runProfiled := func(spec Spec) (*Result, error) {
		sim, err := Build(spec)
		if err != nil {
			return nil, err
		}
		sim.EnableProfiling()
		if err := sim.Start(); err != nil {
			return nil, err
		}
		sim.RunToEnd()
		res := sim.Finish()
		if res.Perf == nil || res.Perf.Events == 0 || len(res.Perf.Kinds) == 0 {
			t.Fatalf("%s: profiled run produced no Perf attribution: %+v", spec.Name, res.Perf)
		}
		res.Perf = nil
		return res, nil
	}
	// fattree is the residual-tie torture case: its cross-pod streams dial in
	// nanosecond lockstep and collide at the cores at shared instants, which
	// only the link-identity sort key (Link.SortKey, see drain()) orders
	// consistently between serial and sharded runs.
	scenarios := []string{"grid", "flaky-dumbbell", "churn", "fattree", "routeflap"}
	if !testing.Short() {
		scenarios = append(scenarios, "wireless", "parkinglot")
	}
	for _, name := range scenarios {
		spec, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		// Long enough to cross every scheduled dynamics event, short enough
		// to keep the whole matrix quick.
		spec.Duration = 3 * time.Second
		if name == "flaky-dumbbell" {
			spec.Duration = 12 * time.Second // past the outage and recovery
		}
		if name == "churn" {
			// Past the host move (2s), its re-attach and a few CM restarts,
			// with notify faults injecting throughout.
			spec.Duration = 6 * time.Second
		}
		if name == "routeflap" {
			// Past the flap (1s down, 3s up) with the control plane active and
			// control-plane faults injecting — the distance-vector messages
			// must serialise identically across shard counts.
			spec.Duration = 4 * time.Second
		}
		if name == "grid" {
			// Drop the cross-cluster start stagger: every transfer dials at
			// t=0 in lockstep, so symmetric same-instant deliveries from
			// different source shards hit shared routers — the hardest
			// tie-breaking case for the injection order (see drain()).
			for i := range spec.Workloads {
				spec.Workloads[i].Start = 0
			}
		}
		// Observability must be observation-only: identical results with
		// probes sampling mid-run and the flight recorder armed. The link
		// probes split across the field-ownership boundary (queue depth on
		// the sending shard, delivered bytes on the receiving one), and the
		// host probe rides the first workload's source host.
		spec.Probes = []probe.Spec{
			{Target: "link[0].queue_depth"},
			{Target: "link[0].delivered_bytes"},
			{Target: "host[" + spec.Workloads[0].From + "].sent_bytes"},
		}
		for _, w := range spec.Workloads {
			if w.CC == CCCM {
				spec.Probes = append(spec.Probes, probe.Spec{Target: "cm[" + w.From + "].cwnd"})
				break
			}
		}
		spec.TraceDepth = 256
		serial, err := runProfiled(spec)
		if err != nil {
			t.Fatal(err)
		}
		sj, err := json.Marshal(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range []int{2, 4, 8} {
			sp := spec
			sp.Shards = k
			sharded, err := runProfiled(sp)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, sharded) {
				t.Errorf("%s: serial and %d-shard result structs differ", name, k)
			}
			kj, err := json.Marshal(sharded)
			if err != nil {
				t.Fatal(err)
			}
			if string(sj) != string(kj) {
				t.Errorf("%s: serial and %d-shard JSON encodings differ", name, k)
			}
		}
	}
}

// TestShardedBuildPartition pins the partitioner's observable properties on
// the canned topologies: whole clusters stay on one shard, the lookahead is
// the backbone delay, and the dumbbell splits at its bottleneck.
func TestShardedBuildPartition(t *testing.T) {
	spec, err := Lookup("grid")
	if err != nil {
		t.Fatal(err)
	}
	spec.Shards = 4
	sim, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Sharded() || sim.ShardCount() != 4 {
		t.Fatalf("grid with Shards=4: sharded=%v count=%d", sim.Sharded(), sim.ShardCount())
	}
	if got := sim.Lookahead(); got != 10*time.Millisecond {
		t.Fatalf("grid lookahead = %v, want the 10ms backbone delay", got)
	}
	// Every leaf host must share its router's shard: access links are the
	// cheapest edges, so the partition never cuts one.
	for c := 0; c < 16; c++ {
		r := sim.ShardOf(sname4(c))
		for i := 0; i < 3; i++ {
			if got := sim.ShardOf(hname4(c, i)); got != r {
				t.Fatalf("cluster %d host %d on shard %d, router on %d", c, i, got, r)
			}
		}
	}

	db, err := Lookup("dumbbell")
	if err != nil {
		t.Fatal(err)
	}
	db.Shards = 2
	sim, err = Build(db)
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.Lookahead(); got != 20*time.Millisecond {
		t.Fatalf("dumbbell lookahead = %v, want the 20ms bottleneck delay", got)
	}
	if sim.ShardOf("left") == sim.ShardOf("right") {
		t.Fatal("dumbbell: both routers on one shard; the cut should be the bottleneck")
	}
	for _, h := range []string{"s0", "s1"} {
		if sim.ShardOf(h) != sim.ShardOf("left") {
			t.Fatalf("sender %s not on the left router's shard", h)
		}
	}
}

func sname4(c int) string    { return "r" + itoa(c) }
func hname4(c, i int) string { return "c" + itoa(c) + "h" + itoa(i) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestShardedFallsBackToSerial covers the degradations: Shards <= 1, a
// single-host-pair topology with zero propagation delay (no lookahead), and
// a set-delay event that collapses the only cross-shard delay to zero
// mid-run. All three must build serial.
func TestShardedFallsBackToSerial(t *testing.T) {
	zero := PointToPoint(PointToPointParams{
		Link: netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps},
		Workloads: []Workload{
			{Kind: KindBulk, From: "sender", To: "receiver", Bytes: 1 << 16},
		},
		Duration: 2 * time.Second,
	})
	zero.Shards = 4
	sim, err := Build(zero)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Sharded() {
		t.Fatal("zero-delay topology must fall back to serial execution")
	}
	if sim.Scheduler() == nil {
		t.Fatal("serial fallback must expose its scheduler")
	}

	one := DumbbellGrid(GridParams{})
	one.Shards = 1
	if sim = MustBuild(one); sim.Sharded() {
		t.Fatal("Shards=1 must run serially")
	}

	// A set-delay event can shrink a link's delay mid-run; the lookahead
	// must honour the lifetime minimum. On a two-node topology the squeezed
	// link is the only possible cut, so sharding must be abandoned.
	squeeze, err := Lookup("wireless")
	if err != nil {
		t.Fatal(err)
	}
	squeeze.Shards = 2
	squeeze.Events = append(squeeze.Events, dynamics.Event{
		At: time.Second, Kind: dynamics.SetDelay, Link: 0, Delay: 0,
	})
	if sim = MustBuild(squeeze); sim.Sharded() {
		t.Fatal("a zero-delay set-delay event on the only cut link must force serial execution")
	}

	// On the grid the same squeeze is routed around: the partitioner
	// contracts the cheapened backbone link into one shard (cheapest edges
	// merge first), so the surviving cut keeps the full 10ms lookahead.
	// Links are built cluster hosts first (16 clusters * 3 hosts = 48), so
	// index 48 is the first backbone link.
	routed, err := Lookup("grid")
	if err != nil {
		t.Fatal(err)
	}
	routed.Shards = 4
	routed.Events = append(routed.Events, dynamics.Event{
		At: time.Second, Kind: dynamics.SetDelay, Link: 48, Delay: 2 * time.Millisecond,
	})
	if sim = MustBuild(routed); !sim.Sharded() || sim.Lookahead() != 10*time.Millisecond {
		t.Fatalf("sharded=%v lookahead=%v, want the cut routed around the squeezed link (10ms)",
			sim.Sharded(), sim.Lookahead())
	}
	a, b := routed.Links[48].A, routed.Links[48].B
	if sim.ShardOf(a) != sim.ShardOf(b) {
		t.Fatalf("squeezed link %s-%s still crosses shards", a, b)
	}
}

// TestShardedRepeatedRunsIdentical pins plain determinism of the sharded
// path itself: two sharded runs of one spec are identical.
func TestShardedRepeatedRunsIdentical(t *testing.T) {
	spec := DumbbellGrid(GridParams{Duration: 2 * time.Second})
	spec.Shards = 4
	a, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two sharded runs of the same spec differ")
	}
}
