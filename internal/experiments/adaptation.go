package experiments

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/libcm"
	"repro/internal/netsim"
	"repro/internal/probe"
)

// AdaptationConfig parameterises the layered-streaming adaptation traces of
// Figures 8, 9 and 10: a layered server streams to a client over a shared
// path while on/off cross-traffic changes the available bandwidth, and the
// experiment records the transmission rate and the rate the CM reports.
type AdaptationConfig struct {
	// Mode selects the ALF (Figure 8) or rate-callback (Figure 9/10) API.
	Mode app.LayeredMode
	// Duration is the length of the trace.
	Duration time.Duration
	// Feedback is the receiver's feedback policy; Figure 10 delays feedback
	// by min(500 packets, 2000 ms).
	Feedback app.FeedbackPolicy
	// Layers are the encoding rates in bytes/second.
	Layers []float64
	// PathBandwidth and RTT describe the wide-area path.
	PathBandwidth netsim.Bandwidth
	RTT           time.Duration
	// CrossRate is the cross-traffic rate during on periods (bytes/second);
	// CrossOn/CrossOff are the period lengths.
	CrossRate float64
	CrossOn   time.Duration
	CrossOff  time.Duration
	// TraceWindow is the resampling interval of the reported series.
	TraceWindow time.Duration
	Seed        int64
}

func (c *AdaptationConfig) fillDefaults() {
	if c.Duration <= 0 {
		c.Duration = 25 * time.Second
	}
	if len(c.Layers) == 0 {
		// Four layers spanning roughly the 0-2.5 MB/s range of Figures 8-9.
		c.Layers = []float64{312_500, 625_000, 1_250_000, 2_500_000}
	}
	if c.PathBandwidth == 0 {
		c.PathBandwidth = 20 * netsim.Mbps
	}
	if c.RTT <= 0 {
		c.RTT = 70 * time.Millisecond
	}
	if c.CrossRate == 0 {
		c.CrossRate = 1_200_000
	}
	if c.CrossOn <= 0 {
		c.CrossOn = 5 * time.Second
	}
	if c.CrossOff <= 0 {
		c.CrossOff = 5 * time.Second
	}
	if c.TraceWindow <= 0 {
		c.TraceWindow = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 61
	}
}

// AdaptationResult holds the traces of one adaptation run.
type AdaptationResult struct {
	Config AdaptationConfig
	// TransmissionRate is the measured sending rate (bytes/second buckets).
	TransmissionRate *probe.Series
	// ReportedRate is the rate the CM reported to the application.
	ReportedRate *probe.Series
	// LayerRate is the nominal rate of the layer the application selected.
	LayerRate *probe.Series
	// ClientRate is the rate observed at the receiver.
	ClientRate *probe.Series
	// Stats are the server's counters.
	Stats app.LayeredStats
	// ReportsSent is the number of feedback reports the receiver generated.
	ReportsSent int64
}

// RunAdaptation runs one layered-streaming adaptation experiment.
func RunAdaptation(cfg AdaptationConfig) AdaptationResult {
	cfg.fillDefaults()
	path := Path{
		Bandwidth:    cfg.PathBandwidth,
		OneWayDelay:  cfg.RTT / 2,
		QueuePackets: 150,
		Seed:         cfg.Seed,
	}
	w := newTestbed(path, true)
	lib := libcm.New(w.cm, w.sched, libcm.ModeAuto)

	client, err := app.NewLayeredClient(w.rcvr, 7000, cfg.Feedback, cfg.TraceWindow)
	if err != nil {
		return AdaptationResult{Config: cfg}
	}
	srv, err := app.NewLayeredServer(w.sender, lib, client.Addr(), app.LayeredConfig{
		Mode:        cfg.Mode,
		Layers:      cfg.Layers,
		PacketSize:  1000,
		TraceWindow: cfg.TraceWindow,
	})
	if err != nil {
		return AdaptationResult{Config: cfg}
	}
	var cross *app.OnOffSource
	if cfg.CrossRate > 0 {
		cross, err = app.NewOnOffSource(w.sender, netsim.Addr{Host: "receiver", Port: 9990},
			cfg.CrossRate, 1000, cfg.CrossOn, cfg.CrossOff)
		if err == nil {
			// Cross traffic starts after a few seconds so the trace shows the
			// application ramping up, losing bandwidth, and recovering.
			w.sched.After(3*time.Second, cross.Start)
		}
	}
	srv.Start()
	w.sched.RunUntil(cfg.Duration)
	srv.Stop()
	if cross != nil {
		cross.Stop()
	}

	return AdaptationResult{
		Config:           cfg,
		TransmissionRate: srv.TransmissionRateSeries().Resample(0, cfg.Duration, cfg.TraceWindow),
		ReportedRate:     srv.ReportedRateSeries().Resample(0, cfg.Duration, cfg.TraceWindow),
		LayerRate:        srv.LayerRateSeries().Resample(0, cfg.Duration, cfg.TraceWindow),
		ClientRate:       client.RateSeries().Resample(0, cfg.Duration, cfg.TraceWindow),
		Stats:            srv.Stats(),
		ReportsSent:      client.ReportsSent(),
	}
}

// Fig8Config returns the configuration of Figure 8 (ALF API, per-packet
// feedback, ~25 s trace).
func Fig8Config() AdaptationConfig {
	return AdaptationConfig{Mode: app.ModeALF, Duration: 25 * time.Second, Feedback: app.FeedbackPolicy{EveryPackets: 1}}
}

// Fig9Config returns the configuration of Figure 9 (rate-callback API,
// per-packet feedback, ~20 s trace).
func Fig9Config() AdaptationConfig {
	return AdaptationConfig{Mode: app.ModeRateCallback, Duration: 20 * time.Second, Feedback: app.FeedbackPolicy{EveryPackets: 1}}
}

// Fig10Config returns the configuration of Figure 10 (rate-callback API with
// feedback delayed by min(500 packets, 2000 ms), ~70 s trace).
func Fig10Config() AdaptationConfig {
	return AdaptationConfig{
		Mode:     app.ModeRateCallback,
		Duration: 70 * time.Second,
		Feedback: app.FeedbackPolicy{EveryPackets: 500, MaxDelay: 2 * time.Second},
	}
}

// Table renders the adaptation trace as time series rows (KB/s), matching the
// series plotted in Figures 8-10.
func (r AdaptationResult) Table() string {
	n := r.TransmissionRate.Len()
	rows := make([][]string, 0, n)
	for i := 0; i < n; i++ {
		pt := r.TransmissionRate.At(i)
		rep, layer, cli := 0.0, 0.0, 0.0
		if i < r.ReportedRate.Len() {
			rep = r.ReportedRate.At(i).V
		}
		if i < r.LayerRate.Len() {
			layer = r.LayerRate.At(i).V
		}
		if i < r.ClientRate.Len() {
			cli = r.ClientRate.At(i).V
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", pt.T.Seconds()),
			fmt.Sprintf("%.0f", pt.V/1024),
			fmt.Sprintf("%.0f", rep/1024),
			fmt.Sprintf("%.0f", layer/1024),
			fmt.Sprintf("%.0f", cli/1024),
		})
	}
	title := fmt.Sprintf("Adaptation trace (%s API, %d layer switches, %d rate callbacks, %d reports)\n",
		r.Config.Mode, r.Stats.LayerSwitches, r.Stats.RateCallbacks, r.ReportsSent)
	return title + formatTable([]string{"t(s)", "tx KB/s", "CM-reported KB/s", "layer KB/s", "client KB/s"}, rows)
}

// CSV renders the adaptation traces as CSV for plotting.
func (r AdaptationResult) CSV() string {
	return probe.CSV(r.TransmissionRate, r.ReportedRate, r.LayerRate, r.ClientRate)
}
