package scenario

import (
	"fmt"

	"repro/internal/netsim"
	"repro/internal/node"
)

// routeEngine owns all routing computation for a built simulation. It interns
// node names once at Build and works on flat integer-indexed state from then
// on: a CSR adjacency (offsets, targets, links) in first-mention order, a
// per-entry down-state mirror, and — in exact mode — a per-source distance
// matrix that lets a link event recompute only the sources it can affect.
//
// Two modes share the engine:
//
//   - Exact (the default, Spec.Routing empty or "exact"): every host gets a
//     full destination→next-hop table from a deterministic BFS, bit-for-bit
//     identical to the original map-based implementation (ties break by
//     first-mention order). Link events update incrementally while the node
//     count stays within incrementalRouteLimit, falling back to a full
//     recompute above it.
//   - Hierarchical (Spec.Routing == RoutingHier): for tree-like topologies,
//     levels are measured from Spec.HierRoots and each node's table holds
//     only its children — an exact entry per child, a name-suffix domain
//     entry per child router — plus a default route up. Table memory is
//     O(children) per node and a link event rebuilds only the endpoints of
//     the flipped links, which is what makes 100k-host specs buildable.
//
// In both modes the changed-entry count returned by recompute matches what a
// from-scratch recompute would have reported: untouched tables contribute
// zero by definition, and touched ones are diffed by InstallRoutes /
// InstallHierRoutes.
type routeEngine struct {
	n       int
	names   []string
	hosts   []*node.Host
	hier    bool
	domains []string // per node: the name-suffix domain it covers downward

	// CSR adjacency in first-mention order. downMirror[k] is the last
	// observed IsDown state of adjLink[k]; recompute diffs it against the
	// live links, so flips reach the engine without any event plumbing
	// (batched flips from a host move look the same as a single link event).
	adjOff     []int32
	adjFrom    []int32
	adjTo      []int32
	adjLink    []*netsim.Link
	downMirror []bool

	isRouter []bool

	// level[v] is the hop distance from the nearest hierarchy root
	// (hier mode only), computed once over the static topology.
	level []int32

	// dist[s*n+v] is the hop count from s to v (-1 unreachable), maintained
	// in exact mode while n <= incrementalRouteLimit; nil otherwise.
	dist []int32

	// BFS scratch, sized n.
	queue    []int32
	firstHop []int32
	distRow  []int32
	affected []bool

	installed bool
}

// incrementalRouteLimit bounds the exact-mode distance matrix (n² int32).
// Every canned exact-routing scenario is far below it; a larger exact
// topology recomputes fully per event, and internet-scale specs use
// hierarchical routing, whose incremental path needs no matrix at all.
const incrementalRouteLimit = 1024

// dirEdge is one directional link in Build insertion order.
type dirEdge struct {
	from, to int32
	link     *netsim.Link
}

// newRouteEngine interns the topology. Nodes and edges arrive in
// first-mention order (the order the old map-based router iterated in);
// hierRoots/domainOf are empty for exact mode.
func newRouteEngine(spec *Spec, names []string, hosts []*node.Host, edges []dirEdge) (*routeEngine, error) {
	n := len(names)
	e := &routeEngine{
		n:        n,
		names:    names,
		hosts:    hosts,
		hier:     spec.Routing == RoutingHier,
		adjOff:   make([]int32, n+1),
		adjFrom:  make([]int32, len(edges)),
		adjTo:    make([]int32, len(edges)),
		adjLink:  make([]*netsim.Link, len(edges)),
		isRouter: make([]bool, n),
		queue:    make([]int32, 0, n),
		firstHop: make([]int32, n),
		distRow:  make([]int32, n),
		affected: make([]bool, n),
	}
	// Counting sort of the edge list into CSR keeps each node's adjacency in
	// edge insertion order — exactly the old neighbors-map iteration order.
	for _, ed := range edges {
		e.adjOff[ed.from+1]++
	}
	for v := 0; v < n; v++ {
		e.adjOff[v+1] += e.adjOff[v]
	}
	next := append([]int32(nil), e.adjOff[:n]...)
	for _, ed := range edges {
		k := next[ed.from]
		next[ed.from]++
		e.adjFrom[k] = ed.from
		e.adjTo[k] = ed.to
		e.adjLink[k] = ed.link
	}
	e.downMirror = make([]bool, len(edges))
	for i := range hosts {
		e.isRouter[i] = hosts[i].Forwarding()
	}
	if e.hier {
		id := make(map[string]int, n)
		for i, name := range names {
			id[name] = i
		}
		e.domains = make([]string, n)
		for i, name := range names {
			if d, ok := spec.Domains[name]; ok {
				e.domains[i] = d
			} else {
				e.domains[i] = name
			}
		}
		if err := e.computeLevels(spec, id); err != nil {
			return nil, err
		}
	} else if n <= incrementalRouteLimit {
		e.dist = make([]int32, n*n)
	}
	return e, nil
}

// computeLevels runs the multi-source BFS from the hierarchy roots over the
// static topology (down links still count: an outage changes reachability,
// not the shape of the hierarchy) and checks the tree-likeness hier routing
// relies on: every node is placed, and every link joins adjacent levels.
func (e *routeEngine) computeLevels(spec *Spec, id map[string]int) error {
	e.level = make([]int32, e.n)
	for i := range e.level {
		e.level[i] = -1
	}
	q := e.queue[:0]
	for _, r := range spec.HierRoots {
		v, ok := id[r]
		if !ok {
			return fmt.Errorf("scenario %q: hier root %q not in topology", spec.Name, r)
		}
		if !e.isRouter[v] {
			return fmt.Errorf("scenario %q: hier root %q is not a router", spec.Name, r)
		}
		if e.level[v] != 0 {
			e.level[v] = 0
			q = append(q, int32(v))
		}
	}
	if len(q) == 0 {
		return fmt.Errorf("scenario %q: hier routing needs at least one root (Spec.HierRoots)", spec.Name)
	}
	for qi := 0; qi < len(q); qi++ {
		u := q[qi]
		for k := e.adjOff[u]; k < e.adjOff[u+1]; k++ {
			v := e.adjTo[k]
			if e.level[v] < 0 {
				e.level[v] = e.level[u] + 1
				q = append(q, v)
			}
		}
	}
	e.queue = q[:0]
	for v := 0; v < e.n; v++ {
		if e.level[v] < 0 {
			return fmt.Errorf("scenario %q: node %q unreachable from the hier roots", spec.Name, e.names[v])
		}
	}
	for k := range e.adjLink {
		lu, lv := e.level[e.adjFrom[k]], e.level[e.adjTo[k]]
		if lu-lv != 1 && lv-lu != 1 {
			return fmt.Errorf("scenario %q: hier routing needs a hierarchy: link %s-%s joins two nodes at depth %d",
				spec.Name, e.names[e.adjFrom[k]], e.names[e.adjTo[k]], lu)
		}
	}
	return nil
}

// recompute is the single routing entry point: the first call installs every
// table from scratch; later calls (the dynamics hook, host moves) diff the
// live link states against the mirror and touch only what flipped. It
// returns the total changed-entry count across all hosts.
func (e *routeEngine) recompute() int {
	if !e.installed {
		e.installed = true
		e.syncMirror()
		return e.installAll()
	}
	return e.update()
}

func (e *routeEngine) syncMirror() {
	for k, l := range e.adjLink {
		e.downMirror[k] = l.IsDown()
	}
}

// detectFlips diffs the live link states against the mirror, updating the
// mirror and returning the adjacency indices whose up/down state changed.
// Both the oracle's incremental update and the protocol control plane's
// local failure detectors consume it.
func (e *routeEngine) detectFlips() []int32 {
	var flips []int32
	for k, l := range e.adjLink {
		if d := l.IsDown(); d != e.downMirror[k] {
			e.downMirror[k] = d
			flips = append(flips, int32(k))
		}
	}
	return flips
}

// rename re-labels node v (a renumbered host). Only the interned name
// changes; adjacency and distances are name-independent. Callers must also
// re-key every name-indexed map they hold (the scenario layer's renameHost
// does).
func (e *routeEngine) rename(v int32, newName string) {
	e.names[v] = newName
}

func (e *routeEngine) installAll() int {
	changed := 0
	if e.hier {
		for v := 0; v < e.n; v++ {
			changed += e.installHierNode(int32(v))
		}
		return changed
	}
	for s := 0; s < e.n; s++ {
		changed += e.installExactNode(int32(s))
	}
	return changed
}

// update finds the directional links whose up/down state changed since the
// last recompute and repairs routing incrementally. In hier mode only the
// transmitting endpoint of each flipped link owns table entries through it,
// so those nodes are rebuilt. In exact mode the distance matrix identifies
// the affected sources: a downed link matters to source s only if it was
// tight on s's BFS levels (dist[to] == dist[from]+1 — a non-tight edge
// carries no shortest path and never discovers a node, so removing it cannot
// change s's table), and a restored link matters only if it points forward
// (dist[to] > dist[from] or to was unreachable — a sideways or backward edge
// can neither shorten a path nor win a discovery tie). Affected sources
// re-run their BFS against the live links, refreshing their matrix rows.
func (e *routeEngine) update() int {
	flips := e.detectFlips()
	if len(flips) == 0 {
		return 0
	}
	changed := 0
	if e.hier {
		for i, k := range flips {
			u := e.adjFrom[k]
			dup := false
			for _, prev := range flips[:i] {
				if e.adjFrom[prev] == u {
					dup = true
					break
				}
			}
			if !dup {
				changed += e.installHierNode(u)
			}
		}
		return changed
	}
	if e.dist == nil {
		// Exact mode beyond the matrix budget: full recompute. InstallRoutes
		// still reports only real deltas, so the count is unchanged.
		return e.installAll()
	}
	aff := e.affected
	for i := range aff {
		aff[i] = false
	}
	for s := 0; s < e.n; s++ {
		row := e.dist[s*e.n : (s+1)*e.n]
		for _, k := range flips {
			du, dv := row[e.adjFrom[k]], row[e.adjTo[k]]
			if du < 0 {
				continue
			}
			if e.downMirror[k] {
				if dv == du+1 {
					aff[s] = true
					break
				}
			} else if dv < 0 || dv > du {
				aff[s] = true
				break
			}
		}
	}
	for s := 0; s < e.n; s++ {
		if aff[s] {
			changed += e.installExactNode(int32(s))
		}
	}
	return changed
}

// installExactNode BFSes from src and installs the full destination table,
// returning the changed-entry count. The BFS propagates the first hop along
// the parent chain, which yields the same link the old implementation found
// by walking parent pointers back to the source.
func (e *routeEngine) installExactNode(src int32) int {
	row := e.distRow
	if e.dist != nil {
		row = e.dist[int(src)*e.n : (int(src)+1)*e.n]
	}
	e.bfs(src, row)
	table := make(map[string]*netsim.Link)
	for v := 0; v < e.n; v++ {
		if int32(v) == src || row[v] < 0 {
			continue // unreachable; Output will count a NoRouteDrop
		}
		table[e.names[v]] = e.adjLink[e.firstHop[v]]
	}
	return e.hosts[src].InstallRoutes(table)
}

// bfs fills dist (and the firstHop scratch) from src over the live links,
// skipping those that are down. Ties break by first-mention order: the
// adjacency preserves edge insertion order, so tables are deterministic.
func (e *routeEngine) bfs(src int32, dist []int32) {
	fh := e.firstHop
	for i := range dist {
		dist[i] = -1
		fh[i] = -1
	}
	q := e.queue[:0]
	dist[src] = 0
	q = append(q, src)
	for qi := 0; qi < len(q); qi++ {
		u := q[qi]
		for k := e.adjOff[u]; k < e.adjOff[u+1]; k++ {
			if e.adjLink[k].IsDown() {
				continue
			}
			v := e.adjTo[k]
			if dist[v] >= 0 {
				continue
			}
			dist[v] = dist[u] + 1
			if u == src {
				fh[v] = k
			} else {
				fh[v] = fh[u]
			}
			q = append(q, v)
		}
	}
	e.queue = q[:0]
}

// installHierNode rebuilds one node's hierarchical table from its own links:
// an exact entry per live child, a domain entry per live child router, and a
// default route on the first live up link starting from a per-node rotation
// (so redundant up links — a fat-tree edge switch's k/2 aggregations — are
// spread across sources instead of all picking the first). A node's table
// depends on nothing beyond its own adjacency, which is what makes the
// incremental path O(flipped links).
func (e *routeEngine) installHierNode(u int32) int {
	lv := e.level[u]
	routes := make(map[string]*netsim.Link)
	var domains map[string]*netsim.Link
	var def *netsim.Link
	up := e.queue[:0] // borrow the BFS scratch for the up-slot list
	for k := e.adjOff[u]; k < e.adjOff[u+1]; k++ {
		v := e.adjTo[k]
		if e.level[v] == lv-1 {
			up = append(up, k)
			continue
		}
		if e.adjLink[k].IsDown() {
			continue
		}
		routes[e.names[v]] = e.adjLink[k]
		if e.isRouter[v] {
			if domains == nil {
				domains = make(map[string]*netsim.Link)
			}
			if _, claimed := domains[e.domains[v]]; !claimed {
				domains[e.domains[v]] = e.adjLink[k]
			}
		}
	}
	if len(up) > 0 {
		start := int(u) % len(up)
		for i := 0; i < len(up); i++ {
			k := up[(start+i)%len(up)]
			if !e.adjLink[k].IsDown() {
				def = e.adjLink[k]
				break
			}
		}
	}
	e.queue = up[:0]
	return e.hosts[u].InstallHierRoutes(routes, domains, def)
}
