package cm

import (
	"time"

	"repro/internal/probe"
	"repro/internal/simtime"
)

// grant records permission given to a flow to send up to one MTU, not yet
// accounted for by a cm_notify from the IP layer.
type grant struct {
	flow   *flowState
	issued time.Duration
	bytes  int
}

// MacroflowStats are cumulative counters for one macroflow.
type MacroflowStats struct {
	GrantsIssued      int64
	GrantsReclaimed   int64
	BytesCharged      int64
	BytesAcked        int64
	BytesLost         int64
	Updates           int64
	TransientSignals  int64
	PersistentSignals int64
	ECNSignals        int64
	IdleRestarts      int64
	UpdateCallbacks   int64
}

// Macroflow is the unit of congestion state sharing: all flows to the same
// destination host share one macroflow, its congestion controller, scheduler
// and RTT/loss estimates (paper §2).
type Macroflow struct {
	cm    *CM
	key   macroflowKey
	ctrl  Controller
	sched Scheduler

	flows map[FlowID]*flowState

	// Window accounting (bytes).
	outstanding  int // charged via Notify, not yet covered by feedback
	grantedBytes int // granted but not yet charged
	grants       []grant

	// Path state shared across the macroflow.
	srtt     time.Duration
	rttvar   time.Duration
	hasRTT   bool
	lossEWMA float64

	lastFeedback time.Duration
	lastActivity time.Duration

	pumping    bool
	background simTimer
	stats      MacroflowStats
}

// simTimer is the minimal timer surface the macroflow needs; satisfied by
// simtime.Timer.
type simTimer interface {
	Reset(d time.Duration)
	Stop()
	Pending() bool
}

func newMacroflow(cm *CM, key macroflowKey) *Macroflow {
	mf := &Macroflow{
		cm:    cm,
		key:   key,
		flows: make(map[FlowID]*flowState),
	}
	mf.ctrl = cm.cfg.NewController(ControllerConfig{
		MTU:               cm.cfg.MTU,
		InitialWindowMTUs: cm.cfg.InitialWindowMTUs,
		MaxWindowBytes:    cm.cfg.MaxWindowBytes,
	})
	mf.sched = cm.cfg.NewScheduler()
	mf.background = simtime.NewKindTimer(cm.timers, simtime.KindCMGrant, mf.onBackgroundTimer)
	mf.lastFeedback = cm.clock.Now()
	mf.lastActivity = cm.clock.Now()
	return mf
}

// Key fields exposed for tests and experiments.

// DstHost returns the destination host aggregating this macroflow.
func (m *Macroflow) DstHost() string { return m.key.dstHost }

// Window returns the current congestion window in bytes.
func (m *Macroflow) Window() int { return m.ctrl.Window() }

// Outstanding returns the bytes charged but not yet covered by feedback.
func (m *Macroflow) Outstanding() int { return m.outstanding }

// SRTT returns the macroflow's smoothed RTT (zero before the first sample).
func (m *Macroflow) SRTT() time.Duration { return m.srtt }

// RTTVar returns the macroflow's RTT mean deviation.
func (m *Macroflow) RTTVar() time.Duration { return m.rttvar }

// LossRate returns the exponentially weighted loss estimate.
func (m *Macroflow) LossRate() float64 { return m.lossEWMA }

// Controller returns the macroflow's congestion controller.
func (m *Macroflow) Controller() Controller { return m.ctrl }

// SchedulerName returns the name of the flow scheduler in use.
func (m *Macroflow) SchedulerName() string { return m.sched.Name() }

// Stats returns a copy of the macroflow counters.
func (m *Macroflow) Stats() MacroflowStats { return m.stats }

// FlowCount returns the number of currently attached flows.
func (m *Macroflow) FlowCount() int { return len(m.flows) }

func (m *Macroflow) mtu() int { return m.cm.cfg.MTU }

func (m *Macroflow) addFlow(fl *flowState) {
	m.flows[fl.id] = fl
	m.sched.Add(fl)
}

func (m *Macroflow) removeFlow(fl *flowState) {
	// Reclaim any window held by the departing flow so other flows are not
	// blocked by grants that will never be claimed.
	if fl.unclaimedGrants > 0 {
		for i := 0; i < len(m.grants); {
			if m.grants[i].flow == fl {
				m.grantedBytes -= m.grants[i].bytes
				m.grants = append(m.grants[:i], m.grants[i+1:]...)
				m.stats.GrantsReclaimed++
				m.cm.acct.GrantsReclaimed++
				continue
			}
			i++
		}
		fl.unclaimedGrants = 0
	}
	delete(m.flows, fl.id)
	m.sched.Remove(fl)
	fl.pendingRequests = 0
	m.pump()
}

// windowOpen reports whether the controller's window has room for another
// MTU-sized grant, counting both charged bytes and unclaimed grants.
func (m *Macroflow) windowOpen() bool {
	return m.outstanding+m.grantedBytes+m.mtu() <= m.ctrl.Window() ||
		(m.outstanding == 0 && m.grantedBytes == 0)
}

// pump is the grant loop: while the window is open and some flow has a
// pending request, pick the next flow (scheduler), issue a grant and deliver
// the cmapp_send callback. Reentrant calls (from within callbacks) are
// flattened so the loop never recurses.
func (m *Macroflow) pump() {
	if m.pumping {
		return
	}
	m.pumping = true
	for {
		if !m.windowOpen() {
			break
		}
		fl := m.sched.Next()
		if fl == nil {
			break
		}
		fl.pendingRequests--
		if fl.pendingRequests == 0 {
			m.sched.MarkIneligible(fl)
		}
		fl.unclaimedGrants++
		fl.grantsReceived++
		g := grant{flow: fl, issued: m.cm.clock.Now(), bytes: m.mtu()}
		m.grants = append(m.grants, g)
		m.grantedBytes += g.bytes
		m.stats.GrantsIssued++
		m.cm.acct.GrantsIssued++
		m.lastActivity = m.cm.clock.Now()
		if m.cm.rec != nil {
			m.cm.rec.Append(probe.Event{At: g.issued, Kind: probe.EvGrant, Flow: int64(fl.id), Size: int64(g.bytes)})
		}
		if fl.sendCB != nil {
			fl.dispatcher.DeliverSend(fl.id, fl.sendCB)
		} else {
			// A request with no registered callback cannot be honoured;
			// reclaim the grant immediately so other flows can proceed.
			m.reclaimGrant(fl)
		}
	}
	m.pumping = false
	m.armBackgroundTimer()
}

// reclaimGrant removes the oldest unclaimed grant belonging to fl, returning
// whether one existed.
func (m *Macroflow) reclaimGrant(fl *flowState) bool {
	for i, g := range m.grants {
		if g.flow == fl {
			m.grants = append(m.grants[:i], m.grants[i+1:]...)
			m.grantedBytes -= g.bytes
			if fl.unclaimedGrants > 0 {
				fl.unclaimedGrants--
			}
			m.stats.GrantsReclaimed++
			m.cm.acct.GrantsReclaimed++
			return true
		}
	}
	return false
}

// notify charges nbytes of an actual transmission to the macroflow
// (cm_notify). nbytes of zero means the client declined its grant.
func (m *Macroflow) notify(fl *flowState, nbytes int) {
	if fl.unclaimedGrants > 0 {
		m.reclaimGrant(fl)
	}
	if nbytes > 0 {
		m.outstanding += nbytes
		fl.bytesCharged += int64(nbytes)
		m.stats.BytesCharged += int64(nbytes)
	}
	m.lastActivity = m.cm.clock.Now()
	m.pump()
}

// update applies client feedback (cm_update) to the shared congestion state.
func (m *Macroflow) update(fl *flowState, nsent, nrecd int, mode LossMode, rtt time.Duration) {
	if nsent < nrecd {
		nsent = nrecd
	}
	m.stats.Updates++
	m.lastFeedback = m.cm.clock.Now()
	m.lastActivity = m.cm.clock.Now()

	// RTT estimation (Jacobson/Karels), shared across every flow of the
	// macroflow so each connection benefits from the others' samples.
	if rtt > 0 {
		m.addRTTSample(rtt)
	}

	outstandingBefore := m.outstanding

	// The bytes covered by this feedback are no longer outstanding.
	switch mode {
	case PersistentLoss:
		// A timeout implies the pipe has drained.
		m.outstanding = 0
		m.stats.PersistentSignals++
	default:
		m.outstanding -= nsent
		if m.outstanding < 0 {
			m.outstanding = 0
		}
		if mode == TransientLoss {
			m.stats.TransientSignals++
		}
		if mode == ECNLoss {
			m.stats.ECNSignals++
		}
	}
	lost := nsent - nrecd
	m.stats.BytesAcked += int64(nrecd)
	m.stats.BytesLost += int64(lost)
	if nsent > 0 {
		sampleLoss := float64(lost) / float64(nsent)
		const alpha = 0.25
		m.lossEWMA = (1-alpha)*m.lossEWMA + alpha*sampleLoss
	}

	// Congestion window validation: if the macroflow was using less than
	// half of its window when this feedback was generated, the feedback does
	// not justify further growth.
	appLimited := outstandingBefore < m.ctrl.Window()/2
	m.ctrl.OnFeedback(Feedback{SentBytes: nsent, ReceivedBytes: nrecd, Mode: mode, RTT: rtt, AppLimited: appLimited})

	// Window state changed: hand out new grants and deliver threshold-based
	// rate callbacks.
	m.pump()
	m.deliverRateCallbacks()
}

func (m *Macroflow) addRTTSample(rtt time.Duration) {
	if !m.hasRTT {
		m.srtt = rtt
		m.rttvar = rtt / 2
		m.hasRTT = true
		return
	}
	diff := m.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	m.rttvar += (diff - m.rttvar) / 4
	m.srtt += (rtt - m.srtt) / 8
}

// Rate returns the macroflow's estimated sustainable rate in bytes per
// second: one congestion window per smoothed RTT. Before an RTT sample is
// available a conservative default of one window per second is reported.
func (m *Macroflow) Rate() float64 {
	w := float64(m.ctrl.Window())
	if !m.hasRTT || m.srtt <= 0 {
		return w
	}
	return w / m.srtt.Seconds()
}

// flowRate apportions the macroflow rate to one flow according to scheduler
// weights.
func (m *Macroflow) flowRate(fl *flowState) float64 {
	total := m.sched.TotalWeight()
	if total <= 0 {
		total = 1
	}
	return m.Rate() * m.sched.Weight(fl) / total
}

// status builds the Status snapshot for a flow.
func (m *Macroflow) status(fl *flowState) Status {
	return Status{
		Rate:          m.flowRate(fl),
		MacroflowRate: m.Rate(),
		SRTT:          m.srtt,
		RTTVar:        m.rttvar,
		LossRate:      m.lossEWMA,
		CWND:          m.ctrl.Window(),
		Outstanding:   m.outstanding,
		MTU:           m.mtu(),
	}
}

// deliverRateCallbacks notifies flows whose registered thresholds have been
// crossed since the last report (cmapp_update + cm_thresh semantics).
func (m *Macroflow) deliverRateCallbacks() {
	for _, fl := range m.flows {
		if fl.updateCB == nil {
			continue
		}
		rate := m.flowRate(fl)
		if fl.everReported {
			last := fl.lastReportedRate
			if last > 0 {
				if rate > last/fl.threshDown && rate < last*fl.threshUp {
					continue
				}
			} else if rate == 0 {
				continue
			}
		}
		fl.everReported = true
		fl.lastReportedRate = rate
		m.stats.UpdateCallbacks++
		m.cm.acct.UpdateCallbacks++
		fl.dispatcher.DeliverUpdate(fl.id, m.status(fl), fl.updateCB)
	}
}

// armBackgroundTimer keeps the per-macroflow timer running while there is
// anything for the background task to watch (unclaimed grants or outstanding
// data awaiting feedback).
func (m *Macroflow) armBackgroundTimer() {
	if len(m.grants) == 0 && m.outstanding == 0 {
		m.background.Stop()
		return
	}
	if m.background.Pending() {
		return
	}
	interval := m.cm.cfg.GrantTimeout / 2
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	m.background.Reset(interval)
}

// onBackgroundTimer is the paper's "timer-driven component to perform
// background tasks and error handling": it reclaims grants that were never
// claimed with a cm_notify, and treats long feedback starvation with data
// outstanding as persistent congestion so the macroflow cannot deadlock.
func (m *Macroflow) onBackgroundTimer() {
	now := m.cm.clock.Now()

	// Expire stale grants.
	expired := 0
	for i := 0; i < len(m.grants); {
		if now-m.grants[i].issued >= m.cm.cfg.GrantTimeout {
			g := m.grants[i]
			m.grants = append(m.grants[:i], m.grants[i+1:]...)
			m.grantedBytes -= g.bytes
			if g.flow.unclaimedGrants > 0 {
				g.flow.unclaimedGrants--
			}
			m.stats.GrantsReclaimed++
			m.cm.acct.GrantsReclaimed++
			expired++
			continue
		}
		i++
	}

	// Feedback starvation: data has been outstanding with no feedback for a
	// long time; assume persistent congestion and restart conservatively.
	if m.outstanding > 0 && now-m.lastFeedback >= m.cm.cfg.FeedbackStarvationTimeout {
		m.outstanding = 0
		m.ctrl.OnIdleRestart()
		m.stats.IdleRestarts++
		m.lastFeedback = now
		m.deliverRateCallbacks()
	}

	if expired > 0 || m.windowOpen() {
		m.pump()
	} else {
		m.armBackgroundTimer()
	}
}
