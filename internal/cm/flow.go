package cm

import "repro/internal/netsim"

// flowState is the CM's per-flow record. One exists for every flow a client
// has opened; it points at the macroflow that owns the shared congestion
// state.
type flowState struct {
	id   FlowID
	key  netsim.FlowKey
	mf   *Macroflow
	open bool

	// Client interface state.
	dispatcher Dispatcher
	sendCB     SendCallback
	updateCB   UpdateCallback

	// Rate-callback thresholds (cm_thresh): a cmapp_update is delivered when
	// the per-flow rate falls by a factor of threshDown or rises by a factor
	// of threshUp since the last report.
	threshDown       float64
	threshUp         float64
	lastReportedRate float64
	everReported     bool

	// Scheduling state.
	pendingRequests int
	unclaimedGrants int
	weight          float64

	// Intrusive links for the round-robin scheduler's circular rotation
	// list (nil when not registered), and the weighted scheduler's running
	// credit. Living on the flowState keeps Add/Remove/Next allocation-free.
	schedNext, schedPrev *flowState
	// Intrusive links for the round-robin scheduler's eligible-only ring
	// (nil when the flow has no pending requests), and the flow's immutable
	// insertion position, which orders both rings.
	eligNext, eligPrev *flowState
	schedPos           uint64
	wrrCredit          float64

	// Statistics.
	grantsReceived int64
	bytesCharged   int64
}

// FlowInfo is a read-only snapshot of per-flow statistics exposed for tests,
// experiments and the cmsim tool.
type FlowInfo struct {
	ID              FlowID
	Key             netsim.FlowKey
	PendingRequests int
	UnclaimedGrants int
	GrantsReceived  int64
	BytesCharged    int64
	Weight          float64
}

// FlowInfo returns a snapshot of a flow's state, or a zero value if the flow
// does not exist.
func (cm *CM) FlowInfo(f FlowID) FlowInfo {
	fl, ok := cm.flows[f]
	if !ok {
		return FlowInfo{ID: InvalidFlow}
	}
	return FlowInfo{
		ID:              fl.id,
		Key:             fl.key,
		PendingRequests: fl.pendingRequests,
		UnclaimedGrants: fl.unclaimedGrants,
		GrantsReceived:  fl.grantsReceived,
		BytesCharged:    fl.bytesCharged,
		Weight:          fl.weight,
	}
}
