// Adaptive vat example: the interactive-audio architecture of §3.6.
//
// A 64 kbps constant-bit-rate audio source streams over a path whose capacity
// drops below the audio rate halfway through the run. The policer (driven by
// CM rate callbacks) preemptively drops frames so that delay stays bounded
// instead of letting queues build up.
//
// Run with:  go run ./examples/vataudio
package main

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
)

func run(bandwidth netsim.Bandwidth, label string) {
	sched := simtime.NewScheduler()
	network := node.NewNetwork(sched)
	network.ConnectDuplex("caller", "callee", netsim.LinkConfig{
		Bandwidth:    bandwidth,
		Delay:        25 * time.Millisecond,
		QueuePackets: 30,
		Seed:         11,
	})
	manager := cm.New(sched, sched)
	network.Host("caller").SetTransmitNotifier(manager)

	callee, err := app.NewReceiver(network.Host("callee"), 5004, app.FeedbackPolicy{EveryPackets: 1}, time.Second)
	if err != nil {
		panic(err)
	}
	vat, err := app.NewVatSource(network.Host("caller"), manager, callee.Addr(), app.VatConfig{
		DropPolicy: netsim.DropHead,
	})
	if err != nil {
		panic(err)
	}

	vat.Start()
	sched.RunFor(60 * time.Second)
	vat.Stop()

	st := vat.Stats()
	fmt.Printf("%-22s generated=%5d sent=%5d policer-drops=%5d buffer-drops=%4d received=%5d rate-callbacks=%d\n",
		label, st.FramesGenerated, st.FramesSent, st.PolicerDrops, st.BufferDrops,
		callee.TotalPackets(), st.RateCallbacks)
}

func main() {
	fmt.Println("Adaptive vat (64 kbps audio, drop-from-head application buffer):")
	run(1*netsim.Mbps, "uncongested (1 Mbps)")
	run(48*netsim.Kbps, "congested (48 kbps)")
	run(24*netsim.Kbps, "severe (24 kbps)")
}
