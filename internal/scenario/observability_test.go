package scenario

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/probe"
)

// churnProbeSpec returns the churn scenario (dynamics, CM restarts, host
// moves, notify faults all active) with a representative probe set.
func churnProbeSpec(t *testing.T) Spec {
	t.Helper()
	spec, err := Lookup("churn")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = 6 * time.Second
	spec.Probes = []probe.Spec{
		{Target: "link[0].queue_depth"},
		{Target: "link[0].delivered_bytes", Interval: 100 * time.Millisecond},
		{Target: "host[" + spec.Workloads[0].From + "].sent_bytes"},
		{Target: "cm[" + spec.Workloads[0].From + "].cwnd", Name: "cwnd"},
		{Target: "cm[" + spec.Workloads[0].From + "].rate", Name: "rate"},
	}
	return spec
}

// TestProbeSeriesDeterministic is the probe acceptance check: with dynamics
// and churn active, the sampled series are byte-identical across a serial
// run, a parallel batch of replicas, and a 4-shard run of the same spec.
func TestProbeSeriesDeterministic(t *testing.T) {
	spec := churnProbeSpec(t)
	serial, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Series) != len(spec.Probes) {
		t.Fatalf("got %d series, want %d", len(serial.Series), len(spec.Probes))
	}
	for _, s := range serial.Series {
		if s.Len() == 0 {
			t.Fatalf("series %s is empty", s.Name)
		}
	}
	want, err := json.Marshal(serial.Series)
	if err != nil {
		t.Fatal(err)
	}

	// A parallel batch of replicas: every outcome's series must match.
	specs := make([]Spec, 8)
	for i := range specs {
		specs[i] = spec
	}
	for i, o := range (Runner{Parallel: 8}).RunAll(specs) {
		if o.Err != "" {
			t.Fatalf("replica %d: %s", i, o.Err)
		}
		got, err := json.Marshal(o.Result.Series)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("replica %d: parallel series differ from serial", i)
		}
	}

	sharded := spec
	sharded.Shards = 4
	res, err := Run(sharded)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(res.Series)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatal("4-shard series differ from serial")
	}
}

// TestProbeSeriesNamesAndCadence pins the series naming rules (explicit Name
// overrides the target path) and the default/explicit sampling cadence.
func TestProbeSeriesNamesAndCadence(t *testing.T) {
	spec := churnProbeSpec(t)
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series[0].Name; got != "link[0].queue_depth" {
		t.Fatalf("series 0 named %q, want the target path", got)
	}
	if got := res.Series[3].Name; got != "cwnd" {
		t.Fatalf("series 3 named %q, want the Name override", got)
	}
	// 6 s at the default 250 ms → 24 samples; at 100 ms → 60.
	if got := res.Series[0].Len(); got != 24 {
		t.Fatalf("default-interval series has %d samples, want 24", got)
	}
	if got := res.Series[1].Len(); got != 60 {
		t.Fatalf("100ms series has %d samples, want 60", got)
	}
}

// TestProbeValidation pins spec validation of probe targets: bad grammar,
// out-of-range links, unknown hosts and non-CM hosts are all build errors.
func TestProbeValidation(t *testing.T) {
	base, err := Lookup("p2p")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ target, want string }{
		{"link[0].no_such_field", "unknown field"},
		{"link[9].queue_depth", "out of range"},
		{"host[nobody].sent_bytes", "not in topology"},
		{"cm[receiver].rate", "no Congestion Manager"},
		{"gibberish", "want link[i]"},
	} {
		spec := base
		spec.Probes = []probe.Spec{{Target: tc.target}}
		if _, err := Build(spec); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("probe %q: error %v, want %q", tc.target, err, tc.want)
		}
	}
}

// TestResultWithoutProbesUnchanged guards the observation-only contract from
// the other side: adding probes and tracing to a spec must not perturb any
// non-Series result field relative to the bare run.
func TestResultWithoutProbesUnchanged(t *testing.T) {
	spec := churnProbeSpec(t)
	bare := spec
	bare.Probes = nil
	bare.TraceDepth = 0
	want, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	spec.TraceDepth = 512
	got, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	got.Series = nil
	if !reflect.DeepEqual(want, got) {
		t.Fatal("probes+tracing changed the non-Series result")
	}
}

// TestFlightRecorderCapturesChurn checks the ring contents: a churn run with
// tracing armed must retain packet, CM and fault events, and DumpTrace must
// render them.
func TestFlightRecorderCapturesChurn(t *testing.T) {
	spec := churnProbeSpec(t)
	spec.TraceDepth = 4096
	sim, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	sim.RunToEnd()
	kinds := make(map[probe.EventKind]int)
	for _, name := range sim.Nodes() {
		r := sim.Recorder(name)
		if r == nil {
			t.Fatalf("host %s has no recorder", name)
		}
		for _, ev := range r.Events() {
			kinds[ev.Kind]++
		}
	}
	for _, k := range []probe.EventKind{
		probe.EvEnqueue, probe.EvDeliver, probe.EvRequest, probe.EvGrant,
		probe.EvNotify, probe.EvFault,
	} {
		if kinds[k] == 0 {
			t.Errorf("no %s events recorded", k)
		}
	}
	var buf bytes.Buffer
	if n := sim.DumpTrace(&buf); n == 0 || buf.Len() == 0 {
		t.Fatal("DumpTrace wrote nothing")
	}
	if !strings.Contains(buf.String(), "cm-grant") {
		t.Fatal("dump is missing cm-grant lines")
	}
}

// TestSnapshotsSerialAndSharded checks mid-run snapshot capture on both
// execution paths: same capture times, monotonic progress, and interior
// state consistent with the end state.
func TestSnapshotsSerialAndSharded(t *testing.T) {
	spec := churnProbeSpec(t)
	spec.Probes = nil
	spec.SnapshotEvery = time.Second

	for _, shards := range []int{0, 4} {
		sp := spec
		sp.Shards = shards
		sim, err := Build(sp)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.Start(); err != nil {
			t.Fatal(err)
		}
		sim.RunToEnd()
		end := sim.Finish()
		snaps := sim.Snapshots()
		if len(snaps) != 6 {
			t.Fatalf("shards=%d: %d snapshots, want 6", shards, len(snaps))
		}
		var prev int64
		for i, sn := range snaps {
			if want := time.Duration(i+1) * time.Second; sn.At != want {
				t.Fatalf("shards=%d: snapshot %d at %v, want %v", shards, i, sn.At, want)
			}
			var delivered int64
			for _, f := range sn.Result.Flows {
				delivered += f.Delivered
			}
			if delivered < prev {
				t.Fatalf("shards=%d: delivered bytes regressed at snapshot %d", shards, i)
			}
			prev = delivered
		}
		var endDelivered int64
		for _, f := range end.Flows {
			endDelivered += f.Delivered
		}
		if prev != endDelivered {
			t.Fatalf("shards=%d: final snapshot delivered %d, end state %d (snapshot at t=duration must equal the end state)",
				shards, prev, endDelivered)
		}
	}
}

// TestExecutionTimeline checks the trace_event export on both paths: a
// 4-shard grid run yields window spans on every shard lane plus coordinator
// barriers, a serial run yields a single run span, and both serialize to
// valid trace_event JSON.
func TestExecutionTimeline(t *testing.T) {
	spec, err := Lookup("grid")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = time.Second
	spec.Shards = 4
	sim, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	tl := sim.EnableExecutionTimeline()
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	sim.RunToEnd()
	// 1 s at 10 ms lookahead → 100 non-final windows per shard lane plus the
	// final inclusive one, and one barrier per non-final window.
	perLane := make(map[int]int)
	for _, s := range tl.Spans() {
		perLane[s.Lane]++
	}
	for lane := 0; lane < 4; lane++ {
		if got := perLane[lane]; got != 101 {
			t.Fatalf("shard lane %d has %d spans, want 101", lane, got)
		}
	}
	if got := perLane[4]; got != 100 {
		t.Fatalf("coordinator lane has %d spans, want 100", got)
	}
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("timeline JSON does not parse: %v", err)
	}
	names := make(map[string]int)
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
	}
	if names["window"] != 4*101 || names["barrier"] != 100 {
		t.Fatalf("trace events: %d windows, %d barriers; want 404 and 100", names["window"], names["barrier"])
	}

	serial := spec
	serial.Shards = 0
	sim2, err := Build(serial)
	if err != nil {
		t.Fatal(err)
	}
	tl2 := sim2.EnableExecutionTimeline()
	if err := sim2.Start(); err != nil {
		t.Fatal(err)
	}
	sim2.RunToEnd()
	if got := tl2.SpanCount(); got != 1 {
		t.Fatalf("serial lane has %d spans, want the single run span", got)
	}
}
