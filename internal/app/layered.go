package app

import (
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/libcm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/probe"
	"repro/internal/simtime"
	"repro/internal/udp"
)

// LayeredMode selects which CM API the streaming server uses.
type LayeredMode int

const (
	// ModeALF is the request/callback API (§3.5): the server asks the CM for
	// permission before every packet, queries the current rate inside the
	// callback, picks the layer, and sends as fast as the CM allows.
	ModeALF LayeredMode = iota
	// ModeRateCallback is the rate-callback API (§3.4): the server runs its
	// own clocked send loop at the current layer's rate and is notified only
	// when the CM's rate estimate crosses the registered thresholds.
	ModeRateCallback
)

// String names the mode.
func (m LayeredMode) String() string {
	if m == ModeALF {
		return "alf"
	}
	return "rate-callback"
}

// LayeredConfig parameterises the layered streaming server.
type LayeredConfig struct {
	Mode LayeredMode
	// Layers are the cumulative encoding rates available, in bytes/second,
	// ascending. The server always transmits at exactly one layer.
	Layers []float64
	// PacketSize is the payload size of each media packet.
	PacketSize int
	// ThreshDown and ThreshUp are the cm_thresh factors for rate callbacks.
	ThreshDown, ThreshUp float64
	// Headroom scales the CM-reported rate before choosing a layer; 1.0 uses
	// it directly, lower values are more conservative.
	Headroom float64
	// PollInterval is how often the rate-callback server additionally polls
	// the CM (cm_query) from its own clocked loop, the paper's "poll the CM
	// on their own schedule" option. Threshold callbacks alone cannot tell a
	// self-clocked sender that unused headroom has accumulated, because the
	// CM stops raising its estimate for an application-limited flow.
	PollInterval time.Duration
	// TraceWindow is the bucketing interval for the rate traces.
	TraceWindow time.Duration
	// GrantWatchdog is the ALF-mode stall detector: if no grant arrives for
	// this long while streaming, the server re-requests. The request/callback
	// chain ("send, then request again") breaks permanently if one
	// cmapp_send notification is lost, so a robust ALF client needs its own
	// timer. Default 1s.
	GrantWatchdog time.Duration
}

func (c *LayeredConfig) fillDefaults() {
	if len(c.Layers) == 0 {
		// Four layers spanning the range in the paper's Figures 8 and 9
		// (roughly 0.3 to 2.5 MB/s).
		c.Layers = []float64{312_500, 625_000, 1_250_000, 2_500_000}
	}
	if c.PacketSize <= 0 {
		c.PacketSize = 1000
	}
	if c.ThreshDown <= 1 {
		c.ThreshDown = 1.5
	}
	if c.ThreshUp <= 1 {
		c.ThreshUp = 1.5
	}
	if c.Headroom <= 0 {
		c.Headroom = 1.0
	}
	if c.PollInterval <= 0 {
		c.PollInterval = time.Second
	}
	if c.TraceWindow <= 0 {
		c.TraceWindow = 500 * time.Millisecond
	}
	if c.GrantWatchdog <= 0 {
		c.GrantWatchdog = time.Second
	}
}

// LayeredStats are counters for a layered server.
type LayeredStats struct {
	PacketsSent     int64
	BytesSent       int64
	LayerSwitches   int64
	RateCallbacks   int64
	GrantsReceived  int64
	FeedbackReports int64
	// Restarts counts CM restarts the server re-synced from (flow re-opened,
	// callbacks re-registered). WatchdogFires counts ALF stall recoveries:
	// grants that never arrived (dropped notification or wiped CM) where the
	// watchdog re-requested.
	Restarts      int64
	WatchdogFires int64
}

// LayeredServer is the streaming layered audio/video server of §3.4/§3.5. It
// is a user-space CM client: all CM interaction goes through libcm.
type LayeredServer struct {
	lib   *libcm.Lib
	sock  *udp.Socket
	sched *simtime.Scheduler
	dst   netsim.Addr
	cfg   LayeredConfig

	flow cm.FlowID
	fb   *SenderFeedback

	layer         int
	seq           int64
	running       bool
	sendTimer     simtime.Timer
	pollTimer     simtime.Timer
	watchdogTimer simtime.Timer

	txRate       *probe.RateEstimator
	reportedRate *probe.Series
	layerRate    *probe.Series
	stats        LayeredStats
}

// NewLayeredServer creates a layered streaming server on host h sending to
// dst through the given libcm instance.
func NewLayeredServer(h *node.Host, lib *libcm.Lib, dst netsim.Addr, cfg LayeredConfig) (*LayeredServer, error) {
	if lib == nil {
		return nil, fmt.Errorf("app: layered server requires a libcm instance")
	}
	cfg.fillDefaults()
	sock, err := udp.NewSocket(h, 0)
	if err != nil {
		return nil, err
	}
	s := &LayeredServer{
		lib:          lib,
		sock:         sock,
		sched:        h.Clock(),
		dst:          dst,
		cfg:          cfg,
		txRate:       probe.NewRateEstimator("transmission-rate", cfg.TraceWindow),
		reportedRate: probe.NewSeries("cm-reported-rate"),
		layerRate:    probe.NewSeries("layer-rate"),
	}
	// Layered applications "open their usual UDP socket, and call cm_open()
	// to obtain a control socket" (§3.4).
	s.flow = lib.Open(netsim.ProtoUDP, sock.Local(), dst)
	s.fb = NewSenderFeedback(h.Clock(), func(nsent, nrecd int, mode cm.LossMode, rtt time.Duration) {
		s.lib.Update(s.flow, nsent, nrecd, mode, rtt)
	})
	// Feedback reports come back to the data socket.
	sock.OnReceive(func(_ netsim.Addr, d *udp.Datagram) {
		if s.fb.HandleDatagram(d) {
			s.stats.FeedbackReports++
		}
	})
	s.sendTimer = h.Clock().NewKindTimer(simtime.KindWorkloadApp, s.onSendTimer)
	s.pollTimer = h.Clock().NewKindTimer(simtime.KindWorkloadApp, s.onPoll)
	s.watchdogTimer = h.Clock().NewKindTimer(simtime.KindWorkloadApp, s.onWatchdog)
	lib.SetRestartHandler(s.onCMRestart)
	return s, nil
}

// Flow returns the server's CM flow.
func (s *LayeredServer) Flow() cm.FlowID { return s.flow }

// Layer returns the index of the layer currently being transmitted.
func (s *LayeredServer) Layer() int { return s.layer }

// Stats returns a copy of the server counters.
func (s *LayeredServer) Stats() LayeredStats { return s.stats }

// TransmissionRateSeries returns the measured transmission rate trace.
func (s *LayeredServer) TransmissionRateSeries() *probe.Series { return s.txRate.Series() }

// ReportedRateSeries returns the CM-reported rate trace (one sample per
// query/callback).
func (s *LayeredServer) ReportedRateSeries() *probe.Series { return s.reportedRate }

// LayerRateSeries returns the trace of the chosen layer's nominal rate.
func (s *LayeredServer) LayerRateSeries() *probe.Series { return s.layerRate }

// Start begins streaming.
func (s *LayeredServer) Start() {
	if s.running {
		return
	}
	s.running = true
	switch s.cfg.Mode {
	case ModeALF:
		s.lib.RegisterSend(s.flow, s.onGrant)
		s.lib.Request(s.flow)
		s.watchdogTimer.Reset(s.cfg.GrantWatchdog)
	case ModeRateCallback:
		s.lib.Thresh(s.flow, s.cfg.ThreshDown, s.cfg.ThreshUp)
		s.lib.RegisterUpdate(s.flow, s.onRateCallback)
		if st, ok := s.lib.Query(s.flow); ok {
			s.pickLayer(st.Rate)
			s.recordReported(st.Rate)
		}
		s.scheduleNextFrame()
		s.pollTimer.Reset(s.cfg.PollInterval)
	}
}

// Stop halts streaming (the flow stays open so it can be restarted).
func (s *LayeredServer) Stop() {
	s.running = false
	s.sendTimer.Stop()
	s.pollTimer.Stop()
	s.watchdogTimer.Stop()
}

// Close stops the server and releases its flow and socket.
func (s *LayeredServer) Close() {
	s.Stop()
	s.lib.Close(s.flow)
	s.sock.Close()
}

// pickLayer chooses the highest layer whose rate fits within the available
// rate (scaled by headroom); it records switches.
func (s *LayeredServer) pickLayer(rate float64) {
	budget := rate * s.cfg.Headroom
	chosen := 0
	for i, r := range s.cfg.Layers {
		if r <= budget {
			chosen = i
		}
	}
	if chosen != s.layer {
		s.layer = chosen
		s.stats.LayerSwitches++
	}
	s.layerRate.Add(s.sched.Now(), s.cfg.Layers[s.layer])
}

func (s *LayeredServer) recordReported(rate float64) {
	s.reportedRate.Add(s.sched.Now(), rate)
}

func (s *LayeredServer) sendPacket() {
	s.seq++
	d := &udp.Datagram{Seq: s.seq, Size: s.cfg.PacketSize}
	s.sock.SendTo(s.dst, d)
	s.fb.OnSend(s.seq, s.cfg.PacketSize)
	s.stats.PacketsSent++
	s.stats.BytesSent += int64(s.cfg.PacketSize)
	s.txRate.Record(s.sched.Now(), s.cfg.PacketSize)
}

// onGrant is the ALF-mode cmapp_send callback: query, adapt, transmit, and
// immediately request the next opportunity ("sends packets as rapidly as
// possible to allow its client to buffer more data").
func (s *LayeredServer) onGrant(_ cm.FlowID) {
	if !s.running {
		s.lib.Notify(s.flow, 0)
		return
	}
	s.stats.GrantsReceived++
	s.watchdogTimer.Reset(s.cfg.GrantWatchdog)
	if st, ok := s.lib.Query(s.flow); ok {
		s.pickLayer(st.Rate)
		s.recordReported(st.Rate)
	}
	s.sendPacket()
	s.lib.Request(s.flow)
}

// onWatchdog fires when an ALF server has streamed nothing for GrantWatchdog:
// the outstanding request's grant was lost (dropped notification, CM wipe),
// so re-request rather than stay silent forever. The extra request is safe —
// at worst an unexpected grant is declined via cm_notify(0).
func (s *LayeredServer) onWatchdog() {
	if !s.running || s.cfg.Mode != ModeALF {
		return
	}
	s.stats.WatchdogFires++
	s.lib.Request(s.flow)
	s.watchdogTimer.Reset(s.cfg.GrantWatchdog)
}

// onCMRestart is the libcm re-sync hook: the CM lost our flow, so open a
// fresh one and re-register per the current mode. Streaming state (layer,
// sequence numbers, feedback tracking) survives; congestion state restarts
// from the initial window.
func (s *LayeredServer) onCMRestart() {
	s.stats.Restarts++
	s.flow = s.lib.Open(netsim.ProtoUDP, s.sock.Local(), s.dst)
	switch s.cfg.Mode {
	case ModeALF:
		s.lib.RegisterSend(s.flow, s.onGrant)
		if s.running {
			s.lib.Request(s.flow)
			s.watchdogTimer.Reset(s.cfg.GrantWatchdog)
		}
	case ModeRateCallback:
		s.lib.Thresh(s.flow, s.cfg.ThreshDown, s.cfg.ThreshUp)
		s.lib.RegisterUpdate(s.flow, s.onRateCallback)
	}
}

// onRateCallback is the rate-callback-mode cmapp_update callback.
func (s *LayeredServer) onRateCallback(_ cm.FlowID, st cm.Status) {
	s.stats.RateCallbacks++
	s.recordReported(st.Rate)
	s.pickLayer(st.Rate)
}

// onPoll is the slow polling loop of the rate-callback mode: threshold
// callbacks report significant changes promptly, but only a query can reveal
// that the CM would now allow a higher layer after the application has been
// limiting itself.
func (s *LayeredServer) onPoll() {
	if !s.running {
		return
	}
	if st, ok := s.lib.Query(s.flow); ok {
		s.recordReported(st.Rate)
		s.pickLayer(st.Rate)
	}
	s.pollTimer.Reset(s.cfg.PollInterval)
}

// onSendTimer is the self-clocked transmission loop of the rate-callback
// mode: one packet every PacketSize/layerRate seconds.
func (s *LayeredServer) onSendTimer() {
	if !s.running {
		return
	}
	s.sendPacket()
	s.scheduleNextFrame()
}

func (s *LayeredServer) scheduleNextFrame() {
	rate := s.cfg.Layers[s.layer]
	if rate <= 0 {
		rate = s.cfg.Layers[0]
	}
	interval := simtime.FromSeconds(float64(s.cfg.PacketSize) / rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	s.sendTimer.Reset(interval)
}

// LayeredClient is the receiving side: a feedback-generating Receiver plus a
// rate trace, standing in for the buffering media client.
type LayeredClient struct {
	*Receiver
}

// NewLayeredClient creates the client on (host, port) with the given feedback
// policy.
func NewLayeredClient(h *node.Host, port int, policy FeedbackPolicy, traceWindow time.Duration) (*LayeredClient, error) {
	r, err := NewReceiver(h, port, policy, traceWindow)
	if err != nil {
		return nil, err
	}
	return &LayeredClient{Receiver: r}, nil
}
