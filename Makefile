# Tier-1 verification plus the perf gates. `make ci` is what every PR must
# keep green.

GO ?= go

.PHONY: ci vet build test race bench perf bench-smoke sweep-smoke soak-smoke fattree-smoke probe-smoke route-smoke trend

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Compile-and-run every benchmark once so perf regressions that break the
# harness itself are caught on each PR; real measurements use `make perf`.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Regenerate the perf snapshot of the simulation core's hot loops.
perf:
	$(GO) run ./cmd/cmbench -experiment perf -perfout BENCH_1.json

# Per-PR perf trajectory point: the core-loop + sharded-scenario + fat-tree
# (oracle and protocol control plane) and 100k-host ISP build benchmarks
# written to BENCH_9.json (CI uploads it as an artifact) and diffed against
# the newest committed BENCH_*.json — any shared benchmark regressing >25%
# in ns/op fails the target.
bench-smoke:
	$(GO) run ./cmd/cmbench -experiment perf -pr 9 -perfout BENCH_9.json -compare latest

# Tiny two-axis sweep campaign through the sweep engine: an end-to-end smoke
# of expansion, the parallel runner, aggregation and the CSV emitter. CI
# uploads SWEEP_SMOKE.csv as an artifact next to the bench snapshot; the
# emitter is deterministic, so the artifact's bytes are stable per commit
# whatever -parallel is.
sweep-smoke:
	$(GO) run ./cmd/cmsim -scenario p2p -parallel 8 -replicates 2 \
		-sweep "link[0].loss=0,0.01" -sweep "workload[0].flows=1,2" \
		-csv > SWEEP_SMOKE.csv

# Churn soak: the canned host-fault campaign (CM restarts x notify-drop
# rates over the churn scenario) with the invariant checker on — any
# stranded flow, leaked grant or epoch mismatch in any replicate fails the
# target (see docs/ROBUSTNESS.md). CI uploads CHURN_SOAK.csv next to
# SWEEP_SMOKE.csv; the CSV bytes are identical whatever -parallel is.
soak-smoke:
	$(GO) run ./cmd/cmsim -campaign examples/campaigns/churn-soak.json \
		-parallel 8 -check-invariants -csv > CHURN_SOAK.csv

# In-run observability smoke: re-run the flight recorder's zero-alloc gate
# and the probes-active byte-identity/determinism checks, then a sharded
# churn run with declarative probes, the flight recorder, mid-run snapshot
# invariant checking, the shard-execution timeline and the structured run
# report all armed (-report exits nonzero on a non-clean faults verdict, like
# -check-invariants), then one small sweep with plot emission. CI uploads
# PROBE_SMOKE.csv, SHARD_TIMELINE.json, RUN_REPORT.{json,md} and plots/ (see
# docs/OBSERVABILITY.md).
probe-smoke:
	$(GO) test -run TestRecorderAppendZeroAlloc ./internal/probe/
	$(GO) test -short -run 'TestShardedRunsAreByteIdentical|TestProbeSeriesDeterministic' ./internal/scenario/
	$(GO) run ./cmd/cmsim -scenario churn -shards 4 \
		-probe "link[0].queue_depth" -probe "link[0].utilization" \
		-probe "cm[s0].cwnd" -trace-depth 512 -snapshot-every 1s \
		-check-invariants -probe-csv PROBE_SMOKE.csv \
		-timeline-out SHARD_TIMELINE.json \
		-report RUN_REPORT.json -report-md RUN_REPORT.md > /dev/null
	$(GO) run ./cmd/cmsim -scenario p2p -replicates 2 \
		-sweep "link[0].loss=0,0.01,0.02" -plot-dir plots -csv > /dev/null

# Per-benchmark ns/op trajectory across every committed BENCH_*.json perf
# snapshot (one per PR): the markdown table to stdout, the long-format CSV to
# TREND.csv. CI uploads TREND.csv as an artifact.
trend:
	$(GO) run ./cmd/cmbench -trend -trend-csv TREND.csv

# Routing-convergence smoke: the fat-tree route-flap scenario under the
# distance-vector control plane, swept over the routing-message drop rate
# (see docs/ROUTING.md). -check-invariants arms the faults checker, so any
# post-convergence blackhole drop, forwarding loop or unquiesced agent in
# any replicate fails the target. CI uploads ROUTE_SMOKE.csv; the aggregate
# drop probes in it show the blackhole window widening with the drop rate.
route-smoke:
	$(GO) test -run 'TestRouteFlapConvergence|TestRouteProtoFuzz' ./internal/scenario/
	$(GO) run ./cmd/cmsim -campaign examples/campaigns/route-smoke.json \
		-parallel 8 -check-invariants -csv > ROUTE_SMOKE.csv

# Hierarchical-routing smoke: sweep the fat-tree builder's k parameter
# (param.* axes rebuild the topology per point), exercising suffix-domain
# routing end to end at two fabric scales. CI uploads FATTREE_SMOKE.csv; the
# CSV bytes are deterministic per commit.
fattree-smoke:
	$(GO) run ./cmd/cmsim -scenario fattree -parallel 4 -replicates 2 \
		-sweep "param.k=4,6" -csv > FATTREE_SMOKE.csv
