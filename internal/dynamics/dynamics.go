// Package dynamics is the network-dynamics subsystem of the reproduction: a
// deterministic timeline of scheduled events that change the network while a
// simulation is running. The Congestion Manager's value proposition is
// adaptation, so scenarios must be able to declare the churn the CM adapts
// to — links failing and recovering, bandwidth and delay renegotiating,
// loss turning bursty — instead of freezing every parameter at Build time.
//
// An Event names a link of the scenario's topology (by index into
// Spec.Links), a virtual time and a change to apply. The Timeline schedules
// every event on the simulation's scheduler; events with At <= 0 are applied
// during installation, before any packet is sent, so static asymmetries can
// be declared as time-zero events. Link up/down events additionally trigger
// the owner's route-recomputation hook, and each event's outcome (fired,
// routes changed) is recorded so results can report the timeline that
// actually executed.
//
// Everything is deterministic: events fire at declared virtual times in
// declaration order, loss models draw from per-link seeded sources, and the
// records are value types — a scenario with a timeline still produces
// byte-identical results whether it runs serially or in a parallel batch.
package dynamics

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/simtime"
)

// Event kinds.
const (
	// LinkDown takes the target link out of service: arriving packets are
	// dropped (DownDrops), queued packets are held, and routes are
	// recomputed around the outage.
	LinkDown = "link-down"
	// LinkUp returns the link to service and recomputes routes.
	LinkUp = "link-up"
	// SetBandwidth changes the link's serialisation rate to Bandwidth.
	SetBandwidth = "set-bandwidth"
	// SetDelay changes the link's propagation delay to Delay.
	SetDelay = "set-delay"
	// SetLoss changes the link's independent Bernoulli drop rate to LossRate.
	SetLoss = "set-loss"
	// SetGilbert installs (or with a nil Gilbert field, removes) the
	// two-state bursty loss model.
	SetGilbert = "set-gilbert"
	// SetRouteFaults configures control-plane fault injection on the target
	// link: routing-protocol messages sent over it are dropped with
	// probability DropRate, delayed by Delay with probability DelayRate, and
	// duplicated with probability DuplicateRate. It applies to the routing
	// control plane only (RouteSync: "protocol"); data traffic is untouched.
	SetRouteFaults = "set-route-faults"
)

// Host-level event kinds. These name a host (Event.Host) instead of a link
// and are applied through the owner's HostHook: the scenario layer maps them
// onto Congestion Manager state wipes, libcm notification faults and
// link/routing changes. See docs/ROBUSTNESS.md.
const (
	// CMRestart wipes the named host's Congestion Manager state mid-run —
	// macroflows, flow table, scheduler rings — and bumps its epoch. Clients
	// holding flow handles detect the epoch change and re-sync through the
	// API (re-open, re-register, re-request).
	CMRestart = "cm-restart"
	// SetNotifyFaults configures the libcm notification path of the named
	// host: DeliverSend/DeliverUpdate callbacks are dropped with probability
	// DropRate or delayed by Delay with probability DelayRate, drawn from a
	// seeded per-host fault RNG.
	SetNotifyFaults = "set-notify-faults"
	// HostMove is a mobile handoff: the named host detaches (all its links go
	// down, in-flight packets die as route misses), macroflow state to and
	// from the host is discarded or kept per Policy, and the host re-attaches
	// Outage later (the scenario layer expands the event into a move/attach
	// pair). Routes recompute live at both edges.
	HostMove = "host-move"
	// HostAttach re-attaches a moved host: its links come back up and routes
	// recompute. It is normally generated from a HostMove's Outage rather
	// than declared directly.
	HostAttach = "host-attach"
)

// Host-move policies.
const (
	// PolicyDiscard (the default) throws away macroflow congestion state to
	// and from the moved host: the new path shares nothing with the old one,
	// so transfers restart from the initial window.
	PolicyDiscard = "discard"
	// PolicyMigrate keeps the macroflow state across the move: the learned
	// window and RTT survive (the optimistic same-subnet handoff).
	PolicyMigrate = "migrate"
	// PolicyRenumber discards macroflow state like PolicyDiscard and
	// additionally gives the host a new name (Event.NewName) when it
	// re-attaches: the host changed address, so routes to the old name age
	// out through the routing protocol rather than by oracle rewrite.
	// Requires RouteSync: "protocol".
	PolicyRenumber = "renumber"
)

// Directions select which half of a duplex link an event applies to.
const (
	// DirBoth (the default) applies the event to both directions.
	DirBoth = "both"
	// DirForward applies the event to the A->B direction of the link.
	DirForward = "fwd"
	// DirReverse applies the event to the B->A direction.
	DirReverse = "rev"
)

// Event is one scheduled change to the network. Exactly the parameter named
// by Kind is consulted; the others are ignored.
type Event struct {
	// At is the virtual time the event fires. At <= 0 fires during Timeline
	// installation, before any traffic.
	At time.Duration `json:"at"`
	// Kind is one of the event-kind constants.
	Kind string `json:"kind"`
	// Link indexes the scenario's Links slice (link events only).
	Link int `json:"link"`
	// Direction is DirBoth (default), DirForward or DirReverse.
	Direction string `json:"direction,omitempty"`
	// Host names the target of a host-level event (CMRestart,
	// SetNotifyFaults, HostMove, HostAttach); Link is ignored for these.
	Host string `json:"host,omitempty"`

	Bandwidth netsim.Bandwidth       `json:"bandwidth,omitempty"`
	Delay     time.Duration          `json:"delay,omitempty"`
	LossRate  float64                `json:"loss_rate,omitempty"`
	Gilbert   *netsim.GilbertElliott `json:"gilbert,omitempty"`

	// DropRate and DelayRate are the SetNotifyFaults probabilities (in
	// [0, 1]) of dropping or delaying one libcm callback delivery; Delay is
	// the added latency of a delayed delivery. SetRouteFaults reuses all
	// three for routing messages on the target link, plus DuplicateRate.
	DropRate  float64 `json:"drop_rate,omitempty"`
	DelayRate float64 `json:"delay_rate,omitempty"`
	// DuplicateRate is the SetRouteFaults probability of delivering one
	// routing message twice.
	DuplicateRate float64 `json:"duplicate_rate,omitempty"`

	// Policy is PolicyDiscard (default), PolicyMigrate or PolicyRenumber for
	// a HostMove; Outage is how long the moved host stays detached (default
	// 200 ms). NewName is the renumbered host's post-move name
	// (PolicyRenumber only).
	Policy  string        `json:"policy,omitempty"`
	Outage  time.Duration `json:"outage,omitempty"`
	NewName string        `json:"new_name,omitempty"`
}

// HostEvent reports whether the event targets a host rather than a link.
func (e Event) HostEvent() bool {
	switch e.Kind {
	case CMRestart, SetNotifyFaults, HostMove, HostAttach:
		return true
	}
	return false
}

// Validate checks the event against a topology with nlinks links. Host
// membership of host-level events is the owner's to check (the dynamics layer
// does not know the node set).
func (e Event) Validate(nlinks int) error {
	if e.At < 0 {
		return fmt.Errorf("dynamics: event at %v in the past", e.At)
	}
	if e.HostEvent() {
		if e.Host == "" {
			return fmt.Errorf("dynamics: %s event needs a host", e.Kind)
		}
		switch e.Kind {
		case SetNotifyFaults:
			if e.DropRate < 0 || e.DropRate > 1 {
				return fmt.Errorf("dynamics: %s event drop rate %v out of [0,1]", e.Kind, e.DropRate)
			}
			if e.DelayRate < 0 || e.DelayRate > 1 {
				return fmt.Errorf("dynamics: %s event delay rate %v out of [0,1]", e.Kind, e.DelayRate)
			}
			if e.Delay < 0 {
				return fmt.Errorf("dynamics: %s event needs delay >= 0", e.Kind)
			}
		case HostMove:
			if e.At <= 0 {
				return fmt.Errorf("dynamics: %s event must be scheduled mid-run (at > 0)", e.Kind)
			}
			switch e.Policy {
			case "", PolicyDiscard, PolicyMigrate:
				if e.NewName != "" {
					return fmt.Errorf("dynamics: %s event: new_name requires the %s policy", e.Kind, PolicyRenumber)
				}
			case PolicyRenumber:
				if e.NewName == "" {
					return fmt.Errorf("dynamics: %s event with the %s policy needs new_name", e.Kind, PolicyRenumber)
				}
				if e.NewName == e.Host {
					return fmt.Errorf("dynamics: %s event: new_name %q equals the old name", e.Kind, e.NewName)
				}
			default:
				return fmt.Errorf("dynamics: %s event policy %q unknown", e.Kind, e.Policy)
			}
			if e.Outage < 0 {
				return fmt.Errorf("dynamics: %s event needs outage >= 0", e.Kind)
			}
		}
		return nil
	}
	if e.Link < 0 || e.Link >= nlinks {
		return fmt.Errorf("dynamics: event link %d out of range [0,%d)", e.Link, nlinks)
	}
	switch e.Direction {
	case "", DirBoth, DirForward, DirReverse:
	default:
		return fmt.Errorf("dynamics: event direction %q unknown", e.Direction)
	}
	switch e.Kind {
	case LinkDown, LinkUp:
	case SetBandwidth:
		if e.Bandwidth <= 0 {
			return fmt.Errorf("dynamics: %s event needs bandwidth > 0", e.Kind)
		}
	case SetDelay:
		if e.Delay < 0 {
			return fmt.Errorf("dynamics: %s event needs delay >= 0", e.Kind)
		}
	case SetLoss:
		if e.LossRate < 0 || e.LossRate > 1 {
			return fmt.Errorf("dynamics: %s event loss rate %v out of [0,1]", e.Kind, e.LossRate)
		}
	case SetGilbert:
		if e.Gilbert != nil {
			if err := e.Gilbert.Validate(); err != nil {
				return fmt.Errorf("dynamics: %s event: %w", e.Kind, err)
			}
		}
	case SetRouteFaults:
		if e.DropRate < 0 || e.DropRate > 1 {
			return fmt.Errorf("dynamics: %s event drop rate %v out of [0,1]", e.Kind, e.DropRate)
		}
		if e.DelayRate < 0 || e.DelayRate > 1 {
			return fmt.Errorf("dynamics: %s event delay rate %v out of [0,1]", e.Kind, e.DelayRate)
		}
		if e.DuplicateRate < 0 || e.DuplicateRate > 1 {
			return fmt.Errorf("dynamics: %s event duplicate rate %v out of [0,1]", e.Kind, e.DuplicateRate)
		}
		if e.Delay < 0 {
			return fmt.Errorf("dynamics: %s event needs delay >= 0", e.Kind)
		}
	default:
		return fmt.Errorf("dynamics: event kind %q unknown", e.Kind)
	}
	return nil
}

// topologyEvent reports whether the event changes link reachability and so
// requires a route recomputation.
func (e Event) topologyEvent() bool { return e.Kind == LinkDown || e.Kind == LinkUp }

// Record is the executed outcome of one event, reported in scenario results.
// It contains only value types and serialises deterministically.
type Record struct {
	Event
	// Fired is false for events scheduled past the end of the run.
	Fired bool `json:"fired"`
	// PastEnd flags an event scheduled after the run's horizon (At >
	// duration): it can never fire, which is almost always a spec mistake.
	// Set by SetHorizon; the scenario layer calls it with Spec.Duration.
	PastEnd bool `json:"past_end,omitempty"`
	// RoutesChanged counts routing-table entries that changed across all
	// hosts when the event triggered a route recomputation.
	RoutesChanged int `json:"routes_changed,omitempty"`
	// FlowsWiped counts CM flows discarded by a host-level event (cm-restart
	// wipes, host-move discards).
	FlowsWiped int `json:"flows_wiped,omitempty"`
}

// Resolver maps an event's (link index, direction) to the directional links
// it applies to. The scenario layer supplies one backed by its duplexes.
type Resolver func(link int, direction string) []*netsim.Link

// TopologyHook is invoked after a link up/down event has been applied; it
// recomputes and installs routes, returning the number of changed entries.
type TopologyHook func(ev Event) int

// HostOutcome reports what a host-level event did, for the execution record.
type HostOutcome struct {
	RoutesChanged int
	FlowsWiped    int
}

// HostHook applies one host-level event (CMRestart, SetNotifyFaults,
// HostMove, HostAttach). The scenario layer supplies one that reaches the
// host's Congestion Manager, libcm fault injector and links; a timeline with
// no hook records host events as fired no-ops.
type HostHook func(ev Event) HostOutcome

// RouteFaultHook applies a SetRouteFaults event. The scenario layer supplies
// one that reaches the routing agents on the link's endpoints; a timeline
// with no hook records the event as a fired no-op (oracle-mode runs have no
// control plane to perturb).
type RouteFaultHook func(ev Event)

// Timeline owns a scenario's scheduled events and their execution records.
type Timeline struct {
	sched        *simtime.Scheduler
	resolve      Resolver
	onChange     TopologyHook
	onHost       HostHook
	onRouteFault RouteFaultHook
	recs         []Record
}

// NewTimeline builds a timeline over the given events. resolve is required;
// onChange may be nil when the owner has no routing to maintain. A nil sched
// selects the externally-driven mode: Install applies only time-zero events
// and the owner fires the rest by calling Advance at the right virtual times
// (sharded execution does this at its synchronization barriers).
func NewTimeline(sched *simtime.Scheduler, events []Event, resolve Resolver, onChange TopologyHook) *Timeline {
	if resolve == nil {
		panic("dynamics: NewTimeline requires a resolver")
	}
	t := &Timeline{sched: sched, resolve: resolve, onChange: onChange}
	t.recs = make([]Record, len(events))
	for i, ev := range events {
		t.recs[i] = Record{Event: ev}
	}
	return t
}

// SetHostHook installs the host-level event handler. It must be called
// before Install (host events applied at installation go through the hook).
func (t *Timeline) SetHostHook(h HostHook) { t.onHost = h }

// SetRouteFaultHook installs the SetRouteFaults handler. Like SetHostHook it
// must be called before Install.
func (t *Timeline) SetRouteFaultHook(h RouteFaultHook) { t.onRouteFault = h }

// SetHorizon flags every event scheduled after the run's end (At > d) as
// PastEnd in its execution record: such events sit silently unfired, which
// the records now make visible instead of invisible.
func (t *Timeline) SetHorizon(d time.Duration) {
	for i := range t.recs {
		if t.recs[i].At > d {
			t.recs[i].PastEnd = true
		}
	}
}

// Install schedules every event. Events with At <= 0 are applied immediately
// (before the scheduler runs), so time-zero events configure the network
// before the first packet. Install must be called exactly once. On an
// externally-driven timeline (nil scheduler) the positive-time events are
// left for Advance.
func (t *Timeline) Install() {
	for i := range t.recs {
		if t.recs[i].At <= 0 {
			t.fire(i)
			continue
		}
		if t.sched == nil {
			continue
		}
		idx := i
		t.sched.AtKind(t.recs[i].At, simtime.KindDynamics, func() { t.fire(idx) })
	}
}

// Advance fires every not-yet-fired event with At <= now, in declaration
// order — the same order the scheduler mode produces, since Install inserts
// the events in declaration order before any traffic is scheduled. It is the
// drive for externally-clocked owners; calling it on a scheduler-backed
// timeline would double-fire events, so don't.
func (t *Timeline) Advance(now time.Duration) {
	for i := range t.recs {
		if !t.recs[i].Fired && t.recs[i].At <= now {
			t.fire(i)
		}
	}
}

// fire applies event i to its resolved links (or, for a host-level event,
// through the host hook) and records the outcome.
func (t *Timeline) fire(i int) {
	rec := &t.recs[i]
	rec.Fired = true
	if rec.HostEvent() {
		if t.onHost != nil {
			out := t.onHost(rec.Event)
			rec.RoutesChanged = out.RoutesChanged
			rec.FlowsWiped = out.FlowsWiped
		}
		return
	}
	if rec.Kind == SetRouteFaults {
		// Route faults live in the control-plane agents, not the link; the
		// owner's hook maps (link, direction) onto the transmitting agents.
		if t.onRouteFault != nil {
			t.onRouteFault(rec.Event)
		}
		return
	}
	dir := rec.Direction
	if dir == "" {
		dir = DirBoth
	}
	for _, l := range t.resolve(rec.Link, dir) {
		applyToLink(rec.Event, l)
	}
	if rec.topologyEvent() && t.onChange != nil {
		rec.RoutesChanged = t.onChange(rec.Event)
	}
}

// applyToLink performs the event's change on one directional link.
func applyToLink(ev Event, l *netsim.Link) {
	switch ev.Kind {
	case LinkDown:
		l.SetDown(true)
	case LinkUp:
		l.SetDown(false)
	case SetBandwidth:
		l.SetBandwidth(ev.Bandwidth)
	case SetDelay:
		l.SetDelay(ev.Delay)
	case SetLoss:
		l.SetLossRate(ev.LossRate)
	case SetGilbert:
		l.SetGilbert(ev.Gilbert)
	}
}

// Records returns a copy of the per-event execution records, in declaration
// order.
func (t *Timeline) Records() []Record {
	return append([]Record(nil), t.recs...)
}
