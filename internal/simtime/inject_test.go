package simtime

import (
	"testing"
	"time"
)

// An injected event must sort among same-timestamp local events by its
// insertion stamp: local events inserted before the remote sender's
// serialisation time run first, later ones after — the order one shared
// scheduler would have produced.
func TestInjectAtStampOrdering(t *testing.T) {
	s := NewScheduler()
	var order []string
	rec := func(tag string) func() { return func() { order = append(order, tag) } }

	// Local event scheduled at t=0 for t=10ms: stamp 0.
	s.At(10*time.Millisecond, rec("early-local"))
	// Run to 2ms so later insertions carry a larger stamp.
	s.RunUntil(2 * time.Millisecond)
	// Local event scheduled at t=2ms for the same t=10ms: stamp 2ms.
	s.At(10*time.Millisecond, rec("late-local"))
	// Injection stamped 1ms: between the two local insertions.
	s.InjectAt(10*time.Millisecond, time.Millisecond, 0, 0, KindOther, func(any) { order = append(order, "injected") }, nil)
	s.Run()

	want := []string{"early-local", "injected", "late-local"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// Keyed events scheduled at one instant for one target time must run in key
// order regardless of insertion order, and an injection carrying a key must
// slot into that order — the double-tie rule that makes sharded runs agree
// with serial ones when two links deliver at the same nanosecond.
func TestKeyedTieOrdering(t *testing.T) {
	s := NewScheduler()
	var order []string
	rec := func(tag string) func(any) { return func(any) { order = append(order, tag) } }

	at := 10 * time.Millisecond
	s.RunUntil(2 * time.Millisecond) // all insertions below share stamp 2ms
	s.AtArgKeyed(at, 30, 0, KindOther, rec("key30"), nil)
	s.AtArgKeyed(at, 10, 0, KindOther, rec("key10"), nil)
	s.AtArg(at, rec("unkeyed"), nil) // key 0: ahead of every keyed event
	// An injection stamped at the same 2ms instant with a key between the two
	// local keyed events lands between them.
	s.InjectAt(at, 2*time.Millisecond, 20, 0, KindOther, rec("injected20"), nil)
	s.Run()

	want := []string{"unkeyed", "key10", "injected20", "key30"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// Among events sharing (at, stamp, key), the caller-supplied sub-sequence —
// the link-local delivery number in netsim — must decide the order, beating
// scheduler insertion order (seq). Insertions are made in descending sub
// order so any reliance on seq would reverse the result, and an injection
// carrying a sub must slot into the same order.
func TestSubSequenceTieOrdering(t *testing.T) {
	s := NewScheduler()
	var order []string
	rec := func(tag string) func(any) { return func(any) { order = append(order, tag) } }

	at := 10 * time.Millisecond
	s.RunUntil(2 * time.Millisecond) // all insertions below share stamp 2ms
	s.AtArgKeyed(at, 7, 3, KindOther, rec("sub3"), nil)
	s.AtArgKeyed(at, 7, 1, KindOther, rec("sub1"), nil)
	// Same key, sub between the two local ones, injected from "elsewhere".
	s.InjectAt(at, 2*time.Millisecond, 7, 2, KindOther, rec("sub2"), nil)
	// A different (higher) key sorts after regardless of its low sub.
	s.AtArgKeyed(at, 9, 0, KindOther, rec("key9"), nil)
	s.Run()

	want := []string{"sub1", "sub2", "sub3", "key9"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

func TestInjectAtPastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(5*time.Millisecond, func() {})
	s.RunUntil(5 * time.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatal("InjectAt into the past must panic (conservative sync violation)")
		}
	}()
	s.InjectAt(time.Millisecond, 0, 0, 0, KindOther, func(any) {}, nil)
}

// RunUntilBefore must stop short of events at exactly the horizon, and
// AdvanceTo must refuse to skip over pending work.
func TestRunUntilBeforeAndAdvanceTo(t *testing.T) {
	s := NewScheduler()
	ran := make(map[time.Duration]bool)
	for _, at := range []time.Duration{1 * time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		at := at
		s.At(at, func() { ran[at] = true })
	}
	s.RunUntilBefore(2 * time.Millisecond)
	if !ran[time.Millisecond] || ran[2*time.Millisecond] {
		t.Fatalf("RunUntilBefore(2ms) ran %v; want only the 1ms event", ran)
	}
	if s.Now() != time.Millisecond {
		t.Fatalf("clock at %v after RunUntilBefore, want 1ms (last executed event)", s.Now())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AdvanceTo over a pending event must panic")
			}
		}()
		s.AdvanceTo(3 * time.Millisecond)
	}()
	s.AdvanceTo(2 * time.Millisecond)
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("clock at %v after AdvanceTo(2ms)", s.Now())
	}
	s.Run()
	if !ran[2*time.Millisecond] || !ran[3*time.Millisecond] {
		t.Fatalf("remaining events did not run: %v", ran)
	}
}

// Injection must reuse the freelist like local scheduling does: a warm
// inject/fire cycle allocates nothing.
func TestInjectAtZeroAlloc(t *testing.T) {
	s := NewScheduler()
	fn := func(any) {}
	var arg struct{}
	for i := 0; i < 64; i++ {
		s.InjectAt(s.Now()+time.Microsecond, s.Now(), 0, 0, KindPktDeliver, fn, &arg)
		s.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.InjectAt(s.Now()+time.Microsecond, s.Now(), 0, 0, KindPktDeliver, fn, &arg)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("inject+fire allocated %.1f objects per op, want 0", allocs)
	}
}
