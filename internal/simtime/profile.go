package simtime

import "time"

// Kind classifies a scheduled event for the optional per-kind wall-clock
// profiler. Call sites tag events via the *Kind scheduling variants (AtKind,
// AfterArgKind, ...); untagged events are KindOther. The kind never affects
// event ordering or execution — it exists purely so an armed profiler can
// attribute where a run's real time goes (link delivery vs. CM grants vs.
// route recomputation, etc.).
type Kind uint8

const (
	// KindOther is the default for untagged events.
	KindOther Kind = iota
	// KindPktTransmit is a link finishing the serialization of a packet.
	KindPktTransmit
	// KindPktDeliver is a packet hand-up at the far end of a link (including
	// cross-shard injected deliveries).
	KindPktDeliver
	// KindCMGrant is Congestion Manager scheduler work (grant callbacks,
	// background timers).
	KindCMGrant
	// KindCMNotify is libcm feedback machinery (delayed notify/update
	// delivery, notify-fault injection).
	KindCMNotify
	// KindRouteUpdate is routing control-plane work (advertisement exchange,
	// triggered updates, convergence timers).
	KindRouteUpdate
	// KindProbeSample is a declarative probe or snapshot sampling event.
	KindProbeSample
	// KindDynamics is a scheduled network-dynamics event (link down/up,
	// parameter change, Gilbert-Elliott ticks).
	KindDynamics
	// KindWorkloadApp is application/transport workload machinery (flow
	// starts, TCP timers, app-layer timers).
	KindWorkloadApp

	// NumKinds is the number of kinds; valid kinds are in [0, NumKinds).
	NumKinds
)

var kindNames = [NumKinds]string{
	KindOther:       "other",
	KindPktTransmit: "pkt-transmit",
	KindPktDeliver:  "pkt-deliver",
	KindCMGrant:     "cm-grant",
	KindCMNotify:    "cm-notify",
	KindRouteUpdate: "route-update",
	KindProbeSample: "probe-sample",
	KindDynamics:    "dynamics-event",
	KindWorkloadApp: "workload-app",
}

// String returns the stable, hyphenated name of the kind (used in reports,
// timelines and Result.Perf).
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return "invalid"
}

// KindAgg is the profiler's per-kind aggregate: how many events of the kind
// fired and what they cost in wall-clock time.
type KindAgg struct {
	Count   uint64
	TotalNs int64
	MaxNs   int64
}

// Profile is the per-scheduler event-kind profiler. It is armed with
// Scheduler.EnableProfile; a disarmed scheduler pays a single nil check per
// fired event and nothing else (the AllocsPerRun gates cover this). An armed
// profiler measures wall-clock time around each callback and accumulates it
// into the fired event's kind — it observes execution, never simulation
// state, so arming it cannot perturb a deterministic run.
type Profile struct {
	agg [NumKinds]KindAgg
}

// record attributes one fired event's elapsed wall-clock time. Called from
// Scheduler.Step only.
func (p *Profile) record(k Kind, ns int64) {
	a := &p.agg[k]
	a.Count++
	a.TotalNs += ns
	if ns > a.MaxNs {
		a.MaxNs = ns
	}
}

// Snapshot returns a copy of the current per-kind aggregates. Snapshots are
// plain values; subtracting two (Delta) yields the cost of the work between
// them, which is how shard-window timeline breakdowns are computed.
func (p *Profile) Snapshot() ProfileSnapshot { return p.agg }

// ProfileSnapshot is a point-in-time copy of a Profile's aggregates, indexed
// by Kind.
type ProfileSnapshot [NumKinds]KindAgg

// Events returns the total number of profiled events across all kinds.
func (s ProfileSnapshot) Events() uint64 {
	var n uint64
	for i := range s {
		n += s[i].Count
	}
	return n
}

// TotalNs returns the total attributed wall-clock nanoseconds across kinds.
func (s ProfileSnapshot) TotalNs() int64 {
	var ns int64
	for i := range s {
		ns += s[i].TotalNs
	}
	return ns
}

// Delta returns the per-kind difference s - prev, where prev is an earlier
// snapshot of the same profile. Counts and totals subtract; MaxNs keeps the
// cumulative maximum from s (a windowed maximum is not recoverable from two
// cumulative snapshots).
func (s ProfileSnapshot) Delta(prev ProfileSnapshot) ProfileSnapshot {
	var d ProfileSnapshot
	for i := range s {
		d[i] = KindAgg{
			Count:   s[i].Count - prev[i].Count,
			TotalNs: s[i].TotalNs - prev[i].TotalNs,
			MaxNs:   s[i].MaxNs,
		}
	}
	return d
}

// Add returns the element-wise sum of two snapshots (counts and totals add,
// MaxNs takes the maximum). Used to merge per-shard profiles into one run
// total.
func (s ProfileSnapshot) Add(o ProfileSnapshot) ProfileSnapshot {
	var sum ProfileSnapshot
	for i := range s {
		sum[i] = KindAgg{
			Count:   s[i].Count + o[i].Count,
			TotalNs: s[i].TotalNs + o[i].TotalNs,
			MaxNs:   max(s[i].MaxNs, o[i].MaxNs),
		}
	}
	return sum
}

// EnableProfile arms the per-event-kind profiler on the scheduler and returns
// it. Calling it again returns the same (still-accumulating) profile. There
// is no disarm: a profile lives for the scheduler's lifetime, and runs that
// never arm one pay only the nil check in Step.
func (s *Scheduler) EnableProfile() *Profile {
	if s.prof == nil {
		s.prof = &Profile{}
	}
	return s.prof
}

// Profiling returns the armed profile, or nil if EnableProfile was never
// called.
func (s *Scheduler) Profiling() *Profile { return s.prof }

// fireProfiled runs one event's callback under wall-clock measurement. Kept
// out of Step's inline budget so the disarmed path stays as tight as before.
func (s *Scheduler) fireProfiled(ev *Event) {
	start := time.Now()
	ev.fire()
	s.prof.record(ev.kind, int64(time.Since(start)))
}
