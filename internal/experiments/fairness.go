package experiments

import (
	"fmt"
	"time"

	"repro/internal/netsim"
	"repro/internal/scenario"
	"repro/internal/sweep"
)

// FairnessConfig parameterises the ensemble-aggressiveness experiment behind
// the paper's correctness claim in §4: "by integrating flow information
// between both kernel protocols and user applications, we ensure that an
// ensemble of concurrent flows is not an overly aggressive user of the
// network." An ensemble of N web-like connections from one host competes
// with a single independent TCP for a shared bottleneck; with the CM the
// ensemble shares one macroflow and should claim roughly half the link, while
// N independent TCP connections claim roughly N/(N+1) of it.
type FairnessConfig struct {
	// EnsembleFlows is the number of concurrent connections in the ensemble.
	EnsembleFlows int
	// Duration is how long the competition runs.
	Duration time.Duration
	// Path describes the shared bottleneck.
	Path Path
}

func (c *FairnessConfig) fillDefaults() {
	if c.EnsembleFlows <= 0 {
		c.EnsembleFlows = 4
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.Path.Bandwidth == 0 {
		c.Path = Path{Bandwidth: 10 * netsim.Mbps, OneWayDelay: 30 * time.Millisecond, QueuePackets: 120, Seed: 71}
	}
}

// FairnessResult reports the bandwidth shares of the ensemble under both
// configurations.
type FairnessResult struct {
	Config FairnessConfig
	// CMEnsembleShare is the ensemble's fraction of the total goodput when
	// its connections share one CM macroflow.
	CMEnsembleShare float64
	// IndependentEnsembleShare is the same fraction when the ensemble's
	// connections each run their own native congestion control.
	IndependentEnsembleShare float64
	// FairShare is the share one aggregate competing with one other flow
	// would get (0.5).
	FairShare float64
}

// FairnessCampaign is the declarative form of the competition: the shared
// bottleneck as the base spec carrying the ensemble (workload 0) and one
// independent native competitor (workload 1), with a single string axis
// flipping the ensemble's congestion controller between cm and native. The
// string axis is seed-paired, so both configurations see the identical path.
func FairnessCampaign(cfg FairnessConfig) sweep.Campaign {
	cfg.fillDefaults()
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    cfg.Path.Bandwidth,
			Delay:        cfg.Path.OneWayDelay,
			LossRate:     cfg.Path.LossRate,
			QueuePackets: cfg.Path.QueuePackets,
			Seed:         cfg.Path.Seed,
		},
		Workloads: []scenario.Workload{
			{Kind: scenario.KindStream, From: "sender", To: "receiver", Flows: cfg.EnsembleFlows},
			{Kind: scenario.KindStream, From: "sender", To: "receiver", CC: scenario.CCNative},
		},
		Duration: cfg.Duration,
		Seed:     cfg.Path.Seed,
	})
	base.Name = "fairness"
	return sweep.Campaign{
		Name: "fairness",
		Base: &base,
		Axes: []sweep.Axis{
			{Param: "workload[0].cc", Strings: []string{scenario.CCCM, scenario.CCNative}},
		},
		Metrics: []string{"flows[*].delivered"},
	}
}

// RunFairness runs the competition in both configurations through the
// campaign engine.
func RunFairness(cfg FairnessConfig) FairnessResult {
	cfg.fillDefaults()
	res := FairnessResult{Config: cfg, FairShare: 0.5}
	cres, err := FairnessCampaign(cfg).Run(scenario.Runner{})
	if err != nil {
		return res
	}
	res.CMEnsembleShare = ensembleShare(&cres.Points[0])
	res.IndependentEnsembleShare = ensembleShare(&cres.Points[1])
	return res
}

// ensembleShare computes the ensemble workload's fraction of all delivered
// bytes from the point's raw result.
func ensembleShare(p *sweep.PointResult) float64 {
	if len(p.Results) == 0 {
		return 0
	}
	var ensemble, total int64
	for _, f := range p.Results[0].Flows {
		total += f.Delivered
		if f.Workload == 0 {
			ensemble += f.Delivered
		}
	}
	if total == 0 {
		return 0
	}
	return float64(ensemble) / float64(total)
}

// Table renders the fairness comparison.
func (r FairnessResult) Table() string {
	n := r.Config.EnsembleFlows
	rows := [][]string{
		{fmt.Sprintf("%d TCP/CM connections (one macroflow)", n), fmt.Sprintf("%.2f", r.CMEnsembleShare)},
		{fmt.Sprintf("%d independent TCP connections", n), fmt.Sprintf("%.2f", r.IndependentEnsembleShare)},
		{"fair share for one aggregate", fmt.Sprintf("%.2f", r.FairShare)},
		{fmt.Sprintf("aggressive share (%d/%d)", n, n+1), fmt.Sprintf("%.2f", float64(n)/float64(n+1))},
	}
	return "Ensemble aggressiveness: share of a shared bottleneck taken from one competing TCP\n" +
		formatTable([]string{"ensemble configuration", "bandwidth share"}, rows)
}
