package experiments

import (
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/libcm"
	"repro/internal/netsim"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// ConnSetupResult reproduces the §4.1 microbenchmark: connection
// establishment time for TCP/CM vs TCP/Linux (the paper found no appreciable
// difference).
type ConnSetupResult struct {
	CM    time.Duration
	Linux time.Duration
}

// RunConnSetup measures the three-way-handshake completion time on the
// testbed LAN for both configurations.
func RunConnSetup() ConnSetupResult {
	measure := func(cc tcp.CongestionControl) time.Duration {
		w := newTestbed(testbedLAN(), cc == tcp.CCCM)
		if _, err := tcp.Listen(w.rcvr, 80, tcp.Config{}, nil); err != nil {
			return 0
		}
		start := w.sched.Now()
		var established time.Duration
		ep, err := tcp.Dial(w.sender, netsim.Addr{Host: "receiver", Port: 80}, w.senderTCPConfig(cc))
		if err != nil {
			return 0
		}
		ep.OnEstablished(func() { established = w.sched.Now() })
		w.sched.RunFor(time.Second)
		return established - start
	}
	return ConnSetupResult{CM: measure(tcp.CCCM), Linux: measure(tcp.CCNative)}
}

// Table renders the connection-setup comparison.
func (r ConnSetupResult) Table() string {
	rows := [][]string{
		{"TCP/CM", fmt.Sprintf("%.3f ms", float64(r.CM)/float64(time.Millisecond))},
		{"TCP/Linux", fmt.Sprintf("%.3f ms", float64(r.Linux)/float64(time.Millisecond))},
	}
	return "Connection establishment time (§4.1 microbenchmark)\n" +
		formatTable([]string{"stack", "setup time"}, rows)
}

// AblationInitialWindowResult compares the CM's initial window of 1 MTU with
// a Linux-like initial window of 2 MTUs on the Figure 7 workload, isolating
// the first-transfer penalty the paper attributes to that difference.
type AblationInitialWindowResult struct {
	FirstRequestIW1ms float64
	FirstRequestIW2ms float64
}

// RunAblationInitialWindow measures the first-retrieval latency with both
// initial windows.
func RunAblationInitialWindow() AblationInitialWindowResult {
	run := func(iw int) float64 {
		cfg := Fig7Config{Requests: 1}
		cfg.fillDefaults()
		cfg.Requests = 1
		w := newTestbed(vbnsPath(43), true, cm.WithInitialWindow(iw))
		times := fig7RunInTestbed(w, tcp.CCCM, cfg)
		if len(times) == 0 {
			return 0
		}
		return times[0]
	}
	return AblationInitialWindowResult{FirstRequestIW1ms: run(1), FirstRequestIW2ms: run(2)}
}

// Table renders the initial-window ablation.
func (r AblationInitialWindowResult) Table() string {
	rows := [][]string{
		{"CM, initial window 1 MTU", fmt.Sprintf("%.0f ms", r.FirstRequestIW1ms)},
		{"CM, initial window 2 MTU", fmt.Sprintf("%.0f ms", r.FirstRequestIW2ms)},
	}
	return "Ablation A1: first 128 KB retrieval vs initial congestion window\n" +
		formatTable([]string{"configuration", "first request"}, rows)
}

// AblationBulkCallsResult compares the number of kernel boundary crossings a
// server with many flows performs with per-flow cm_request calls versus the
// batched cm_bulk_request of §5 (Optimizations).
type AblationBulkCallsResult struct {
	Flows          int
	PerFlowIoctls  int64
	BulkIoctls     int64
	CrossingsSaved int64
}

// RunAblationBulkCalls counts control-socket ioctls for both strategies.
func RunAblationBulkCalls(flows int) AblationBulkCallsResult {
	if flows <= 0 {
		flows = 32
	}
	count := func(bulk bool) int64 {
		s := simtime.NewScheduler()
		c := cm.New(s, s)
		lib := libcm.New(c, s, libcm.ModeManual)
		ids := make([]cm.FlowID, 0, flows)
		for i := 0; i < flows; i++ {
			f := lib.Open(netsim.ProtoUDP, netsim.Addr{Host: "sender", Port: 10000 + i},
				netsim.Addr{Host: fmt.Sprintf("dst%d", i), Port: 80})
			lib.RegisterSend(f, func(cm.FlowID) {})
			ids = append(ids, f)
		}
		if bulk {
			lib.BulkRequest(ids)
		} else {
			for _, f := range ids {
				lib.Request(f)
			}
		}
		s.RunFor(time.Second)
		lib.Dispatch()
		return lib.Stats().Ioctls
	}
	perFlow := count(false)
	bulkCalls := count(true)
	return AblationBulkCallsResult{
		Flows:          flows,
		PerFlowIoctls:  perFlow,
		BulkIoctls:     bulkCalls,
		CrossingsSaved: perFlow - bulkCalls,
	}
}

// Table renders the bulk-call ablation.
func (r AblationBulkCallsResult) Table() string {
	rows := [][]string{
		{"per-flow cm_request", fmt.Sprintf("%d", r.PerFlowIoctls)},
		{"cm_bulk_request", fmt.Sprintf("%d", r.BulkIoctls)},
		{"crossings saved", fmt.Sprintf("%d", r.CrossingsSaved)},
	}
	return fmt.Sprintf("Ablation A2: control-socket ioctls to request sends for %d flows\n", r.Flows) +
		formatTable([]string{"strategy", "ioctls"}, rows)
}

// AblationSchedulerResult compares the round-robin scheduler with the
// weighted round-robin extension: the share of grants each of two permanently
// backlogged flows receives.
type AblationSchedulerResult struct {
	RoundRobinShare float64 // grants to flow A / grants to flow B (weights 3:1)
	WeightedShare   float64
}

// RunAblationScheduler measures grant shares under both schedulers.
func RunAblationScheduler() AblationSchedulerResult {
	run := func(weighted bool) float64 {
		s := simtime.NewScheduler()
		opts := []cm.Option{cm.WithMTU(1000), cm.WithInitialWindow(4), cm.WithMaxWindow(20_000)}
		if weighted {
			opts = append(opts, cm.WithScheduler(cm.NewWeightedRoundRobinScheduler))
		}
		c := cm.New(s, s, opts...)
		dstA := netsim.Addr{Host: "utah", Port: 80}
		dstB := netsim.Addr{Host: "utah", Port: 81}
		a := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: 1}, dstA)
		b := c.Open(netsim.ProtoUDP, netsim.Addr{Host: "s", Port: 2}, dstB)
		c.SetWeight(a, 3)
		c.SetWeight(b, 1)
		counts := map[cm.FlowID]int{}
		onSend := func(id cm.FlowID) {
			counts[id]++
			c.Notify(id, 1000)
			s.After(10*time.Millisecond, func() {
				c.Update(id, 1000, 1000, cm.NoLoss, 10*time.Millisecond)
			})
		}
		c.RegisterSend(a, onSend)
		c.RegisterSend(b, onSend)
		for i := 0; i < 5000; i++ {
			c.Request(a)
			c.Request(b)
		}
		s.RunFor(2 * time.Second)
		if counts[b] == 0 {
			return 0
		}
		return float64(counts[a]) / float64(counts[b])
	}
	return AblationSchedulerResult{RoundRobinShare: run(false), WeightedShare: run(true)}
}

// Table renders the scheduler ablation.
func (r AblationSchedulerResult) Table() string {
	rows := [][]string{
		{"round-robin (paper default)", fmt.Sprintf("%.2f", r.RoundRobinShare)},
		{"weighted round-robin (3:1)", fmt.Sprintf("%.2f", r.WeightedShare)},
	}
	return "Ablation A3: grant ratio between two backlogged flows (weights 3:1)\n" +
		formatTable([]string{"scheduler", "grant ratio A:B"}, rows)
}

// fig7RunInTestbed is RunFig7's inner loop exposed for the ablations that need
// a custom CM configuration.
func fig7RunInTestbed(w *testbed, cc tcp.CongestionControl, cfg Fig7Config) []float64 {
	serverCfg := w.senderTCPConfig(cc)
	if _, err := newFileServer(w, serverCfg, cfg.FileSize); err != nil {
		return nil
	}
	return runFetches(w, cfg)
}
