// Package apicost models the end-system cost of the different transmission
// APIs compared in the paper's evaluation (Table 1, Figures 5 and 6).
//
// The paper measured wall-clock microseconds per packet on 600 MHz Pentium
// III hosts. Those absolute numbers are artifacts of the hardware; what the
// reproduction must preserve is the *structure* of the overhead: which
// operations each API performs per packet (Table 1) and therefore how the
// per-packet cost ordering and the worst-case throughput reduction (~25 %,
// ALF/noconnect versus TCP without delayed ACKs) come about.
//
// The model assigns a cost to each primitive operation (system call, data
// copy, gettimeofday, select descriptor, control-socket ioctl, kernel packet
// processing) and derives the per-packet cost of every API variant from its
// operation counts. The experiment harness uses it to regenerate Table 1 and
// Figures 5–6; bench_test.go additionally measures the real cost of our CM
// operations with testing.B, mirroring the paper's microbenchmarks.
package apicost

import (
	"fmt"
	"time"
)

// CostModel assigns a duration to each primitive end-system operation.
type CostModel struct {
	// Syscall is the base cost of entering and leaving the kernel once
	// (send, recv, select wakeup).
	Syscall time.Duration
	// CopyPerByte is the cost of copying one byte across the user/kernel
	// boundary.
	CopyPerByte time.Duration
	// Gettimeofday is the cost of one gettimeofday call (UDP clients
	// timestamp packets to compute RTTs in user space).
	Gettimeofday time.Duration
	// SelectPerDescriptor is the incremental cost of one extra descriptor in
	// the application's select set (the CM control socket).
	SelectPerDescriptor time.Duration
	// Ioctl is the cost of one control-socket ioctl (cm_request, cm_notify,
	// cm_update or the batched drain), on top of nothing — it already
	// includes the boundary crossing.
	Ioctl time.Duration
	// KernelPacketProcessing is the in-kernel cost of transmitting one data
	// packet (driver, IP, transport processing).
	KernelPacketProcessing time.Duration
	// KernelAckProcessing is the in-kernel cost of processing one
	// acknowledgement.
	KernelAckProcessing time.Duration
	// CMAccounting is the in-kernel bookkeeping the Congestion Manager adds
	// per packet (charging the macroflow, window arithmetic). The paper
	// measured this at well under 1 % of CPU for bulk TCP transfer.
	CMAccounting time.Duration
	// AckPacketSize is the size of an application-level acknowledgement
	// copied to user space by UDP-based clients.
	AckPacketSize int
}

// DefaultCosts returns a cost model calibrated so that the reproduction
// matches the paper's relative results: TCP/CM within a few percent of
// TCP/Linux, and ALF/noconnect costing roughly 25-35 % more per packet than
// TCP/CM without delayed ACKs at small packet sizes.
func DefaultCosts() CostModel {
	return CostModel{
		Syscall:                4 * time.Microsecond,
		CopyPerByte:            20 * time.Nanosecond,
		Gettimeofday:           500 * time.Nanosecond,
		SelectPerDescriptor:    500 * time.Nanosecond,
		Ioctl:                  2500 * time.Nanosecond,
		KernelPacketProcessing: 18 * time.Microsecond,
		KernelAckProcessing:    8 * time.Microsecond,
		CMAccounting:           500 * time.Nanosecond,
		AckPacketSize:          40,
	}
}

// Variant enumerates the transmission APIs compared in Figure 6 of the paper.
type Variant int

const (
	// TCPLinux is the unmodified in-kernel TCP baseline with delayed ACKs.
	TCPLinux Variant = iota
	// TCPCM is TCP with congestion control performed by the CM (in-kernel
	// client, delayed ACKs).
	TCPCM
	// TCPCMNoDelay is TCP/CM with delayed ACKs disabled, used by the paper
	// to equalise packet counts against the UDP-based clients.
	TCPCMNoDelay
	// Buffered is the congestion-controlled UDP socket: the application
	// sends with sendto and processes application-level ACKs in user space.
	Buffered
	// ALF is the request/callback API on a connected UDP socket: Buffered
	// plus an extra control socket in the select set and a cm_request ioctl
	// per packet.
	ALF
	// ALFNoConnect is the ALF API on an unconnected UDP socket, which
	// additionally requires an explicit cm_notify ioctl per packet because
	// the kernel cannot attribute the transmission to a flow.
	ALFNoConnect
)

// Variants lists all API variants in the order the paper presents them
// (cheapest first).
func Variants() []Variant {
	return []Variant{TCPLinux, TCPCM, TCPCMNoDelay, Buffered, ALF, ALFNoConnect}
}

// String names the variant using the paper's labels.
func (v Variant) String() string {
	switch v {
	case TCPLinux:
		return "TCP/Linux"
	case TCPCM:
		return "TCP/CM"
	case TCPCMNoDelay:
		return "TCP/CM nodelay"
	case Buffered:
		return "Buffered"
	case ALF:
		return "ALF"
	case ALFNoConnect:
		return "ALF/noconnect"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Operations counts the per-packet primitive operations an API variant
// performs at the sender. The increments from one row to the next reproduce
// Table 1 of the paper.
type Operations struct {
	// SendSyscalls is the number of send/sendto/write system calls.
	SendSyscalls int
	// PayloadCopies counts user-to-kernel copies of the payload.
	PayloadCopies int
	// RecvSyscalls counts user-space recv calls used to process feedback.
	RecvSyscalls int
	// AckCopies counts kernel-to-user copies of acknowledgement packets.
	AckCopies int
	// Gettimeofdays counts gettimeofday calls for user-space RTT sampling.
	Gettimeofdays int
	// Ioctls counts control-socket ioctls (cm_request, cm_notify).
	Ioctls int
	// ExtraSelectDescriptors counts additional descriptors the application
	// must include in its select set for the CM control socket.
	ExtraSelectDescriptors int
	// KernelAckFraction is the fraction of packets for which the kernel
	// processes an ACK (0.5 with delayed ACKs, 1.0 without).
	KernelAckFraction float64
	// UsesCM reports whether CM per-packet accounting applies.
	UsesCM bool
}

// OperationsFor returns the per-packet operation counts of a variant.
func OperationsFor(v Variant) Operations {
	switch v {
	case TCPLinux:
		return Operations{SendSyscalls: 1, PayloadCopies: 1, KernelAckFraction: 0.5}
	case TCPCM:
		return Operations{SendSyscalls: 1, PayloadCopies: 1, KernelAckFraction: 0.5, UsesCM: true}
	case TCPCMNoDelay:
		return Operations{SendSyscalls: 1, PayloadCopies: 1, KernelAckFraction: 1, UsesCM: true}
	case Buffered:
		// Table 1: "Buffered — 1 recv, 2 gettimeofday" on top of TCP/CM.
		return Operations{
			SendSyscalls: 1, PayloadCopies: 1, KernelAckFraction: 1, UsesCM: true,
			RecvSyscalls: 1, AckCopies: 1, Gettimeofdays: 2,
		}
	case ALF:
		// Table 1: "ALF — 1 cm_request (ioctl), 1 extra socket" on top of
		// Buffered.
		return Operations{
			SendSyscalls: 1, PayloadCopies: 1, KernelAckFraction: 1, UsesCM: true,
			RecvSyscalls: 1, AckCopies: 1, Gettimeofdays: 2,
			Ioctls: 1, ExtraSelectDescriptors: 1,
		}
	case ALFNoConnect:
		// Table 1: "ALF/noconnect — 1 cm_notify (ioctl)" on top of ALF.
		return Operations{
			SendSyscalls: 1, PayloadCopies: 1, KernelAckFraction: 1, UsesCM: true,
			RecvSyscalls: 1, AckCopies: 1, Gettimeofdays: 2,
			Ioctls: 2, ExtraSelectDescriptors: 1,
		}
	default:
		return Operations{}
	}
}

// PerPacketCost returns the modelled wall-clock cost of sending one packet of
// the given payload size (bytes) and processing its feedback, for a variant.
func PerPacketCost(v Variant, payloadBytes int, m CostModel) time.Duration {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	ops := OperationsFor(v)
	var cost time.Duration
	cost += time.Duration(ops.SendSyscalls) * m.Syscall
	cost += time.Duration(ops.PayloadCopies) * time.Duration(payloadBytes) * m.CopyPerByte
	cost += time.Duration(ops.RecvSyscalls) * m.Syscall
	cost += time.Duration(ops.AckCopies) * time.Duration(m.AckPacketSize) * m.CopyPerByte
	cost += time.Duration(ops.Gettimeofdays) * m.Gettimeofday
	cost += time.Duration(ops.Ioctls) * m.Ioctl
	cost += time.Duration(ops.ExtraSelectDescriptors) * m.SelectPerDescriptor
	cost += m.KernelPacketProcessing
	cost += time.Duration(float64(m.KernelAckProcessing) * ops.KernelAckFraction)
	if ops.UsesCM {
		cost += m.CMAccounting
	}
	return cost
}

// Throughput returns the CPU-bound throughput in bytes/second implied by the
// per-packet cost for a payload size: the rate at which a single CPU could
// push packets if the network were not the bottleneck.
func Throughput(v Variant, payloadBytes int, m CostModel) float64 {
	c := PerPacketCost(v, payloadBytes, m)
	if c <= 0 {
		return 0
	}
	return float64(payloadBytes) / c.Seconds()
}

// CPUUtilization models the sender CPU utilisation of a variant while
// transmitting at the given network rate (bytes/second) with the given packet
// size: the fraction of each second spent in per-packet processing. Values
// are clamped to [0, 1]. It reproduces Figure 5's comparison between
// TCP/Linux and TCP/CM at link saturation.
func CPUUtilization(v Variant, payloadBytes int, networkBytesPerSec float64, m CostModel) float64 {
	if payloadBytes <= 0 || networkBytesPerSec <= 0 {
		return 0
	}
	pktPerSec := networkBytesPerSec / float64(payloadBytes)
	u := pktPerSec * PerPacketCost(v, payloadBytes, m).Seconds()
	if u > 1 {
		u = 1
	}
	if u < 0 {
		u = 0
	}
	return u
}

// Table1Row is one row of the reproduction of Table 1: the operations an API
// adds relative to the previous (cheaper) one.
type Table1Row struct {
	Variant    Variant
	AddedOps   string
	TotalOps   Operations
	DeltaAtMTU time.Duration // added per-packet cost at a 1460-byte payload
}

// Table1 reproduces the paper's Table 1: cumulative sources of overhead for
// the different APIs relative to sending data with TCP.
func Table1(m CostModel) []Table1Row {
	const payload = 1460
	rows := []struct {
		v     Variant
		added string
	}{
		{ALFNoConnect, "1 cm_notify (ioctl)"},
		{ALF, "1 cm_request (ioctl), 1 extra socket"},
		{Buffered, "1 recv, 2 gettimeofday"},
		{TCPCM, "-baseline-"},
	}
	prev := map[Variant]Variant{
		ALFNoConnect: ALF,
		ALF:          Buffered,
		Buffered:     TCPCMNoDelay,
		TCPCM:        TCPCM,
	}
	out := make([]Table1Row, 0, len(rows))
	for _, r := range rows {
		delta := PerPacketCost(r.v, payload, m) - PerPacketCost(prev[r.v], payload, m)
		out = append(out, Table1Row{
			Variant:    r.v,
			AddedOps:   r.added,
			TotalOps:   OperationsFor(r.v),
			DeltaAtMTU: delta,
		})
	}
	return out
}
