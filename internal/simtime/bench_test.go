package simtime

import (
	"testing"
	"time"
)

// BenchmarkScheduleFire measures one schedule+fire cycle, the atom every
// simulated component is built from.
func BenchmarkScheduleFire(b *testing.B) {
	s := NewScheduler()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, fn)
		s.Step()
	}
}

// BenchmarkScaleEventChurn keeps a dense population of pending timers (as a
// large experiment does: one RTO and one delayed-ack timer per connection)
// while scheduling, cancelling and firing events against that backdrop.
func BenchmarkScaleEventChurn(b *testing.B) {
	const population = 4096
	s := NewScheduler()
	fn := func() {}
	// A standing population of far-future events that are cancelled and
	// rescheduled but never fire, so their handles stay valid.
	events := make([]*Event, population)
	for i := range events {
		events[i] = s.At(time.Hour+time.Duration(i)*time.Millisecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % population
		// Cancel a pending event (eager heap removal) and replace it.
		events[slot].Cancel()
		events[slot] = s.At(time.Hour, fn)
		// Fire one immediate event with the full population pending.
		s.After(0, fn)
		s.Step()
	}
}

// BenchmarkScaleTimerWheel1k drives 1k+ independent timers through repeated
// Reset cycles, the pattern of per-connection retransmission timers.
func BenchmarkScaleTimerWheel1k(b *testing.B) {
	const timers = 1024
	s := NewScheduler()
	tms := make([]Timer, timers)
	for i := range tms {
		tms[i] = s.NewTimer(func() {})
		tms[i].Reset(time.Duration(i+1) * time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tms[i%timers].Reset(time.Duration(timers) * time.Millisecond)
		if i%4 == 0 {
			s.Step()
		}
	}
}
