package faults

import (
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/scenario"
)

// restartSpec is a CM TCP stream over one bottleneck, truncated to the given
// duration, with the sender's CM restarting at t=5s when fault is set.
// Without generators the spec's evolution is duration-independent, so runs
// cut at different times share an identical prefix and delivered-byte deltas
// between cuts measure throughput over that interval.
func restartSpec(duration time.Duration, fault bool) scenario.Spec {
	spec := scenario.PointToPoint(scenario.PointToPointParams{
		Link: netsim.LinkConfig{
			Bandwidth:    8 * netsim.Mbps,
			Delay:        10 * time.Millisecond,
			QueuePackets: 120,
		},
		Workloads: []scenario.Workload{{
			Kind: scenario.KindStream, From: "sender", To: "receiver", CC: scenario.CCCM,
		}},
		Duration: duration,
		Seed:     1,
	})
	if fault {
		spec.Events = []dynamics.Event{
			{At: 5 * time.Second, Kind: dynamics.CMRestart, Host: "sender"},
		}
	}
	return spec
}

// TestRestartCollapseAndRecovery is the cm-restart acceptance check: wiping
// the sender's CM mid-stream visibly dents throughput right after the fault
// (grants, window and RTT state die with the process and the window rebuilds
// from one MTU), and the re-attached client recovers to near the un-faulted
// rate within three seconds. Both effects are measured against a no-fault
// twin of the run over the same intervals.
func TestRestartCollapseAndRecovery(t *testing.T) {
	delivered := func(d time.Duration, fault bool) int64 {
		t.Helper()
		res, err := scenario.Run(restartSpec(d, fault))
		if err != nil {
			t.Fatal(err)
		}
		if vs := Check(res); len(vs) != 0 {
			t.Fatalf("run to %v violated invariants: %v", d, vs)
		}
		var total int64
		for _, f := range res.Flows {
			total += f.Delivered
		}
		return total
	}
	window := func(from, to time.Duration, fault bool) float64 {
		return float64(delivered(to, fault)-delivered(from, fault)) / (to - from).Seconds()
	}

	// Collapse: in the half second after the wipe the faulted run delivers
	// well below what the un-faulted twin does over the same interval.
	dipFault := window(5*time.Second, 5500*time.Millisecond, true)
	dipBase := window(5*time.Second, 5500*time.Millisecond, false)
	if dipBase <= 0 {
		t.Fatal("baseline carries no traffic; test premise broken")
	}
	if dipFault >= 0.85*dipBase {
		t.Errorf("no collapse after restart: faulted %.0f B/s vs baseline %.0f B/s over [5s,5.5s]",
			dipFault, dipBase)
	}
	// Recovery: by 3s after the fault, a 2s window carries at least 80% of
	// the un-faulted rate.
	recFault := window(8*time.Second, 10*time.Second, true)
	recBase := window(8*time.Second, 10*time.Second, false)
	if recFault < 0.8*recBase {
		t.Errorf("no recovery: faulted %.0f B/s vs baseline %.0f B/s over [8s,10s]",
			recFault, recBase)
	}

	// The end-of-run CM state must show exactly one restart, a matching
	// epoch, and grant conservation across the wipe.
	res, err := scenario.Run(restartSpec(10*time.Second, true))
	if err != nil {
		t.Fatal(err)
	}
	var cmr *scenario.CMResult
	for i := range res.CMs {
		if res.CMs[i].Host == "sender" {
			cmr = &res.CMs[i]
		}
	}
	if cmr == nil {
		t.Fatal("no CM result for sender")
	}
	if cmr.Epoch != 1 || cmr.Restarts != 1 {
		t.Fatalf("epoch=%d restarts=%d, want 1/1", cmr.Epoch, cmr.Restarts)
	}
	if got := cmr.GrantsIssued - cmr.GrantsReclaimed - int64(cmr.OutstandingGrants); got != 0 {
		t.Fatalf("grant conservation off by %d across the restart", got)
	}
}
