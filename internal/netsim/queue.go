package netsim

import "fmt"

// DropPolicy selects which packet a full queue discards.
type DropPolicy int

const (
	// DropTail discards the arriving packet when the queue is full. This is
	// the de-facto standard for router buffers that the paper calls out.
	DropTail DropPolicy = iota
	// DropHead discards the oldest queued packet to make room for the
	// arriving one. The paper's adaptive vat application uses
	// drop-from-head behaviour in its application-level buffer.
	DropHead
)

// String names the drop policy.
func (p DropPolicy) String() string {
	switch p {
	case DropTail:
		return "drop-tail"
	case DropHead:
		return "drop-head"
	default:
		return fmt.Sprintf("drop-policy(%d)", int(p))
	}
}

// Control-plane headroom: a queue at its configured limit still admits up to
// RouteReservePackets routing-protocol (ProtoRoute) packets — and, on
// byte-limited queues, RouteReserveBytes extra bytes — beyond it. Without the
// reserve, a data flow saturating a drop-tail buffer starves the control
// plane outright: every periodic refresh tail-drops, the downstream peer ages
// out its entire table, and the "converged" network blackholes itself. Real
// routers solve this the same way, with dedicated buffer for internetwork-
// control traffic. Nothing but the routing protocol sends ProtoRoute, so the
// reserve is invisible to every data-only scenario.
const (
	RouteReservePackets = 8
	RouteReserveBytes   = 16 << 10
)

// QueueStats are cumulative counters maintained by a Queue.
type QueueStats struct {
	EnqueuedPackets int
	EnqueuedBytes   int64
	DroppedPackets  int
	DroppedBytes    int64
	DequeuedPackets int
	DequeuedBytes   int64
	ECNMarked       int
	MaxDepthPackets int
	MaxDepthBytes   int
}

// Queue is a finite FIFO packet buffer with configurable limits and drop
// policy, standing in for a router or NIC transmit buffer.
//
// Limits may be expressed in packets, bytes, or both; a zero limit means
// "unlimited" in that dimension, but at least one limit must be set.
//
// The buffer is a ring: enqueue and dequeue are O(1) and allocation-free in
// steady state. The ring starts at the packet limit or 16 slots, whichever
// is smaller, and grows by doubling (capped at the packet limit) until the
// working depth is reached — an idle link in a 100k-host topology costs a
// few pointers, not its full configured buffer.
type Queue struct {
	limitPackets int
	limitBytes   int
	policy       DropPolicy

	// ECN configuration: when ECNThresholdPackets > 0 and an arriving
	// ECN-capable packet finds the queue at or above the threshold, the
	// packet is marked CE instead of being dropped on overflow.
	ecnThresholdPackets int

	buf   []*Packet // ring buffer of queued packets
	head  int       // index of the oldest packet
	count int       // number of queued packets
	bytes int
	stats QueueStats
}

// NewQueue returns a queue limited to limitPackets packets and limitBytes
// bytes (zero disables the respective limit). It panics if both limits are
// zero or either is negative.
func NewQueue(limitPackets, limitBytes int, policy DropPolicy) *Queue {
	if limitPackets < 0 || limitBytes < 0 {
		panic("netsim: negative queue limit")
	}
	if limitPackets == 0 && limitBytes == 0 {
		panic("netsim: queue needs at least one limit")
	}
	cap := limitPackets
	if cap == 0 || cap > 16 {
		// Unbounded packet count (byte-limited only) or a deep buffer: start
		// small and grow on demand.
		cap = 16
	}
	return &Queue{
		limitPackets: limitPackets,
		limitBytes:   limitBytes,
		policy:       policy,
		buf:          make([]*Packet, cap),
	}
}

// SetECNThreshold enables ECN marking: ECN-capable packets arriving when the
// queue holds at least thresholdPackets packets are marked CE. A zero
// threshold disables marking.
func (q *Queue) SetECNThreshold(thresholdPackets int) {
	q.ecnThresholdPackets = thresholdPackets
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.count }

// Bytes returns the number of queued bytes.
func (q *Queue) Bytes() int { return q.bytes }

// Stats returns a copy of the cumulative counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// Policy returns the queue's drop policy.
func (q *Queue) Policy() DropPolicy { return q.policy }

func (q *Queue) wouldOverflow(p *Packet) bool {
	lp, lb := q.limitPackets, q.limitBytes
	if p.Proto == ProtoRoute {
		// Routing packets may dip into the control-plane reserve.
		if lp > 0 {
			lp += RouteReservePackets
		}
		if lb > 0 {
			lb += RouteReserveBytes
		}
	}
	if lp > 0 && q.count+1 > lp {
		return true
	}
	if lb > 0 && q.bytes+p.Size > lb {
		return true
	}
	return false
}

// popHead removes and returns the oldest packet without touching statistics.
// The caller guarantees the queue is non-empty.
func (q *Queue) popHead() *Packet {
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.count--
	q.bytes -= p.Size
	return p
}

// pushTail appends the packet, growing the ring if it is full. Growth is
// amortised doubling, capped at the packet limit plus the control-plane
// reserve for packet-limited queues (wouldOverflow guarantees count never
// exceeds that).
func (q *Queue) pushTail(p *Packet) {
	if q.count == len(q.buf) {
		newCap := 2 * len(q.buf)
		if q.limitPackets > 0 && newCap > q.limitPackets+RouteReservePackets {
			newCap = q.limitPackets + RouteReservePackets
		}
		grown := make([]*Packet, newCap)
		n := copy(grown, q.buf[q.head:])
		copy(grown[n:], q.buf[:q.head])
		q.buf = grown
		q.head = 0
	}
	tail := q.head + q.count
	if tail >= len(q.buf) {
		tail -= len(q.buf)
	}
	q.buf[tail] = p
	q.count++
	q.bytes += p.Size
}

// Enqueue appends the packet, applying the drop policy on overflow. It
// returns the dropped packet (which may be the argument itself under
// drop-tail, or an older packet under drop-head) or nil if nothing was
// dropped.
//
// A drop-head overflow on a byte-limited queue can evict several packets to
// admit one large arrival; only the last victim is returned, and the queue
// releases the earlier ones back to the pool itself (they are still counted
// in DroppedPackets/DroppedBytes).
func (q *Queue) Enqueue(p *Packet) (dropped *Packet) {
	if p == nil {
		panic("netsim: Enqueue(nil)")
	}
	// ECN marking happens on arrival based on current occupancy, before any
	// drop decision, so marked packets still convey congestion when the
	// queue later drains.
	if q.ecnThresholdPackets > 0 && p.ECT && q.count >= q.ecnThresholdPackets {
		if !p.CE {
			p.CE = true
			q.stats.ECNMarked++
		}
	}
	for q.wouldOverflow(p) {
		switch q.policy {
		case DropHead:
			if q.count == 0 {
				// The arriving packet alone exceeds the byte limit.
				dropped.Release()
				q.recordDrop(p)
				return p
			}
			victim := q.popHead()
			q.recordDrop(victim)
			// Multiple evictions for one arrival: only the final victim is
			// handed to the caller, so release the superseded one here.
			dropped.Release()
			dropped = victim
		default: // DropTail
			q.recordDrop(p)
			return p
		}
	}
	q.pushTail(p)
	q.stats.EnqueuedPackets++
	q.stats.EnqueuedBytes += int64(p.Size)
	if q.count > q.stats.MaxDepthPackets {
		q.stats.MaxDepthPackets = q.count
	}
	if q.bytes > q.stats.MaxDepthBytes {
		q.stats.MaxDepthBytes = q.bytes
	}
	return dropped
}

func (q *Queue) recordDrop(p *Packet) {
	q.stats.DroppedPackets++
	q.stats.DroppedBytes += int64(p.Size)
}

// Dequeue removes and returns the oldest packet, or nil if the queue is
// empty.
func (q *Queue) Dequeue() *Packet {
	if q.count == 0 {
		return nil
	}
	p := q.popHead()
	q.stats.DequeuedPackets++
	q.stats.DequeuedBytes += int64(p.Size)
	return p
}

// Peek returns the oldest packet without removing it, or nil if empty.
func (q *Queue) Peek() *Packet {
	if q.count == 0 {
		return nil
	}
	return q.buf[q.head]
}
