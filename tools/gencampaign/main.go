// Command gencampaign regenerates examples/campaigns/fig3.json from the
// canonical Go definition in internal/experiments, so the checked-in
// campaign file can never drift from RunFig3.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	camp := experiments.Fig3Campaign(experiments.Fig3Config{})
	data, err := json.MarshalIndent(camp, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := os.WriteFile("examples/campaigns/fig3.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
