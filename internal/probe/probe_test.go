package probe

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		want Target
	}{
		{"link[0].queue_depth", Target{Kind: TargetLink, Index: 0, Field: "queue_depth"}},
		{"link[12].delivered_bytes", Target{Kind: TargetLink, Index: 12, Field: "delivered_bytes"}},
		{"host[s0].sent_bytes", Target{Kind: TargetHost, Host: "s0", Field: "sent_bytes"}},
		// Fat-tree style host names contain dots; the field is whatever
		// follows the bracket.
		{"host[h0.e1.p2].received_packets", Target{Kind: TargetHost, Host: "h0.e1.p2", Field: "received_packets"}},
		{"cm[s0].rate", Target{Kind: TargetCM, Host: "s0", Field: "rate"}},
		{"cm[s0].cwnd", Target{Kind: TargetCM, Host: "s0", Field: "cwnd"}},
		{"shard.lookahead", Target{Kind: TargetShard, Field: "lookahead"}},
		{"shard.count", Target{Kind: TargetShard, Field: "count"}},
	}
	for _, c := range cases {
		got, err := ParseTarget(c.in)
		if err != nil {
			t.Fatalf("ParseTarget(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseTarget(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseTargetErrors(t *testing.T) {
	bad := []string{
		"",
		"link[0]",              // missing field
		"link[x].queue_depth",  // non-numeric link index
		"link[-1].queue_depth", // negative link index
		"link[0].bogus",        // unknown field
		"host[].sent_bytes",    // empty host
		"cm[s0].queue_depth",   // field of the wrong kind
		"queue[0].depth",       // unknown kind
		"shard",                // no field
		"shard.bogus",          // unknown shard field
		"link]0[.queue_depth",  // unbalanced brackets
		"host[s0]sent_bytes",   // missing dot
		"cwnd",                 // bare word
	}
	for _, in := range bad {
		if _, err := ParseTarget(in); err == nil {
			t.Fatalf("ParseTarget(%q) should fail", in)
		}
	}
}

func TestSpecSeriesName(t *testing.T) {
	if got := (Spec{Target: "cm[s0].rate"}).SeriesName(); got != "cm[s0].rate" {
		t.Fatalf("default name = %q", got)
	}
	if got := (Spec{Target: "cm[s0].rate", Name: "rate"}).SeriesName(); got != "rate" {
		t.Fatalf("override name = %q", got)
	}
}

func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 0; i < 3; i++ {
		r.Append(Event{At: time.Duration(i) * time.Second, Kind: EvEnqueue, Size: int64(i)})
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatalf("Len/Total = %d/%d", r.Len(), r.Total())
	}
	evs := r.Events()
	if len(evs) != 3 || evs[0].Size != 0 || evs[2].Size != 2 {
		t.Fatalf("events = %+v", evs)
	}
	// Overflow: the ring keeps the newest 4.
	for i := 3; i < 10; i++ {
		r.Append(Event{At: time.Duration(i) * time.Second, Kind: EvDrop, Size: int64(i)})
	}
	if r.Len() != 4 || r.Total() != 10 {
		t.Fatalf("after overflow Len/Total = %d/%d", r.Len(), r.Total())
	}
	evs = r.Events()
	if len(evs) != 4 || evs[0].Size != 6 || evs[3].Size != 9 {
		t.Fatalf("after overflow events = %+v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order: %+v", evs)
		}
	}
}

// The flight recorder must be free to leave attached to hot paths: appending
// must not allocate.
func TestRecorderAppendZeroAlloc(t *testing.T) {
	r := NewRecorder(64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Append(Event{At: time.Second, Kind: EvGrant, Flow: 7, Size: 1448, Note: "queue"})
	})
	if allocs != 0 {
		t.Fatalf("Recorder.Append allocates %v per call, want 0", allocs)
	}
}

func TestRecorderDump(t *testing.T) {
	r := NewRecorder(8)
	r.Append(Event{At: 1500 * time.Millisecond, Kind: EvDrop, Size: 1448, Note: "queue"})
	r.Append(Event{At: 2 * time.Second, Kind: EvGrant, Flow: 3, Size: 512})
	var b bytes.Buffer
	r.Dump(&b, "s0")
	out := b.String()
	for _, want := range []string{"s0 t=1.500000s pkt-drop size=1448 note=queue", "cm-grant flow=3 size=512"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EvEnqueue, EvDrop, EvDeliver, EvRequest, EvGrant, EvNotify, EvRoute, EvFault}
	seen := make(map[string]bool)
	for _, k := range kinds {
		s := k.String()
		if s == "unknown" || seen[s] {
			t.Fatalf("kind %d stringifies to %q", k, s)
		}
		seen[s] = true
	}
}

func TestTimelineTraceEventJSON(t *testing.T) {
	tl := NewTimeline("shard 0", "shard 1", "coordinator")
	tl.Add(0, Span{Name: "window", Start: time.Millisecond, Dur: 2 * time.Millisecond,
		VirtStart: 0, VirtEnd: 20 * time.Millisecond})
	tl.Add(2, Span{Name: "barrier", Start: 3 * time.Millisecond, Dur: 100 * time.Microsecond,
		VirtStart: 20 * time.Millisecond, VirtEnd: 20 * time.Millisecond, Count: 5})
	if tl.SpanCount() != 2 {
		t.Fatalf("SpanCount = %d", tl.SpanCount())
	}
	var b bytes.Buffer
	if err := tl.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, b.String())
	}
	// 3 thread_name metadata records + 2 spans.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("traceEvents = %d, want 5", len(doc.TraceEvents))
	}
	var windows, metas int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			metas++
		case "X":
			windows++
			if ev.Name == "window" && (ev.Ts != 1000 || ev.Dur != 2000 || ev.Tid != 0) {
				t.Fatalf("window span = %+v", ev)
			}
			if ev.Name == "barrier" && ev.Args["count"].(float64) != 5 {
				t.Fatalf("barrier span args = %+v", ev.Args)
			}
		}
	}
	if metas != 3 || windows != 2 {
		t.Fatalf("metas/windows = %d/%d", metas, windows)
	}
}
