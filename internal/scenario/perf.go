package scenario

import (
	"repro/internal/probe"
	"repro/internal/simtime"
)

// PerfKind is one event kind's aggregate in a Result's Perf block.
type PerfKind struct {
	Kind    string `json:"kind"`
	Count   uint64 `json:"count"`
	TotalNs int64  `json:"total_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// Perf is the per-event-kind wall-clock cost attribution of a run, populated
// by Finish when EnableProfiling was called before the run (summed across
// shards for a sharded build). It reports where the run's real time went —
// execution telemetry, not simulation state: the simulated outcome is
// byte-identical with or without it (the byte-identity tests strip this block
// before comparing), and it is omitted from JSON when profiling is off.
type Perf struct {
	// Events is the number of profiled events; TotalNs their summed
	// wall-clock cost. Kinds lists the per-kind aggregates in simtime.Kind
	// order, zero-count kinds omitted.
	Events  uint64     `json:"events"`
	TotalNs int64      `json:"total_ns"`
	Kinds   []PerfKind `json:"kinds"`
}

// EnableProfiling arms the per-event-kind profiler on every scheduler of the
// build (the single serial scheduler, or each shard's). Must be called after
// Build and before the run. Profiling observes event execution only — it
// never reads or writes simulation state, consumes no randomness and
// schedules nothing — so an armed run produces the identical Result (minus
// the Perf block itself).
func (s *Sim) EnableProfiling() {
	s.profiled = true
	if s.shard != nil {
		for _, ss := range s.shard.states {
			ss.prof = ss.sched.EnableProfile()
		}
		return
	}
	s.sched.EnableProfile()
}

// profileTotal sums the armed profilers across schedulers; zero if profiling
// was never enabled.
func (s *Sim) profileTotal() simtime.ProfileSnapshot {
	var total simtime.ProfileSnapshot
	if s.shard != nil {
		for _, ss := range s.shard.states {
			if ss.prof != nil {
				total = total.Add(ss.prof.Snapshot())
			}
		}
		return total
	}
	if p := s.sched.Profiling(); p != nil {
		total = p.Snapshot()
	}
	return total
}

// perfBlock assembles the Result.Perf block from the armed profilers, or nil
// when profiling is off.
func (s *Sim) perfBlock() *Perf {
	if !s.profiled {
		return nil
	}
	snap := s.profileTotal()
	p := &Perf{Events: snap.Events(), TotalNs: snap.TotalNs()}
	for k := simtime.Kind(0); k < simtime.NumKinds; k++ {
		if snap[k].Count == 0 {
			continue
		}
		p.Kinds = append(p.Kinds, PerfKind{
			Kind:    k.String(),
			Count:   snap[k].Count,
			TotalNs: snap[k].TotalNs,
			MaxNs:   snap[k].MaxNs,
		})
	}
	return p
}

// kindCosts converts a profiler snapshot (typically a window delta) into the
// timeline span breakdown, in simtime.Kind order with zero-count kinds
// omitted.
func kindCosts(snap simtime.ProfileSnapshot) []probe.KindCost {
	var out []probe.KindCost
	for k := simtime.Kind(0); k < simtime.NumKinds; k++ {
		if snap[k].Count == 0 {
			continue
		}
		out = append(out, probe.KindCost{Kind: k.String(), Count: snap[k].Count, Ns: snap[k].TotalNs})
	}
	return out
}
