// Package stats is the cross-run aggregation layer of the sweep engine:
// order statistics and moments over the replicate values of one metric at one
// sweep point. It is pure arithmetic with no dependencies on the simulator,
// and every function is deterministic — aggregating the same values in the
// same order always produces bit-identical output, which is what lets a
// campaign's CSV be byte-compared across serial and parallel executions.
package stats

import (
	"math"
	"sort"
)

// Summary describes one metric across the replicates of a sweep point.
type Summary struct {
	// N is the number of values aggregated.
	N int `json:"n"`
	// Mean and Stddev are the sample mean and the sample (n-1) standard
	// deviation (zero when N < 2).
	Mean   float64 `json:"mean"`
	Stddev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// P50 and P99 are nearest-rank percentiles (see Percentile).
	P50 float64 `json:"p50"`
	P99 float64 `json:"p99"`
}

// Summarize aggregates the values. It does not modify its argument; an empty
// slice yields the zero Summary.
func Summarize(values []float64) Summary {
	n := len(values)
	if n == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range values {
		sum += v
	}
	mean := sum / float64(n)
	var stddev float64
	if n > 1 {
		var ss float64
		for _, v := range values {
			d := v - mean
			ss += d * d
		}
		stddev = math.Sqrt(ss / float64(n-1))
	}
	return Summary{
		N:      n,
		Mean:   mean,
		Stddev: stddev,
		Min:    sorted[0],
		Max:    sorted[n-1],
		P50:    Percentile(sorted, 0.50),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the nearest-rank percentile of ascending-sorted values:
// the smallest element such that at least q of the distribution is at or
// below it, i.e. sorted[ceil(q*n)-1]. q is clamped to [0, 1]; an empty slice
// yields 0.
func Percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	rank := int(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}
