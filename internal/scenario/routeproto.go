// Protocol-mode routing: the glue between the interned route engine and the
// internal/routeproto distance-vector control plane (Spec.RouteSync ==
// RouteSyncProtocol).
//
// In oracle mode (the default) the engine recomputes tables instantly and
// globally at every topology event — the simulator plays omniscient routing
// god. In protocol mode the same adjacency carries a real control plane: one
// routeproto.Agent per node (per router in hier mode) detects link flips
// locally, originates advertise/withdraw updates, and propagates them
// hop-by-hop as ordinary simulated packets that queue, drop and cross shard
// barriers like data traffic. Tables update incrementally per received
// message, so a failure opens a measurable blackhole window that closes when
// the protocol converges — the behaviour the oracle hides.
//
// The split of responsibilities in hier mode mirrors what a real hierarchical
// IGP does: the locally-derivable part of each table (exact entries for live
// children, the rotated default up) is repaired immediately by the local
// failure detector, while every name-suffix *domain* entry — own pod, remote
// pods, child routers — is owned by the distance-vector exchange. Each router
// additionally pins a permanent nil (reject) entry for the domain it covers:
// traffic for a dead child then drops at the covering router instead of
// bouncing off the default route into a forwarding loop.
//
// Everything here runs either on an agent's own scheduler (message handling,
// timers) or in single-threaded control phases (build, barriers, dynamics
// hooks), the same ownership discipline as the rest of the scenario layer;
// sharded runs stay byte-identical to serial ones.
package scenario

import (
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/routeproto"
)

// routeAuditLimit bounds the O(pairs × path) end-of-run forwarding audit.
// Beyond it the audit fields stay zero and AuditedPairs reports 0.
const routeAuditLimit = 512

// protoPlane owns the protocol-mode control plane of one built simulation.
type protoPlane struct {
	sim *Sim
	eng *routeEngine
	cfg routeproto.Config

	// agents[v] is node v's protocol speaker: every node in exact mode,
	// routers only in hier mode (leaves keep purely local tables).
	agents []*routeproto.Agent
	// edgeNb[k] is the neighbor index the adjacency entry k corresponds to
	// within agents[adjFrom[k]], or -1 when either endpoint runs no agent.
	edgeNb []int32
	// edgeOf maps a directional link back to its adjacency index.
	edgeOf map[*netsim.Link]int32
	// defMirror[v] is the last default route hierLocal installed on node v,
	// kept so default changes are counted like table entries.
	defMirror []*netsim.Link

	// totalChanged accumulates every forwarding-table change the plane
	// applied (agent installs, local hier repairs); topologyChanged reports
	// deltas of it, matching the oracle's changed-entry accounting.
	// installChanged is its value right after the initial installation, so
	// RoutingResult.TableChanges reports only post-install churn.
	totalChanged   int
	installChanged int
	installed      bool

	// Convergence bookkeeping (armed at Start, sampled at a run barrier).
	lastTopo  time.Duration // last topology-affecting event, -1 if none
	bound     time.Duration // computed convergence bound
	deadline  time.Duration // lastTopo + bound (0 when no events)
	baseTaken bool          // baseline drop counters captured at deadline
	baseDrops int64         // route-drop sum at the deadline
}

// newProtoPlane builds the control plane over a freshly interned engine:
// agents, adjacency→neighbor mapping, origins, and the warm-start RIB seeding
// that makes time zero match the oracle's converged state (so a protocol run
// starts clean and only *events* open blackhole windows).
func newProtoPlane(sim *Sim) *protoPlane {
	e := sim.routing
	pp := &protoPlane{
		sim:       sim,
		eng:       e,
		cfg:       sim.Spec.routeProtoConfig(),
		agents:    make([]*routeproto.Agent, e.n),
		edgeNb:    make([]int32, len(e.adjLink)),
		edgeOf:    make(map[*netsim.Link]int32, len(e.adjLink)),
		defMirror: make([]*netsim.Link, e.n),
	}
	for k := range pp.edgeNb {
		pp.edgeNb[k] = -1
		pp.edgeOf[e.adjLink[k]] = int32(k)
	}
	for v := int32(0); v < int32(e.n); v++ {
		if e.hier && !e.isRouter[v] {
			continue
		}
		host := e.hosts[v]
		seed := sim.Spec.Seed + int64(v+1)*subSeedStride + 0x40e7
		pp.agents[v] = routeproto.NewAgent(host, sim.clockFor(e.names[v]), pp.cfg, seed, pp.installFunc(v))
	}
	// Neighbor slots in adjacency order: deterministic, and the same tie-break
	// order (lowest slot wins) on every run.
	for k := range e.adjLink {
		u, v := e.adjFrom[k], e.adjTo[k]
		if pp.agents[u] == nil || pp.agents[v] == nil {
			continue
		}
		pp.edgeNb[k] = int32(pp.agents[u].AddNeighbor(e.names[v], e.adjLink[k]))
	}
	if e.hier {
		pp.seedHier()
	} else {
		pp.seedExact()
	}
	return pp
}

// installFunc returns node v's table-install callback: the protocol's only
// write path into the forwarding state. Exact mode installs host entries,
// hier mode domain entries; a nil link withdraws. A router's own covering
// domain is never touched — it stays the permanent reject entry install()
// pins at setup.
func (pp *protoPlane) installFunc(v int32) routeproto.InstallFunc {
	e := pp.eng
	h := e.hosts[v]
	if !e.hier {
		return func(dest string, l *netsim.Link, metric int) {
			if l == nil {
				if h.RemoveRoute(dest) {
					pp.totalChanged++
				}
			} else if h.SetRoute(dest, l) {
				pp.totalChanged++
			}
		}
	}
	own := e.domains[v]
	return func(dest string, l *netsim.Link, metric int) {
		if dest == own {
			return
		}
		if l == nil {
			if h.RemoveDomainRoute(dest) {
				pp.totalChanged++
			}
		} else if h.SetDomainRoute(dest, l) {
			pp.totalChanged++
		}
	}
}

// seedExact warm-starts every agent's RIB from the engine's distance matrix:
// agent u's advertisement column for neighbor w holds dist(w, dest)+1, which
// is exactly what w's first full update would carry. Start() then installs
// the resulting bests silently, so the t=0 tables equal the oracle's up to
// tie-breaks the protocol itself would have produced.
func (pp *protoPlane) seedExact() {
	e := pp.eng
	for s := 0; s < e.n; s++ {
		e.bfs(int32(s), e.dist[s*e.n:(s+1)*e.n])
	}
	for v := int32(0); v < int32(e.n); v++ {
		ag := pp.agents[v]
		ag.Originate(e.names[v])
		for k := e.adjOff[v]; k < e.adjOff[v+1]; k++ {
			j := pp.edgeNb[k]
			if j < 0 {
				continue
			}
			row := e.dist[int(e.adjTo[k])*e.n : (int(e.adjTo[k])+1)*e.n]
			for d := int32(0); d < int32(e.n); d++ {
				if d == v || row[d] < 0 {
					continue
				}
				ag.SeedRoute(e.names[d], int(j), int(row[d])+1)
			}
		}
	}
}

// seedHier warm-starts the router agents: every router originates the domain
// it covers at metric 0, and a per-domain multi-source BFS over the
// router-only subgraph provides the neighbor metrics. Destinations are
// domains, not hosts, so RIB size is O(routers × domains).
func (pp *protoPlane) seedHier() {
	e := pp.eng
	originators := make(map[string][]int32)
	var order []string
	for v := int32(0); v < int32(e.n); v++ {
		if pp.agents[v] == nil {
			continue
		}
		d := e.domains[v]
		if _, ok := originators[d]; !ok {
			order = append(order, d)
		}
		originators[d] = append(originators[d], v)
		pp.agents[v].Originate(d)
	}
	dist := make([]int32, e.n)
	queue := make([]int32, 0, e.n)
	for _, dom := range order {
		for i := range dist {
			dist[i] = -1
		}
		q := queue[:0]
		for _, r := range originators[dom] {
			dist[r] = 0
			q = append(q, r)
		}
		for qi := 0; qi < len(q); qi++ {
			u := q[qi]
			for k := e.adjOff[u]; k < e.adjOff[u+1]; k++ {
				if pp.edgeNb[k] < 0 {
					continue
				}
				v := e.adjTo[k]
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					q = append(q, v)
				}
			}
		}
		for v := int32(0); v < int32(e.n); v++ {
			if pp.agents[v] == nil || e.domains[v] == dom {
				continue
			}
			for k := e.adjOff[v]; k < e.adjOff[v+1]; k++ {
				j := pp.edgeNb[k]
				if j < 0 || dist[e.adjTo[k]] < 0 {
					continue
				}
				pp.agents[v].SeedRoute(dom, int(j), int(dist[e.adjTo[k]])+1)
			}
		}
	}
}

// install performs the initial table installation (the protocol-mode
// equivalent of the engine's installAll): local hier tables and reject
// entries, then every agent's warm-started bests, then the mirror sync that
// arms flip detection.
func (pp *protoPlane) install() int {
	e := pp.eng
	before := pp.totalChanged
	if e.hier {
		for v := int32(0); v < int32(e.n); v++ {
			pp.hierLocal(v)
		}
		for v := int32(0); v < int32(e.n); v++ {
			if pp.agents[v] == nil {
				continue
			}
			if e.hosts[v].SetDomainRoute(e.domains[v], nil) {
				pp.totalChanged++
			}
		}
	}
	for v := int32(0); v < int32(e.n); v++ {
		if ag := pp.agents[v]; ag != nil {
			if err := ag.Start(); err != nil {
				// Impossible by construction: each host binds the protocol
				// port exactly once.
				panic(err)
			}
		}
	}
	e.syncMirror()
	pp.installChanged = pp.totalChanged
	return pp.totalChanged - before
}

// topologyChanged is the protocol-mode recomputeRoutes: instead of a global
// recompute it runs only the *local* part of failure handling — each flipped
// link's transmitting endpoint repairs its locally-derivable table state and
// notifies its agent's failure detector. Everything beyond one hop travels
// through the simulated network as protocol messages. Returns the number of
// table entries changed synchronously (the asynchronous churn shows up in
// RoutingResult.TableChanges at the end).
func (pp *protoPlane) topologyChanged() int {
	if !pp.installed {
		pp.installed = true
		return pp.install()
	}
	e := pp.eng
	flips := e.detectFlips()
	if len(flips) == 0 {
		return 0
	}
	before := pp.totalChanged
	if e.hier {
		for i, k := range flips {
			u := e.adjFrom[k]
			dup := false
			for _, prev := range flips[:i] {
				if e.adjFrom[prev] == u {
					dup = true
					break
				}
			}
			if !dup {
				pp.hierLocal(u)
			}
		}
	}
	for _, k := range flips {
		if j := pp.edgeNb[k]; j >= 0 {
			pp.agents[e.adjFrom[k]].LinkState(int(j), !e.downMirror[k])
		}
	}
	return pp.totalChanged - before
}

// hierLocal rebuilds the locally-derivable part of node u's hier table: an
// exact entry per live child and the rotated default up link — the same
// choices installHierNode makes, minus the domain entries the protocol owns.
func (pp *protoPlane) hierLocal(u int32) {
	e := pp.eng
	lv := e.level[u]
	routes := make(map[string]*netsim.Link)
	var def *netsim.Link
	up := e.queue[:0]
	for k := e.adjOff[u]; k < e.adjOff[u+1]; k++ {
		v := e.adjTo[k]
		if e.level[v] == lv-1 {
			up = append(up, k)
			continue
		}
		if e.adjLink[k].IsDown() {
			continue
		}
		routes[e.names[v]] = e.adjLink[k]
	}
	if len(up) > 0 {
		start := int(u) % len(up)
		for i := 0; i < len(up); i++ {
			k := up[(start+i)%len(up)]
			if !e.adjLink[k].IsDown() {
				def = e.adjLink[k]
				break
			}
		}
	}
	e.queue = up[:0]
	pp.totalChanged += e.hosts[u].InstallRoutes(routes)
	if pp.defMirror[u] != def {
		pp.defMirror[u] = def
		e.hosts[u].SetDefaultRoute(def)
		pp.totalChanged++
	}
}

// applyRouteFaults realises a set-route-faults event: the injection rates
// apply to the agents transmitting on the targeted link direction(s).
func (pp *protoPlane) applyRouteFaults(ev dynamics.Event) {
	d := pp.sim.duplexes[ev.Link]
	apply := func(l *netsim.Link) {
		k, ok := pp.edgeOf[l]
		if !ok {
			return
		}
		j := pp.edgeNb[k]
		if j < 0 {
			return
		}
		pp.agents[pp.eng.adjFrom[k]].SetFaults(int(j), ev.DropRate, ev.DelayRate, ev.Delay, ev.DuplicateRate)
	}
	switch ev.Direction {
	case dynamics.DirForward:
		apply(d.Forward)
	case dynamics.DirReverse:
		apply(d.Reverse)
	default:
		apply(d.Forward)
		apply(d.Reverse)
	}
}

// rename re-keys node v's control-plane identity after a renumbering host
// re-attach: the agent originates the new name (advertised by the next
// triggered update), stops originating the old one (peers age it out via
// route expiry — the deliberate "old routes age out" semantics of the
// renumber policy), and every adjacent agent re-labels its neighbor slot so
// the renamed host's messages keep resolving.
func (pp *protoPlane) rename(v int32, old, newName string) {
	ag := pp.agents[v]
	if ag == nil {
		return
	}
	ag.Unoriginate(old)
	ag.Originate(newName)
	e := pp.eng
	for k := e.adjOff[v]; k < e.adjOff[v+1]; k++ {
		w := e.adjTo[k]
		if pp.agents[w] == nil {
			continue
		}
		for kr := e.adjOff[w]; kr < e.adjOff[w+1]; kr++ {
			if e.adjTo[kr] == v && pp.edgeNb[kr] >= 0 {
				pp.agents[w].RenameNeighbor(int(pp.edgeNb[kr]), newName)
			}
		}
	}
}

// arm computes the convergence deadline from the expanded event list and —
// when the deadline falls inside the run — registers the barrier observer
// that captures the baseline route-drop counters exactly at it. Called from
// Start, after every event expansion.
func (pp *protoPlane) arm() {
	last := time.Duration(-1)
	for _, ev := range pp.sim.Spec.Events {
		switch ev.Kind {
		case dynamics.LinkDown, dynamics.LinkUp, dynamics.HostMove, dynamics.HostAttach:
			at := ev.At
			if at < 0 {
				at = 0
			}
			if at > last {
				last = at
			}
		}
	}
	pp.lastTopo = last
	if last < 0 {
		// No topology events: converged from t=0 with a zero baseline.
		pp.deadline = 0
		pp.baseTaken = true
		return
	}
	pp.bound = pp.convergenceBound()
	pp.deadline = last + pp.bound
	if pp.deadline <= pp.sim.Spec.Duration {
		pp.sim.addObserver([]time.Duration{pp.deadline}, func(time.Duration) {
			pp.baseDrops = pp.routeDrops()
			pp.baseTaken = true
		})
	}
}

// convergenceBound is the formula documented in docs/ROUTING.md: after the
// last topology event, stale state can survive one full route-expiry period
// (plus the refresh-tick sweep granularity that detects it); holddown defers
// one final selection; and the distance-vector exchange takes at most
// Infinity metric-counting steps per destination — every per-node metric
// moves monotonically toward the fixpoint, each step propagating within one
// triggered-update jitter plus one link traversal. One periodic refresh
// additionally covers any triggered update lost to fault injection *before*
// the faults cleared. (The bound presumes control-plane fault rates are zero
// after the last topology event; campaigns clear them first.)
func (pp *protoPlane) convergenceBound() time.Duration {
	maxDelay := time.Duration(0)
	for _, ls := range pp.sim.Spec.Links {
		if ls.Delay > maxDelay {
			maxDelay = ls.Delay
		}
	}
	for _, ev := range pp.sim.Spec.Events {
		if ev.Kind == dynamics.SetDelay && ev.Delay > maxDelay {
			maxDelay = ev.Delay
		}
	}
	perStep := pp.cfg.TriggerDelayMax + maxDelay + 5*time.Millisecond
	return pp.cfg.ExpireAfter + pp.cfg.Holddown + pp.cfg.RefreshInterval +
		time.Duration(pp.cfg.Infinity)*perStep
}

// routeDrops sums the four routing-failure drop counters across every host:
// the blackhole metric the convergence invariant is defined over.
func (pp *protoPlane) routeDrops() int64 {
	var sum int64
	for _, h := range pp.eng.hosts {
		st := h.Stats()
		sum += int64(st.NoRouteDrops + st.RouteMissDrops + st.ForwardMissDrops + st.TTLExpiredDrops)
	}
	return sum
}

// audit walks every host pair's next-hop chain through the installed tables
// at end of run: a chain longer than n hops is a forwarding loop; a chain
// that dead-ends while the pair is reachable over live links (transiting
// only forwarding nodes) is an unreached pair; a pair with no live path at
// all is a partitioned pair (whose traffic is *supposed* to keep dropping).
// Only leaf (non-router) pairs are walked: routers are not addressable
// endpoints in hier mode — they sit above the name hierarchy and are reached
// only through defaults, in oracle mode just the same. Skipped above
// routeAuditLimit nodes.
func (pp *protoPlane) audit() (pairs, loops, unreached, partitioned int) {
	e := pp.eng
	if e.n > routeAuditLimit {
		return 0, 0, 0, 0
	}
	reach := make([]bool, e.n)
	queue := make([]int32, 0, e.n)
	for src := int32(0); src < int32(e.n); src++ {
		if e.isRouter[src] {
			continue
		}
		// Live reachability from src, transiting forwarding nodes only.
		for i := range reach {
			reach[i] = false
		}
		q := queue[:0]
		reach[src] = true
		q = append(q, src)
		for qi := 0; qi < len(q); qi++ {
			u := q[qi]
			if u != src && !e.isRouter[u] {
				continue // a leaf receives but does not transit
			}
			for k := e.adjOff[u]; k < e.adjOff[u+1]; k++ {
				if e.adjLink[k].IsDown() {
					continue
				}
				if v := e.adjTo[k]; !reach[v] {
					reach[v] = true
					q = append(q, v)
				}
			}
		}
		for dst := int32(0); dst < int32(e.n); dst++ {
			if dst == src || e.isRouter[dst] {
				continue
			}
			pairs++
			delivered, looped := pp.walk(src, dst)
			switch {
			case looped:
				loops++
			case !reach[dst]:
				partitioned++
			case !delivered:
				unreached++
			}
		}
	}
	return pairs, loops, unreached, partitioned
}

// walk emulates forwarding one packet from src to dst over the installed
// tables and live links, without TTL (any revisit within n+1 hops is a loop).
func (pp *protoPlane) walk(src, dst int32) (delivered, looped bool) {
	e := pp.eng
	dstName := e.names[dst]
	cur := src
	for step := 0; step <= e.n; step++ {
		if cur == dst {
			return true, false
		}
		h := e.hosts[cur]
		if cur != src && !h.Forwarding() {
			return false, false // dies as a route-miss at a leaf
		}
		l := h.RouteTo(dstName)
		if l == nil || l.IsDown() {
			return false, false
		}
		k, ok := pp.edgeOf[l]
		if !ok {
			return false, false
		}
		cur = e.adjTo[k]
	}
	return false, true
}

// RoutingResult summarises the protocol control plane of one run: aggregate
// message/refresh/fault statistics across every agent, the convergence
// verdict, and the end-of-run forwarding audit. Present in the Result only
// for protocol-mode runs, so oracle-mode results are byte-identical to
// earlier releases.
type RoutingResult struct {
	// Mode is "exact" or "hier".
	Mode   string `json:"mode"`
	Agents int    `json:"agents"`
	routeproto.Stats
	// TableChanges counts every forwarding-table entry the control plane
	// changed over the run (initial installation excluded).
	TableChanges int `json:"table_changes"`
	// PendingAtEnd counts agents still holding an unflushed triggered update
	// at end of run — nonzero means the protocol had not quiesced.
	PendingAtEnd int `json:"pending_at_end"`
	// LastTopologyChange is the time of the last topology-affecting event
	// (zero when the run had none); ConvergenceBound the computed bound, and
	// ConvergenceDeadline their sum — after it, the run must be blackhole-
	// free. Converged reports that the deadline fell inside the run.
	LastTopologyChange  time.Duration `json:"last_topology_change"`
	ConvergenceBound    time.Duration `json:"convergence_bound,omitempty"`
	ConvergenceDeadline time.Duration `json:"convergence_deadline"`
	Converged           bool          `json:"converged"`
	// PostConvergenceRouteDrops counts routing-failure drops (no-route,
	// route-miss, forward-miss, TTL) after the deadline; zero is the
	// "bounded blackhole window" guarantee.
	PostConvergenceRouteDrops int64 `json:"post_convergence_route_drops"`
	// AuditedPairs/LoopPairs/UnreachedPairs/PartitionedPairs report the
	// end-of-run forwarding audit (all zero when the topology exceeds
	// routeAuditLimit nodes). Partitioned pairs have no live path at all;
	// their traffic keeps dropping after convergence by design, so the
	// blackhole-window invariant only applies when they are zero.
	AuditedPairs     int `json:"audited_pairs"`
	LoopPairs        int `json:"loop_pairs"`
	UnreachedPairs   int `json:"unreached_pairs"`
	PartitionedPairs int `json:"partitioned_pairs"`
}

// result assembles the RoutingResult at collection time. The audit and the
// post-convergence accounting only apply to a finished run (collect may also
// be called mid-run for snapshots).
func (pp *protoPlane) result() *RoutingResult {
	e := pp.eng
	rr := &RoutingResult{Mode: RoutingExact, TableChanges: pp.totalChanged - pp.installChanged}
	if e.hier {
		rr.Mode = RoutingHier
	}
	for _, ag := range pp.agents {
		if ag == nil {
			continue
		}
		rr.Agents++
		rr.Stats.Add(ag.Stats())
		if ag.Pending() {
			rr.PendingAtEnd++
		}
	}
	if pp.lastTopo > 0 {
		rr.LastTopologyChange = pp.lastTopo
	}
	if pp.lastTopo >= 0 {
		rr.ConvergenceBound = pp.bound
	}
	rr.ConvergenceDeadline = pp.deadline
	now := pp.sim.now()
	rr.Converged = pp.baseTaken && pp.deadline <= now
	if rr.Converged {
		rr.PostConvergenceRouteDrops = pp.routeDrops() - pp.baseDrops
	}
	if now >= pp.sim.Spec.Duration {
		rr.AuditedPairs, rr.LoopPairs, rr.UnreachedPairs, rr.PartitionedPairs = pp.audit()
	}
	return rr
}
