package netsim

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

type orderRecorder struct{ got []int }

func (r *orderRecorder) Receive(pkt *Packet) {
	r.got = append(r.got, pkt.Payload.(int))
	pkt.Release()
}

// Simultaneous deliveries on one link direction — an infinitely fast link
// serialises a whole burst at one instant, so every hand-up shares
// (time, stamp, key) — must arrive in send order via the explicit link-local
// delivery sequence.
func TestSameDirectionSimultaneousDeliveryOrder(t *testing.T) {
	sched := simtime.NewScheduler()
	rec := &orderRecorder{}
	l := NewLink(sched, LinkConfig{Name: "burst", Delay: 5 * time.Millisecond}, rec)

	for i := 0; i < 8; i++ {
		p := NewPacket()
		p.Size = 100
		p.Payload = i
		l.Send(p)
	}
	sched.Run()

	if len(rec.got) != 8 {
		t.Fatalf("delivered %d packets, want 8", len(rec.got))
	}
	for i, v := range rec.got {
		if v != i {
			t.Fatalf("delivery order %v, want send order", rec.got)
		}
	}
}

// The delivery sequence must be explicit on the hand-up, not inherited from
// scheduler insertion order: capture a burst's remote deliveries, inject them
// into a fresh scheduler in REVERSE order, and check the hand-ups still fire
// in the original send order. (Before the explicit sub-sequence this ordering
// leaned on InjectAt insertion order, which an optimistic executor cannot
// guarantee.)
func TestRemoteDeliverySeqRestoresSendOrder(t *testing.T) {
	send := simtime.NewScheduler()
	l := NewLink(send, LinkConfig{Name: "burst", Delay: 5 * time.Millisecond}, nil)

	type capture struct {
		pkt          *Packet
		arrive, sent time.Duration
		seq          uint32
	}
	var caps []capture
	l.SetRemoteDeliver(func(pkt, dup *Packet, arrive, sent time.Duration, seq uint32) {
		if dup != nil {
			t.Fatal("unexpected duplicate")
		}
		caps = append(caps, capture{pkt, arrive, sent, seq})
	})

	for i := 0; i < 4; i++ {
		p := NewPacket()
		p.Size = 100
		p.Payload = i
		l.Send(p)
	}
	send.Run()
	if len(caps) != 4 {
		t.Fatalf("captured %d remote deliveries, want 4", len(caps))
	}
	for i := 1; i < len(caps); i++ {
		if caps[i].seq <= caps[i-1].seq {
			t.Fatalf("delivery sequence not increasing: %d then %d", caps[i-1].seq, caps[i].seq)
		}
	}

	recv := simtime.NewScheduler()
	rec := &orderRecorder{}
	l.SetDestination(rec)
	for i := len(caps) - 1; i >= 0; i-- { // worst-case insertion order
		c := caps[i]
		recv.InjectAt(c.arrive, c.sent, l.SortKey(), c.seq, simtime.KindPktDeliver,
			func(x any) { l.DeliverRemote(x.(*Packet), nil, recv.Now()) }, c.pkt)
	}
	recv.Run()

	if len(rec.got) != 4 {
		t.Fatalf("handed up %d packets, want 4", len(rec.got))
	}
	for i, v := range rec.got {
		if v != i {
			t.Fatalf("hand-up order %v, want original send order", rec.got)
		}
	}
}
