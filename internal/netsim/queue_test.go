package netsim

import (
	"testing"
	"testing/quick"
)

func mkpkt(size int) *Packet {
	return &Packet{
		Proto: ProtoUDP,
		Src:   Addr{Host: "a", Port: 1000},
		Dst:   Addr{Host: "b", Port: 2000},
		Size:  size,
	}
}

func TestQueueFIFOOrder(t *testing.T) {
	q := NewQueue(10, 0, DropTail)
	var in []*Packet
	for i := 0; i < 5; i++ {
		p := mkpkt(100 + i)
		in = append(in, p)
		if d := q.Enqueue(p); d != nil {
			t.Fatalf("unexpected drop on enqueue %d", i)
		}
	}
	for i := 0; i < 5; i++ {
		got := q.Dequeue()
		if got != in[i] {
			t.Fatalf("dequeue %d returned wrong packet", i)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue on empty queue should return nil")
	}
}

func TestQueuePacketLimitDropTail(t *testing.T) {
	q := NewQueue(3, 0, DropTail)
	for i := 0; i < 3; i++ {
		if d := q.Enqueue(mkpkt(100)); d != nil {
			t.Fatalf("drop before limit at %d", i)
		}
	}
	extra := mkpkt(100)
	if d := q.Enqueue(extra); d != extra {
		t.Fatal("drop-tail should drop the arriving packet")
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d, want 3", q.Len())
	}
	st := q.Stats()
	if st.DroppedPackets != 1 || st.DroppedBytes != 100 {
		t.Fatalf("drop stats = %+v", st)
	}
}

func TestQueueByteLimit(t *testing.T) {
	q := NewQueue(0, 250, DropTail)
	if q.Enqueue(mkpkt(100)) != nil || q.Enqueue(mkpkt(100)) != nil {
		t.Fatal("unexpected drops under byte limit")
	}
	p := mkpkt(100)
	if q.Enqueue(p) != p {
		t.Fatal("expected byte-limit overflow drop")
	}
	if q.Bytes() != 200 {
		t.Fatalf("Bytes = %d, want 200", q.Bytes())
	}
	// A smaller packet still fits.
	if q.Enqueue(mkpkt(50)) != nil {
		t.Fatal("50-byte packet should fit in remaining 50 bytes")
	}
}

func TestQueueDropHeadEvictsOldest(t *testing.T) {
	q := NewQueue(2, 0, DropHead)
	a, b, c := mkpkt(10), mkpkt(20), mkpkt(30)
	q.Enqueue(a)
	q.Enqueue(b)
	dropped := q.Enqueue(c)
	if dropped != a {
		t.Fatal("drop-head should evict the oldest packet")
	}
	if q.Dequeue() != b || q.Dequeue() != c {
		t.Fatal("queue should now contain b then c")
	}
}

func TestQueueDropHeadOversizedPacket(t *testing.T) {
	q := NewQueue(0, 100, DropHead)
	big := mkpkt(500)
	if q.Enqueue(big) != big {
		t.Fatal("an oversized packet cannot be admitted even under drop-head")
	}
	if q.Len() != 0 {
		t.Fatal("queue should remain empty")
	}
}

func TestQueueECNMarking(t *testing.T) {
	q := NewQueue(10, 0, DropTail)
	q.SetECNThreshold(2)
	q.Enqueue(mkpkt(10))
	q.Enqueue(mkpkt(10))
	ect := mkpkt(10)
	ect.ECT = true
	q.Enqueue(ect)
	if !ect.CE {
		t.Fatal("ECN-capable packet above threshold should be CE-marked")
	}
	nonEct := mkpkt(10)
	q.Enqueue(nonEct)
	if nonEct.CE {
		t.Fatal("non-ECT packet must not be CE-marked")
	}
	if q.Stats().ECNMarked != 1 {
		t.Fatalf("ECNMarked = %d, want 1", q.Stats().ECNMarked)
	}
}

func TestQueuePeekDoesNotRemove(t *testing.T) {
	q := NewQueue(5, 0, DropTail)
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue should be nil")
	}
	p := mkpkt(10)
	q.Enqueue(p)
	if q.Peek() != p || q.Len() != 1 {
		t.Fatal("Peek should not remove the packet")
	}
}

func TestQueueStatsDepthTracking(t *testing.T) {
	q := NewQueue(10, 0, DropTail)
	q.Enqueue(mkpkt(100))
	q.Enqueue(mkpkt(200))
	q.Dequeue()
	q.Enqueue(mkpkt(50))
	st := q.Stats()
	if st.MaxDepthPackets != 2 {
		t.Fatalf("MaxDepthPackets = %d, want 2", st.MaxDepthPackets)
	}
	if st.MaxDepthBytes != 300 {
		t.Fatalf("MaxDepthBytes = %d, want 300", st.MaxDepthBytes)
	}
	if st.DequeuedPackets != 1 || st.DequeuedBytes != 100 {
		t.Fatalf("dequeue stats wrong: %+v", st)
	}
}

func TestQueueConstructorValidation(t *testing.T) {
	for _, tc := range []struct{ p, b int }{{0, 0}, {-1, 10}, {10, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQueue(%d,%d) should panic", tc.p, tc.b)
				}
			}()
			NewQueue(tc.p, tc.b, DropTail)
		}()
	}
}

func TestEnqueueNilPanics(t *testing.T) {
	q := NewQueue(1, 0, DropTail)
	defer func() {
		if recover() == nil {
			t.Fatal("Enqueue(nil) should panic")
		}
	}()
	q.Enqueue(nil)
}

func TestDropPolicyString(t *testing.T) {
	if DropTail.String() != "drop-tail" || DropHead.String() != "drop-head" {
		t.Fatal("unexpected DropPolicy names")
	}
	if DropPolicy(9).String() == "" {
		t.Fatal("unknown policy should still format")
	}
}

// Property: conservation — every enqueued packet is eventually either dequeued
// or counted as dropped, and byte accounting matches.
func TestPropertyQueueConservation(t *testing.T) {
	f := func(sizes []uint16, limit uint8, dropHead bool) bool {
		lim := int(limit%20) + 1
		policy := DropTail
		if dropHead {
			policy = DropHead
		}
		q := NewQueue(lim, 0, policy)
		var enq int
		for _, s := range sizes {
			size := int(s%1400) + 1
			q.Enqueue(mkpkt(size))
			enq++
		}
		var deq int
		for q.Dequeue() != nil {
			deq++
		}
		st := q.Stats()
		// Every packet presented to the queue ends up exactly once as either
		// drained or dropped (under drop-head an admitted packet may later be
		// evicted, in which case it counts as dropped, not drained).
		if deq+st.DroppedPackets != enq {
			return false
		}
		return q.Bytes() == 0 && q.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: occupancy never exceeds the configured limits.
func TestPropertyQueueLimitsRespected(t *testing.T) {
	f := func(sizes []uint16, pktLimit, byteLimitKB uint8) bool {
		pl := int(pktLimit % 16)
		bl := int(byteLimitKB%16) * 1024
		if pl == 0 && bl == 0 {
			pl = 1
		}
		q := NewQueue(pl, bl, DropTail)
		for _, s := range sizes {
			q.Enqueue(mkpkt(int(s%1400) + 1))
			if pl > 0 && q.Len() > pl {
				return false
			}
			if bl > 0 && q.Bytes() > bl {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolAndAddrStrings(t *testing.T) {
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" {
		t.Fatal("protocol names wrong")
	}
	if Protocol(99).String() != "proto(99)" {
		t.Fatal("unknown protocol formatting wrong")
	}
	a := Addr{Host: "mit", Port: 80}
	if a.String() != "mit:80" {
		t.Fatalf("Addr.String() = %q", a.String())
	}
	k := FlowKey{Proto: ProtoTCP, Src: a, Dst: Addr{Host: "utah", Port: 9}}
	if k.Reverse().Src.Host != "utah" || k.Reverse().Dst.Host != "mit" {
		t.Fatal("FlowKey.Reverse wrong")
	}
	if k.String() == "" || (&Packet{Proto: ProtoTCP, Src: a, Dst: a, Size: 1}).String() == "" {
		t.Fatal("string methods should be non-empty")
	}
}

func TestPacketCloneAndKey(t *testing.T) {
	p := mkpkt(77)
	p.ECT = true
	c := p.Clone()
	if c == p || *c != *p {
		t.Fatal("Clone should copy the packet value")
	}
	k := p.Key()
	if k.Proto != ProtoUDP || k.Src.Host != "a" || k.Dst.Host != "b" {
		t.Fatalf("Key() = %+v", k)
	}
}
