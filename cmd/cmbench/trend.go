package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The trend mode reads every committed BENCH_<pr>.json next to -perfout — the
// per-PR perf snapshots the bench-smoke gate writes — and renders the
// trajectory of each benchmark across them: where each hot loop started,
// where it is now, and the cumulative drift. The repo's history of perf
// snapshots thus doubles as a longitudinal benchmark database.

// loadSnapshots parses every BENCH_<n>.json in dir, sorted by PR number.
func loadSnapshots(dir string) ([]perfSnapshot, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	type numbered struct {
		n    int
		path string
	}
	var files []numbered
	for _, m := range matches {
		base := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(m), "BENCH_"), ".json")
		n, err := strconv.Atoi(base)
		if err != nil {
			continue
		}
		files = append(files, numbered{n, m})
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json snapshots in %q", dir)
	}
	sort.Slice(files, func(i, j int) bool { return files[i].n < files[j].n })
	var snaps []perfSnapshot
	for _, f := range files {
		data, err := os.ReadFile(f.path)
		if err != nil {
			return nil, err
		}
		var s perfSnapshot
		if err := json.Unmarshal(data, &s); err != nil {
			return nil, fmt.Errorf("parse %s: %w", f.path, err)
		}
		// The filename is authoritative for ordering; a mis-stamped PR field
		// inside the file must not reorder the trajectory.
		s.PR = f.n
		snaps = append(snaps, s)
	}
	return snaps, nil
}

// trendBenchNames returns every benchmark name across the snapshots, in
// first-appearance order (so the table reads oldest loops first).
func trendBenchNames(snaps []perfSnapshot) []string {
	var names []string
	seen := map[string]bool{}
	for _, s := range snaps {
		for _, r := range s.Results {
			if !seen[r.Name] {
				seen[r.Name] = true
				names = append(names, r.Name)
			}
		}
	}
	return names
}

// trendCSV renders the full trajectory in long format, one row per
// (benchmark, snapshot):
//
//	benchmark,pr,ns_op,allocs_op,bytes_op
func trendCSV(snaps []perfSnapshot) string {
	var b strings.Builder
	b.WriteString("benchmark,pr,ns_op,allocs_op,bytes_op\n")
	for _, name := range trendBenchNames(snaps) {
		for i := range snaps {
			r := findResult(snaps[i], name)
			if r == nil {
				continue
			}
			fmt.Fprintf(&b, "%s,%d,%s,%d,%d\n", name, snaps[i].PR,
				strconv.FormatFloat(r.NsPerOp, 'f', 1, 64), r.AllocsPerOp, r.BytesPerOp)
		}
	}
	return b.String()
}

// trendTable renders the markdown summary: each benchmark's first and most
// recent measurement and the cumulative ns/op drift between them. Negative
// delta is a speedup.
func trendTable(snaps []perfSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | first (PR) | last (PR) | Δ ns/op | allocs/op | points |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|---|\n")
	for _, name := range trendBenchNames(snaps) {
		var first, last *perfResult
		firstPR, lastPR, points := 0, 0, 0
		for i := range snaps {
			r := findResult(snaps[i], name)
			if r == nil {
				continue
			}
			if first == nil {
				first, firstPR = r, snaps[i].PR
			}
			last, lastPR = r, snaps[i].PR
			points++
		}
		if first == nil {
			continue
		}
		delta := "n/a"
		if first.NsPerOp > 0 && points > 1 {
			delta = fmt.Sprintf("%+.1f%%", (last.NsPerOp/first.NsPerOp-1)*100)
		}
		fmt.Fprintf(&b, "| %s | %.1f (%d) | %.1f (%d) | %s | %d | %d |\n",
			name, first.NsPerOp, firstPR, last.NsPerOp, lastPR, delta, last.AllocsPerOp, points)
	}
	return b.String()
}

// runTrend is the -trend entry point: print the markdown trajectory table
// and, when csvPath is set, write the long-format CSV too.
func runTrend(dir, csvPath string) error {
	snaps, err := loadSnapshots(dir)
	if err != nil {
		return err
	}
	fmt.Printf("benchmark trajectory across %d snapshots (PR %d..%d):\n\n",
		len(snaps), snaps[0].PR, snaps[len(snaps)-1].PR)
	fmt.Print(trendTable(snaps))
	if csvPath != "" {
		csv := trendCSV(snaps)
		if csvPath == "-" {
			fmt.Print(csv)
			return nil
		}
		if err := os.WriteFile(csvPath, []byte(csv), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", csvPath)
	}
	return nil
}
