// Layered streaming example: the adaptive audio/video server of §3.4/§3.5.
//
// A layered media server streams to a client across a bottleneck while an
// on/off cross-traffic source periodically takes half the bandwidth away.
// The server is run twice — once with the ALF (request/callback) API and once
// with the rate-callback API — and the example prints how each one adapted.
//
// Run with:  go run ./examples/layeredstream
package main

import (
	"fmt"
	"time"

	"repro/internal/app"
	"repro/internal/cm"
	"repro/internal/libcm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
)

func run(mode app.LayeredMode) {
	sched := simtime.NewScheduler()
	network := node.NewNetwork(sched)
	network.ConnectDuplex("server", "client", netsim.LinkConfig{
		Bandwidth:    8 * netsim.Mbps,
		Delay:        25 * time.Millisecond,
		QueuePackets: 100,
		Seed:         3,
	})
	manager := cm.New(sched, sched)
	network.Host("server").SetTransmitNotifier(manager)
	lib := libcm.New(manager, sched, libcm.ModeAuto)

	// The client acknowledges every packet so the server's CM gets feedback.
	client, err := app.NewLayeredClient(network.Host("client"), 7000, app.FeedbackPolicy{EveryPackets: 1}, 500*time.Millisecond)
	if err != nil {
		panic(err)
	}
	server, err := app.NewLayeredServer(network.Host("server"), lib, client.Addr(), app.LayeredConfig{
		Mode:       mode,
		Layers:     []float64{125_000, 250_000, 500_000, 1_000_000}, // 1 - 8 Mbit/s
		PacketSize: 1000,
	})
	if err != nil {
		panic(err)
	}

	// Competing traffic: 500 KB/s that switches on and off every 5 seconds.
	cross, err := app.NewOnOffSource(network.Host("server"), netsim.Addr{Host: "client", Port: 9990},
		500_000, 1000, 5*time.Second, 5*time.Second)
	if err != nil {
		panic(err)
	}

	server.Start()
	sched.After(5*time.Second, cross.Start)
	sched.RunFor(30 * time.Second)
	server.Stop()
	cross.Stop()

	stats := server.Stats()
	goodput := float64(client.TotalBytes()) / sched.Now().Seconds() / 1024
	fmt.Printf("%-14s packets=%6d layer-switches=%3d rate-callbacks=%4d grants=%6d goodput=%5.0f KB/s\n",
		mode, stats.PacketsSent, stats.LayerSwitches, stats.RateCallbacks, stats.GrantsReceived, goodput)

	// Print a coarse adaptation trace: the layer chosen over time.
	layers := server.LayerRateSeries().Resample(0, 30*time.Second, 3*time.Second)
	fmt.Print("    layer trace (KB/s every 3s): ")
	for i := 0; i < layers.Len(); i++ {
		fmt.Printf("%5.0f ", layers.At(i).V/1024)
	}
	fmt.Println()
}

func main() {
	fmt.Println("Layered streaming under varying cross traffic (8 Mbps bottleneck):")
	run(app.ModeALF)
	run(app.ModeRateCallback)
}
