package probe

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// EventKind classifies a flight-recorder event.
type EventKind uint8

// Flight-recorder event kinds.
const (
	EvNone    EventKind = iota
	EvEnqueue           // packet accepted into a link's transmit queue
	EvDrop              // packet dropped at a link (Note carries the reason)
	EvDeliver           // packet handed up to the receiving host
	EvRequest           // CM flow asked for permission to send (cm_request)
	EvGrant             // CM issued a send grant (cmapp_send callback)
	EvNotify            // application charged bytes to a CM flow (cm_notify)
	EvRoute             // routing tables recomputed (Size = changed entries)
	EvFault             // host-level fault event applied (Note = event kind)
)

// String returns the stable wire name of the kind, used by Dump and the
// docs/OBSERVABILITY.md schema.
func (k EventKind) String() string {
	switch k {
	case EvEnqueue:
		return "pkt-enqueue"
	case EvDrop:
		return "pkt-drop"
	case EvDeliver:
		return "pkt-deliver"
	case EvRequest:
		return "cm-request"
	case EvGrant:
		return "cm-grant"
	case EvNotify:
		return "cm-notify"
	case EvRoute:
		return "route-change"
	case EvFault:
		return "fault"
	default:
		return "unknown"
	}
}

// Event is one structured flight-recorder entry. Note only ever carries a
// string that is constant for the recording site (a link name, a drop
// reason, a dynamics event kind), so recording an Event allocates nothing.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Flow identifies the CM flow of a cm-* event (zero otherwise).
	Flow int64
	// Size is the byte count the event concerns: packet size, granted bytes,
	// notified bytes, or changed route entries for a route-change.
	Size int64
	// Note is site-specific constant detail: the link name for packet
	// events, the drop reason, the fault kind.
	Note string
}

// Recorder is a fixed-capacity ring buffer of Events. Append is
// allocation-free in steady state (the buffer is laid out once at
// construction), so a recorder can stay attached to hot paths.
//
// A Recorder is single-writer: in the simulator each host's recorder is only
// appended to from that host's scheduler (its shard worker, or control
// phases), which is the same discipline every other per-host structure
// follows.
type Recorder struct {
	buf   []Event
	next  int
	total uint64
}

// NewRecorder returns a recorder keeping the last depth events
// (default 1024 when depth <= 0).
func NewRecorder(depth int) *Recorder {
	if depth <= 0 {
		depth = 1024
	}
	return &Recorder{buf: make([]Event, depth)}
}

// Append records one event, overwriting the oldest once the ring is full.
func (r *Recorder) Append(ev Event) {
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
	}
	r.total++
}

// Len returns the number of events currently held (<= depth).
func (r *Recorder) Len() int {
	if r.total < uint64(len(r.buf)) {
		return int(r.total)
	}
	return len(r.buf)
}

// Total returns the number of events ever appended, including overwritten
// ones.
func (r *Recorder) Total() uint64 { return r.total }

// Events returns the retained events in chronological (append) order.
func (r *Recorder) Events() []Event {
	if r.total < uint64(len(r.buf)) {
		return append([]Event(nil), r.buf[:r.total]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Dump writes the retained events as one line each, oldest first, prefixed
// with the owner label:
//
//	s0 t=1.234567s pkt-drop size=1448 note=queue
func (r *Recorder) Dump(w io.Writer, owner string) {
	for _, ev := range r.Events() {
		var b strings.Builder
		fmt.Fprintf(&b, "%s t=%.6fs %s", owner, ev.At.Seconds(), ev.Kind)
		if ev.Flow != 0 {
			fmt.Fprintf(&b, " flow=%d", ev.Flow)
		}
		if ev.Size != 0 {
			fmt.Fprintf(&b, " size=%d", ev.Size)
		}
		if ev.Note != "" {
			fmt.Fprintf(&b, " note=%s", ev.Note)
		}
		b.WriteString("\n")
		io.WriteString(w, b.String())
	}
}
