package scenario

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/probe"
)

// routeDropTotal sums every routing-failure drop counter across the run's
// hosts: the blackhole symptom set (see protoPlane.routeDrops).
func routeDropTotal(res *Result) int64 {
	var n int64
	for _, h := range res.Hosts {
		n += int64(h.NoRouteDrops + h.RouteMissDrops + h.ForwardMissDrops + h.TTLExpiredDrops)
	}
	return n
}

// TestRouteFlapConvergence is the tentpole acceptance run: the fat-tree under
// the distance-vector control plane, one core uplink flapping while the
// surviving uplinks drop, delay and duplicate routing messages. The blackhole
// window must open (the flap strands in-flight routes, so traffic drops) and
// must close by the convergence deadline: no routing-failure drops after it,
// no forwarding loops, no unreachable pairs, no unflushed triggered updates.
func TestRouteFlapConvergence(t *testing.T) {
	spec, err := Lookup("routeflap")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Routing
	if rr == nil {
		t.Fatal("protocol-mode run produced no routing result")
	}
	if rr.Mode != RoutingHier {
		t.Fatalf("routing mode = %q, want %q", rr.Mode, RoutingHier)
	}
	if !rr.Converged {
		t.Fatalf("run did not pass its convergence deadline (%v, duration %v)",
			rr.ConvergenceDeadline, spec.Duration)
	}
	if rr.PostConvergenceRouteDrops != 0 {
		t.Errorf("blackhole window failed to close: %d routing-failure drops after the deadline %v",
			rr.PostConvergenceRouteDrops, rr.ConvergenceDeadline)
	}
	if rr.LoopPairs != 0 {
		t.Errorf("forwarding audit found %d looping pairs (of %d)", rr.LoopPairs, rr.AuditedPairs)
	}
	if rr.UnreachedPairs != 0 {
		t.Errorf("forwarding audit found %d unreached pairs (of %d) after the link came back",
			rr.UnreachedPairs, rr.AuditedPairs)
	}
	if rr.PendingAtEnd != 0 {
		t.Errorf("%d agent(s) still hold unflushed triggered updates after the deadline", rr.PendingAtEnd)
	}
	if rr.AuditedPairs == 0 {
		t.Error("forwarding audit did not run")
	}
	// The flap must actually have hurt: the withdraw wave cannot outrun
	// in-flight traffic, so the window before the deadline sees drops.
	if routeDropTotal(res) == 0 {
		t.Error("no routing-failure drops at all: the flap never opened a blackhole window")
	}
	if rr.FaultDropped == 0 {
		t.Error("control-plane fault injection never dropped a routing message")
	}
	if rr.HolddownSuppressed == 0 && rr.TriggeredUpdates == 0 {
		t.Error("control plane shows no reaction to the flap")
	}
}

// TestProtocolWarmStartQuiescent pins the warm-start contract in both modes:
// with no topology events the seeded tables are already the converged state,
// so the control plane must never change a table entry or drop a packet —
// refreshes flow, nothing churns.
func TestProtocolWarmStartQuiescent(t *testing.T) {
	for _, tc := range []struct {
		name string
		mode string
	}{
		{"parkinglot", RoutingExact},
		{"fattree", RoutingHier},
	} {
		spec, err := Lookup(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		spec.RouteSync = RouteSyncProtocol
		spec.Duration = 3 * time.Second
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		rr := res.Routing
		if rr == nil || rr.Mode != tc.mode {
			t.Fatalf("%s: routing result %+v, want mode %q", tc.name, rr, tc.mode)
		}
		if !rr.Converged || rr.ConvergenceDeadline != 0 {
			t.Errorf("%s: eventless run must be converged from t=0, got deadline %v converged %v",
				tc.name, rr.ConvergenceDeadline, rr.Converged)
		}
		if rr.TableChanges != 0 {
			t.Errorf("%s: warm start churned %d table entries; seeding disagrees with the protocol fixpoint",
				tc.name, rr.TableChanges)
		}
		if got := routeDropTotal(res); got != 0 {
			t.Errorf("%s: %d routing-failure drops in a static topology", tc.name, got)
		}
		if rr.MessagesSent == 0 || rr.Refreshes == 0 {
			t.Errorf("%s: control plane sent no refresh traffic (messages %d, refreshes %d)",
				tc.name, rr.MessagesSent, rr.Refreshes)
		}
		if rr.LoopPairs != 0 || rr.UnreachedPairs != 0 {
			t.Errorf("%s: audit found %d loops / %d unreached of %d pairs",
				tc.name, rr.LoopPairs, rr.UnreachedPairs, rr.AuditedPairs)
		}
	}
}

// renumberSpec is a small exact-mode star: four hosts behind one router, a
// stream from a to b, and a renumbering move of b at 1.5s.
func renumberSpec() Spec {
	link := netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: time.Millisecond, QueuePackets: 50}
	return Spec{
		Name:      "renumber-star",
		Routers:   []string{"r0"},
		RouteSync: RouteSyncProtocol,
		Links: []LinkSpec{
			{A: "r0", B: "a", LinkConfig: link},
			{A: "r0", B: "b", LinkConfig: link},
			{A: "r0", B: "c", LinkConfig: link},
			{A: "r0", B: "d", LinkConfig: link},
		},
		Workloads: []Workload{
			{Kind: KindStream, From: "a", To: "b", CC: CCNative},
			{Kind: KindStream, From: "c", To: "d", CC: CCNative},
		},
		Events: []dynamics.Event{
			{At: 1500 * time.Millisecond, Kind: dynamics.HostMove, Host: "b",
				Policy: dynamics.PolicyRenumber, NewName: "b2", Outage: 200 * time.Millisecond},
		},
		Duration: 8 * time.Second,
		Seed:     7,
	}
}

// TestRenumberHostMove covers the renumber move policy under the protocol:
// the moved host re-attaches under a new name, the control plane originates
// the new name and ages the old one out, and traffic still addressed to the
// old name dies as routing-failure drops while every pair of *current* names
// stays routable.
func TestRenumberHostMove(t *testing.T) {
	res, err := Run(renumberSpec())
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, h := range res.Hosts {
		names[h.Name] = true
	}
	if names["b"] || !names["b2"] {
		t.Fatalf("host result names %v: want b renamed to b2", names)
	}
	rr := res.Routing
	if rr == nil || !rr.Converged {
		t.Fatalf("routing result %+v: want a converged protocol run", rr)
	}
	// The audit walks current names only, so b2 must be reachable from every
	// host — proof the rename propagated through the control plane.
	if rr.LoopPairs != 0 || rr.UnreachedPairs != 0 {
		t.Errorf("audit: %d loops / %d unreached of %d pairs — renamed host not re-learned",
			rr.LoopPairs, rr.UnreachedPairs, rr.AuditedPairs)
	}
	// The a->b stream keeps talking to the dead name; those packets must die
	// as routing-failure drops (route-miss at the renamed leaf while the old
	// route ages, no-route at the sender once it is gone).
	if got := routeDropTotal(res); got == 0 {
		t.Error("no routing-failure drops: traffic to the old name was still delivered")
	}
	// The undisturbed c->d stream must be unharmed.
	for _, h := range res.Hosts {
		if h.Name == "d" && h.ReceivedBytes == 0 {
			t.Error("bystander stream c->d delivered nothing")
		}
	}
}

// TestAggregateProbes pins the links.<glob> / hosts.<glob> probe families:
// the sampled sum must track the sum of the matched components' counters.
func TestAggregateProbes(t *testing.T) {
	spec, err := Lookup("dumbbell")
	if err != nil {
		t.Fatal(err)
	}
	spec.Duration = 2 * time.Second
	spec.Probes = []probe.Spec{
		{Target: "hosts.s*.sent_bytes", Name: "senders"},
		{Target: "hosts.*.received_bytes", Name: "all-recv"},
		{Target: "links.*-fwd.sent_packets", Name: "fwd-pkts"},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(res.Series))
	}
	bySeries := map[string][]probe.Point{}
	for _, s := range res.Series {
		bySeries[s.Name] = s.Points
	}
	for name, pts := range bySeries {
		if len(pts) == 0 {
			t.Fatalf("series %q is empty", name)
		}
		last := 0.0
		for _, p := range pts {
			if p.V < last {
				t.Fatalf("series %q not monotonic: %v after %v", name, p.V, last)
			}
			last = p.V
		}
		if last == 0 {
			t.Errorf("series %q never left zero", name)
		}
	}
	// The final sample is taken at the duration boundary, before any event at
	// exactly that instant, so it is bounded by the end-of-run counters.
	var sentS, recvAll int64
	for _, h := range res.Hosts {
		recvAll += h.ReceivedBytes
		if h.Name[0] == 's' {
			sentS += h.SentBytes
		}
	}
	if last := bySeries["senders"][len(bySeries["senders"])-1].V; last > float64(sentS) {
		t.Errorf("senders final sample %v exceeds end-of-run total %d", last, sentS)
	}
	if last := bySeries["all-recv"][len(bySeries["all-recv"])-1].V; last > float64(recvAll) {
		t.Errorf("all-recv final sample %v exceeds end-of-run total %d", last, recvAll)
	}
}

// fuzzTopology builds a random connected exact-routing topology: nr routers
// on a ring with random chords, one host per router, stream workloads between
// random host pairs.
func fuzzTopology(rng *rand.Rand) Spec {
	nr := 5 + rng.Intn(6)
	link := netsim.LinkConfig{Bandwidth: 20 * netsim.Mbps, Delay: time.Millisecond, QueuePackets: 60}
	spec := Spec{
		Name:      "routefuzz",
		RouteSync: RouteSyncProtocol,
		Duration:  8 * time.Second,
		Seed:      rng.Int63n(1 << 30),
	}
	router := func(i int) string { return fmt.Sprintf("r%d", i) }
	host := func(i int) string { return fmt.Sprintf("h%d", i) }
	for i := 0; i < nr; i++ {
		spec.Routers = append(spec.Routers, router(i))
		spec.Links = append(spec.Links, LinkSpec{A: router(i), B: router((i + 1) % nr), LinkConfig: link})
	}
	ring := len(spec.Links)
	for c := rng.Intn(3); c > 0; c-- {
		a, b := rng.Intn(nr), rng.Intn(nr)
		if a != b && (a+1)%nr != b && (b+1)%nr != a {
			spec.Links = append(spec.Links, LinkSpec{A: router(a), B: router(b), LinkConfig: link})
		}
	}
	for i := 0; i < nr; i++ {
		spec.Links = append(spec.Links, LinkSpec{A: router(i), B: host(i), LinkConfig: link})
	}
	for w := 0; w < 3; w++ {
		a, b := rng.Intn(nr), rng.Intn(nr)
		if a == b {
			continue
		}
		spec.Workloads = append(spec.Workloads, Workload{
			Kind: KindStream, From: host(a), To: host(b), CC: CCNative,
		})
	}
	if len(spec.Workloads) == 0 {
		spec.Workloads = []Workload{{Kind: KindStream, From: host(0), To: host(nr / 2), CC: CCNative}}
	}
	// Fault schedule: random message faults on a few ring links from 0.2s,
	// cleared at 1.2s; a ring link flaps down at 0.5s; the final topology
	// event at 1.5s (after the faults clear, so the convergence bound holds)
	// either restores it or downs a second link for good.
	flap := rng.Intn(ring)
	for n := 1 + rng.Intn(3); n > 0; n-- {
		l := rng.Intn(ring)
		spec.Events = append(spec.Events,
			dynamics.Event{At: 200 * time.Millisecond, Kind: dynamics.SetRouteFaults, Link: l,
				DropRate: 0.2 + 0.5*rng.Float64(), DelayRate: 0.3 * rng.Float64(),
				Delay: 5 * time.Millisecond, DuplicateRate: 0.2 * rng.Float64()},
			dynamics.Event{At: 1200 * time.Millisecond, Kind: dynamics.SetRouteFaults, Link: l},
		)
	}
	spec.Events = append(spec.Events,
		dynamics.Event{At: 500 * time.Millisecond, Kind: dynamics.LinkDown, Link: flap})
	if rng.Intn(2) == 0 {
		spec.Events = append(spec.Events,
			dynamics.Event{At: 1500 * time.Millisecond, Kind: dynamics.LinkUp, Link: flap})
	} else {
		second := rng.Intn(ring)
		kind := dynamics.LinkDown
		if second == flap {
			kind = dynamics.LinkUp // re-flap the same link instead of a no-op
		}
		spec.Events = append(spec.Events,
			dynamics.Event{At: 1500 * time.Millisecond, Kind: kind, Link: second})
	}
	return spec
}

// TestRouteProtoFuzz drives random topology x flap schedule x control-fault
// schedule combinations through the protocol and holds every run to the
// convergence contract: after quiescence the tables route every pair that a
// fresh oracle of the same down-state can route (the end-of-run audit BFS is
// exactly that oracle), unreachable pairs die as drops rather than loops, and
// when nothing is partitioned the blackhole window has closed.
func TestRouteProtoFuzz(t *testing.T) {
	iters := 12
	if testing.Short() {
		iters = 4
	}
	for i := 0; i < iters; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		spec := fuzzTopology(rng)
		res, err := Run(spec)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		rr := res.Routing
		if rr == nil {
			t.Fatalf("iter %d: no routing result", i)
		}
		if !rr.Converged {
			t.Fatalf("iter %d: deadline %v past duration %v", i, rr.ConvergenceDeadline, spec.Duration)
		}
		if rr.LoopPairs != 0 {
			t.Errorf("iter %d (seed %d): %d of %d audited pairs loop",
				i, spec.Seed, rr.LoopPairs, rr.AuditedPairs)
		}
		if rr.PendingAtEnd != 0 {
			t.Errorf("iter %d (seed %d): %d agents not quiescent", i, spec.Seed, rr.PendingAtEnd)
		}
		if rr.UnreachedPairs != 0 {
			t.Errorf("iter %d (seed %d): %d of %d audited pairs reachable but unrouted",
				i, spec.Seed, rr.UnreachedPairs, rr.AuditedPairs)
		}
		// Partitioned pairs keep dropping at the sender by design; only a run
		// whose end state is fully connected owes a closed blackhole window.
		if rr.PartitionedPairs == 0 && rr.PostConvergenceRouteDrops != 0 {
			t.Errorf("iter %d (seed %d): fully reachable end state but %d drops after the deadline",
				i, spec.Seed, rr.PostConvergenceRouteDrops)
		}
	}
}
