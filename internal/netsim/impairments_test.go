package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

func TestLinkReorderingDeliversAllPacketsOutOfOrder(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{sched: s}
	l := NewLink(s, LinkConfig{
		Bandwidth:    10 * Mbps,
		Delay:        time.Millisecond,
		QueuePackets: 1000,
		ReorderRate:  0.3,
		ReorderDelay: 5 * time.Millisecond,
		Seed:         13,
	}, dst)
	const n = 200
	for i := 0; i < n; i++ {
		p := mkpkt(1000)
		p.Payload = i // tag with send order
		l.Send(p)
	}
	s.Run()
	if len(dst.pkts) != n {
		t.Fatalf("delivered %d packets, want %d (reordering must not lose packets)", len(dst.pkts), n)
	}
	if l.Stats().Reordered == 0 {
		t.Fatal("no packets were reordered at a 30% reorder rate")
	}
	inversions := 0
	for i := 1; i < len(dst.pkts); i++ {
		if dst.pkts[i].Payload.(int) < dst.pkts[i-1].Payload.(int) {
			inversions++
		}
	}
	if inversions == 0 {
		t.Fatal("reordering should produce at least one out-of-order delivery")
	}
}

func TestLinkReorderingDefaultDelay(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{sched: s}
	l := NewLink(s, LinkConfig{Bandwidth: 10 * Mbps, ReorderRate: 1.0, Seed: 5, QueuePackets: 10}, dst)
	l.Send(mkpkt(1000))
	s.Run()
	if len(dst.pkts) != 1 {
		t.Fatal("packet lost")
	}
	if l.Stats().Reordered != 1 {
		t.Fatal("reorder not counted")
	}
}

func TestLinkDuplicationDeliversExtraCopies(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{sched: s}
	l := NewLink(s, LinkConfig{
		Bandwidth:     10 * Mbps,
		QueuePackets:  1000,
		DuplicateRate: 0.5,
		Seed:          17,
	}, dst)
	const n = 200
	for i := 0; i < n; i++ {
		l.Send(mkpkt(500))
	}
	s.Run()
	st := l.Stats()
	if st.Duplicated == 0 {
		t.Fatal("no packets were duplicated at a 50% duplication rate")
	}
	if len(dst.pkts) != n+st.Duplicated {
		t.Fatalf("delivered %d packets, want %d originals + %d duplicates", len(dst.pkts), n, st.Duplicated)
	}
}

// Property: with reordering and duplication (but no loss), at least every
// original packet is delivered, and the delivered count equals originals plus
// the recorded duplicates.
func TestPropertyImpairedLinkNeverLosesPackets(t *testing.T) {
	f := func(n uint8, reorderTenths, dupTenths uint8, seed int64) bool {
		count := int(n%100) + 1
		s := simtime.NewScheduler()
		dst := &collector{}
		l := NewLink(s, LinkConfig{
			Bandwidth:     10 * Mbps,
			Delay:         time.Millisecond,
			QueuePackets:  count + 1,
			ReorderRate:   float64(reorderTenths%10) / 10,
			DuplicateRate: float64(dupTenths%10) / 10,
			Seed:          seed,
		}, dst)
		for i := 0; i < count; i++ {
			l.Send(mkpkt(500))
		}
		s.Run()
		return len(dst.pkts) == count+l.Stats().Duplicated
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
