// Package scenario is the declarative experiment layer of the reproduction.
// A Spec describes a topology (hosts, routers, links), the workloads that run
// over it and how long the simulation lasts; Build turns a Spec into a wired
// simulation and Run executes it to a Result. Canned builders (Dumbbell,
// ParkingLot, Star, PointToPoint) cover the common shapes of the congestion
// literature, and a registry maps scenario names to specs so command-line
// tools can run them by name.
//
// Every simulation owns its scheduler and per-link seeded random sources, so
// a scenario's Result is a pure function of its Spec: running many scenarios
// concurrently (see RunAll) yields byte-identical results to running them
// one after another.
package scenario

import (
	"fmt"
	"time"

	"repro/internal/cm"
	"repro/internal/dynamics"
	"repro/internal/netsim"
	"repro/internal/probe"
	"repro/internal/routeproto"
)

// Congestion-control selectors for workloads, mirroring tcp.CCCM/CCNative
// without importing the transport here.
const (
	CCCM     = "cm"
	CCNative = "native"
)

// Workload kinds.
const (
	// KindBulk transfers Bytes per flow and closes the connection; the flow
	// completes when the receiver has everything.
	KindBulk = "bulk"
	// KindStream keeps the flow backlogged for the whole scenario duration
	// (an "infinite" transfer); it never completes.
	KindStream = "stream"
	// KindUDPRate runs the layered UDP streaming application in its
	// rate-callback mode (§3.4): a libcm client clocks packets out at the
	// current layer's rate and switches layers on cm_thresh callbacks. The
	// workload requires (and defaults to) the CM congestion controller.
	KindUDPRate = "udp-rate"
	// KindUDPALF runs the same application in its ALF request/callback mode
	// (§3.5): every packet waits for a cmapp_send grant and the layer is
	// re-chosen from cm_query inside the callback.
	KindUDPALF = "udp-alf"
	// KindWebMix is a background web-like request mix: Flows short TCP
	// request/response transfers whose arrival times form a seeded Poisson
	// process of rate Rate and whose sizes are drawn (seeded, exponential)
	// around a mean of Bytes. Each request is an ordinary bulk flow on its
	// own port; with CC = cm the mix becomes the paper's ensemble of short
	// flows sharing one macroflow.
	KindWebMix = "webmix"
)

// udpKind reports whether the workload kind is one of the layered UDP
// applications (CM clients attached through libcm rather than TCP dialers).
func udpKind(kind string) bool { return kind == KindUDPRate || kind == KindUDPALF }

// LinkSpec declares one duplex link between two nodes. The embedded
// netsim.LinkConfig carries bandwidth, delay, queueing and impairment knobs;
// a zero Seed is replaced by a deterministic per-link seed derived from the
// spec seed so results stay reproducible without hand-numbering every link.
type LinkSpec struct {
	// A and B are the endpoint node names. ConnectDuplex wires A->B as the
	// forward direction.
	A string `json:"a"`
	B string `json:"b"`
	netsim.LinkConfig
}

// Workload declares a group of identical transport flows.
type Workload struct {
	// Kind is KindBulk (default) or KindStream.
	Kind string `json:"kind,omitempty"`
	// From and To are the sending and receiving host names.
	From string `json:"from"`
	To   string `json:"to"`
	// Port is the first listening port; flow i listens on Port+i. Zero
	// auto-assigns a port range disjoint from other workloads.
	Port int `json:"port,omitempty"`
	// Flows is the number of concurrent connections (default 1).
	Flows int `json:"flows,omitempty"`
	// Bytes is the per-flow transfer size for KindBulk (default 1 MB).
	Bytes int `json:"bytes,omitempty"`
	// CC selects the congestion controller: CCNative (default) or CCCM. A
	// CCCM workload implies a Congestion Manager on the From host.
	CC string `json:"cc,omitempty"`
	// Start delays connection establishment into the run.
	Start time.Duration `json:"start,omitempty"`
	// RecvWindow is the receiver's advertised window (default 1 MB).
	RecvWindow int `json:"recv_window,omitempty"`
	// Rate is the mean request arrival rate of a KindWebMix workload in
	// requests per second (default 10). For a web mix, Flows is the total
	// number of requests, Bytes the mean response size, and Start shifts the
	// whole arrival process into the run.
	Rate float64 `json:"rate,omitempty"`
}

// Spec is a complete, self-contained description of one simulation.
type Spec struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Links defines the topology; nodes are created on first mention.
	Links []LinkSpec `json:"links"`
	// Routers lists the nodes that forward transit packets. Routes between
	// all node pairs are computed with shortest-path (hop count) over Links.
	Routers []string `json:"routers,omitempty"`
	// CMHosts lists hosts that run a Congestion Manager with the IP output
	// hook installed. Hosts sourcing a CCCM workload are added automatically.
	CMHosts []string `json:"cm_hosts,omitempty"`
	// Workloads are the traffic sources.
	Workloads []Workload `json:"workloads"`
	// Events is the network-dynamics timeline: scheduled link up/down,
	// bandwidth/delay/loss changes and bursty-loss (Gilbert-Elliott) mode
	// switches, applied mid-run by the dynamics subsystem. Events with
	// At <= 0 are applied at Build, before any traffic.
	Events []dynamics.Event `json:"events,omitempty"`
	// Generators are seeded stochastic event sources (Poisson link flaps,
	// Markov bandwidth walks). Build expands each into ordinary deterministic
	// Events merged with the declared ones, so generated churn inherits the
	// timeline's serial/parallel/sharded byte-identity.
	Generators []dynamics.Generator `json:"generators,omitempty"`
	// Duration is how much virtual time to simulate (default 30 s).
	Duration time.Duration `json:"duration,omitempty"`
	// Seed derives per-link seeds for links that leave Seed zero (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Shards requests sharded execution: the topology is partitioned into up
	// to Shards host groups (delay-weighted, so the smallest cross-shard link
	// delay — the conservative lookahead — is maximized) and each group runs
	// on its own scheduler and worker goroutine. Results are byte-identical
	// to a serial run. 0 or 1 runs serially; so does any partition whose
	// lookahead would be zero.
	Shards int `json:"shards,omitempty"`
	// Routing selects the routing mode: RoutingExact (the default when empty)
	// computes a full destination table per node by all-pairs shortest path;
	// RoutingHier installs hierarchical tables — exact entries for children,
	// name-suffix domain entries for child routers, a default route up — on
	// tree-like topologies rooted at HierRoots. Hierarchical routing keeps
	// per-node table memory at O(children) instead of O(nodes), which is what
	// makes 100k-host fat-tree and ISP specs buildable.
	Routing string `json:"routing,omitempty"`
	// HierRoots names the top-level routers of a RoutingHier topology (a
	// fat-tree's core switches). Every node must be reachable from the roots
	// and every link must join adjacent hierarchy levels.
	HierRoots []string `json:"hier_roots,omitempty"`
	// Domains optionally maps a router to the name-suffix domain it covers
	// downward, for routers whose subtree is named after something other than
	// the router itself (a fat-tree aggregation switch "a0.p2" covers the pod
	// suffix "p2"). A router absent from the map covers its own name: hosts
	// under an edge switch "e1.p2" are named "h<i>.e1.p2".
	Domains map[string]string `json:"domains,omitempty"`
	// RouteSync selects how routing tables track topology changes.
	// RouteSyncOracle (the default when empty) recomputes tables instantly
	// and globally at each link event — the pre-existing BFS path.
	// RouteSyncProtocol runs the distance-vector control plane
	// (internal/routeproto) instead: endpoints detect flips locally and
	// advertise/withdraw routes hop-by-hop as simulated packets, so failures
	// open a bounded blackhole window that heals by convergence rather than
	// by fiat. Works with both exact and hier routing (see docs/ROUTING.md).
	RouteSync string `json:"route_sync,omitempty"`
	// RouteProto overrides the control-plane timers (protocol mode only);
	// nil uses routeproto's defaults.
	RouteProto *routeproto.Config `json:"route_proto,omitempty"`
	// Probes declares mid-run sampling probes. Each probe samples its target
	// (see probe.ParseTarget for the path grammar) every Interval of virtual
	// time via a self-rescheduling scheduler event and yields one entry of
	// Result.Series. Probes are observation-only: they consume no randomness
	// and mutate nothing, so results stay byte-identical with or without
	// them, serial or sharded (see docs/OBSERVABILITY.md).
	Probes []probe.Spec `json:"probes,omitempty"`
	// TraceDepth, when positive, enables the flight recorder: every host
	// gets a fixed ring of the last TraceDepth structured trace events
	// (packet enqueue/drop/deliver, CM request/grant/notify, faults). Zero
	// disables tracing, which is the allocation-free default.
	TraceDepth int `json:"trace_depth,omitempty"`
	// SnapshotEvery, when positive, captures a full mid-run Result every
	// such period so invariants can be checked as the run unfolds
	// (faults.CheckSnapshot) instead of at the end only. Snapshots are
	// observation-only and are reported via Sim.Snapshots, never inside the
	// Result itself.
	SnapshotEvery time.Duration `json:"snapshot_every,omitempty"`
	// CMOpts configures every Congestion Manager the spec instantiates. It
	// is programmatic-only state (functions), invisible to JSON.
	CMOpts []cm.Option `json:"-"`
}

// Routing modes.
const (
	RoutingExact = "exact"
	RoutingHier  = "hier"
)

// Route-synchronisation modes (Spec.RouteSync).
const (
	RouteSyncOracle   = "oracle"
	RouteSyncProtocol = "protocol"
)

// routeProtocol reports whether the spec runs the distance-vector control
// plane instead of the oracle.
func (s *Spec) routeProtocol() bool { return s.RouteSync == RouteSyncProtocol }

// routeProtoConfig resolves the spec's control-plane timer config without
// mutating the (possibly shared) RouteProto pointer.
func (s *Spec) routeProtoConfig() routeproto.Config {
	var cfg routeproto.Config
	if s.RouteProto != nil {
		cfg = *s.RouteProto
	}
	return cfg.WithDefaults()
}

// fillDefaults normalises the spec in place. The Workloads slice is cloned
// before any write: specs are replicated by value for batch runs (cmsim
// -runs, the determinism tests), and the copies would otherwise share one
// backing array that concurrent Run calls then race on.
func (s *Spec) fillDefaults() {
	if s.Duration <= 0 {
		s.Duration = 30 * time.Second
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	s.Workloads = append([]Workload(nil), s.Workloads...)
	// Auto-assigned port ranges must not collide with explicit ones that
	// appear later in the list, so claim the explicit ranges first.
	used := make(map[int]bool)
	for _, w := range s.Workloads {
		if w.Port == 0 {
			continue
		}
		flows := w.Flows
		if flows <= 0 {
			flows = 1
		}
		for p := w.Port; p < w.Port+flows; p++ {
			used[p] = true
		}
	}
	nextPort := 5000
	for i := range s.Workloads {
		w := &s.Workloads[i]
		if w.Kind == "" {
			w.Kind = KindBulk
		}
		if w.Kind == KindWebMix {
			if w.Flows <= 0 {
				w.Flows = 32
			}
			// Only a zero rate defaults: a negative one is a spec error that
			// Validate must still see.
			if w.Rate == 0 {
				w.Rate = 10
			}
			if w.Bytes <= 0 {
				w.Bytes = 12 << 10
			}
		}
		if w.Flows <= 0 {
			w.Flows = 1
		}
		if w.CC == "" {
			// The layered UDP applications are CM clients by construction;
			// TCP workloads default to the native controller.
			if udpKind(w.Kind) {
				w.CC = CCCM
			} else {
				w.CC = CCNative
			}
		}
		if w.Bytes <= 0 && w.Kind == KindBulk {
			w.Bytes = 1 << 20
		}
		if w.RecvWindow <= 0 {
			w.RecvWindow = 1 << 20
		}
		if w.Port == 0 {
			for {
				free := true
				for p := nextPort; p < nextPort+w.Flows; p++ {
					if used[p] {
						free = false
						nextPort = p + 1
						break
					}
				}
				if free {
					break
				}
			}
			w.Port = nextPort
			nextPort += w.Flows
		}
	}
}

// Validate checks the spec for structural errors: empty topology, links or
// workloads referring to unknown nodes, unknown workload kinds or congestion
// controllers, and workloads sourced at routers (routers carry transit
// traffic only).
func (s *Spec) Validate() error {
	if len(s.Links) == 0 {
		return fmt.Errorf("scenario %q: no links", s.Name)
	}
	nodes := make(map[string]bool)
	for i, l := range s.Links {
		if l.A == "" || l.B == "" || l.A == l.B {
			return fmt.Errorf("scenario %q: link %d endpoints %q-%q invalid", s.Name, i, l.A, l.B)
		}
		nodes[l.A] = true
		nodes[l.B] = true
	}
	router := make(map[string]bool)
	for _, r := range s.Routers {
		if !nodes[r] {
			return fmt.Errorf("scenario %q: router %q not attached to any link", s.Name, r)
		}
		router[r] = true
	}
	for _, h := range s.CMHosts {
		if !nodes[h] {
			return fmt.Errorf("scenario %q: CM host %q not attached to any link", s.Name, h)
		}
	}
	// An empty workload list is allowed: experiment runners Build a bare
	// topology and attach their own programmatic traffic.
	for i, w := range s.Workloads {
		if !nodes[w.From] || !nodes[w.To] {
			return fmt.Errorf("scenario %q: workload %d endpoints %q->%q not in topology", s.Name, i, w.From, w.To)
		}
		if w.From == w.To {
			return fmt.Errorf("scenario %q: workload %d sends to itself", s.Name, i)
		}
		if router[w.From] || router[w.To] {
			return fmt.Errorf("scenario %q: workload %d terminates at a router", s.Name, i)
		}
		switch w.Kind {
		case "", KindBulk, KindStream, KindUDPRate, KindUDPALF, KindWebMix:
		default:
			return fmt.Errorf("scenario %q: workload %d kind %q unknown", s.Name, i, w.Kind)
		}
		switch w.CC {
		case "", CCCM, CCNative:
		default:
			return fmt.Errorf("scenario %q: workload %d cc %q unknown", s.Name, i, w.CC)
		}
		if udpKind(w.Kind) && w.CC == CCNative {
			return fmt.Errorf("scenario %q: workload %d kind %q is a CM client; cc %q is invalid", s.Name, i, w.Kind, w.CC)
		}
		if w.Rate < 0 {
			return fmt.Errorf("scenario %q: workload %d rate %v negative", s.Name, i, w.Rate)
		}
	}
	// Host-level fault events must name real nodes: a CM to restart or
	// notify-fault must actually exist (CMHosts plus CM-workload sources),
	// and only end hosts move (routers are the infrastructure that stays).
	cmHost := make(map[string]bool)
	for _, h := range s.CMHosts {
		cmHost[h] = true
	}
	for _, w := range s.Workloads {
		if w.CC == CCCM || udpKind(w.Kind) {
			cmHost[w.From] = true
		}
	}
	checkHost := func(what, host string, needsCM bool) error {
		if !nodes[host] {
			return fmt.Errorf("scenario %q: %s host %q not in topology", s.Name, what, host)
		}
		if router[host] {
			return fmt.Errorf("scenario %q: %s host %q is a router", s.Name, what, host)
		}
		if needsCM && !cmHost[host] {
			return fmt.Errorf("scenario %q: %s host %q runs no Congestion Manager", s.Name, what, host)
		}
		return nil
	}
	for i, ev := range s.Events {
		if err := ev.Validate(len(s.Links)); err != nil {
			return fmt.Errorf("scenario %q: event %d: %w", s.Name, i, err)
		}
		if ev.HostEvent() {
			needsCM := ev.Kind == dynamics.CMRestart || ev.Kind == dynamics.SetNotifyFaults
			if err := checkHost(ev.Kind, ev.Host, needsCM); err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
		}
	}
	for i, g := range s.Generators {
		if err := g.Validate(len(s.Links)); err != nil {
			return fmt.Errorf("scenario %q: generator %d: %w", s.Name, i, err)
		}
		if g.HostGenerator() {
			if err := checkHost(g.Kind, g.Host, true); err != nil {
				return fmt.Errorf("generator %d: %w", i, err)
			}
		}
	}
	for i, p := range s.Probes {
		t, err := probe.ParseTarget(p.Target)
		if err != nil {
			return fmt.Errorf("scenario %q: probe %d: %w", s.Name, i, err)
		}
		if p.Interval < 0 {
			return fmt.Errorf("scenario %q: probe %d: negative interval %v", s.Name, i, p.Interval)
		}
		switch t.Kind {
		case probe.TargetLink:
			if t.Index >= len(s.Links) {
				return fmt.Errorf("scenario %q: probe %d: link index %d out of range (%d links)", s.Name, i, t.Index, len(s.Links))
			}
		case probe.TargetHost:
			if !nodes[t.Host] {
				return fmt.Errorf("scenario %q: probe %d: host %q not in topology", s.Name, i, t.Host)
			}
		case probe.TargetCM:
			if !cmHost[t.Host] {
				return fmt.Errorf("scenario %q: probe %d: host %q runs no Congestion Manager", s.Name, i, t.Host)
			}
		}
	}
	if s.TraceDepth < 0 {
		return fmt.Errorf("scenario %q: negative trace depth %d", s.Name, s.TraceDepth)
	}
	if s.SnapshotEvery < 0 {
		return fmt.Errorf("scenario %q: negative snapshot period %v", s.Name, s.SnapshotEvery)
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario %q: negative shard count %d", s.Name, s.Shards)
	}
	switch s.Routing {
	case "", RoutingExact:
		if len(s.HierRoots) > 0 || len(s.Domains) > 0 {
			return fmt.Errorf("scenario %q: hier roots/domains set but routing is %q", s.Name, s.Routing)
		}
	case RoutingHier:
		if len(s.HierRoots) == 0 {
			return fmt.Errorf("scenario %q: hier routing needs at least one root (HierRoots)", s.Name)
		}
		for _, r := range s.HierRoots {
			if !router[r] {
				return fmt.Errorf("scenario %q: hier root %q is not a router", s.Name, r)
			}
		}
		for d := range s.Domains {
			if !router[d] {
				return fmt.Errorf("scenario %q: domain for %q, which is not a router", s.Name, d)
			}
		}
	default:
		return fmt.Errorf("scenario %q: unknown routing mode %q", s.Name, s.Routing)
	}
	switch s.RouteSync {
	case "", RouteSyncOracle:
		// Protocol-only constructs have no meaning under the oracle.
		if s.RouteProto != nil {
			return fmt.Errorf("scenario %q: route_proto set but route_sync is %q", s.Name, s.RouteSync)
		}
		for i, ev := range s.Events {
			if ev.Kind == dynamics.SetRouteFaults {
				return fmt.Errorf("scenario %q: event %d: %s requires route_sync %q", s.Name, i, ev.Kind, RouteSyncProtocol)
			}
			if ev.Policy == dynamics.PolicyRenumber {
				return fmt.Errorf("scenario %q: event %d: the %s policy requires route_sync %q", s.Name, i, dynamics.PolicyRenumber, RouteSyncProtocol)
			}
		}
	case RouteSyncProtocol:
		if err := s.routeProtoConfig().Validate(); err != nil {
			return fmt.Errorf("scenario %q: %w", s.Name, err)
		}
		if s.Routing != RoutingHier && len(nodes) > incrementalRouteLimit {
			return fmt.Errorf("scenario %q: exact-mode protocol routing supports at most %d nodes (%d declared); use hier routing",
				s.Name, incrementalRouteLimit, len(nodes))
		}
		renamed := make(map[string]bool)
		for i, ev := range s.Events {
			if ev.Policy != dynamics.PolicyRenumber {
				continue
			}
			if s.Routing == RoutingHier {
				return fmt.Errorf("scenario %q: event %d: the %s policy needs exact routing (a hier leaf's name encodes its position)", s.Name, i, dynamics.PolicyRenumber)
			}
			if nodes[ev.NewName] {
				return fmt.Errorf("scenario %q: event %d: new name %q already in the topology", s.Name, i, ev.NewName)
			}
			if renamed[ev.Host] || renamed[ev.NewName] {
				return fmt.Errorf("scenario %q: event %d: host %q renumbered more than once", s.Name, i, ev.Host)
			}
			renamed[ev.Host] = true
			renamed[ev.NewName] = true
		}
	default:
		return fmt.Errorf("scenario %q: unknown route_sync mode %q", s.Name, s.RouteSync)
	}
	return nil
}
