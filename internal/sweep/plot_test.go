package sweep

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

// plotCampaign is a small paired-variant sweep: loss on X, cc as the series
// axis, two replicates for non-degenerate error bars.
func plotCampaign() Campaign {
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Workloads: []scenario.Workload{{Kind: scenario.KindBulk, From: "sender", To: "receiver", Bytes: 200_000}},
	})
	base.Duration = 2 * time.Second
	return Campaign{
		Name: "plot",
		Base: &base,
		Axes: []Axis{
			{Param: "workload[0].cc", Strings: []string{"cm", "native"}},
			{Param: "link[0].loss", Values: []float64{0, 0.02, 0.05}},
		},
		Replicates: 2,
		Metrics:    []string{"total.delivered_bytes", "total.retransmissions"},
	}
}

// The SVG emission must be deterministic (same campaign, same bytes), carry
// one polyline per series-axis variant, and the swept X values as ticks.
func TestRenderSVGDeterministic(t *testing.T) {
	camp := plotCampaign()
	res, err := camp.Run(scenario.Runner{})
	if err != nil {
		t.Fatal(err)
	}
	plot := Plot{Metric: "total.delivered_bytes"}
	svg1, err := camp.RenderSVG(res, plot)
	if err != nil {
		t.Fatal(err)
	}
	svg2, err := camp.RenderSVG(res, plot)
	if err != nil {
		t.Fatal(err)
	}
	if svg1 != svg2 {
		t.Fatal("two renderings of the same result differ")
	}
	if n := strings.Count(svg1, "<polyline"); n != 2 {
		t.Errorf("got %d polylines, want one per cc variant (2)", n)
	}
	for _, want := range []string{"total.delivered_bytes vs link[0].loss", ">cm<", ">native<", ">0.02<", ">0.05<"} {
		if !strings.Contains(svg1, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Error bars: delivered_bytes is replicate-invariant (the bulk flow
	// always completes, so stddev is zero and no bars draw), but the
	// retransmission count varies with the replicate seed under loss.
	rexmit, err := camp.RenderSVG(res, Plot{Metric: "total.retransmissions"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rexmit, `stroke-width="1"`) {
		t.Error("retransmission SVG carries no error-bar strokes")
	}
}

// WritePlots writes one SVG per declared plot (deriving filenames from the
// metric) and per derived default when none are declared.
func TestWritePlots(t *testing.T) {
	camp := plotCampaign()
	res, err := camp.Run(scenario.Runner{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	camp.Plots = []Plot{
		{Metric: "total.delivered_bytes", Title: "goodput under loss"},
		{Metric: "total.retransmissions", File: "rexmit.svg"},
	}
	files, err := camp.WritePlots(res, dir)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"total.delivered_bytes.svg", "rexmit.svg"}
	if len(files) != len(want) || files[0] != want[0] || files[1] != want[1] {
		t.Fatalf("files = %v, want %v", files, want)
	}
	data, err := os.ReadFile(filepath.Join(dir, "total.delivered_bytes.svg"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "goodput under loss") {
		t.Error("declared title missing from written SVG")
	}

	// Default derivation: the campaign's explicit metrics become the plots.
	camp.Plots = nil
	defDir := t.TempDir()
	defFiles, err := camp.WritePlots(res, defDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(defFiles) != 2 {
		t.Fatalf("derived %d default plots, want 2 (one per explicit metric): %v", len(defFiles), defFiles)
	}
}

// A log-scaled X axis must be honoured (and labelled) in the rendering.
func TestRenderSVGLogX(t *testing.T) {
	base := scenario.PointToPoint(scenario.PointToPointParams{
		Workloads: []scenario.Workload{{Kind: scenario.KindBulk, From: "sender", To: "receiver", Bytes: 100_000}},
	})
	base.Duration = time.Second
	camp := Campaign{
		Base: &base,
		Axes: []Axis{
			{Param: "link[0].bandwidth", Scale: ScaleLog, Min: 1e6, Max: 1e8, Steps: 3},
		},
		Metrics: []string{"total.delivered_bytes"},
	}
	res, err := camp.Run(scenario.Runner{})
	if err != nil {
		t.Fatal(err)
	}
	svg, err := camp.RenderSVG(res, Plot{Metric: "total.delivered_bytes"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(svg, "(log)") {
		t.Error("log-scaled X axis not labelled")
	}
	// Geometric spacing: the middle value (1e7) must sit midway between the
	// endpoints on a log axis — i.e. its tick x-coordinate equals the mean
	// of the endpoint coordinates, which linear scaling would put at ~345.
	mid := (float64(plotLeft) + float64(plotRight)) / 2
	if !strings.Contains(svg, `<circle cx="`+coord(mid)) {
		t.Errorf("1e7 sample not at the log-scale midpoint %s", coord(mid))
	}
}

// Plot validation: a string X axis and an unknown metric must fail loudly.
func TestPlotValidation(t *testing.T) {
	camp := plotCampaign()
	res, err := camp.Run(scenario.Runner{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := camp.RenderSVG(res, Plot{Metric: "total.delivered_bytes", X: "workload[0].cc"}); err == nil {
		t.Error("string X axis accepted")
	}
	if _, err := camp.RenderSVG(res, Plot{Metric: "no.such.metric"}); err == nil {
		t.Error("unknown metric accepted")
	}
	if _, err := camp.RenderSVG(res, Plot{Metric: "total.delivered_bytes", X: "nope"}); err == nil {
		t.Error("unknown X axis accepted")
	}
}
