// Package cm implements the Congestion Manager (CM), the primary contribution
// of "System Support for Bandwidth Management and Content Adaptation in
// Internet Applications" (Andersen et al., OSDI 2000).
//
// The CM integrates congestion management across all of a sender's flows.
// Flows to the same destination host are aggregated into a macroflow that
// shares one congestion controller (a TCP-friendly window-based AIMD scheme
// with slow start and byte counting) and one set of path state (smoothed RTT,
// loss estimate). A scheduler apportions the macroflow's window among its
// constituent flows (round-robin by default, optionally weighted).
//
// Clients use the API described in §2.1 of the paper:
//
//   - Open / Close / MTU                      — state management
//   - Request + cmapp_send callback           — ALF-style request/callback sends
//   - RegisterUpdate + Thresh + cmapp_update  — rate callbacks for self-clocked apps
//   - Update                                  — feedback (bytes sent/received, loss mode, RTT)
//   - Notify                                  — per-transmission charging from the IP output hook
//   - Query                                   — current rate / RTT / loss estimate
//   - BulkRequest / BulkUpdate / BulkNotify   — batched variants (§5, Optimizations)
//   - SplitFlow / MergeFlows                  — macroflow construction overrides
//
// In-kernel clients (the TCP implementation in internal/tcp) call these
// methods directly; user-space clients go through internal/libcm, which
// models the control-socket + select + ioctl boundary of the paper.
package cm

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/netsim"
	"repro/internal/probe"
	"repro/internal/simtime"
)

// FlowID is the handle returned by Open and used in all subsequent calls,
// corresponding to cm_flowid in the paper.
type FlowID int

// InvalidFlow is returned by lookups that fail.
const InvalidFlow FlowID = -1

// LossMode describes the kind of congestion feedback carried by an Update
// call (paper §2.1.3).
type LossMode int

const (
	// NoLoss reports a successful transmission with no congestion signal.
	NoLoss LossMode = iota
	// TransientLoss reports isolated loss within a window, e.g. a TCP fast
	// retransmit triggered by three duplicate ACKs.
	TransientLoss
	// PersistentLoss reports serious loss such as a TCP retransmission
	// timeout (CM_LOST_FEEDBACK in the paper); the window collapses to the
	// initial value and slow start resumes.
	PersistentLoss
	// ECNLoss reports an Explicit Congestion Notification mark: the window
	// is reduced as for transient loss but nothing was dropped.
	ECNLoss
)

// String names the loss mode.
func (m LossMode) String() string {
	switch m {
	case NoLoss:
		return "none"
	case TransientLoss:
		return "transient"
	case PersistentLoss:
		return "persistent"
	case ECNLoss:
		return "ecn"
	default:
		return fmt.Sprintf("lossmode(%d)", int(m))
	}
}

// Status is the network-state snapshot returned by Query and delivered with
// rate callbacks (cmapp_update).
type Status struct {
	// Rate is the bandwidth available to this flow in bytes/second (the
	// macroflow rate divided according to scheduler weights).
	Rate float64
	// MacroflowRate is the aggregate rate of the macroflow in bytes/second.
	MacroflowRate float64
	// SRTT and RTTVar are the smoothed round-trip time estimate and its
	// mean deviation, aggregated across all flows of the macroflow.
	SRTT   time.Duration
	RTTVar time.Duration
	// LossRate is an exponentially weighted estimate of the fraction of
	// bytes lost.
	LossRate float64
	// CWND is the macroflow congestion window in bytes.
	CWND int
	// Outstanding is the number of bytes charged to the macroflow that have
	// not yet been accounted for by feedback.
	Outstanding int
	// MTU is the maximum transmission unit for the flow's path.
	MTU int
}

// SendCallback is the cmapp_send upcall: permission for the flow to transmit
// up to MTU bytes.
type SendCallback func(f FlowID)

// UpdateCallback is the cmapp_update upcall: notification that network
// conditions changed beyond the thresholds set with Thresh.
type UpdateCallback func(f FlowID, st Status)

// Dispatcher delivers callbacks to a client. In-kernel clients use the
// direct dispatcher (plain function calls, as TCP does in the paper);
// user-space clients register a libcm dispatcher that models the
// kernel-to-user notification path.
type Dispatcher interface {
	DeliverSend(f FlowID, cb SendCallback)
	DeliverUpdate(f FlowID, st Status, cb UpdateCallback)
}

// directDispatcher calls back synchronously in the same "protection domain".
type directDispatcher struct{}

func (directDispatcher) DeliverSend(f FlowID, cb SendCallback) { cb(f) }
func (directDispatcher) DeliverUpdate(f FlowID, st Status, cb UpdateCallback) {
	cb(f, st)
}

// DirectDispatcher returns the dispatcher used for in-kernel clients.
func DirectDispatcher() Dispatcher { return directDispatcher{} }

// Config collects the tunables of a CM instance. The zero value is usable;
// New fills in defaults matching the paper's implementation.
type Config struct {
	// MTU is the default maximum transmission unit used for grants and as
	// the unit of window arithmetic. Default 1500 bytes (Ethernet).
	MTU int
	// InitialWindowMTUs is the initial and post-persistent-loss congestion
	// window in MTUs. The CM uses 1 (the paper notes Linux used 2, which is
	// one of the two deliberate differences in Figure 4).
	InitialWindowMTUs int
	// MaxWindowBytes caps the congestion window; 0 means no cap beyond the
	// controller's own limits.
	MaxWindowBytes int
	// GrantTimeout is how long an unclaimed send grant is held before the
	// background task reclaims it so other flows are not starved.
	GrantTimeout time.Duration
	// FeedbackStarvationTimeout is how long a macroflow with outstanding
	// bytes may go without any Update before the background task treats the
	// silence as persistent congestion. It guards against clients that die
	// or lose their feedback channel.
	FeedbackStarvationTimeout time.Duration
	// DefaultThreshDown / DefaultThreshUp are the rate-change factors that
	// trigger cmapp_update callbacks when the client has not called Thresh.
	DefaultThreshDown float64
	DefaultThreshUp   float64
	// NewController builds the congestion controller for each macroflow.
	// Defaults to NewAIMDController.
	NewController func(cfg ControllerConfig) Controller
	// NewScheduler builds the flow scheduler for each macroflow. Defaults
	// to NewRoundRobinScheduler.
	NewScheduler func() Scheduler
}

func (c *Config) fillDefaults() {
	if c.MTU <= 0 {
		c.MTU = netsim.DefaultMTU
	}
	if c.InitialWindowMTUs <= 0 {
		c.InitialWindowMTUs = 1
	}
	if c.GrantTimeout <= 0 {
		c.GrantTimeout = 500 * time.Millisecond
	}
	if c.FeedbackStarvationTimeout <= 0 {
		c.FeedbackStarvationTimeout = 3 * time.Second
	}
	if c.DefaultThreshDown <= 1 {
		c.DefaultThreshDown = 1.25
	}
	if c.DefaultThreshUp <= 1 {
		c.DefaultThreshUp = 1.25
	}
	if c.NewController == nil {
		c.NewController = func(cfg ControllerConfig) Controller { return NewAIMDController(cfg) }
	}
	if c.NewScheduler == nil {
		c.NewScheduler = func() Scheduler { return NewRoundRobinScheduler() }
	}
}

// Option mutates the configuration at construction time.
type Option func(*Config)

// WithMTU sets the default MTU.
func WithMTU(mtu int) Option { return func(c *Config) { c.MTU = mtu } }

// WithInitialWindow sets the initial window in MTUs.
func WithInitialWindow(mtus int) Option {
	return func(c *Config) { c.InitialWindowMTUs = mtus }
}

// WithController sets the congestion-controller factory, enabling the
// experimentation with non-AIMD schemes that the paper's modularity argument
// calls for.
func WithController(f func(cfg ControllerConfig) Controller) Option {
	return func(c *Config) { c.NewController = f }
}

// WithScheduler sets the flow-scheduler factory.
func WithScheduler(f func() Scheduler) Option {
	return func(c *Config) { c.NewScheduler = f }
}

// WithGrantTimeout sets how long unclaimed grants are held.
func WithGrantTimeout(d time.Duration) Option {
	return func(c *Config) { c.GrantTimeout = d }
}

// WithFeedbackStarvationTimeout sets the background error-handling timeout.
func WithFeedbackStarvationTimeout(d time.Duration) Option {
	return func(c *Config) { c.FeedbackStarvationTimeout = d }
}

// WithMaxWindow caps the congestion window in bytes.
func WithMaxWindow(bytes int) Option {
	return func(c *Config) { c.MaxWindowBytes = bytes }
}

// CM is one host's Congestion Manager instance.
type CM struct {
	cfg    Config
	clock  simtime.Clock
	timers simtime.TimerFactory

	nextFlowID FlowID
	nextMFTag  int
	flows      map[FlowID]*flowState
	// byKey indexes flows by their transport 5-tuple so the IP output hook's
	// per-packet charge path (NotifyTransmit) reaches the flow — and through
	// it the macroflow — with a single map lookup.
	byKey      map[netsim.FlowKey]*flowState
	macroflows map[macroflowKey]*Macroflow

	// owned, when non-nil, must report true whenever CM code runs; sharded
	// scenario execution installs a shard-affinity check (a CM belongs to its
	// host's shard). Serial runs leave it nil.
	owned func() bool

	// epoch counts CM restarts. Clients cache it at attach time and compare
	// on every call: a mismatch means the CM lost all state since they last
	// spoke and they must re-open flows and re-register callbacks.
	epoch int64

	// rec, when non-nil, receives flight-recorder events for the request/
	// grant/notify control loop. Appending to the ring never allocates, and
	// the nil check keeps the disabled path at its zero-alloc baseline.
	rec *probe.Recorder

	acct Accounting
}

// New creates a Congestion Manager bound to the given clock and timer
// factory. Under simulation both are provided by *simtime.Scheduler; the Go
// micro-benchmarks use a wall clock.
func New(clock simtime.Clock, timers simtime.TimerFactory, opts ...Option) *CM {
	if clock == nil || timers == nil {
		panic("cm: New requires a clock and a timer factory")
	}
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	cfg.fillDefaults()
	return &CM{
		cfg:        cfg,
		clock:      clock,
		timers:     timers,
		flows:      make(map[FlowID]*flowState),
		byKey:      make(map[netsim.FlowKey]*flowState),
		macroflows: make(map[macroflowKey]*Macroflow),
	}
}

// Config returns a copy of the effective configuration.
func (cm *CM) Config() Config { return cm.cfg }

// SetOwnershipCheck installs a predicate asserting that the calling
// goroutine may drive this CM (true = allowed). Sharded execution pins each
// CM to its host's shard with it; nil (the default) disables the check.
func (cm *CM) SetOwnershipCheck(fn func() bool) { cm.owned = fn }

// SetRecorder attaches a flight recorder receiving cm-request, cm-grant and
// cm-notify events; nil (the default) detaches it.
func (cm *CM) SetRecorder(r *probe.Recorder) { cm.rec = r }

// Now returns the CM's current time.
func (cm *CM) Now() time.Duration { return cm.clock.Now() }

// Accounting returns a copy of the API-call counters, used by the API-cost
// model when reproducing the overhead experiments.
func (cm *CM) Accounting() Accounting { return cm.acct }

// macroflowKey identifies a macroflow: by default all flows to the same
// destination host share one macroflow. The tag distinguishes macroflows
// created by SplitFlow.
type macroflowKey struct {
	dstHost string
	tag     int
}

// Open creates a CM flow for the (proto, src, dst) tuple and attaches it to
// the macroflow for dst (creating the macroflow if needed). It corresponds to
// cm_open; the source address is part of the key to support multihomed hosts,
// a change the paper made between simulation and implementation.
func (cm *CM) Open(proto netsim.Protocol, src, dst netsim.Addr) FlowID {
	cm.acct.Opens++
	key := netsim.FlowKey{Proto: proto, Src: src, Dst: dst}
	if fl, ok := cm.byKey[key]; ok {
		// Re-opening an existing flow returns the same handle, matching the
		// idempotent behaviour of the kernel module.
		return fl.id
	}
	id := cm.nextFlowID
	cm.nextFlowID++
	mf := cm.macroflowFor(macroflowKey{dstHost: dst.Host})
	fl := &flowState{
		id:         id,
		key:        key,
		mf:         mf,
		dispatcher: DirectDispatcher(),
		threshDown: cm.cfg.DefaultThreshDown,
		threshUp:   cm.cfg.DefaultThreshUp,
		weight:     1,
		open:       true,
	}
	cm.flows[id] = fl
	cm.byKey[key] = fl
	mf.addFlow(fl)
	return id
}

// Lookup returns the flow ID for a transport flow key, or InvalidFlow if the
// flow is not managed by the CM. The IP output hook uses it to find the flow
// to charge.
func (cm *CM) Lookup(key netsim.FlowKey) FlowID {
	if fl, ok := cm.byKey[key]; ok {
		return fl.id
	}
	return InvalidFlow
}

// Close releases a flow (cm_close). The macroflow and its congestion state
// persist so that later flows to the same destination start with the learned
// window and RTT — the behaviour that Figure 7 of the paper demonstrates.
func (cm *CM) Close(f FlowID) {
	fl, ok := cm.flows[f]
	if !ok {
		cm.acct.StaleFlowCalls++
		return
	}
	cm.acct.Closes++
	fl.open = false
	fl.mf.removeFlow(fl)
	delete(cm.byKey, fl.key)
	delete(cm.flows, f)
}

// MTU returns the maximum transmission unit for the flow's path (cm_mtu).
func (cm *CM) MTU(f FlowID) int {
	if fl, ok := cm.flows[f]; ok {
		return fl.mf.mtu()
	}
	return cm.cfg.MTU
}

// FlowCount returns the number of open flows.
func (cm *CM) FlowCount() int { return len(cm.flows) }

// MacroflowCount returns the number of macroflows (including idle ones that
// retain congestion state).
func (cm *CM) MacroflowCount() int { return len(cm.macroflows) }

// MacroflowOf returns the macroflow a flow currently belongs to, for tests
// and experiments that inspect aggregation.
func (cm *CM) MacroflowOf(f FlowID) *Macroflow {
	if fl, ok := cm.flows[f]; ok {
		return fl.mf
	}
	return nil
}

// MacroflowTo returns the default (unsplit) macroflow aggregating flows to
// dstHost, or nil if no flow to that destination has been opened. Experiments
// use it to observe a destination's shared congestion state without holding a
// flow handle.
func (cm *CM) MacroflowTo(dstHost string) *Macroflow {
	return cm.macroflows[macroflowKey{dstHost: dstHost}]
}

// AggregateStatus is the cross-macroflow summary sampled by the cm[...]
// observability probes: additive quantities are summed, path properties
// reported as the worst case.
type AggregateStatus struct {
	Rate        float64       // sum of macroflow rates, bytes/s
	CWND        int           // sum of congestion windows, bytes
	Outstanding int           // sum of charged-but-unreported bytes
	SRTT        time.Duration // max smoothed RTT
	LossRate    float64       // max loss estimate
	Flows       int
	Macroflows  int
}

// AggregateStatus summarises every macroflow. Macroflows are visited in
// sorted (destination host, tag) order so the floating-point rate sum is
// independent of map iteration order — the property that keeps probe series
// byte-identical across serial and sharded runs.
func (cm *CM) AggregateStatus() AggregateStatus {
	keys := make([]macroflowKey, 0, len(cm.macroflows))
	for k := range cm.macroflows {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dstHost != keys[j].dstHost {
			return keys[i].dstHost < keys[j].dstHost
		}
		return keys[i].tag < keys[j].tag
	})
	st := AggregateStatus{Flows: len(cm.flows), Macroflows: len(cm.macroflows)}
	for _, k := range keys {
		m := cm.macroflows[k]
		st.Rate += m.Rate()
		st.CWND += m.Window()
		st.Outstanding += m.Outstanding()
		if s := m.SRTT(); s > st.SRTT {
			st.SRTT = s
		}
		if lr := m.LossRate(); lr > st.LossRate {
			st.LossRate = lr
		}
	}
	return st
}

// macroflowFor returns (creating if necessary) the macroflow for a key.
func (cm *CM) macroflowFor(key macroflowKey) *Macroflow {
	if mf, ok := cm.macroflows[key]; ok {
		return mf
	}
	mf := newMacroflow(cm, key)
	cm.macroflows[key] = mf
	return mf
}

// NotifyTransmit implements node.TransmitNotifier: the IP output routine
// reports every transmission so the CM can charge it to the right macroflow.
// Transmissions for flows the CM does not manage are ignored. This is the
// per-packet charge path, so it goes key -> flow -> macroflow with one map
// lookup instead of chaining Lookup and Notify.
func (cm *CM) NotifyTransmit(key netsim.FlowKey, nbytes int) {
	if cm.owned != nil && !cm.owned() {
		panic("cm: NotifyTransmit outside the CM's owning shard")
	}
	fl, ok := cm.byKey[key]
	if !ok {
		return
	}
	cm.notifyFlow(fl, nbytes)
}

var _ interface {
	NotifyTransmit(key netsim.FlowKey, nbytes int)
} = (*CM)(nil)
