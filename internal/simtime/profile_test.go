package simtime

import (
	"testing"
	"time"
)

// An armed profiler must attribute every fired event to its tagged kind with
// a plausible (non-negative, monotone) cost, and untagged events to KindOther.
func TestProfileAttributesKinds(t *testing.T) {
	s := NewScheduler()
	p := s.EnableProfile()
	if s.EnableProfile() != p {
		t.Fatal("EnableProfile must be idempotent and return the same profile")
	}

	fn := func(any) {}
	s.AtKind(time.Millisecond, KindRouteUpdate, func() {})
	s.AfterKind(2*time.Millisecond, KindRouteUpdate, func() {})
	s.AtArgKind(3*time.Millisecond, KindPktDeliver, fn, nil)
	s.AfterArgKind(3*time.Millisecond, KindPktDeliver, fn, nil)
	s.AtArgKeyed(4*time.Millisecond, 1, 1, KindPktDeliver, fn, nil)
	s.InjectAt(5*time.Millisecond, 0, 1, 2, KindPktDeliver, fn, nil)
	s.At(6*time.Millisecond, func() {}) // untagged
	tm := s.NewKindTimer(KindCMGrant, func() {})
	tm.Reset(7 * time.Millisecond)
	s.Run()

	snap := p.Snapshot()
	wantCounts := map[Kind]uint64{
		KindRouteUpdate: 2,
		KindPktDeliver:  4,
		KindOther:       1,
		KindCMGrant:     1,
	}
	for k, want := range wantCounts {
		if got := snap[k].Count; got != want {
			t.Errorf("kind %v: count %d, want %d", k, got, want)
		}
		if snap[k].TotalNs < 0 || snap[k].MaxNs < 0 || snap[k].TotalNs < snap[k].MaxNs {
			t.Errorf("kind %v: implausible aggregates %+v", k, snap[k])
		}
	}
	if got, want := snap.Events(), uint64(8); got != want {
		t.Errorf("total events %d, want %d", got, want)
	}
}

// Snapshot deltas (the per-window timeline breakdown) must subtract counts
// and totals; merged snapshots (per-shard roll-up) must add them.
func TestProfileSnapshotDeltaAndAdd(t *testing.T) {
	a := ProfileSnapshot{}
	a[KindPktDeliver] = KindAgg{Count: 10, TotalNs: 1000, MaxNs: 300}
	b := a
	b[KindPktDeliver] = KindAgg{Count: 25, TotalNs: 2500, MaxNs: 400}
	b[KindCMGrant] = KindAgg{Count: 5, TotalNs: 100, MaxNs: 50}

	d := b.Delta(a)
	if d[KindPktDeliver] != (KindAgg{Count: 15, TotalNs: 1500, MaxNs: 400}) {
		t.Errorf("delta pkt-deliver = %+v", d[KindPktDeliver])
	}
	if d[KindCMGrant] != (KindAgg{Count: 5, TotalNs: 100, MaxNs: 50}) {
		t.Errorf("delta cm-grant = %+v", d[KindCMGrant])
	}

	sum := a.Add(b)
	if sum[KindPktDeliver] != (KindAgg{Count: 35, TotalNs: 3500, MaxNs: 400}) {
		t.Errorf("sum pkt-deliver = %+v", sum[KindPktDeliver])
	}
	if sum.Events() != 40 || sum.TotalNs() != 3600 {
		t.Errorf("sum totals events=%d ns=%d", sum.Events(), sum.TotalNs())
	}
}

// Kind names are part of the report/timeline wire format; pin them.
func TestKindNamesStable(t *testing.T) {
	want := []string{
		"other", "pkt-transmit", "pkt-deliver", "cm-grant", "cm-notify",
		"route-update", "probe-sample", "dynamics-event", "workload-app",
	}
	if int(NumKinds) != len(want) {
		t.Fatalf("NumKinds = %d, want %d", NumKinds, len(want))
	}
	for k := Kind(0); k < NumKinds; k++ {
		if k.String() != want[k] {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want[k])
		}
	}
	if Kind(200).String() != "invalid" {
		t.Errorf("out-of-range kind name = %q", Kind(200).String())
	}
}

// Arming the profiler must not allocate in the schedule/fire steady state:
// attribution is a time read and a fixed-size array update.
func TestProfiledFireZeroAlloc(t *testing.T) {
	s := NewScheduler()
	s.EnableProfile()
	fn := func(any) {}
	var arg struct{}
	for i := 0; i < 64; i++ {
		s.AfterArgKind(time.Microsecond, KindPktTransmit, fn, &arg)
		s.Step()
	}
	allocs := testing.AllocsPerRun(200, func() {
		s.AfterArgKind(time.Microsecond, KindPktTransmit, fn, &arg)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("profiled schedule+fire allocated %.1f objects per op, want 0", allocs)
	}
}
