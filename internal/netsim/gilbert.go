package netsim

import "fmt"

// GilbertElliott configures the two-state bursty loss model of the same name:
// the link is in a Good or a Bad state, each packet arrival may flip the state,
// and each state has its own drop probability. Unlike the independent Bernoulli
// LossRate knob, losses cluster into bursts whose mean length is 1/PBadGood
// packets — the loss pattern of a fading wireless channel, which is what the
// paper's adaptation experiments assume the CM must survive.
//
// The model is driven by the link's private random source, so runs stay
// byte-identical whether scenarios execute serially or in parallel.
type GilbertElliott struct {
	// PGoodBad is the per-packet probability of a Good->Bad transition.
	PGoodBad float64 `json:"p_good_bad"`
	// PBadGood is the per-packet probability of a Bad->Good transition; the
	// mean burst length is 1/PBadGood packets.
	PBadGood float64 `json:"p_bad_good"`
	// LossGood is the drop probability while in the Good state (usually 0).
	LossGood float64 `json:"loss_good,omitempty"`
	// LossBad is the drop probability while in the Bad state. Zero is
	// normalised to 1 when the model is installed: a declared Bad state that
	// never drops would make the model a no-op.
	LossBad float64 `json:"loss_bad,omitempty"`
}

// Validate checks that every probability is in [0, 1].
func (g *GilbertElliott) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"p_good_bad", g.PGoodBad},
		{"p_bad_good", g.PBadGood},
		{"loss_good", g.LossGood},
		{"loss_bad", g.LossBad},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("gilbert-elliott: %s = %v out of [0,1]", p.name, p.v)
		}
	}
	return nil
}

// withDefaults returns a copy with the zero LossBad normalised to 1.
func (g GilbertElliott) withDefaults() GilbertElliott {
	if g.LossBad == 0 {
		g.LossBad = 1
	}
	return g
}

// geStep advances the Gilbert-Elliott process by one packet arrival: it
// records state occupancy, samples a drop in the current state and then
// samples the state transition. Called from Send for every offered packet
// while a model is installed.
func (l *Link) geStep() bool {
	g := l.gilbert
	var lossP, transP float64
	if l.geBad {
		l.stats.GEBadPackets++
		lossP, transP = g.LossBad, g.PBadGood
	} else {
		l.stats.GEGoodPackets++
		lossP, transP = g.LossGood, g.PGoodBad
	}
	drop := lossP > 0 && l.rng.Float64() < lossP
	if transP > 0 && l.rng.Float64() < transP {
		l.geBad = !l.geBad
		l.stats.GETransitions++
	}
	return drop
}
