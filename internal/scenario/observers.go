// Barrier observers: whole-simulation sampling instants shared by serial and
// sharded execution.
//
// A per-host probe can sample on its owner's scheduler, but an observer that
// reads *across* the whole simulation — an aggregate probe summing links on
// different shards, the protocol convergence baseline summing every host's
// drop counters — needs an instant where no shard is mid-window. The
// observation schedule provides exactly that: RunToEnd pauses at each
// registered time t with every event strictly before t executed and no event
// at t executed yet. A serial run realises the pause with RunUntilBefore(t);
// a sharded run folds t into the synchronization-barrier schedule and fires
// after the drain, before same-instant dynamics events. Both paths observe
// identical state, so results remain byte-identical across execution modes.
//
// Observers are observation-only by contract: they must not mutate
// simulation state or consume randomness. Runs driven manually (Build +
// Start + a caller-owned scheduler loop) never fire observers.
package scenario

import (
	"sort"
	"time"
)

// addObserver registers fire to run at each of the given instants (values
// outside (0, Duration] are ignored). Call before RunToEnd; Start finalises
// the schedule.
func (s *Sim) addObserver(times []time.Duration, fire func(at time.Duration)) {
	var mine []time.Duration
	for _, t := range times {
		if t > 0 && t <= s.Spec.Duration {
			mine = append(mine, t)
		}
	}
	if len(mine) == 0 {
		return
	}
	sort.Slice(mine, func(i, j int) bool { return mine[i] < mine[j] })
	s.obsTimes = append(s.obsTimes, mine...)
	idx := 0
	s.obsFns = append(s.obsFns, func(at time.Duration) {
		for idx < len(mine) && mine[idx] < at {
			idx++
		}
		if idx < len(mine) && mine[idx] == at {
			fire(at)
			idx++
		}
	})
}

// finishObservers sorts and dedupes the merged schedule. Called once from
// Start after every registration.
func (s *Sim) finishObservers() {
	if len(s.obsTimes) == 0 {
		return
	}
	sort.Slice(s.obsTimes, func(i, j int) bool { return s.obsTimes[i] < s.obsTimes[j] })
	uniq := s.obsTimes[:1]
	for _, t := range s.obsTimes[1:] {
		if t != uniq[len(uniq)-1] {
			uniq = append(uniq, t)
		}
	}
	s.obsTimes = uniq
}

// fireObservers runs every registered observer for instant at; each observer
// ignores instants outside its own schedule.
func (s *Sim) fireObservers(at time.Duration) {
	for _, fn := range s.obsFns {
		fn(at)
	}
}
