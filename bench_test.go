// Package repro's root benchmark harness: one testing.B benchmark per table
// and figure of the paper's evaluation (each reports the headline metric of
// that experiment via b.ReportMetric), plus wall-clock micro-benchmarks of
// the CM API itself, mirroring the paper's end-system overhead measurements.
//
// Run with:  go test -bench=. -benchmem
package repro

import (
	"testing"
	"time"

	"repro/internal/apicost"
	"repro/internal/app"
	"repro/internal/cm"
	"repro/internal/experiments"
	"repro/internal/netsim"
	"repro/internal/simtime"
)

// ---------------------------------------------------------------------------
// Per-figure benchmarks. Each iteration runs a scaled-down version of the
// experiment; the custom metrics carry the figure's headline numbers.
// ---------------------------------------------------------------------------

func BenchmarkFig3ThroughputVsLoss(b *testing.B) {
	cfg := experiments.Fig3Config{
		LossPercents:  []float64{0, 1, 2, 5},
		TransferBytes: 400_000,
		Trials:        1,
	}
	var cmAt1, linuxAt1 float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig3(cfg)
		for _, p := range res.Points {
			if p.LossPct == 1 {
				cmAt1, linuxAt1 = p.CMKBps, p.LinuxKBps
			}
		}
	}
	b.ReportMetric(cmAt1, "cm_KBps@1%loss")
	b.ReportMetric(linuxAt1, "linux_KBps@1%loss")
}

func BenchmarkFig4LongTransfer(b *testing.B) {
	cfg := experiments.Fig4Config{BufferCounts: []int{1000}, BufferSize: 8192}
	var cmKBps, linuxKBps float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig4(cfg)
		cmKBps = res.Points[0].CMKBps
		linuxKBps = res.Points[0].LinuxKBps
	}
	b.ReportMetric(cmKBps, "cm_KBps")
	b.ReportMetric(linuxKBps, "linux_KBps")
}

func BenchmarkFig5CPUOverhead(b *testing.B) {
	cfg := experiments.Fig5Config{Fig4: experiments.Fig4Config{BufferCounts: []int{1000}, BufferSize: 8192}}
	var diff float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig5(cfg)
		diff = res.Points[0].DiffPercentU
	}
	b.ReportMetric(diff, "cm_cpu_overhead_pp")
}

func BenchmarkFig6APIOverhead(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig6(experiments.Fig6Config{})
		worst = res.WorstCaseReduction
	}
	b.ReportMetric(100*worst, "worst_case_reduction_%")
}

func BenchmarkTable1Overheads(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.RunTable1(apicost.DefaultCosts()).Rows)
	}
	b.ReportMetric(float64(rows), "rows")
}

func BenchmarkFig7SharedState(b *testing.B) {
	cfg := experiments.Fig7Config{FileSize: 96 * 1024, Requests: 5, Spacing: 300 * time.Millisecond}
	var improvement float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFig7(cfg)
		improvement = res.ImprovementPct
	}
	b.ReportMetric(improvement, "cm_improvement_%")
}

func benchAdaptation(b *testing.B, cfg experiments.AdaptationConfig) {
	b.Helper()
	cfg.Duration = 12 * time.Second
	var switches float64
	var goodput float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunAdaptation(cfg)
		switches = float64(res.Stats.LayerSwitches)
		goodput = res.ClientRate.Mean() / 1024
	}
	b.ReportMetric(switches, "layer_switches")
	b.ReportMetric(goodput, "client_KBps")
}

func BenchmarkFig8ALFAdaptation(b *testing.B) {
	benchAdaptation(b, experiments.Fig8Config())
}

func BenchmarkFig9RateCallback(b *testing.B) {
	benchAdaptation(b, experiments.Fig9Config())
}

func BenchmarkFig10DelayedFeedback(b *testing.B) {
	benchAdaptation(b, experiments.Fig10Config())
}

func BenchmarkFairnessEnsemble(b *testing.B) {
	cfg := experiments.FairnessConfig{EnsembleFlows: 4, Duration: 15 * time.Second}
	var cmShare, independentShare float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunFairness(cfg)
		cmShare = res.CMEnsembleShare
		independentShare = res.IndependentEnsembleShare
	}
	b.ReportMetric(cmShare, "cm_ensemble_share")
	b.ReportMetric(independentShare, "independent_share")
}

func BenchmarkConnSetup(b *testing.B) {
	var cmMs float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunConnSetup()
		cmMs = float64(res.CM) / float64(time.Millisecond)
	}
	b.ReportMetric(cmMs, "cm_setup_ms")
}

func BenchmarkAblationInitialWindow(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		res := experiments.RunAblationInitialWindow()
		penalty = res.FirstRequestIW1ms - res.FirstRequestIW2ms
	}
	b.ReportMetric(penalty, "iw1_penalty_ms")
}

func BenchmarkAblationBulkCalls(b *testing.B) {
	var saved float64
	for i := 0; i < b.N; i++ {
		saved = float64(experiments.RunAblationBulkCalls(32).CrossingsSaved)
	}
	b.ReportMetric(saved, "crossings_saved")
}

func BenchmarkAblationScheduler(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = experiments.RunAblationScheduler().WeightedShare
	}
	b.ReportMetric(ratio, "weighted_ratio")
}

// ---------------------------------------------------------------------------
// Wall-clock micro-benchmarks of the CM API (the reproduction's equivalent of
// the paper's per-packet CPU cost measurements). These run the CM against the
// real clock, not the simulator.
// ---------------------------------------------------------------------------

func newWallCM() (*cm.CM, cm.FlowID) {
	clock := simtime.NewWallClock()
	c := cm.New(clock, clock, cm.WithMTU(1500))
	f := c.Open(netsim.ProtoTCP,
		netsim.Addr{Host: "sender", Port: 4000},
		netsim.Addr{Host: "receiver", Port: 80})
	return c, f
}

func BenchmarkCMRequestGrantNotify(b *testing.B) {
	c, f := newWallCM()
	c.RegisterSend(f, func(id cm.FlowID) {
		c.Notify(id, 1500)
	})
	// Keep the window open so every request is granted immediately.
	c.Update(f, 0, 1<<20, cm.NoLoss, time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Request(f)
		c.Update(f, 1500, 1500, cm.NoLoss, time.Millisecond)
	}
}

func BenchmarkCMUpdate(b *testing.B) {
	c, f := newWallCM()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Update(f, 1500, 1500, cm.NoLoss, time.Millisecond)
	}
}

func BenchmarkCMNotifyViaIPHook(b *testing.B) {
	c, f := newWallCM()
	key := c.FlowInfo(f).Key
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.NotifyTransmit(key, 1500)
		if i%16 == 15 {
			// Keep outstanding bounded so the benchmark measures steady state.
			c.Update(f, 16*1500, 16*1500, cm.NoLoss, time.Millisecond)
		}
	}
}

func BenchmarkCMQuery(b *testing.B) {
	c, f := newWallCM()
	c.Update(f, 1500, 1500, cm.NoLoss, time.Millisecond)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Query(f); !ok {
			b.Fatal("query failed")
		}
	}
}

func BenchmarkCMOpenClose(b *testing.B) {
	clock := simtime.NewWallClock()
	c := cm.New(clock, clock)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := c.Open(netsim.ProtoTCP,
			netsim.Addr{Host: "sender", Port: 10000 + (i % 1000)},
			netsim.Addr{Host: "receiver", Port: 80})
		c.Close(f)
	}
}

func BenchmarkAPICostModel(b *testing.B) {
	costs := apicost.DefaultCosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range apicost.Variants() {
			apicost.PerPacketCost(v, 1400, costs)
		}
	}
}

// BenchmarkSenderFeedbackConversion measures the user-space feedback
// bookkeeping every UDP-based CM application performs per report.
func BenchmarkSenderFeedbackConversion(b *testing.B) {
	clock := simtime.NewWallClock()
	fb := app.NewSenderFeedback(clock, func(int, int, cm.LossMode, time.Duration) {})
	b.ResetTimer()
	var seq int64
	var total int64
	for i := 0; i < b.N; i++ {
		seq++
		fb.OnSend(seq, 1000)
		total += 1000
		fb.OnReport(app.Report{TotalPackets: seq, TotalBytes: total, HighestSeq: seq, EchoSentAt: time.Millisecond})
	}
}
