package simtime

import (
	"testing"
	"time"
)

// Regression test for the canceled-event leak: Cancel used to only set a
// flag, leaving the event in the heap until its timestamp. It must now be
// removed immediately.
func TestCancelShrinksHeapImmediately(t *testing.T) {
	s := NewScheduler()
	events := make([]*Event, 100)
	for i := range events {
		events[i] = s.At(time.Duration(i+1)*time.Second, func() {})
	}
	if s.Len() != 100 {
		t.Fatalf("Len() = %d, want 100", s.Len())
	}
	// Cancel every other event, including first and last heap positions.
	for i := 0; i < len(events); i += 2 {
		events[i].Cancel()
		want := 100 - i/2 - 1
		if s.Len() != want {
			t.Fatalf("after cancelling %d events, Len() = %d, want %d", i/2+1, s.Len(), want)
		}
	}
	ran := 0
	for s.Step() {
		ran++
	}
	if ran != 50 {
		t.Fatalf("executed %d events, want 50", ran)
	}
}

// Cancelling from inside another event's callback must also remove it
// immediately and keep ordering intact.
func TestCancelFromCallbackRemovesPending(t *testing.T) {
	s := NewScheduler()
	var order []string
	var victim *Event
	victim = s.At(20*time.Millisecond, func() { order = append(order, "victim") })
	s.At(10*time.Millisecond, func() {
		order = append(order, "canceller")
		victim.Cancel()
		if s.Len() != 1 {
			t.Errorf("Len() inside callback = %d, want 1 (the 30ms event)", s.Len())
		}
	})
	s.At(30*time.Millisecond, func() { order = append(order, "last") })
	s.Run()
	if len(order) != 2 || order[0] != "canceller" || order[1] != "last" {
		t.Fatalf("order = %v, want [canceller last]", order)
	}
}

func TestDoubleCancelIsANoOp(t *testing.T) {
	s := NewScheduler()
	ev := s.At(time.Millisecond, func() {})
	other := s.At(2*time.Millisecond, func() {})
	ev.Cancel()
	ev.Cancel() // must not corrupt the freelist or the heap
	if s.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", s.Len())
	}
	s.Run()
	if other.Canceled() {
		t.Fatal("unrelated event reported canceled")
	}
}

func TestAtArgPassesArgument(t *testing.T) {
	s := NewScheduler()
	type box struct{ n int }
	b := &box{n: 7}
	var got *box
	s.AtArg(time.Millisecond, func(x any) { got = x.(*box) }, b)
	s.Run()
	if got != b {
		t.Fatalf("AtArg delivered %v, want %v", got, b)
	}
}

func TestAfterArgOrderingMatchesAfter(t *testing.T) {
	s := NewScheduler()
	var order []int
	s.After(time.Millisecond, func() { order = append(order, 1) })
	s.AfterArg(time.Millisecond, func(x any) { order = append(order, x.(int)) }, 2)
	s.After(time.Millisecond, func() { order = append(order, 3) })
	s.Run()
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("FIFO tie-break violated across After/AfterArg: %v", order)
		}
	}
}

// Events are recycled through the freelist after firing; schedule/fire cycles
// must be allocation-free in steady state.
func TestAfterAndFireZeroAlloc(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	// Warm up the freelist and the heap's backing array.
	for i := 0; i < 64; i++ {
		s.After(time.Microsecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(time.Microsecond, fn)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("After+fire allocated %.1f objects per op, want 0", allocs)
	}
}

// Timer Reset/fire cycles (the RTO / background-timer pattern) must also be
// allocation-free once the timer exists.
func TestTimerResetFireZeroAlloc(t *testing.T) {
	s := NewScheduler()
	tm := s.NewTimer(func() {})
	tm.Reset(time.Microsecond)
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.Reset(time.Microsecond)
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("Timer Reset+fire allocated %.1f objects per op, want 0", allocs)
	}
}

// Cancel must recycle the event: a schedule/cancel churn loop holds the heap
// at a bounded size and allocates nothing.
func TestScheduleCancelZeroAlloc(t *testing.T) {
	s := NewScheduler()
	fn := func() {}
	for i := 0; i < 64; i++ {
		s.After(time.Microsecond, fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		ev := s.After(time.Second, fn)
		ev.Cancel()
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel allocated %.1f objects per op, want 0", allocs)
	}
	if s.Len() != 0 {
		t.Fatalf("heap retained %d events after cancel churn", s.Len())
	}
}
