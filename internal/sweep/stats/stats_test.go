package stats

import (
	"math"
	"testing"
)

func close(a, b float64) bool { return math.Abs(a-b) <= 1e-9*math.Max(1, math.Abs(b)) }

// TestSummarizeUniform pins the exact aggregation of the integers 1..100:
// every statistic has a closed form, so the test is exact, not approximate.
func TestSummarizeUniform(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = float64(100 - i) // descending: Summarize must sort
	}
	s := Summarize(vals)
	if s.N != 100 {
		t.Fatalf("n = %d", s.N)
	}
	if s.Mean != 50.5 {
		t.Fatalf("mean = %v, want 50.5", s.Mean)
	}
	// Sample variance of 1..n is n(n+1)/12: 100*101/12 = 841.666...
	if want := math.Sqrt(100 * 101.0 / 12); !close(s.Stddev, want) {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 1 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Nearest rank: p50 = element ceil(0.5*100) = 50, p99 = element 99.
	if s.P50 != 50 {
		t.Fatalf("p50 = %v, want 50", s.P50)
	}
	if s.P99 != 99 {
		t.Fatalf("p99 = %v, want 99", s.P99)
	}
}

// TestSummarizeKnownSet checks a small set whose moments are hand-computed.
func TestSummarizeKnownSet(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// Sum of squared deviations is 32; sample stddev = sqrt(32/7).
	if want := math.Sqrt(32.0 / 7); !close(s.Stddev, want) {
		t.Fatalf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.P50 != 4 { // ceil(0.5*8) = 4th element
		t.Fatalf("p50 = %v, want 4", s.P50)
	}
	if s.P99 != 9 { // ceil(0.99*8) = 8th element
		t.Fatalf("p99 = %v, want 9", s.P99)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s != (Summary{}) {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	want := Summary{N: 1, Mean: 42, Min: 42, Max: 42, P50: 42, P99: 42}
	if s != want {
		t.Fatalf("single-value summary = %+v", s)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.51, 30}, {0.75, 30}, {0.99, 40}, {1, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.q); got != c.want {
			t.Fatalf("p%v = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

// TestSummarizeDoesNotMutate guards the aggregation layer's purity: CSV
// determinism depends on summaries being order-independent of each other.
func TestSummarizeDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Summarize(vals)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatalf("input mutated: %v", vals)
	}
}
