package probe

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("rate")
	if _, ok := s.Last(); ok {
		t.Fatal("empty series should have no last point")
	}
	s.Add(time.Second, 10)
	s.Add(2*time.Second, 20)
	s.Add(3*time.Second, 30)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if s.Mean() != 20 || s.Min() != 10 || s.Max() != 30 {
		t.Fatalf("mean/min/max = %v/%v/%v", s.Mean(), s.Min(), s.Max())
	}
	last, ok := s.Last()
	if !ok || last.V != 30 || last.T != 3*time.Second {
		t.Fatalf("Last = %+v", last)
	}
	if got := s.Values(); len(got) != 3 || got[1] != 20 {
		t.Fatalf("Values = %v", got)
	}
	if p := s.At(0); p.V != 10 {
		t.Fatalf("At(0) = %+v", p)
	}
}

func TestEmptySeriesStats(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty series stats should be zero")
	}
}

func TestResampleAveragesAndStepFills(t *testing.T) {
	s := NewSeries("x")
	s.Add(100*time.Millisecond, 10)
	s.Add(200*time.Millisecond, 20)
	// gap in (1s,2s)
	s.Add(2100*time.Millisecond, 40)
	rs := s.Resample(0, 3*time.Second, time.Second)
	if rs.Len() != 4 {
		t.Fatalf("resampled length %d, want 4", rs.Len())
	}
	if rs.At(0).V != 15 {
		t.Fatalf("bucket 0 = %v, want 15", rs.At(0).V)
	}
	if rs.At(1).V != 15 {
		t.Fatalf("empty bucket should carry previous value, got %v", rs.At(1).V)
	}
	if rs.At(2).V != 40 {
		t.Fatalf("bucket 2 = %v, want 40", rs.At(2).V)
	}
}

func TestResampleValidation(t *testing.T) {
	s := NewSeries("x")
	defer func() {
		if recover() == nil {
			t.Fatal("Resample with zero width should panic")
		}
	}()
	s.Resample(0, time.Second, 0)
}

func TestResampleEmptyRange(t *testing.T) {
	s := NewSeries("x")
	s.Add(time.Second, 1)
	rs := s.Resample(2*time.Second, time.Second, time.Second)
	if rs.Len() != 0 {
		t.Fatalf("inverted range should produce empty series, got %d", rs.Len())
	}
}

func TestTransitionCount(t *testing.T) {
	s := NewSeries("layer")
	for _, v := range []float64{1, 1, 2, 2, 1, 3, 3} {
		s.Add(0, v)
	}
	if got := s.TransitionCount(); got != 3 {
		t.Fatalf("TransitionCount = %d, want 3", got)
	}
}

func TestCSVOutput(t *testing.T) {
	a := NewSeries("sent")
	b := NewSeries("reported")
	a.Add(time.Second, 1)
	a.Add(2*time.Second, 2)
	b.Add(time.Second, 10)
	out := CSV(a, b)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV lines = %d, want 3: %q", len(lines), out)
	}
	if lines[0] != "time_s,sent,reported" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1.000,1.000,10.000") {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if !strings.HasSuffix(lines[2], ",") {
		t.Fatalf("short series should leave trailing empty cell: %q", lines[2])
	}
	if CSV() == "" {
		t.Fatal("CSV with no series should still emit a header")
	}
}

func TestRateEstimatorWindows(t *testing.T) {
	re := NewRateEstimator("tx", time.Second)
	// 1000 bytes in first second, 3000 in the third, nothing in the second.
	re.Record(200*time.Millisecond, 500)
	re.Record(800*time.Millisecond, 500)
	re.Record(2500*time.Millisecond, 3000)
	s := re.Finish()
	if s.Len() != 3 {
		t.Fatalf("series length %d, want 3", s.Len())
	}
	if s.At(0).V != 1000 {
		t.Fatalf("first window rate %v, want 1000", s.At(0).V)
	}
	if s.At(1).V != 0 {
		t.Fatalf("second window rate %v, want 0", s.At(1).V)
	}
	if s.At(2).V != 3000 {
		t.Fatalf("third window rate %v, want 3000", s.At(2).V)
	}
}

func TestRateEstimatorAlignsWindowStart(t *testing.T) {
	re := NewRateEstimator("tx", time.Second)
	re.Record(1700*time.Millisecond, 100)
	s := re.Finish()
	if s.Len() != 1 || s.At(0).T != 2*time.Second {
		t.Fatalf("window should close at 2s, got %+v", s.Points)
	}
}

func TestRateEstimatorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero window should panic")
		}
	}()
	NewRateEstimator("x", 0)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2, 5})
	if s.Count != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("stddev = %v, want sqrt(2)", s.StdDev)
	}
	if s.String() == "" {
		t.Fatal("String should be non-empty")
	}
	empty := Summarize(nil)
	if empty.Count != 0 || empty.Mean != 0 {
		t.Fatalf("empty summary = %+v", empty)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.P50 != 5 {
		t.Fatalf("P50 of {0,10} = %v, want 5", s.P50)
	}
	if s.P90 != 9 {
		t.Fatalf("P90 of {0,10} = %v, want 9", s.P90)
	}
}

// Property: the rate estimator conserves bytes — the sum over windows of
// rate*window equals the total bytes recorded.
func TestPropertyRateEstimatorConservesBytes(t *testing.T) {
	f := func(events []uint16) bool {
		re := NewRateEstimator("x", 500*time.Millisecond)
		var total int64
		t := time.Duration(0)
		for _, e := range events {
			t += time.Duration(e%200) * time.Millisecond
			n := int(e%1000) + 1
			total += int64(n)
			re.Record(t, n)
		}
		s := re.Finish()
		var got float64
		for _, p := range s.Points {
			got += p.V * 0.5
		}
		return math.Abs(got-float64(total)) < 1e-6*math.Max(1, float64(total))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize is order-invariant and min <= p50 <= p90 <= p99 <= max.
func TestPropertySummaryOrdering(t *testing.T) {
	f := func(vs []float64) bool {
		for i, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				vs[i] = 0
			}
		}
		s := Summarize(vs)
		if len(vs) == 0 {
			return s.Count == 0
		}
		rev := make([]float64, len(vs))
		for i, v := range vs {
			rev[len(vs)-1-i] = v
		}
		s2 := Summarize(rev)
		if s.P50 != s2.P50 || s.Mean != s2.Mean {
			return false
		}
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
