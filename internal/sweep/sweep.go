// Package sweep is the parameter-sweep campaign engine: the declarative
// front door for every figure reproduction and perf study that varies
// simulation parameters. A Campaign holds one base scenario.Spec plus one or
// more Axes — linear, log or list sweeps addressed into the spec by a small
// path language (see patch.go) — and expands into the full cross-product of
// concrete Specs with derived per-point seeds. Execution fans the expansion
// through the scenario engine's parallel Runner (whose results are
// byte-identical to a serial run), and the stats layer aggregates every
// numeric result field across seed replicates into mean/stddev/min/max/
// p50/p99 summaries with deterministic CSV and JSON emitters: the same
// campaign always produces the same bytes, whatever the worker count.
//
// Seed derivation pairs variants deliberately: the per-point seed offset is
// computed from the point's position along the *numeric* axes only, so two
// points that differ only in a string axis (e.g. workload[0].cc = cm vs
// native) replay identical network randomness — the paired-comparison design
// the paper's Figure 3 used on its Dummynet testbed.
package sweep

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/dynamics"
	"repro/internal/probe"
	"repro/internal/scenario"
	"repro/internal/sweep/stats"
)

// Axis scales.
const (
	// ScaleLinear spaces Steps values evenly over [Min, Max].
	ScaleLinear = "linear"
	// ScaleLog spaces Steps values geometrically over [Min, Max] (both > 0).
	ScaleLog = "log"
	// ScaleList enumerates Values (or Strings) as given. It is implied when
	// either list is set.
	ScaleList = "list"
)

// Axis is one swept dimension: a spec parameter and the values it takes.
// Exactly one of {Values, Strings, Min/Max/Steps} describes the values.
type Axis struct {
	// Param addresses the swept parameter (see the grammar in patch.go).
	Param string `json:"param"`
	// Scale is ScaleLinear (default), ScaleLog or ScaleList.
	Scale string `json:"scale,omitempty"`
	// Min, Max and Steps describe a generated range.
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	Steps int     `json:"steps,omitempty"`
	// Values is an explicit numeric list.
	Values []float64 `json:"values,omitempty"`
	// Strings is an explicit string list (variant axes: cc, kind). String
	// axes do not perturb the derived seeds, pairing their variants.
	Strings []string `json:"strings,omitempty"`
}

// numeric reports whether the axis sweeps numbers (rather than strings).
func (a Axis) numeric() bool { return len(a.Strings) == 0 }

// expand returns the axis values in sweep order.
func (a Axis) expand() ([]Value, error) {
	if a.Param == "" {
		return nil, fmt.Errorf("sweep: axis without a param")
	}
	if len(a.Strings) > 0 {
		if len(a.Values) > 0 || a.Steps != 0 || (a.Scale != "" && a.Scale != ScaleList) {
			return nil, fmt.Errorf("sweep: axis %q mixes strings with numeric range fields", a.Param)
		}
		vals := make([]Value, len(a.Strings))
		for i, s := range a.Strings {
			vals[i] = Value{Param: a.Param, Str: s, IsString: true}
		}
		return vals, nil
	}
	if len(a.Values) > 0 {
		if a.Steps != 0 || (a.Scale != "" && a.Scale != ScaleList) {
			return nil, fmt.Errorf("sweep: axis %q mixes an explicit list with range fields", a.Param)
		}
		vals := make([]Value, len(a.Values))
		for i, v := range a.Values {
			vals[i] = Value{Param: a.Param, Num: v}
		}
		return vals, nil
	}
	if a.Steps < 1 {
		return nil, fmt.Errorf("sweep: axis %q needs values, strings, or steps >= 1", a.Param)
	}
	scale := a.Scale
	if scale == "" {
		scale = ScaleLinear
	}
	vals := make([]Value, a.Steps)
	for i := 0; i < a.Steps; i++ {
		frac := 0.0
		if a.Steps > 1 {
			frac = float64(i) / float64(a.Steps-1)
		}
		var v float64
		switch scale {
		case ScaleLinear:
			v = a.Min + (a.Max-a.Min)*frac
		case ScaleLog:
			if a.Min <= 0 || a.Max <= 0 {
				return nil, fmt.Errorf("sweep: axis %q: log scale needs min, max > 0", a.Param)
			}
			v = a.Min * math.Pow(a.Max/a.Min, frac)
		default:
			return nil, fmt.Errorf("sweep: axis %q: unknown scale %q", a.Param, scale)
		}
		vals[i] = Value{Param: a.Param, Num: v}
	}
	return vals, nil
}

// Value is one concrete axis coordinate of a sweep point.
type Value struct {
	Param    string  `json:"param"`
	Num      float64 `json:"num,omitempty"`
	Str      string  `json:"str,omitempty"`
	IsString bool    `json:"is_string,omitempty"`
}

// String formats the coordinate for CSV cells and tables.
func (v Value) String() string {
	if v.IsString {
		return v.Str
	}
	return strconv.FormatFloat(v.Num, 'g', -1, 64)
}

func (v Value) numeric(param string) (float64, error) {
	if v.IsString {
		return 0, fmt.Errorf("sweep: param %q needs a numeric value, got %q", param, v.Str)
	}
	return v.Num, nil
}

func (v Value) str(param string) (string, error) {
	if !v.IsString {
		return "", fmt.Errorf("sweep: param %q needs a string value, got %v", param, v.Num)
	}
	return v.Str, nil
}

// Campaign is a declarative parameter-sweep: a base spec, the axes that vary
// it, and how many seed replicates to run at each point.
type Campaign struct {
	Name string `json:"name,omitempty"`
	// Scenario names a registered base scenario; Base is an inline spec.
	// Exactly one of the two must be set.
	Scenario string         `json:"scenario,omitempty"`
	Base     *scenario.Spec `json:"base,omitempty"`
	// Params configures a parameterised Scenario's builder (fattree k=8).
	// Sweeping a builder parameter uses a param.<name> axis instead, which
	// overrides the same-named entry here point by point.
	Params map[string]float64 `json:"params,omitempty"`
	// Axes are crossed in declaration order: the first axis varies slowest.
	Axes []Axis `json:"axes"`
	// Replicates runs each point this many times under derived seeds
	// (default 1).
	Replicates int `json:"replicates,omitempty"`
	// Seed bases the per-point seed derivation (default: the base spec's
	// seed, or 1).
	Seed int64 `json:"seed,omitempty"`
	// Metrics selects the flattened result fields to aggregate, with *
	// wildcards (default DefaultMetrics). See Flatten for the key space.
	Metrics []string `json:"metrics,omitempty"`
	// Shards applies sharded execution to every expanded spec (optional).
	Shards int `json:"shards,omitempty"`
	// Probes appends declarative sampling probes (see internal/probe) to
	// every expanded spec, after any the base spec already carries. Each
	// probe's series feeds the aggregation layer as probe.<name>.{mean,min,
	// max,last,samples} metrics — covered by DefaultMetrics, so adding a
	// campaign probe immediately adds columns to the CSV.
	Probes []probe.Spec `json:"probes,omitempty"`
	// Plots declares the figures to render from the executed campaign (see
	// plot.go); WritePlots derives defaults from Metrics/Probes when empty.
	Plots []Plot `json:"plots,omitempty"`
}

// DefaultMetrics aggregates the derived whole-run totals plus the summaries
// of any declared probes.
var DefaultMetrics = []string{"total.*", "probe.*"}

// seedPointStride and seedReplicateStride derive per-run seeds:
//
//	seed(point, replicate) = base + numericIndex(point)*seedPointStride
//	                              + replicate*seedReplicateStride
//
// where numericIndex is the point's row-major index over the numeric axes
// only. A "seed" axis overrides the point term: the axis value becomes the
// base and only the replicate term is added. The constants are part of the
// campaign file format (a campaign re-run elsewhere must reproduce the same
// runs) and are pinned by TestCampaignExpansionGolden.
const (
	seedPointStride     = 1_000_003
	seedReplicateStride = 7919
)

// Point is one coordinate of the expanded cross-product.
type Point struct {
	// Index is the point's row-major position (first axis slowest).
	Index int `json:"index"`
	// Values holds one coordinate per axis, in axis order.
	Values []Value `json:"values"`
	// Seeds are the replicate seeds, in replicate order.
	Seeds []int64 `json:"seeds"`
	// Specs are the concrete replicate specs, in replicate order.
	Specs []scenario.Spec `json:"-"`
}

// base resolves the campaign's base spec (a private copy).
func (c Campaign) base() (scenario.Spec, error) {
	switch {
	case c.Base != nil && c.Scenario != "":
		return scenario.Spec{}, fmt.Errorf("sweep: campaign %q sets both base and scenario", c.Name)
	case c.Base != nil:
		if len(c.Params) > 0 {
			return scenario.Spec{}, fmt.Errorf("sweep: campaign %q sets builder params on an inline base spec", c.Name)
		}
		return cloneSpec(*c.Base), nil
	case c.Scenario != "":
		spec, err := scenario.LookupParams(c.Scenario, c.Params)
		if err != nil {
			return scenario.Spec{}, fmt.Errorf("sweep: campaign %q: %w", c.Name, err)
		}
		return spec, nil
	}
	return scenario.Spec{}, fmt.Errorf("sweep: campaign %q has neither base nor scenario", c.Name)
}

// Expand materialises the cross-product: every point of every axis
// combination, with Replicates concrete Specs per point. It is a pure
// function of the campaign — expansion never runs anything.
func (c Campaign) Expand() ([]Point, error) {
	base, err := c.base()
	if err != nil {
		return nil, err
	}
	if len(c.Axes) == 0 {
		return nil, fmt.Errorf("sweep: campaign %q has no axes", c.Name)
	}
	axes := make([][]Value, len(c.Axes))
	total := 1
	hasParamAxis := false
	for i, a := range c.Axes {
		vals, err := a.expand()
		if err != nil {
			return nil, err
		}
		if _, ok := paramAxis(a.Param); ok {
			hasParamAxis = true
			if c.Scenario == "" {
				return nil, fmt.Errorf("sweep: campaign %q: axis %q needs a named parameterised scenario, not an inline base", c.Name, a.Param)
			}
		}
		axes[i] = vals
		total *= len(vals)
	}
	reps := c.Replicates
	if reps <= 0 {
		reps = 1
	}
	seedBase := c.Seed
	if seedBase == 0 {
		seedBase = base.Seed
	}
	if seedBase == 0 {
		seedBase = 1
	}
	points := make([]Point, 0, total)
	for p := 0; p < total; p++ {
		pt := Point{Index: p, Values: make([]Value, len(axes))}
		// Decompose the row-major index, then compute the numeric-axes-only
		// index and catch a "seed" axis. The decomposed indices (not value
		// lookups) drive the seed derivation, so an axis that deliberately
		// repeats a value still yields distinct seeds per point.
		rem := p
		idxs := make([]int, len(axes))
		for k := len(axes) - 1; k >= 0; k-- {
			idxs[k] = rem % len(axes[k])
			rem /= len(axes[k])
			pt.Values[k] = axes[k][idxs[k]]
		}
		numIdx := 0
		seedAxis := int64(0)
		hasSeedAxis := false
		for k := range axes {
			if c.Axes[k].numeric() {
				numIdx = numIdx*len(axes[k]) + idxs[k]
				if c.Axes[k].Param == "seed" {
					hasSeedAxis = true
					seedAxis = int64(pt.Values[k].Num)
				}
			}
		}
		// Builder-parameter axes reshape the topology, so the point's base
		// comes from re-invoking the scenario factory with the campaign
		// params overlaid by this point's param.* coordinates.
		pointBase := base
		if hasParamAxis {
			merged := make(map[string]float64, len(c.Params)+len(axes))
			for name, v := range c.Params {
				merged[name] = v
			}
			for k := range axes {
				name, ok := paramAxis(c.Axes[k].Param)
				if !ok {
					continue
				}
				num, err := pt.Values[k].numeric(c.Axes[k].Param)
				if err != nil {
					return nil, err
				}
				merged[name] = num
			}
			pointBase, err = scenario.LookupParams(c.Scenario, merged)
			if err != nil {
				return nil, fmt.Errorf("sweep: campaign %q point %d: %w", c.Name, p, err)
			}
		}
		for r := 0; r < reps; r++ {
			spec := cloneSpec(pointBase)
			// The campaign-level shard count applies before the patches, so a
			// swept "shards" axis overrides it — the CSV's shards column must
			// always report what actually ran.
			if c.Shards > 0 {
				spec.Shards = c.Shards
			}
			if len(c.Probes) > 0 {
				spec.Probes = append(append([]probe.Spec(nil), spec.Probes...), c.Probes...)
			}
			for k, v := range pt.Values {
				if _, ok := paramAxis(c.Axes[k].Param); ok {
					continue // already resolved into pointBase
				}
				if err := Apply(&spec, v.Param, v); err != nil {
					return nil, err
				}
			}
			if hasSeedAxis {
				spec.Seed = seedAxis + int64(r)*seedReplicateStride
			} else {
				spec.Seed = seedBase + int64(numIdx)*seedPointStride + int64(r)*seedReplicateStride
			}
			pt.Seeds = append(pt.Seeds, spec.Seed)
			pt.Specs = append(pt.Specs, spec)
		}
		points = append(points, pt)
	}
	return points, nil
}

// cloneSpec copies the spec deeply enough that patching one expansion never
// aliases another: every slice is duplicated and per-link Gilbert models are
// copied (CMOpts, being opaque function values, are shared by reference).
func cloneSpec(s scenario.Spec) scenario.Spec {
	s.Links = append([]scenario.LinkSpec(nil), s.Links...)
	for i := range s.Links {
		if g := s.Links[i].Gilbert; g != nil {
			cp := *g
			s.Links[i].Gilbert = &cp
		}
	}
	s.Routers = append([]string(nil), s.Routers...)
	s.CMHosts = append([]string(nil), s.CMHosts...)
	s.Workloads = append([]scenario.Workload(nil), s.Workloads...)
	s.Events = append([]dynamics.Event(nil), s.Events...)
	for i := range s.Events {
		if g := s.Events[i].Gilbert; g != nil {
			cp := *g
			s.Events[i].Gilbert = &cp
		}
	}
	s.Generators = append([]dynamics.Generator(nil), s.Generators...)
	s.Probes = append([]probe.Spec(nil), s.Probes...)
	s.HierRoots = append([]string(nil), s.HierRoots...)
	if s.Domains != nil {
		d := make(map[string]string, len(s.Domains))
		for k, v := range s.Domains {
			d[k] = v
		}
		s.Domains = d
	}
	return s
}

// paramAxis splits a builder-parameter axis ("param.k" -> "k", true); other
// axis params return false.
func paramAxis(param string) (string, bool) {
	return strings.CutPrefix(param, "param.")
}

// PointResult is one sweep point's executed outcome.
type PointResult struct {
	Index  int     `json:"index"`
	Values []Value `json:"values"`
	Seeds  []int64 `json:"seeds"`
	// Failed counts replicates whose run errored; Errors holds their
	// messages in replicate order.
	Failed int      `json:"failed,omitempty"`
	Errors []string `json:"errors,omitempty"`
	// Metrics aggregates each selected flattened result field across the
	// successful replicates.
	Metrics map[string]stats.Summary `json:"metrics,omitempty"`
	// Results are the raw replicate results (successful ones, in replicate
	// order); kept for callers that post-process beyond the summaries, and
	// deliberately excluded from the JSON emitter.
	Results []*scenario.Result `json:"-"`
}

// CampaignResult is the executed campaign: one PointResult per point, in
// expansion order.
type CampaignResult struct {
	Name string `json:"name,omitempty"`
	// Params lists the axis params, in axis order (the CSV column order).
	Params     []string      `json:"params"`
	Replicates int           `json:"replicates"`
	Points     []PointResult `json:"points"`
}

// Run expands the campaign and executes every spec through the runner. The
// runner's worker count changes wall-clock time only: results, summaries and
// the emitted CSV/JSON are byte-identical for any Parallel setting.
func (c Campaign) Run(r scenario.Runner) (*CampaignResult, error) {
	points, err := c.Expand()
	if err != nil {
		return nil, err
	}
	var specs []scenario.Spec
	for _, pt := range points {
		specs = append(specs, pt.Specs...)
	}
	outcomes := r.RunAll(specs)

	metrics := c.Metrics
	if len(metrics) == 0 {
		metrics = DefaultMetrics
	}
	res := &CampaignResult{
		Name:       c.Name,
		Replicates: len(points[0].Seeds),
		Points:     make([]PointResult, 0, len(points)),
	}
	for _, a := range c.Axes {
		res.Params = append(res.Params, a.Param)
	}
	next := 0
	for _, pt := range points {
		pr := PointResult{Index: pt.Index, Values: pt.Values, Seeds: pt.Seeds}
		var flats []map[string]float64
		for range pt.Specs {
			o := outcomes[next]
			next++
			if o.Err != "" {
				pr.Failed++
				pr.Errors = append(pr.Errors, o.Err)
				continue
			}
			pr.Results = append(pr.Results, o.Result)
			flats = append(flats, Flatten(o.Result))
		}
		if len(flats) > 0 {
			pr.Metrics = make(map[string]stats.Summary)
			for _, key := range selectKeys(flats, metrics) {
				var vals []float64
				for _, f := range flats {
					if v, ok := f[key]; ok {
						vals = append(vals, v)
					}
				}
				pr.Metrics[key] = stats.Summarize(vals)
			}
		}
		res.Points = append(res.Points, pr)
	}
	return res, nil
}
