package cm

import (
	"sort"

	"repro/internal/netsim"
)

// This file implements the host-level fault surface of the CM: process
// restart (crash of the in-kernel module or its host), macroflow state
// discard on address change, and the Audit snapshot the churn-soak invariant
// checker runs against. The paper argues the CM keeps applications
// well-behaved when the network misbehaves; these entry points let scenarios
// misbehave at the host too.

// Epoch returns the CM's restart epoch: zero at creation, incremented by
// every Restart. Clients (libcm, in-kernel TCP) cache the epoch when they
// attach and treat any change as "the CM forgot everything about me".
func (cm *CM) Epoch() int64 { return cm.epoch }

// Restart models the CM process dying and coming back empty: every flow,
// macroflow, scheduler ring and grant is discarded and the epoch is bumped.
// Flow IDs keep advancing across restarts (handles from the previous epoch
// must never be reissued, so stale calls miss instead of corrupting a new
// flow). Learned congestion state is lost — exactly the cost of crashing the
// shared controller. Returns the number of flows wiped.
func (cm *CM) Restart() int {
	cm.acct.Restarts++
	cm.epoch++
	wiped := len(cm.flows)
	for _, mf := range cm.macroflows {
		mf.background.Stop()
		// Grants die with the process; account them reclaimed so grant
		// conservation holds across the wipe.
		n := int64(len(mf.grants))
		mf.stats.GrantsReclaimed += n
		cm.acct.GrantsReclaimed += n
	}
	cm.flows = make(map[FlowID]*flowState)
	cm.byKey = make(map[netsim.FlowKey]*flowState)
	cm.macroflows = make(map[macroflowKey]*Macroflow)
	return wiped
}

// ResetAllMacroflows discards learned congestion state on every macroflow
// (the moving host's own path knowledge is stale after an address change).
// Flows, registrations and pending requests survive; windows restart from
// the initial value. Returns the number of macroflows reset.
func (cm *CM) ResetAllMacroflows() int {
	return cm.resetMacroflows(func(macroflowKey) bool { return true })
}

// ResetMacroflows discards congestion state on the macroflows aggregating
// flows to dstHost (including split ones), for peers of a moved host: their
// path state toward the old address is worthless. Returns the number reset.
func (cm *CM) ResetMacroflows(dstHost string) int {
	return cm.resetMacroflows(func(k macroflowKey) bool { return k.dstHost == dstHost })
}

func (cm *CM) resetMacroflows(match func(macroflowKey) bool) int {
	// Deterministic order: resets pump grants, and grant delivery order must
	// not depend on map iteration.
	keys := make([]macroflowKey, 0, len(cm.macroflows))
	for k := range cm.macroflows {
		if match(k) {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dstHost != keys[j].dstHost {
			return keys[i].dstHost < keys[j].dstHost
		}
		return keys[i].tag < keys[j].tag
	})
	for _, k := range keys {
		cm.macroflows[k].reset()
		cm.acct.MacroflowResets++
	}
	return len(keys)
}

// reset returns the macroflow to its just-created congestion state while
// keeping its flows attached: outstanding grants are reclaimed, window
// accounting zeroed, the controller rebuilt, and RTT/loss estimates cleared.
// Pending requests survive, so the pump immediately starts regranting from
// the initial window.
func (m *Macroflow) reset() {
	now := m.cm.clock.Now()
	n := int64(len(m.grants))
	m.stats.GrantsReclaimed += n
	m.cm.acct.GrantsReclaimed += n
	for _, fl := range m.flows {
		fl.unclaimedGrants = 0
	}
	m.grants = nil
	m.grantedBytes = 0
	m.outstanding = 0
	m.ctrl = m.cm.cfg.NewController(ControllerConfig{
		MTU:               m.cm.cfg.MTU,
		InitialWindowMTUs: m.cm.cfg.InitialWindowMTUs,
		MaxWindowBytes:    m.cm.cfg.MaxWindowBytes,
	})
	m.srtt = 0
	m.rttvar = 0
	m.hasRTT = false
	m.lossEWMA = 0
	m.lastFeedback = now
	m.lastActivity = now
	m.pump()
}

// AuditReport is a liveness/conservation snapshot of one CM, taken after a
// run by the faults invariant checker.
type AuditReport struct {
	// Flows is the number of open flows.
	Flows int
	// PendingRequests sums pendingRequests over all flows.
	PendingRequests int
	// UnclaimedGrants sums per-flow unclaimed grant counts.
	UnclaimedGrants int
	// OutstandingGrants is the number of grants currently held by
	// macroflows (issued, neither claimed nor reclaimed).
	OutstandingGrants int
	// StrandedFlows counts flows that want to send (pending requests and a
	// registered cmapp_send callback) while their macroflow's window is
	// open: the pump should have granted them, so a nonzero count at end of
	// run means a request was lost somewhere between client and scheduler.
	StrandedFlows int
	// NegativePending counts flows whose pending-request counter went
	// negative (a double-grant bug).
	NegativePending int
}

// Audit walks the CM's tables and returns the invariant snapshot.
func (cm *CM) Audit() AuditReport {
	var r AuditReport
	r.Flows = len(cm.flows)
	for _, fl := range cm.flows {
		r.PendingRequests += fl.pendingRequests
		r.UnclaimedGrants += fl.unclaimedGrants
		if fl.pendingRequests < 0 {
			r.NegativePending++
		}
		if fl.pendingRequests > 0 && fl.sendCB != nil && fl.mf.windowOpen() {
			r.StrandedFlows++
		}
	}
	for _, mf := range cm.macroflows {
		r.OutstandingGrants += len(mf.grants)
	}
	return r
}
