// Package faults is the host-level fault-injection harness: the invariant
// checker that validates scenario results after churn (CM restarts, dropped
// or delayed libcm notifications, host moves), and the canned churn-soak
// campaign that sweeps fault rates while checking every run.
//
// The injection machinery itself lives where the faults happen — dynamics
// (event kinds and the cm-restarts generator), cm (Restart, epochs, the
// end-of-run Audit), libcm (the notification Injector) and scenario (the
// host-event hook). This package is the judge: given a Result it decides
// whether the run's end state is consistent, and a soak run fails loudly
// instead of averaging a leak into a throughput number. See
// docs/ROBUSTNESS.md.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/scenario"
	"repro/internal/sweep"
)

// Violation is one failed invariant in one run.
type Violation struct {
	// Scenario names the run (plus point/replicate position for campaigns).
	Scenario string `json:"scenario"`
	// Rule identifies the invariant (stable, machine-matchable).
	Rule string `json:"rule"`
	// Detail is the human-readable specifics.
	Detail string `json:"detail"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s: %s", v.Scenario, v.Rule, v.Detail)
}

// Invariant rule names.
const (
	// RuleNegativeCounter: a numeric result field is negative. Every counter
	// in the result is monotonic or a non-negative gauge; a negative value
	// means double-decrement somewhere (e.g. a grant reclaimed twice).
	RuleNegativeCounter = "negative-counter"
	// RuleGrantConservation: GrantsIssued != GrantsReclaimed + outstanding.
	// Every grant the CM issues must end the run either reclaimed (used,
	// declined, expired, or wiped by a restart) or still countably
	// outstanding; anything else is a leak.
	RuleGrantConservation = "grant-conservation"
	// RuleStrandedFlow: a flow ended the run with a pending request, a live
	// send callback and an open macroflow window — the CM should have
	// granted it, so a notification was lost and never re-requested.
	RuleStrandedFlow = "stranded-flow"
	// RuleNegativePending: a flow's pending-request count went negative
	// (more grants delivered than requests made).
	RuleNegativePending = "negative-pending"
	// RuleEpochMismatch: a CM's epoch disagrees with its restart counter.
	RuleEpochMismatch = "epoch-mismatch"
	// RuleUnfiredEvent: a dynamics event scheduled inside the run never
	// fired, or one flagged past-end fired anyway.
	RuleUnfiredEvent = "unfired-event"
	// RuleRouteLoop: the end-of-run forwarding audit of a protocol-mode run
	// found a host pair whose next-hop chain cycles — a forwarding loop that
	// outlived convergence.
	RuleRouteLoop = "route-loop"
	// RuleRouteQuiesce: an agent still held an unflushed triggered update at
	// the end of a run whose convergence deadline had passed.
	RuleRouteQuiesce = "route-quiesce"
	// RuleRouteBlackhole: routing-failure drops (no-route, route-miss,
	// forward-miss, TTL) occurred after the convergence deadline even though
	// the audit found every pair reachable — the blackhole window failed to
	// close. Only enforced when the audit ran and found no unreached pairs:
	// with a legitimately partitioned end state, post-deadline route misses
	// are correct behaviour, not a violation.
	RuleRouteBlackhole = "route-blackhole"
)

// Check validates one run's end state and returns every violated invariant
// (empty for a clean run).
func Check(res *scenario.Result) []Violation {
	var out []Violation
	add := func(rule, format string, args ...any) {
		out = append(out, Violation{
			Scenario: res.Scenario,
			Rule:     rule,
			Detail:   fmt.Sprintf(format, args...),
		})
	}

	// Every numeric field in the whole result must be non-negative. The
	// flattened key space (see sweep.Flatten) covers flows, links, hosts and
	// CM accounting alike, so a new counter is guarded the day it is added.
	flat := sweep.Flatten(res)
	for _, k := range sortedKeys(flat) {
		if flat[k] < 0 && !signedField(k) {
			add(RuleNegativeCounter, "%s = %v", k, flat[k])
		}
	}

	for _, cmr := range res.CMs {
		if got, want := cmr.GrantsIssued, cmr.GrantsReclaimed+int64(cmr.OutstandingGrants); got != want {
			add(RuleGrantConservation,
				"cm %s: GrantsIssued %d != GrantsReclaimed %d + outstanding %d",
				cmr.Host, got, cmr.GrantsReclaimed, cmr.OutstandingGrants)
		}
		if cmr.StrandedFlows > 0 {
			add(RuleStrandedFlow, "cm %s: %d flow(s) with a pending request, a send callback and an open window",
				cmr.Host, cmr.StrandedFlows)
		}
		if cmr.NegativePending > 0 {
			add(RuleNegativePending, "cm %s: %d flow(s) with negative pending requests",
				cmr.Host, cmr.NegativePending)
		}
		if cmr.Epoch != cmr.Restarts {
			add(RuleEpochMismatch, "cm %s: epoch %d != restarts %d",
				cmr.Host, cmr.Epoch, cmr.Restarts)
		}
	}

	for i, ev := range res.Events {
		switch {
		case ev.PastEnd && ev.Fired:
			add(RuleUnfiredEvent, "event[%d] %s at %v flagged past-end but fired",
				i, ev.Kind, ev.At)
		case !ev.PastEnd && !ev.Fired && ev.At <= res.EndTime:
			add(RuleUnfiredEvent, "event[%d] %s scheduled at %v never fired (run ended %v)",
				i, ev.Kind, ev.At, res.EndTime)
		}
	}

	if rr := res.Routing; rr != nil {
		if rr.LoopPairs > 0 {
			add(RuleRouteLoop, "routing: %d of %d audited pairs cycle through the installed tables",
				rr.LoopPairs, rr.AuditedPairs)
		}
		if rr.Converged && rr.PendingAtEnd > 0 {
			add(RuleRouteQuiesce, "routing: %d agent(s) with pending triggered updates after the convergence deadline (%v)",
				rr.PendingAtEnd, rr.ConvergenceDeadline)
		}
		if rr.Converged && rr.AuditedPairs > 0 && rr.UnreachedPairs == 0 && rr.PostConvergenceRouteDrops > 0 {
			add(RuleRouteBlackhole, "routing: %d route-failure drop(s) after the convergence deadline (%v)",
				rr.PostConvergenceRouteDrops, rr.ConvergenceDeadline)
		}
	}
	return out
}

// CheckSnapshot validates a mid-run snapshot. It applies every invariant
// that must hold at all times — non-negative counters, grant conservation,
// negative-pending, epoch consistency — but skips the quiescence-dependent
// rules: a flow may legitimately hold a pending request mid-run (it is only
// stranded if the run *ends* that way), and events later than the snapshot
// have rightly not fired yet.
func CheckSnapshot(at *scenario.Snapshot) []Violation {
	res := at.Result
	var out []Violation
	add := func(rule, format string, args ...any) {
		out = append(out, Violation{
			Scenario: fmt.Sprintf("%s t=%v", res.Scenario, at.At),
			Rule:     rule,
			Detail:   fmt.Sprintf(format, args...),
		})
	}

	flat := sweep.Flatten(res)
	for _, k := range sortedKeys(flat) {
		if flat[k] < 0 && !signedField(k) {
			add(RuleNegativeCounter, "%s = %v", k, flat[k])
		}
	}

	for _, cmr := range res.CMs {
		if got, want := cmr.GrantsIssued, cmr.GrantsReclaimed+int64(cmr.OutstandingGrants); got != want {
			add(RuleGrantConservation,
				"cm %s: GrantsIssued %d != GrantsReclaimed %d + outstanding %d",
				cmr.Host, got, cmr.GrantsReclaimed, cmr.OutstandingGrants)
		}
		if cmr.NegativePending > 0 {
			add(RuleNegativePending, "cm %s: %d flow(s) with negative pending requests",
				cmr.Host, cmr.NegativePending)
		}
		if cmr.Epoch != cmr.Restarts {
			add(RuleEpochMismatch, "cm %s: epoch %d != restarts %d",
				cmr.Host, cmr.Epoch, cmr.Restarts)
		}
	}

	for i, ev := range res.Events {
		if !ev.PastEnd && !ev.Fired && ev.At <= at.At {
			add(RuleUnfiredEvent, "event[%d] %s scheduled at %v never fired (snapshot at %v)",
				i, ev.Kind, ev.At, at.At)
		}
	}
	return out
}

// CheckSnapshots validates a whole snapshot sequence plus the end state,
// returning every violation and the time of the first violating snapshot
// (-1 when only the end state, or nothing, is in violation). Closing the
// loop on mid-run invariant checking: a leak is reported where it first
// became visible, not thirty virtual seconds later.
func CheckSnapshots(snaps []scenario.Snapshot, end *scenario.Result) (all []Violation, firstAt int64) {
	firstAt = -1
	for i := range snaps {
		vs := CheckSnapshot(&snaps[i])
		if len(vs) > 0 && firstAt < 0 {
			firstAt = int64(snaps[i].At)
		}
		all = append(all, vs...)
	}
	if end != nil {
		all = append(all, Check(end)...)
	}
	return all, firstAt
}

// CheckCampaign runs Check over every raw replicate result of an executed
// campaign, labelling each violation with its point and replicate.
func CheckCampaign(cr *sweep.CampaignResult) []Violation {
	var out []Violation
	for _, pt := range cr.Points {
		for rep, res := range pt.Results {
			if res == nil {
				continue
			}
			for _, v := range Check(res) {
				v.Scenario = fmt.Sprintf("%s point=%d rep=%d seed=%d",
					v.Scenario, pt.Index, rep, seedAt(pt.Seeds, rep))
				out = append(out, v)
			}
		}
	}
	return out
}

func seedAt(seeds []int64, i int) int64 {
	if i < len(seeds) {
		return seeds[i]
	}
	return -1
}

// signedField reports whether the flattened result field is legitimately
// signed and exempt from the non-negativity rule. Durations derived from
// uninitialised timestamps can be negative only through bugs elsewhere, so
// only genuinely signed quantities are listed.
func signedField(key string) bool {
	// No signed result fields today; RTT estimators, counters and byte
	// totals are all non-negative by construction.
	_ = key
	return false
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Soak runs one scenario spec and checks it, returning the result and any
// violations. It is the single-run form of the churn soak.
func Soak(spec scenario.Spec) (*scenario.Result, []Violation, error) {
	res, err := scenario.Run(spec)
	if err != nil {
		return nil, nil, err
	}
	return res, Check(res), nil
}
