// In-run observability for scenarios: declarative sampling probes compiled
// from Spec.Probes, the per-host flight recorder enabled by Spec.TraceDepth,
// mid-run Result snapshots driven by Spec.SnapshotEvery, and the wall-clock
// execution timeline (EnableExecutionTimeline). Everything here is
// observation-only: nothing consumes randomness or mutates simulation state,
// so a run's Result is byte-identical with all of it on or off — serial,
// parallel or sharded (pinned by TestShardedRunsAreByteIdentical and
// TestProbeSeriesDeterministic).
//
// Determinism of mid-run sampling deserves a note. A probe's sample at time
// t is a self-rescheduling event inserted at t-interval, so in a sharded run
// its insertion stamp is t-interval while a same-time packet delivery
// carries its sender-side serialisation time as stamp; the scheduler's
// (time, stamp, seq) order therefore places the sample exactly where the
// serial run's insertion order would have. The only ambiguous case is a
// delivery whose propagation delay equals the probe interval to the
// nanosecond — the reason DefaultInterval (250 ms) dwarfs every link delay
// in the canned scenarios.
package scenario

import (
	"fmt"
	"io"
	"path"
	"time"

	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/probe"
	"repro/internal/simtime"
)

// Snapshot is one mid-run capture of the full Result, taken every
// Spec.SnapshotEvery of virtual time. Snapshots exist for invariant checking
// (faults.CheckSnapshot); unlike probe series they are not part of the
// Result, because a sharded run takes them at synchronization barriers and
// a serial run on scheduler events — same times, slightly different
// interleaving with same-instant packet events.
type Snapshot struct {
	At     time.Duration
	Result *Result
}

// Snapshots returns the mid-run captures taken so far (nil when
// Spec.SnapshotEvery is zero).
func (s *Sim) Snapshots() []Snapshot { return s.snaps }

// probeSampler is one compiled probe: a closure reading the target value,
// bound to the scheduler of the shard that owns the sampled state.
type probeSampler struct {
	series *probe.Series
	sched  *simtime.Scheduler
	sample func() float64
	every  time.Duration
	until  time.Duration
	fire   func(any)
}

// installProbes compiles Spec.Probes into self-rescheduling sampling events.
// Called once from Start, after the workloads are wired, so the per-scheduler
// insertion order is identical in serial and sharded builds.
func (s *Sim) installProbes() error {
	for i, ps := range s.Spec.Probes {
		t, err := probe.ParseTarget(ps.Target)
		if err != nil {
			return fmt.Errorf("scenario %q: probe %d: %w", s.Spec.Name, i, err)
		}
		if t.Kind == probe.TargetLinks || t.Kind == probe.TargetHosts {
			if err := s.installAggregateProbe(ps, t); err != nil {
				return fmt.Errorf("scenario %q: probe %d: %w", s.Spec.Name, i, err)
			}
			continue
		}
		sample, sched, err := s.compileProbe(t)
		if err != nil {
			return fmt.Errorf("scenario %q: probe %d: %w", s.Spec.Name, i, err)
		}
		sp := &probeSampler{
			series: probe.NewSeries(ps.SeriesName()),
			sched:  sched,
			sample: sample,
			every:  ps.Interval,
			until:  s.Spec.Duration,
		}
		if sp.every <= 0 {
			sp.every = probe.DefaultInterval
		}
		sp.fire = func(any) {
			now := sp.sched.Now()
			sp.series.Add(now, sp.sample())
			if next := now + sp.every; next <= sp.until {
				sp.sched.AtArgKind(next, simtime.KindProbeSample, sp.fire, nil)
			}
		}
		if sp.every <= sp.until {
			sp.sched.AtArgKind(sp.every, simtime.KindProbeSample, sp.fire, nil)
		}
		s.samplers = append(s.samplers, sp)
	}
	return nil
}

// installAggregateProbe compiles a links.<glob>.<field> / hosts.<glob>.<field>
// probe: the glob resolves against directional link names (node names for
// hosts.*) at install time, and the sampler sums the field across every
// match. An aggregate reads state owned by many shards, so it samples on the
// barrier-observation schedule instead of a single scheduler — same instants
// and values in serial and sharded runs, but unlike per-target probes the
// sample excludes packet events at exactly the sampling instant.
func (s *Sim) installAggregateProbe(ps probe.Spec, t probe.Target) error {
	sample, err := s.compileAggregate(t)
	if err != nil {
		return err
	}
	sp := &probeSampler{
		series: probe.NewSeries(ps.SeriesName()),
		sample: sample,
		every:  ps.Interval,
		until:  s.Spec.Duration,
	}
	if sp.every <= 0 {
		sp.every = probe.DefaultInterval
	}
	var times []time.Duration
	for at := sp.every; at <= sp.until; at += sp.every {
		times = append(times, at)
	}
	s.addObserver(times, func(at time.Duration) { sp.series.Add(at, sp.sample()) })
	s.samplers = append(s.samplers, sp)
	return nil
}

// compileAggregate resolves an aggregate target's glob and returns the
// summing closure. An empty match set is an error: a silently-empty series
// would read as "nothing happened".
func (s *Sim) compileAggregate(t probe.Target) (func() float64, error) {
	if t.Kind == probe.TargetLinks {
		var links []*netsim.Link
		for _, d := range s.duplexes {
			for _, l := range []*netsim.Link{d.Forward, d.Reverse} {
				ok, err := path.Match(t.Pattern, l.Config().Name)
				if err != nil {
					return nil, fmt.Errorf("links pattern %q: %w", t.Pattern, err)
				}
				if ok {
					links = append(links, l)
				}
			}
		}
		if len(links) == 0 {
			return nil, fmt.Errorf("links pattern %q matches no link direction", t.Pattern)
		}
		var per func(l *netsim.Link) float64
		switch t.Field {
		case "queue_depth":
			per = func(l *netsim.Link) float64 { return float64(l.QueueLen()) }
		case "sent_packets":
			per = func(l *netsim.Link) float64 { p, _ := l.SentCounters(); return float64(p) }
		case "sent_bytes":
			per = func(l *netsim.Link) float64 { _, b := l.SentCounters(); return float64(b) }
		case "delivered_bytes":
			per = func(l *netsim.Link) float64 { return float64(l.DeliveredBytes()) }
		case "drops":
			per = func(l *netsim.Link) float64 { return float64(l.DropCount()) }
		}
		return func() float64 {
			sum := 0.0
			for _, l := range links {
				sum += per(l)
			}
			return sum
		}, nil
	}
	var hosts []*node.Host
	for _, name := range s.nodeNames {
		ok, err := path.Match(t.Pattern, name)
		if err != nil {
			return nil, fmt.Errorf("hosts pattern %q: %w", t.Pattern, err)
		}
		if ok {
			hosts = append(hosts, s.net.Host(name))
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("hosts pattern %q matches no node", t.Pattern)
	}
	per := hostField(t.Field)
	return func() float64 {
		sum := 0.0
		for _, h := range hosts {
			sum += per(h)
		}
		return sum
	}, nil
}

// hostField returns the reader for one host-level probe field (shared by the
// per-host and aggregate probe families).
func hostField(field string) func(h *node.Host) float64 {
	switch field {
	case "sent_packets":
		return func(h *node.Host) float64 { return float64(h.Stats().SentPackets) }
	case "sent_bytes":
		return func(h *node.Host) float64 { return float64(h.Stats().SentBytes) }
	case "received_packets":
		return func(h *node.Host) float64 { return float64(h.Stats().ReceivedPackets) }
	case "received_bytes":
		return func(h *node.Host) float64 { return float64(h.Stats().ReceivedBytes) }
	case "forwarded_packets":
		return func(h *node.Host) float64 { return float64(h.Stats().ForwardedPackets) }
	case "no_route_drops":
		return func(h *node.Host) float64 { return float64(h.Stats().NoRouteDrops) }
	case "route_miss_drops":
		return func(h *node.Host) float64 { return float64(h.Stats().RouteMissDrops) }
	case "forward_miss_drops":
		return func(h *node.Host) float64 { return float64(h.Stats().ForwardMissDrops) }
	case "ttl_expired_drops":
		return func(h *node.Host) float64 { return float64(h.Stats().TTLExpiredDrops) }
	}
	return nil
}

// compileProbe resolves a parsed target against the built topology: the
// value closure plus the scheduler it must sample on (the shard owning the
// sampled state, so no probe ever reads across a shard boundary).
func (s *Sim) compileProbe(t probe.Target) (func() float64, *simtime.Scheduler, error) {
	switch t.Kind {
	case probe.TargetLink:
		if t.Index < 0 || t.Index >= len(s.duplexes) {
			return nil, nil, fmt.Errorf("link index %d out of range (%d links)", t.Index, len(s.duplexes))
		}
		ls := s.Spec.Links[t.Index]
		l := s.duplexes[t.Index].Forward
		// Transmit-side state belongs to the A-side shard; delivery-side
		// counters are only ever written by the receiving (B-side) shard.
		clock := s.clockFor(ls.A)
		if t.Field == "delivered_bytes" {
			clock = s.clockFor(ls.B)
		}
		var fn func() float64
		switch t.Field {
		case "queue_depth":
			fn = func() float64 { return float64(l.QueueLen()) }
		case "sent_packets":
			fn = func() float64 { p, _ := l.SentCounters(); return float64(p) }
		case "sent_bytes":
			fn = func() float64 { _, b := l.SentCounters(); return float64(b) }
		case "delivered_bytes":
			fn = func() float64 { return float64(l.DeliveredBytes()) }
		case "drops":
			fn = func() float64 { return float64(l.DropCount()) }
		case "utilization":
			fn = func() float64 { return l.Utilization() }
		}
		return fn, clock, nil
	case probe.TargetHost:
		h := s.net.Host(t.Host)
		if h == nil {
			return nil, nil, fmt.Errorf("host %q not in topology", t.Host)
		}
		per := hostField(t.Field)
		return func() float64 { return per(h) }, s.clockFor(t.Host), nil
	case probe.TargetCM:
		c := s.cms[t.Host]
		if c == nil {
			return nil, nil, fmt.Errorf("host %q runs no Congestion Manager", t.Host)
		}
		var fn func() float64
		switch t.Field {
		case "rate":
			fn = func() float64 { return c.AggregateStatus().Rate }
		case "cwnd":
			fn = func() float64 { return float64(c.AggregateStatus().CWND) }
		case "srtt":
			fn = func() float64 { return c.AggregateStatus().SRTT.Seconds() }
		case "loss_rate":
			fn = func() float64 { return c.AggregateStatus().LossRate }
		case "outstanding":
			fn = func() float64 { return float64(c.AggregateStatus().Outstanding) }
		case "flows":
			fn = func() float64 { return float64(c.FlowCount()) }
		case "macroflows":
			fn = func() float64 { return float64(c.MacroflowCount()) }
		}
		return fn, s.clockFor(t.Host), nil
	case probe.TargetShard:
		// Execution-plan values: identical at every sample, but as a series
		// they flow into sweep aggregation like any other probe. They
		// describe the execution (not the simulated system), so they are the
		// one probe family whose values differ between a serial and a
		// sharded run of the same spec.
		var fn func() float64
		switch t.Field {
		case "count":
			fn = func() float64 { return float64(s.ShardCount()) }
		case "lookahead":
			fn = func() float64 { return s.Lookahead().Seconds() }
		}
		clock := s.sched
		if s.shard != nil {
			clock = s.shard.states[0].sched
		}
		return fn, clock, nil
	}
	return nil, nil, fmt.Errorf("unknown probe target kind %q", t.Kind)
}

// takeSnapshot captures the full current Result. Serial runs drive it from a
// self-rescheduling event (installSnapshots); sharded runs call it at the
// synchronization barrier aligned with each snapshot time, when every worker
// is quiescent and cross-shard reads are safe.
func (s *Sim) takeSnapshot(at time.Duration) {
	s.snaps = append(s.snaps, Snapshot{At: at, Result: s.collect(s.drivers)})
}

// installSnapshots schedules the serial-mode snapshot chain.
func (s *Sim) installSnapshots() {
	every := s.Spec.SnapshotEvery
	if every <= 0 || s.shard != nil {
		return
	}
	var fire func(any)
	fire = func(any) {
		now := s.sched.Now()
		s.takeSnapshot(now)
		if next := now + every; next <= s.Spec.Duration {
			s.sched.AtArgKind(next, simtime.KindProbeSample, fire, nil)
		}
	}
	if every <= s.Spec.Duration {
		s.sched.AtArgKind(every, simtime.KindProbeSample, fire, nil)
	}
}

// installTrace enables the flight recorder: one ring per host plus taps on
// every link direction and recorder hooks in every CM. Rings are written
// only by the owning host's scheduler (its shard worker, or single-threaded
// control phases), the same discipline as every other per-host structure.
func (s *Sim) installTrace() {
	depth := s.Spec.TraceDepth
	if depth <= 0 {
		return
	}
	s.recorders = make(map[string]*probe.Recorder, len(s.nodeNames))
	for _, name := range s.nodeNames {
		s.recorders[name] = probe.NewRecorder(depth)
	}
	for i, ls := range s.Spec.Links {
		d := s.duplexes[i]
		s.tapLink(d.Forward, ls.A, ls.B)
		s.tapLink(d.Reverse, ls.B, ls.A)
	}
	for _, h := range s.cmHosts {
		s.cms[h].SetRecorder(s.recorders[h])
	}
}

// tapLink wires one link direction's enqueue/drop/deliver observations into
// the sender's and receiver's rings. Enqueue and drop happen on the sending
// shard, delivery on the receiving one; each tap stamps with its own side's
// clock, respecting the link's field-ownership split.
func (s *Sim) tapLink(l *netsim.Link, sender, receiver string) {
	sRec, rRec := s.recorders[sender], s.recorders[receiver]
	sClock, rClock := s.clockFor(sender), s.clockFor(receiver)
	name := l.Config().Name
	l.SetSendTap(func(pkt *netsim.Packet) {
		sRec.Append(probe.Event{At: sClock.Now(), Kind: probe.EvEnqueue, Size: int64(pkt.Size), Note: name})
	})
	l.SetDropTap(func(pkt *netsim.Packet, reason string) {
		sRec.Append(probe.Event{At: sClock.Now(), Kind: probe.EvDrop, Size: int64(pkt.Size), Note: reason})
	})
	l.SetTap(func(pkt *netsim.Packet) {
		rRec.Append(probe.Event{At: rClock.Now(), Kind: probe.EvDeliver, Size: int64(pkt.Size), Note: name})
	})
}

// recordHostEvent notes a host-level happening (fault application, route
// recomputation) in the host's ring. Host events run in single-threaded
// control phases, so writing another host's ring here is race-free.
func (s *Sim) recordHostEvent(host string, ev probe.Event) {
	if s.recorders == nil {
		return
	}
	if r := s.recorders[host]; r != nil {
		r.Append(ev)
	}
}

// Recorder returns the named host's flight-recorder ring, or nil when
// tracing is disabled.
func (s *Sim) Recorder(host string) *probe.Recorder { return s.recorders[host] }

// DumpTrace writes every host's retained flight-recorder events to w, hosts
// in deterministic order, each line prefixed with the host name. It reports
// the total number of lines written (zero when tracing is off or nothing
// was recorded).
func (s *Sim) DumpTrace(w io.Writer) int {
	n := 0
	for _, name := range s.nodeNames {
		r := s.recorders[name]
		if r == nil || r.Len() == 0 {
			continue
		}
		r.Dump(w, name)
		n += r.Len()
	}
	return n
}

// EnableExecutionTimeline attaches a wall-clock execution timeline: one lane
// per shard worker plus a coordinator lane (a single "serial" lane for an
// unsharded build). Must be called after Build and before the run starts;
// the returned timeline is exported with probe.Timeline.WriteJSON. The
// timeline records wall-clock spans only — it never appears in the Result,
// so enabling it cannot perturb determinism.
func (s *Sim) EnableExecutionTimeline() *probe.Timeline {
	if s.shard != nil {
		names := make([]string, s.shard.plan.nshards+1)
		for i := 0; i < s.shard.plan.nshards; i++ {
			names[i] = fmt.Sprintf("shard %d", i)
		}
		names[s.shard.plan.nshards] = "coordinator"
		tl := probe.NewTimeline(names...)
		s.shard.timeline = tl
		for i, ss := range s.shard.states {
			ss.lane, ss.tl = i, tl
		}
		s.execTL = tl
		return tl
	}
	s.execTL = probe.NewTimeline("serial")
	return s.execTL
}

// ExecutionTimeline returns the timeline attached by
// EnableExecutionTimeline, or nil.
func (s *Sim) ExecutionTimeline() *probe.Timeline { return s.execTL }

// RunToEnd advances the simulation from the current virtual time to
// Spec.Duration: the shard coordinator loop for a sharded build, a plain
// RunUntil for a serial one. Run composes Build + Start + RunToEnd + Finish;
// callers needing mid-run artifacts (snapshots, traces, timelines) use the
// pieces directly.
func (s *Sim) RunToEnd() {
	if s.shard != nil {
		s.shard.snapEvery = s.Spec.SnapshotEvery
		s.shard.snap = s.takeSnapshot
		s.shard.obs = s.obsTimes
		s.shard.obsFire = s.fireObservers
		s.shard.run(s.Spec.Duration, s.timeline, s.Spec.Events)
		return
	}
	// The serial realisation of the barrier-observation schedule: pause just
	// before each registered instant (events < t executed, none at t), fire
	// the observers, resume. See observers.go.
	run := func() {
		for _, t := range s.obsTimes {
			s.sched.RunUntilBefore(t)
			s.fireObservers(t)
		}
		s.sched.RunUntil(s.Spec.Duration)
	}
	if s.execTL != nil {
		t0 := s.execTL.Since()
		v0 := s.sched.Now()
		var prev simtime.ProfileSnapshot
		if p := s.sched.Profiling(); p != nil {
			prev = p.Snapshot()
		}
		run()
		span := probe.Span{
			Name: "run", Start: t0, Dur: s.execTL.Since() - t0,
			VirtStart: v0, VirtEnd: s.Spec.Duration,
		}
		if p := s.sched.Profiling(); p != nil {
			span.Kinds = kindCosts(p.Snapshot().Delta(prev))
		}
		s.execTL.Add(0, span)
		return
	}
	run()
}
