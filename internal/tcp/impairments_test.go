package tcp

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

// These tests inject network pathologies beyond random loss — reordering,
// duplication, and combinations with loss — and check that both congestion
// control providers still deliver the byte stream exactly.

func impairedLink(loss, reorder, dup float64, seed int64) netsim.LinkConfig {
	return netsim.LinkConfig{
		Bandwidth:     10 * netsim.Mbps,
		Delay:         20 * time.Millisecond,
		QueuePackets:  120,
		LossRate:      loss,
		ReorderRate:   reorder,
		ReorderDelay:  8 * time.Millisecond,
		DuplicateRate: dup,
		Seed:          seed,
	}
}

func runImpaired(t *testing.T, link netsim.LinkConfig, useCM bool, n int) (*Endpoint, *sink) {
	t.Helper()
	e := newEnv(t, link, useCM)
	cfg := nativeCfg()
	if useCM {
		cfg = cmClientCfg(e)
	}
	ep, sk := transfer(t, e, cfg, nativeCfg(), n, 10*time.Minute)
	if sk.delivered != int64(n) {
		t.Fatalf("delivered %d of %d bytes (cm=%v, link=%+v)", sk.delivered, n, useCM, link)
	}
	if !sk.closed {
		t.Fatal("FIN never arrived")
	}
	return ep, sk
}

func TestTransferSurvivesReordering(t *testing.T) {
	for _, useCM := range []bool{false, true} {
		ep, _ := runImpaired(t, impairedLink(0, 0.05, 0, 31), useCM, 200_000)
		// Reordering produces duplicate ACKs; spurious fast retransmits are
		// acceptable but the transfer must not collapse into timeouts.
		if ep.Stats().Timeouts > 3 {
			t.Fatalf("cm=%v: %d timeouts under mild reordering", useCM, ep.Stats().Timeouts)
		}
	}
}

func TestTransferSurvivesDuplication(t *testing.T) {
	for _, useCM := range []bool{false, true} {
		ep, sk := runImpaired(t, impairedLink(0, 0, 0.1, 33), useCM, 200_000)
		// Duplicated segments must not be delivered twice to the application.
		if sk.delivered != 200_000 {
			t.Fatalf("cm=%v: duplication corrupted the stream", useCM)
		}
		if ep.Stats().Retransmissions > 50 {
			t.Fatalf("cm=%v: %d retransmissions caused by duplication alone", useCM, ep.Stats().Retransmissions)
		}
	}
}

func TestTransferSurvivesCombinedImpairments(t *testing.T) {
	for _, useCM := range []bool{false, true} {
		runImpaired(t, impairedLink(0.03, 0.03, 0.05, 37), useCM, 120_000)
	}
}

func TestDuplicateAcksFromReorderingDoNotBreakCMAccounting(t *testing.T) {
	e := newEnv(t, impairedLink(0, 0.2, 0, 39), true)
	const n = 150_000
	_, sk := transfer(t, e, cmClientCfg(e), nativeCfg(), n, 10*time.Minute)
	if sk.delivered != n {
		t.Fatalf("delivered %d of %d", sk.delivered, n)
	}
	// After the transfer the macroflow must not be left with phantom
	// outstanding bytes large enough to wedge a future flow: the background
	// starvation task or the accounting itself must keep it sane.
	e.sched.RunFor(10 * time.Second)
	probe := e.cm.Open(netsim.ProtoTCP, netsim.Addr{Host: "client", Port: 99}, netsim.Addr{Host: "server", Port: 80})
	mf := e.cm.MacroflowOf(probe)
	if mf.Outstanding() != 0 {
		t.Fatalf("macroflow left with %d outstanding bytes after the flow closed", mf.Outstanding())
	}
	if mf.Window() < 1500 {
		t.Fatalf("macroflow window below one MTU: %d", mf.Window())
	}
}
