package dynamics

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func TestHostEventValidate(t *testing.T) {
	good := []Event{
		{At: time.Second, Kind: CMRestart, Host: "a"},
		{Kind: SetNotifyFaults, Host: "a", DropRate: 0.5, DelayRate: 0.5, Delay: time.Millisecond},
		{Kind: SetNotifyFaults, Host: "a"}, // zero rates disable injection
		{At: time.Second, Kind: HostMove, Host: "a"},
		{At: time.Second, Kind: HostMove, Host: "a", Policy: PolicyMigrate, Outage: time.Second},
		{At: time.Second, Kind: HostAttach, Host: "a"},
		// Host events ignore Link entirely: an out-of-range index must not
		// trip the link check.
		{At: time.Second, Kind: CMRestart, Host: "a", Link: 99},
	}
	for i, ev := range good {
		if err := ev.Validate(2); err != nil {
			t.Errorf("good host event %d rejected: %v", i, err)
		}
	}
	bad := []Event{
		{At: time.Second, Kind: CMRestart},                  // no host
		{Kind: SetNotifyFaults, Host: "a", DropRate: 1.5},   // rate > 1
		{Kind: SetNotifyFaults, Host: "a", DelayRate: -0.1}, // rate < 0
		{Kind: SetNotifyFaults, Host: "a", DelayRate: 0.5, Delay: -time.Second},
		{Kind: HostMove, Host: "a"},                                      // a move at t=0 makes no sense
		{At: time.Second, Kind: HostMove, Host: "a", Policy: "teleport"}, // unknown policy
		{At: time.Second, Kind: HostMove, Host: "a", Outage: -time.Second},
	}
	for i, ev := range bad {
		if err := ev.Validate(2); err == nil {
			t.Errorf("bad host event %d accepted: %+v", i, ev)
		}
	}
}

func TestGenCMRestartsExpansion(t *testing.T) {
	g := Generator{Kind: GenCMRestarts, Host: "srv", Seed: 7, Mean: 2 * time.Second, End: 20 * time.Second}
	if err := g.Validate(0); err != nil { // host generators need no links at all
		t.Fatalf("validate: %v", err)
	}
	evs := g.Expand()
	if len(evs) == 0 {
		t.Fatal("a 2s-mean process over 20s should produce restarts")
	}
	var last time.Duration
	for i, ev := range evs {
		if ev.Kind != CMRestart || ev.Host != "srv" {
			t.Fatalf("event %d = %+v, want cm-restart on srv", i, ev)
		}
		if ev.At <= last || ev.At >= 20*time.Second {
			t.Fatalf("event %d at %v out of order or range", i, ev.At)
		}
		last = ev.At
	}
	// Same seed, same process.
	again := g.Expand()
	if len(again) != len(evs) {
		t.Fatalf("expansion not deterministic: %d vs %d events", len(again), len(evs))
	}
	if err := (Generator{Kind: GenCMRestarts}).Validate(0); err == nil {
		t.Error("cm-restarts generator without a host accepted")
	}
}

// TestHostEventsFireThroughHook checks dispatch: host events reach the host
// hook (not the link resolver), and their outcome lands in the record.
func TestHostEventsFireThroughHook(t *testing.T) {
	sched := simtime.NewScheduler()
	_, resolve := testLinks(sched)
	var fired []Event
	tl := NewTimeline(sched, []Event{
		{At: time.Second, Kind: CMRestart, Host: "a"},
		{At: 2 * time.Second, Kind: SetNotifyFaults, Host: "b", DropRate: 0.5},
	}, resolve, nil)
	tl.SetHostHook(func(ev Event) HostOutcome {
		fired = append(fired, ev)
		return HostOutcome{FlowsWiped: 3, RoutesChanged: 1}
	})
	tl.Install()
	sched.RunFor(3 * time.Second)
	if len(fired) != 2 || fired[0].Host != "a" || fired[1].Host != "b" {
		t.Fatalf("host hook saw %+v", fired)
	}
	recs := tl.Records()
	if len(recs) != 2 || !recs[0].Fired || recs[0].FlowsWiped != 3 || recs[0].RoutesChanged != 1 {
		t.Fatalf("records = %+v", recs)
	}
}

// TestPastEndEventsAreFlagged checks SetHorizon: events scheduled beyond the
// run's duration are recorded as PastEnd and never fire, while in-horizon
// events are untouched.
func TestPastEndEventsAreFlagged(t *testing.T) {
	sched := simtime.NewScheduler()
	_, resolve := testLinks(sched)
	tl := NewTimeline(sched, []Event{
		{At: time.Second, Kind: LinkDown, Link: 0},
		{At: time.Minute, Kind: CMRestart, Host: "a"},
	}, resolve, nil)
	tl.SetHostHook(func(Event) HostOutcome { return HostOutcome{} })
	tl.SetHorizon(10 * time.Second)
	tl.Install()
	sched.RunFor(10 * time.Second)
	recs := tl.Records()
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[0].PastEnd || !recs[0].Fired {
		t.Fatalf("in-horizon event mis-flagged: %+v", recs[0])
	}
	if !recs[1].PastEnd || recs[1].Fired {
		t.Fatalf("past-end event not flagged: %+v", recs[1])
	}
}
