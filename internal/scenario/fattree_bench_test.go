package scenario

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkFatTreeBuild measures topology construction plus hierarchical
// route installation (no traffic) for k=4/8/16 fat-trees. Hier routing keeps
// this linear in the node count — B/op is the allocation footprint the
// routing engine and queue rings cost at each scale.
func BenchmarkFatTreeBuild(b *testing.B) {
	for _, k := range []int{4, 8, 16} {
		b.Run(fmt.Sprintf("k-%d", k), func(b *testing.B) {
			spec, err := FatTree(FatTreeParams{K: k})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFatTreeRun runs the k=4 fat-tree end to end: cross-pod streams
// and staggered intra-pod bulk transfers over suffix-domain routing. One op
// is a whole simulation.
func BenchmarkFatTreeRun(b *testing.B) {
	spec, err := FatTree(FatTreeParams{K: 4, Duration: time.Second})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}
