package scenario

import (
	"fmt"
	"runtime"
	"sync"
)

// RunOutcome pairs a scenario's result with its error; exactly one of the
// two is set.
type RunOutcome struct {
	Result *Result `json:"result,omitempty"`
	Err    string  `json:"error,omitempty"`
}

// Runner executes batches of scenarios across a worker pool. Each simulation
// is fully self-contained (own scheduler, own seeded random sources, no
// shared mutable state), so fanning a batch across workers is safe and the
// outcomes are byte-identical to a serial run — only wall-clock time changes.
type Runner struct {
	// Parallel is the worker count; <= 0 uses GOMAXPROCS.
	Parallel int
}

// RunAll executes every spec and returns the outcomes in input order.
func (r Runner) RunAll(specs []Spec) []RunOutcome {
	workers := r.Parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	out := make([]RunOutcome, len(specs))
	if len(specs) == 0 {
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := Run(specs[i])
				if err != nil {
					out[i] = RunOutcome{Err: err.Error()}
				} else {
					out[i] = RunOutcome{Result: res}
				}
			}
		}()
	}
	for i := range specs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// RunNamed resolves each name through the registry and runs the batch.
func (r Runner) RunNamed(names []string) ([]RunOutcome, error) {
	specs := make([]Spec, len(names))
	for i, n := range names {
		spec, err := Lookup(n)
		if err != nil {
			return nil, fmt.Errorf("runner: %w", err)
		}
		specs[i] = spec
	}
	return r.RunAll(specs), nil
}
