package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simtime"
)

type collector struct {
	pkts  []*Packet
	times []time.Duration
	sched *simtime.Scheduler
}

func (c *collector) Receive(p *Packet) {
	c.pkts = append(c.pkts, p)
	if c.sched != nil {
		c.times = append(c.times, c.sched.Now())
	}
}

func TestLinkDeliversWithSerializationAndPropagation(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{sched: s}
	// 1 Mbps, 10 ms delay: a 1250-byte packet serialises in 10 ms.
	l := NewLink(s, LinkConfig{Bandwidth: 1 * Mbps, Delay: 10 * time.Millisecond}, dst)
	if !l.Send(mkpkt(1250)) {
		t.Fatal("send failed")
	}
	s.Run()
	if len(dst.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(dst.pkts))
	}
	if got, want := dst.times[0], 20*time.Millisecond; got != want {
		t.Fatalf("delivery at %v, want %v", got, want)
	}
}

func TestLinkSerializesBackToBack(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{sched: s}
	l := NewLink(s, LinkConfig{Bandwidth: 1 * Mbps, Delay: 0}, dst)
	// Two 1250-byte packets at 1 Mbps: 10 ms each, so deliveries at 10 and 20 ms.
	l.Send(mkpkt(1250))
	l.Send(mkpkt(1250))
	s.Run()
	if len(dst.times) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(dst.times))
	}
	if dst.times[0] != 10*time.Millisecond || dst.times[1] != 20*time.Millisecond {
		t.Fatalf("deliveries at %v, want [10ms 20ms]", dst.times)
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{sched: s}
	l := NewLink(s, LinkConfig{Delay: 5 * time.Millisecond}, dst)
	l.Send(mkpkt(1_000_000))
	s.Run()
	if dst.times[0] != 5*time.Millisecond {
		t.Fatalf("infinite-bandwidth delivery at %v, want 5ms", dst.times[0])
	}
}

func TestLinkPreservesFIFOOrderUnderLoad(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{sched: s}
	l := NewLink(s, LinkConfig{Bandwidth: 10 * Mbps, Delay: time.Millisecond, QueuePackets: 1000}, dst)
	var sent []*Packet
	for i := 0; i < 50; i++ {
		p := mkpkt(100 + i)
		sent = append(sent, p)
		l.Send(p)
	}
	s.Run()
	if len(dst.pkts) != 50 {
		t.Fatalf("delivered %d, want 50", len(dst.pkts))
	}
	for i := range sent {
		if dst.pkts[i] != sent[i] {
			t.Fatalf("packet %d delivered out of order", i)
		}
	}
}

func TestLinkQueueOverflowDrops(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{sched: s}
	var drops []string
	l := NewLink(s, LinkConfig{Bandwidth: 1 * Mbps, QueuePackets: 5}, dst)
	l.SetDropTap(func(p *Packet, reason string) { drops = append(drops, reason) })
	// Burst far more than the queue can hold while the link is busy.
	for i := 0; i < 20; i++ {
		l.Send(mkpkt(1250))
	}
	s.Run()
	// One packet is in transmission, five were queued; the rest dropped.
	if len(dst.pkts) != 6 {
		t.Fatalf("delivered %d, want 6 (1 in service + 5 queued)", len(dst.pkts))
	}
	if l.Stats().QueueDrops != 14 {
		t.Fatalf("QueueDrops = %d, want 14", l.Stats().QueueDrops)
	}
	for _, r := range drops {
		if r != "queue" {
			t.Fatalf("unexpected drop reason %q", r)
		}
	}
}

func TestLinkRandomLossDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) int {
		s := simtime.NewScheduler()
		dst := &collector{}
		l := NewLink(s, LinkConfig{Bandwidth: 100 * Mbps, LossRate: 0.3, Seed: seed, QueuePackets: 10000}, dst)
		for i := 0; i < 1000; i++ {
			l.Send(mkpkt(1000))
		}
		s.Run()
		return len(dst.pkts)
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed produced different delivery counts: %d vs %d", a, b)
	}
	if a == 1000 || a == 0 {
		t.Fatalf("loss rate 0.3 delivered %d of 1000; expected partial delivery", a)
	}
	c := run(7)
	if c == a {
		t.Log("different seeds produced identical counts (possible but unlikely)")
	}
}

func TestLinkLossRateApproximation(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{}
	l := NewLink(s, LinkConfig{Bandwidth: 1000 * Mbps, LossRate: 0.1, Seed: 3, QueuePackets: 100000}, dst)
	const n = 20000
	for i := 0; i < n; i++ {
		l.Send(mkpkt(100))
	}
	s.Run()
	lossFrac := float64(l.Stats().RandomDrops) / float64(n)
	if lossFrac < 0.08 || lossFrac > 0.12 {
		t.Fatalf("observed loss %.3f, want ~0.10", lossFrac)
	}
}

func TestLinkTapObservesDeliveries(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{}
	l := NewLink(s, LinkConfig{Bandwidth: 10 * Mbps}, dst)
	var tapped int
	l.SetTap(func(p *Packet) { tapped++ })
	for i := 0; i < 5; i++ {
		l.Send(mkpkt(500))
	}
	s.Run()
	if tapped != 5 {
		t.Fatalf("tap saw %d packets, want 5", tapped)
	}
}

func TestLinkUtilizationAndStats(t *testing.T) {
	s := simtime.NewScheduler()
	dst := &collector{}
	l := NewLink(s, LinkConfig{Bandwidth: 1 * Mbps}, dst)
	l.Send(mkpkt(1250)) // 10ms of busy time
	s.Run()
	st := l.Stats()
	if st.SentPackets != 1 || st.SentBytes != 1250 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyTime != 10*time.Millisecond {
		t.Fatalf("BusyTime = %v, want 10ms", st.BusyTime)
	}
	if u := l.Utilization(); u < 0.99 || u > 1.01 {
		t.Fatalf("Utilization = %v, want ~1.0", u)
	}
}

func TestLinkSendNilPanics(t *testing.T) {
	s := simtime.NewScheduler()
	l := NewLink(s, LinkConfig{}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Send(nil) should panic")
		}
	}()
	l.Send(nil)
}

func TestNewLinkRequiresScheduler(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLink(nil, ...) should panic")
		}
	}()
	NewLink(nil, LinkConfig{}, nil)
}

func TestDuplexConnect(t *testing.T) {
	s := simtime.NewScheduler()
	a := &collector{sched: s}
	b := &collector{sched: s}
	d := NewDuplex(s, LinkConfig{Name: "lan", Bandwidth: 100 * Mbps, Delay: time.Millisecond, Seed: 9})
	d.Connect(a, b)
	d.Forward.Send(mkpkt(100))
	d.Reverse.Send(mkpkt(200))
	s.Run()
	if len(b.pkts) != 1 || b.pkts[0].Size != 100 {
		t.Fatal("forward link should deliver to b")
	}
	if len(a.pkts) != 1 || a.pkts[0].Size != 200 {
		t.Fatal("reverse link should deliver to a")
	}
	if d.Forward.Config().Name != "lan-fwd" || d.Reverse.Config().Name != "lan-rev" {
		t.Fatal("duplex link names not derived from base name")
	}
}

func TestBandwidthHelpers(t *testing.T) {
	if (10 * Mbps).BytesPerSecond() != 1.25e6 {
		t.Fatal("BytesPerSecond wrong")
	}
	if got := (1 * Mbps).TransmitTime(1250); got != 10*time.Millisecond {
		t.Fatalf("TransmitTime = %v, want 10ms", got)
	}
	if (Bandwidth(0)).TransmitTime(100) != 0 {
		t.Fatal("zero bandwidth should have zero transmit time")
	}
	for _, b := range []Bandwidth{500, 64 * Kbps, 10 * Mbps, 2 * Gbps} {
		if b.String() == "" {
			t.Fatal("Bandwidth.String empty")
		}
	}
}

// Property: a lossless link delivers every packet exactly once, in order, and
// total delivered bytes equal total sent bytes.
func TestPropertyLosslessLinkConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		s := simtime.NewScheduler()
		dst := &collector{}
		l := NewLink(s, LinkConfig{Bandwidth: 10 * Mbps, Delay: time.Millisecond, QueuePackets: len(sizes) + 1}, dst)
		var total int64
		for _, sz := range sizes {
			size := int(sz%1400) + 40
			total += int64(size)
			l.Send(mkpkt(size))
		}
		s.Run()
		if len(dst.pkts) != len(sizes) {
			return false
		}
		var got int64
		for _, p := range dst.pkts {
			got += int64(p.Size)
		}
		return got == total && l.Stats().SentBytes == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: the link never delivers more packets than were sent, and drops +
// deliveries account for every send, under random loss and a small queue.
func TestPropertyLossyLinkAccounting(t *testing.T) {
	f := func(n uint8, lossTenths uint8, seed int64) bool {
		s := simtime.NewScheduler()
		dst := &collector{}
		loss := float64(lossTenths%10) / 10
		l := NewLink(s, LinkConfig{Bandwidth: 1 * Mbps, LossRate: loss, Seed: seed, QueuePackets: 4}, dst)
		count := int(n)
		for i := 0; i < count; i++ {
			l.Send(mkpkt(1000))
		}
		s.Run()
		st := l.Stats()
		return len(dst.pkts)+st.RandomDrops+st.QueueDrops == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
