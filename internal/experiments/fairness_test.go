package experiments

import (
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestFairnessEnsembleNotOverlyAggressive(t *testing.T) {
	cfg := FairnessConfig{
		EnsembleFlows: 4,
		Duration:      20 * time.Second,
		Path:          Path{Bandwidth: 10 * netsim.Mbps, OneWayDelay: 20 * time.Millisecond, QueuePackets: 100, Seed: 71},
	}
	res := RunFairness(cfg)
	// With the CM, the ensemble of 4 connections shares one macroflow and
	// should take roughly a fair (single-flow) share of the bottleneck.
	if res.CMEnsembleShare < 0.30 || res.CMEnsembleShare > 0.70 {
		t.Fatalf("CM ensemble share = %.2f, want roughly fair (0.30-0.70)", res.CMEnsembleShare)
	}
	// Without the CM, 4 independent connections out-compete the single TCP.
	if res.IndependentEnsembleShare < 0.65 {
		t.Fatalf("independent ensemble share = %.2f, want > 0.65 (aggressive)", res.IndependentEnsembleShare)
	}
	if res.CMEnsembleShare >= res.IndependentEnsembleShare {
		t.Fatalf("the CM ensemble (%.2f) should be less aggressive than independent connections (%.2f)",
			res.CMEnsembleShare, res.IndependentEnsembleShare)
	}
	if res.Table() == "" {
		t.Fatal("table rendering broken")
	}
}
