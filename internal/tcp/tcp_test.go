package tcp

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
)

// env is a two-host test network: "client" (data sender in these tests) and
// "server" (data sink).
type env struct {
	sched  *simtime.Scheduler
	net    *node.Network
	duplex *netsim.Duplex
	cm     *cm.CM // client-side CM (installed only when requested)
}

func newEnv(t *testing.T, link netsim.LinkConfig, withCM bool) *env {
	t.Helper()
	s := simtime.NewScheduler()
	nw := node.NewNetwork(s)
	d := nw.ConnectDuplex("client", "server", link)
	e := &env{sched: s, net: nw, duplex: d}
	if withCM {
		e.cm = cm.New(s, s)
		nw.Host("client").SetTransmitNotifier(e.cm)
	}
	return e
}

func lan() netsim.LinkConfig {
	return netsim.LinkConfig{Bandwidth: 100 * netsim.Mbps, Delay: 500 * time.Microsecond, QueuePackets: 200, Seed: 11}
}

func wan(loss float64) netsim.LinkConfig {
	return netsim.LinkConfig{Bandwidth: 10 * netsim.Mbps, Delay: 30 * time.Millisecond, QueuePackets: 120, LossRate: loss, Seed: 23}
}

// sink accepts one connection on the server and records delivered bytes.
type sink struct {
	delivered int64
	closed    bool
	ep        *Endpoint
}

func listenSink(t *testing.T, e *env, port int, cfg Config) *sink {
	t.Helper()
	sk := &sink{}
	_, err := Listen(e.net.Host("server"), port, cfg, func(ep *Endpoint) {
		sk.ep = ep
		ep.OnReceive(func(n int) { sk.delivered += int64(n) })
		ep.OnClosed(func() { sk.closed = true })
	})
	if err != nil {
		t.Fatal(err)
	}
	return sk
}

// transfer sends nbytes from the client to the server and runs the simulation
// until the server has seen the client's FIN (or the deadline passes).
func transfer(t *testing.T, e *env, clientCfg, serverCfg Config, nbytes int, deadline time.Duration) (*Endpoint, *sink) {
	t.Helper()
	sk := listenSink(t, e, 80, serverCfg)
	ep, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	ep.OnEstablished(func() {
		ep.Send(nbytes)
		ep.Close()
	})
	e.sched.RunUntil(deadline)
	return ep, sk
}

func cmClientCfg(e *env) Config {
	return Config{CongestionControl: CCCM, CM: e.cm, DelayedAck: true}
}

func nativeCfg() Config {
	return Config{CongestionControl: CCNative, DelayedAck: true}
}

func TestHandshakeEstablishesBothEnds(t *testing.T) {
	e := newEnv(t, lan(), false)
	var serverEp *Endpoint
	_, err := Listen(e.net.Host("server"), 80, nativeCfg(), func(ep *Endpoint) { serverEp = ep })
	if err != nil {
		t.Fatal(err)
	}
	established := false
	ep, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, nativeCfg())
	if err != nil {
		t.Fatal(err)
	}
	ep.OnEstablished(func() { established = true })
	if ep.State() != StateSynSent {
		t.Fatalf("client state = %v, want syn-sent", ep.State())
	}
	e.sched.RunFor(100 * time.Millisecond)
	if !established || ep.State() != StateEstablished {
		t.Fatalf("client not established: %v", ep.State())
	}
	if serverEp == nil || serverEp.State() != StateEstablished {
		t.Fatalf("server not established: %+v", serverEp)
	}
	if ep.Local().Host != "client" || ep.Remote() != (netsim.Addr{Host: "server", Port: 80}) {
		t.Fatal("endpoint addresses wrong")
	}
	if ep.Stats().EstablishedAt == 0 {
		t.Fatal("EstablishedAt not recorded")
	}
}

func TestDialPortConflict(t *testing.T) {
	e := newEnv(t, lan(), false)
	h := e.net.Host("server")
	if _, err := Listen(h, 80, nativeCfg(), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := Listen(h, 80, nativeCfg(), nil); err == nil {
		t.Fatal("second listener on the same port should fail")
	}
}

func TestBulkTransferNative(t *testing.T) {
	e := newEnv(t, lan(), false)
	const n = 500_000
	ep, sk := transfer(t, e, nativeCfg(), nativeCfg(), n, 30*time.Second)
	if sk.delivered != n {
		t.Fatalf("delivered %d bytes, want %d", sk.delivered, n)
	}
	if !sk.closed {
		t.Fatal("server did not observe the FIN")
	}
	if ep.Stats().Retransmissions != 0 {
		t.Fatalf("clean link should need no retransmissions, got %d", ep.Stats().Retransmissions)
	}
	if ep.Stats().BytesAcked < n {
		t.Fatalf("BytesAcked = %d, want >= %d", ep.Stats().BytesAcked, n)
	}
}

func TestBulkTransferCM(t *testing.T) {
	e := newEnv(t, lan(), true)
	const n = 500_000
	ep, sk := transfer(t, e, cmClientCfg(e), nativeCfg(), n, 30*time.Second)
	if sk.delivered != n {
		t.Fatalf("delivered %d bytes, want %d", sk.delivered, n)
	}
	if e.cm.FlowCount() == 0 && e.cm.MacroflowCount() != 1 {
		t.Fatal("the CM should have managed the connection's macroflow")
	}
	// The macroflow must have been charged for (roughly) the data sent.
	mf := e.cm.MacroflowOf(0)
	if mf == nil {
		// The flow may have been closed; the macroflow still exists.
		if e.cm.MacroflowCount() != 1 {
			t.Fatal("macroflow state should persist after the connection closes")
		}
	}
	if ep.Stats().Retransmissions != 0 {
		t.Fatalf("clean link should need no retransmissions, got %d", ep.Stats().Retransmissions)
	}
}

func TestTransferSurvivesRandomLossNative(t *testing.T) {
	e := newEnv(t, wan(0.02), false)
	const n = 300_000
	ep, sk := transfer(t, e, nativeCfg(), nativeCfg(), n, 120*time.Second)
	if sk.delivered != n {
		t.Fatalf("delivered %d of %d bytes under 2%% loss", sk.delivered, n)
	}
	if ep.Stats().Retransmissions == 0 {
		t.Fatal("loss should have forced retransmissions")
	}
}

func TestTransferSurvivesRandomLossCM(t *testing.T) {
	e := newEnv(t, wan(0.02), true)
	const n = 300_000
	ep, sk := transfer(t, e, cmClientCfg(e), nativeCfg(), n, 120*time.Second)
	if sk.delivered != n {
		t.Fatalf("delivered %d of %d bytes under 2%% loss", sk.delivered, n)
	}
	if ep.Stats().Retransmissions == 0 {
		t.Fatal("loss should have forced retransmissions")
	}
}

func TestTransferSurvivesHeavyLoss(t *testing.T) {
	for _, ccName := range []CongestionControl{CCNative, CCCM} {
		e := newEnv(t, wan(0.10), ccName == CCCM)
		cfg := nativeCfg()
		if ccName == CCCM {
			cfg = cmClientCfg(e)
		}
		const n = 50_000
		_, sk := transfer(t, e, cfg, nativeCfg(), n, 300*time.Second)
		if sk.delivered != n {
			t.Fatalf("[%s] delivered %d of %d bytes under 10%% loss", ccName, sk.delivered, n)
		}
	}
}

func TestThroughputApproachesLinkRate(t *testing.T) {
	// Short-RTT 100 Mbps path with no loss (the paper's testbed LAN): a bulk
	// transfer should reach a large fraction of the link rate. (On long-RTT
	// lossy paths TCP is loss-limited well below the link rate, as the
	// paper's own Figure 3 shows; that regime is covered by the Fig. 3
	// experiment, not this test.)
	e := newEnv(t, lan(), false)
	const n = 4_000_000
	ep, sk := transfer(t, e, nativeCfg(), nativeCfg(), n, 60*time.Second)
	if sk.delivered != n {
		t.Fatalf("delivered %d of %d", sk.delivered, n)
	}
	// The server records ClosedAt when it sees the client's FIN, i.e. when
	// the whole transfer has arrived.
	elapsed := sk.ep.Stats().ClosedAt - ep.Stats().EstablishedAt
	if elapsed <= 0 {
		t.Fatalf("transfer did not finish: closed=%v established=%v", sk.ep.Stats().ClosedAt, ep.Stats().EstablishedAt)
	}
	throughput := float64(n) / elapsed.Seconds() // bytes/sec
	linkRate := (100 * netsim.Mbps).BytesPerSecond()
	if throughput < 0.70*linkRate {
		t.Fatalf("throughput %.0f B/s is below 70%% of the 100 Mbps link (%.0f B/s)", throughput, linkRate)
	}
	if throughput > linkRate*1.01 {
		t.Fatalf("throughput %.0f B/s exceeds the link rate %.0f B/s", throughput, linkRate)
	}
}

func TestDelayedAckHalvesAckTraffic(t *testing.T) {
	run := func(delayed bool) (acks int64, segs int64) {
		e := newEnv(t, lan(), false)
		cfg := Config{CongestionControl: CCNative, DelayedAck: delayed}
		_, sk := transfer(t, e, nativeCfg(), cfg, 300_000, 30*time.Second)
		return sk.ep.Stats().AcksSent, sk.ep.Stats().SegmentsRcvd
	}
	acksDelayed, _ := run(true)
	acksImmediate, segs := run(false)
	if acksImmediate < segs-2 {
		t.Fatalf("without delayed ACKs nearly every segment should be acked: %d acks for %d segments", acksImmediate, segs)
	}
	if float64(acksDelayed) > 0.65*float64(acksImmediate) {
		t.Fatalf("delayed ACKs should roughly halve ACK traffic: %d vs %d", acksDelayed, acksImmediate)
	}
}

func TestReceiverWindowLimitsInFlight(t *testing.T) {
	e := newEnv(t, lan(), false)
	serverCfg := nativeCfg()
	serverCfg.RecvWindow = 8 * 1024
	clientCfg := nativeCfg()
	sk := listenSink(t, e, 80, serverCfg)
	ep, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	maxInFlight := 0
	ep.OnEstablished(func() {
		ep.Send(200_000)
		ep.Close()
	})
	for i := 0; i < 20000 && !sk.closed; i++ {
		e.sched.Step()
		if f := ep.inFlight(); f > maxInFlight {
			maxInFlight = f
		}
	}
	e.sched.RunFor(10 * time.Second)
	if sk.delivered != 200_000 {
		t.Fatalf("delivered %d", sk.delivered)
	}
	if maxInFlight > 8*1024+ep.mss() {
		t.Fatalf("in-flight %d exceeded the 8 KB receive window", maxInFlight)
	}
}

func TestSynLossIsRecovered(t *testing.T) {
	// Heavy loss makes it likely a SYN or SYN-ACK is dropped; the handshake
	// retransmission must still establish the connection.
	link := wan(0.30)
	link.Seed = 5
	e := newEnv(t, link, false)
	const n = 5_000
	_, sk := transfer(t, e, nativeCfg(), nativeCfg(), n, 600*time.Second)
	if sk.delivered != n {
		t.Fatalf("delivered %d of %d under 30%% loss", sk.delivered, n)
	}
}

func TestConnectionCloseReachesTimeWait(t *testing.T) {
	e := newEnv(t, lan(), false)
	sk := listenSink(t, e, 80, nativeCfg())
	ep, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, nativeCfg())
	if err != nil {
		t.Fatal(err)
	}
	clientSawClose := false
	ep.OnClosed(func() { clientSawClose = true })
	ep.OnEstablished(func() {
		ep.Send(10_000)
		ep.Close()
	})
	e.sched.RunFor(2 * time.Second)
	// Server closes its side once it has seen the client's FIN.
	if !sk.closed {
		t.Fatal("server did not see the client FIN")
	}
	sk.ep.Close()
	e.sched.RunFor(2 * time.Second)
	if !clientSawClose {
		t.Fatal("client did not see the server FIN")
	}
	if ep.State() != StateTimeWait {
		t.Fatalf("client state = %v, want time-wait", ep.State())
	}
	if sk.ep.State() != StateTimeWait {
		t.Fatalf("server state = %v, want time-wait", sk.ep.State())
	}
	if ep.Stats().ClosedAt == 0 || sk.ep.Stats().ClosedAt == 0 {
		t.Fatal("close times not recorded")
	}
}

func TestCMFlowLifecycle(t *testing.T) {
	e := newEnv(t, lan(), true)
	sk := listenSink(t, e, 80, nativeCfg())
	ep, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, cmClientCfg(e))
	if err != nil {
		t.Fatal(err)
	}
	ep.OnEstablished(func() {
		if e.cm.FlowCount() != 1 {
			t.Error("cm_open should have been called at connection establishment")
		}
		ep.Send(100_000)
		ep.Close()
	})
	e.sched.RunFor(5 * time.Second)
	if sk.delivered != 100_000 {
		t.Fatalf("delivered %d", sk.delivered)
	}
	sk.ep.Close()
	e.sched.RunFor(5 * time.Second)
	if ep.State() != StateTimeWait {
		t.Fatalf("client state %v", ep.State())
	}
	if e.cm.FlowCount() != 0 {
		t.Fatal("cm_close should have been called when the connection fully closed")
	}
	if e.cm.MacroflowCount() != 1 {
		t.Fatal("macroflow state should persist for future connections")
	}
	acct := e.cm.Accounting()
	if acct.Requests == 0 || acct.Updates == 0 || acct.Notifies == 0 || acct.GrantsIssued == 0 {
		t.Fatalf("CM API should have been exercised: %+v", acct)
	}
}

func TestCMWindowSharedAcrossSequentialConnections(t *testing.T) {
	// The Figure 7 mechanism: a second connection to the same destination
	// starts with the macroflow window learned by the first one.
	e := newEnv(t, wan(0), true)
	sk := listenSink(t, e, 80, nativeCfg())
	ep1, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, cmClientCfg(e))
	if err != nil {
		t.Fatal(err)
	}
	ep1.OnEstablished(func() {
		ep1.Send(256 * 1024)
		ep1.Close()
	})
	e.sched.RunFor(20 * time.Second)
	if sk.delivered != 256*1024 {
		t.Fatalf("first transfer delivered %d", sk.delivered)
	}
	var mfWindow int
	for _, id := range []cm.FlowID{0, 1, 2} {
		if mf := e.cm.MacroflowOf(id); mf != nil {
			mfWindow = mf.Window()
		}
	}
	// Even if the flow is closed the macroflow persists; find it by opening a
	// probe flow.
	probe := e.cm.Open(netsim.ProtoTCP, netsim.Addr{Host: "client", Port: 9}, netsim.Addr{Host: "server", Port: 80})
	mfWindow = e.cm.MacroflowOf(probe).Window()
	e.cm.Close(probe)
	if mfWindow <= 2*netsim.DefaultMTU {
		t.Fatalf("macroflow window after a 256 KB transfer should exceed 2 MTU, got %d", mfWindow)
	}

	// Second connection: its congestion window starts at the learned value,
	// not at 1 MTU.
	ep2, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, cmClientCfg(e))
	if err != nil {
		t.Fatal(err)
	}
	var initialWindow int
	ep2.OnEstablished(func() { initialWindow = ep2.CongestionWindow() })
	e.sched.RunFor(2 * time.Second)
	if initialWindow != mfWindow {
		t.Fatalf("second connection should inherit the macroflow window: got %d, want %d", initialWindow, mfWindow)
	}
}

func TestTwoConcurrentCMConnectionsShareOneMacroflow(t *testing.T) {
	e := newEnv(t, wan(0), true)
	sk1 := listenSink(t, e, 80, nativeCfg())
	sk2 := listenSink(t, e, 81, nativeCfg())
	mk := func(port, n int) *Endpoint {
		ep, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: port}, cmClientCfg(e))
		if err != nil {
			t.Fatal(err)
		}
		ep.OnEstablished(func() {
			ep.Send(n)
			ep.Close()
		})
		return ep
	}
	mk(80, 200_000)
	mk(81, 200_000)
	e.sched.RunFor(30 * time.Second)
	if sk1.delivered != 200_000 || sk2.delivered != 200_000 {
		t.Fatalf("delivered %d and %d", sk1.delivered, sk2.delivered)
	}
	if e.cm.MacroflowCount() != 1 {
		t.Fatalf("both connections go to the same host and must share one macroflow, got %d", e.cm.MacroflowCount())
	}
}

func TestStateStringAndSegmentString(t *testing.T) {
	for s := StateClosed; s <= StateTimeWait; s++ {
		if s.String() == "" {
			t.Fatal("state string empty")
		}
	}
	if State(42).String() == "" {
		t.Fatal("unknown state string empty")
	}
	seg := &Segment{Seq: 1, Ack: 2, Len: 3, SYN: true, FIN: true, ACK: true}
	if seg.String() == "" || seg.seqLen() != 5 {
		t.Fatalf("segment helpers wrong: %q %d", seg.String(), seg.seqLen())
	}
	if wireSize(&Segment{Len: 100}) != 100+headerOverhead {
		t.Fatal("wireSize wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CCCM without a CM must panic")
		}
	}()
	s := simtime.NewScheduler()
	h := node.NewHost("x", s)
	newEndpoint(h, netsim.Addr{Host: "x", Port: 1}, netsim.Addr{Host: "y", Port: 2}, Config{CongestionControl: CCCM})
}

func TestSendBeforeEstablishedIsQueued(t *testing.T) {
	e := newEnv(t, lan(), false)
	sk := listenSink(t, e, 80, nativeCfg())
	ep, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, nativeCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Queue data while the handshake is still in flight.
	ep.Send(50_000)
	ep.Close()
	e.sched.RunFor(5 * time.Second)
	if sk.delivered != 50_000 {
		t.Fatalf("delivered %d, want 50000", sk.delivered)
	}
}

func TestZeroAndNegativeSendIgnored(t *testing.T) {
	e := newEnv(t, lan(), false)
	_, _ = listenSink(t, e, 80, nativeCfg()), 0
	ep, _ := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, nativeCfg())
	ep.Send(0)
	ep.Send(-10)
	if ep.Stats().BytesQueued != 0 {
		t.Fatal("zero/negative sends should not queue data")
	}
}

// Property: for random loss rates and transfer sizes, TCP delivers exactly
// the number of bytes sent, in order, for both congestion control providers.
func TestPropertyReliableDelivery(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	f := func(sizeKB uint8, lossTenthPct uint8, seed int64, useCM bool) bool {
		n := (int(sizeKB%64) + 1) * 1024
		loss := float64(lossTenthPct%50) / 1000 // 0 - 4.9%
		link := netsim.LinkConfig{
			Bandwidth: 10 * netsim.Mbps, Delay: 20 * time.Millisecond,
			QueuePackets: 60, LossRate: loss, Seed: seed,
		}
		e := newEnvQuiet(link, useCM)
		sk := &sink{}
		if _, err := Listen(e.net.Host("server"), 80, nativeCfg(), func(ep *Endpoint) {
			sk.ep = ep
			ep.OnReceive(func(k int) { sk.delivered += int64(k) })
			ep.OnClosed(func() { sk.closed = true })
		}); err != nil {
			return false
		}
		cfg := nativeCfg()
		if useCM {
			cfg = Config{CongestionControl: CCCM, CM: e.cm, DelayedAck: true}
		}
		ep, err := Dial(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, cfg)
		if err != nil {
			return false
		}
		ep.OnEstablished(func() {
			ep.Send(n)
			ep.Close()
		})
		e.sched.RunUntil(10 * time.Minute)
		return sk.delivered == int64(n) && sk.closed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// newEnvQuiet is newEnv without the testing.T plumbing, for property tests.
func newEnvQuiet(link netsim.LinkConfig, withCM bool) *env {
	s := simtime.NewScheduler()
	nw := node.NewNetwork(s)
	d := nw.ConnectDuplex("client", "server", link)
	e := &env{sched: s, net: nw, duplex: d}
	if withCM {
		e.cm = cm.New(s, s)
		nw.Host("client").SetTransmitNotifier(e.cm)
	}
	return e
}
