package netsim

import (
	"testing"
	"time"

	"repro/internal/simtime"
)

func pkt(size int) *Packet {
	return &Packet{Proto: ProtoUDP, Src: Addr{Host: "a", Port: 1}, Dst: Addr{Host: "b", Port: 2}, Size: size}
}

// The ring must wrap cleanly: interleave enqueues and dequeues so head walks
// around the backing array several times, and verify strict FIFO order.
func TestQueueRingWraparoundFIFO(t *testing.T) {
	q := NewQueue(4, 0, DropTail)
	next := 0     // next packet id to enqueue
	expected := 0 // next packet id we expect to dequeue
	enq := func(n int) {
		for i := 0; i < n; i++ {
			p := pkt(100)
			p.ChargeBytes = next // tag with id
			next++
			if dropped := q.Enqueue(p); dropped != nil {
				t.Fatalf("unexpected drop of packet %d", p.ChargeBytes)
			}
		}
	}
	deq := func(n int) {
		for i := 0; i < n; i++ {
			p := q.Dequeue()
			if p == nil {
				t.Fatalf("Dequeue returned nil, expected packet %d", expected)
			}
			if p.ChargeBytes != expected {
				t.Fatalf("Dequeue order: got packet %d, want %d", p.ChargeBytes, expected)
			}
			expected++
		}
	}
	// Drive head around the 4-slot ring many times with varying occupancy.
	enq(3)
	deq(2)
	enq(3) // wraps: tail passes the end of the array
	deq(4)
	for round := 0; round < 10; round++ {
		enq(4) // fill completely
		deq(3)
		enq(2)
		deq(3) // drain completely
	}
	if q.Len() != 0 {
		t.Fatalf("Len() = %d after balanced interleaving, want 0", q.Len())
	}
	if q.Dequeue() != nil {
		t.Fatal("Dequeue on empty ring should return nil")
	}
}

// A byte-limited queue has no packet bound, so the ring must grow while
// preserving FIFO order, including when the contents wrap the old array.
func TestQueueRingGrowthPreservesOrder(t *testing.T) {
	q := NewQueue(0, 1<<20, DropTail)
	// Advance head so the ring is wrapped when growth happens.
	for i := 0; i < 48; i++ {
		if d := q.Enqueue(pkt(10)); d != nil {
			t.Fatal("unexpected drop")
		}
	}
	for i := 0; i < 48; i++ {
		if q.Dequeue() == nil {
			t.Fatal("unexpected empty")
		}
	}
	// Now fill beyond the initial 64-slot capacity.
	const n = 300
	for i := 0; i < n; i++ {
		p := pkt(10)
		p.ChargeBytes = i
		if d := q.Enqueue(p); d != nil {
			t.Fatalf("unexpected drop at %d", i)
		}
	}
	if q.Len() != n {
		t.Fatalf("Len() = %d, want %d", q.Len(), n)
	}
	for i := 0; i < n; i++ {
		p := q.Dequeue()
		if p == nil || p.ChargeBytes != i {
			t.Fatalf("growth broke FIFO at %d: %+v", i, p)
		}
	}
}

// Drop-head under wraparound: victims must come off the logical head.
func TestQueueRingDropHeadWrapped(t *testing.T) {
	q := NewQueue(3, 0, DropHead)
	// Wrap the ring first.
	q.Enqueue(pkt(1))
	q.Enqueue(pkt(1))
	q.Dequeue()
	q.Dequeue()
	for i := 0; i < 3; i++ {
		p := pkt(1)
		p.ChargeBytes = i
		q.Enqueue(p)
	}
	p := pkt(1)
	p.ChargeBytes = 99
	dropped := q.Enqueue(p)
	if dropped == nil || dropped.ChargeBytes != 0 {
		t.Fatalf("drop-head victim = %+v, want the oldest (id 0)", dropped)
	}
	if got := q.Dequeue(); got == nil || got.ChargeBytes != 1 {
		t.Fatalf("head after drop = %+v, want id 1", got)
	}
}

// Enqueue/transmit/deliver of pooled packets over a link must not allocate in
// steady state: events come from the scheduler freelist, packets cycle
// through the pool, and the ring buffer never reallocates.
func TestPooledPacketPathZeroAlloc(t *testing.T) {
	sched := simtime.NewScheduler()
	sink := ReceiverFunc(func(p *Packet) { p.Release() })
	l := NewLink(sched, LinkConfig{Bandwidth: 10 * Mbps, Delay: time.Millisecond, QueuePackets: 64}, sink)
	send := func() {
		p := NewPacket()
		p.Proto = ProtoUDP
		p.Src = Addr{Host: "a", Port: 1}
		p.Dst = Addr{Host: "b", Port: 2}
		p.Size = 1000
		if !l.Send(p) {
			t.Fatal("send failed")
		}
		sched.Run()
	}
	// Warm the pool, the event freelist and the heap backing array.
	for i := 0; i < 64; i++ {
		send()
	}
	allocs := testing.AllocsPerRun(500, send)
	if allocs != 0 {
		t.Fatalf("pooled enqueue/transmit/deliver allocated %.1f objects per op, want 0", allocs)
	}
}

// Released packets must be reused by NewPacket and arrive zeroed.
func TestPacketPoolReuseResetsState(t *testing.T) {
	p := NewPacket()
	p.Proto = ProtoTCP
	p.Size = 1234
	p.CE = true
	p.Payload = "payload"
	p.Release()
	q := NewPacket()
	if q.Proto != 0 || q.Size != 0 || q.CE || q.Payload != nil {
		t.Fatalf("reused packet not reset: %+v", q)
	}
	// Double release must be a no-op.
	q.Release()
	q.Release()
	// Literal packets are never pooled.
	lit := pkt(1)
	lit.Release() // no-op
	if lit.Size != 1 {
		t.Fatal("Release corrupted an unpooled packet")
	}
}

// A single large arrival can evict several head victims from a byte-limited
// drop-head queue; the queue must release the superseded victims to the pool
// itself and hand the caller only the last one, still pooled.
func TestQueueDropHeadMultiVictimReleases(t *testing.T) {
	q := NewQueue(0, 1500, DropHead)
	victims := make([]*Packet, 3)
	for i := range victims {
		victims[i] = NewPacket()
		victims[i].Size = 500
		if d := q.Enqueue(victims[i]); d != nil {
			t.Fatal("unexpected drop while filling")
		}
	}
	big := NewPacket()
	big.Size = 1400
	dropped := q.Enqueue(big)
	if dropped != victims[2] {
		t.Fatalf("returned victim = %p, want the last evicted (%p)", dropped, victims[2])
	}
	if victims[0].pooled || victims[1].pooled {
		t.Fatal("superseded victims were not released to the pool")
	}
	if !dropped.pooled {
		t.Fatal("returned victim must still be owned by the caller")
	}
	dropped.Release()
	if got := q.Stats().DroppedPackets; got != 3 {
		t.Fatalf("DroppedPackets = %d, want 3", got)
	}
	if q.Len() != 1 || q.Bytes() != 1400 {
		t.Fatalf("queue holds %d pkts / %d bytes, want 1 / 1400", q.Len(), q.Bytes())
	}
	// Arrival alone exceeding the limit: earlier victims are released, the
	// arriving packet itself is returned.
	q2 := NewQueue(0, 1000, DropHead)
	small := NewPacket()
	small.Size = 600
	q2.Enqueue(small)
	huge := NewPacket()
	huge.Size = 5000
	if d := q2.Enqueue(huge); d != huge {
		t.Fatalf("oversized arrival should be returned, got %p", d)
	}
	if small.pooled {
		t.Fatal("evicted packet not released when arrival alone overflows")
	}
}

// Regression: with a receiver that releases packets (as node.Host does), a
// duplicated delivery must carry the original payload — the clone has to be
// taken before the first hand-up can release the packet to the pool.
func TestDuplicateDeliveryWithReleasingReceiver(t *testing.T) {
	sched := simtime.NewScheduler()
	var payloads []any
	sink := ReceiverFunc(func(p *Packet) {
		payloads = append(payloads, p.Payload)
		p.Release()
	})
	l := NewLink(sched, LinkConfig{Bandwidth: 10 * Mbps, DuplicateRate: 1.0, QueuePackets: 8}, sink)
	p := NewPacket()
	p.Size = 100
	p.Payload = "DATA"
	if !l.Send(p) {
		t.Fatal("send failed")
	}
	sched.Run()
	if len(payloads) != 2 {
		t.Fatalf("delivered %d packets, want 2 (original + duplicate)", len(payloads))
	}
	for i, pl := range payloads {
		if pl != "DATA" {
			t.Fatalf("delivery %d carried payload %v, want DATA", i, pl)
		}
	}
	if l.Stats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", l.Stats().Duplicated)
	}
}

// BenchmarkLinkTransmitDeliver measures the full pooled per-packet path:
// allocate from pool, enqueue, serialise, deliver, release.
func BenchmarkLinkTransmitDeliver(b *testing.B) {
	sched := simtime.NewScheduler()
	sink := ReceiverFunc(func(p *Packet) { p.Release() })
	l := NewLink(sched, LinkConfig{Bandwidth: 100 * Mbps, Delay: time.Millisecond, QueuePackets: 64}, sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPacket()
		p.Size = 1500
		l.Send(p)
		sched.Run()
	}
}
