package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/app"
	"repro/internal/cm"
	"repro/internal/dynamics"
	"repro/internal/libcm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/probe"
	"repro/internal/simtime"
	"repro/internal/tcp"
)

// FlowResult reports one transport flow of a workload.
type FlowResult struct {
	Workload int    `json:"workload"`
	Flow     int    `json:"flow"`
	From     string `json:"from"`
	To       string `json:"to"`
	Port     int    `json:"port"`
	CC       string `json:"cc"`
	// Delivered is the number of payload bytes the receiver's application
	// saw in order.
	Delivered int64 `json:"delivered"`
	// Completed is true when a bulk flow delivered all its bytes and closed.
	Completed bool `json:"completed"`
	// Established and Finished are virtual timestamps (Finished is zero for
	// incomplete or streaming flows).
	Established time.Duration `json:"established"`
	Finished    time.Duration `json:"finished,omitempty"`
	// Elapsed is Finished-Established for completed flows, otherwise the
	// time from establishment to the end of the run.
	Elapsed         time.Duration `json:"elapsed"`
	ThroughputKBps  float64       `json:"throughput_kbps"`
	Retransmissions int64         `json:"retransmissions"`
	Timeouts        int64         `json:"timeouts"`
	SRTT            time.Duration `json:"srtt"`
	// LayerSwitches counts encoding-layer changes of a layered UDP workload
	// (KindUDPRate / KindUDPALF); zero for TCP flows.
	LayerSwitches int64 `json:"layer_switches,omitempty"`
	// Error reports a flow that failed to start (e.g. a dial rejected after
	// the run began); such flows are never Completed.
	Error string `json:"error,omitempty"`
}

// LinkResult reports one direction of one link.
type LinkResult struct {
	Name string `json:"name"`
	netsim.LinkStats
	// ECNMarked counts CE marks applied by this link's queue.
	ECNMarked int `json:"ecn_marked"`
}

// HostResult reports a node's IP-layer counters.
type HostResult struct {
	Name   string `json:"name"`
	Router bool   `json:"router,omitempty"`
	node.HostStats
}

// CMResult reports one host's Congestion Manager.
type CMResult struct {
	Host       string `json:"host"`
	Macroflows int    `json:"macroflows"`
	Flows      int    `json:"flows"`
	// Epoch is the CM's restart count at end of run.
	Epoch int64 `json:"epoch,omitempty"`
	cm.Accounting
	// Audit is the end-of-run liveness/conservation snapshot the faults
	// invariant checker examines (stranded flows, leaked requests, grants
	// still outstanding).
	PendingRequests   int `json:"pending_requests"`
	UnclaimedGrants   int `json:"unclaimed_grants"`
	OutstandingGrants int `json:"outstanding_grants"`
	StrandedFlows     int `json:"stranded_flows"`
	NegativePending   int `json:"negative_pending"`
	// Notification fault-injection counters of the host's libcm instances.
	libcm.InjectorStats
}

// Result is the outcome of one scenario run. It is a pure function of the
// Spec: all slices are in deterministic order and contain only value types,
// so results can be compared with reflect.DeepEqual or byte-compared after
// JSON encoding.
type Result struct {
	Scenario string        `json:"scenario"`
	EndTime  time.Duration `json:"end_time"`
	Flows    []FlowResult  `json:"flows"`
	Links    []LinkResult  `json:"links"`
	Hosts    []HostResult  `json:"hosts"`
	CMs      []CMResult    `json:"cms,omitempty"`
	// Events records the executed dynamics timeline: which scheduled network
	// events fired and how many routing-table entries each changed.
	Events []dynamics.Record `json:"events,omitempty"`
	// Series holds the sampled time series of the spec's declarative probes,
	// one per Spec.Probes entry in declaration order. Sampling runs on the
	// simulation's virtual clock, so the series — like every other Result
	// field — are byte-identical across serial, parallel and sharded
	// execution (shard.* probes excepted: they describe the execution plan
	// itself).
	Series []probe.Series `json:"series,omitempty"`
	// Routing summarises the distance-vector control plane of a protocol-mode
	// run (RouteSync: "protocol"): message statistics, the convergence
	// verdict and the end-of-run forwarding audit. Nil in oracle mode.
	Routing *RoutingResult `json:"routing,omitempty"`
	// Perf is the per-event-kind wall-clock cost attribution, set by Finish
	// when EnableProfiling was armed. Unlike every other field it describes
	// the execution, not the simulation: byte-identity comparisons strip it.
	Perf *Perf `json:"perf,omitempty"`
}

// flowDriver tracks one declarative flow while the simulation runs.
type flowDriver struct {
	res       *FlowResult
	ep        *tcp.Endpoint
	wantBytes int64
	// udpFinish, set for layered UDP workloads, folds the application's
	// end-of-run counters into the flow result; udpStarted records that the
	// stream's (possibly delayed) start actually fired.
	udpFinish  func(fr *FlowResult)
	udpStarted bool
}

// Run builds the spec and executes its workloads for the configured
// duration, returning the collected result. A spec with Shards > 1 executes
// on shard workers under conservative synchronization; the Result is
// byte-identical either way.
func Run(spec Spec) (*Result, error) {
	sim, err := Build(spec)
	if err != nil {
		return nil, err
	}
	if err := sim.Start(); err != nil {
		return nil, err
	}
	sim.RunToEnd()
	return sim.Finish(), nil
}

// Start instantiates the spec's declarative workloads without running the
// scheduler. Callers that need to observe the simulation mid-run (the
// adaptation-under-failure experiment, the CM dynamics tests) use
// Build + Start, drive the scheduler themselves, and then call Finish.
func (s *Sim) Start() error {
	if s.started {
		return fmt.Errorf("scenario %q: Start called twice", s.Spec.Name)
	}
	s.started = true
	drivers, err := s.startWorkloads()
	if err != nil {
		return err
	}
	s.drivers = drivers
	// Probes install after the workloads so their sampling events land behind
	// every workload event in per-scheduler insertion order — the same
	// relative order in serial and sharded builds.
	if err := s.installProbes(); err != nil {
		return err
	}
	s.installSnapshots()
	// The protocol convergence deadline depends on the fully expanded event
	// list; arming it registers its baseline capture on the observation
	// schedule, which is then frozen.
	if s.proto != nil {
		s.proto.arm()
	}
	s.finishObservers()
	return nil
}

// Finish freezes the simulation state into a Result. The scheduler is not
// advanced; Finish reports whatever has happened up to the current virtual
// time.
func (s *Sim) Finish() *Result {
	res := s.collect(s.drivers)
	res.Perf = s.perfBlock()
	return res
}

// startWorkloads instantiates every declarative flow: a listener on the To
// host, a dialer on the From host (delayed by Start), and the send/close
// behaviour of the workload kind.
func (s *Sim) startWorkloads() ([]*flowDriver, error) {
	var drivers []*flowDriver
	for wi := range s.Spec.Workloads {
		w := &s.Spec.Workloads[wi]
		// A web mix pre-samples every request's arrival time and size with a
		// seeded RNG at start time, so the plan is a pure function of the
		// spec — identical across serial, parallel and sharded execution.
		var web *webMixPlan
		if w.Kind == KindWebMix {
			web = planWebMix(s.Spec.Seed, wi, w)
		}
		for fi := 0; fi < w.Flows; fi++ {
			port := w.Port + fi
			d := &flowDriver{
				res: &FlowResult{
					Workload: wi, Flow: fi,
					From: w.From, To: w.To, Port: port, CC: w.CC,
				},
			}
			flowBytes, flowStart := w.Bytes, w.Start
			if web != nil {
				flowBytes, flowStart = web.bytes[fi], web.start[fi]
			}
			if w.Kind == KindBulk || w.Kind == KindWebMix {
				d.wantBytes = int64(flowBytes)
			}
			drivers = append(drivers, d)

			if udpKind(w.Kind) {
				if err := s.startUDPFlow(w, d, port); err != nil {
					return nil, fmt.Errorf("scenario %q: workload %d flow %d: %w", s.Spec.Name, wi, fi, err)
				}
				continue
			}

			// Each side of the flow timestamps with its own host's clock: the
			// two differ only in a sharded build, where the receive-side
			// callbacks run on the To host's shard and the dial-side ones on
			// the From host's.
			fromClock, toClock := s.clockFor(w.From), s.clockFor(w.To)
			_, err := tcp.Listen(s.net.Host(w.To), port,
				tcp.Config{DelayedAck: true, RecvWindow: w.RecvWindow},
				func(ep *tcp.Endpoint) {
					ep.OnReceive(func(n int) { d.res.Delivered += int64(n) })
					ep.OnClosed(func() { d.res.Finished = toClock.Now() })
				})
			if err != nil {
				return nil, fmt.Errorf("scenario %q: workload %d flow %d: %w", s.Spec.Name, wi, fi, err)
			}

			cfg := tcp.Config{
				DelayedAck: true,
				RecvWindow: w.RecvWindow,
			}
			if w.CC == CCCM {
				cfg.CongestionControl = tcp.CCCM
				cfg.CM = s.cms[w.From]
			} else {
				cfg.CongestionControl = tcp.CCNative
			}
			bytes, kind := flowBytes, w.Kind
			dial := func() error {
				ep, err := tcp.Dial(s.net.Host(w.From), netsim.Addr{Host: w.To, Port: port}, cfg)
				if err != nil {
					d.res.Error = err.Error()
					return err
				}
				d.ep = ep
				ep.OnEstablished(func() {
					d.res.Established = fromClock.Now()
					switch kind {
					case KindStream:
						// Effectively unbounded: backlogged for the whole
						// run (1 GB, an int even on 32-bit platforms).
						ep.Send(1 << 30)
					default:
						ep.Send(bytes)
						ep.Close()
					}
				})
				return nil
			}
			if flowStart > 0 {
				// The dial happens mid-run; a failure is recorded on the
				// flow's result instead of aborting the whole scenario.
				fromClock.AtKind(flowStart, simtime.KindWorkloadApp, func() { _ = dial() })
			} else if err := dial(); err != nil {
				return nil, fmt.Errorf("scenario %q: workload %d flow %d: %w", s.Spec.Name, wi, fi, err)
			}
		}
	}
	return drivers, nil
}

// webMixPlan holds the pre-sampled arrivals and sizes of one KindWebMix
// workload: request fi dials at start[fi] and transfers bytes[fi].
type webMixPlan struct {
	start []time.Duration
	bytes []int
}

// planWebMix samples the workload's Poisson arrival process and per-request
// sizes. Arrivals are cumulative Exp(1/Rate) interarrival gaps offset by the
// workload's Start; sizes are exponential around the mean Bytes, floored at
// 512 bytes so every request carries at least a small response. The RNG seed
// derives deterministically from the spec seed and the workload's position.
func planWebMix(specSeed int64, wi int, w *Workload) *webMixPlan {
	rng := rand.New(rand.NewSource(specSeed + int64(wi+1)*subSeedStride + 0x9e37))
	p := &webMixPlan{
		start: make([]time.Duration, w.Flows),
		bytes: make([]int, w.Flows),
	}
	t := w.Start
	for i := 0; i < w.Flows; i++ {
		t += time.Duration(rng.ExpFloat64() / w.Rate * float64(time.Second))
		p.start[i] = t
		size := int(rng.ExpFloat64() * float64(w.Bytes))
		if size < 512 {
			size = 512
		}
		p.bytes[i] = size
	}
	return p
}

// startUDPFlow attaches one layered UDP streaming application (§3.4/§3.5):
// a feedback-generating client on the To host and a libcm-driven layered
// server on the From host, in the rate-callback (KindUDPRate) or ALF
// (KindUDPALF) mode. Each flow gets its own libcm instance — one application,
// one control socket — bound to the From host's Congestion Manager.
func (s *Sim) startUDPFlow(w *Workload, d *flowDriver, port int) error {
	client, err := app.NewLayeredClient(s.net.Host(w.To), port, app.FeedbackPolicy{}, 0)
	if err != nil {
		return err
	}
	mode := app.ModeRateCallback
	if w.Kind == KindUDPALF {
		mode = app.ModeALF
	}
	fromClock := s.clockFor(w.From)
	lib := libcm.New(s.cms[w.From], fromClock, libcm.ModeAuto)
	lib.SetInjector(s.injectors[w.From])
	srv, err := app.NewLayeredServer(s.net.Host(w.From), lib, client.Addr(), app.LayeredConfig{Mode: mode})
	if err != nil {
		return err
	}
	d.udpFinish = func(fr *FlowResult) {
		fr.Delivered = client.TotalBytes()
		fr.LayerSwitches = srv.Stats().LayerSwitches
	}
	start := func() {
		d.udpStarted = true
		d.res.Established = fromClock.Now()
		srv.Start()
	}
	if w.Start > 0 {
		fromClock.AtKind(w.Start, simtime.KindWorkloadApp, start)
	} else {
		start()
	}
	return nil
}

// collect freezes the simulation state into a Result.
func (s *Sim) collect(drivers []*flowDriver) *Result {
	res := &Result{Scenario: s.Spec.Name, EndTime: s.now()}
	for _, d := range drivers {
		fr := *d.res
		if d.udpFinish != nil {
			// A layered UDP stream: fold in the application counters. The
			// stream never completes; it runs from its start time to the end.
			// A stream whose delayed start never fired reports zero elapsed.
			d.udpFinish(&fr)
			if d.udpStarted {
				fr.Elapsed = s.now() - fr.Established
			}
			if fr.Elapsed > 0 {
				fr.ThroughputKBps = float64(fr.Delivered) / fr.Elapsed.Seconds() / 1024
			}
			res.Flows = append(res.Flows, fr)
			continue
		}
		if d.wantBytes > 0 && fr.Delivered >= d.wantBytes && fr.Finished > 0 {
			fr.Completed = true
			fr.Elapsed = fr.Finished - fr.Established
		} else {
			fr.Finished = 0
			if fr.Established > 0 {
				fr.Elapsed = s.now() - fr.Established
			}
		}
		if d.ep != nil {
			st := d.ep.Stats()
			fr.Retransmissions = st.Retransmissions
			fr.Timeouts = st.Timeouts
			fr.SRTT = st.SRTT
		}
		if fr.Elapsed > 0 {
			fr.ThroughputKBps = float64(fr.Delivered) / fr.Elapsed.Seconds() / 1024
		}
		res.Flows = append(res.Flows, fr)
	}
	for _, d := range s.duplexes {
		for _, l := range []*netsim.Link{d.Forward, d.Reverse} {
			res.Links = append(res.Links, LinkResult{
				Name:      l.Config().Name,
				LinkStats: l.Stats(),
				ECNMarked: l.QueueStats().ECNMarked,
			})
		}
	}
	for _, name := range s.nodeNames {
		h := s.net.Host(name)
		res.Hosts = append(res.Hosts, HostResult{Name: name, Router: h.Forwarding(), HostStats: h.Stats()})
	}
	for _, host := range s.cmHosts {
		c := s.cms[host]
		audit := c.Audit()
		cr := CMResult{
			Host:              host,
			Macroflows:        c.MacroflowCount(),
			Flows:             c.FlowCount(),
			Epoch:             c.Epoch(),
			Accounting:        c.Accounting(),
			PendingRequests:   audit.PendingRequests,
			UnclaimedGrants:   audit.UnclaimedGrants,
			OutstandingGrants: audit.OutstandingGrants,
			StrandedFlows:     audit.StrandedFlows,
			NegativePending:   audit.NegativePending,
		}
		if inj := s.injectors[host]; inj != nil {
			cr.InjectorStats = inj.Stats()
		}
		res.CMs = append(res.CMs, cr)
	}
	if s.timeline != nil {
		res.Events = s.timeline.Records()
	}
	for _, sp := range s.samplers {
		res.Series = append(res.Series, sp.series.Freeze())
	}
	if s.proto != nil {
		res.Routing = s.proto.result()
	}
	return res
}
