// Package tcp implements a simulation TCP: connection establishment and
// teardown, a reliable in-order byte stream with cumulative ACKs, fast
// retransmit, retransmission timeouts with Karn/Jacobson RTT estimation
// (via RFC 1323-style timestamps), delayed acknowledgements and receiver
// flow control.
//
// Congestion control is pluggable between two providers, mirroring the
// paper's comparison:
//
//   - "native": a Linux-2.2-like Reno controller kept inside TCP (initial
//     window of 2 segments, ACK counting).
//   - "cm": congestion control offloaded to the Congestion Manager. TCP is an
//     in-kernel CM client using the request/callback API with direct function
//     calls, exactly as §3.2 of the paper describes: data is sent only from
//     cmapp_send callbacks, ACK arrivals call cm_update, duplicate ACKs and
//     timeouts report transient/persistent congestion, and the IP output hook
//     charges transmissions with cm_notify.
package tcp

import (
	"fmt"
	"time"

	"repro/internal/netsim"
)

// Segment is a TCP segment as carried in a netsim.Packet payload. Sequence
// numbers are absolute 64-bit byte offsets (no wraparound handling is needed
// at simulation scale). Payload bytes are synthetic: only lengths travel, and
// receivers reconstruct the stream from sequence arithmetic.
type Segment struct {
	Seq int64 // sequence number of the first payload byte (or of SYN/FIN)
	Ack int64 // cumulative acknowledgement: next byte expected
	Len int   // payload length in bytes

	SYN bool
	FIN bool
	ACK bool

	// Wnd is the advertised receive window in bytes.
	Wnd int

	// TSVal and TSEcr are RFC 1323 timestamps used for RTT sampling.
	TSVal time.Duration
	TSEcr time.Duration

	// Retransmit marks retransmitted segments (used only for statistics and
	// to suppress RTT sampling on ambiguous segments, per Karn's rule).
	Retransmit bool
}

// seqLen returns the amount of sequence space the segment occupies.
func (s *Segment) seqLen() int64 {
	n := int64(s.Len)
	if s.SYN {
		n++
	}
	if s.FIN {
		n++
	}
	return n
}

// String formats the segment for diagnostics.
func (s *Segment) String() string {
	flags := ""
	if s.SYN {
		flags += "S"
	}
	if s.FIN {
		flags += "F"
	}
	if s.ACK {
		flags += "."
	}
	return fmt.Sprintf("seq=%d ack=%d len=%d %s", s.Seq, s.Ack, s.Len, flags)
}

// headerOverhead is the wire overhead of one segment: IP header, TCP header
// and the timestamp option.
const headerOverhead = netsim.IPHeaderSize + netsim.TCPHeaderSize + netsim.TCPTimestampOption

// wireSize returns the on-the-wire size of a segment.
func wireSize(seg *Segment) int { return headerOverhead + seg.Len }

// State is the TCP connection state (simplified: the states needed for
// connection setup, data transfer and orderly close).
type State int

// Connection states.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynReceived
	StateEstablished
	StateFinWait  // our FIN sent, not yet acknowledged
	StateCloseWait // peer's FIN received, we may still send
	StateClosing  // both FINs in flight
	StateTimeWait // fully closed
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateClosed:
		return "closed"
	case StateListen:
		return "listen"
	case StateSynSent:
		return "syn-sent"
	case StateSynReceived:
		return "syn-received"
	case StateEstablished:
		return "established"
	case StateFinWait:
		return "fin-wait"
	case StateCloseWait:
		return "close-wait"
	case StateClosing:
		return "closing"
	case StateTimeWait:
		return "time-wait"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}
