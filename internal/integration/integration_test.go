// Package integration contains cross-module scenario tests: full stacks
// (TCP/CM, congestion-controlled UDP, user-space adaptive applications)
// sharing Congestion Manager state on simulated networks. These are the
// system-level behaviours the paper's architecture promises, exercised
// end to end rather than per package.
package integration

import (
	"testing"
	"time"

	"repro/internal/app"
	"repro/internal/cm"
	"repro/internal/libcm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// env is a sender host with a CM plus one or more receiver hosts.
type env struct {
	sched  *simtime.Scheduler
	net    *node.Network
	cm     *cm.CM
	sender *node.Host
}

func newEnv(t *testing.T) *env {
	t.Helper()
	s := simtime.NewScheduler()
	nw := node.NewNetwork(s)
	c := cm.New(s, s)
	e := &env{sched: s, net: nw, cm: c, sender: nw.Host("sender")}
	e.sender.SetTransmitNotifier(c)
	return e
}

func (e *env) connect(receiver string, bw netsim.Bandwidth, delay time.Duration, loss float64, seed int64) {
	e.net.ConnectDuplex("sender", receiver, netsim.LinkConfig{
		Bandwidth:    bw,
		Delay:        delay,
		LossRate:     loss,
		QueuePackets: 100,
		Seed:         seed,
	})
}

// TestMixedClientsShareOneMacroflow runs the paper's headline scenario: an
// in-kernel TCP/CM transfer, a congestion-controlled UDP socket and a
// user-space layered streaming server, all sending to the same destination
// host, must share a single macroflow and a single congestion window, and all
// of them must make progress.
func TestMixedClientsShareOneMacroflow(t *testing.T) {
	e := newEnv(t)
	e.connect("receiver", 8*netsim.Mbps, 25*time.Millisecond, 0, 5)
	rcvr := e.net.Host("receiver")

	// 1. TCP/CM bulk transfer.
	var tcpDelivered int64
	if _, err := tcp.Listen(rcvr, 80, tcp.Config{DelayedAck: true}, func(ep *tcp.Endpoint) {
		ep.OnReceive(func(n int) { tcpDelivered += int64(n) })
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := tcp.Dial(e.sender, netsim.Addr{Host: "receiver", Port: 80},
		tcp.Config{CongestionControl: tcp.CCCM, CM: e.cm, DelayedAck: true})
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished(func() {
		conn.Send(600_000)
		conn.Close()
	})

	// 2. Congestion-controlled UDP with an ideal application feedback loop.
	udpSink, err := udp.NewSocket(rcvr, 9000)
	if err != nil {
		t.Fatal(err)
	}
	ccSock, err := udp.NewCCSocket(e.sender, 0, netsim.Addr{Host: "receiver", Port: 9000}, e.cm, 256)
	if err != nil {
		t.Fatal(err)
	}
	var udpDelivered int64
	udpSink.OnReceive(func(_ netsim.Addr, d *udp.Datagram) {
		udpDelivered += int64(d.Size)
		size := d.Size
		e.sched.After(50*time.Millisecond, func() {
			ccSock.Update(size, size, cm.NoLoss, 50*time.Millisecond)
		})
	})
	for i := 0; i < 200; i++ {
		ccSock.Send(&udp.Datagram{Seq: int64(i), Size: 1000})
	}

	// 3. User-space layered streaming server through libcm.
	lib := libcm.New(e.cm, e.sched, libcm.ModeAuto)
	client, err := app.NewLayeredClient(rcvr, 7000, app.FeedbackPolicy{EveryPackets: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := app.NewLayeredServer(e.sender, lib, client.Addr(), app.LayeredConfig{
		Mode:   app.ModeALF,
		Layers: []float64{62_500, 125_000, 250_000, 500_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	stream.Start()

	e.sched.RunFor(20 * time.Second)
	stream.Stop()

	// All three clients made progress. The TCP transfer must complete; the
	// UDP burst and the stream share the remaining window round-robin, so
	// they are expected to progress substantially but need not finish.
	if tcpDelivered != 600_000 {
		t.Fatalf("TCP delivered %d of 600000 bytes", tcpDelivered)
	}
	if udpDelivered < 100_000 || udpDelivered > 200_000 {
		t.Fatalf("CC-UDP delivered %d bytes, want at least half of its 200000-byte burst", udpDelivered)
	}
	if client.TotalBytes() == 0 {
		t.Fatal("layered stream delivered nothing")
	}

	// Everything to "receiver" shares exactly one macroflow.
	if e.cm.MacroflowCount() != 1 {
		t.Fatalf("macroflows = %d, want 1 (per-destination aggregation)", e.cm.MacroflowCount())
	}
	// Query through different flows reports the same shared path state.
	stStream, ok1 := e.cm.Query(stream.Flow())
	stUDP, ok2 := e.cm.Query(ccSock.Flow())
	if !ok1 || !ok2 {
		t.Fatal("Query failed")
	}
	if stStream.MacroflowRate != stUDP.MacroflowRate || stStream.SRTT != stUDP.SRTT {
		t.Fatalf("flows of one macroflow must share state: %+v vs %+v", stStream, stUDP)
	}
	if stStream.SRTT < 40*time.Millisecond || stStream.SRTT > 300*time.Millisecond {
		t.Fatalf("shared srtt %v is implausible for a 50 ms path", stStream.SRTT)
	}

	// The aggregate goodput cannot exceed the bottleneck.
	total := float64(tcpDelivered) + float64(udpDelivered) + float64(client.TotalBytes())
	linkBytes := (8 * netsim.Mbps).BytesPerSecond() * e.sched.Now().Seconds()
	if total > linkBytes {
		t.Fatalf("aggregate goodput %.0f exceeds link capacity %.0f", total, linkBytes)
	}
}

// TestMacroflowsToDifferentHostsAreIndependent checks that congestion on one
// path does not collapse the window of a macroflow to a different host.
func TestMacroflowsToDifferentHostsAreIndependent(t *testing.T) {
	e := newEnv(t)
	e.connect("clean", 10*netsim.Mbps, 10*time.Millisecond, 0, 7)
	e.connect("lossy", 10*netsim.Mbps, 10*time.Millisecond, 0.08, 9)

	run := func(host string, port int) (*int64, *time.Duration) {
		delivered := new(int64)
		doneAt := new(time.Duration)
		if _, err := tcp.Listen(e.net.Host(host), port, tcp.Config{DelayedAck: true}, func(ep *tcp.Endpoint) {
			ep.OnReceive(func(n int) { *delivered += int64(n) })
			ep.OnClosed(func() { *doneAt = e.sched.Now() })
		}); err != nil {
			t.Fatal(err)
		}
		ep, err := tcp.Dial(e.sender, netsim.Addr{Host: host, Port: port},
			tcp.Config{CongestionControl: tcp.CCCM, CM: e.cm, DelayedAck: true})
		if err != nil {
			t.Fatal(err)
		}
		ep.OnEstablished(func() {
			ep.Send(1_000_000)
			ep.Close()
		})
		return delivered, doneAt
	}
	cleanBytes, cleanDone := run("clean", 80)
	lossyBytes, lossyDone := run("lossy", 80)
	e.sched.RunFor(60 * time.Second)

	if e.cm.MacroflowCount() != 2 {
		t.Fatalf("macroflows = %d, want 2", e.cm.MacroflowCount())
	}
	if *cleanBytes != 1_000_000 || *cleanDone == 0 {
		t.Fatalf("clean-path transfer incomplete: %d bytes", *cleanBytes)
	}
	if *lossyBytes != 1_000_000 || *lossyDone == 0 {
		t.Fatalf("lossy-path transfer incomplete: %d bytes", *lossyBytes)
	}
	// Loss on one path slows that macroflow but not the other.
	if *cleanDone >= *lossyDone {
		t.Fatalf("clean path (done %v) should finish before the 8%%-loss path (done %v)", *cleanDone, *lossyDone)
	}
}

// TestVatAndTCPShareABottleneck runs the interactive audio source next to a
// TCP/CM bulk transfer over a narrow link: the vat policer must shed load
// while both flows continue to make progress and the application buffer stays
// bounded.
func TestVatAndTCPShareABottleneck(t *testing.T) {
	e := newEnv(t)
	e.connect("receiver", 200*netsim.Kbps, 40*time.Millisecond, 0, 21)
	rcvr := e.net.Host("receiver")

	var tcpDelivered int64
	if _, err := tcp.Listen(rcvr, 80, tcp.Config{DelayedAck: true}, func(ep *tcp.Endpoint) {
		ep.OnReceive(func(n int) { tcpDelivered += int64(n) })
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := tcp.Dial(e.sender, netsim.Addr{Host: "receiver", Port: 80},
		tcp.Config{CongestionControl: tcp.CCCM, CM: e.cm, DelayedAck: true})
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished(func() { conn.Send(1 << 20) }) // stays backlogged

	callee, err := app.NewReceiver(rcvr, 5004, app.FeedbackPolicy{EveryPackets: 1}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	vat, err := app.NewVatSource(e.sender, e.cm, callee.Addr(), app.VatConfig{DropPolicy: netsim.DropHead})
	if err != nil {
		t.Fatal(err)
	}
	vat.Start()
	e.sched.RunFor(60 * time.Second)
	vat.Stop()

	st := vat.Stats()
	if st.FramesSent == 0 || callee.TotalPackets() == 0 {
		t.Fatal("audio made no progress")
	}
	if tcpDelivered == 0 {
		t.Fatal("TCP made no progress")
	}
	// On a 25 KB/s link shared with TCP, a 8 KB/s audio source must shed a
	// part of its load preemptively rather than queueing it.
	if st.PolicerDrops+st.BufferDrops == 0 {
		t.Fatal("vat should have adapted by dropping frames")
	}
	if vat.AppBufferDepth() > 16 {
		t.Fatal("vat application buffer exceeded its bound")
	}
	// Both flows live in the same macroflow.
	if e.cm.MacroflowCount() != 1 {
		t.Fatalf("macroflows = %d, want 1", e.cm.MacroflowCount())
	}
}

// TestSequentialConnectionsAcrossApplications checks that state learned by a
// TCP/CM transfer benefits a subsequent congestion-controlled UDP burst to the
// same destination (cross-application sharing over time, the generalisation
// of Figure 7).
func TestSequentialConnectionsAcrossApplications(t *testing.T) {
	e := newEnv(t)
	e.connect("receiver", 10*netsim.Mbps, 30*time.Millisecond, 0, 23)
	rcvr := e.net.Host("receiver")

	var tcpDelivered int64
	if _, err := tcp.Listen(rcvr, 80, tcp.Config{DelayedAck: true}, func(ep *tcp.Endpoint) {
		ep.OnReceive(func(n int) { tcpDelivered += int64(n) })
	}); err != nil {
		t.Fatal(err)
	}
	conn, err := tcp.Dial(e.sender, netsim.Addr{Host: "receiver", Port: 80},
		tcp.Config{CongestionControl: tcp.CCCM, CM: e.cm, DelayedAck: true})
	if err != nil {
		t.Fatal(err)
	}
	conn.OnEstablished(func() {
		conn.Send(400_000)
		conn.Close()
	})
	e.sched.RunFor(10 * time.Second)
	if tcpDelivered != 400_000 {
		t.Fatalf("warm-up transfer incomplete: %d", tcpDelivered)
	}

	// The UDP burst starts with the macroflow's learned window rather than
	// 1 MTU: its first grant batch (before any feedback) should release
	// several datagrams, not just one.
	sink, err := udp.NewSocket(rcvr, 9100)
	if err != nil {
		t.Fatal(err)
	}
	var burstDelivered int
	sink.OnReceive(func(_ netsim.Addr, d *udp.Datagram) { burstDelivered += d.Size })
	cc, err := udp.NewCCSocket(e.sender, 0, netsim.Addr{Host: "receiver", Port: 9100}, e.cm, 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		cc.Send(&udp.Datagram{Seq: int64(i), Size: 1000})
	}
	// No feedback is given at all: only the inherited window can release data.
	e.sched.RunFor(2 * time.Second)
	if burstDelivered <= 2000 {
		t.Fatalf("burst should ride the window learned by TCP, delivered only %d bytes", burstDelivered)
	}
}
