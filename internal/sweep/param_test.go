package sweep

import (
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestParamAxisExpansion: a param.* axis re-invokes the scenario's builder
// per point, so the expanded specs differ in topology, campaign-level Params
// fill the non-swept builder knobs, and param axes (being numeric) perturb
// the derived seeds like any other numeric axis.
func TestParamAxisExpansion(t *testing.T) {
	camp := Campaign{
		Name:       "fattree-scale",
		Scenario:   "fattree",
		Params:     map[string]float64{"hosts": 1},
		Axes:       []Axis{{Param: "param.k", Values: []float64{4, 6}}},
		Replicates: 2,
	}
	points, err := camp.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	links4 := len(points[0].Specs[0].Links)
	links6 := len(points[1].Specs[0].Links)
	if links4 >= links6 {
		t.Fatalf("k=4 has %d links, k=6 has %d — param axis did not reshape the topology", links4, links6)
	}
	// hosts=1 from the campaign params: k pods × k/2 edges × 1 host.
	countHosts := func(spec scenario.Spec) int {
		routers := make(map[string]bool)
		for _, r := range spec.Routers {
			routers[r] = true
		}
		nodes := make(map[string]bool)
		for _, ls := range spec.Links {
			nodes[ls.A] = true
			nodes[ls.B] = true
		}
		n := 0
		for name := range nodes {
			if !routers[name] {
				n++
			}
		}
		return n
	}
	if got := countHosts(points[0].Specs[0]); got != 8 {
		t.Fatalf("k=4 hosts=1 spec has %d hosts, want 8", got)
	}
	if got := countHosts(points[1].Specs[0]); got != 18 {
		t.Fatalf("k=6 hosts=1 spec has %d hosts, want 18", got)
	}
	// Numeric-axis seed derivation: point 1 differs from point 0 by the point
	// stride, replicate 1 by the replicate stride.
	if points[0].Seeds[0]+seedPointStride != points[1].Seeds[0] {
		t.Fatalf("point seeds %v / %v not one point-stride apart", points[0].Seeds, points[1].Seeds)
	}
	if points[0].Seeds[0]+seedReplicateStride != points[0].Seeds[1] {
		t.Fatalf("replicate seeds %v not one replicate-stride apart", points[0].Seeds)
	}
	for _, pt := range points {
		for r, spec := range pt.Specs {
			if spec.Seed != pt.Seeds[r] {
				t.Fatalf("spec seed %d != derived %d", spec.Seed, pt.Seeds[r])
			}
		}
	}
}

// TestParamAxisErrors: param.* axes need a named parameterised scenario, and
// campaign-level Params are rejected on inline base specs and unknown
// builder parameters surface from expansion.
func TestParamAxisErrors(t *testing.T) {
	inline := Campaign{
		Name: "inline",
		Base: &scenario.Spec{Name: "x"},
		Axes: []Axis{{Param: "param.k", Values: []float64{4}}},
	}
	if _, err := inline.Expand(); err == nil || !strings.Contains(err.Error(), "param.k") {
		t.Fatalf("inline base with param axis: err = %v", err)
	}
	withParams := Campaign{
		Name:   "inline-params",
		Base:   &scenario.Spec{Name: "x"},
		Params: map[string]float64{"k": 4},
		Axes:   []Axis{{Param: "seed", Values: []float64{1}}},
	}
	if _, err := withParams.Expand(); err == nil {
		t.Fatal("inline base with builder params accepted")
	}
	unknown := Campaign{
		Name:     "unknown",
		Scenario: "fattree",
		Axes:     []Axis{{Param: "param.pods", Values: []float64{4}}},
	}
	if _, err := unknown.Expand(); err == nil {
		t.Fatal("unknown builder parameter accepted")
	}
	nonParam := Campaign{
		Name:     "non-param",
		Scenario: "dumbbell",
		Axes:     []Axis{{Param: "param.k", Values: []float64{4}}},
	}
	if _, err := nonParam.Expand(); err == nil {
		t.Fatal("param axis on a non-parameterised scenario accepted")
	}
}
