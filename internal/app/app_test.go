package app

import (
	"testing"
	"time"

	"repro/internal/cm"
	"repro/internal/libcm"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/simtime"
	"repro/internal/tcp"
	"repro/internal/udp"
)

// appEnv is a server/client pair joined by a configurable bottleneck, with a
// CM and libcm on the server (data sender) side.
type appEnv struct {
	sched  *simtime.Scheduler
	net    *node.Network
	cm     *cm.CM
	lib    *libcm.Lib
	duplex *netsim.Duplex
}

func newAppEnv(t *testing.T, link netsim.LinkConfig) *appEnv {
	t.Helper()
	s := simtime.NewScheduler()
	nw := node.NewNetwork(s)
	d := nw.ConnectDuplex("server", "client", link)
	c := cm.New(s, s, cm.WithMTU(1500))
	nw.Host("server").SetTransmitNotifier(c)
	lib := libcm.New(c, s, libcm.ModeAuto)
	return &appEnv{sched: s, net: nw, cm: c, lib: lib, duplex: d}
}

func bottleneck(bw netsim.Bandwidth, delay time.Duration) netsim.LinkConfig {
	return netsim.LinkConfig{Bandwidth: bw, Delay: delay, QueuePackets: 60, Seed: 17}
}

// ---------------------------------------------------------------------------
// Feedback protocol
// ---------------------------------------------------------------------------

func TestReceiverAcksEveryPacketByDefault(t *testing.T) {
	e := newAppEnv(t, bottleneck(10*netsim.Mbps, 5*time.Millisecond))
	rx, err := NewReceiver(e.net.Host("client"), 6000, FeedbackPolicy{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := udp.NewSocket(e.net.Host("server"), 0)
	var reports []Report
	tx.OnReceive(func(_ netsim.Addr, d *udp.Datagram) {
		if rep, ok := d.App.(Report); ok {
			reports = append(reports, rep)
		}
	})
	for i := 1; i <= 5; i++ {
		tx.SendTo(rx.Addr(), &udp.Datagram{Seq: int64(i), Size: 400})
	}
	e.sched.RunFor(time.Second)
	if len(reports) != 5 {
		t.Fatalf("reports = %d, want 5 (ack every packet)", len(reports))
	}
	last := reports[len(reports)-1]
	if last.TotalPackets != 5 || last.TotalBytes != 2000 || last.HighestSeq != 5 {
		t.Fatalf("final report %+v", last)
	}
	if rx.TotalBytes() != 2000 || rx.TotalPackets() != 5 || rx.ReportsSent() != 5 {
		t.Fatal("receiver counters wrong")
	}
	if rx.RateSeries() == nil {
		t.Fatal("rate series missing")
	}
}

func TestReceiverDelayedFeedbackPolicy(t *testing.T) {
	// Figure 10's policy: report every 500 packets or 2000 ms, whichever
	// comes first. With only 10 packets the timer must flush the report.
	e := newAppEnv(t, bottleneck(10*netsim.Mbps, 5*time.Millisecond))
	rx, err := NewReceiver(e.net.Host("client"), 6001,
		FeedbackPolicy{EveryPackets: 500, MaxDelay: 2 * time.Second}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := udp.NewSocket(e.net.Host("server"), 0)
	var reports int
	tx.OnReceive(func(_ netsim.Addr, d *udp.Datagram) {
		if _, ok := d.App.(Report); ok {
			reports++
		}
	})
	for i := 1; i <= 10; i++ {
		tx.SendTo(rx.Addr(), &udp.Datagram{Seq: int64(i), Size: 100})
	}
	e.sched.RunFor(1500 * time.Millisecond)
	if reports != 0 {
		t.Fatalf("no report should be sent before the 2 s delay, got %d", reports)
	}
	e.sched.RunFor(1500 * time.Millisecond)
	if reports != 1 {
		t.Fatalf("exactly one delayed report expected, got %d", reports)
	}
	rx.Close()
}

func TestReceiverCountThresholdTriggersReport(t *testing.T) {
	e := newAppEnv(t, bottleneck(10*netsim.Mbps, time.Millisecond))
	rx, _ := NewReceiver(e.net.Host("client"), 6002, FeedbackPolicy{EveryPackets: 4}, time.Second)
	tx, _ := udp.NewSocket(e.net.Host("server"), 0)
	var reports int
	tx.OnReceive(func(_ netsim.Addr, d *udp.Datagram) {
		if _, ok := d.App.(Report); ok {
			reports++
		}
	})
	for i := 1; i <= 8; i++ {
		tx.SendTo(rx.Addr(), &udp.Datagram{Seq: int64(i), Size: 100})
	}
	e.sched.RunFor(time.Second)
	if reports != 2 {
		t.Fatalf("reports = %d, want 2 (every 4 packets)", reports)
	}
}

func TestSenderFeedbackConvertsReports(t *testing.T) {
	s := simtime.NewScheduler()
	type upd struct {
		nsent, nrecd int
		mode         cm.LossMode
		rtt          time.Duration
	}
	var updates []upd
	fb := NewSenderFeedback(s, func(nsent, nrecd int, mode cm.LossMode, rtt time.Duration) {
		updates = append(updates, upd{nsent, nrecd, mode, rtt})
	})

	// Send 3 packets of 1000 bytes; the second is lost.
	fb.OnSend(1, 1000)
	fb.OnSend(2, 1000)
	fb.OnSend(3, 1000)

	// Receiver saw packet 1.
	s.RunUntil(50 * time.Millisecond)
	fb.OnReport(Report{TotalPackets: 1, TotalBytes: 1000, HighestSeq: 1, EchoSentAt: 10 * time.Millisecond})
	// Receiver then saw packet 3 (2 was lost).
	s.RunUntil(100 * time.Millisecond)
	fb.OnReport(Report{TotalPackets: 2, TotalBytes: 2000, HighestSeq: 3, EchoSentAt: 60 * time.Millisecond})

	if len(updates) != 2 {
		t.Fatalf("updates = %d, want 2", len(updates))
	}
	if updates[0].nsent != 1000 || updates[0].nrecd != 1000 || updates[0].mode != cm.NoLoss {
		t.Fatalf("first update %+v", updates[0])
	}
	if updates[0].rtt != 40*time.Millisecond {
		t.Fatalf("rtt = %v, want 40ms", updates[0].rtt)
	}
	// Second report covers packets 2 and 3 (2000 bytes sent) of which 1000
	// arrived: transient loss.
	if updates[1].nsent != 2000 || updates[1].nrecd != 1000 || updates[1].mode != cm.TransientLoss {
		t.Fatalf("second update %+v", updates[1])
	}
	if fb.Updates() != 2 || fb.LossEvents() != 1 {
		t.Fatalf("counters: updates=%d lossEvents=%d", fb.Updates(), fb.LossEvents())
	}
}

func TestSenderFeedbackValidation(t *testing.T) {
	s := simtime.NewScheduler()
	for _, fn := range []func(){
		func() { NewSenderFeedback(nil, func(int, int, cm.LossMode, time.Duration) {}) },
		func() { NewSenderFeedback(s, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
	fb := NewSenderFeedback(s, func(int, int, cm.LossMode, time.Duration) {})
	if fb.HandleDatagram(&udp.Datagram{Size: 10}) {
		t.Fatal("non-report datagrams must not be consumed")
	}
	if !fb.HandleDatagram(&udp.Datagram{Size: 10, App: Report{}}) {
		t.Fatal("report datagrams must be consumed")
	}
}

// ---------------------------------------------------------------------------
// Layered streaming server
// ---------------------------------------------------------------------------

func layeredSetup(t *testing.T, e *appEnv, mode LayeredMode, policy FeedbackPolicy) (*LayeredServer, *LayeredClient) {
	t.Helper()
	client, err := NewLayeredClient(e.net.Host("client"), 7000, policy, 500*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	cfg := LayeredConfig{
		Mode:       mode,
		Layers:     []float64{31_250, 62_500, 125_000, 250_000}, // 0.25 - 2 Mbps
		PacketSize: 1000,
	}
	srv, err := NewLayeredServer(e.net.Host("server"), e.lib, client.Addr(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv, client
}

func TestLayeredALFAdaptsToBottleneck(t *testing.T) {
	// 1 Mbps bottleneck (= 125 kB/s): the ALF server should settle around the
	// 125 kB/s layer and its transmission rate must not exceed the link.
	e := newAppEnv(t, bottleneck(1*netsim.Mbps, 20*time.Millisecond))
	srv, client := layeredSetup(t, e, ModeALF, FeedbackPolicy{})
	srv.Start()
	e.sched.RunFor(20 * time.Second)
	srv.Stop()

	if srv.Stats().PacketsSent == 0 || srv.Stats().GrantsReceived == 0 {
		t.Fatalf("server never sent: %+v", srv.Stats())
	}
	linkRate := (1 * netsim.Mbps).BytesPerSecond()
	// Average goodput at the client should be a reasonable fraction of the
	// bottleneck and must not exceed it.
	goodput := float64(client.TotalBytes()) / e.sched.Now().Seconds()
	if goodput > linkRate*1.05 {
		t.Fatalf("goodput %.0f exceeds link rate %.0f", goodput, linkRate)
	}
	if goodput < 0.4*linkRate {
		t.Fatalf("goodput %.0f is too far below the link rate %.0f", goodput, linkRate)
	}
	if srv.ReportedRateSeries().Len() == 0 || srv.LayerRateSeries().Len() == 0 {
		t.Fatal("adaptation traces missing")
	}
	// The steady-state layer should be the one matching the bottleneck
	// (125 kB/s), i.e. index 2.
	if srv.Layer() < 1 || srv.Layer() > 3 {
		t.Fatalf("final layer = %d, expected near the 125 kB/s layer", srv.Layer())
	}
	if srv.Stats().FeedbackReports == 0 {
		t.Fatal("feedback reports never reached the server")
	}
}

func TestLayeredRateCallbackAdaptsViaThresholds(t *testing.T) {
	e := newAppEnv(t, bottleneck(1*netsim.Mbps, 20*time.Millisecond))
	srv, client := layeredSetup(t, e, ModeRateCallback, FeedbackPolicy{})
	srv.Start()
	e.sched.RunFor(20 * time.Second)
	srv.Stop()

	st := srv.Stats()
	if st.PacketsSent == 0 {
		t.Fatal("rate-callback server never sent")
	}
	if st.GrantsReceived != 0 {
		t.Fatal("rate-callback mode must not use the request/callback path")
	}
	if st.RateCallbacks == 0 {
		t.Fatal("no cmapp_update callbacks were delivered")
	}
	goodput := float64(client.TotalBytes()) / e.sched.Now().Seconds()
	linkRate := (1 * netsim.Mbps).BytesPerSecond()
	if goodput > linkRate*1.05 {
		t.Fatalf("goodput %.0f exceeds the link rate", goodput)
	}
	// Self-clocked transmission follows the chosen layer, so the sending
	// rate should be close to one of the configured layers.
	if srv.LayerRateSeries().Len() == 0 {
		t.Fatal("layer trace missing")
	}
}

func TestLayeredALFObservesRateMoreOftenThanRateCallback(t *testing.T) {
	// Figures 8 vs 9 trade-off: the ALF application queries the CM for every
	// packet it sends and so observes (and can react to) many more rate
	// samples, while the rate-callback application is "notified only in the
	// rare event that their network conditions change significantly".
	run := func(mode LayeredMode) (observations int, switches int64) {
		e := newAppEnv(t, bottleneck(2*netsim.Mbps, 20*time.Millisecond))
		srv, _ := layeredSetup(t, e, mode, FeedbackPolicy{})
		cross, err := NewOnOffSource(e.net.Host("server"),
			netsim.Addr{Host: "client", Port: 9999}, 125_000, 1000, 3*time.Second, 3*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		cross.Start()
		srv.Start()
		e.sched.RunFor(30 * time.Second)
		srv.Stop()
		cross.Stop()
		return srv.ReportedRateSeries().Len(), srv.Stats().LayerSwitches
	}
	alfObs, alfSwitches := run(ModeALF)
	rcbObs, rcbSwitches := run(ModeRateCallback)
	if alfObs < 10*rcbObs {
		t.Fatalf("ALF should observe the rate far more often than the rate-callback app: %d vs %d", alfObs, rcbObs)
	}
	if alfSwitches == 0 || rcbSwitches == 0 {
		t.Fatalf("both applications should adapt under varying cross traffic (alf=%d rcb=%d)", alfSwitches, rcbSwitches)
	}
}

func TestLayeredServerRequiresLib(t *testing.T) {
	e := newAppEnv(t, bottleneck(1*netsim.Mbps, time.Millisecond))
	if _, err := NewLayeredServer(e.net.Host("server"), nil, netsim.Addr{Host: "client", Port: 1}, LayeredConfig{}); err == nil {
		t.Fatal("nil libcm should be rejected")
	}
	if ModeALF.String() != "alf" || ModeRateCallback.String() != "rate-callback" {
		t.Fatal("mode names wrong")
	}
}

func TestLayeredServerCloseReleasesFlow(t *testing.T) {
	e := newAppEnv(t, bottleneck(1*netsim.Mbps, time.Millisecond))
	srv, _ := layeredSetup(t, e, ModeALF, FeedbackPolicy{})
	srv.Start()
	e.sched.RunFor(time.Second)
	srv.Close()
	if e.cm.FlowCount() != 0 {
		t.Fatal("flow should be closed")
	}
}

// ---------------------------------------------------------------------------
// vat interactive audio
// ---------------------------------------------------------------------------

func TestVatSendsNearlyAllFramesWhenBandwidthIsAmple(t *testing.T) {
	// 64 kbps audio over a 10 Mbps link: nothing should need dropping once
	// the window has opened.
	e := newAppEnv(t, bottleneck(10*netsim.Mbps, 10*time.Millisecond))
	rx, err := NewReceiver(e.net.Host("client"), 8000, FeedbackPolicy{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	vat, err := NewVatSource(e.net.Host("server"), e.cm, rx.Addr(), VatConfig{DropPolicy: netsim.DropHead})
	if err != nil {
		t.Fatal(err)
	}
	vat.Start()
	e.sched.RunFor(30 * time.Second)
	vat.Stop()
	st := vat.Stats()
	if st.FramesGenerated < 1400 {
		t.Fatalf("frames generated = %d, want ~1500 over 30s of 20ms frames", st.FramesGenerated)
	}
	sentFrac := float64(st.FramesSent) / float64(st.FramesGenerated)
	if sentFrac < 0.9 {
		t.Fatalf("only %.2f of frames were sent on an uncongested path (%+v)", sentFrac, st)
	}
	if rx.TotalPackets() < int64(0.85*float64(st.FramesSent)) {
		t.Fatalf("receiver saw %d of %d sent frames", rx.TotalPackets(), st.FramesSent)
	}
	if vat.AppBufferDepth() > 16 {
		t.Fatal("application buffer exceeded its bound")
	}
}

func TestVatPolicerDropsWhenBandwidthIsScarce(t *testing.T) {
	// 32 kbps bottleneck for a 64 kbps source: roughly half of the frames
	// must be dropped preemptively rather than queued (bounding delay).
	e := newAppEnv(t, bottleneck(32*netsim.Kbps, 20*time.Millisecond))
	rx, err := NewReceiver(e.net.Host("client"), 8001, FeedbackPolicy{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	vat, err := NewVatSource(e.net.Host("server"), e.cm, rx.Addr(), VatConfig{DropPolicy: netsim.DropHead})
	if err != nil {
		t.Fatal(err)
	}
	vat.Start()
	e.sched.RunFor(60 * time.Second)
	vat.Stop()
	st := vat.Stats()
	dropFrac := float64(st.PolicerDrops+st.BufferDrops) / float64(st.FramesGenerated)
	if dropFrac < 0.25 {
		t.Fatalf("adaptation should drop a substantial fraction of frames, dropped %.2f (%+v)", dropFrac, st)
	}
	if st.FramesSent == 0 {
		t.Fatal("some frames must still get through")
	}
	// The application buffer must stay bounded (vat's reason for
	// drop-from-head behaviour).
	if vat.AppBufferDepth() > 16 {
		t.Fatal("application buffer exceeded its bound")
	}
	if st.RateCallbacks == 0 {
		t.Fatal("the policer should have been driven by rate callbacks")
	}
	if vat.SentRateSeries().Len() == 0 {
		t.Fatal("sent-rate trace missing")
	}
}

func TestVatFrameSizeAndAccessors(t *testing.T) {
	cfg := VatConfig{}
	cfg.fillDefaults()
	if cfg.FrameSize() != 160 {
		t.Fatalf("64kbps * 20ms / 8 = 160 bytes, got %d", cfg.FrameSize())
	}
	e := newAppEnv(t, bottleneck(1*netsim.Mbps, time.Millisecond))
	vat, err := NewVatSource(e.net.Host("server"), e.cm, netsim.Addr{Host: "client", Port: 8002}, VatConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if vat.Flow() == cm.InvalidFlow {
		t.Fatal("flow not allocated")
	}
	if vat.PolicerRate() < 0 {
		t.Fatal("policer rate should be non-negative")
	}
	vat.Start()
	vat.Start() // idempotent
	e.sched.RunFor(time.Second)
	vat.Close()
	if e.cm.FlowCount() != 0 {
		t.Fatal("flow should be released on Close")
	}
}

// ---------------------------------------------------------------------------
// Web fetch (Figure 7 workload) and cross traffic
// ---------------------------------------------------------------------------

func TestFileServerAndFetchClient(t *testing.T) {
	e := newAppEnv(t, bottleneck(10*netsim.Mbps, 10*time.Millisecond))
	serverCfg := tcp.Config{CongestionControl: tcp.CCCM, CM: e.cm, DelayedAck: true}
	fs, err := NewFileServer(e.net.Host("server"), 80, 64*1024, serverCfg)
	if err != nil {
		t.Fatal(err)
	}
	client := NewFetchClient(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, 200, tcp.Config{})
	var final []FetchResult
	client.RunSequential(3, 200*time.Millisecond, func(rs []FetchResult) { final = rs })
	e.sched.RunFor(60 * time.Second)

	if len(final) != 3 {
		t.Fatalf("completed %d fetches, want 3", len(final))
	}
	for i, r := range final {
		if r.Bytes != 64*1024 {
			t.Fatalf("fetch %d transferred %d bytes, want %d", i, r.Bytes, 64*1024)
		}
		if r.Elapsed <= 0 || r.End <= r.Start {
			t.Fatalf("fetch %d has invalid timing %+v", i, r)
		}
		if r.Index != i {
			t.Fatalf("result index %d != %d", r.Index, i)
		}
	}
	if fs.RequestsServed() != 3 || fs.BytesServed() != 3*64*1024 {
		t.Fatalf("server counters: %d requests, %d bytes", fs.RequestsServed(), fs.BytesServed())
	}
	// Fetches are sequential: each starts after the previous one ended.
	for i := 1; i < len(final); i++ {
		if final[i].Start < final[i-1].End {
			t.Fatal("fetches overlapped; they must be sequential")
		}
	}
	fs.Close()
}

func TestFetchClientResultsCopy(t *testing.T) {
	e := newAppEnv(t, bottleneck(10*netsim.Mbps, time.Millisecond))
	c := NewFetchClient(e.net.Host("client"), netsim.Addr{Host: "server", Port: 80}, 0, tcp.Config{})
	if len(c.Results()) != 0 {
		t.Fatal("no results expected before running")
	}
}

func TestOnOffSourceDutyCycle(t *testing.T) {
	e := newAppEnv(t, bottleneck(10*netsim.Mbps, time.Millisecond))
	rx, _ := udp.NewSocket(e.net.Host("client"), 9999)
	var rcvd int64
	rx.OnReceive(func(_ netsim.Addr, d *udp.Datagram) { rcvd += int64(d.Size) })
	src, err := NewOnOffSource(e.net.Host("server"), netsim.Addr{Host: "client", Port: 9999},
		100_000, 1000, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	src.Start()
	src.Start() // idempotent
	e.sched.RunFor(10 * time.Second)
	src.Stop()
	// 50% duty cycle at 100 kB/s for 10 s: ~500 kB (give or take phase
	// boundaries).
	if rcvd < 350_000 || rcvd > 650_000 {
		t.Fatalf("cross traffic delivered %d bytes, want ~500000", rcvd)
	}
	if src.PacketsSent() == 0 {
		t.Fatal("PacketsSent should be positive")
	}
	e.sched.RunFor(2 * time.Second)
	after := src.PacketsSent()
	e.sched.RunFor(2 * time.Second)
	if src.PacketsSent() != after {
		t.Fatal("source should stop generating after Stop")
	}
}
